// meanet_cloudd — the standalone cloud daemon of the wire offload path.
//
// Listens on a Unix-domain socket, speaks the MWIR framed protocol
// (src/wire/frame.h), and serves every connected edge session's offload
// requests through ONE shared WireServer batch queue, so concurrent
// sessions' uploads coalesce into cross-session cloud batches.
//
//   meanet_cloudd --socket /tmp/meanet.sock --seed 7 \
//       --image-channels 3 --classes 10 [--model weights.bin] \
//       [--max-batch 32] [--batch-window-ms 2] [--stats-every-s 10]
//
// The cloud classifier is built deterministically from --seed (same
// architecture + seed on the edge side reproduces the exact weights,
// which is how the parity tests share a model across processes); pass
// --model to overwrite the random init with trained weights saved by
// nn::save_model.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include <signal.h>

#include "core/builders.h"
#include "diag/registry.h"
#include "diag/ticker.h"
#include "nn/serialize.h"
#include "runtime/offload_backend.h"
#include "sim/clock.h"
#include "sim/cloud_node.h"
#include "util/rng.h"
#include "wire/server.h"

namespace {

std::atomic<bool> g_shutdown{false};

void handle_signal(int) { g_shutdown.store(true); }

struct Options {
  std::string socket_path;
  std::string model_path;
  std::uint64_t seed = 0x5eedULL;
  int image_channels = 3;
  int classes = 10;
  int max_batch = 32;
  double batch_window_ms = 2.0;
  double stats_every_s = 0.0;  // 0 = only on exit
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH [--seed N] [--image-channels N] [--classes N]\n"
               "          [--model WEIGHTS] [--max-batch N] [--batch-window-ms X]\n"
               "          [--stats-every-s X]\n",
               argv0);
  std::exit(2);
}

Options parse_args(int argc, char** argv) {
  Options opts;
  auto value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket") {
      opts.socket_path = value(i);
    } else if (arg == "--model") {
      opts.model_path = value(i);
    } else if (arg == "--seed") {
      opts.seed = std::strtoull(value(i), nullptr, 10);
    } else if (arg == "--image-channels") {
      opts.image_channels = std::atoi(value(i));
    } else if (arg == "--classes") {
      opts.classes = std::atoi(value(i));
    } else if (arg == "--max-batch") {
      opts.max_batch = std::atoi(value(i));
    } else if (arg == "--batch-window-ms") {
      opts.batch_window_ms = std::atof(value(i));
    } else if (arg == "--stats-every-s") {
      opts.stats_every_s = std::atof(value(i));
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      usage(argv[0]);
    }
  }
  if (opts.socket_path.empty()) usage(argv[0]);
  if (opts.image_channels < 1 || opts.classes < 2) usage(argv[0]);
  return opts;
}

/// One registry dump: every provider in the process (the wire server,
/// and the GEMM pool once a batch has run) as the versioned JSON
/// snapshot — the same document kStatsRequest's diag flag serves.
void print_diagnostics() {
  std::printf("[meanet_cloudd] diagnostics %s\n",
              meanet::diag::DiagnosticRegistry::global().to_json().c_str());
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace meanet;
  const Options opts = parse_args(argc, argv);

  struct sigaction action {};
  action.sa_handler = handle_signal;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);

  util::Rng rng(opts.seed);
  sim::CloudNode cloud(core::build_cloud_classifier(opts.image_channels, opts.classes, rng));
  if (!opts.model_path.empty()) {
    nn::load_model(cloud.model(), opts.model_path);
    std::printf("[meanet_cloudd] loaded weights from %s\n", opts.model_path.c_str());
  }

  wire::WireServerConfig config;
  config.max_batch_instances = opts.max_batch;
  config.batch_window_s = opts.batch_window_ms / 1000.0;
  wire::WireServer server(std::make_shared<runtime::RawImageBackend>(&cloud), config);
  server.listen_unix(opts.socket_path);
  std::printf("[meanet_cloudd] serving on %s (seed=%llu channels=%d classes=%d "
              "max_batch=%d window=%.3fms)\n",
              opts.socket_path.c_str(), static_cast<unsigned long long>(opts.seed),
              opts.image_channels, opts.classes, opts.max_batch, opts.batch_window_ms);
  std::fflush(stdout);

  // The periodic stats dump ticks on the sim::Clock seam: under the
  // daemon's WallClock this is byte-identical to the old 50 ms polling
  // loop, and a daemon engine embedded in a virtual-time test can run
  // the same Ticker on a VirtualClock without blocking time advance.
  const std::shared_ptr<sim::Clock> clock = sim::wall_clock_ptr();
  std::unique_ptr<diag::Ticker> ticker;
  if (opts.stats_every_s > 0.0) {
    ticker = std::make_unique<diag::Ticker>(clock, opts.stats_every_s, print_diagnostics);
  }
  while (!g_shutdown.load()) clock->sleep_for(0.05);
  ticker.reset();
  server.stop();
  print_diagnostics();
  return 0;
}
