#include <gtest/gtest.h>

#include "nn/inverted_residual.h"
#include "nn/residual_block.h"
#include "nn/sequential.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "nn/activations.h"
#include "util/rng.h"

namespace meanet::nn {
namespace {

TEST(ResidualBlock, IdentityShortcutWhenShapePreserved) {
  util::Rng rng(1);
  ResidualBlock block(4, 4, 1, rng);
  EXPECT_FALSE(block.has_projection());
  EXPECT_EQ(block.output_shape(Shape{1, 4, 8, 8}), Shape({1, 4, 8, 8}));
}

TEST(ResidualBlock, ProjectionOnStride) {
  util::Rng rng(1);
  ResidualBlock block(4, 8, 2, rng);
  EXPECT_TRUE(block.has_projection());
  EXPECT_EQ(block.output_shape(Shape{1, 4, 8, 8}), Shape({1, 8, 4, 4}));
}

TEST(ResidualBlock, ProjectionOnChannelChange) {
  util::Rng rng(1);
  ResidualBlock block(4, 8, 1, rng);
  EXPECT_TRUE(block.has_projection());
}

TEST(ResidualBlock, OutputIsNonNegative) {
  util::Rng rng(2);
  ResidualBlock block(3, 3, 1, rng);
  const Tensor y = block.forward(Tensor::normal(Shape{2, 3, 6, 6}, rng), Mode::kTrain);
  EXPECT_GE(y.min(), 0.0f);  // final ReLU
}

TEST(ResidualBlock, ParameterCount) {
  util::Rng rng(3);
  ResidualBlock block(4, 4, 1, rng);
  // conv1 4*4*9, bn1 8, conv2 4*4*9, bn2 8 = 304.
  std::int64_t total = 0;
  for (Parameter* p : block.parameters()) total += p->numel();
  EXPECT_EQ(total, 4 * 4 * 9 + 8 + 4 * 4 * 9 + 8);
}

TEST(ResidualBlock, FreezePropagatesToAllParams) {
  util::Rng rng(4);
  ResidualBlock block(2, 4, 2, rng);
  block.set_frozen(true);
  for (const Parameter* p : block.parameters()) EXPECT_FALSE(p->trainable);
}

TEST(ResidualBlock, FrozenBackwardStillPropagatesInputGrad) {
  util::Rng rng(5);
  ResidualBlock block(3, 3, 1, rng);
  block.set_frozen(true);
  const Tensor x = Tensor::normal(Shape{1, 3, 4, 4}, rng);
  const Tensor y = block.forward(x, Mode::kTrain);
  const Tensor dx = block.backward(Tensor::ones(y.shape()));
  EXPECT_EQ(dx.shape(), x.shape());
  // Some gradient must flow through the identity shortcut.
  float abs_sum = 0.0f;
  for (std::int64_t i = 0; i < dx.numel(); ++i) abs_sum += std::fabs(dx[i]);
  EXPECT_GT(abs_sum, 0.0f);
  for (const Parameter* p : block.parameters()) {
    for (std::int64_t i = 0; i < p->grad.numel(); ++i) EXPECT_EQ(p->grad[i], 0.0f);
  }
}

TEST(InvertedResidual, SkipOnlyWhenShapePreserved) {
  util::Rng rng(6);
  EXPECT_TRUE(InvertedResidual(4, 4, 1, 2, rng).has_skip());
  EXPECT_FALSE(InvertedResidual(4, 8, 1, 2, rng).has_skip());
  EXPECT_FALSE(InvertedResidual(4, 4, 2, 2, rng).has_skip());
}

TEST(InvertedResidual, OutputShapeWithStride) {
  util::Rng rng(6);
  InvertedResidual block(4, 8, 2, 4, rng);
  EXPECT_EQ(block.output_shape(Shape{2, 4, 8, 8}), Shape({2, 8, 4, 4}));
}

TEST(InvertedResidual, ExpansionOneHasNoExpandConv) {
  util::Rng rng(7);
  InvertedResidual with(3, 3, 1, 4, rng);
  InvertedResidual without(3, 3, 1, 1, rng);
  std::int64_t with_params = 0, without_params = 0;
  for (Parameter* p : with.parameters()) with_params += p->numel();
  for (Parameter* p : without.parameters()) without_params += p->numel();
  EXPECT_GT(with_params, without_params);
}

TEST(InvertedResidual, RejectsExpansionBelowOne) {
  util::Rng rng(8);
  EXPECT_THROW(InvertedResidual(3, 3, 1, 0, rng), std::invalid_argument);
}

TEST(Sequential, ChainsShapes) {
  util::Rng rng(9);
  Sequential net("n");
  net.emplace<Conv2d>(3, 8, 3, 2, 1, false, rng, "c");
  net.emplace<ReLU>();
  net.emplace<GlobalAvgPool>();
  net.emplace<Linear>(8, 5, rng, "fc");
  EXPECT_EQ(net.output_shape(Shape{2, 3, 16, 16}), Shape({2, 5}));
  EXPECT_EQ(net.size(), 4);
}

TEST(Sequential, ForwardBackwardRoundTripShapes) {
  util::Rng rng(10);
  Sequential net("n");
  net.emplace<Conv2d>(2, 4, 3, 1, 1, false, rng, "c");
  net.emplace<ReLU>();
  const Tensor x = Tensor::normal(Shape{2, 2, 5, 5}, rng);
  const Tensor y = net.forward(x, Mode::kTrain);
  const Tensor dx = net.backward(Tensor::ones(y.shape()));
  EXPECT_EQ(dx.shape(), x.shape());
}

TEST(Sequential, StatsAggregate) {
  util::Rng rng(11);
  Sequential net("n");
  net.emplace<Conv2d>(1, 2, 3, 1, 1, false, rng, "c1");
  net.emplace<Conv2d>(2, 2, 3, 1, 1, false, rng, "c2");
  const LayerStats total = net.stats(Shape{1, 1, 4, 4});
  const auto per_layer = net.layer_stats(Shape{1, 1, 4, 4});
  ASSERT_EQ(per_layer.size(), 2u);
  EXPECT_EQ(total.params, per_layer[0].params + per_layer[1].params);
  EXPECT_EQ(total.macs, per_layer[0].macs + per_layer[1].macs);
}

TEST(Sequential, RejectsNullLayer) {
  Sequential net("n");
  EXPECT_THROW(net.add(nullptr), std::invalid_argument);
}

TEST(Sequential, FreezeRecurses) {
  util::Rng rng(12);
  Sequential net("n");
  net.emplace<Conv2d>(1, 1, 3, 1, 1, false, rng, "c");
  net.emplace<ResidualBlock>(1, 1, 1, rng, "rb");
  net.set_frozen(true);
  for (const Parameter* p : net.parameters()) EXPECT_FALSE(p->trainable);
  EXPECT_TRUE(net.layer(1).frozen());
}

}  // namespace
}  // namespace meanet::nn
