// Tiny shared fixtures for the core/sim tests: very small synthetic
// datasets and MEANets that train in well under a second.
#pragma once

#include "core/builders.h"
#include "core/meanet.h"
#include "data/synthetic.h"
#include "util/rng.h"

namespace meanet::testing {

inline data::SyntheticSpec tiny_data_spec() {
  data::SyntheticSpec spec;
  spec.num_classes = 4;
  spec.channels = 2;
  spec.height = 8;
  spec.width = 8;
  spec.train_per_class = 20;
  spec.test_per_class = 10;
  // Hard enough that the main block does *not* saturate: the error-type
  // and cloud-improvement tests need a non-trivial error mass.
  spec.min_difficulty = 0.25f;
  spec.max_difficulty = 0.9f;
  spec.noise_stddev = 0.35f;
  return spec;
}

inline core::ResNetConfig tiny_resnet_config(int num_classes = 4, int image_channels = 2) {
  core::ResNetConfig config;
  config.blocks_per_stage = 1;
  config.channels = {4, 6, 8};
  config.image_channels = image_channels;
  config.num_classes = num_classes;
  return config;
}

inline core::MEANet tiny_meanet_b(util::Rng& rng, int num_hard = 2,
                                  core::FusionMode fusion = core::FusionMode::kSum) {
  return core::build_resnet_meanet_b(tiny_resnet_config(), num_hard, fusion, rng);
}

inline core::MEANet tiny_meanet_a(util::Rng& rng, int num_hard = 2,
                                  core::FusionMode fusion = core::FusionMode::kSum) {
  return core::build_resnet_meanet_a(tiny_resnet_config(), num_hard, fusion, rng);
}

}  // namespace meanet::testing
