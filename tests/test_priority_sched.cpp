// Scheduler torture tests for the priority-aware serving stack:
//
//  - PriorityBoundedQueue dequeue order matches a std::stable_sort
//    oracle over seeded random (priority, deadline, arrival) mixes;
//  - the starvation/aging bound holds under a 90% high-priority flood,
//    at the queue level and end-to-end through a session;
//  - batch-mode serving (coalesced batches, drain(), run()) honors the
//    queue ordering instead of submission order — the PR 5 regression;
//  - priorities compose with PR 4 deadline-aware admission control and
//    PR 3 cancellation.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include "runtime/request_queue.h"
#include "runtime/session.h"

#include "core/builders.h"
#include "core/trainer.h"
#include "sim/cloud_node.h"
#include "tiny_models.h"

namespace meanet::runtime {
namespace {

using meanet::testing::tiny_data_spec;
using meanet::testing::tiny_meanet_b;

// ---------------------------------------------------------------------
// PriorityBoundedQueue: ordering oracle
// ---------------------------------------------------------------------

struct OracleItem {
  int index = 0;
  SchedKey key;
};

/// Pushes the mix, pops everything, and checks the dequeue order equals
/// a std::stable_sort over (priority desc, deadline asc) — stability
/// supplies the arrival-order tiebreak, exactly the queue's contract.
void check_against_oracle(const std::vector<OracleItem>& mix) {
  PriorityBoundedQueue<int> queue(mix.size() + 1, /*starvation_bound=*/0);
  for (const OracleItem& item : mix) ASSERT_TRUE(queue.push(item.index, item.key));

  std::vector<OracleItem> oracle = mix;
  std::stable_sort(oracle.begin(), oracle.end(), [](const OracleItem& a, const OracleItem& b) {
    return sched_before(a.key, b.key);
  });

  for (std::size_t i = 0; i < oracle.size(); ++i) {
    std::optional<Scheduled<int>> popped = queue.try_pop();
    ASSERT_TRUE(popped.has_value()) << "queue drained early at " << i;
    EXPECT_EQ(popped->item, oracle[i].index) << "dequeue order diverged at position " << i;
    EXPECT_EQ(popped->key.priority, oracle[i].key.priority);
  }
  EXPECT_FALSE(queue.try_pop().has_value());
}

TEST(PriorityQueueOracle, DequeueOrderMatchesStableSortOverSeededMixes) {
  const auto base = std::chrono::steady_clock::now();
  // A handful of deadline buckets (including exact ties and unbounded)
  // and a narrow priority range force every tiebreak level to fire.
  const std::chrono::steady_clock::time_point deadlines[] = {
      base + std::chrono::milliseconds(10), base + std::chrono::milliseconds(50),
      base + std::chrono::milliseconds(50), base + std::chrono::seconds(5),
      std::chrono::steady_clock::time_point::max()};
  for (const std::uint64_t seed : {0x5EEDULL, 0xBEEFULL, 0xCAFEULL, 0xF00DULL}) {
    util::Rng rng(seed);
    const int n = 64 + rng.uniform_int(0, 192);
    std::vector<OracleItem> mix;
    mix.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      OracleItem item;
      item.index = i;
      item.key.priority = rng.uniform_int(-2, 2);
      item.key.deadline = deadlines[rng.uniform_int(0, 4)];
      mix.push_back(item);
    }
    check_against_oracle(mix);
  }
}

TEST(PriorityQueueOracle, RequeuedItemResumesItsOriginalPosition) {
  PriorityBoundedQueue<int> queue(8, 0);
  const auto base = std::chrono::steady_clock::now();
  SchedKey low{0, base + std::chrono::seconds(1)};
  SchedKey high{1, base + std::chrono::seconds(1)};
  ASSERT_TRUE(queue.push(0, low));   // seq 0
  ASSERT_TRUE(queue.push(1, low));   // seq 1
  ASSERT_TRUE(queue.push(2, high));  // seq 2

  // Pop the high item, then put it back: it must still dequeue first,
  // ahead of the older-but-lower items (same key, same seq).
  std::optional<Scheduled<int>> popped = queue.try_pop();
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(popped->item, 2);
  queue.requeue(std::move(*popped));
  EXPECT_EQ(queue.try_pop()->item, 2);
  // And the equal-key items keep arrival order after a requeue too.
  popped = queue.try_pop();
  EXPECT_EQ(popped->item, 0);
  queue.requeue(std::move(*popped));
  EXPECT_EQ(queue.try_pop()->item, 0);
  EXPECT_EQ(queue.try_pop()->item, 1);
}

// ---------------------------------------------------------------------
// PriorityBoundedQueue: starvation bound
// ---------------------------------------------------------------------

TEST(StarvationBound, OldestItemIsForcedAfterExactlyBoundBypasses) {
  constexpr int kBound = 5;
  PriorityBoundedQueue<int> queue(256, kBound);
  SchedKey low{0, std::chrono::steady_clock::time_point::max()};
  SchedKey high{10, std::chrono::steady_clock::time_point::max()};

  ASSERT_TRUE(queue.push(-1, low));  // the victim: oldest from the start
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(queue.push(i, high));

  // Pops 0..kBound-1 bypass the victim; pop kBound is forced to it.
  for (int i = 0; i < kBound; ++i) {
    EXPECT_EQ(queue.try_pop()->item, i) << "high-priority item expected at pop " << i;
  }
  EXPECT_EQ(queue.try_pop()->item, -1) << "starvation bound did not force the oldest item";
  EXPECT_EQ(queue.starvation_promotions(), 1);
  // With the victim gone the flood drains oldest-first (equal keys), so
  // no further promotions are needed.
  for (int i = kBound; i < 100; ++i) EXPECT_EQ(queue.try_pop()->item, i);
  EXPECT_EQ(queue.starvation_promotions(), 1);
}

TEST(StarvationBound, HoldsUnderANinetyPercentFloodWithOngoingArrivals) {
  constexpr int kBound = 8;
  constexpr int kLows = 10;
  PriorityBoundedQueue<int> queue(4096, kBound);
  SchedKey low{0, std::chrono::steady_clock::time_point::max()};
  SchedKey high{10, std::chrono::steady_clock::time_point::max()};

  // The lows arrive first (so each in turn is the oldest waiting item),
  // then a high-priority flood that keeps arriving *during* service —
  // one to two fresh highs per pop, seeded — so the queue never runs
  // dry of higher-priority work while any low waits. ~90% of all
  // traffic is high-priority.
  for (int i = 0; i < kLows; ++i) ASSERT_TRUE(queue.push(-(i + 1), low));
  int highs_pushed = 0;
  for (; highs_pushed < 30; ++highs_pushed) ASSERT_TRUE(queue.push(highs_pushed, high));

  util::Rng rng(0xF100D);
  constexpr int kTotalHighs = 90 * kLows / 10;  // the 90% flood
  std::vector<int> low_positions(kLows, -1);
  int pops = 0;
  while (std::optional<Scheduled<int>> popped = queue.try_pop()) {
    ++pops;
    if (popped->item < 0) low_positions[static_cast<std::size_t>(-popped->item - 1)] = pops;
    for (int fresh = rng.uniform_int(1, 2); fresh > 0 && highs_pushed < kTotalHighs; --fresh) {
      ASSERT_TRUE(queue.push(highs_pushed++, high));
    }
  }
  ASSERT_EQ(pops, kLows + kTotalHighs);

  // While any low waits, the best key is always a high (the flood never
  // dries up before the last low is served), so every low service is a
  // forced promotion — and low k is the oldest waiter after low k-1
  // goes, giving the chained bound (kBound+1)*(k+1) on its position.
  for (int k = 0; k < kLows; ++k) {
    ASSERT_NE(low_positions[static_cast<std::size_t>(k)], -1) << "low " << k << " starved";
    EXPECT_LE(low_positions[static_cast<std::size_t>(k)], (kBound + 1) * (k + 1))
        << "low " << k << " was bypassed past the aging bound";
  }
  EXPECT_EQ(queue.starvation_promotions(), kLows);
}

TEST(StarvationBound, RequeuedPromotionKeepsItsCredit) {
  // A consumer that pops a forced promotion but cannot serve it (wrong
  // geometry for the forming batch, in session terms) requeues it —
  // the promotion credit must come back with it, or promote-requeue
  // cycles would starve the victim forever while the promotions
  // counter climbed.
  constexpr int kBound = 3;
  PriorityBoundedQueue<int> queue(256, kBound);
  SchedKey low{0, std::chrono::steady_clock::time_point::max()};
  SchedKey high{10, std::chrono::steady_clock::time_point::max()};
  ASSERT_TRUE(queue.push(-1, low));
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(queue.push(i, high));

  for (int i = 0; i < kBound; ++i) EXPECT_EQ(queue.try_pop()->item, i);
  std::optional<Scheduled<int>> victim = queue.try_pop();
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->item, -1);
  EXPECT_TRUE(victim->promoted);
  queue.requeue(std::move(*victim));  // "didn't fit the batch"

  // The very next pop forces the victim again — not after another
  // kBound bypasses.
  victim = queue.try_pop();
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->item, -1);
  EXPECT_TRUE(victim->promoted);
  EXPECT_EQ(queue.starvation_promotions(), 2);
  // A non-promoted requeue hands no credit back.
  std::optional<Scheduled<int>> ordinary = queue.try_pop();
  EXPECT_EQ(ordinary->item, kBound);
  EXPECT_FALSE(ordinary->promoted);
  queue.requeue(std::move(*ordinary));
  EXPECT_EQ(queue.try_pop()->item, kBound);
  EXPECT_EQ(queue.starvation_promotions(), 2);
}

TEST(StarvationBound, ZeroDisablesAgingEntirely) {
  PriorityBoundedQueue<int> queue(256, 0);
  SchedKey low{0, std::chrono::steady_clock::time_point::max()};
  SchedKey high{1, std::chrono::steady_clock::time_point::max()};
  ASSERT_TRUE(queue.push(-1, low));
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(queue.push(i, high));
  for (int i = 0; i < 50; ++i) EXPECT_EQ(queue.try_pop()->item, i);
  EXPECT_EQ(queue.try_pop()->item, -1);  // served dead last
  EXPECT_EQ(queue.starvation_promotions(), 0);
}

// ---------------------------------------------------------------------
// Session-level scheduling
// ---------------------------------------------------------------------

/// A fully trained tiny system shared by all tests in this file (built
/// once: training dominates the suite's runtime otherwise).
struct Fixture {
  data::SyntheticDataset ds;
  core::MEANet net;
  data::ClassDict dict;
  sim::CloudNode cloud;

  static Fixture& instance() {
    static Fixture fixture = make();
    return fixture;
  }

  static Fixture make() {
    util::Rng rng(1);
    data::SyntheticDataset ds = data::make_synthetic(tiny_data_spec(), 21);
    core::MEANet net = tiny_meanet_b(rng, 2);
    core::DistributedTrainer trainer(net);
    core::TrainOptions options;
    options.epochs = 5;
    options.batch_size = 16;
    util::Rng train_rng(2);
    trainer.train_main(ds.train, options, train_rng);
    data::ClassDict dict = trainer.select_hard_classes_from_validation(ds.test, 2);
    trainer.train_edge_blocks(ds.train, dict, options, train_rng);

    nn::Sequential cloud_model = core::build_cloud_classifier(2, 4, rng);
    core::TrainOptions cloud_options;
    cloud_options.epochs = 6;
    cloud_options.batch_size = 16;
    core::train_classifier(cloud_model, ds.train, cloud_options, train_rng);

    return Fixture{std::move(ds), std::move(net), std::move(dict),
                   sim::CloudNode(std::move(cloud_model))};
  }

  EngineConfig config() {
    EngineConfig cfg;
    cfg.net = &net;
    cfg.dict = &dict;
    cfg.batch_size = 16;
    return cfg;
  }
};

/// Routing policy whose first route() call blocks until release(): pins
/// the single worker so the submit queue deterministically backs up,
/// letting tests stage a backlog before any scheduling happens.
class GatedFirstPolicy : public core::RoutingPolicy {
 public:
  explicit GatedFirstPolicy(std::shared_ptr<const core::RoutingPolicy> inner)
      : inner_(std::move(inner)) {}

  core::Route route(const core::RouteSignals& signals) const override {
    if (!first_passed_.exchange(true)) {
      std::unique_lock<std::mutex> lock(mutex_);
      gate_.wait(lock, [&] { return released_; });
    }
    return inner_->route(signals);
  }
  unsigned needed_signals() const override { return inner_->needed_signals(); }
  std::string describe() const override { return "gated+" + inner_->describe(); }

  void release() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      released_ = true;
    }
    gate_.notify_all();
  }

  /// True once the worker has picked up the pinning request and entered
  /// route(): only then is the submit queue guaranteed to back up.
  bool engaged() const { return first_passed_.load(); }
  void wait_engaged() const {
    while (!engaged()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

 private:
  std::shared_ptr<const core::RoutingPolicy> inner_;
  mutable std::atomic<bool> first_passed_{false};
  mutable std::mutex mutex_;
  mutable std::condition_variable gate_;
  mutable bool released_ = false;
};

std::shared_ptr<GatedFirstPolicy> gated_policy(const Fixture& f) {
  return std::make_shared<GatedFirstPolicy>(
      std::make_shared<core::EntropyThresholdPolicy>(f.dict, core::PolicyConfig{}));
}

/// Settle order observed through completion callbacks: the callback
/// runner is a single thread executing in post (= settle) order.
struct SettleOrder {
  std::mutex mutex;
  std::vector<int> order;

  SubmitOptions options(int tag, std::optional<int> priority = std::nullopt) {
    SubmitOptions opts;
    opts.priority = priority;
    opts.on_complete = [this, tag](const ResultHandle&) {
      std::lock_guard<std::mutex> lock(mutex);
      order.push_back(tag);
    };
    return opts;
  }
};

TEST(SessionScheduling, BacklogIsServedInPriorityOrderNotSubmissionOrder) {
  Fixture& f = Fixture::instance();
  auto gate = gated_policy(f);
  EngineConfig cfg = f.config();
  cfg.policy = gate;
  cfg.worker_threads = 1;
  cfg.batch_size = 1;
  SettleOrder settle;
  {
    InferenceSession session(cfg);
    // Request 0 pins the worker behind the gate; the rest pile up.
    session.submit(f.ds.test.instance(0), settle.options(0));
    gate->wait_engaged();  // the worker holds request 0; the rest will queue
    session.submit(f.ds.test.instance(1), settle.options(1, 0));    // low
    session.submit(f.ds.test.instance(2), settle.options(2, 5));    // high
    session.submit(f.ds.test.instance(3), settle.options(3, 0));    // low
    session.submit(f.ds.test.instance(4), settle.options(4, 5));    // high
    session.submit(f.ds.test.instance(5), settle.options(5, 9));    // highest
    gate->release();
    session.drain();
  }
  // drain() still returns results id-sorted, but the *settle* order is
  // the scheduler's: priorities first, arrival order among equals.
  const std::vector<int> expected{0, 5, 2, 4, 1, 3};
  EXPECT_EQ(settle.order, expected);
}

TEST(SessionScheduling, EqualPriorityIsServedEarliestDeadlineFirst) {
  Fixture& f = Fixture::instance();
  auto gate = gated_policy(f);
  EngineConfig cfg = f.config();
  cfg.policy = gate;
  cfg.worker_threads = 1;
  cfg.batch_size = 1;
  SettleOrder settle;
  {
    InferenceSession session(cfg);
    session.submit(f.ds.test.instance(0), settle.options(0));
    gate->wait_engaged();  // the worker holds request 0; the rest will queue
    SubmitOptions loose = settle.options(1);
    loose.deadline_s = 3600.0;
    session.submit(f.ds.test.instance(1), loose);
    SubmitOptions tight = settle.options(2);
    tight.deadline_s = 1800.0;  // tighter: must be served first
    session.submit(f.ds.test.instance(2), tight);
    gate->release();
    session.drain();
  }
  const std::vector<int> expected{0, 2, 1};
  EXPECT_EQ(settle.order, expected);
}

TEST(SessionScheduling, CoalescedBatchesTakeHighPriorityRequestsFirst) {
  Fixture& f = Fixture::instance();
  auto gate = gated_policy(f);
  EngineConfig cfg = f.config();
  cfg.policy = gate;
  cfg.worker_threads = 1;
  cfg.batch_size = 3;  // the first post-gate batch coalesces 3 requests
  SettleOrder settle;
  {
    InferenceSession session(cfg);
    session.submit(f.ds.test.instance(0), settle.options(0));
    gate->wait_engaged();  // the worker holds request 0; the rest will queue
    // Three lows queued before three highs: the regression (FIFO
    // coalescing) would build the first batch from the lows.
    for (int i = 1; i <= 3; ++i) {
      session.submit(f.ds.test.instance(i), settle.options(i, 0));
    }
    for (int i = 4; i <= 6; ++i) {
      session.submit(f.ds.test.instance(i), settle.options(i, 5));
    }
    gate->release();
    session.drain();
  }
  ASSERT_EQ(settle.order.size(), 7u);
  EXPECT_EQ(settle.order.front(), 0);
  // The first coalesced batch is exactly the three high-priority
  // requests, in arrival order; the lows settle afterwards.
  EXPECT_EQ((std::vector<int>(settle.order.begin() + 1, settle.order.begin() + 4)),
            (std::vector<int>{4, 5, 6}));
  EXPECT_EQ((std::vector<int>(settle.order.begin() + 4, settle.order.end())),
            (std::vector<int>{1, 2, 3}));
}

TEST(SessionScheduling, HighPriorityStreamOvertakesABulkRun) {
  Fixture& f = Fixture::instance();
  auto gate = gated_policy(f);
  EngineConfig cfg = f.config();
  cfg.policy = gate;
  cfg.worker_threads = 1;
  cfg.batch_size = 1;
  // run()'s chunks carry the route_priority default (0 here); the
  // streamed frame is submitted above it.
  SettleOrder settle;
  std::vector<InferenceResult> results;
  {
    InferenceSession session(cfg);
    // Pin the worker, then start a bulk run in another thread; its
    // chunks queue up behind the gate.
    session.submit(f.ds.test.instance(0), settle.options(0));
    gate->wait_engaged();  // the worker holds request 0; the run's chunks will queue
    data::Dataset bulk;
    bulk.images = f.ds.test.images.slice_batch(0, 8);
    bulk.labels.assign(f.ds.test.labels.begin(), f.ds.test.labels.begin() + 8);
    bulk.num_classes = f.ds.test.num_classes;
    std::thread runner([&] { session.run(bulk); });
    // Wait until the run's chunks are actually queued.
    while (session.metrics().submitted_instances < 9) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ResultHandle urgent = session.submit(f.ds.test.instance(9), settle.options(99, 5));
    gate->release();
    results = urgent.wait();
    runner.join();
    session.drain();
    // The session destructor flushes the completion-callback thread;
    // only then is settle.order safe to read (asserting right after
    // drain() raced the callback runner and flaked under load).
  }
  ASSERT_EQ(results.size(), 1u);
  // The urgent frame settled right after the gated request, before any
  // of the run()'s eight chunks.
  ASSERT_GE(settle.order.size(), 2u);
  EXPECT_EQ(settle.order[0], 0);
  EXPECT_EQ(settle.order[1], 99);
}

TEST(SessionScheduling, FloodPromotionsSurfaceInMetricsAndLowsFinish) {
  Fixture& f = Fixture::instance();
  auto gate = gated_policy(f);
  constexpr int kBound = 4;
  constexpr int kHighs = 54;
  constexpr int kLows = 6;  // a 90% high-priority flood
  EngineConfig cfg = f.config();
  cfg.policy = gate;
  cfg.worker_threads = 1;
  cfg.batch_size = 1;
  cfg.starvation_bound = kBound;
  cfg.queue_capacity = kHighs + kLows + 8;
  SettleOrder settle;
  SessionMetrics m;
  {
    InferenceSession session(cfg);
    session.submit(f.ds.test.instance(0), settle.options(0));
    gate->wait_engaged();  // the worker holds request 0; the rest will queue
    // Lows first so they are the oldest waiters, then the flood.
    for (int i = 0; i < kLows; ++i) {
      session.submit(f.ds.test.instance(1 + i), settle.options(-(i + 1), 0));
    }
    for (int i = 0; i < kHighs; ++i) {
      session.submit(f.ds.test.instance((1 + kLows + i) % f.ds.test.size()),
                     settle.options(1 + i, 10));
    }
    gate->release();
    session.drain();
    m = session.metrics();
  }
  ASSERT_EQ(settle.order.size(), static_cast<std::size_t>(1 + kLows + kHighs));
  // Aging paced every low through the flood: low i (tags -1..-kLows,
  // oldest first) is served by pop (kBound+1)*(i+1) at the latest.
  for (int i = 0; i < kLows; ++i) {
    const auto it = std::find(settle.order.begin(), settle.order.end(), -(i + 1));
    ASSERT_NE(it, settle.order.end());
    const int position = static_cast<int>(it - settle.order.begin());  // pop index, tag 0 first
    EXPECT_LE(position, (kBound + 1) * (i + 1))
        << "low-priority request " << i << " starved past the aging bound";
  }
  EXPECT_GE(m.starvation_promotions, kLows);
  // Per-priority queue-wait percentiles landed in the snapshot. (No
  // high-vs-low latency comparison here: with a bound this tight the
  // aged lows are *supposed* to finish nearly alongside the highs —
  // the settle-position bound above is the scheduling property.)
  const PriorityWaitStats high_wait = m.priority_wait(10);
  const PriorityWaitStats low_wait = m.priority_wait(0);
  EXPECT_EQ(high_wait.requests, kHighs);
  EXPECT_EQ(low_wait.requests, kLows + 1);  // the gated request is priority 0 too
  EXPECT_GT(low_wait.p99_s, 0.0);
  EXPECT_GT(high_wait.p99_s, 0.0);
}

// ---------------------------------------------------------------------
// Composition with admission control (PR 4) and cancellation (PR 3)
// ---------------------------------------------------------------------

TEST(SchedulingComposition, AdmissionStillGatesPrioritizedSubmits) {
  Fixture& f = Fixture::instance();
  auto gate = gated_policy(f);
  EngineConfig cfg = f.config();
  cfg.policy = gate;
  cfg.worker_threads = 1;
  cfg.batch_size = 1;
  cfg.set_deadline_s(0.050);
  cfg.admission_control = true;
  cfg.admission_service_estimate_s = 10.0;
  InferenceSession session(cfg);

  ResultHandle first = session.submit(f.ds.test.instance(0));
  gate->wait_engaged();  // the worker holds request 0; the queue is empty again
  SubmitOptions high;
  high.priority = 100;
  ResultHandle second = session.submit(f.ds.test.instance(1), high);  // queue empty: admitted
  // One instance queued ahead *at the same priority* (FIFO among
  // equals) -> estimated wait 10s >> 50ms deadline: rejected. Priority
  // does not bribe admission past traffic it cannot overtake.
  EXPECT_THROW(session.submit(f.ds.test.instance(2), high), AdmissionRejected);
  // A lenient per-submit deadline still clears it at any priority.
  SubmitOptions loose = high;
  loose.deadline_s = 3600.0;
  ResultHandle third = session.submit(f.ds.test.instance(2), loose);

  gate->release();
  EXPECT_EQ(first.wait().size(), 1u);
  EXPECT_EQ(second.wait().size(), 1u);
  EXPECT_EQ(third.wait().size(), 1u);
  EXPECT_EQ(session.metrics().admission_rejections, 1);
  session.drain();
}

TEST(SchedulingComposition, LowPriorityBacklogNeverShedsHighPriorityTraffic) {
  Fixture& f = Fixture::instance();
  auto gate = gated_policy(f);
  EngineConfig cfg = f.config();
  cfg.policy = gate;
  cfg.worker_threads = 1;
  cfg.batch_size = 1;
  cfg.set_deadline_s(0.050);
  cfg.admission_control = true;
  cfg.admission_service_estimate_s = 10.0;
  InferenceSession session(cfg);

  ResultHandle first = session.submit(f.ds.test.instance(0));
  gate->wait_engaged();
  // A deep *low*-priority backlog whose estimated wait dwarfs the 50ms
  // deadline (the lenient per-submit override keeps the backlog itself
  // admitted)...
  SubmitOptions low_loose;
  low_loose.priority = -5;
  low_loose.deadline_s = 3600.0;
  std::vector<ResultHandle> backlog;
  for (int i = 0; i < 6; ++i) {
    backlog.push_back(session.submit(f.ds.test.instance(1 + i), low_loose));
  }
  // ...does not reject a high-priority submit: the scheduler serves it
  // ahead of every queued low, so its estimated queue wait is ~0 and
  // the 50ms deadline is attainable.
  SubmitOptions urgent;
  urgent.priority = 100;
  ResultHandle vip = session.submit(f.ds.test.instance(7), urgent);
  // Whereas another *low* submit (now 6 lows queued at-or-above its
  // level) is shed even with priorities in play.
  SubmitOptions low_tight;
  low_tight.priority = -5;
  EXPECT_THROW(session.submit(f.ds.test.instance(8), low_tight), AdmissionRejected);

  gate->release();
  EXPECT_EQ(first.wait().size(), 1u);
  EXPECT_EQ(vip.wait().size(), 1u);
  for (ResultHandle& h : backlog) EXPECT_EQ(h.wait().size(), 1u);
  EXPECT_EQ(session.metrics().admission_rejections, 1);
  session.drain();
}

TEST(SchedulingComposition, CancelledRequestsDropOutOfTheScheduleCleanly) {
  Fixture& f = Fixture::instance();
  auto gate = gated_policy(f);
  EngineConfig cfg = f.config();
  cfg.policy = gate;
  cfg.worker_threads = 1;
  cfg.batch_size = 1;
  SettleOrder settle;
  std::int64_t cancel_wins = 0;
  {
    InferenceSession session(cfg);
    session.submit(f.ds.test.instance(0), settle.options(0));
    gate->wait_engaged();  // the worker holds request 0; the rest will queue
    std::vector<ResultHandle> lows, highs;
    for (int i = 0; i < 4; ++i) {
      lows.push_back(session.submit(f.ds.test.instance(1 + i), settle.options(10 + i, 0)));
    }
    for (int i = 0; i < 4; ++i) {
      highs.push_back(session.submit(f.ds.test.instance(5 + i), settle.options(20 + i, 5)));
    }
    // Cancel half of each class while everything still sits queued.
    if (lows[1].cancel()) ++cancel_wins;
    if (lows[3].cancel()) ++cancel_wins;
    if (highs[0].cancel()) ++cancel_wins;
    if (highs[2].cancel()) ++cancel_wins;
    gate->release();
    session.drain();
    const SessionMetrics m = session.metrics();
    EXPECT_EQ(m.cancelled_instances, cancel_wins);
    EXPECT_EQ(m.completed_instances + m.cancelled_instances, 9);
  }
  // All four cancels won (the worker was gated), their callbacks fired
  // (cancellation settles a request too), and the survivors settled in
  // schedule order: surviving highs before surviving lows.
  ASSERT_EQ(cancel_wins, 4);
  ASSERT_EQ(settle.order.size(), 9u);
  std::vector<int> served;
  for (const int tag : settle.order) {
    // Cancel-transition callbacks fire from the cancelling thread's
    // post; only keep the worker-settled survivors for the order check.
    if (tag == 0 || tag == 10 || tag == 12 || tag == 21 || tag == 23) served.push_back(tag);
  }
  EXPECT_EQ(served, (std::vector<int>{0, 21, 23, 10, 12}));
}

}  // namespace
}  // namespace meanet::runtime
