// Frame-level tests of the MWIR wire protocol: golden bytes, version
// skew, CRC corruption, partial-frame reassembly from split reads,
// truncation/disconnect faults, and hostile payload decodes. Everything
// runs over the in-memory pipe transport — no sockets, no model, fast
// and deterministic.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "nn/serialize.h"
#include "wire/crc32.h"
#include "wire/fault_transport.h"
#include "wire/frame.h"
#include "wire/transport.h"

namespace meanet::wire {
namespace {

Tensor iota_tensor(const Shape& shape) {
  Tensor t{shape};
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t.data()[i] = static_cast<float>(i) * 0.25f;
  }
  return t;
}

// ---- CRC32 ----

TEST(Crc32, MatchesIeeeReferenceVector) {
  // The canonical IEEE 802.3 check value.
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0u);
}

TEST(Crc32, SeedChainingMatchesOneShot) {
  const char* data = "the quick brown fox";
  const std::size_t n = std::strlen(data);
  const std::uint32_t whole = crc32(data, n);
  const std::uint32_t chained = crc32(data + 5, n - 5, crc32(data, 5));
  EXPECT_EQ(whole, chained);
}

// ---- Frame encoding ----

TEST(Frame, GoldenHeaderBytes) {
  Frame frame;
  frame.command = Command::kPing;
  frame.request_id = 0x1122334455667788ull;
  frame.payload = {0xDE, 0xAD};
  const std::vector<std::uint8_t> bytes = encode_frame(frame);
  ASSERT_EQ(bytes.size(), kFrameHeaderBytes + 2);
  // magic
  EXPECT_EQ(bytes[0], 'M');
  EXPECT_EQ(bytes[1], 'W');
  EXPECT_EQ(bytes[2], 'I');
  EXPECT_EQ(bytes[3], 'R');
  // version u16 LE
  EXPECT_EQ(bytes[4], kWireVersion & 0xFF);
  EXPECT_EQ(bytes[5], kWireVersion >> 8);
  // command u16 LE
  EXPECT_EQ(bytes[6], static_cast<std::uint8_t>(Command::kPing));
  EXPECT_EQ(bytes[7], 0);
  // request id u64 LE
  EXPECT_EQ(bytes[8], 0x88);
  EXPECT_EQ(bytes[15], 0x11);
  // payload size u32 LE
  EXPECT_EQ(bytes[16], 2);
  EXPECT_EQ(bytes[17], 0);
  // CRC of {0xDE, 0xAD}
  std::uint32_t crc = 0;
  std::memcpy(&crc, bytes.data() + 20, 4);
  EXPECT_EQ(crc, crc32(frame.payload.data(), frame.payload.size()));
  EXPECT_EQ(bytes[24], 0xDE);
  EXPECT_EQ(bytes[25], 0xAD);
}

TEST(Frame, RoundTripsEveryCommandOverPipe) {
  PipePair pipe = make_pipe();
  for (const Command command :
       {Command::kOffloadRequest, Command::kOffloadResponse, Command::kError,
        Command::kStatsRequest, Command::kStatsResponse, Command::kPing, Command::kPong}) {
    Frame sent;
    sent.command = command;
    sent.request_id = 42 + static_cast<std::uint64_t>(command);
    sent.payload = {1, 2, 3, static_cast<std::uint8_t>(command)};
    write_frame(*pipe.first, sent);
    Frame got;
    ASSERT_TRUE(read_frame(*pipe.second, got));
    EXPECT_EQ(got.command, sent.command);
    EXPECT_EQ(got.request_id, sent.request_id);
    EXPECT_EQ(got.payload, sent.payload);
  }
}

TEST(Frame, OrderlyCloseReturnsFalse) {
  PipePair pipe = make_pipe();
  pipe.first->close();
  Frame got;
  EXPECT_FALSE(read_frame(*pipe.second, got));
}

TEST(Frame, VersionSkewRejected) {
  PipePair pipe = make_pipe();
  Frame frame;
  frame.command = Command::kPing;
  std::vector<std::uint8_t> bytes = encode_frame(frame);
  bytes[4] = static_cast<std::uint8_t>(kWireVersion + 1);  // future version
  pipe.first->write_all(bytes.data(), bytes.size());
  Frame got;
  try {
    read_frame(*pipe.second, got);
    FAIL() << "version skew accepted";
  } catch (const ProtocolError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST(Frame, BadMagicRejected) {
  PipePair pipe = make_pipe();
  std::vector<std::uint8_t> bytes = encode_frame(Frame{});
  bytes[0] = 'X';
  pipe.first->write_all(bytes.data(), bytes.size());
  Frame got;
  EXPECT_THROW(read_frame(*pipe.second, got), ProtocolError);
}

TEST(Frame, OversizedPayloadRejectedBeforeAllocation) {
  PipePair pipe = make_pipe();
  std::vector<std::uint8_t> bytes = encode_frame(Frame{});
  const std::uint32_t huge = 0xFFFFFFFFu;  // 4 GiB length prefix
  std::memcpy(bytes.data() + 16, &huge, 4);
  pipe.first->write_all(bytes.data(), bytes.size());
  Frame got;
  FrameLimits limits;
  limits.max_payload_bytes = 1u << 20;
  EXPECT_THROW(read_frame(*pipe.second, got, limits), ProtocolError);
}

TEST(Frame, ReadTimesOutWithoutData) {
  PipePair pipe = make_pipe();
  Frame got;
  FrameLimits limits;
  limits.timeout_s = 0.05;
  EXPECT_THROW(read_frame(*pipe.second, got, limits), TransportTimeout);
}

// ---- Fault injection ----

TEST(FaultInjection, CorruptedPayloadFailsCrc) {
  PipePair pipe = make_pipe();
  FaultPlan plan;
  plan.corrupt_byte_at = kFrameHeaderBytes + 1;  // second payload byte
  FaultInjectingTransport faulty(std::move(pipe.first), plan);
  Frame frame;
  frame.command = Command::kOffloadResponse;
  frame.payload = {9, 9, 9, 9};
  write_frame(faulty, frame);
  Frame got;
  try {
    read_frame(*pipe.second, got);
    FAIL() << "corrupted payload accepted";
  } catch (const ProtocolError& e) {
    EXPECT_NE(std::string(e.what()).find("CRC"), std::string::npos);
  }
}

TEST(FaultInjection, TruncatedFrameSurfacesAsTransportError) {
  PipePair pipe = make_pipe();
  FaultPlan plan;
  plan.truncate_after_bytes = 10;  // cut inside the 24-byte header
  FaultInjectingTransport faulty(std::move(pipe.first), plan);
  write_frame(faulty, Frame{Command::kPing, 7, {}});
  Frame got;
  EXPECT_THROW(read_frame(*pipe.second, got), TransportError);
}

TEST(FaultInjection, TruncationMidPayloadAlsoFails) {
  PipePair pipe = make_pipe();
  FaultPlan plan;
  plan.truncate_after_bytes = kFrameHeaderBytes + 2;  // header + 2 payload bytes
  FaultInjectingTransport faulty(std::move(pipe.first), plan);
  write_frame(faulty, Frame{Command::kPing, 7, {1, 2, 3, 4, 5}});
  Frame got;
  EXPECT_THROW(read_frame(*pipe.second, got), TransportError);
}

TEST(FaultInjection, DisconnectMidFrameThrowsOnWriter) {
  PipePair pipe = make_pipe();
  FaultPlan plan;
  plan.disconnect_after_bytes = 12;
  FaultInjectingTransport faulty(std::move(pipe.first), plan);
  EXPECT_THROW(write_frame(faulty, Frame{Command::kPing, 1, {}}), TransportError);
  // The reader sees the stream die mid-frame too.
  Frame got;
  EXPECT_THROW(read_frame(*pipe.second, got), TransportError);
}

TEST(FaultInjection, FrameReassemblyFromSingleByteReads) {
  // Cap reads at one byte: the frame reader must stitch the header and
  // payload back together across 24+n reads.
  PipePair pipe = make_pipe();
  FaultPlan plan;
  plan.max_read_chunk = 1;
  FaultInjectingTransport capped(std::move(pipe.second), plan);
  Frame sent;
  sent.command = Command::kOffloadResponse;
  sent.request_id = 99;
  sent.payload = encode_offload_response({1, 2, 3});
  write_frame(*pipe.first, sent);
  Frame got;
  ASSERT_TRUE(read_frame(capped, got));
  EXPECT_EQ(got.request_id, 99u);
  EXPECT_EQ(decode_offload_response(got.payload), (std::vector<int>{1, 2, 3}));
}

TEST(FaultInjection, SplitWritesReassembleToo) {
  // The other direction: the writer dribbles the frame in two chunks
  // with a reader already blocked — read_exact must keep collecting.
  PipePair pipe = make_pipe();
  Frame sent;
  sent.command = Command::kPong;
  sent.request_id = 5;
  sent.payload = {7, 7};
  const std::vector<std::uint8_t> bytes = encode_frame(sent);
  std::thread writer([&] {
    pipe.first->write_all(bytes.data(), 13);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    pipe.first->write_all(bytes.data() + 13, bytes.size() - 13);
  });
  Frame got;
  ASSERT_TRUE(read_frame(*pipe.second, got));
  writer.join();
  EXPECT_EQ(got.request_id, 5u);
  EXPECT_EQ(got.payload, sent.payload);
}

// ---- Payload codecs ----

TEST(Codec, OffloadRequestRoundTrip) {
  runtime::OffloadPayload payload;
  payload.images = iota_tensor(Shape{2, 3, 4, 4});
  payload.features = iota_tensor(Shape{2, 2, 2, 2});
  const auto bytes = encode_offload_request(payload);
  const runtime::OffloadPayload back = decode_offload_request(bytes);
  EXPECT_TRUE(allclose(back.images, payload.images, 0.0f));
  EXPECT_TRUE(allclose(back.features, payload.features, 0.0f));
}

TEST(Codec, OffloadRequestRejectsHostileInput) {
  runtime::OffloadPayload payload;
  payload.images = iota_tensor(Shape{1, 2, 3, 3});
  const auto good = encode_offload_request(payload);

  // Trailing garbage after the tensors.
  auto trailing = good;
  trailing.push_back(0);
  EXPECT_THROW(decode_offload_request(trailing), ProtocolError);

  // Unknown flag bits.
  auto flags = good;
  flags[0] |= 0x80;
  EXPECT_THROW(decode_offload_request(flags), ProtocolError);

  // No tensors at all.
  const std::vector<std::uint8_t> none = {0, 0, 0, 0};
  EXPECT_THROW(decode_offload_request(none), ProtocolError);

  // Truncated tensor data.
  auto cut = good;
  cut.resize(cut.size() - 5);
  EXPECT_THROW(decode_offload_request(cut), ProtocolError);

  // Hostile rank (claims 200 dims).
  auto rank = good;
  rank[4] = 200;
  EXPECT_THROW(decode_offload_request(rank), ProtocolError);

  // Non-NCHW tensor: re-encode a rank-2 tensor by hand.
  std::vector<std::uint8_t> rank2 = {1, 0, 0, 0};  // flags: images
  nn::append_tensor(rank2, iota_tensor(Shape{2, 2}));
  EXPECT_THROW(decode_offload_request(rank2), ProtocolError);
}

TEST(Codec, OffloadResponseRejectsCountMismatch) {
  auto bytes = encode_offload_response({1, 2, 3});
  bytes[0] = 7;  // claims 7 labels, carries 3
  EXPECT_THROW(decode_offload_response(bytes), ProtocolError);
  bytes.resize(bytes.size() - 1);  // misaligned payload
  EXPECT_THROW(decode_offload_response(bytes), ProtocolError);
}

TEST(Codec, ErrorAndStatsRoundTrip) {
  const auto err = encode_error(ErrorCode::kBackendFailed, "cloud on fire");
  const auto [code, message] = decode_error(err);
  EXPECT_EQ(code, ErrorCode::kBackendFailed);
  EXPECT_EQ(message, "cloud on fire");

  const StatsEntries entries = {{"frames_in", 12}, {"batches", 3}};
  const StatsEntries back = decode_stats(encode_stats(entries));
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].first, "frames_in");
  EXPECT_EQ(back[0].second, 12u);
  EXPECT_EQ(back[1].first, "batches");
  EXPECT_EQ(back[1].second, 3u);
}

TEST(Codec, ErrorRejectsHostileLength) {
  auto bytes = encode_error(ErrorCode::kMalformedFrame, "short");
  bytes[4] = 0xFF;  // message length far beyond the payload
  bytes[5] = 0xFF;
  EXPECT_THROW(decode_error(bytes), ProtocolError);
}

TEST(Codec, StatsRejectsHostileCounts) {
  auto bytes = encode_stats({{"a", 1}});
  bytes[0] = 0xFF;  // claims 255+ entries
  bytes[1] = 0xFF;
  EXPECT_THROW(decode_stats(bytes), ProtocolError);
}

TEST(Codec, RequestWireBytesPricesTheFraming) {
  const Shape image{1, 3, 8, 8};
  const Shape feature{1, 4, 2, 2};
  // header + flags + (rank + dims + f32 data) per shipped tensor.
  const std::int64_t images_only = request_wire_bytes(image, feature, true, false);
  EXPECT_EQ(images_only, 24 + 4 + (4 + 16 + 4 * image.numel()));
  const std::int64_t both = request_wire_bytes(image, feature, true, true);
  EXPECT_EQ(both, images_only + 4 + 16 + 4 * feature.numel());
}

// ---- Pipe transport semantics the framing relies on ----

TEST(Pipe, DrainsBufferedBytesAfterClose) {
  PipePair pipe = make_pipe();
  const std::uint8_t data[3] = {1, 2, 3};
  pipe.first->write_all(data, sizeof(data));
  pipe.first->close();
  std::uint8_t buf[8];
  EXPECT_EQ(pipe.second->read_some(buf, sizeof(buf), kNoTimeout), 3u);
  EXPECT_EQ(pipe.second->read_some(buf, sizeof(buf), kNoTimeout), 0u);  // now EOF
}

TEST(Pipe, WriteAfterPeerCloseThrows) {
  PipePair pipe = make_pipe();
  pipe.second->close();
  const std::uint8_t data[1] = {1};
  EXPECT_THROW(pipe.first->write_all(data, 1), TransportError);
}

}  // namespace
}  // namespace meanet::wire
