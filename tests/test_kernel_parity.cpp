// Parity and concurrency guarantees of the GEMM-backed inference hot
// path:
//  - the blocked, packed GEMM matches the naive reference loops across
//    seeded shapes and all four transpose cases;
//  - Conv2d / DepthwiseConv2d forwards match the naive per-pixel loop
//    nests (MEANET_NAIVE_KERNELS path) within 1e-5 across odd sizes,
//    stride 2, padding, and batch > 1;
//  - eval-mode Conv+BN folding matches the unfused pair;
//  - eval-mode forwards are cache-free (activation_cache_elems == 0)
//    and thread-safe: four workers share ONE net and reproduce the
//    single-threaded logits bit-identically (run this binary under
//    TSAN to verify the absence of data races mechanically);
//  - the row-striped GEMM threading is bit-identical to single-thread.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <utility>
#include <vector>

#include "nn/batchnorm2d.h"
#include "nn/conv2d.h"
#include "nn/fuse.h"
#include "nn/sequential.h"
#include "tensor/ops.h"
#include "tiny_models.h"

namespace meanet {
namespace {

using meanet::testing::tiny_meanet_b;

/// Runs `fn` once with the naive kernels and once with the optimized
/// ones, restoring the previous selection afterwards.
template <typename Fn>
std::pair<Tensor, Tensor> both_kernel_paths(Fn fn) {
  const bool before = ops::naive_kernels();
  ops::set_naive_kernels(true);
  Tensor naive = fn();
  ops::set_naive_kernels(false);
  Tensor fast = fn();
  ops::set_naive_kernels(before);
  return {std::move(naive), std::move(fast)};
}

TEST(GemmParity, BlockedMatchesNaiveAcrossShapesAndTransposes) {
  util::Rng rng(7);
  // Odd sizes, tile-boundary sizes, degenerate rows/cols.
  const int sizes[][3] = {{1, 1, 1},   {3, 5, 7},    {4, 16, 256}, {17, 33, 9},
                          {64, 64, 64}, {5, 130, 31}, {130, 17, 300}};
  for (const auto& s : sizes) {
    const int m = s[0], n = s[1], k = s[2];
    const Tensor a = Tensor::normal(Shape{m, k}, rng);
    const Tensor b = Tensor::normal(Shape{k, n}, rng);
    const Tensor at = Tensor::normal(Shape{k, m}, rng);
    const Tensor bt = Tensor::normal(Shape{n, k}, rng);
    for (int ta = 0; ta < 2; ++ta) {
      for (int tb = 0; tb < 2; ++tb) {
        auto [naive, fast] = both_kernel_paths([&] {
          return ops::matmul(ta ? at : a, tb ? bt : b, ta != 0, tb != 0);
        });
        ASSERT_EQ(naive.shape(), fast.shape());
        for (std::int64_t i = 0; i < naive.numel(); ++i) {
          ASSERT_NEAR(naive[i], fast[i], 1e-4f * std::max(1.0f, std::fabs(naive[i])))
              << "m=" << m << " n=" << n << " k=" << k << " ta=" << ta << " tb=" << tb
              << " i=" << i;
        }
      }
    }
  }
}

TEST(GemmParity, AlphaBetaAccumulationMatches) {
  util::Rng rng(11);
  const int m = 19, n = 37, k = 23;
  const Tensor a = Tensor::normal(Shape{m, k}, rng);
  const Tensor b = Tensor::normal(Shape{k, n}, rng);
  const Tensor c0 = Tensor::normal(Shape{m, n}, rng);
  auto run = [&] {
    Tensor c = c0;
    ops::gemm(false, false, m, n, k, 0.5f, a.data(), k, b.data(), n, 2.0f, c.data(), n);
    return c;
  };
  auto [naive, fast] = both_kernel_paths(run);
  for (std::int64_t i = 0; i < naive.numel(); ++i) {
    ASSERT_NEAR(naive[i], fast[i], 1e-4f * std::max(1.0f, std::fabs(naive[i])));
  }
}

TEST(GemmParity, RowStripedThreadingIsBitIdentical) {
  util::Rng rng(13);
  const int m = 160, n = 160, k = 160;  // big enough to cross the spawn threshold
  const Tensor a = Tensor::normal(Shape{m, k}, rng);
  const Tensor b = Tensor::normal(Shape{k, n}, rng);
  const int before = ops::gemm_threads();
  ops::set_gemm_threads(1);
  const Tensor single = ops::matmul(a, b);
  ops::set_gemm_threads(3);
  const Tensor threaded = ops::matmul(a, b);
  ops::set_gemm_threads(before);
  EXPECT_TRUE(allclose(single, threaded, 0.0f));  // same row, same k-order
}

class ConvParity : public ::testing::TestWithParam<std::tuple<int, int, int, int, int, int>> {};
// batch, in_c, out_c, kernel, stride, padding

TEST_P(ConvParity, GemmPathMatchesNaiveLoopNest) {
  const auto [batch, in_c, out_c, kernel, stride, padding] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(batch * 7919 + in_c * 131 + out_c * 17 +
                                           kernel * 5 + stride * 3 + padding));
  nn::Conv2d conv(in_c, out_c, kernel, stride, padding, /*bias=*/true, rng);
  const int size = 9;  // odd, so strides hit ragged edges
  if (conv.output_shape(Shape{1, in_c, size, size}).height() <= 0) GTEST_SKIP();
  const Tensor x = Tensor::normal(Shape{batch, in_c, size, size}, rng);
  auto [naive, fast] = both_kernel_paths([&] { return conv.forward(x, nn::Mode::kEval); });
  ASSERT_EQ(naive.shape(), fast.shape());
  EXPECT_TRUE(allclose(naive, fast, 1e-5f))
      << "b=" << batch << " in=" << in_c << " out=" << out_c << " k=" << kernel
      << " s=" << stride << " p=" << padding;
}

INSTANTIATE_TEST_SUITE_P(SeededShapes, ConvParity,
                         ::testing::Combine(::testing::Values(1, 3), ::testing::Values(1, 3),
                                            ::testing::Values(2, 5), ::testing::Values(1, 3, 5),
                                            ::testing::Values(1, 2), ::testing::Values(0, 1, 2)));

class DepthwiseParity : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};
// channels, kernel, stride, padding

TEST_P(DepthwiseParity, SpecializedPathMatchesNaiveLoopNest) {
  const auto [channels, kernel, stride, padding] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(channels * 101 + kernel * 13 + stride * 7 + padding));
  nn::DepthwiseConv2d dw(channels, kernel, stride, padding, rng);
  const int size = 11;
  if (dw.output_shape(Shape{1, channels, size, size}).height() <= 0) GTEST_SKIP();
  const Tensor x = Tensor::normal(Shape{2, channels, size, size}, rng);
  auto [naive, fast] = both_kernel_paths([&] { return dw.forward(x, nn::Mode::kEval); });
  EXPECT_TRUE(allclose(naive, fast, 1e-5f))
      << "c=" << channels << " k=" << kernel << " s=" << stride << " p=" << padding;
}

INSTANTIATE_TEST_SUITE_P(SeededShapes, DepthwiseParity,
                         ::testing::Combine(::testing::Values(1, 3), ::testing::Values(3, 5),
                                            ::testing::Values(1, 2), ::testing::Values(0, 1, 2)));

TEST(DepthwiseParity, NarrowerThanKernelInputsStayInBounds) {
  // Regression: with in_w < kernel (valid thanks to padding) the
  // interior-column bound's truncating division used to round toward
  // zero instead of clamping to "no interior", reading past the row.
  util::Rng rng(41);
  for (const int stride : {1, 2}) {
    nn::DepthwiseConv2d dw(1, 3, stride, /*padding=*/1, rng);
    const Tensor x = Tensor::normal(Shape{1, 1, 3, 2}, rng);  // 2-wide rows
    auto [naive, fast] = both_kernel_paths([&] { return dw.forward(x, nn::Mode::kEval); });
    EXPECT_TRUE(allclose(naive, fast, 1e-6f)) << "stride=" << stride;
  }
  // The unpadded stride-2 case that originally read past the row.
  nn::DepthwiseConv2d dw(1, 3, 2, /*padding=*/0, rng);
  const Tensor x = Tensor::normal(Shape{1, 1, 3, 2}, rng);
  auto [naive, fast] = both_kernel_paths([&] { return dw.forward(x, nn::Mode::kEval); });
  EXPECT_TRUE(allclose(naive, fast, 1e-6f));
}

TEST(BatchNormFolding, FoldedSequentialMatchesUnfusedPair) {
  util::Rng rng(23);
  nn::Sequential fused("fused");
  fused.emplace<nn::Conv2d>(3, 5, 3, 1, 1, /*bias=*/true, rng, "c");
  fused.emplace<nn::BatchNorm2d>(5);
  // Give the BN non-trivial statistics: a few train-mode batches.
  for (int i = 0; i < 3; ++i) {
    fused.forward(Tensor::normal(Shape{4, 3, 7, 7}, rng), nn::Mode::kTrain);
  }
  auto& conv = dynamic_cast<nn::Conv2d&>(fused.layer(0));
  auto& bn = dynamic_cast<nn::BatchNorm2d&>(fused.layer(1));
  const Tensor x = Tensor::normal(Shape{2, 3, 7, 7}, rng);
  const Tensor folded = fused.forward(x, nn::Mode::kEval);
  // Unfused reference: conv then BN, each standalone in eval mode.
  const Tensor unfused = bn.forward(conv.forward(x, nn::Mode::kEval), nn::Mode::kEval);
  EXPECT_TRUE(allclose(folded, unfused, 1e-5f));
}

TEST(BatchNormFolding, FoldedDepthwiseMatchesUnfusedPair) {
  util::Rng rng(29);
  nn::Sequential fused("fused");
  fused.emplace<nn::DepthwiseConv2d>(4, 3, 2, 1, rng, "dw");
  fused.emplace<nn::BatchNorm2d>(4);
  for (int i = 0; i < 3; ++i) {
    fused.forward(Tensor::normal(Shape{4, 4, 9, 9}, rng), nn::Mode::kTrain);
  }
  auto& dw = dynamic_cast<nn::DepthwiseConv2d&>(fused.layer(0));
  auto& bn = dynamic_cast<nn::BatchNorm2d&>(fused.layer(1));
  const Tensor x = Tensor::normal(Shape{2, 4, 9, 9}, rng);
  const Tensor folded = fused.forward(x, nn::Mode::kEval);
  const Tensor unfused = bn.forward(dw.forward(x, nn::Mode::kEval), nn::Mode::kEval);
  EXPECT_TRUE(allclose(folded, unfused, 1e-5f));
}

TEST(CacheFreeEval, EvalForwardAllocatesNoActivationCaches) {
  util::Rng rng(31);
  core::MEANet net = tiny_meanet_b(rng, 2);
  ASSERT_EQ(net.activation_cache_elems(), 0);
  const Tensor images = Tensor::normal(Shape{3, 2, 8, 8}, rng);
  const core::MainForward fwd = net.forward_main(images, nn::Mode::kEval);
  (void)net.forward_extension(images, fwd.features, nn::Mode::kEval);
  EXPECT_EQ(net.activation_cache_elems(), 0);  // the serving invariant
  // Train-mode forwards cache as before.
  (void)net.forward_main(images, nn::Mode::kTrain);
  EXPECT_GT(net.activation_cache_elems(), 0);
}

TEST(SharedNetServing, FourWorkersOnOneNetAreDeterministic) {
  util::Rng rng(37);
  core::MEANet net = tiny_meanet_b(rng, 2);
  constexpr int kBatches = 8;
  constexpr int kWorkers = 4;
  constexpr int kRounds = 6;
  std::vector<Tensor> inputs;
  std::vector<Tensor> expected;
  util::Rng data_rng(38);
  for (int i = 0; i < kBatches; ++i) {
    inputs.push_back(Tensor::normal(Shape{2, 2, 8, 8}, data_rng));
    expected.push_back(net.forward_main(inputs.back(), nn::Mode::kEval).logits);
  }
  // Four threads hammer the SAME net concurrently; every result must be
  // bit-identical to the single-threaded reference. Run under TSAN to
  // verify the const-safe eval contract mechanically.
  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      for (int round = 0; round < kRounds; ++round) {
        for (int i = 0; i < kBatches; ++i) {
          const int pick = (i + w + round) % kBatches;
          const Tensor logits = net.forward_main(inputs[static_cast<std::size_t>(pick)],
                                                 nn::Mode::kEval)
                                    .logits;
          if (!allclose(logits, expected[static_cast<std::size_t>(pick)], 0.0f)) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(net.activation_cache_elems(), 0);
}

}  // namespace
}  // namespace meanet
