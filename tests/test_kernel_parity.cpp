// Parity and concurrency guarantees of the GEMM-backed inference hot
// path:
//  - the blocked, packed GEMM matches the naive reference loops across
//    seeded shapes and all four transpose cases;
//  - Conv2d / DepthwiseConv2d forwards match the naive per-pixel loop
//    nests (MEANET_NAIVE_KERNELS path) within 1e-5 across odd sizes,
//    stride 2, padding, and batch > 1;
//  - eval-mode Conv+BN folding matches the unfused pair;
//  - eval-mode forwards are cache-free (activation_cache_elems == 0)
//    and thread-safe: four workers share ONE net and reproduce the
//    single-threaded logits bit-identically (run this binary under
//    TSAN to verify the absence of data races mechanically);
//  - the row-striped GemmPool threading is bit-identical to
//    single-thread at every pool width;
//  - the runtime-dispatched SIMD microkernel matches the portable
//    4x16 within float-rounding tolerance, and each fixed kernel is
//    bit-identical across thread counts;
//  - the int8 quantized path (tensor/qgemm.h) round-trips weights
//    within half a quantization step, tracks the float forward within
//    the documented tolerance at 1/2/4 pool threads, and its scalar
//    and VNNI kernels produce bit-identical results.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "nn/batchnorm2d.h"
#include "nn/conv2d.h"
#include "nn/fuse.h"
#include "nn/quantize.h"
#include "nn/sequential.h"
#include "tensor/ops.h"
#include "tensor/qgemm.h"
#include "tensor/simd.h"
#include "tiny_models.h"

namespace meanet {
namespace {

using meanet::testing::tiny_meanet_b;

/// Runs `fn` once with the naive kernels and once with the optimized
/// ones, restoring the previous selection afterwards.
template <typename Fn>
std::pair<Tensor, Tensor> both_kernel_paths(Fn fn) {
  const bool before = ops::naive_kernels();
  ops::set_naive_kernels(true);
  Tensor naive = fn();
  ops::set_naive_kernels(false);
  Tensor fast = fn();
  ops::set_naive_kernels(before);
  return {std::move(naive), std::move(fast)};
}

TEST(GemmParity, BlockedMatchesNaiveAcrossShapesAndTransposes) {
  util::Rng rng(7);
  // Odd sizes, tile-boundary sizes, degenerate rows/cols.
  const int sizes[][3] = {{1, 1, 1},   {3, 5, 7},    {4, 16, 256}, {17, 33, 9},
                          {64, 64, 64}, {5, 130, 31}, {130, 17, 300}};
  for (const auto& s : sizes) {
    const int m = s[0], n = s[1], k = s[2];
    const Tensor a = Tensor::normal(Shape{m, k}, rng);
    const Tensor b = Tensor::normal(Shape{k, n}, rng);
    const Tensor at = Tensor::normal(Shape{k, m}, rng);
    const Tensor bt = Tensor::normal(Shape{n, k}, rng);
    for (int ta = 0; ta < 2; ++ta) {
      for (int tb = 0; tb < 2; ++tb) {
        auto [naive, fast] = both_kernel_paths([&] {
          return ops::matmul(ta ? at : a, tb ? bt : b, ta != 0, tb != 0);
        });
        ASSERT_EQ(naive.shape(), fast.shape());
        for (std::int64_t i = 0; i < naive.numel(); ++i) {
          ASSERT_NEAR(naive[i], fast[i], 1e-4f * std::max(1.0f, std::fabs(naive[i])))
              << "m=" << m << " n=" << n << " k=" << k << " ta=" << ta << " tb=" << tb
              << " i=" << i;
        }
      }
    }
  }
}

TEST(GemmParity, AlphaBetaAccumulationMatches) {
  util::Rng rng(11);
  const int m = 19, n = 37, k = 23;
  const Tensor a = Tensor::normal(Shape{m, k}, rng);
  const Tensor b = Tensor::normal(Shape{k, n}, rng);
  const Tensor c0 = Tensor::normal(Shape{m, n}, rng);
  auto run = [&] {
    Tensor c = c0;
    ops::gemm(false, false, m, n, k, 0.5f, a.data(), k, b.data(), n, 2.0f, c.data(), n);
    return c;
  };
  auto [naive, fast] = both_kernel_paths(run);
  for (std::int64_t i = 0; i < naive.numel(); ++i) {
    ASSERT_NEAR(naive[i], fast[i], 1e-4f * std::max(1.0f, std::fabs(naive[i])));
  }
}

TEST(GemmParity, RowStripedThreadingIsBitIdentical) {
  util::Rng rng(13);
  const int m = 160, n = 160, k = 160;  // big enough to cross the spawn threshold
  const Tensor a = Tensor::normal(Shape{m, k}, rng);
  const Tensor b = Tensor::normal(Shape{k, n}, rng);
  const int before = ops::gemm_threads();
  ops::set_gemm_threads(1);
  const Tensor single = ops::matmul(a, b);
  ops::set_gemm_threads(3);
  const Tensor threaded = ops::matmul(a, b);
  ops::set_gemm_threads(before);
  EXPECT_TRUE(allclose(single, threaded, 0.0f));  // same row, same k-order
}

TEST(GemmParity, PoolThreadingIsBitIdenticalAtOneTwoAndFourThreads) {
  util::Rng rng(17);
  const int m = 192, n = 176, k = 144;  // crosses the small-problem threshold
  const Tensor a = Tensor::normal(Shape{m, k}, rng);
  const Tensor b = Tensor::normal(Shape{k, n}, rng);
  const int before = ops::gemm_threads();
  ops::set_gemm_threads(1);
  const Tensor single = ops::matmul(a, b);
  for (const int threads : {2, 4}) {
    ops::set_gemm_threads(threads);
    const Tensor pooled = ops::matmul(a, b);
    EXPECT_TRUE(allclose(single, pooled, 0.0f)) << "threads=" << threads;
  }
  ops::set_gemm_threads(before);
}

TEST(GemmParity, PersistentPoolSurvivesRepeatedWidthChanges) {
  // The pool's workers live for the process and the pool grows
  // monotonically; alternate widths across calls to exercise the
  // generation handshake rather than a fresh spawn/join per call.
  util::Rng rng(19);
  const Tensor a = Tensor::normal(Shape{160, 160}, rng);
  const Tensor b = Tensor::normal(Shape{160, 160}, rng);
  const int before = ops::gemm_threads();
  ops::set_gemm_threads(1);
  const Tensor expected = ops::matmul(a, b);
  for (int i = 0; i < 12; ++i) {
    ops::set_gemm_threads(1 + i % 4);
    EXPECT_TRUE(allclose(expected, ops::matmul(a, b), 0.0f)) << "iter=" << i;
  }
  ops::set_gemm_threads(before);
}

/// RAII set/restore of the float microkernel selection.
class SimdLevelScope {
 public:
  explicit SimdLevelScope(ops::SimdLevel level) : previous_(ops::simd_level()) {
    ops::set_simd_level(level);
  }
  ~SimdLevelScope() { ops::set_simd_level(previous_); }

 private:
  ops::SimdLevel previous_;
};

TEST(SimdParity, VectorMicrokernelMatchesPortableWithinTolerance) {
  if (ops::max_simd_level() == ops::SimdLevel::kPortable) {
    GTEST_SKIP() << "no vector microkernel on this host";
  }
  util::Rng rng(43);
  // Full tiles, ragged tiles, and sizes spanning several KC/NC blocks.
  const int sizes[][3] = {{6, 16, 32}, {17, 33, 9}, {64, 64, 64}, {130, 130, 130}};
  for (const auto& s : sizes) {
    const int m = s[0], n = s[1], k = s[2];
    const Tensor a = Tensor::normal(Shape{m, k}, rng);
    const Tensor b = Tensor::normal(Shape{k, n}, rng);
    Tensor portable;
    Tensor vectorized;
    {
      SimdLevelScope scope(ops::SimdLevel::kPortable);
      portable = ops::matmul(a, b);
    }
    {
      SimdLevelScope scope(ops::max_simd_level());
      vectorized = ops::matmul(a, b);
    }
    ASSERT_EQ(portable.shape(), vectorized.shape());
    // The vector kernel contracts multiply-adds into FMAs, so results
    // differ from the portable kernel only by rounding.
    for (std::int64_t i = 0; i < portable.numel(); ++i) {
      ASSERT_NEAR(portable[i], vectorized[i],
                  1e-4f * std::max(1.0f, std::fabs(portable[i])))
          << "m=" << m << " n=" << n << " k=" << k << " i=" << i;
    }
  }
}

TEST(SimdParity, PortableKernelIsBitIdenticalAcrossThreadCounts) {
  // The thread-count bit-identity contract holds per fixed kernel; the
  // default-kernel case is covered above, so pin the portable tier.
  util::Rng rng(47);
  const Tensor a = Tensor::normal(Shape{160, 160}, rng);
  const Tensor b = Tensor::normal(Shape{160, 160}, rng);
  SimdLevelScope scope(ops::SimdLevel::kPortable);
  const int before = ops::gemm_threads();
  ops::set_gemm_threads(1);
  const Tensor single = ops::matmul(a, b);
  ops::set_gemm_threads(4);
  const Tensor pooled = ops::matmul(a, b);
  ops::set_gemm_threads(before);
  EXPECT_TRUE(allclose(single, pooled, 0.0f));
}

TEST(SimdParity, SetLevelClampsToTheHardwareCeiling) {
  const ops::SimdLevel before = ops::simd_level();
  ops::set_simd_level(ops::SimdLevel::kPortable);
  EXPECT_EQ(ops::simd_level(), ops::SimdLevel::kPortable);
  // A level the host lacks degrades to portable instead of faulting
  // later; the host's own ceiling is honored.
  for (const ops::SimdLevel requested : {ops::SimdLevel::kAvx2, ops::SimdLevel::kNeon}) {
    ops::set_simd_level(requested);
    EXPECT_TRUE(ops::simd_level() == requested
                    ? requested == ops::max_simd_level()
                    : ops::simd_level() == ops::SimdLevel::kPortable);
  }
  ops::set_simd_level(before);
}

TEST(QuantizedParity, DequantizedWeightsRoundTripWithinHalfStep) {
  util::Rng rng(53);
  const int rows = 5, cols = 19;
  const Tensor w = Tensor::normal(Shape{rows, cols}, rng);
  const ops::QuantizedWeights q = nn::quantize_weights_int8(w, rows);
  EXPECT_EQ(q.rows, rows);
  EXPECT_EQ(q.cols, cols);
  EXPECT_EQ(q.k_padded, ops::quantized_k_padded(cols));
  const Tensor decoded = nn::dequantize_int8(q);
  ASSERT_EQ(decoded.shape(), (Shape{rows, cols}));
  for (int r = 0; r < rows; ++r) {
    // Symmetric rounding quantization: every element is within half a
    // step of its code, and the row max hits a code exactly.
    for (int c = 0; c < cols; ++c) {
      const std::int64_t i = static_cast<std::int64_t>(r) * cols + c;
      EXPECT_LE(std::fabs(decoded[i] - w[i]), 0.5f * q.scale[static_cast<std::size_t>(r)] + 1e-7f)
          << "r=" << r << " c=" << c;
    }
  }
}

/// Quantizes W [rows, k] and X [k, n], runs qgemm_u8s8, returns C.
Tensor run_qgemm(const Tensor& w, const Tensor& x, const Tensor& bias) {
  const int rows = w.shape().dim(0);
  const int k = w.shape().dim(1);
  const int n = x.shape().dim(1);
  const ops::QuantizedWeights q = ops::quantize_weights_int8(w.data(), rows, k);
  const float a_scale = ops::activation_scale(x.data(), static_cast<std::size_t>(x.numel()));
  std::vector<std::uint8_t> act(static_cast<std::size_t>(x.numel()));
  ops::quantize_activations_u8(x.data(), act.size(), a_scale, act.data());
  Tensor c(Shape{rows, n});
  ops::qgemm_u8s8(rows, n, k, q.k_padded, q.data.data(), q.scale.data(), q.row_sum.data(),
                  act.data(), a_scale, bias.data(), c.data(), n);
  return c;
}

TEST(QuantizedParity, QgemmTracksFloatGemmWithinQuantizationError) {
  util::Rng rng(59);
  // Ragged and tile-aligned shapes for both kernel tiers (16-wide
  // column panels, 4-row blocks, k groups of 4).
  const int sizes[][3] = {{1, 1, 1}, {4, 16, 32}, {13, 37, 29}, {16, 48, 64}, {7, 130, 75}};
  for (const auto& s : sizes) {
    const int rows = s[0], n = s[2], k = s[1];
    const Tensor w = Tensor::normal(Shape{rows, k}, rng);
    const Tensor x = Tensor::normal(Shape{k, n}, rng);
    const Tensor bias = Tensor::normal(Shape{rows}, rng);
    Tensor ref(Shape{rows, n});
    ops::gemm(false, false, rows, n, k, 1.0f, w.data(), k, x.data(), n, 0.0f, ref.data(), n);
    for (int r = 0; r < rows; ++r) {
      for (int j = 0; j < n; ++j) ref[static_cast<std::int64_t>(r) * n + j] += bias[r];
    }
    const Tensor q8 = run_qgemm(w, x, bias);
    float max_abs = 0.0f;
    for (std::int64_t i = 0; i < ref.numel(); ++i) {
      max_abs = std::max(max_abs, std::fabs(ref[i]));
    }
    // ~1% relative error measured for normal operands; 5% of the
    // dynamic range is a comfortable regression bound.
    const float tolerance = 0.05f * std::max(1.0f, max_abs);
    for (std::int64_t i = 0; i < ref.numel(); ++i) {
      ASSERT_NEAR(ref[i], q8[i], tolerance)
          << "rows=" << rows << " n=" << n << " k=" << k << " i=" << i;
    }
  }
}

TEST(QuantizedParity, ScalarAndVectorInt8KernelsAreBitIdentical) {
  if (ops::max_int8_kernel() == ops::Int8Kernel::kScalar) {
    GTEST_SKIP() << "no VNNI tier on this host";
  }
  util::Rng rng(61);
  const int sizes[][3] = {{4, 16, 32}, {13, 37, 29}, {7, 130, 75}};
  for (const auto& s : sizes) {
    const int rows = s[0], n = s[2], k = s[1];
    const Tensor w = Tensor::normal(Shape{rows, k}, rng);
    const Tensor x = Tensor::normal(Shape{k, n}, rng);
    const Tensor bias = Tensor::normal(Shape{rows}, rng);
    const ops::Int8Kernel before = ops::int8_kernel();
    ops::set_int8_kernel(ops::max_int8_kernel());
    const Tensor vectorized = run_qgemm(w, x, bias);
    ops::set_int8_kernel(ops::Int8Kernel::kScalar);
    const Tensor scalar = run_qgemm(w, x, bias);
    ops::set_int8_kernel(before);
    // s32 accumulation is exact and both epilogues use one fused
    // multiply-add with round-to-nearest int->float conversion, so the
    // tiers agree to the bit (qgemm.h documents this contract).
    EXPECT_TRUE(allclose(vectorized, scalar, 0.0f))
        << "rows=" << rows << " n=" << n << " k=" << k;
  }
}

TEST(QuantizedParity, AllZeroActivationsDegenerateToBias) {
  util::Rng rng(67);
  const Tensor w = Tensor::normal(Shape{3, 8}, rng);
  const Tensor x = Tensor::zeros(Shape{8, 5});
  const Tensor bias = Tensor::normal(Shape{3}, rng);
  const Tensor q8 = run_qgemm(w, x, bias);
  for (int r = 0; r < 3; ++r) {
    for (int j = 0; j < 5; ++j) {
      EXPECT_FLOAT_EQ(q8[static_cast<std::int64_t>(r) * 5 + j], bias[r]);
    }
  }
}

TEST(QuantizedParity, ConvForwardTracksFloatAcrossPoolThreads) {
  util::Rng rng(71);
  nn::Conv2d conv(8, 16, 3, 1, 1, /*bias=*/true, rng);
  const Tensor x = Tensor::normal(Shape{2, 8, 12, 12}, rng);
  const Tensor fp = conv.forward(x, nn::Mode::kEval);
  float max_abs = 0.0f;
  for (std::int64_t i = 0; i < fp.numel(); ++i) max_abs = std::max(max_abs, std::fabs(fp[i]));
  const float tolerance = 0.05f * std::max(1.0f, max_abs);
  const int before = ops::gemm_threads();
  Tensor at_one_thread;
  for (const int threads : {1, 2, 4}) {
    ops::set_gemm_threads(threads);
    ops::QuantizedScope quantized(true);
    const Tensor q8 = conv.forward(x, nn::Mode::kEval);
    ASSERT_EQ(q8.shape(), fp.shape());
    for (std::int64_t i = 0; i < fp.numel(); ++i) {
      ASSERT_NEAR(fp[i], q8[i], tolerance) << "threads=" << threads << " i=" << i;
    }
    // The int8 path itself is deterministic regardless of pool width.
    if (threads == 1) {
      at_one_thread = q8;
    } else {
      EXPECT_TRUE(allclose(at_one_thread, q8, 0.0f)) << "threads=" << threads;
    }
  }
  ops::set_gemm_threads(before);
}

TEST(QuantizedParity, FoldedConvBnEvalComposesWithInt8) {
  util::Rng rng(73);
  nn::Sequential fused("fused");
  fused.emplace<nn::Conv2d>(3, 6, 3, 1, 1, /*bias=*/true, rng, "c");
  fused.emplace<nn::BatchNorm2d>(6);
  for (int i = 0; i < 3; ++i) {
    fused.forward(Tensor::normal(Shape{4, 3, 9, 9}, rng), nn::Mode::kTrain);
  }
  const Tensor x = Tensor::normal(Shape{2, 3, 9, 9}, rng);
  const Tensor fp = fused.forward(x, nn::Mode::kEval);
  float max_abs = 0.0f;
  for (std::int64_t i = 0; i < fp.numel(); ++i) max_abs = std::max(max_abs, std::fabs(fp[i]));
  ops::QuantizedScope quantized(true);
  const Tensor q8 = fused.forward(x, nn::Mode::kEval);
  ASSERT_EQ(q8.shape(), fp.shape());
  // int8 quantizes the BN-folded weights, so the fused path and the
  // quantized path compose without extra error terms.
  const float tolerance = 0.05f * std::max(1.0f, max_abs);
  for (std::int64_t i = 0; i < fp.numel(); ++i) {
    ASSERT_NEAR(fp[i], q8[i], tolerance) << "i=" << i;
  }
}

TEST(QuantizedParity, ScopeRestoresThePreviousFlag) {
  EXPECT_FALSE(ops::quantized_inference());
  {
    ops::QuantizedScope outer(true);
    EXPECT_TRUE(ops::quantized_inference());
    {
      ops::QuantizedScope inner(false);
      EXPECT_FALSE(ops::quantized_inference());
    }
    EXPECT_TRUE(ops::quantized_inference());
  }
  EXPECT_FALSE(ops::quantized_inference());
}

class ConvParity : public ::testing::TestWithParam<std::tuple<int, int, int, int, int, int>> {};
// batch, in_c, out_c, kernel, stride, padding

TEST_P(ConvParity, GemmPathMatchesNaiveLoopNest) {
  const auto [batch, in_c, out_c, kernel, stride, padding] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(batch * 7919 + in_c * 131 + out_c * 17 +
                                           kernel * 5 + stride * 3 + padding));
  nn::Conv2d conv(in_c, out_c, kernel, stride, padding, /*bias=*/true, rng);
  const int size = 9;  // odd, so strides hit ragged edges
  if (conv.output_shape(Shape{1, in_c, size, size}).height() <= 0) GTEST_SKIP();
  const Tensor x = Tensor::normal(Shape{batch, in_c, size, size}, rng);
  auto [naive, fast] = both_kernel_paths([&] { return conv.forward(x, nn::Mode::kEval); });
  ASSERT_EQ(naive.shape(), fast.shape());
  EXPECT_TRUE(allclose(naive, fast, 1e-5f))
      << "b=" << batch << " in=" << in_c << " out=" << out_c << " k=" << kernel
      << " s=" << stride << " p=" << padding;
}

INSTANTIATE_TEST_SUITE_P(SeededShapes, ConvParity,
                         ::testing::Combine(::testing::Values(1, 3), ::testing::Values(1, 3),
                                            ::testing::Values(2, 5), ::testing::Values(1, 3, 5),
                                            ::testing::Values(1, 2), ::testing::Values(0, 1, 2)));

class DepthwiseParity : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};
// channels, kernel, stride, padding

TEST_P(DepthwiseParity, SpecializedPathMatchesNaiveLoopNest) {
  const auto [channels, kernel, stride, padding] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(channels * 101 + kernel * 13 + stride * 7 + padding));
  nn::DepthwiseConv2d dw(channels, kernel, stride, padding, rng);
  const int size = 11;
  if (dw.output_shape(Shape{1, channels, size, size}).height() <= 0) GTEST_SKIP();
  const Tensor x = Tensor::normal(Shape{2, channels, size, size}, rng);
  auto [naive, fast] = both_kernel_paths([&] { return dw.forward(x, nn::Mode::kEval); });
  EXPECT_TRUE(allclose(naive, fast, 1e-5f))
      << "c=" << channels << " k=" << kernel << " s=" << stride << " p=" << padding;
}

INSTANTIATE_TEST_SUITE_P(SeededShapes, DepthwiseParity,
                         ::testing::Combine(::testing::Values(1, 3), ::testing::Values(3, 5),
                                            ::testing::Values(1, 2), ::testing::Values(0, 1, 2)));

TEST(DepthwiseParity, NarrowerThanKernelInputsStayInBounds) {
  // Regression: with in_w < kernel (valid thanks to padding) the
  // interior-column bound's truncating division used to round toward
  // zero instead of clamping to "no interior", reading past the row.
  util::Rng rng(41);
  for (const int stride : {1, 2}) {
    nn::DepthwiseConv2d dw(1, 3, stride, /*padding=*/1, rng);
    const Tensor x = Tensor::normal(Shape{1, 1, 3, 2}, rng);  // 2-wide rows
    auto [naive, fast] = both_kernel_paths([&] { return dw.forward(x, nn::Mode::kEval); });
    EXPECT_TRUE(allclose(naive, fast, 1e-6f)) << "stride=" << stride;
  }
  // The unpadded stride-2 case that originally read past the row.
  nn::DepthwiseConv2d dw(1, 3, 2, /*padding=*/0, rng);
  const Tensor x = Tensor::normal(Shape{1, 1, 3, 2}, rng);
  auto [naive, fast] = both_kernel_paths([&] { return dw.forward(x, nn::Mode::kEval); });
  EXPECT_TRUE(allclose(naive, fast, 1e-6f));
}

// ----- Whole-batch conv (ops::batched_conv) ----------------------------

/// RAII set/restore of the batched-conv toggle.
class BatchedConvScope {
 public:
  explicit BatchedConvScope(bool on) : previous_(ops::batched_conv()) {
    ops::set_batched_conv(on);
  }
  ~BatchedConvScope() { ops::set_batched_conv(previous_); }

 private:
  bool previous_;
};

/// RAII set/restore of the batched-column byte budget.
class ColumnBudgetScope {
 public:
  explicit ColumnBudgetScope(std::size_t bytes) : previous_(ops::batched_columns_budget()) {
    ops::set_batched_columns_budget(bytes);
  }
  ~ColumnBudgetScope() { ops::set_batched_columns_budget(previous_); }

 private:
  std::size_t previous_;
};

class BatchedParity : public ::testing::TestWithParam<std::tuple<int, int, int>> {};
// batch, stride, padding

TEST_P(BatchedParity, WholeBatchFloatIsBitIdenticalToPerImage) {
  const auto [batch, stride, padding] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(batch * 911 + stride * 31 + padding));
  nn::Conv2d conv(3, 8, 3, stride, padding, /*bias=*/true, rng);
  const int size = 9;  // odd, so strides hit ragged edges
  if (conv.output_shape(Shape{1, 3, size, size}).height() <= 0) GTEST_SKIP();
  const Tensor x = Tensor::normal(Shape{batch, 3, size, size}, rng);
  Tensor per_image, batched;
  {
    BatchedConvScope scope(false);
    per_image = conv.forward(x, nn::Mode::kEval);
  }
  {
    BatchedConvScope scope(true);
    batched = conv.forward(x, nn::Mode::kEval);
  }
  ASSERT_EQ(per_image.shape(), batched.shape());
  // Exactly equal, not merely close: the batched GEMM runs each image's
  // column block through the same k-blocking as the per-image call.
  EXPECT_TRUE(allclose(per_image, batched, 0.0f))
      << "b=" << batch << " s=" << stride << " p=" << padding;
}

INSTANTIATE_TEST_SUITE_P(SeededShapes, BatchedParity,
                         ::testing::Combine(::testing::Values(1, 3, 32),
                                            ::testing::Values(1, 2),
                                            ::testing::Values(0, 1, 2)));

TEST(BatchedParity, WholeBatchFloatIsBitIdenticalAtOneTwoAndFourThreads) {
  util::Rng rng(83);
  // Big enough that the batched GEMM crosses the multi-thread flops
  // threshold (the whole point: per-image GEMMs of this layer stay
  // below it, the batched one fans out).
  nn::Conv2d conv(8, 32, 3, 1, 1, /*bias=*/true, rng);
  const Tensor x = Tensor::normal(Shape{8, 8, 14, 14}, rng);
  Tensor per_image;
  {
    BatchedConvScope scope(false);
    per_image = conv.forward(x, nn::Mode::kEval);
  }
  BatchedConvScope scope(true);
  const int before = ops::gemm_threads();
  for (const int threads : {1, 2, 4}) {
    ops::set_gemm_threads(threads);
    const Tensor batched = conv.forward(x, nn::Mode::kEval);
    EXPECT_TRUE(allclose(per_image, batched, 0.0f)) << "threads=" << threads;
  }
  ops::set_gemm_threads(before);
}

TEST(BatchedParity, ByteBudgetFallbackIsBitIdentical) {
  util::Rng rng(89);
  nn::Conv2d conv(3, 8, 3, 1, 1, /*bias=*/true, rng);
  const Tensor x = Tensor::normal(Shape{5, 3, 9, 9}, rng);
  BatchedConvScope batched_scope(true);
  Tensor whole_batch;
  {
    ColumnBudgetScope budget(1u << 30);  // everything fits in one tile
    whole_batch = conv.forward(x, nn::Mode::kEval);
  }
  // patch=27, out_hw=81 -> one image's columns are 27*81*4 bytes. A
  // budget of two images forces 2/2/1 chunks; 1 byte forces per-image
  // chunks through the batched machinery.
  const std::size_t per_image_bytes = 27u * 81u * sizeof(float);
  for (const std::size_t budget_bytes : {2 * per_image_bytes, std::size_t{1}}) {
    ColumnBudgetScope budget(budget_bytes);
    const Tensor chunked = conv.forward(x, nn::Mode::kEval);
    EXPECT_TRUE(allclose(whole_batch, chunked, 0.0f)) << "budget=" << budget_bytes;
  }
}

TEST(BatchedParity, WholeBatchInt8TracksPerImageScalesWithinTolerance) {
  util::Rng rng(97);
  nn::Conv2d conv(8, 16, 3, 1, 1, /*bias=*/true, rng);
  const Tensor x = Tensor::normal(Shape{4, 8, 12, 12}, rng);
  const Tensor fp = conv.forward(x, nn::Mode::kEval);
  float max_abs = 0.0f;
  for (std::int64_t i = 0; i < fp.numel(); ++i) max_abs = std::max(max_abs, std::fabs(fp[i]));
  const float tolerance = 0.05f * std::max(1.0f, max_abs);
  ops::QuantizedScope quantized(true);
  Tensor per_image, batched;
  {
    BatchedConvScope scope(false);
    per_image = conv.forward(x, nn::Mode::kEval);
  }
  {
    BatchedConvScope scope(true);
    batched = conv.forward(x, nn::Mode::kEval);
  }
  // The batch-wide activation scale is coarser than per-image scales,
  // so the two int8 paths differ by (bounded) quantization error — both
  // must still track the float forward.
  for (std::int64_t i = 0; i < fp.numel(); ++i) {
    ASSERT_NEAR(fp[i], batched[i], tolerance) << "i=" << i;
    ASSERT_NEAR(per_image[i], batched[i], tolerance) << "i=" << i;
  }
}

TEST(BatchedParity, Int8BatchedIsBitIdenticalAcrossThreadsAndChunks) {
  util::Rng rng(101);
  nn::Conv2d conv(8, 16, 3, 1, 1, /*bias=*/true, rng);
  const Tensor x = Tensor::normal(Shape{5, 8, 12, 12}, rng);
  ops::QuantizedScope quantized(true);
  BatchedConvScope batched_scope(true);
  const int before = ops::gemm_threads();
  ops::set_gemm_threads(1);
  Tensor baseline;
  {
    ColumnBudgetScope budget(1u << 30);
    baseline = conv.forward(x, nn::Mode::kEval);
  }
  // The activation scale is computed over the whole batch BEFORE
  // chunking (max-abs is chunk-invariant), so the int8 batched path is
  // bit-identical at any chunk size and any pool width.
  const std::size_t per_image_bytes = 8u * 9u * 12u * 12u;  // patch * out_hw u8 bytes
  for (const int threads : {1, 2, 4}) {
    ops::set_gemm_threads(threads);
    for (const std::size_t budget_bytes :
         {std::size_t{1u << 30}, 2 * per_image_bytes, std::size_t{1}}) {
      ColumnBudgetScope budget(budget_bytes);
      const Tensor run = conv.forward(x, nn::Mode::kEval);
      EXPECT_TRUE(allclose(baseline, run, 0.0f))
          << "threads=" << threads << " budget=" << budget_bytes;
    }
  }
  ops::set_gemm_threads(before);
}

TEST(BatchedParity, DepthwiseThreadingIsBitIdenticalAtOneTwoAndFourThreads) {
  util::Rng rng(103);
  // 4*32 channel planes of 32x32 — over the depthwise min-work gate, so
  // widths 2 and 4 actually fan out on the pool.
  nn::DepthwiseConv2d dw(32, 3, 1, 1, rng);
  const Tensor x = Tensor::normal(Shape{4, 32, 32, 32}, rng);
  auto [naive, fast] = both_kernel_paths([&] { return dw.forward(x, nn::Mode::kEval); });
  EXPECT_TRUE(allclose(naive, fast, 1e-5f));
  const int before = ops::gemm_threads();
  ops::set_gemm_threads(1);
  const Tensor single = dw.forward(x, nn::Mode::kEval);
  EXPECT_TRUE(allclose(single, fast, 0.0f));  // gemm_threads was restored by the helper
  for (const int threads : {2, 4}) {
    ops::set_gemm_threads(threads);
    const Tensor threaded = dw.forward(x, nn::Mode::kEval);
    // Channel planes are disjoint, so any stripe partition is exact.
    EXPECT_TRUE(allclose(single, threaded, 0.0f)) << "threads=" << threads;
  }
  ops::set_gemm_threads(before);
}

TEST(BatchedParity, Im2colBatchedMatchesPerImageBlocks) {
  util::Rng rng(107);
  ops::ConvGeometry g;
  g.in_channels = 3;
  g.in_height = 9;
  g.in_width = 7;
  g.kernel = 3;
  g.stride = 2;
  g.padding = 1;
  const int batch = 3;
  const int out_hw = g.out_height() * g.out_width();
  const int patch = g.patch_size();
  const std::int64_t image_stride = 3 * 9 * 7;
  const Tensor images = Tensor::normal(Shape{batch, 3, 9, 7}, rng);
  std::vector<float> batched(static_cast<std::size_t>(patch) * batch * out_hw);
  ops::im2col_batched(images.data(), image_stride, batch, g, batched.data());
  std::vector<float> single(static_cast<std::size_t>(patch) * out_hw);
  for (int n = 0; n < batch; ++n) {
    ops::im2col(images.data() + n * image_stride, g, single.data());
    for (int r = 0; r < patch; ++r) {
      for (int j = 0; j < out_hw; ++j) {
        ASSERT_EQ(single[static_cast<std::size_t>(r) * out_hw + j],
                  batched[static_cast<std::size_t>(r) * batch * out_hw + n * out_hw + j])
            << "n=" << n << " r=" << r << " j=" << j;
      }
    }
  }
}

TEST(BatchedParity, GemmBatchedNchwMatchesLoopedGemm) {
  util::Rng rng(109);
  const int m = 17, k = 23, batch = 3, cols = 29;
  const Tensor a = Tensor::normal(Shape{m, k}, rng);
  const Tensor b = Tensor::normal(Shape{k, batch * cols}, rng);
  // Per-image C blocks sit one image_stride apart, like NCHW output
  // planes with extra channels in between.
  const std::int64_t image_stride = static_cast<std::int64_t>(m) * cols + 11;
  std::vector<float> expected(static_cast<std::size_t>(batch) * image_stride, -7.0f);
  std::vector<float> actual = expected;
  std::vector<float> b_image(static_cast<std::size_t>(k) * cols);
  for (int n = 0; n < batch; ++n) {
    for (int r = 0; r < k; ++r) {
      std::copy_n(b.data() + static_cast<std::size_t>(r) * batch * cols + n * cols, cols,
                  b_image.data() + static_cast<std::size_t>(r) * cols);
    }
    ops::gemm(false, false, m, cols, k, 1.0f, a.data(), k, b_image.data(), cols, 0.0f,
              expected.data() + n * image_stride, cols);
  }
  ops::gemm_batched_nchw(m, k, batch, cols, a.data(), k, b.data(), actual.data(), image_stride,
                         cols);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(expected[i], actual[i]) << "i=" << i;  // bit-identical, padding untouched
  }
}

TEST(BatchNormFolding, FoldedSequentialMatchesUnfusedPair) {
  util::Rng rng(23);
  nn::Sequential fused("fused");
  fused.emplace<nn::Conv2d>(3, 5, 3, 1, 1, /*bias=*/true, rng, "c");
  fused.emplace<nn::BatchNorm2d>(5);
  // Give the BN non-trivial statistics: a few train-mode batches.
  for (int i = 0; i < 3; ++i) {
    fused.forward(Tensor::normal(Shape{4, 3, 7, 7}, rng), nn::Mode::kTrain);
  }
  auto& conv = dynamic_cast<nn::Conv2d&>(fused.layer(0));
  auto& bn = dynamic_cast<nn::BatchNorm2d&>(fused.layer(1));
  const Tensor x = Tensor::normal(Shape{2, 3, 7, 7}, rng);
  const Tensor folded = fused.forward(x, nn::Mode::kEval);
  // Unfused reference: conv then BN, each standalone in eval mode.
  const Tensor unfused = bn.forward(conv.forward(x, nn::Mode::kEval), nn::Mode::kEval);
  EXPECT_TRUE(allclose(folded, unfused, 1e-5f));
}

TEST(BatchNormFolding, FoldedDepthwiseMatchesUnfusedPair) {
  util::Rng rng(29);
  nn::Sequential fused("fused");
  fused.emplace<nn::DepthwiseConv2d>(4, 3, 2, 1, rng, "dw");
  fused.emplace<nn::BatchNorm2d>(4);
  for (int i = 0; i < 3; ++i) {
    fused.forward(Tensor::normal(Shape{4, 4, 9, 9}, rng), nn::Mode::kTrain);
  }
  auto& dw = dynamic_cast<nn::DepthwiseConv2d&>(fused.layer(0));
  auto& bn = dynamic_cast<nn::BatchNorm2d&>(fused.layer(1));
  const Tensor x = Tensor::normal(Shape{2, 4, 9, 9}, rng);
  const Tensor folded = fused.forward(x, nn::Mode::kEval);
  const Tensor unfused = bn.forward(dw.forward(x, nn::Mode::kEval), nn::Mode::kEval);
  EXPECT_TRUE(allclose(folded, unfused, 1e-5f));
}

TEST(CacheFreeEval, EvalForwardAllocatesNoActivationCaches) {
  util::Rng rng(31);
  core::MEANet net = tiny_meanet_b(rng, 2);
  ASSERT_EQ(net.activation_cache_elems(), 0);
  const Tensor images = Tensor::normal(Shape{3, 2, 8, 8}, rng);
  const core::MainForward fwd = net.forward_main(images, nn::Mode::kEval);
  (void)net.forward_extension(images, fwd.features, nn::Mode::kEval);
  EXPECT_EQ(net.activation_cache_elems(), 0);  // the serving invariant
  // Train-mode forwards cache as before.
  (void)net.forward_main(images, nn::Mode::kTrain);
  EXPECT_GT(net.activation_cache_elems(), 0);
}

TEST(SharedNetServing, FourWorkersOnOneNetAreDeterministic) {
  util::Rng rng(37);
  core::MEANet net = tiny_meanet_b(rng, 2);
  constexpr int kBatches = 8;
  constexpr int kWorkers = 4;
  constexpr int kRounds = 6;
  std::vector<Tensor> inputs;
  std::vector<Tensor> expected;
  util::Rng data_rng(38);
  for (int i = 0; i < kBatches; ++i) {
    inputs.push_back(Tensor::normal(Shape{2, 2, 8, 8}, data_rng));
    expected.push_back(net.forward_main(inputs.back(), nn::Mode::kEval).logits);
  }
  // Four threads hammer the SAME net concurrently; every result must be
  // bit-identical to the single-threaded reference. Run under TSAN to
  // verify the const-safe eval contract mechanically.
  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      for (int round = 0; round < kRounds; ++round) {
        for (int i = 0; i < kBatches; ++i) {
          const int pick = (i + w + round) % kBatches;
          const Tensor logits = net.forward_main(inputs[static_cast<std::size_t>(pick)],
                                                 nn::Mode::kEval)
                                    .logits;
          if (!allclose(logits, expected[static_cast<std::size_t>(pick)], 0.0f)) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(net.activation_cache_elems(), 0);
}

}  // namespace
}  // namespace meanet
