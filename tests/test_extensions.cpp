// Tests for the optional/extension features: MaxPool2d, Dropout, weight
// quantization, the binary hard detector, and the feature-offload cloud
// head.
#include <gtest/gtest.h>

#include "core/hard_detector.h"
#include "core/trainer.h"
#include "gradcheck_util.h"
#include "nn/dropout.h"
#include "nn/maxpool.h"
#include "nn/quantize.h"
#include "nn/conv2d.h"
#include "sim/feature_cloud.h"
#include "tiny_models.h"

namespace meanet {
namespace {

using meanet::testing::tiny_data_spec;
using meanet::testing::tiny_meanet_b;

// ---------- MaxPool2d ----------

TEST(MaxPool2d, SelectsWindowMaxima) {
  nn::MaxPool2d pool(2);
  Tensor x(Shape{1, 1, 2, 4}, std::vector<float>{1, 5, 2, 0, 3, 4, 8, 6});
  const Tensor y = pool.forward(x, nn::Mode::kEval);
  EXPECT_EQ(y.shape(), Shape({1, 1, 1, 2}));
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 5.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 1), 8.0f);
}

TEST(MaxPool2d, BackwardRoutesToArgmaxOnly) {
  nn::MaxPool2d pool(2);
  Tensor x(Shape{1, 1, 2, 2}, std::vector<float>{1, 5, 2, 0});
  pool.forward(x, nn::Mode::kTrain);
  Tensor g(Shape{1, 1, 1, 1}, std::vector<float>{3.0f});
  const Tensor dx = pool.backward(g);
  EXPECT_FLOAT_EQ(dx[0], 0.0f);
  EXPECT_FLOAT_EQ(dx[1], 3.0f);  // position of the max
  EXPECT_FLOAT_EQ(dx[2], 0.0f);
  EXPECT_FLOAT_EQ(dx[3], 0.0f);
}

TEST(MaxPool2d, GradCheck) {
  util::Rng rng(1);
  nn::MaxPool2d pool(2);
  // Well-separated values keep the argmax stable under perturbation.
  Tensor x = Tensor::normal(Shape{2, 2, 4, 4}, rng, 0.0f, 5.0f);
  meanet::testing::check_layer_gradients(pool, x, rng);
}

TEST(MaxPool2d, RejectsBadGeometry) {
  EXPECT_THROW(nn::MaxPool2d(0), std::invalid_argument);
  nn::MaxPool2d pool(2);
  EXPECT_THROW(pool.output_shape(Shape{1, 1, 3, 4}), std::invalid_argument);
}

// ---------- Dropout ----------

TEST(Dropout, EvalModeIsIdentity) {
  util::Rng rng(2);
  nn::Dropout dropout(0.5f, rng);
  const Tensor x = Tensor::normal(Shape{2, 8}, rng);
  EXPECT_TRUE(allclose(dropout.forward(x, nn::Mode::kEval), x, 0.0f));
}

TEST(Dropout, TrainModeDropsAndRescales) {
  util::Rng rng(3);
  nn::Dropout dropout(0.5f, rng);
  const Tensor x = Tensor::ones(Shape{1, 1000});
  const Tensor y = dropout.forward(x, nn::Mode::kTrain);
  int dropped = 0;
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    if (y[i] == 0.0f) {
      ++dropped;
    } else {
      EXPECT_FLOAT_EQ(y[i], 2.0f);  // 1 / (1 - 0.5)
    }
  }
  // Expected ~500 dropped; allow generous slack.
  EXPECT_GT(dropped, 350);
  EXPECT_LT(dropped, 650);
  // Expectation is preserved.
  EXPECT_NEAR(y.mean(), 1.0f, 0.15f);
}

TEST(Dropout, BackwardUsesSameMask) {
  util::Rng rng(4);
  nn::Dropout dropout(0.3f, rng);
  const Tensor x = Tensor::ones(Shape{1, 100});
  const Tensor y = dropout.forward(x, nn::Mode::kTrain);
  const Tensor dx = dropout.backward(Tensor::ones(Shape{1, 100}));
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_FLOAT_EQ(dx[i], y[i]);  // same scaled mask on ones
  }
}

TEST(Dropout, RejectsBadProbability) {
  util::Rng rng(5);
  EXPECT_THROW(nn::Dropout(-0.1f, rng), std::invalid_argument);
  EXPECT_THROW(nn::Dropout(1.0f, rng), std::invalid_argument);
}

// ---------- Quantization ----------

TEST(Quantize, EightBitIsNearLossless) {
  util::Rng rng(6);
  nn::Conv2d conv(3, 4, 3, 1, 1, true, rng);
  const Tensor before = conv.weight().value;
  const nn::QuantizationReport report = nn::quantize_weights(conv, 8);
  EXPECT_EQ(report.bits, 8);
  EXPECT_EQ(report.quantized_params, conv.weight().numel() + conv.bias().numel());
  // Max error bounded by half a quantization step.
  const float max_abs = [&] {
    float m = 0.0f;
    for (std::int64_t i = 0; i < before.numel(); ++i) m = std::max(m, std::fabs(before[i]));
    return m;
  }();
  EXPECT_LE(report.max_abs_error, 0.5f * max_abs / 127.0f + 1e-6f);
}

TEST(Quantize, FewerBitsMoreError) {
  util::Rng rng(7);
  nn::Conv2d conv8(3, 4, 3, 1, 1, false, rng);
  util::Rng rng2(7);
  nn::Conv2d conv2(3, 4, 3, 1, 1, false, rng2);
  const float err8 = nn::quantize_weights(conv8, 8).mean_abs_error;
  const float err2 = nn::quantize_weights(conv2, 2).mean_abs_error;
  EXPECT_GT(err2, err8);
}

TEST(Quantize, IdempotentAtSameBits) {
  util::Rng rng(8);
  nn::Conv2d conv(2, 2, 3, 1, 1, false, rng);
  nn::quantize_weights(conv, 4);
  const Tensor once = conv.weight().value;
  nn::quantize_weights(conv, 4);
  EXPECT_TRUE(allclose(once, conv.weight().value, 1e-6f));
}

TEST(Quantize, RejectsBadBits) {
  util::Rng rng(9);
  nn::Conv2d conv(2, 2, 3, 1, 1, false, rng);
  EXPECT_THROW(nn::quantize_weights(conv, 1), std::invalid_argument);
  EXPECT_THROW(nn::quantize_weights(conv, 17), std::invalid_argument);
}

// ---------- Binary hard detector ----------

TEST(BinaryHardDetector, LearnsBetterThanChance) {
  util::Rng rng(10);
  const data::SyntheticDataset ds = data::make_synthetic(tiny_data_spec(), 61);
  const data::ClassDict dict(4, {0, 1});  // any fixed split works
  core::BinaryHardDetector detector(2, rng);
  core::TrainOptions opts;
  opts.epochs = 6;
  opts.batch_size = 16;
  util::Rng train_rng(11);
  const core::TrainCurve curve = detector.train(ds.train, dict, opts, train_rng);
  EXPECT_GT(curve.back().accuracy, 0.6);
  EXPECT_GT(detector.detection_accuracy(ds.test, dict), 0.55);
}

TEST(BinaryHardDetector, DetectReturnsPerInstanceFlags) {
  util::Rng rng(12);
  core::BinaryHardDetector detector(2, rng);
  const Tensor images = Tensor::normal(Shape{7, 2, 8, 8}, rng);
  EXPECT_EQ(detector.detect(images).size(), 7u);
}

// ---------- Feature-offload cloud ----------

TEST(FeatureCloud, ExtractFeaturesShapes) {
  util::Rng rng(13);
  core::MEANet net = tiny_meanet_b(rng, 2);
  const data::SyntheticDataset ds = data::make_synthetic(tiny_data_spec(), 62);
  const data::Dataset features = sim::extract_features(net, ds.test, 16);
  EXPECT_EQ(features.size(), ds.test.size());
  EXPECT_EQ(features.labels, ds.test.labels);
  const Shape expected = net.main_trunk().output_shape(ds.test.instance_shape());
  EXPECT_EQ(features.images.shape().channels(), expected.channels());
  EXPECT_EQ(features.images.shape().height(), expected.height());
}

TEST(FeatureCloud, HeadTrainsOnFeatures) {
  util::Rng rng(14);
  core::MEANet net = tiny_meanet_b(rng, 2);
  const data::SyntheticDataset ds = data::make_synthetic(tiny_data_spec(), 63);
  // Give the trunk some structure first.
  core::DistributedTrainer trainer(net);
  core::TrainOptions opts;
  opts.epochs = 4;
  opts.batch_size = 16;
  util::Rng train_rng(15);
  trainer.train_main(ds.train, opts, train_rng);
  net.freeze_main();

  const Shape feature_shape = net.main_trunk().output_shape(ds.test.instance_shape());
  sim::FeatureCloudNode cloud(feature_shape, 4, rng);
  const core::TrainCurve curve = cloud.train(net, ds.train, opts, train_rng);
  EXPECT_GT(curve.back().accuracy, 0.5);

  const data::Dataset test_features = sim::extract_features(net, ds.test);
  const std::vector<int> preds = cloud.classify_features(test_features.images);
  std::int64_t correct = 0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    if (preds[i] == ds.test.labels[i]) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / preds.size(), 0.4);
}

TEST(FeatureCloud, FeatureBytes) {
  EXPECT_EQ(sim::FeatureCloudNode::feature_bytes(Shape{1, 8, 2, 2}), 4 * 8 * 2 * 2);
  EXPECT_EQ(sim::FeatureCloudNode::feature_bytes(Shape{5, 8, 2, 2}), 4 * 8 * 2 * 2);
}

TEST(FeatureCloud, RejectsBadFeatureShape) {
  util::Rng rng(16);
  EXPECT_THROW(sim::FeatureCloudNode(Shape{8, 2}, 4, rng), std::invalid_argument);
}

}  // namespace
}  // namespace meanet
