#include <gtest/gtest.h>

#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/model_stats.h"
#include "nn/sequential.h"
#include "nn/training_memory.h"
#include "util/rng.h"

namespace meanet::nn {
namespace {

TEST(ModelStats, SingleLayerAttribution) {
  util::Rng rng(1);
  Conv2d conv(3, 4, 3, 1, 1, false, rng);
  const ModelStats trained = collect_stats(conv, Shape{1, 3, 8, 8});
  EXPECT_EQ(trained.trained_params, 4 * 3 * 9);
  EXPECT_EQ(trained.fixed_params, 0);
  conv.set_frozen(true);
  const ModelStats fixed = collect_stats(conv, Shape{1, 3, 8, 8});
  EXPECT_EQ(fixed.fixed_params, 4 * 3 * 9);
  EXPECT_EQ(fixed.trained_params, 0);
  EXPECT_EQ(fixed.total_macs(), trained.total_macs());
}

TEST(ModelStats, PipelineThreadsShapes) {
  util::Rng rng(2);
  Conv2d conv(2, 4, 3, 2, 1, false, rng);   // 8x8 -> 4x4
  Conv2d conv2(4, 4, 3, 1, 1, false, rng);  // at 4x4
  const ModelStats stats =
      collect_stats({&conv, &conv2}, Shape{1, 2, 8, 8});
  // conv2 MACs must be computed at the downsampled resolution.
  EXPECT_EQ(stats.total_macs(),
            static_cast<std::int64_t>(4) * 2 * 9 * 4 * 4 + static_cast<std::int64_t>(4) * 4 * 9 * 4 * 4);
}

TEST(ModelStats, AccumulateOperator) {
  ModelStats a, b;
  a.fixed_params = 1;
  a.trained_macs = 5;
  b.trained_params = 2;
  b.fixed_macs = 7;
  a += b;
  EXPECT_EQ(a.total_params(), 3);
  EXPECT_EQ(a.total_macs(), 12);
}

TEST(ModelStats, FormatMillions) {
  EXPECT_EQ(format_millions(370000), "0.37");
  EXPECT_EQ(format_millions(27460000), "27.46");
}

TEST(TrainingMemory, BlockwiseNeedsLessThanJoint) {
  util::Rng rng(3);
  Sequential frozen_part("main");
  frozen_part.emplace<Conv2d>(3, 8, 3, 1, 1, false, rng, "m1");
  frozen_part.emplace<Conv2d>(8, 8, 3, 1, 1, false, rng, "m2");
  Sequential trained_part("ext");
  trained_part.emplace<Conv2d>(8, 8, 3, 1, 1, false, rng, "e1");

  const Shape image{1, 3, 8, 8};
  const Shape feature{1, 8, 8, 8};
  const std::vector<MemorySegment> blockwise{
      {&frozen_part, image, /*trained=*/false},
      {&trained_part, feature, /*trained=*/true},
  };
  const std::vector<MemorySegment> joint{
      {&frozen_part, image, /*trained=*/true},
      {&trained_part, feature, /*trained=*/true},
  };
  const MemoryBreakdown ours = estimate_training_memory(blockwise, 128);
  const MemoryBreakdown baseline = estimate_training_memory(joint, 128);
  EXPECT_LT(ours.total(), baseline.total());
  // Parameters resident in both cases.
  EXPECT_EQ(ours.parameter_bytes, baseline.parameter_bytes);
  // Frozen part contributes no gradient/momentum/activation bytes.
  EXPECT_LT(ours.gradient_bytes, baseline.gradient_bytes);
  EXPECT_LT(ours.activation_bytes, baseline.activation_bytes);
}

TEST(TrainingMemory, ScalesWithBatchSize) {
  util::Rng rng(4);
  Sequential net("n");
  net.emplace<Conv2d>(2, 4, 3, 1, 1, false, rng, "c");
  const std::vector<MemorySegment> segments{{&net, Shape{1, 2, 8, 8}, true}};
  const MemoryBreakdown b32 = estimate_training_memory(segments, 32);
  const MemoryBreakdown b64 = estimate_training_memory(segments, 64);
  EXPECT_EQ(b64.activation_bytes, 2 * b32.activation_bytes);
  EXPECT_EQ(b64.parameter_bytes, b32.parameter_bytes);
}

TEST(TrainingMemory, Validation) {
  util::Rng rng(5);
  Sequential net("n");
  net.emplace<Conv2d>(2, 4, 3, 1, 1, false, rng, "c");
  EXPECT_THROW(estimate_training_memory({{&net, Shape{1, 2, 8, 8}, true}}, 0),
               std::invalid_argument);
  EXPECT_THROW(estimate_training_memory({{nullptr, Shape{1, 2, 8, 8}, true}}, 1),
               std::invalid_argument);
}

TEST(TrainingMemory, MibConversion) {
  MemoryBreakdown b;
  b.parameter_bytes = 1024 * 1024;
  EXPECT_DOUBLE_EQ(b.total_mib(), 1.0);
}

}  // namespace
}  // namespace meanet::nn
