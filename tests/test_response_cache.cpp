// Property tests for the runtime::ResponseCache LRU rewrite: capacity
// is never exceeded, eviction order follows recency (the old FIFO
// eviction threw out hot entries — regression-tested here), byte-exact
// key comparison rejects synthetic hash collisions, and the hit/evict
// counters agree with an oracle std::list-based model under a seeded
// random op stream.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <list>
#include <utility>
#include <vector>

#include "runtime/response_cache.h"
#include "util/rng.h"

namespace meanet::runtime {
namespace {

/// A tiny frame whose bytes encode `tag` (so distinct tags are distinct
/// byte keys).
std::vector<float> frame_of(int tag, std::size_t len = 4) {
  std::vector<float> f(len, 0.0f);
  f[0] = static_cast<float>(tag);
  f[len - 1] = static_cast<float>(tag) * 0.5f;
  return f;
}

InferenceResult result_of(int tag) {
  InferenceResult r;
  r.prediction = tag;
  r.id = tag;
  return r;
}

TEST(ResponseCacheLru, HotEntrySurvivesWhereFifoEvictedIt) {
  // The FIFO regression: capacity 2, A is the hot entry (hit between
  // inserts). FIFO evicted by insertion age -> A died when C arrived;
  // LRU must evict the cold B instead.
  ResponseCache cache(2);
  const auto a = frame_of(1), b = frame_of(2), c = frame_of(3);
  cache.insert(a.data(), 4, result_of(1));
  cache.insert(b.data(), 4, result_of(2));
  ASSERT_TRUE(cache.lookup(a.data(), 4).has_value());  // A is hot now
  cache.insert(c.data(), 4, result_of(3));
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_TRUE(cache.lookup(a.data(), 4).has_value()) << "hot entry was evicted (FIFO behavior)";
  EXPECT_FALSE(cache.lookup(b.data(), 4).has_value()) << "cold entry should have been evicted";
  EXPECT_TRUE(cache.lookup(c.data(), 4).has_value());
}

TEST(ResponseCacheLru, LookupRefreshesRecency) {
  ResponseCache cache(3);
  for (int tag = 1; tag <= 3; ++tag) {
    const auto f = frame_of(tag);
    cache.insert(f.data(), 4, result_of(tag));
  }
  // Touch 1 (the oldest insert); inserting 4 must now evict 2.
  const auto f1 = frame_of(1);
  ASSERT_TRUE(cache.lookup(f1.data(), 4).has_value());
  const auto f4 = frame_of(4);
  cache.insert(f4.data(), 4, result_of(4));
  EXPECT_TRUE(cache.lookup(f1.data(), 4).has_value());
  const auto f2 = frame_of(2);
  EXPECT_FALSE(cache.lookup(f2.data(), 4).has_value());
}

TEST(ResponseCacheLru, ByteExactCompareRejectsSyntheticCollisions) {
  // Force every key onto one hash bucket: correctness must now come
  // entirely from the byte-exact compare.
  ResponseCache cache(8, [](const float*, std::int64_t) { return std::uint64_t{42}; });
  for (int tag = 0; tag < 8; ++tag) {
    const auto f = frame_of(tag);
    cache.insert(f.data(), 4, result_of(tag));
  }
  for (int tag = 0; tag < 8; ++tag) {
    const auto f = frame_of(tag);
    const auto hit = cache.lookup(f.data(), 4);
    ASSERT_TRUE(hit.has_value()) << tag;
    EXPECT_EQ(hit->prediction, tag) << "collision served the wrong entry";
  }
  // A frame that collides but differs in one byte must miss...
  auto mutated = frame_of(3);
  mutated[1] = 1e-30f;
  EXPECT_FALSE(cache.lookup(mutated.data(), 4).has_value());
  // ...and so must a colliding frame of a different length.
  const auto longer = frame_of(3, 5);
  EXPECT_FALSE(cache.lookup(longer.data(), 5).has_value());
}

TEST(ResponseCacheLru, CollidingEntriesEvictIndependently) {
  ResponseCache cache(2, [](const float*, std::int64_t) { return std::uint64_t{7}; });
  const auto a = frame_of(1), b = frame_of(2), c = frame_of(3);
  cache.insert(a.data(), 4, result_of(1));
  cache.insert(b.data(), 4, result_of(2));
  cache.insert(c.data(), 4, result_of(3));  // evicts A (LRU) from the shared bucket
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.lookup(a.data(), 4).has_value());
  EXPECT_TRUE(cache.lookup(b.data(), 4).has_value());
  EXPECT_TRUE(cache.lookup(c.data(), 4).has_value());
}

TEST(ResponseCacheLru, ReinsertRefreshesWithoutDuplicating) {
  ResponseCache cache(2);
  const auto a = frame_of(1), b = frame_of(2), c = frame_of(3);
  cache.insert(a.data(), 4, result_of(1));
  cache.insert(b.data(), 4, result_of(2));
  // Re-inserting A must not duplicate it, and must refresh its recency
  // (keeping the first stored result — concurrent workers race
  // benignly).
  cache.insert(a.data(), 4, result_of(99));
  EXPECT_EQ(cache.size(), 2u);
  cache.insert(c.data(), 4, result_of(3));
  EXPECT_FALSE(cache.lookup(b.data(), 4).has_value());
  const auto hit = cache.lookup(a.data(), 4);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->prediction, 1);
}

TEST(ResponseCacheLru, ZeroCapacityIsRejected) {
  EXPECT_THROW(ResponseCache(0), std::invalid_argument);
}

/// Oracle: the textbook std::list LRU (front = MRU), linear scans.
class OracleLru {
 public:
  explicit OracleLru(std::size_t capacity) : capacity_(capacity) {}

  std::optional<int> lookup(const std::vector<float>& key) {
    const auto it = find(key);
    if (it == entries_.end()) {
      ++misses_;
      return std::nullopt;
    }
    entries_.splice(entries_.begin(), entries_, it);
    ++hits_;
    return it->second;
  }

  void insert(const std::vector<float>& key, int value) {
    const auto it = find(key);
    if (it != entries_.end()) {
      entries_.splice(entries_.begin(), entries_, it);
      return;
    }
    entries_.emplace_front(key, value);
    if (entries_.size() > capacity_) {
      entries_.pop_back();
      ++evictions_;
    }
  }

  std::size_t size() const { return entries_.size(); }
  std::int64_t hits() const { return hits_; }
  std::int64_t misses() const { return misses_; }
  std::int64_t evictions() const { return evictions_; }

 private:
  std::list<std::pair<std::vector<float>, int>>::iterator find(const std::vector<float>& key) {
    return std::find_if(entries_.begin(), entries_.end(), [&](const auto& e) {
      return e.first.size() == key.size() &&
             std::memcmp(e.first.data(), key.data(), key.size() * sizeof(float)) == 0;
    });
  }

  const std::size_t capacity_;
  std::list<std::pair<std::vector<float>, int>> entries_;
  std::int64_t hits_ = 0, misses_ = 0, evictions_ = 0;
};

TEST(ResponseCacheLru, AgreesWithOracleUnderSeededOpStream) {
  // Small key universe over a small capacity so hits, misses, and
  // evictions all fire constantly; a narrowed hasher (8 buckets) keeps
  // the collision path hot too.
  constexpr int kUniverse = 24;
  constexpr std::size_t kCapacity = 7;
  constexpr int kOps = 4000;
  ResponseCache cache(kCapacity, [](const float* f, std::int64_t n) {
    return ResponseCache::fnv1a(f, n) % 8;
  });
  OracleLru oracle(kCapacity);
  util::Rng rng(0x50a5ULL);
  for (int op = 0; op < kOps; ++op) {
    const int tag = rng.uniform_int(0, kUniverse - 1);
    const auto key = frame_of(tag);
    if (rng.bernoulli(0.5)) {
      const auto got = cache.lookup(key.data(), 4);
      const auto want = oracle.lookup(key);
      ASSERT_EQ(got.has_value(), want.has_value()) << "op " << op << " tag " << tag;
      if (got) EXPECT_EQ(got->prediction, *want) << "op " << op;
    } else {
      cache.insert(key.data(), 4, result_of(tag));
      oracle.insert(key, tag);
    }
    ASSERT_LE(cache.size(), kCapacity) << "capacity exceeded at op " << op;
    ASSERT_EQ(cache.size(), oracle.size()) << "op " << op;
  }
  EXPECT_EQ(cache.hits(), oracle.hits());
  EXPECT_EQ(cache.misses(), oracle.misses());
  EXPECT_EQ(cache.evictions(), oracle.evictions());
  EXPECT_GT(cache.hits(), 0);
  EXPECT_GT(cache.evictions(), 0);
}

}  // namespace
}  // namespace meanet::runtime
