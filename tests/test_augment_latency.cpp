// Tests for data augmentation, the latency model, and top-k accuracy.
#include <gtest/gtest.h>

#include <cmath>

#include "core/builders.h"
#include "core/trainer.h"
#include "data/augment.h"
#include "metrics/classification_metrics.h"
#include "sim/latency_model.h"
#include "tiny_models.h"
#include "util/rng.h"

namespace meanet {
namespace {

// ---------- Augmentation ----------

TEST(Augment, ZeroOptionsIsIdentity) {
  util::Rng rng(1);
  Tensor images = Tensor::normal(Shape{3, 2, 6, 6}, rng);
  const Tensor before = images;
  data::AugmentOptions options;
  options.crop_padding = 0;
  options.flip_probability = 0.0;
  options.noise_stddev = 0.0f;
  data::augment_batch(images, options, rng);
  EXPECT_TRUE(allclose(before, images, 0.0f));
}

TEST(Augment, FlipIsInvolutionOnFullProbability) {
  util::Rng rng(2);
  Tensor images = Tensor::normal(Shape{1, 1, 4, 4}, rng);
  const Tensor before = images;
  data::AugmentOptions options;
  options.crop_padding = 0;
  options.flip_probability = 1.0;
  data::augment_batch(images, options, rng);
  // One flip changed the image...
  EXPECT_FALSE(allclose(before, images, 1e-6f));
  // ...a second flip restores it.
  data::augment_batch(images, options, rng);
  EXPECT_TRUE(allclose(before, images, 0.0f));
}

TEST(Augment, FlipMirrorsRows) {
  util::Rng rng(3);
  Tensor image(Shape{1, 1, 1, 4}, std::vector<float>{1, 2, 3, 4});
  data::AugmentOptions options;
  options.crop_padding = 0;
  options.flip_probability = 1.0;
  data::augment_batch(image, options, rng);
  EXPECT_FLOAT_EQ(image[0], 4.0f);
  EXPECT_FLOAT_EQ(image[3], 1.0f);
}

TEST(Augment, CropShiftKeepsShapeAndZeroFills) {
  util::Rng rng(4);
  Tensor images = Tensor::ones(Shape{8, 1, 6, 6});
  data::AugmentOptions options;
  options.crop_padding = 2;
  options.flip_probability = 0.0;
  data::augment_batch(images, options, rng);
  EXPECT_EQ(images.shape(), Shape({8, 1, 6, 6}));
  // Shifted instances acquire zero borders: total mass cannot grow.
  EXPECT_LE(images.sum(), 8.0f * 36.0f + 1e-4f);
  // With 8 instances and padding 2 some shift should have occurred.
  EXPECT_LT(images.sum(), 8.0f * 36.0f);
}

TEST(Augment, NoiseChangesEveryPixel) {
  util::Rng rng(5);
  Tensor images = Tensor::zeros(Shape{1, 1, 4, 4});
  data::AugmentOptions options;
  options.crop_padding = 0;
  options.flip_probability = 0.0;
  options.noise_stddev = 1.0f;
  data::augment_batch(images, options, rng);
  for (std::int64_t i = 0; i < images.numel(); ++i) EXPECT_NE(images[i], 0.0f);
}

TEST(Augment, InstanceHelperMatchesBatchPath) {
  util::Rng image_rng(6);
  const Tensor image = Tensor::normal(Shape{1, 2, 5, 5}, image_rng);
  data::AugmentOptions options;
  options.crop_padding = 1;
  // Same seed -> same augmentation draws on both paths.
  util::Rng rng_batch(42), rng_helper(42);
  Tensor via_batch = image;
  data::augment_batch(via_batch, options, rng_batch);
  const Tensor via_helper = data::augment_instance(image, options, rng_helper);
  EXPECT_TRUE(allclose(via_batch, via_helper, 0.0f));
}

TEST(Augment, RejectsBadInput) {
  util::Rng rng(7);
  Tensor flat(Shape{4, 4});
  data::AugmentOptions options;
  EXPECT_THROW(data::augment_batch(flat, options, rng), std::invalid_argument);
  Tensor images(Shape{1, 1, 4, 4});
  options.crop_padding = -1;
  EXPECT_THROW(data::augment_batch(images, options, rng), std::invalid_argument);
}

// ---------- Augmented training integration ----------

TEST(Augment, TrainingWithAugmentationStillLearns) {
  util::Rng rng(20);
  const data::SyntheticDataset ds =
      data::make_synthetic(meanet::testing::tiny_data_spec(), 71);
  nn::Sequential net =
      core::build_resnet_classifier(meanet::testing::tiny_resnet_config(), rng);
  core::TrainOptions opts;
  opts.epochs = 6;
  opts.batch_size = 16;
  opts.augment = data::AugmentOptions{};  // crop padding 2 + flips
  util::Rng train_rng(21);
  const core::TrainCurve curve = core::train_classifier(net, ds.train, opts, train_rng);
  EXPECT_LT(curve.back().loss, curve.front().loss);
  EXPECT_GT(curve.back().accuracy, 0.4);
}

// ---------- Latency model ----------

sim::LatencyParams latency_params() {
  sim::LatencyParams p;
  p.edge_device.compute_power_w = 5.0;
  p.edge_device.macs_per_second = 1e9;
  p.upload_bytes = 10000;
  p.main_macs = 1'000'000;       // 1 ms at the edge
  p.extension_macs = 500'000;    // +0.5 ms
  p.cloud_macs = 100'000'000;    // 0.1 ms at the cloud
  p.cloud_macs_per_second = 1e12;
  p.rtt_s = 0.020;
  return p;
}

core::InstanceDecision decision_with(core::Route route) {
  core::InstanceDecision d;
  d.route = route;
  return d;
}

TEST(LatencyModel, PerRouteOrdering) {
  const sim::LatencyParams p = latency_params();
  const double main_l = sim::instance_latency_s(decision_with(core::Route::kMainExit), p);
  const double ext_l = sim::instance_latency_s(decision_with(core::Route::kExtensionExit), p);
  const double cloud_l = sim::instance_latency_s(decision_with(core::Route::kCloud), p);
  EXPECT_LT(main_l, ext_l);
  EXPECT_LT(ext_l, cloud_l);  // upload + RTT dominate
  EXPECT_NEAR(main_l, 1e-3, 1e-9);
  EXPECT_NEAR(ext_l, 1.5e-3, 1e-9);
  // cloud: 1 ms edge + 80000 bits / 18.88 Mbps + 0.1 ms + 20 ms RTT.
  const double upload = 80000.0 / 18.88e6;
  EXPECT_NEAR(cloud_l, 1e-3 + upload + 1e-4 + 0.020, 1e-6);
}

TEST(LatencyModel, StatsPercentilesOrdered) {
  const sim::LatencyParams p = latency_params();
  std::vector<core::InstanceDecision> decisions;
  for (int i = 0; i < 90; ++i) decisions.push_back(decision_with(core::Route::kMainExit));
  for (int i = 0; i < 10; ++i) decisions.push_back(decision_with(core::Route::kCloud));
  const sim::LatencyStats stats = sim::analyze_latency(decisions, p);
  EXPECT_LE(stats.p50_s, stats.p95_s);
  EXPECT_LE(stats.p95_s, stats.p99_s);
  EXPECT_LE(stats.p99_s, stats.max_s);
  EXPECT_DOUBLE_EQ(stats.edge_fraction, 0.9);
  // Median is an edge instance; p95+ are cloud instances.
  EXPECT_NEAR(stats.p50_s, 1e-3, 1e-9);
  EXPECT_GT(stats.p95_s, 0.02);
}

TEST(LatencyModel, EmptyDecisionsGiveZeroStats) {
  const sim::LatencyStats stats = sim::analyze_latency({}, latency_params());
  EXPECT_DOUBLE_EQ(stats.mean_s, 0.0);
  EXPECT_DOUBLE_EQ(stats.edge_fraction, 0.0);
}

TEST(LatencyModel, RejectsBadCloudThroughput) {
  sim::LatencyParams p = latency_params();
  p.cloud_macs_per_second = 0.0;
  EXPECT_THROW(sim::instance_latency_s(decision_with(core::Route::kCloud), p),
               std::logic_error);
}

// ---------- Top-k accuracy ----------

TEST(TopK, KOneMatchesArgmaxAccuracy) {
  Tensor scores(Shape{2, 3}, std::vector<float>{0.1f, 0.7f, 0.2f, 0.6f, 0.3f, 0.1f});
  EXPECT_DOUBLE_EQ(metrics::top_k_accuracy(scores, {1, 1}, 1), 0.5);
}

TEST(TopK, LargerKIsMonotone) {
  util::Rng rng(8);
  const Tensor scores = Tensor::normal(Shape{20, 6}, rng);
  std::vector<int> labels(20);
  for (int i = 0; i < 20; ++i) labels[static_cast<std::size_t>(i)] = i % 6;
  double prev = 0.0;
  for (int k = 1; k <= 6; ++k) {
    const double acc = metrics::top_k_accuracy(scores, labels, k);
    EXPECT_GE(acc, prev);
    prev = acc;
  }
  EXPECT_DOUBLE_EQ(prev, 1.0);  // k == classes always hits
}

TEST(TopK, Validation) {
  Tensor scores(Shape{1, 3});
  EXPECT_THROW(metrics::top_k_accuracy(scores, {0}, 0), std::invalid_argument);
  EXPECT_THROW(metrics::top_k_accuracy(scores, {0}, 4), std::invalid_argument);
  EXPECT_THROW(metrics::top_k_accuracy(scores, {3}, 1), std::out_of_range);
  EXPECT_THROW(metrics::top_k_accuracy(scores, {0, 1}, 1), std::invalid_argument);
}

}  // namespace
}  // namespace meanet
