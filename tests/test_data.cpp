#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "data/batcher.h"
#include "data/dataset.h"
#include "data/synthetic.h"

namespace meanet::data {
namespace {

SyntheticSpec tiny_spec() {
  SyntheticSpec spec;
  spec.num_classes = 4;
  spec.channels = 2;
  spec.height = 6;
  spec.width = 6;
  spec.train_per_class = 10;
  spec.test_per_class = 5;
  return spec;
}

TEST(Synthetic, SizesMatchSpec) {
  const SyntheticDataset ds = make_synthetic(tiny_spec(), 1);
  EXPECT_EQ(ds.train.size(), 40);
  EXPECT_EQ(ds.test.size(), 20);
  EXPECT_EQ(ds.train.num_classes, 4);
  EXPECT_EQ(ds.train.images.shape(), Shape({40, 2, 6, 6}));
}

TEST(Synthetic, DeterministicFromSeed) {
  const SyntheticDataset a = make_synthetic(tiny_spec(), 7);
  const SyntheticDataset b = make_synthetic(tiny_spec(), 7);
  EXPECT_TRUE(allclose(a.train.images, b.train.images, 0.0f));
  EXPECT_EQ(a.train.labels, b.train.labels);
}

TEST(Synthetic, DifferentSeedsDiffer) {
  const SyntheticDataset a = make_synthetic(tiny_spec(), 7);
  const SyntheticDataset b = make_synthetic(tiny_spec(), 8);
  EXPECT_FALSE(allclose(a.train.images, b.train.images, 1e-3f));
}

TEST(Synthetic, ConfuserPairingIsSymmetricInvolution) {
  const SyntheticDataset ds = make_synthetic(tiny_spec(), 3);
  for (int c = 0; c < 4; ++c) {
    const int partner = ds.confuser[static_cast<std::size_t>(c)];
    EXPECT_NE(partner, c);
    EXPECT_EQ(ds.confuser[static_cast<std::size_t>(partner)], c);
  }
}

TEST(Synthetic, DifficultySpansConfiguredRange) {
  SyntheticSpec spec = tiny_spec();
  spec.min_difficulty = 0.1f;
  spec.max_difficulty = 0.9f;
  const SyntheticDataset ds = make_synthetic(spec, 5);
  const float lo = *std::min_element(ds.difficulty.begin(), ds.difficulty.end());
  const float hi = *std::max_element(ds.difficulty.begin(), ds.difficulty.end());
  EXPECT_FLOAT_EQ(lo, 0.1f);
  EXPECT_FLOAT_EQ(hi, 0.9f);
}

TEST(Synthetic, RejectsOddClassCount) {
  SyntheticSpec spec = tiny_spec();
  spec.num_classes = 5;
  EXPECT_THROW(make_synthetic(spec, 1), std::invalid_argument);
}

TEST(Synthetic, LabelsAreBalanced) {
  const SyntheticDataset ds = make_synthetic(tiny_spec(), 2);
  std::vector<int> counts(4, 0);
  for (int label : ds.train.labels) ++counts[static_cast<std::size_t>(label)];
  for (int c = 0; c < 4; ++c) EXPECT_EQ(counts[static_cast<std::size_t>(c)], 10);
}

TEST(DatasetOps, SelectCopiesRows) {
  const SyntheticDataset ds = make_synthetic(tiny_spec(), 4);
  const Dataset sel = select(ds.train, {0, 39});
  EXPECT_EQ(sel.size(), 2);
  EXPECT_EQ(sel.labels[0], ds.train.labels[0]);
  EXPECT_EQ(sel.labels[1], ds.train.labels[39]);
  EXPECT_TRUE(allclose(sel.instance(1), ds.train.instance(39), 0.0f));
}

TEST(DatasetOps, SelectRejectsBadIndex) {
  const SyntheticDataset ds = make_synthetic(tiny_spec(), 4);
  EXPECT_THROW(select(ds.train, {40}), std::out_of_range);
}

TEST(DatasetOps, FilterByLabelsKeepsOnlyRequested) {
  const SyntheticDataset ds = make_synthetic(tiny_spec(), 4);
  const Dataset filtered = filter_by_labels(ds.train, {1, 3});
  EXPECT_EQ(filtered.size(), 20);
  for (int label : filtered.labels) EXPECT_TRUE(label == 1 || label == 3);
  EXPECT_EQ(filtered.num_classes, 4);  // label space unchanged
}

TEST(DatasetOps, RemapLabelsCompactsSpace) {
  const SyntheticDataset ds = make_synthetic(tiny_spec(), 4);
  const Dataset filtered = filter_by_labels(ds.train, {1, 3});
  std::vector<int> mapping{-1, 0, -1, 1};
  const Dataset remapped = remap_labels(filtered, mapping, 2);
  EXPECT_EQ(remapped.num_classes, 2);
  for (int label : remapped.labels) EXPECT_TRUE(label == 0 || label == 1);
}

TEST(DatasetOps, RemapRejectsUnmappedInstance) {
  const SyntheticDataset ds = make_synthetic(tiny_spec(), 4);
  std::vector<int> mapping{-1, 0, -1, 1};  // class 0 instances unmapped
  EXPECT_THROW(remap_labels(ds.train, mapping, 2), std::invalid_argument);
}

TEST(DatasetOps, SplitPartitionsWithoutOverlap) {
  const SyntheticDataset ds = make_synthetic(tiny_spec(), 4);
  util::Rng rng(1);
  const SplitResult parts = split(ds.train, 0.9, rng);
  EXPECT_EQ(parts.first.size(), 36);
  EXPECT_EQ(parts.second.size(), 4);
}

TEST(DatasetOps, SplitFractionValidation) {
  const SyntheticDataset ds = make_synthetic(tiny_spec(), 4);
  util::Rng rng(1);
  EXPECT_THROW(split(ds.train, -0.1, rng), std::invalid_argument);
  EXPECT_THROW(split(ds.train, 1.1, rng), std::invalid_argument);
}

TEST(DatasetOps, GatherBatchShapes) {
  const SyntheticDataset ds = make_synthetic(tiny_spec(), 4);
  const auto [images, labels] = gather_batch(ds.train, {3, 7, 11});
  EXPECT_EQ(images.shape(), Shape({3, 2, 6, 6}));
  EXPECT_EQ(labels.size(), 3u);
}

TEST(Batcher, CoversAllIndicesOncePerEpoch) {
  util::Rng rng(5);
  Batcher batcher(23, 5, rng);
  const auto batches = batcher.epoch();
  EXPECT_EQ(batches.size(), 5u);  // ceil(23/5)
  std::set<int> seen;
  for (const auto& batch : batches) {
    for (int idx : batch) seen.insert(idx);
  }
  EXPECT_EQ(seen.size(), 23u);
  EXPECT_EQ(batches.back().size(), 3u);
}

TEST(Batcher, ShufflesBetweenEpochs) {
  util::Rng rng(6);
  Batcher batcher(50, 50, rng);
  const auto epoch1 = batcher.epoch();
  const auto epoch2 = batcher.epoch();
  EXPECT_NE(epoch1[0], epoch2[0]);
}

TEST(Batcher, RejectsEmptyOrBadSizes) {
  util::Rng rng(7);
  EXPECT_THROW(Batcher(0, 5, rng), std::invalid_argument);
  EXPECT_THROW(Batcher(5, 0, rng), std::invalid_argument);
}

TEST(SpecPresets, AreWellFormed) {
  const SyntheticSpec cifar = cifar_like_spec();
  EXPECT_EQ(cifar.num_classes % 2, 0);
  EXPECT_GT(cifar.train_per_class, 0);
  const SyntheticSpec imagenet = imagenet_like_spec();
  // The ImageNet-like images must be larger (communication-dominated
  // regime in Fig. 8).
  EXPECT_GT(imagenet.height * imagenet.width, cifar.height * cifar.width);
}

}  // namespace
}  // namespace meanet::data
