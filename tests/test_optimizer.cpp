#include <gtest/gtest.h>

#include "nn/lr_schedule.h"
#include "nn/optimizer.h"

namespace meanet::nn {
namespace {

Parameter make_param(float value, float grad) {
  Parameter p("p", Tensor(Shape{1}, value));
  p.grad[0] = grad;
  return p;
}

TEST(SGD, VanillaStep) {
  Parameter p = make_param(1.0f, 0.5f);
  SGD opt({&p}, SgdOptions{0.1f, 0.0f, 0.0f});
  opt.step();
  EXPECT_FLOAT_EQ(p.value[0], 1.0f - 0.1f * 0.5f);
}

TEST(SGD, WeightDecayAddsToGradient) {
  Parameter p = make_param(2.0f, 0.0f);
  SGD opt({&p}, SgdOptions{0.1f, 0.0f, 0.5f});
  opt.step();
  // effective grad = 0 + 0.5 * 2 = 1; update = -0.1.
  EXPECT_FLOAT_EQ(p.value[0], 1.9f);
}

TEST(SGD, MomentumAccumulates) {
  Parameter p = make_param(0.0f, 1.0f);
  SGD opt({&p}, SgdOptions{1.0f, 0.5f, 0.0f});
  opt.step();  // v = 1, x = -1
  p.grad[0] = 1.0f;
  opt.step();  // v = 1.5, x = -2.5
  EXPECT_FLOAT_EQ(p.value[0], -2.5f);
}

TEST(SGD, SkipsFrozenParameters) {
  Parameter p = make_param(1.0f, 1.0f);
  p.trainable = false;
  SGD opt({&p}, SgdOptions{0.1f, 0.9f, 0.0f});
  opt.step();
  EXPECT_FLOAT_EQ(p.value[0], 1.0f);
}

TEST(SGD, ZeroGradClearsAll) {
  Parameter p = make_param(1.0f, 3.0f);
  SGD opt({&p}, SgdOptions{});
  opt.zero_grad();
  EXPECT_FLOAT_EQ(p.grad[0], 0.0f);
}

TEST(SGD, RejectsNullParameter) {
  EXPECT_THROW(SGD({nullptr}, SgdOptions{}), std::invalid_argument);
}

TEST(MultiStepLR, DecaysAtMilestones) {
  Parameter p = make_param(0.0f, 0.0f);
  SGD opt({&p}, SgdOptions{1.0f, 0.0f, 0.0f});
  MultiStepLR schedule(opt, {2, 4}, 0.1f);
  schedule.step();  // epoch 1
  EXPECT_FLOAT_EQ(opt.learning_rate(), 1.0f);
  schedule.step();  // epoch 2 -> decay
  EXPECT_FLOAT_EQ(opt.learning_rate(), 0.1f);
  schedule.step();  // epoch 3
  EXPECT_FLOAT_EQ(opt.learning_rate(), 0.1f);
  schedule.step();  // epoch 4 -> decay
  EXPECT_NEAR(opt.learning_rate(), 0.01f, 1e-7f);
}

TEST(MultiStepLR, UnsortedMilestonesHandled) {
  Parameter p = make_param(0.0f, 0.0f);
  SGD opt({&p}, SgdOptions{1.0f, 0.0f, 0.0f});
  MultiStepLR schedule(opt, {3, 1}, 0.5f);
  schedule.step();
  EXPECT_FLOAT_EQ(opt.learning_rate(), 0.5f);
  schedule.step();
  EXPECT_FLOAT_EQ(opt.learning_rate(), 0.5f);
  schedule.step();
  EXPECT_FLOAT_EQ(opt.learning_rate(), 0.25f);
}

}  // namespace
}  // namespace meanet::nn
