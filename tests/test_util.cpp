#include <gtest/gtest.h>

#include "util/logging.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace meanet::util {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(1);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 500; ++i) {
    const int v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= (v == 0);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(2);
  std::vector<int> v{1, 2, 3, 4, 5};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ForkIndependentStreams) {
  Rng parent(3);
  Rng child1 = parent.fork();
  Rng child2 = parent.fork();
  // Distinct children should produce different streams.
  EXPECT_NE(child1.uniform_int(0, 1 << 20), child2.uniform_int(0, 1 << 20));
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(4);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(StringUtil, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

TEST(StringUtil, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"x"}, ","), "x");
}

TEST(StringUtil, Padding) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcd", 2), "abcd");
}

TEST(StringUtil, RenderTableAlignsColumns) {
  const std::string table = render_table({{"h1", "header2"}, {"a", "b"}});
  // Header row, separator row, data row.
  EXPECT_NE(table.find("h1"), std::string::npos);
  EXPECT_NE(table.find("---"), std::string::npos);
  EXPECT_NE(table.find("a"), std::string::npos);
}

TEST(Stopwatch, MeasuresNonNegativeTime) {
  Stopwatch sw;
  EXPECT_GE(sw.seconds(), 0.0);
  sw.reset();
  EXPECT_GE(sw.milliseconds(), 0.0);
}

TEST(Logging, LevelsFilter) {
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Emitting below threshold must not crash (output discarded).
  log_info() << "hidden message";
  set_log_level(LogLevel::kWarn);
}

}  // namespace
}  // namespace meanet::util
