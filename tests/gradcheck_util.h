// Finite-difference gradient checking shared by the layer tests.
//
// Scheme: for layer L, fixed random cotangent w, and scalar
// s(x, theta) = <w, L(x)>, compare the analytic gradients produced by
// L.backward(w) (input gradient and parameter .grad fields) against
// central differences of s.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/layer.h"
#include "nn/parameter.h"
#include "util/rng.h"

namespace meanet::testing {

inline float dot(const Tensor& a, const Tensor& b) {
  float acc = 0.0f;
  for (std::int64_t i = 0; i < a.numel(); ++i) acc += a[i] * b[i];
  return acc;
}

struct GradCheckOptions {
  float epsilon = 1e-2f;
  float tolerance = 2e-2f;  // absolute+relative mix, see check()
  nn::Mode mode = nn::Mode::kTrain;
  /// Skip the parameter-gradient sweep: frozen layers intentionally
  /// accumulate no parameter gradients, so only the input gradient is
  /// checkable against finite differences.
  bool check_params = true;
};

/// Checks d<w, L(x)>/dx and d<w, L(x)>/dtheta for every parameter.
inline void check_layer_gradients(nn::Layer& layer, Tensor x, util::Rng& rng,
                                  const GradCheckOptions& opts = {}) {
  const Tensor out = layer.forward(x, opts.mode);
  Tensor w = Tensor::normal(out.shape(), rng, 0.0f, 1.0f);
  for (nn::Parameter* p : layer.parameters()) p->zero_grad();
  const Tensor grad_input = layer.backward(w);

  auto scalar = [&](Tensor& probe) {
    // Re-runs forward with the (perturbed) state already in place.
    (void)probe;
    Tensor y = layer.forward(x, opts.mode);
    return dot(y, w);
  };

  auto expect_close = [&](float analytic, float numeric, const std::string& what) {
    const float scale = std::max({1.0f, std::fabs(analytic), std::fabs(numeric)});
    EXPECT_NEAR(analytic, numeric, opts.tolerance * scale) << what;
  };

  // Input gradient (sampled positions to keep runtime sane).
  const std::int64_t n = x.numel();
  const std::int64_t step = std::max<std::int64_t>(1, n / 24);
  for (std::int64_t i = 0; i < n; i += step) {
    const float orig = x[i];
    x[i] = orig + opts.epsilon;
    const float plus = scalar(x);
    x[i] = orig - opts.epsilon;
    const float minus = scalar(x);
    x[i] = orig;
    expect_close(grad_input[i], (plus - minus) / (2.0f * opts.epsilon),
                 "input grad at " + std::to_string(i));
  }

  // Parameter gradients.
  if (!opts.check_params) return;
  for (nn::Parameter* p : layer.parameters()) {
    const std::int64_t pn = p->value.numel();
    const std::int64_t pstep = std::max<std::int64_t>(1, pn / 16);
    for (std::int64_t i = 0; i < pn; i += pstep) {
      const float orig = p->value[i];
      p->value[i] = orig + opts.epsilon;
      const float plus = scalar(x);
      p->value[i] = orig - opts.epsilon;
      const float minus = scalar(x);
      p->value[i] = orig;
      expect_close(p->grad[i], (plus - minus) / (2.0f * opts.epsilon),
                   p->name + " grad at " + std::to_string(i));
    }
  }
}

}  // namespace meanet::testing
