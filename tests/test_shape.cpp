#include "tensor/shape.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace meanet {
namespace {

TEST(Shape, DefaultIsRankZero) {
  Shape s;
  EXPECT_EQ(s.rank(), 0);
  EXPECT_EQ(s.numel(), 1);
}

TEST(Shape, InitializerListConstruction) {
  Shape s{2, 3, 4, 5};
  EXPECT_EQ(s.rank(), 4);
  EXPECT_EQ(s.numel(), 120);
  EXPECT_EQ(s.dim(0), 2);
  EXPECT_EQ(s.dim(3), 5);
}

TEST(Shape, NegativeAxisCountsFromEnd) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.dim(-1), 4);
  EXPECT_EQ(s.dim(-3), 2);
}

TEST(Shape, OutOfRangeAxisThrows) {
  Shape s{2, 3};
  EXPECT_THROW(s.dim(2), std::out_of_range);
  EXPECT_THROW(s.dim(-3), std::out_of_range);
}

TEST(Shape, RejectsMoreThanFourDims) {
  EXPECT_THROW(Shape({1, 2, 3, 4, 5}), std::invalid_argument);
}

TEST(Shape, RejectsNegativeDims) { EXPECT_THROW(Shape({2, -1}), std::invalid_argument); }

TEST(Shape, ZeroDimGivesZeroNumel) {
  Shape s{3, 0, 2};
  EXPECT_EQ(s.numel(), 0);
}

TEST(Shape, Equality) {
  EXPECT_EQ(Shape({1, 2}), Shape({1, 2}));
  EXPECT_NE(Shape({1, 2}), Shape({2, 1}));
  EXPECT_NE(Shape({1, 2}), Shape({1, 2, 1}));
}

TEST(Shape, NchwAccessors) {
  Shape s{2, 3, 8, 9};
  EXPECT_EQ(s.batch(), 2);
  EXPECT_EQ(s.channels(), 3);
  EXPECT_EQ(s.height(), 8);
  EXPECT_EQ(s.width(), 9);
}

TEST(Shape, NchwAccessorsThrowOnWrongRank) {
  Shape s{2, 3};
  EXPECT_THROW(s.batch(), std::logic_error);
  EXPECT_THROW(s.height(), std::logic_error);
}

TEST(Shape, ToString) { EXPECT_EQ(Shape({2, 3}).to_string(), "[2, 3]"); }

}  // namespace
}  // namespace meanet
