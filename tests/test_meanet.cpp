#include <gtest/gtest.h>

#include "core/builders.h"
#include "core/meanet.h"
#include "nn/parameter.h"
#include "tiny_models.h"
#include "util/rng.h"

namespace meanet::core {
namespace {

using meanet::testing::tiny_meanet_a;
using meanet::testing::tiny_meanet_b;
using meanet::testing::tiny_resnet_config;

TEST(MEANet, ForwardShapesModelB) {
  util::Rng rng(1);
  MEANet net = tiny_meanet_b(rng, 2);
  const Tensor images = Tensor::normal(Shape{3, 2, 8, 8}, rng);
  const MainForward fwd = net.forward_main(images, nn::Mode::kEval);
  EXPECT_EQ(fwd.logits.shape(), Shape({3, 4}));
  EXPECT_EQ(fwd.features.shape(), Shape({3, 8, 2, 2}));
  const Tensor y2 = net.forward_extension(images, fwd.features, nn::Mode::kEval);
  EXPECT_EQ(y2.shape(), Shape({3, 2}));
}

TEST(MEANet, ForwardShapesModelA) {
  util::Rng rng(2);
  MEANet net = tiny_meanet_a(rng, 2);
  const Tensor images = Tensor::normal(Shape{2, 2, 8, 8}, rng);
  const MainForward fwd = net.forward_main(images, nn::Mode::kEval);
  EXPECT_EQ(fwd.logits.shape(), Shape({2, 4}));
  // Model A features stop after stage 2: channels[1]=6, spatial /2.
  EXPECT_EQ(fwd.features.shape(), Shape({2, 6, 4, 4}));
  const Tensor y2 = net.forward_extension(images, fwd.features, nn::Mode::kEval);
  EXPECT_EQ(y2.shape(), Shape({2, 2}));
}

TEST(MEANet, AdaptiveOutputMatchesFeatureShape) {
  util::Rng rng(3);
  MEANet net = tiny_meanet_b(rng);
  const Shape image_shape{1, 2, 8, 8};
  EXPECT_EQ(net.adaptive().output_shape(image_shape),
            net.main_trunk().output_shape(image_shape));
}

TEST(MEANet, ConcatFusionDoublesExtensionInput) {
  util::Rng rng(4);
  MEANet net = tiny_meanet_b(rng, 2, FusionMode::kConcat);
  const Tensor images = Tensor::normal(Shape{2, 2, 8, 8}, rng);
  const MainForward fwd = net.forward_main(images, nn::Mode::kEval);
  const Tensor y2 = net.forward_extension(images, fwd.features, nn::Mode::kEval);
  EXPECT_EQ(y2.shape(), Shape({2, 2}));
}

TEST(MEANet, NumClassesQueries) {
  util::Rng rng(5);
  MEANet net = tiny_meanet_b(rng, 3);
  const Shape image_shape{1, 2, 8, 8};
  EXPECT_EQ(net.num_classes(image_shape), 4);
  EXPECT_EQ(net.num_hard_classes(image_shape), 3);
  MEANet concat_net = tiny_meanet_b(rng, 3, FusionMode::kConcat);
  EXPECT_EQ(concat_net.num_hard_classes(image_shape), 3);
}

TEST(MEANet, FreezeMainMarksOnlyMainParams) {
  util::Rng rng(6);
  MEANet net = tiny_meanet_b(rng);
  net.freeze_main();
  for (const nn::Parameter* p : net.main_parameters()) EXPECT_FALSE(p->trainable);
  for (const nn::Parameter* p : net.edge_parameters()) EXPECT_TRUE(p->trainable);
  net.unfreeze_main();
  for (const nn::Parameter* p : net.main_parameters()) EXPECT_TRUE(p->trainable);
}

TEST(MEANet, ParameterSetsAreDisjointAndComplete) {
  util::Rng rng(7);
  MEANet net = tiny_meanet_b(rng);
  const auto main = net.main_parameters();
  const auto edge = net.edge_parameters();
  const auto all = net.all_parameters();
  EXPECT_EQ(all.size(), main.size() + edge.size());
  for (const nn::Parameter* m : main) {
    for (const nn::Parameter* e : edge) EXPECT_NE(m, e);
  }
}

TEST(MEANet, BlockwiseBackwardLeavesMainGradsZero) {
  util::Rng rng(8);
  MEANet net = tiny_meanet_b(rng);
  net.freeze_main();
  const Tensor images = Tensor::normal(Shape{2, 2, 8, 8}, rng);
  const MainForward fwd = net.forward_main(images, nn::Mode::kEval);
  const Tensor y2 = net.forward_extension(images, fwd.features, nn::Mode::kTrain);
  net.backward_extension(Tensor::ones(y2.shape()), /*into_main=*/false);
  for (const nn::Parameter* p : net.main_parameters()) {
    for (std::int64_t i = 0; i < p->grad.numel(); ++i) {
      ASSERT_EQ(p->grad[i], 0.0f) << p->name;
    }
  }
  // Edge parameters must receive gradient.
  float edge_grad_mass = 0.0f;
  for (const nn::Parameter* p : net.edge_parameters()) {
    for (std::int64_t i = 0; i < p->grad.numel(); ++i) edge_grad_mass += std::fabs(p->grad[i]);
  }
  EXPECT_GT(edge_grad_mass, 0.0f);
}

TEST(MEANet, SumFusionIsElementwiseAddition) {
  util::Rng rng(9);
  MEANet net = tiny_meanet_b(rng, 2, FusionMode::kSum);
  const Tensor images = Tensor::normal(Shape{1, 2, 8, 8}, rng);
  const MainForward fwd = net.forward_main(images, nn::Mode::kEval);
  // Reference: run adaptive separately and feed F + f2 into the
  // extension directly.
  const Tensor f2 = net.adaptive().forward(images, nn::Mode::kEval);
  const Tensor fused = fwd.features + f2;
  const Tensor expected = net.extension().forward(fused, nn::Mode::kEval);
  const Tensor got = net.forward_extension(images, fwd.features, nn::Mode::kEval);
  EXPECT_TRUE(allclose(expected, got, 1e-5f));
}

TEST(MEANet, BackwardExtensionBeforeForwardThrows) {
  util::Rng rng(10);
  MEANet net = tiny_meanet_b(rng);
  EXPECT_THROW(net.backward_extension(Tensor(Shape{1, 2})), std::logic_error);
}

TEST(Builders, RejectBadHardClassCounts) {
  util::Rng rng(11);
  const ResNetConfig config = tiny_resnet_config();
  EXPECT_THROW(build_resnet_meanet_a(config, 0, FusionMode::kSum, rng), std::invalid_argument);
  EXPECT_THROW(build_resnet_meanet_b(config, 5, FusionMode::kSum, rng), std::invalid_argument);
}

TEST(Builders, MobileNetMeanetShapes) {
  util::Rng rng(12);
  MobileNetConfig config;
  config.stem_channels = 4;
  config.blocks = {{4, 1, 1}, {6, 2, 2}, {6, 1, 2}};
  config.image_channels = 2;
  config.num_classes = 4;
  MEANet net = build_mobilenet_meanet_b(config, 2, FusionMode::kSum, rng, 2);
  const Tensor images = Tensor::normal(Shape{2, 2, 8, 8}, rng);
  const MainForward fwd = net.forward_main(images, nn::Mode::kEval);
  EXPECT_EQ(fwd.logits.shape(), Shape({2, 4}));
  const Tensor y2 = net.forward_extension(images, fwd.features, nn::Mode::kEval);
  EXPECT_EQ(y2.shape(), Shape({2, 2}));
  // Adaptive block must mirror the trunk's output shape.
  EXPECT_EQ(net.adaptive().output_shape(Shape{1, 2, 8, 8}),
            net.main_trunk().output_shape(Shape{1, 2, 8, 8}));
}

TEST(Builders, CloudClassifierDeeperThanEdge) {
  util::Rng rng(13);
  nn::Sequential cloud = build_cloud_classifier(2, 4, rng);
  nn::Sequential edge = build_resnet_classifier(tiny_resnet_config(), rng);
  std::int64_t cloud_params = 0, edge_params = 0;
  for (nn::Parameter* p : cloud.parameters()) cloud_params += p->numel();
  for (nn::Parameter* p : edge.parameters()) edge_params += p->numel();
  EXPECT_GT(cloud_params, edge_params);
  EXPECT_EQ(cloud.output_shape(Shape{1, 2, 8, 8}), Shape({1, 4}));
}

}  // namespace
}  // namespace meanet::core
