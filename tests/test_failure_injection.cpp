// Failure-injection tests: every module must reject malformed inputs
// with a typed exception instead of corrupting state or crashing.
#include <gtest/gtest.h>

#include "core/builders.h"
#include "core/meanet.h"
#include "data/synthetic.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "nn/sequential.h"
#include "sim/device_model.h"
#include "sim/system.h"
#include "tensor/ops.h"
#include "tiny_models.h"

namespace meanet {
namespace {

TEST(FailureInjection, ConvRejectsInvalidGeometry) {
  util::Rng rng(1);
  EXPECT_THROW(nn::Conv2d(0, 4, 3, 1, 1, false, rng), std::invalid_argument);
  EXPECT_THROW(nn::Conv2d(3, 0, 3, 1, 1, false, rng), std::invalid_argument);
  EXPECT_THROW(nn::Conv2d(3, 4, 0, 1, 1, false, rng), std::invalid_argument);
  EXPECT_THROW(nn::Conv2d(3, 4, 3, 0, 1, false, rng), std::invalid_argument);
  EXPECT_THROW(nn::Conv2d(3, 4, 3, 1, -1, false, rng), std::invalid_argument);
}

TEST(FailureInjection, DepthwiseRejectsInvalidGeometry) {
  util::Rng rng(2);
  EXPECT_THROW(nn::DepthwiseConv2d(0, 3, 1, 1, rng), std::invalid_argument);
  EXPECT_THROW(nn::DepthwiseConv2d(3, 3, 0, 1, rng), std::invalid_argument);
}

TEST(FailureInjection, LinearRejectsInvalidDimensions) {
  util::Rng rng(3);
  EXPECT_THROW(nn::Linear(0, 4, rng), std::invalid_argument);
  EXPECT_THROW(nn::Linear(4, -1, rng), std::invalid_argument);
}

TEST(FailureInjection, PoolingRejectsBadKernel) {
  EXPECT_THROW(nn::AvgPool2d(0), std::invalid_argument);
  EXPECT_THROW(nn::AvgPool2d(-2), std::invalid_argument);
}

TEST(FailureInjection, MeanetSumFusionShapeMismatchThrows) {
  // Hand-build an MEANet whose adaptive block produces the wrong shape;
  // sum fusion must reject it at forward time.
  util::Rng rng(4);
  nn::Sequential trunk("trunk");
  trunk.emplace<nn::Conv2d>(2, 4, 3, 1, 1, false, rng, "t");
  nn::Sequential exit1("exit1");
  exit1.emplace<nn::GlobalAvgPool>();
  exit1.emplace<nn::Linear>(4, 3, rng, "fc1");
  nn::Sequential adaptive("adaptive");
  adaptive.emplace<nn::Conv2d>(2, 8, 3, 1, 1, false, rng, "a");  // 8 != 4 channels
  nn::Sequential extension("extension");
  extension.emplace<nn::GlobalAvgPool>();
  extension.emplace<nn::Linear>(4, 2, rng, "fc2");
  core::MEANet net(std::move(trunk), std::move(exit1), std::move(adaptive),
                   std::move(extension), core::FusionMode::kSum);
  const Tensor x = Tensor::normal(Shape{1, 2, 6, 6}, rng);
  const core::MainForward fwd = net.forward_main(x, nn::Mode::kEval);
  EXPECT_THROW(net.forward_extension(x, fwd.features, nn::Mode::kEval), std::invalid_argument);
}

TEST(FailureInjection, ConcatFusionSpatialMismatchThrows) {
  util::Rng rng(5);
  nn::Sequential trunk("trunk");
  trunk.emplace<nn::Conv2d>(2, 4, 3, 1, 1, false, rng, "t");
  nn::Sequential exit1("exit1");
  exit1.emplace<nn::GlobalAvgPool>();
  exit1.emplace<nn::Linear>(4, 3, rng, "fc1");
  nn::Sequential adaptive("adaptive");
  adaptive.emplace<nn::Conv2d>(2, 4, 3, 2, 1, false, rng, "a");  // stride 2: wrong spatial
  nn::Sequential extension("extension");
  extension.emplace<nn::GlobalAvgPool>();
  extension.emplace<nn::Linear>(8, 2, rng, "fc2");
  core::MEANet net(std::move(trunk), std::move(exit1), std::move(adaptive),
                   std::move(extension), core::FusionMode::kConcat);
  const Tensor x = Tensor::normal(Shape{1, 2, 6, 6}, rng);
  const core::MainForward fwd = net.forward_main(x, nn::Mode::kEval);
  EXPECT_THROW(net.forward_extension(x, fwd.features, nn::Mode::kEval), std::invalid_argument);
}

TEST(FailureInjection, GemmRejectsNegativeDimensions) {
  float dummy = 0.0f;
  EXPECT_THROW(ops::gemm(false, false, -1, 1, 1, 1.0f, &dummy, 1, &dummy, 1, 0.0f, &dummy, 1),
               std::invalid_argument);
}

TEST(FailureInjection, GemmHandlesZeroSizedProblem) {
  float dummy = 0.0f;
  // m == 0: valid no-op.
  ops::gemm(false, false, 0, 1, 1, 1.0f, &dummy, 1, &dummy, 1, 0.0f, &dummy, 1);
  // k == 0 with beta=0 zeroes C.
  float c = 7.0f;
  ops::gemm(false, false, 1, 1, 0, 1.0f, &dummy, 1, &dummy, 1, 0.0f, &c, 1);
  EXPECT_EQ(c, 0.0f);
}

TEST(FailureInjection, DistributedSystemRejectsEmptyDataset) {
  util::Rng rng(6);
  core::MEANet net = meanet::testing::tiny_meanet_b(rng, 2);
  const data::ClassDict dict(4, {0, 1});
  sim::EdgeNode edge(net, dict, core::PolicyConfig{}, sim::EdgeNodeCosts{});
  sim::DistributedSystem system(std::move(edge), nullptr);
  data::Dataset empty;
  empty.num_classes = 4;
  empty.images = Tensor(Shape{0, 2, 8, 8});
  EXPECT_THROW(system.run(empty), std::invalid_argument);
}

TEST(FailureInjection, SyntheticSpecValidation) {
  data::SyntheticSpec spec;
  spec.num_classes = 3;  // odd: cannot pair confusers
  EXPECT_THROW(data::make_synthetic(spec, 1), std::invalid_argument);
  spec.num_classes = 4;
  spec.min_difficulty = 0.9f;
  spec.max_difficulty = 0.1f;  // inverted range
  EXPECT_THROW(data::make_synthetic(spec, 1), std::invalid_argument);
  spec.min_difficulty = 0.1f;
  spec.max_difficulty = 1.5f;  // above 1
  EXPECT_THROW(data::make_synthetic(spec, 1), std::invalid_argument);
}

TEST(FailureInjection, DeviceModelRejectsNonPositiveThroughput) {
  sim::DeviceModel device;
  device.macs_per_second = 0.0;
  EXPECT_THROW(device.compute_time_s(100), std::logic_error);
}

TEST(FailureInjection, SequentialBackwardWithoutForwardThrows) {
  util::Rng rng(7);
  nn::Sequential net("n");
  net.emplace<nn::Conv2d>(2, 4, 3, 1, 1, false, rng, "c");
  EXPECT_THROW(net.backward(Tensor(Shape{1, 4, 6, 6})), std::logic_error);
}

TEST(FailureInjection, BuilderRejectsEmptyMobileNet) {
  util::Rng rng(8);
  core::MobileNetConfig config;
  config.blocks.clear();
  EXPECT_THROW(core::build_mobilenet_meanet_b(config, 2, core::FusionMode::kSum, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace meanet
