// End-to-end test of the full paper pipeline: Alg. 1 distributed
// training followed by Alg. 2 distributed inference, checking the
// paper's qualitative claims on the synthetic workload.
#include <gtest/gtest.h>

#include "core/builders.h"
#include "core/trainer.h"
#include "metrics/classification_metrics.h"
#include "sim/system.h"
#include "tiny_models.h"

namespace meanet {
namespace {

using meanet::testing::tiny_data_spec;
using meanet::testing::tiny_resnet_config;

class PipelineTest : public ::testing::TestWithParam<core::FusionMode> {};

TEST_P(PipelineTest, Algorithm1ThenAlgorithm2EndToEnd) {
  const core::FusionMode fusion = GetParam();
  util::Rng rng(31);
  data::SyntheticSpec spec = tiny_data_spec();
  spec.train_per_class = 30;
  const data::SyntheticDataset ds = data::make_synthetic(spec, 41);

  // ---- Alg. 1 ----
  core::MEANet net = core::build_resnet_meanet_b(tiny_resnet_config(), 2, fusion, rng);
  core::DistributedTrainer trainer(net);
  core::TrainOptions options;
  options.epochs = 6;
  options.batch_size = 16;
  util::Rng train_rng(32);
  // Step 1: train main (at the "cloud").
  trainer.train_main(ds.train, options, train_rng);
  // Steps 2-4: hard classes from validation statistics.
  const data::ClassDict dict = trainer.select_hard_classes_from_validation(ds.test, 2);
  // Steps 5-8: blockwise edge training on hard data.
  trainer.train_edge_blocks(ds.train, dict, options, train_rng);

  // ---- Edge-only inference (no cloud) ----
  sim::EdgeNodeCosts costs;
  costs.upload_bytes_per_instance = 2 * 8 * 8;
  costs.main_macs = 1'000'000;
  costs.extension_macs = 400'000;
  sim::EdgeNode edge(net, dict, core::PolicyConfig{}, costs);
  sim::DistributedSystem edge_system(std::move(edge), nullptr);
  const sim::SystemReport edge_report = edge_system.run(ds.test);
  EXPECT_GT(edge_report.accuracy, 0.4);

  // ---- Full distributed inference ----
  nn::Sequential cloud_model = core::build_cloud_classifier(2, 4, rng);
  core::TrainOptions cloud_options;
  cloud_options.epochs = 10;
  cloud_options.batch_size = 16;
  core::train_classifier(cloud_model, ds.train, cloud_options, train_rng);
  sim::CloudNode cloud(std::move(cloud_model));

  core::PolicyConfig policy;
  policy.cloud_available = true;
  policy.entropy_threshold = 0.4;
  sim::EdgeNode edge2(net, dict, policy, costs);
  sim::DistributedSystem system(std::move(edge2), &cloud);
  const sim::SystemReport report = system.run(ds.test);

  // Paper claims: distributed inference >= edge-only accuracy while
  // sending only part of the data. The test set has 40 samples, so one
  // sample is 0.025 of accuracy — the tolerance must cover at least
  // two quanta or the claim degenerates into an exact-match assertion
  // on which side of a decision boundary a borderline sample falls,
  // which flips with the float kernel's accumulation order.
  EXPECT_GE(report.accuracy + 0.05, edge_report.accuracy);
  EXPECT_GT(report.cloud_fraction, 0.0);
  EXPECT_LT(report.cloud_fraction, 1.0);
  // Energy: edge-cloud communicates, edge-only does not.
  EXPECT_GT(report.communication_energy_j, 0.0);
}

INSTANTIATE_TEST_SUITE_P(BothFusionModes, PipelineTest,
                         ::testing::Values(core::FusionMode::kSum, core::FusionMode::kConcat));

TEST(Integration, HardClassSelectionTracksDifficulty) {
  // The generator's per-class difficulty should be *discovered* by the
  // precision ranking: the selected hard classes should have higher
  // ground-truth difficulty on average than the easy ones.
  util::Rng rng(33);
  data::SyntheticSpec spec = tiny_data_spec();
  spec.num_classes = 6;
  spec.train_per_class = 25;
  spec.min_difficulty = 0.05f;
  spec.max_difficulty = 0.8f;
  const data::SyntheticDataset ds = data::make_synthetic(spec, 43);

  core::ResNetConfig config = tiny_resnet_config(6);
  core::MEANet net = core::build_resnet_meanet_b(config, 3, core::FusionMode::kSum, rng);
  core::DistributedTrainer trainer(net);
  core::TrainOptions options;
  options.epochs = 8;
  options.batch_size = 16;
  util::Rng train_rng(34);
  trainer.train_main(ds.train, options, train_rng);
  const data::ClassDict dict = trainer.select_hard_classes_from_validation(ds.test, 3);

  double hard_difficulty = 0.0, easy_difficulty = 0.0;
  for (int c : dict.hard_classes()) hard_difficulty += ds.difficulty[static_cast<std::size_t>(c)];
  for (int c : dict.easy_classes()) easy_difficulty += ds.difficulty[static_cast<std::size_t>(c)];
  hard_difficulty /= dict.num_hard();
  easy_difficulty /= dict.num_easy();
  EXPECT_GT(hard_difficulty, easy_difficulty);
}

TEST(Integration, ErrorTypeIVDominatesAfterMainTraining) {
  // Fig. 5's premise: with half the classes hard, hard-as-hard errors
  // are the biggest error bucket (the extension block's opportunity).
  util::Rng rng(35);
  data::SyntheticSpec spec = tiny_data_spec();
  spec.train_per_class = 30;
  const data::SyntheticDataset ds = data::make_synthetic(spec, 44);
  core::MEANet net = core::build_resnet_meanet_b(tiny_resnet_config(), 2,
                                                 core::FusionMode::kSum, rng);
  core::DistributedTrainer trainer(net);
  core::TrainOptions options;
  options.epochs = 8;
  options.batch_size = 16;
  util::Rng train_rng(36);
  trainer.train_main(ds.train, options, train_rng);
  const data::ClassDict dict = trainer.select_hard_classes_from_validation(ds.test, 2);

  const core::MainProfile profile = core::profile_main(net, ds.test);
  std::vector<bool> is_hard(4, false);
  for (int c : dict.hard_classes()) is_hard[static_cast<std::size_t>(c)] = true;
  const metrics::ErrorTypeBreakdown breakdown =
      metrics::error_types(profile.predictions, ds.test.labels, is_hard);
  ASSERT_GT(breakdown.total_errors(), 0);
  // Hard-class confusions (II + IV) should carry most of the error mass
  // since hard classes are the confusable ones.
  EXPECT_GT(breakdown.hard_as_hard + breakdown.hard_as_easy,
            breakdown.easy_as_easy);
}

TEST(Integration, DeterministicEndToEnd) {
  // Identical seeds must give identical trained parameters and reports.
  auto run_once = [] {
    util::Rng rng(37);
    const data::SyntheticDataset ds = data::make_synthetic(tiny_data_spec(), 45);
    core::MEANet net = core::build_resnet_meanet_b(tiny_resnet_config(), 2,
                                                   core::FusionMode::kSum, rng);
    core::DistributedTrainer trainer(net);
    core::TrainOptions options;
    options.epochs = 3;
    options.batch_size = 16;
    util::Rng train_rng(38);
    trainer.train_main(ds.train, options, train_rng);
    const core::MainProfile profile = core::profile_main(net, ds.test);
    return profile.accuracy;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace meanet
