// Bounded-memory metrics: the SampleReservoir behind MetricsCollector
// keeps a uniform, deterministic sample of an unbounded latency stream
// in O(capacity) memory — the fix for the collector growing a vector
// per completed instance for the life of a serving process — and the
// snapshot percentiles stay close to the exact ones computed over the
// full stream. Run this binary under TSAN to check the concurrent
// recording paths mechanically.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/inference_policy.h"
#include "runtime/metrics.h"

namespace meanet::runtime {
namespace {

TEST(SampleReservoir, KeepsTheFirstCapacityValuesVerbatim) {
  SampleReservoir reservoir(8, /*seed=*/1);
  for (int i = 0; i < 8; ++i) reservoir.add(i);
  EXPECT_EQ(reservoir.count(), 8);
  ASSERT_EQ(reservoir.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(reservoir.samples()[static_cast<std::size_t>(i)], i);
}

TEST(SampleReservoir, StaysBoundedAfterAMillionAdds) {
  SampleReservoir reservoir;  // default capacity
  constexpr std::int64_t kStream = 1'000'000;
  for (std::int64_t i = 0; i < kStream; ++i) {
    reservoir.add(static_cast<double>(i) / kStream);
  }
  EXPECT_EQ(reservoir.count(), kStream);
  EXPECT_LE(reservoir.size(), reservoir.capacity());
  EXPECT_EQ(reservoir.size(), SampleReservoir::kDefaultCapacity);
  // The held set is a uniform sample of [0, 1): its percentiles track
  // the stream's. Sampling error at n = 4096 is well under this margin.
  std::vector<double> held = reservoir.samples();
  EXPECT_NEAR(percentile(held, 0.50), 0.50, 0.05);
  EXPECT_NEAR(percentile(held, 0.95), 0.95, 0.05);
  EXPECT_NEAR(percentile(held, 0.99), 0.99, 0.05);
}

TEST(SampleReservoir, SameSeedSameStreamIsDeterministic) {
  SampleReservoir a(64, /*seed=*/5);
  SampleReservoir b(64, /*seed=*/5);
  for (int i = 0; i < 10'000; ++i) {
    a.add(i * 0.001);
    b.add(i * 0.001);
  }
  EXPECT_EQ(a.samples(), b.samples());
}

TEST(SortedPercentile, MatchesTheCopyingHelperOnSortedInput) {
  std::vector<double> values = {9, 1, 5, 3, 7, 2, 8, 4, 6, 0};
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (const double p : {0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    EXPECT_EQ(sorted_percentile(sorted, p), percentile(values, p)) << "p=" << p;
  }
  EXPECT_EQ(sorted_percentile({}, 0.5), 0.0);
}

TEST(MetricsCollector, AMillionCompletionsStayBoundedWithExactCounts) {
  MetricsCollector collector;
  constexpr std::int64_t kStream = 1'000'000;
  collector.record_submitted(kStream);
  for (std::int64_t i = 0; i < kStream; ++i) {
    const double latency = static_cast<double>(i) / kStream;  // uniform [0, 1)
    collector.record_completion(core::Route::kMainExit, latency);
    collector.record_queue_wait(/*priority=*/2, latency * 0.5);
  }
  const SessionMetrics metrics = collector.snapshot();
  // Counts are exact — the reservoir bounds the SAMPLES, not the tally.
  EXPECT_EQ(metrics.completed_instances, kStream);
  EXPECT_EQ(metrics.route_count(core::Route::kMainExit), kStream);
  EXPECT_EQ(metrics.priority_wait(2).requests, kStream);
  // Percentiles are estimated from the bounded uniform sample.
  EXPECT_NEAR(metrics.route(core::Route::kMainExit).p50_s, 0.50, 0.05);
  EXPECT_NEAR(metrics.route(core::Route::kMainExit).p95_s, 0.95, 0.05);
  EXPECT_NEAR(metrics.route(core::Route::kMainExit).p99_s, 0.99, 0.05);
  EXPECT_NEAR(metrics.priority_wait(2).p50_s, 0.25, 0.025);
  EXPECT_NEAR(metrics.priority_wait(2).p95_s, 0.475, 0.025);
}

TEST(MetricsCollector, ConcurrentRecordingAndSnapshotsAreSafe) {
  MetricsCollector collector;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20'000;
  std::vector<std::thread> recorders;
  for (int t = 0; t < kThreads; ++t) {
    recorders.emplace_back([&collector, t] {
      for (int i = 0; i < kPerThread; ++i) {
        collector.record_completion(core::Route::kExtensionExit, (t * kPerThread + i) * 1e-6);
        collector.record_queue_wait(t % 2, i * 1e-6);
      }
    });
  }
  // Snapshot while the recorders hammer the collector — under TSAN this
  // verifies the reservoir mutations stay behind the collector lock.
  for (int i = 0; i < 50; ++i) (void)collector.snapshot();
  for (std::thread& recorder : recorders) recorder.join();
  const SessionMetrics metrics = collector.snapshot();
  EXPECT_EQ(metrics.route_count(core::Route::kExtensionExit),
            static_cast<std::int64_t>(kThreads) * kPerThread);
  EXPECT_EQ(metrics.priority_wait(0).requests + metrics.priority_wait(1).requests,
            static_cast<std::int64_t>(kThreads) * kPerThread);
  // Highest priority first — the snapshot ordering contract.
  ASSERT_EQ(metrics.queue_wait_by_priority.size(), 2u);
  EXPECT_EQ(metrics.queue_wait_by_priority[0].priority, 1);
  EXPECT_EQ(metrics.queue_wait_by_priority[1].priority, 0);
}

}  // namespace
}  // namespace meanet::runtime
