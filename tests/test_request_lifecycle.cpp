// Tests for the request lifecycle added on top of the async serving
// API: per-route deadlines (expiry -> edge-prediction parity with
// NullBackend, never worse), ResultHandle::cancel() racing cleanly with
// the workers and the dispatcher, completion callbacks firing exactly
// once and never on a serving worker thread, and the WiFi-timed
// offload transport (seeded, reproducible jitter).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "runtime/backend_decorators.h"
#include "runtime/session.h"
#include "runtime/transport.h"

#include "core/builders.h"
#include "core/trainer.h"
#include "sim/cloud_node.h"
#include "sim/event_loop.h"
#include "tiny_models.h"

namespace meanet::runtime {
namespace {

using meanet::testing::tiny_data_spec;
using meanet::testing::tiny_meanet_b;

/// A fully trained tiny system shared by all tests in this file (built
/// once: training dominates the suite's runtime otherwise).
struct Fixture {
  data::SyntheticDataset ds;
  core::MEANet net;
  data::ClassDict dict;
  sim::CloudNode cloud;

  static Fixture& instance() {
    static Fixture fixture = make();
    return fixture;
  }

  static Fixture make() {
    util::Rng rng(1);
    data::SyntheticDataset ds = data::make_synthetic(tiny_data_spec(), 21);
    core::MEANet net = tiny_meanet_b(rng, 2);
    core::DistributedTrainer trainer(net);
    core::TrainOptions options;
    options.epochs = 5;
    options.batch_size = 16;
    util::Rng train_rng(2);
    trainer.train_main(ds.train, options, train_rng);
    data::ClassDict dict = trainer.select_hard_classes_from_validation(ds.test, 2);
    trainer.train_edge_blocks(ds.train, dict, options, train_rng);

    nn::Sequential cloud_model = core::build_cloud_classifier(2, 4, rng);
    core::TrainOptions cloud_options;
    cloud_options.epochs = 6;
    cloud_options.batch_size = 16;
    core::train_classifier(cloud_model, ds.train, cloud_options, train_rng);

    return Fixture{std::move(ds), std::move(net), std::move(dict),
                   sim::CloudNode(std::move(cloud_model))};
  }

  /// Offloading config: low entropy threshold so the cloud route fires.
  EngineConfig config() {
    EngineConfig cfg;
    cfg.net = &net;
    cfg.dict = &dict;
    cfg.policy_config.cloud_available = true;
    cfg.policy_config.entropy_threshold = 0.3;
    cfg.batch_size = 16;
    return cfg;
  }
};

/// Counts classify() calls and instances before delegating.
class CountingBackend : public BackendDecorator {
 public:
  explicit CountingBackend(std::shared_ptr<OffloadBackend> inner)
      : BackendDecorator(std::move(inner)) {}

  std::vector<int> classify(const OffloadPayload& payload) override {
    ++calls_;
    return inner().classify(payload);
  }
  std::string describe() const override { return "counting+" + inner().describe(); }

  int calls() const { return calls_.load(); }

 private:
  std::atomic<int> calls_{0};
};

/// A backend whose answer is gated on an external release(); counts its
/// calls so cancelled-while-queued requests can prove they never
/// reached it.
class GatedBackend : public OffloadBackend {
 public:
  std::vector<int> classify(const OffloadPayload& payload) override {
    ++calls_;
    std::unique_lock<std::mutex> lock(mutex_);
    gate_.wait(lock, [&] { return released_; });
    return std::vector<int>(static_cast<std::size_t>(payload.images.shape().batch()), 0);
  }
  bool needs_images() const override { return true; }
  std::int64_t payload_bytes(const Shape&, const Shape&) const override { return 0; }
  std::string describe() const override { return "gated"; }

  void release() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      released_ = true;
    }
    gate_.notify_all();
  }

  int calls() const { return calls_.load(); }

 private:
  std::atomic<int> calls_{0};
  std::mutex mutex_;
  std::condition_variable gate_;
  bool released_ = false;
};

/// Routing policy decorator that records the threads route() runs on —
/// i.e. the session's serving workers.
class ThreadRecordingPolicy : public core::RoutingPolicy {
 public:
  explicit ThreadRecordingPolicy(std::shared_ptr<const core::RoutingPolicy> inner)
      : inner_(std::move(inner)) {}

  core::Route route(const core::RouteSignals& signals) const override {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      threads_.insert(std::this_thread::get_id());
    }
    return inner_->route(signals);
  }
  unsigned needed_signals() const override { return inner_->needed_signals(); }
  std::string describe() const override { return "thread-recording+" + inner_->describe(); }

  std::set<std::thread::id> threads() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return threads_;
  }

 private:
  std::shared_ptr<const core::RoutingPolicy> inner_;
  mutable std::mutex mutex_;
  mutable std::set<std::thread::id> threads_;
};

// ---------------------------------------------------------------------
// Deadlines
// ---------------------------------------------------------------------

TEST(Deadlines, ExpiryFallsBackToEdgeExactlyLikeNullBackend) {
  Fixture& f = Fixture::instance();

  EngineConfig null_cfg = f.config();  // offload_mode defaults to kNone
  InferenceSession null_session(null_cfg);
  const auto baseline = null_session.run(f.ds.test);

  // A 100ms link behind a 2ms *deadline* — the offload timeout stays
  // infinite, so every fallback below is the deadline's doing, not the
  // timeout's.
  EngineConfig cfg = f.config();
  cfg.backend = std::make_shared<LatencyInjectingBackend>(
      std::make_shared<RawImageBackend>(&f.cloud), 0.100);
  cfg.route_deadline_s[static_cast<std::size_t>(core::Route::kCloud)] = 0.002;
  InferenceSession session(cfg);
  const auto expired = session.run(f.ds.test);

  ASSERT_EQ(expired.size(), baseline.size());
  int cloud_routed = 0;
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_EQ(expired[i].route, baseline[i].route) << i;
    EXPECT_EQ(expired[i].prediction, baseline[i].prediction) << i;
    EXPECT_FALSE(expired[i].offloaded);
    if (expired[i].route == core::Route::kCloud) {
      ++cloud_routed;
      EXPECT_EQ(expired[i].prediction, expired[i].edge_prediction) << i;
      EXPECT_TRUE(expired[i].deadline_expired) << i;
    }
  }
  ASSERT_GT(cloud_routed, 0);

  const SessionMetrics m = session.metrics();
  EXPECT_EQ(m.deadline_expirations, cloud_routed);
  EXPECT_EQ(m.offload_timeouts, 0);  // distinct accounting
  EXPECT_EQ(m.completed_instances, f.ds.test.size());
}

TEST(Deadlines, ExpiredBeforeDispatchNeverTouchesTheBackend) {
  Fixture& f = Fixture::instance();
  auto counting = std::make_shared<CountingBackend>(std::make_shared<RawImageBackend>(&f.cloud));
  EngineConfig cfg = f.config();
  cfg.policy_config.entropy_threshold = 0.0;  // every instance -> cloud
  cfg.backend = counting;
  // Already expired when the worker routes it: the payload is never
  // built, the dispatcher never sees it.
  cfg.route_deadline_s[static_cast<std::size_t>(core::Route::kCloud)] = 0.0;
  InferenceSession session(cfg);
  const auto results = session.run(f.ds.test);

  for (const InferenceResult& r : results) {
    ASSERT_EQ(r.route, core::Route::kCloud);
    EXPECT_FALSE(r.offloaded);
    EXPECT_TRUE(r.deadline_expired);
    EXPECT_EQ(r.prediction, r.edge_prediction);
  }
  EXPECT_EQ(counting->calls(), 0);
  const SessionMetrics m = session.metrics();
  EXPECT_EQ(m.offload_dispatches, 0);
  EXPECT_EQ(m.deadline_expirations, f.ds.test.size());
}

TEST(Deadlines, PerSubmitOverrideBeatsTheSessionDefault) {
  Fixture& f = Fixture::instance();
  auto counting = std::make_shared<CountingBackend>(std::make_shared<RawImageBackend>(&f.cloud));
  EngineConfig cfg = f.config();
  cfg.policy_config.entropy_threshold = 0.0;
  cfg.backend = counting;  // session default deadline: unbounded
  InferenceSession session(cfg);

  SubmitOptions expired_now;
  expired_now.deadline_s = 0.0;
  ResultHandle bounded = session.submit(f.ds.test.instance(0), expired_now);
  ResultHandle unbounded = session.submit(f.ds.test.instance(1));
  const auto b = bounded.wait();
  const auto u = unbounded.wait();
  session.drain();

  ASSERT_EQ(b.size(), 1u);
  EXPECT_TRUE(b.front().deadline_expired);
  EXPECT_FALSE(b.front().offloaded);
  ASSERT_EQ(u.size(), 1u);
  EXPECT_FALSE(u.front().deadline_expired);
  EXPECT_TRUE(u.front().offloaded);
  EXPECT_EQ(counting->calls(), 1);  // only the unbounded frame uploaded
}

// ---------------------------------------------------------------------
// Cancellation
// ---------------------------------------------------------------------

TEST(Cancellation, CancelledWhileQueuedNeverTouchesEngineOrBackend) {
  Fixture& f = Fixture::instance();
  auto gate = std::make_shared<GatedBackend>();
  EngineConfig cfg = f.config();
  cfg.policy_config.entropy_threshold = 0.0;  // every instance -> cloud
  cfg.backend = gate;
  cfg.batch_size = 1;  // no coalescing: the victims stay queued
  InferenceSession session(cfg);

  // The single worker picks up the first frame and blocks inside the
  // gated offload; everything submitted after it sits in the queue.
  ResultHandle in_flight = session.submit(f.ds.test.instance(0));
  std::vector<ResultHandle> victims;
  for (int i = 1; i <= 5; ++i) victims.push_back(session.submit(f.ds.test.instance(i)));
  for (ResultHandle& v : victims) EXPECT_TRUE(v.cancel());
  gate->release();

  const auto first = in_flight.wait();
  ASSERT_EQ(first.size(), 1u);
  EXPECT_TRUE(first.front().offloaded);
  for (ResultHandle& v : victims) {
    EXPECT_TRUE(v.ready());
    EXPECT_TRUE(v.cancelled());
    EXPECT_TRUE(v.wait().empty());
    ASSERT_TRUE(v.try_get().has_value());
    EXPECT_TRUE(v.try_get()->empty());
    EXPECT_FALSE(v.cancel());  // already cancelled: no-op
  }
  // drain() retires the round; cancelled requests contribute nothing.
  EXPECT_EQ(session.drain().size(), 1u);

  EXPECT_EQ(gate->calls(), 1);  // only the in-flight frame's payload
  const SessionMetrics m = session.metrics();
  EXPECT_EQ(m.submitted_instances, 6);
  EXPECT_EQ(m.completed_instances, 1);
  EXPECT_EQ(m.cancelled_instances, 5);
  EXPECT_EQ(m.offload_dispatches, 1);
}

TEST(Cancellation, CancelAfterCompleteIsANoOp) {
  Fixture& f = Fixture::instance();
  EngineConfig cfg = f.config();
  InferenceSession session(cfg);
  ResultHandle handle = session.submit(f.ds.test.instance(0));
  const auto results = handle.wait();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(handle.cancel());
  EXPECT_FALSE(handle.cancelled());
  EXPECT_EQ(handle.wait().size(), 1u);  // results untouched
  EXPECT_EQ(session.drain().size(), 1u);
  EXPECT_EQ(session.metrics().cancelled_instances, 0);
}

TEST(Cancellation, RacesCleanlyWithFourWorkersOverSeededIterations) {
  Fixture& f = Fixture::instance();
  util::Rng rng(0xCA7);
  constexpr int kIterations = 12;
  constexpr int kRequests = 24;
  for (int iter = 0; iter < kIterations; ++iter) {
    EngineConfig cfg = f.config();
    cfg.offload_mode = OffloadMode::kRawImage;
    cfg.cloud = &f.cloud;
    cfg.worker_threads = 4;  // all sharing the one net
    cfg.batch_size = 2;
    std::vector<std::shared_ptr<std::atomic<int>>> fired;
    std::vector<ResultHandle> handles;
    std::int64_t cancel_wins = 0;
    {
      InferenceSession session(cfg);
      for (int i = 0; i < kRequests; ++i) {
        auto counter = std::make_shared<std::atomic<int>>(0);
        fired.push_back(counter);
        SubmitOptions opts;
        opts.on_complete = [counter](const ResultHandle&) { ++*counter; };
        handles.push_back(
            session.submit(f.ds.test.instance(i % f.ds.test.size()), std::move(opts)));
      }
      // Cancel roughly half of them while the workers are mid-flight.
      for (int i = 0; i < kRequests; ++i) {
        if (rng.bernoulli(0.5) && handles[static_cast<std::size_t>(i)].cancel()) ++cancel_wins;
      }
      // Every handle is either cancelled or carries exactly one result —
      // never both, never neither.
      std::int64_t completed = 0;
      for (ResultHandle& h : handles) {
        const auto results = h.wait();
        if (h.cancelled()) {
          EXPECT_TRUE(results.empty());
        } else {
          ASSERT_EQ(results.size(), 1u);
          ++completed;
        }
      }
      const SessionMetrics m = session.metrics();
      EXPECT_EQ(m.submitted_instances, kRequests);
      EXPECT_EQ(m.cancelled_instances, cancel_wins);
      EXPECT_EQ(m.completed_instances, completed);
      EXPECT_EQ(m.completed_instances + m.cancelled_instances + m.failed_instances, kRequests);
      session.drain();
    }
    // The session is gone: its callback thread flushed every callback —
    // exactly one firing per request, cancelled or completed.
    for (const auto& counter : fired) EXPECT_EQ(counter->load(), 1);
  }
}

// ---------------------------------------------------------------------
// Completion callbacks
// ---------------------------------------------------------------------

TEST(CompletionCallbacks, FireExactlyOnceWithAReadyHandleOffTheWorkerThreads) {
  Fixture& f = Fixture::instance();
  auto recording = std::make_shared<ThreadRecordingPolicy>(
      std::make_shared<core::EntropyThresholdPolicy>(f.dict, [&] {
        core::PolicyConfig pc;
        pc.cloud_available = true;
        pc.entropy_threshold = 0.3;
        return pc;
      }()));
  std::mutex seen_mutex;
  std::set<std::thread::id> callback_threads;
  std::atomic<int> fired{0};
  std::atomic<int> ready_at_callback{0};
  constexpr int kRequests = 16;
  {
    EngineConfig cfg = f.config();
    cfg.policy = recording;
    cfg.offload_mode = OffloadMode::kRawImage;
    cfg.cloud = &f.cloud;
    cfg.worker_threads = 2;  // both sharing the one net
    cfg.batch_size = 2;
    InferenceSession session(cfg);
    std::vector<ResultHandle> handles;
    for (int i = 0; i < kRequests; ++i) {
      SubmitOptions opts;
      opts.on_complete = [&](const ResultHandle& h) {
        {
          std::lock_guard<std::mutex> lock(seen_mutex);
          callback_threads.insert(std::this_thread::get_id());
        }
        if (h.ready()) ++ready_at_callback;
        ++fired;
      };
      handles.push_back(session.submit(f.ds.test.instance(i), std::move(opts)));
    }
    // Cancel one too: its callback must also fire (once, same thread).
    handles.front().cancel();
    for (ResultHandle& h : handles) h.wait();
    session.drain();
  }  // destruction flushes the callback queue

  EXPECT_EQ(fired.load(), kRequests);
  EXPECT_EQ(ready_at_callback.load(), kRequests);
  ASSERT_EQ(callback_threads.size(), 1u) << "callbacks ran on more than one thread";
  const std::thread::id callback_thread = *callback_threads.begin();
  EXPECT_NE(callback_thread, std::this_thread::get_id()) << "callback ran on the caller";
  for (const std::thread::id worker : recording->threads()) {
    EXPECT_NE(callback_thread, worker) << "callback ran on a serving worker";
  }
}

// ---------------------------------------------------------------------
// WiFi-timed transport
// ---------------------------------------------------------------------

TEST(WifiTransport, UploadTimeScalesWithPayloadAndGatesTheAnswer) {
  Fixture& f = Fixture::instance();
  // A frame is 2x8x8 -> 128 payload bytes for the raw-image backend.
  // At 0.01 Mb/s that is a 102.4ms upload.
  TransportConfig transport;
  transport.wifi.throughput_mbps = 0.01;
  const double upload_s = transport.wifi.upload_time_s(128);
  ASSERT_NEAR(upload_s, 0.1024, 1e-9);

  auto clock = std::make_shared<sim::VirtualClock>();
  EngineConfig cfg = f.config();
  cfg.policy_config.entropy_threshold = 0.0;  // the frame -> cloud
  cfg.offload_mode = OffloadMode::kRawImage;
  cfg.cloud = &f.cloud;
  cfg.transport = transport;
  cfg.clock = clock;
  InferenceSession session(cfg);
  sim::ActorGuard driver(*clock);

  // Elapsed is measured on the session clock: the ~100ms upload is a
  // scheduled event, not wall time.
  const auto started = clock->now();
  const auto results = session.submit(f.ds.test.instance(0)).wait();
  const double waited_s = sim::Clock::seconds_between(started, clock->now());
  session.drain();

  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results.front().offloaded);  // the answer still arrived
  EXPECT_GE(waited_s, upload_s);           // ...but only after the upload
  const SessionMetrics m = session.metrics();
  EXPECT_GE(m.route(core::Route::kCloud).p50_s, upload_s);
}

TEST(WifiTransport, JitterIsSeededAndReproducible) {
  TransportConfig config;
  config.wifi.throughput_mbps = 10.0;
  config.base_latency_s = 0.001;
  config.jitter_s = 0.050;
  config.seed = 99;
  SimulatedLink a(config), b(config);
  for (int i = 0; i < 32; ++i) {
    const double da = a.delay_s(1024);
    EXPECT_DOUBLE_EQ(da, b.delay_s(1024));
    EXPECT_GE(da, config.base_latency_s + config.wifi.upload_time_s(1024));
    EXPECT_LE(da, config.base_latency_s + config.wifi.upload_time_s(1024) + config.jitter_s);
  }
  config.seed = 100;
  SimulatedLink c(config);
  bool diverged = false;
  for (int i = 0; i < 32 && !diverged; ++i) diverged = a.delay_s(1024) != c.delay_s(1024);
  EXPECT_TRUE(diverged);

  TransportConfig bad = config;
  bad.jitter_s = -0.1;
  EXPECT_THROW(SimulatedLink{bad}, std::invalid_argument);
}

TEST(WifiTransport, CongestedCellScalesUploadTime) {
  sim::WifiModel wifi;  // the paper's 18.88 Mb/s
  const sim::WifiModel crowded = wifi.congested(4.0);
  EXPECT_DOUBLE_EQ(crowded.upload_time_s(1 << 20), 4.0 * wifi.upload_time_s(1 << 20));
  EXPECT_THROW(wifi.congested(0.5), std::invalid_argument);
}

// ---------------------------------------------------------------------
// Deadline-aware queue admission
// ---------------------------------------------------------------------

/// Holds each routing call for `hold_s` on the given clock, pinning the
/// serving worker so the submit queue deterministically backs up behind
/// it. Under a VirtualClock the hold is a scheduled event, so the
/// backup costs no wall time.
class SlowPolicy : public core::RoutingPolicy {
 public:
  SlowPolicy(std::shared_ptr<const core::RoutingPolicy> inner, double hold_s,
             std::shared_ptr<sim::Clock> clock = nullptr)
      : inner_(std::move(inner)),
        hold_s_(hold_s),
        clock_(sim::resolve_clock(std::move(clock))) {}

  core::Route route(const core::RouteSignals& signals) const override {
    clock_->sleep_for(hold_s_);
    return inner_->route(signals);
  }
  unsigned needed_signals() const override { return inner_->needed_signals(); }
  std::string describe() const override { return "slow+" + inner_->describe(); }

 private:
  std::shared_ptr<const core::RoutingPolicy> inner_;
  double hold_s_;
  std::shared_ptr<sim::Clock> clock_;
};

TEST(Admission, RejectsWhenQueueWaitAloneExceedsTheDeadline) {
  Fixture& f = Fixture::instance();
  auto clock = std::make_shared<sim::VirtualClock>();
  EngineConfig cfg;
  cfg.net = &f.net;
  cfg.dict = &f.dict;
  cfg.clock = clock;
  // The worker holds the first request for 400ms of virtual time, so
  // the next submits pile up behind it deterministically.
  cfg.policy = std::make_shared<SlowPolicy>(
      std::make_shared<core::EntropyThresholdPolicy>(f.dict, core::PolicyConfig{}), 0.400, clock);
  cfg.worker_threads = 1;
  cfg.batch_size = 1;
  cfg.set_deadline_s(0.050);
  // Seeded estimate: any instance queued ahead predicts a 10s wait,
  // far past the 50ms deadline.
  cfg.admission_control = true;
  cfg.admission_service_estimate_s = 10.0;
  InferenceSession session(cfg);
  sim::ActorGuard driver(*clock);

  // First request: picked up by the worker (queue wait 0 — admitted).
  ResultHandle first = session.submit(f.ds.test.instance(0));
  // Virtual sleep in place of the old 100ms wall sleep: it can only
  // complete once every other actor is parked — i.e. once the worker
  // has popped the frame and is holding inside the slow routing call.
  clock->sleep_for(0.100);
  // Second request: nothing queued ahead of it — still admitted.
  ResultHandle second = session.submit(f.ds.test.instance(1));
  // Third request: one instance queued ahead -> estimated wait 10s
  // against a 50ms deadline. Rejected at submit, before any queueing.
  EXPECT_THROW(session.submit(f.ds.test.instance(2)), AdmissionRejected);

  EXPECT_EQ(first.wait().size(), 1u);
  EXPECT_EQ(second.wait().size(), 1u);
  const SessionMetrics m = session.metrics();
  EXPECT_EQ(m.admission_rejections, 1);
  EXPECT_EQ(m.submitted_instances, 2);  // the rejected one never counted
  session.drain();
}

TEST(Admission, BulkRunIsNeverGated) {
  // run() is the bulk-eval API: rejecting one of its chunks midway
  // would strand the ones already enqueued, so admission only gates
  // streaming submit() traffic.
  Fixture& f = Fixture::instance();
  EngineConfig cfg;
  cfg.net = &f.net;
  cfg.dict = &f.dict;
  cfg.worker_threads = 1;
  cfg.batch_size = 4;
  cfg.set_deadline_s(0.000001);  // hopeless for everything
  cfg.admission_control = true;
  cfg.admission_service_estimate_s = 10.0;
  InferenceSession session(cfg);
  const auto results = session.run(f.ds.test);
  EXPECT_EQ(static_cast<int>(results.size()), f.ds.test.size());
  EXPECT_EQ(session.metrics().admission_rejections, 0);
}

TEST(Admission, UnboundedDeadlinesNeverReject) {
  Fixture& f = Fixture::instance();
  auto clock = std::make_shared<sim::VirtualClock>();
  EngineConfig cfg;
  cfg.net = &f.net;
  cfg.dict = &f.dict;
  cfg.clock = clock;
  cfg.policy = std::make_shared<SlowPolicy>(
      std::make_shared<core::EntropyThresholdPolicy>(f.dict, core::PolicyConfig{}), 0.100, clock);
  cfg.worker_threads = 1;
  cfg.batch_size = 1;
  cfg.admission_control = true;
  cfg.admission_service_estimate_s = 10.0;  // estimate alone must not matter
  InferenceSession session(cfg);
  sim::ActorGuard driver(*clock);
  std::vector<ResultHandle> handles;
  for (int i = 0; i < 4; ++i) handles.push_back(session.submit(f.ds.test.instance(i)));
  for (ResultHandle& h : handles) EXPECT_EQ(h.wait().size(), 1u);
  EXPECT_EQ(session.metrics().admission_rejections, 0);
  session.drain();
}

TEST(Admission, PerSubmitOverrideGatesAdmissionToo) {
  Fixture& f = Fixture::instance();
  auto clock = std::make_shared<sim::VirtualClock>();
  EngineConfig cfg;
  cfg.net = &f.net;
  cfg.dict = &f.dict;
  cfg.clock = clock;
  cfg.policy = std::make_shared<SlowPolicy>(
      std::make_shared<core::EntropyThresholdPolicy>(f.dict, core::PolicyConfig{}), 0.400, clock);
  cfg.worker_threads = 1;
  cfg.batch_size = 1;
  cfg.admission_control = true;
  cfg.admission_service_estimate_s = 10.0;
  InferenceSession session(cfg);  // session deadlines all unbounded
  sim::ActorGuard driver(*clock);

  ResultHandle first = session.submit(f.ds.test.instance(0));
  // See RejectsWhenQueueWaitAloneExceedsTheDeadline: the virtual sleep
  // completes only with the worker parked inside the slow routing call.
  clock->sleep_for(0.100);
  ResultHandle second = session.submit(f.ds.test.instance(1));  // queues behind the slow one
  SubmitOptions tight;
  tight.deadline_s = 0.050;  // this request's own bound does the gating
  EXPECT_THROW(session.submit(f.ds.test.instance(2), tight), AdmissionRejected);
  SubmitOptions loose;
  loose.deadline_s = 3600.0;  // a lenient override clears the same queue
  ResultHandle third = session.submit(f.ds.test.instance(2), loose);

  EXPECT_EQ(first.wait().size(), 1u);
  EXPECT_EQ(second.wait().size(), 1u);
  EXPECT_EQ(third.wait().size(), 1u);
  EXPECT_EQ(session.metrics().admission_rejections, 1);
  session.drain();
}

}  // namespace
}  // namespace meanet::runtime
