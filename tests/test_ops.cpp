#include "tensor/ops.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace meanet::ops {
namespace {

Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  const int m = a.shape().dim(0), k = a.shape().dim(1), n = b.shape().dim(1);
  Tensor c(Shape{m, n});
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) acc += a.at(i, p) * b.at(p, j);
      c.at(i, j) = acc;
    }
  }
  return c;
}

Tensor transpose2d(const Tensor& t) {
  const int r = t.shape().dim(0), c = t.shape().dim(1);
  Tensor out(Shape{c, r});
  for (int i = 0; i < r; ++i) {
    for (int j = 0; j < c; ++j) out.at(j, i) = t.at(i, j);
  }
  return out;
}

class GemmTransposeTest : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(GemmTransposeTest, MatchesNaiveReference) {
  const auto [ta, tb] = GetParam();
  util::Rng rng(11);
  const int m = 5, k = 7, n = 4;
  const Tensor a_logical = Tensor::normal(Shape{m, k}, rng);
  const Tensor b_logical = Tensor::normal(Shape{k, n}, rng);
  const Tensor a_stored = ta ? transpose2d(a_logical) : a_logical;
  const Tensor b_stored = tb ? transpose2d(b_logical) : b_logical;
  const Tensor expected = naive_matmul(a_logical, b_logical);
  const Tensor got = matmul(a_stored, b_stored, ta, tb);
  EXPECT_TRUE(allclose(expected, got, 1e-4f));
}

INSTANTIATE_TEST_SUITE_P(AllModes, GemmTransposeTest,
                         ::testing::Combine(::testing::Bool(), ::testing::Bool()));

TEST(Gemm, BetaAccumulates) {
  const int m = 2, n = 2, k = 2;
  Tensor a(Shape{m, k}, std::vector<float>{1, 0, 0, 1});
  Tensor b(Shape{k, n}, std::vector<float>{1, 2, 3, 4});
  Tensor c(Shape{m, n}, std::vector<float>{10, 10, 10, 10});
  gemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 1.0f, c.data(), n);
  EXPECT_FLOAT_EQ(c.at(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 14.0f);
}

TEST(Gemm, AlphaScales) {
  const int m = 1, n = 1, k = 3;
  Tensor a(Shape{1, 3}, std::vector<float>{1, 2, 3});
  Tensor b(Shape{3, 1}, std::vector<float>{1, 1, 1});
  Tensor c(Shape{1, 1});
  gemm(false, false, m, n, k, 2.0f, a.data(), k, b.data(), n, 0.0f, c.data(), n);
  EXPECT_FLOAT_EQ(c[0], 12.0f);
}

TEST(Matmul, RejectsMismatchedInner) {
  Tensor a(Shape{2, 3});
  Tensor b(Shape{4, 2});
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
}

TEST(Im2Col, IdentityKernelCopiesPixels) {
  ConvGeometry g;
  g.in_channels = 1;
  g.in_height = 3;
  g.in_width = 3;
  g.kernel = 1;
  g.stride = 1;
  g.padding = 0;
  Tensor img(Shape{1, 1, 3, 3}, std::vector<float>{1, 2, 3, 4, 5, 6, 7, 8, 9});
  std::vector<float> cols(9);
  im2col(img.data(), g, cols.data());
  for (int i = 0; i < 9; ++i) EXPECT_FLOAT_EQ(cols[static_cast<std::size_t>(i)], img[i]);
}

TEST(Im2Col, PaddingProducesZeros) {
  ConvGeometry g;
  g.in_channels = 1;
  g.in_height = 2;
  g.in_width = 2;
  g.kernel = 3;
  g.stride = 1;
  g.padding = 1;
  Tensor img(Shape{1, 1, 2, 2}, std::vector<float>{1, 2, 3, 4});
  std::vector<float> cols(static_cast<std::size_t>(g.patch_size()) * 4);
  im2col(img.data(), g, cols.data());
  // First output position (0,0), kernel tap (0,0) reads padded corner.
  EXPECT_FLOAT_EQ(cols[0], 0.0f);
  // Kernel tap (1,1) at output (0,0) reads pixel (0,0) = 1.
  EXPECT_FLOAT_EQ(cols[static_cast<std::size_t>(4 * 4)], 1.0f);
}

TEST(Im2Col, StrideSkipsPositions) {
  ConvGeometry g;
  g.in_channels = 1;
  g.in_height = 4;
  g.in_width = 4;
  g.kernel = 2;
  g.stride = 2;
  g.padding = 0;
  EXPECT_EQ(g.out_height(), 2);
  EXPECT_EQ(g.out_width(), 2);
}

TEST(Col2Im, IsAdjointOfIm2Col) {
  // <im2col(x), y> == <x, col2im(y)> characterizes the adjoint, which is
  // exactly what the conv backward pass relies on.
  util::Rng rng(3);
  ConvGeometry g;
  g.in_channels = 2;
  g.in_height = 5;
  g.in_width = 4;
  g.kernel = 3;
  g.stride = 2;
  g.padding = 1;
  const int cols_elems = g.patch_size() * g.out_height() * g.out_width();
  const int img_elems = g.in_channels * g.in_height * g.in_width;

  const Tensor x = Tensor::normal(Shape{img_elems}, rng);
  const Tensor y = Tensor::normal(Shape{cols_elems}, rng);
  std::vector<float> cols(static_cast<std::size_t>(cols_elems), 0.0f);
  im2col(x.data(), g, cols.data());
  float lhs = 0.0f;
  for (int i = 0; i < cols_elems; ++i) lhs += cols[static_cast<std::size_t>(i)] * y[i];

  Tensor x_back(Shape{img_elems});
  col2im(y.data(), g, x_back.data());
  float rhs = 0.0f;
  for (int i = 0; i < img_elems; ++i) rhs += x[i] * x_back[i];

  EXPECT_NEAR(lhs, rhs, 1e-3f * std::max(1.0f, std::fabs(lhs)));
}

TEST(Softmax, RowsSumToOne) {
  util::Rng rng(5);
  const Tensor logits = Tensor::normal(Shape{6, 10}, rng, 0.0f, 3.0f);
  const Tensor p = softmax(logits);
  for (int r = 0; r < 6; ++r) {
    float total = 0.0f;
    for (int c = 0; c < 10; ++c) total += p.at(r, c);
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
}

TEST(Softmax, NumericallyStableWithLargeLogits) {
  Tensor logits(Shape{1, 3}, std::vector<float>{1000.0f, 1000.0f, 900.0f});
  const Tensor p = softmax(logits);
  EXPECT_NEAR(p[0], 0.5f, 1e-5f);
  EXPECT_NEAR(p[2], 0.0f, 1e-5f);
}

TEST(LogSoftmax, MatchesLogOfSoftmax) {
  util::Rng rng(9);
  const Tensor logits = Tensor::normal(Shape{4, 7}, rng);
  const Tensor p = softmax(logits);
  const Tensor lp = log_softmax(logits);
  for (std::int64_t i = 0; i < p.numel(); ++i) {
    EXPECT_NEAR(lp[i], std::log(p[i]), 1e-5f);
  }
}

TEST(RowEntropy, UniformIsLogK) {
  Tensor p(Shape{1, 4}, std::vector<float>{0.25f, 0.25f, 0.25f, 0.25f});
  EXPECT_NEAR(row_entropy(p)[0], std::log(4.0f), 1e-6f);
}

TEST(RowEntropy, DeltaIsZero) {
  Tensor p(Shape{1, 3}, std::vector<float>{1.0f, 0.0f, 0.0f});
  EXPECT_FLOAT_EQ(row_entropy(p)[0], 0.0f);
}

TEST(RowArgmaxAndMax, FindCorrectEntries) {
  Tensor v(Shape{2, 3}, std::vector<float>{0.1f, 0.7f, 0.2f, 0.5f, 0.3f, 0.2f});
  const auto idx = row_argmax(v);
  const auto mx = row_max(v);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 0);
  EXPECT_FLOAT_EQ(mx[0], 0.7f);
  EXPECT_FLOAT_EQ(mx[1], 0.5f);
}

TEST(RowArgmax, TieBreaksToFirst) {
  Tensor v(Shape{1, 3}, std::vector<float>{0.5f, 0.5f, 0.1f});
  EXPECT_EQ(row_argmax(v)[0], 0);
}

}  // namespace
}  // namespace meanet::ops
