#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace meanet {
namespace {

TEST(Tensor, ZeroInitialized) {
  Tensor t(Shape{2, 3});
  EXPECT_EQ(t.numel(), 6);
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FillConstructor) {
  Tensor t(Shape{4}, 2.5f);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_EQ(t[i], 2.5f);
}

TEST(Tensor, ValueConstructorChecksCount) {
  EXPECT_THROW(Tensor(Shape{2, 2}, std::vector<float>{1.0f}), std::invalid_argument);
  Tensor ok(Shape{2}, std::vector<float>{1.0f, 2.0f});
  EXPECT_EQ(ok[1], 2.0f);
}

TEST(Tensor, NchwIndexing) {
  Tensor t(Shape{2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 7.0f;
  // Flat index: ((1*3+2)*4+3)*5+4 = 119.
  EXPECT_EQ(t[119], 7.0f);
  EXPECT_EQ(t.at(1, 2, 3, 4), 7.0f);
}

TEST(Tensor, MatrixIndexing) {
  Tensor t(Shape{3, 4});
  t.at(2, 1) = 9.0f;
  EXPECT_EQ(t[9], 9.0f);
}

TEST(Tensor, AtBoundsChecked) {
  Tensor t(Shape{2, 2});
  EXPECT_THROW(t.at(std::int64_t{4}), std::out_of_range);
  EXPECT_THROW(t.at(std::int64_t{-1}), std::out_of_range);
}

TEST(Tensor, ReshapeKeepsData) {
  Tensor t(Shape{2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  const Tensor r = t.reshaped(Shape{3, 2});
  EXPECT_EQ(r.shape(), Shape({3, 2}));
  EXPECT_EQ(r.at(2, 1), 6.0f);
  // The lvalue overload copies: the source keeps its buffer.
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.at(1, 2), 6.0f);
  EXPECT_THROW(t.reshaped(Shape{4, 2}), std::invalid_argument);
}

TEST(Tensor, ReshapeOnRvalueMovesTheBuffer) {
  Tensor t(Shape{2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  const float* buffer = t.data();
  const Tensor r = std::move(t).reshaped(Shape{3, 2});
  EXPECT_EQ(r.shape(), Shape({3, 2}));
  EXPECT_EQ(r.data(), buffer);  // same allocation, just re-labelled
  EXPECT_EQ(r.at(2, 1), 6.0f);
  // A bad target shape still throws (and must not consume the source).
  Tensor u(Shape{2, 2}, std::vector<float>{1, 2, 3, 4});
  EXPECT_THROW(std::move(u).reshaped(Shape{5}), std::invalid_argument);
  EXPECT_EQ(u.numel(), 4);
}

TEST(Tensor, SliceBatchSingle) {
  Tensor t(Shape{3, 2}, std::vector<float>{1, 2, 3, 4, 5, 6});
  const Tensor s = t.slice_batch(1);
  EXPECT_EQ(s.shape(), Shape({1, 2}));
  EXPECT_EQ(s[0], 3.0f);
  EXPECT_EQ(s[1], 4.0f);
}

TEST(Tensor, SliceBatchRange) {
  Tensor t(Shape{4, 2}, std::vector<float>{1, 2, 3, 4, 5, 6, 7, 8});
  const Tensor s = t.slice_batch(1, 2);
  EXPECT_EQ(s.shape(), Shape({2, 2}));
  EXPECT_EQ(s[0], 3.0f);
  EXPECT_EQ(s[3], 6.0f);
  EXPECT_THROW(t.slice_batch(3, 2), std::out_of_range);
}

TEST(Tensor, InPlaceArithmetic) {
  Tensor a(Shape{3}, std::vector<float>{1, 2, 3});
  Tensor b(Shape{3}, std::vector<float>{4, 5, 6});
  a.add_(b);
  EXPECT_EQ(a[0], 5.0f);
  a.sub_(b);
  EXPECT_EQ(a[2], 3.0f);
  a.scale_(2.0f);
  EXPECT_EQ(a[1], 4.0f);
  a.axpy_(0.5f, b);
  EXPECT_EQ(a[0], 4.0f);
}

TEST(Tensor, ArithmeticShapeMismatchThrows) {
  Tensor a(Shape{3});
  Tensor b(Shape{4});
  EXPECT_THROW(a.add_(b), std::invalid_argument);
  EXPECT_THROW(a.axpy_(1.0f, b), std::invalid_argument);
}

TEST(Tensor, Reductions) {
  Tensor t(Shape{4}, std::vector<float>{1, -2, 3, 2});
  EXPECT_FLOAT_EQ(t.sum(), 4.0f);
  EXPECT_FLOAT_EQ(t.max(), 3.0f);
  EXPECT_FLOAT_EQ(t.min(), -2.0f);
  EXPECT_FLOAT_EQ(t.mean(), 1.0f);
}

TEST(Tensor, RandomFactoriesDeterministic) {
  util::Rng rng1(42), rng2(42);
  const Tensor a = Tensor::normal(Shape{10}, rng1);
  const Tensor b = Tensor::normal(Shape{10}, rng2);
  EXPECT_TRUE(allclose(a, b, 0.0f));
}

TEST(Tensor, UniformRange) {
  util::Rng rng(7);
  const Tensor t = Tensor::uniform(Shape{100}, rng, -0.5f, 0.5f);
  EXPECT_GE(t.min(), -0.5f);
  EXPECT_LT(t.max(), 0.5f);
}

TEST(Tensor, AllClose) {
  Tensor a(Shape{2}, std::vector<float>{1.0f, 2.0f});
  Tensor b(Shape{2}, std::vector<float>{1.0f, 2.000001f});
  EXPECT_TRUE(allclose(a, b, 1e-4f));
  EXPECT_FALSE(allclose(a, b, 1e-8f));
  EXPECT_FALSE(allclose(a, Tensor(Shape{3}), 1.0f));
}

TEST(Tensor, OperatorPlusMinus) {
  Tensor a(Shape{2}, std::vector<float>{1, 2});
  Tensor b(Shape{2}, std::vector<float>{3, 5});
  EXPECT_FLOAT_EQ((a + b)[1], 7.0f);
  EXPECT_FLOAT_EQ((b - a)[0], 2.0f);
  EXPECT_FLOAT_EQ((a * 3.0f)[0], 3.0f);
}

}  // namespace
}  // namespace meanet
