// Wire server + WireBackend integration: parity of a full
// InferenceSession over a real Unix socket vs the in-process backend,
// cross-session batch coalescing, frame-fault fallbacks, reconnect
// after a daemon restart, and connection-churn hygiene.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "core/builders.h"
#include "core/trainer.h"
#include "diag/registry.h"
#include "diag/value.h"
#include "runtime/session.h"
#include "runtime/transport.h"
#include "sim/cloud_node.h"
#include "sim/shared_cell.h"
#include "tensor/pool.h"
#include "tiny_models.h"
#include "util/rng.h"
#include "wire/fault_transport.h"
#include "wire/process.h"
#include "wire/server.h"
#include "wire/socket_transport.h"
#include "wire/wire_backend.h"

namespace meanet::wire {
namespace {

using meanet::testing::tiny_data_spec;
using meanet::testing::tiny_meanet_b;

std::string test_socket_path(const char* tag) {
  return ::testing::TempDir() + "/meanet_" + tag + std::to_string(::getpid()) + ".sock";
}

/// Deterministic modelless backend: each instance's label is its first
/// pixel, rounded — lets integrity tests assert exactly which client's
/// rows produced which answers without training anything.
class PixelLabelBackend : public runtime::OffloadBackend {
 public:
  std::vector<int> classify(const runtime::OffloadPayload& payload) override {
    calls_.fetch_add(1);
    const Tensor& images = payload.images;
    const std::int64_t rows = images.shape().dim(0);
    const std::int64_t row_elems = images.numel() / rows;
    std::vector<int> labels;
    labels.reserve(static_cast<std::size_t>(rows));
    for (std::int64_t r = 0; r < rows; ++r) {
      labels.push_back(static_cast<int>(std::lround(images.data()[r * row_elems])));
    }
    return labels;
  }
  bool needs_images() const override { return true; }
  std::int64_t payload_bytes(const Shape&, const Shape&) const override { return 0; }
  std::string describe() const override { return "pixel-label"; }
  int calls() const { return calls_.load(); }

 private:
  std::atomic<int> calls_{0};
};

class ThrowingBackend : public runtime::OffloadBackend {
 public:
  std::vector<int> classify(const runtime::OffloadPayload&) override {
    throw std::runtime_error("cloud model exploded");
  }
  bool needs_images() const override { return true; }
  std::int64_t payload_bytes(const Shape&, const Shape&) const override { return 0; }
  std::string describe() const override { return "throwing"; }
};

Tensor instance_with_pixel(float value) {
  Tensor t{Shape{1, 2, 4, 4}, 0.0f};
  t.data()[0] = value;
  return t;
}

/// Polls `predicate` until it holds or ~2s pass.
template <typename Fn>
bool eventually(Fn&& predicate) {
  for (int i = 0; i < 200; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return predicate();
}

// ---- Direct WireBackend <-> WireServer over pipes and sockets ----

TEST(WireServer, ServesPingStatsAndClassifyOverPipe) {
  auto backend = std::make_shared<PixelLabelBackend>();
  WireServerConfig config;
  config.max_batch_instances = 1;  // serve immediately
  WireServer server(backend, config);

  WireBackendConfig client_config;
  client_config.transport_factory = [&server] {
    PipePair pipe = make_pipe();
    server.adopt(std::move(pipe.second));
    return std::move(pipe.first);
  };
  WireBackend client(client_config);
  client.ping();

  runtime::OffloadPayload payload;
  payload.images = instance_with_pixel(3.0f);
  EXPECT_EQ(client.classify(payload), std::vector<int>{3});

  const StatsEntries stats = client.fetch_stats();
  bool saw_frames_in = false;
  for (const auto& [name, value] : stats) {
    if (name == "frames_in") {
      saw_frames_in = true;
      EXPECT_GE(value, 2u);  // ping + classify at least
    }
  }
  EXPECT_TRUE(saw_frames_in);
  server.stop();
}

TEST(WireServer, CoalescesTwoClientsIntoOneCrossSessionBatch) {
  auto backend = std::make_shared<PixelLabelBackend>();
  WireServerConfig config;
  // The batch worker fires exactly when 2 instances are pending and the
  // window is far away: two single-instance clients MUST coalesce.
  config.max_batch_instances = 2;
  config.batch_window_s = 30.0;
  WireServer server(backend, config);
  const std::string path = test_socket_path("xsession");
  server.listen_unix(path);

  auto run_client = [&path](float pixel, std::vector<int>& out) {
    WireBackendConfig cfg;
    cfg.socket_path = path;
    WireBackend client(cfg);
    runtime::OffloadPayload payload;
    payload.images = instance_with_pixel(pixel);
    out = client.classify(payload);
  };
  std::vector<int> got_a, got_b;
  std::thread a([&] { run_client(1.0f, got_a); });
  std::thread b([&] { run_client(2.0f, got_b); });
  a.join();
  b.join();

  // Per-client integrity: each client gets the label of ITS pixel back,
  // even though both rode one backend call.
  EXPECT_EQ(got_a, std::vector<int>{1});
  EXPECT_EQ(got_b, std::vector<int>{2});
  EXPECT_EQ(backend->calls(), 1);

  const WireServerStats stats = server.stats();
  EXPECT_EQ(stats.cross_session_batches, 1u);
  EXPECT_EQ(stats.batches, 1u);
  ASSERT_GT(stats.batch_size_histogram.size(), 2u);
  EXPECT_EQ(stats.batch_size_histogram[2], 1u);  // one batch of 2 requests
  EXPECT_EQ(stats.instances_served, 2u);
  server.stop();
}

TEST(WireServer, RemoteBackendFailureSurfacesAsWireError) {
  WireServer server(std::make_shared<ThrowingBackend>(), WireServerConfig{});
  const std::string path = test_socket_path("throw");
  server.listen_unix(path);

  WireBackendConfig cfg;
  cfg.socket_path = path;
  WireBackend client(cfg);
  runtime::OffloadPayload payload;
  payload.images = instance_with_pixel(1.0f);
  EXPECT_THROW(client.classify(payload), WireError);
  EXPECT_TRUE(eventually([&] { return server.stats().backend_failures >= 1u; }));
  server.stop();
}

TEST(WireServer, GarbageStreamGetsErrorAndDisconnect) {
  WireServer server(std::make_shared<PixelLabelBackend>(), WireServerConfig{});
  const std::string path = test_socket_path("garbage");
  server.listen_unix(path);

  std::unique_ptr<Transport> raw = connect_unix(path);
  const std::string garbage = "this is definitely not a MWIR frame....";
  raw->write_all(reinterpret_cast<const std::uint8_t*>(garbage.data()), garbage.size());
  Frame reply;
  ASSERT_TRUE(read_frame(*raw, reply));
  EXPECT_EQ(reply.command, Command::kError);
  EXPECT_EQ(decode_error(reply.payload).first, ErrorCode::kMalformedFrame);
  // The poisoned connection is then closed from the server side.
  EXPECT_FALSE(read_frame(*raw, reply));
  EXPECT_TRUE(eventually([&] { return server.stats().connections_active == 0u; }));
  EXPECT_GE(server.stats().protocol_errors, 1u);
  server.stop();
}

TEST(WireServer, ReconnectsAfterServerRestart) {
  const std::string path = test_socket_path("restart");
  auto backend = std::make_shared<PixelLabelBackend>();
  WireBackendConfig cfg;
  cfg.socket_path = path;
  cfg.connect_timeout_s = 2.0;
  WireBackend client(cfg);
  runtime::OffloadPayload payload;
  payload.images = instance_with_pixel(4.0f);

  auto server1 = std::make_unique<WireServer>(backend, WireServerConfig{});
  server1->listen_unix(path);
  EXPECT_EQ(client.classify(payload), std::vector<int>{4});
  server1.reset();  // daemon "crashes"; the client's connection is stale

  auto server2 = std::make_unique<WireServer>(backend, WireServerConfig{});
  server2->listen_unix(path);
  // The stale connection fails on use; WireBackend redials transparently.
  EXPECT_EQ(client.classify(payload), std::vector<int>{4});
  server2.reset();
}

TEST(WireServer, ConnectionChurnLeavesNothingBehind) {
  auto backend = std::make_shared<PixelLabelBackend>();
  WireServer server(backend, WireServerConfig{});
  const std::string path = test_socket_path("churn");
  server.listen_unix(path);

  constexpr int kRounds = 12;
  for (int i = 0; i < kRounds; ++i) {
    WireBackendConfig cfg;
    cfg.socket_path = path;
    WireBackend client(cfg);
    if (i % 2 == 0) {
      client.ping();
    } else {
      runtime::OffloadPayload payload;
      payload.images = instance_with_pixel(static_cast<float>(i));
      EXPECT_EQ(client.classify(payload), std::vector<int>{i});
    }
  }
  EXPECT_TRUE(eventually([&] { return server.stats().connections_active == 0u; }));
  const WireServerStats stats = server.stats();
  EXPECT_EQ(stats.connections_accepted, static_cast<std::uint64_t>(kRounds));
  server.stop();
  EXPECT_EQ(server.stats().connections_active, 0u);
}

// ---- Stale-connection retry and response demultiplexing ----

/// Wraps a transport so reads turn glacial once `fast_bytes` have been
/// read: each later read sleeps, then yields at most one byte. The
/// response still arrives — just slower than any response timeout —
/// which is exactly the stale-connection shape WireBackend must retry:
/// the server consumed and answered the request, but the answer cannot
/// be read in time. Also records the request id of every frame written
/// through it so the test can assert the retry used a FRESH id.
class GlacialReadTransport final : public Transport {
 public:
  GlacialReadTransport(std::unique_ptr<Transport> inner, std::uint64_t fast_bytes,
                       double per_read_delay_s, std::shared_ptr<std::vector<std::uint64_t>> ids)
      : inner_(std::move(inner)),
        fast_bytes_(fast_bytes),
        delay_s_(per_read_delay_s),
        ids_(std::move(ids)) {}

  std::size_t read_some(std::uint8_t* buf, std::size_t max, double timeout_s) override {
    if (read_ >= fast_bytes_) {
      std::this_thread::sleep_for(std::chrono::duration<double>(delay_s_));
      max = 1;
    }
    const std::size_t n = inner_->read_some(buf, max, timeout_s);
    read_ += n;
    return n;
  }

  void write_all(const std::uint8_t* data, std::size_t size) override {
    if (size >= kFrameHeaderBytes) {  // frames are written whole
      std::uint64_t id = 0;
      std::memcpy(&id, data + 8, sizeof(id));  // magic + version + command
      ids_->push_back(id);
    }
    inner_->write_all(data, size);
  }

  void close() override { inner_->close(); }
  std::string describe() const override { return "glacial(" + inner_->describe() + ")"; }

 private:
  std::unique_ptr<Transport> inner_;
  std::uint64_t fast_bytes_;
  double delay_s_;
  std::shared_ptr<std::vector<std::uint64_t>> ids_;
  std::uint64_t read_ = 0;
};

TEST(WireRetry, TimedOutResponseIsRetriedOnceWithAFreshRequestId) {
  auto backend = std::make_shared<PixelLabelBackend>();
  WireServerConfig server_config;
  server_config.max_batch_instances = 1;  // serve immediately
  WireServer server(backend, server_config);

  auto ids = std::make_shared<std::vector<std::uint64_t>>();
  int dials = 0;
  WireBackendConfig cfg;
  cfg.response_timeout_s = 0.25;
  cfg.transport_factory = [&server, &dials, ids]() -> std::unique_ptr<Transport> {
    PipePair pipe = make_pipe();
    server.adopt(std::move(pipe.second));
    if (++dials == 1) {
      // The ping's header-only pong (kFrameHeaderBytes) reads at full
      // speed; every later response crawls one byte per read, slower
      // than the 0.25 s response timeout.
      return std::make_unique<GlacialReadTransport>(std::move(pipe.first),
                                                    /*fast_bytes=*/kFrameHeaderBytes,
                                                    /*per_read_delay_s=*/0.08, ids);
    }
    return std::make_unique<GlacialReadTransport>(std::move(pipe.first),
                                                  /*fast_bytes=*/kNoFault,
                                                  /*per_read_delay_s=*/0.0, ids);
  };
  WireBackend client(cfg);
  client.ping();  // establishes connection 1, which is then stale-on-use
  ASSERT_TRUE(client.connected());

  // The server answers the first classify promptly, but the client
  // cannot read the response before its timeout: WireBackend must
  // close, redial, and retry — and the caller sees exactly ONE answer.
  runtime::OffloadPayload payload;
  payload.images = instance_with_pixel(6.0f);
  EXPECT_EQ(client.classify(payload), std::vector<int>{6});
  EXPECT_EQ(dials, 2);

  // ping + timed-out classify on connection 1, retried classify on
  // connection 2 — and the retry carried a fresh (larger) request id,
  // so the abandoned exchange can never satisfy it.
  ASSERT_EQ(ids->size(), 3u);
  EXPECT_GT((*ids)[2], (*ids)[1]);

  // The daemon served BOTH copies of the request (it cannot know the
  // first answer was abandoned) as two single-connection batches.
  EXPECT_TRUE(eventually([&] { return server.stats().requests_served == 2u; }));
  const WireServerStats stats = server.stats();
  EXPECT_EQ(stats.instances_served, 2u);
  EXPECT_EQ(stats.batches, 2u);
  EXPECT_EQ(stats.cross_session_batches, 0u);
  EXPECT_EQ(backend->calls(), 2);

  // The fresh connection is healthy: later exchanges are undisturbed.
  payload.images = instance_with_pixel(9.0f);
  EXPECT_EQ(client.classify(payload), std::vector<int>{9});
  server.stop();
}

TEST(WireRetry, ResponsesAreDemuxedByRequestIdNotArrivalOrder) {
  PipePair pipe = make_pipe();
  auto client_end = std::make_shared<std::unique_ptr<Transport>>(std::move(pipe.first));
  WireBackendConfig cfg;
  cfg.transport_factory = [client_end] { return std::move(*client_end); };
  WireBackend client(cfg);

  // Hand-rolled server: answer with a stale response (foreign request
  // id) FIRST, then the genuine one. A client that trusted arrival
  // order would hand the caller the stale labels.
  std::unique_ptr<Transport> server_end = std::move(pipe.second);
  std::thread impostor([&server_end] {
    Frame request;
    if (!read_frame(*server_end, request)) return;
    Frame stale;
    stale.command = Command::kOffloadResponse;
    stale.request_id = request.request_id + 7;
    stale.payload = encode_offload_response(std::vector<int>{99});
    write_frame(*server_end, stale);
    Frame genuine;
    genuine.command = Command::kOffloadResponse;
    genuine.request_id = request.request_id;
    genuine.payload = encode_offload_response(std::vector<int>{5});
    write_frame(*server_end, genuine);
  });
  runtime::OffloadPayload payload;
  payload.images = instance_with_pixel(5.0f);
  EXPECT_EQ(client.classify(payload), std::vector<int>{5});  // not {99}
  impostor.join();
}

// ---- Full InferenceSession over the wire ----

/// Trained tiny system + cloud model shared by the session-level tests.
struct Fixture {
  data::SyntheticDataset ds;
  core::MEANet net;
  data::ClassDict dict;
  sim::CloudNode cloud;

  static Fixture& instance() {
    static Fixture fixture = make();
    return fixture;
  }

  static Fixture make() {
    util::Rng rng(1);
    data::SyntheticDataset ds = data::make_synthetic(tiny_data_spec(), 21);
    core::MEANet net = tiny_meanet_b(rng, 2);
    core::DistributedTrainer trainer(net);
    core::TrainOptions options;
    options.epochs = 5;
    options.batch_size = 16;
    util::Rng train_rng(2);
    trainer.train_main(ds.train, options, train_rng);
    data::ClassDict dict = trainer.select_hard_classes_from_validation(ds.test, 2);
    trainer.train_edge_blocks(ds.train, dict, options, train_rng);

    nn::Sequential cloud_model = core::build_cloud_classifier(2, 4, rng);
    core::TrainOptions cloud_options;
    cloud_options.epochs = 6;
    cloud_options.batch_size = 16;
    core::train_classifier(cloud_model, ds.train, cloud_options, train_rng);

    return Fixture{std::move(ds), std::move(net), std::move(dict),
                   sim::CloudNode(std::move(cloud_model))};
  }

  runtime::EngineConfig config() {
    runtime::EngineConfig cfg;
    cfg.net = &net;
    cfg.dict = &dict;
    cfg.policy_config.cloud_available = true;
    cfg.policy_config.entropy_threshold = 0.3;
    cfg.batch_size = 16;
    return cfg;
  }
};

TEST(WireSession, SocketPredictionsMatchInProcessBackend) {
  Fixture& f = Fixture::instance();

  // In-process reference: the cloud model answers directly.
  runtime::EngineConfig in_proc = f.config();
  in_proc.offload_mode = runtime::OffloadMode::kRawImage;
  in_proc.cloud = &f.cloud;
  const auto reference = runtime::InferenceSession(in_proc).run(f.ds.test);

  // Same cloud model behind a WireServer on a real Unix socket.
  WireServer server(std::make_shared<runtime::RawImageBackend>(&f.cloud),
                    WireServerConfig{});
  const std::string path = test_socket_path("parity");
  server.listen_unix(path);
  runtime::EngineConfig wired = f.config();
  wired.offload_mode = runtime::OffloadMode::kWire;
  wired.wire_socket_path = path;
  const auto over_wire = runtime::InferenceSession(wired).run(f.ds.test);
  server.stop();

  ASSERT_EQ(reference.size(), over_wire.size());
  int offloaded = 0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(reference[i].prediction, over_wire[i].prediction) << "instance " << i;
    EXPECT_EQ(reference[i].route, over_wire[i].route) << "instance " << i;
    EXPECT_EQ(reference[i].offloaded, over_wire[i].offloaded) << "instance " << i;
    offloaded += over_wire[i].offloaded ? 1 : 0;
  }
  // The parity is only meaningful if the cloud actually answered.
  EXPECT_GT(offloaded, 0);
}

TEST(WireSession, FrameFaultsFallBackToEdgePredictions) {
  Fixture& f = Fixture::instance();

  // Reference: no cloud at all — pure edge predictions.
  runtime::EngineConfig none = f.config();
  const auto edge_only = runtime::InferenceSession(none).run(f.ds.test);

  WireServer server(std::make_shared<runtime::RawImageBackend>(&f.cloud),
                    WireServerConfig{});

  auto run_with_fault = [&](const FaultPlan& plan) {
    runtime::EngineConfig cfg = f.config();
    cfg.offload_mode = runtime::OffloadMode::kNone;  // overridden by backend below
    WireBackendConfig wire_cfg;
    wire_cfg.response_timeout_s = 0.25;  // a swallowed frame must not hang
    wire_cfg.transport_factory = [&server, plan] {
      PipePair pipe = make_pipe();
      server.adopt(std::move(pipe.second));
      return std::unique_ptr<Transport>(
          std::make_unique<FaultInjectingTransport>(std::move(pipe.first), plan));
    };
    cfg.backend = std::make_shared<WireBackend>(std::move(wire_cfg));
    return runtime::InferenceSession(cfg).run(f.ds.test);
  };

  // Truncated request frame / corrupted CRC / mid-frame disconnect: all
  // must surface as clean offload failures — every instance keeps its
  // edge prediction, nothing hangs, the session drains normally.
  FaultPlan truncate;
  truncate.truncate_after_bytes = 40;
  FaultPlan corrupt;
  corrupt.corrupt_byte_at = kFrameHeaderBytes + 10;
  FaultPlan disconnect;
  disconnect.disconnect_after_bytes = 40;
  for (const FaultPlan& plan : {truncate, corrupt, disconnect}) {
    const auto results = run_with_fault(plan);
    ASSERT_EQ(results.size(), edge_only.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i].prediction, edge_only[i].prediction) << "instance " << i;
      EXPECT_FALSE(results[i].offloaded) << "instance " << i;
    }
  }
  server.stop();
}

// A stats() poller hammering the server while connections serve live
// traffic: every stats_ mutation site must go through the same lock, or
// the TSAN leg flags this test.
TEST(WireServer, ConcurrentStatsPollerDoesNotRaceLiveConnections) {
  auto backend = std::make_shared<PixelLabelBackend>();
  WireServerConfig config;
  config.max_batch_instances = 1;
  WireServer server(backend, config);

  std::atomic<bool> stop{false};
  std::thread poller([&] {
    while (!stop.load()) {
      const WireServerStats stats = server.stats();
      EXPECT_GE(stats.frames_in, stats.requests_served);
      // The registry path snapshots the same counters under the same
      // lock — exercise it concurrently too.
      (void)diag::DiagnosticRegistry::global().to_json();
    }
  });

  WireBackendConfig client_config;
  client_config.transport_factory = [&server] {
    PipePair pipe = make_pipe();
    server.adopt(std::move(pipe.second));
    return std::move(pipe.first);
  };
  WireBackend client(client_config);
  for (int i = 0; i < 50; ++i) {
    runtime::OffloadPayload payload;
    payload.images = instance_with_pixel(static_cast<float>(i % 4));
    EXPECT_EQ(client.classify(payload), std::vector<int>{i % 4});
  }
  stop.store(true);
  poller.join();
  server.stop();
  EXPECT_GE(server.stats().requests_served, 50u);
}

// The acceptance shape of the unified surface: two live sessions on a
// shared cell, a wire server, and the (lazily created) GEMM pool all
// land in ONE registry snapshot.
TEST(Diagnostics, TwoSessionsCellServerAndPoolInOneSnapshot) {
  util::Rng rng(9);
  data::SyntheticDataset ds = data::make_synthetic(tiny_data_spec(), 44);
  core::MEANet net = tiny_meanet_b(rng, 2);
  data::ClassDict dict(tiny_data_spec().num_classes, {0, 1});

  auto cell = std::make_shared<sim::SharedCell>(sim::SharedCellConfig{});
  runtime::TransportConfig transport;
  transport.cell = cell;

  runtime::EngineConfig cfg;
  cfg.net = &net;
  cfg.dict = &dict;
  cfg.worker_threads = 1;
  cfg.transport = transport;
  runtime::InferenceSession first(cfg), second(cfg);
  for (int i = 0; i < 4; ++i) {
    first.submit(ds.test.instance(i));
    second.submit(ds.test.instance(i + 4));
  }
  (void)first.drain();
  (void)second.drain();
  // Tiny forwards may stay under the pool's fan-out threshold; the
  // singleton registers on first touch either way.
  (void)ops::GemmPool::instance().stats();

  WireServer server(std::make_shared<PixelLabelBackend>(), WireServerConfig{});

  const diag::Value snap = diag::DiagnosticRegistry::global().snapshot();
  ASSERT_NE(snap.find("schema"), nullptr);
  EXPECT_EQ(snap.find("schema")->as_string(), diag::kSchemaVersion);
  const diag::Value* providers = snap.find("providers");
  ASSERT_NE(providers, nullptr);
  int sessions = 0, cells = 0, servers = 0, pools = 0;
  for (const auto& [name, tree] : providers->fields()) {
    (void)tree;
    if (name.rfind("session/", 0) == 0) ++sessions;
    if (name.rfind("cell/", 0) == 0) ++cells;
    if (name.rfind("wire_server/", 0) == 0) ++servers;
    if (name == "gemm_pool") ++pools;
  }
  EXPECT_GE(sessions, 2);
  EXPECT_GE(cells, 1);
  EXPECT_GE(servers, 1);
  EXPECT_EQ(pools, 1);
  EXPECT_TRUE(diag::json_well_formed(diag::to_json(snap)));
  server.stop();
}

// ---- End-to-end against the real meanet_cloudd binary ----

// Runs only when MEANET_CLOUDD names the built daemon (CI sets it; run
// locally with MEANET_CLOUDD=./build/tools/meanet_cloudd). The daemon
// builds its classifier deterministically from --seed, so this process
// can reproduce the exact weights and demand byte-identical answers
// across the process boundary.
TEST(ClouddEndToEnd, SpawnedDaemonMatchesInProcessModel) {
  const char* binary = std::getenv("MEANET_CLOUDD");
  if (binary == nullptr || binary[0] == '\0') {
    GTEST_SKIP() << "set MEANET_CLOUDD to the meanet_cloudd binary to run";
  }
  const std::string path = test_socket_path("cloudd");
  ChildProcess daemon(std::vector<std::string>{binary, "--socket", path, "--seed", "77",
                                               "--image-channels", "2", "--classes", "4"});

  util::Rng rng(77);
  sim::CloudNode local(core::build_cloud_classifier(2, 4, rng));
  runtime::RawImageBackend reference(&local);

  WireBackendConfig cfg;
  cfg.socket_path = path;
  cfg.connect_timeout_s = 10.0;  // covers the daemon's startup window
  WireBackend client(cfg);
  util::Rng data_rng(5);
  for (int round = 0; round < 4; ++round) {
    runtime::OffloadPayload payload;
    payload.images = Tensor::normal(Shape{3, 2, 4, 4}, data_rng);
    EXPECT_EQ(client.classify(payload), reference.classify(payload)) << "round " << round;
  }
  const StatsEntries stats = client.fetch_stats();
  bool saw_requests = false;
  for (const auto& [name, value] : stats) {
    if (name == "requests_served") {
      saw_requests = true;
      EXPECT_GE(value, 4u);
    }
  }
  EXPECT_TRUE(saw_requests);
  daemon.terminate();
  EXPECT_FALSE(daemon.running());
}

// The wire-served registry snapshot (kStatsRequest + diag flag): the
// daemon must answer with a well-formed document in the current schema
// whose providers include its wire server. Same MEANET_CLOUDD gate as
// above; CI's wire job runs this as its snapshot validation step.
TEST(ClouddEndToEnd, DiagSnapshotOverWireIsWellFormed) {
  const char* binary = std::getenv("MEANET_CLOUDD");
  if (binary == nullptr || binary[0] == '\0') {
    GTEST_SKIP() << "set MEANET_CLOUDD to the meanet_cloudd binary to run";
  }
  const std::string path = test_socket_path("cloudd_diag");
  ChildProcess daemon(std::vector<std::string>{binary, "--socket", path, "--seed", "77",
                                               "--image-channels", "2", "--classes", "4"});

  WireBackendConfig cfg;
  cfg.socket_path = path;
  cfg.connect_timeout_s = 10.0;
  WireBackend client(cfg);
  util::Rng data_rng(6);
  runtime::OffloadPayload payload;
  payload.images = Tensor::normal(Shape{2, 2, 4, 4}, data_rng);
  (void)client.classify(payload);  // traffic so counters are non-trivial

  const std::string snapshot = client.fetch_diagnostics();
  EXPECT_TRUE(diag::json_well_formed(snapshot)) << snapshot;
  EXPECT_NE(snapshot.find(diag::kSchemaVersion), std::string::npos);
  EXPECT_NE(snapshot.find("wire_server/"), std::string::npos);
  EXPECT_NE(snapshot.find("requests_served"), std::string::npos);

  // The legacy flagless stats request must still work on the same
  // connection (wire version is unchanged).
  const StatsEntries stats = client.fetch_stats();
  EXPECT_FALSE(stats.empty());
  daemon.terminate();
  EXPECT_FALSE(daemon.running());
}

}  // namespace
}  // namespace meanet::wire
