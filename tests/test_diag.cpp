// Tests for the unified diagnostics surface (src/diag/): the Value
// tree + JSON exporter, the process-wide registry under concurrent
// register/unregister churn, the exact nearest-rank percentile fix,
// the SessionMetrics export contract (every documented counter appears
// in the tree), live-session snapshots mid-churn, and the clock-driven
// Ticker under both wall and virtual time.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "diag/registry.h"
#include "diag/ticker.h"
#include "diag/value.h"
#include "runtime/session.h"
#include "sim/event_loop.h"
#include "tiny_models.h"

namespace meanet::diag {
namespace {

using meanet::testing::tiny_data_spec;
using meanet::testing::tiny_meanet_b;

// ---------------------------------------------------------------------------
// Nearest-rank percentiles: the table every quantile consumer relies on.

TEST(Percentile, ExactNearestRankTable) {
  struct Case {
    std::vector<double> sorted;
    double p;
    double expected;
  };
  std::vector<double> twenty, hundred;
  for (int i = 1; i <= 20; ++i) twenty.push_back(i);
  for (int i = 1; i <= 100; ++i) hundred.push_back(i);
  const Case cases[] = {
      // Singleton: every p reads the one sample.
      {{42.0}, 0.0, 42.0},
      {{42.0}, 0.5, 42.0},
      {{42.0}, 1.0, 42.0},
      // Two samples: p50 is the FIRST (rank ceil(0.5*2) = 1), not an
      // interpolation between the two.
      {{1.0, 9.0}, 0.5, 1.0},
      {{1.0, 9.0}, 0.75, 9.0},
      {{1.0, 9.0}, 1.0, 9.0},
      // Four samples: p50 -> rank 2.
      {{1.0, 2.0, 3.0, 4.0}, 0.5, 2.0},
      {{1.0, 2.0, 3.0, 4.0}, 0.25, 1.0},
      // p95 of 20: 0.95 * 20 is 19.000000000000004 in IEEE doubles; a
      // bare ceil() read rank 20 (the max). Exact nearest-rank is 19.
      {twenty, 0.95, 19.0},
      {twenty, 0.50, 10.0},
      // p99 of 100 must be the 99th sample, not the max.
      {hundred, 0.99, 99.0},
      {hundred, 0.95, 95.0},
      {hundred, 1.0, 100.0},
      // Out-of-range p clamps.
      {{1.0, 2.0, 3.0}, -0.5, 1.0},
      {{1.0, 2.0, 3.0}, 2.0, 3.0},
  };
  for (const Case& c : cases) {
    EXPECT_DOUBLE_EQ(runtime::sorted_percentile(c.sorted, c.p), c.expected)
        << "n=" << c.sorted.size() << " p=" << c.p;
  }
}

TEST(Percentile, EmptySetReturnsZero) {
  EXPECT_DOUBLE_EQ(runtime::sorted_percentile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(runtime::percentile({}, 0.99), 0.0);
}

TEST(Percentile, UnsortedConvenienceSorts) {
  EXPECT_DOUBLE_EQ(runtime::percentile({9.0, 1.0, 5.0}, 0.5), 5.0);
}

// ---------------------------------------------------------------------------
// Value tree + JSON exporter.

TEST(Value, GoldenJson) {
  Value doc = Value::object();
  doc.set("schema", kSchemaVersion);
  doc.set("count", std::int64_t{3});
  Value inner = Value::object();
  inner.set("ok", true);
  inner.set("ratio", 0.5);
  doc.set("inner", std::move(inner));
  Value arr = Value::array();
  arr.push(1);
  arr.push("two");
  doc.set("items", std::move(arr));
  const std::string expected =
      "{\n"
      "  \"schema\": \"meanet.diag.v1\",\n"
      "  \"count\": 3,\n"
      "  \"inner\": {\n"
      "    \"ok\": true,\n"
      "    \"ratio\": 0.5\n"
      "  },\n"
      "  \"items\": [\n"
      "    1,\n"
      "    \"two\"\n"
      "  ]\n"
      "}";
  EXPECT_EQ(to_json(doc), expected);
  EXPECT_EQ(to_json(doc, 0),
            "{\"schema\":\"meanet.diag.v1\",\"count\":3,"
            "\"inner\":{\"ok\":true,\"ratio\":0.5},\"items\":[1,\"two\"]}");
}

TEST(Value, SetOverwritesInPlaceAndKeepsOrder) {
  Value v;  // null: first set() promotes to object
  v.set("a", 1).set("b", 2).set("c", 3);
  v.set("b", 20);  // overwrite keeps position
  ASSERT_EQ(v.fields().size(), 3u);
  EXPECT_EQ(v.fields()[1].first, "b");
  EXPECT_EQ(v.fields()[1].second.as_int(), 20);
  ASSERT_NE(v.find("c"), nullptr);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Value, NonFiniteDoublesRenderAsNull) {
  Value v = Value::object();
  v.set("inf", std::numeric_limits<double>::infinity());
  v.set("nan", std::nan(""));
  EXPECT_EQ(to_json(v, 0), "{\"inf\":null,\"nan\":null}");
}

TEST(Value, StringEscaping) {
  Value v = Value::object();
  v.set("s", std::string("a\"b\\c\n\t\x01"));
  EXPECT_EQ(to_json(v, 0), "{\"s\":\"a\\\"b\\\\c\\n\\t\\u0001\"}");
}

TEST(Value, EmptyContainersRenderCompact) {
  Value v = Value::object();
  v.set("o", Value::object());
  v.set("a", Value::array());
  EXPECT_EQ(to_json(v, 0), "{\"o\":{},\"a\":[]}");
}

TEST(Json, WellFormedAcceptsValidDocuments) {
  EXPECT_TRUE(json_well_formed("{}"));
  EXPECT_TRUE(json_well_formed("  [1, 2.5e3, -0.25, \"x\", null, true, false]  "));
  EXPECT_TRUE(json_well_formed("{\"a\": {\"b\": [\"\\u00e9\", \"\\n\"]}}"));
  Value v = Value::object();
  v.set("neg", -1);
  v.set("big", std::uint64_t{18446744073709551615ull});
  EXPECT_TRUE(json_well_formed(to_json(v)));
}

TEST(Json, WellFormedRejectsMalformedDocuments) {
  EXPECT_FALSE(json_well_formed(""));
  EXPECT_FALSE(json_well_formed("{"));
  EXPECT_FALSE(json_well_formed("{} trailing"));
  EXPECT_FALSE(json_well_formed("{\"a\": 01}"));
  EXPECT_FALSE(json_well_formed("{\"a\": .5}"));
  EXPECT_FALSE(json_well_formed("{\"a\"; 1}"));
  EXPECT_FALSE(json_well_formed("{\"a\": \"\\x\"}"));
  EXPECT_FALSE(json_well_formed("[1, 2,]"));
  EXPECT_FALSE(json_well_formed("nul"));
  std::string deep;
  for (int i = 0; i < 80; ++i) deep += '[';
  for (int i = 0; i < 80; ++i) deep += ']';
  EXPECT_FALSE(json_well_formed(deep)) << "depth cap must reject 80 levels";
}

// ---------------------------------------------------------------------------
// Registry semantics.

class FakeProvider : public DiagnosticProvider {
 public:
  explicit FakeProvider(std::string name, std::int64_t payload = 0)
      : name_(std::move(name)), payload_(payload) {}
  std::string diag_name() const override { return name_; }
  Value diag_snapshot() const override {
    Value v = Value::object();
    v.set("payload", payload_);
    return v;
  }

 private:
  std::string name_;
  std::int64_t payload_;
};

TEST(Registry, SnapshotEnvelopeAndOrder) {
  DiagnosticRegistry registry;
  FakeProvider a("alpha", 1), b("beta", 2);
  ScopedRegistration ra(registry, &a);
  ScopedRegistration rb(registry, &b);
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.names(), (std::vector<std::string>{"alpha", "beta"}));

  const Value snap = registry.snapshot();
  ASSERT_NE(snap.find("schema"), nullptr);
  EXPECT_EQ(snap.find("schema")->as_string(), kSchemaVersion);
  const Value* providers = snap.find("providers");
  ASSERT_NE(providers, nullptr);
  ASSERT_EQ(providers->fields().size(), 2u);
  EXPECT_EQ(providers->fields()[0].first, "alpha");
  EXPECT_EQ(providers->fields()[1].first, "beta");
  EXPECT_EQ(providers->find("alpha")->find("payload")->as_int(), 1);

  EXPECT_TRUE(json_well_formed(registry.to_json()));
}

TEST(Registry, DuplicateNamesGetSuffixes) {
  DiagnosticRegistry registry;
  FakeProvider a("dup", 1), b("dup", 2), c("dup", 3);
  ScopedRegistration ra(registry, &a), rb(registry, &b), rc(registry, &c);
  const Value snap = registry.snapshot();
  const Value* providers = snap.find("providers");
  ASSERT_NE(providers, nullptr);
  ASSERT_EQ(providers->fields().size(), 3u);
  EXPECT_EQ(providers->fields()[0].first, "dup");
  EXPECT_EQ(providers->fields()[1].first, "dup#2");
  EXPECT_EQ(providers->fields()[2].first, "dup#3");
}

TEST(Registry, SnapshotOfMissingIsNull) {
  DiagnosticRegistry registry;
  FakeProvider a("here", 7);
  ScopedRegistration ra(registry, &a);
  EXPECT_EQ(registry.snapshot_of("here").find("payload")->as_int(), 7);
  EXPECT_TRUE(registry.snapshot_of("absent").is_null());
}

TEST(Registry, AddRemoveAreIdempotent) {
  DiagnosticRegistry registry;
  FakeProvider a("x");
  registry.add(&a);
  registry.add(&a);  // no-op
  EXPECT_EQ(registry.size(), 1u);
  registry.remove(&a);
  registry.remove(&a);  // no-op
  EXPECT_EQ(registry.size(), 0u);
}

TEST(Registry, ScopedRegistrationMoveAndReset) {
  DiagnosticRegistry registry;
  FakeProvider a("mv");
  ScopedRegistration outer;
  EXPECT_FALSE(outer.armed());
  {
    ScopedRegistration inner(registry, &a);
    EXPECT_TRUE(inner.armed());
    outer = std::move(inner);
    EXPECT_FALSE(inner.armed());
  }  // inner's destructor must not unregister (ownership moved out)
  EXPECT_EQ(registry.size(), 1u);
  outer.reset();
  EXPECT_FALSE(outer.armed());
  EXPECT_EQ(registry.size(), 0u);
}

// Four writer threads churn registrations while a reader snapshots the
// whole registry: every dump must be a well-formed document and every
// named payload consistent — TSAN's bread and butter.
TEST(Registry, ConcurrentChurnAndSnapshot) {
  DiagnosticRegistry registry;
  constexpr int kThreads = 4;
  constexpr int kIterations = 300;
  std::atomic<bool> stop{false};
  std::atomic<int> bad_documents{0};

  std::thread reader([&] {
    while (!stop.load()) {
      const std::string dump = registry.to_json();
      if (!json_well_formed(dump)) bad_documents.fetch_add(1);
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&registry, t] {
      for (int i = 0; i < kIterations; ++i) {
        FakeProvider p("churn/" + std::to_string(t), i);
        ScopedRegistration reg(registry, &p);
        // Read back through the registry while registered.
        const Value mine = registry.snapshot_of("churn/" + std::to_string(t));
        if (!mine.is_null()) {
          // Another same-named provider may have won the first-match
          // lookup; any payload visible there must be a live one.
          EXPECT_NE(mine.find("payload"), nullptr);
        }
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(bad_documents.load(), 0);
  EXPECT_EQ(registry.size(), 0u);
}

// ---------------------------------------------------------------------------
// SessionMetrics export contract + live-session snapshots.

struct TinySession {
  data::SyntheticDataset ds;
  core::MEANet net;
  data::ClassDict dict;

  static TinySession make() {
    util::Rng rng(5);
    data::SyntheticDataset ds = data::make_synthetic(tiny_data_spec(), 33);
    core::MEANet net = tiny_meanet_b(rng, 2);  // untrained: routing quality
                                               // is irrelevant here
    data::ClassDict dict(tiny_data_spec().num_classes, {0, 1});
    return TinySession{std::move(ds), std::move(net), std::move(dict)};
  }

  runtime::EngineConfig config() {
    runtime::EngineConfig cfg;
    cfg.net = &net;
    cfg.dict = &dict;
    cfg.worker_threads = 2;
    return cfg;
  }
};

TEST(SessionExport, EveryDocumentedCounterAppears) {
  TinySession tiny = TinySession::make();
  runtime::EngineConfig cfg = tiny.config();
  cfg.response_cache_capacity = 8;
  runtime::InferenceSession session(cfg);
  for (int i = 0; i < 8; ++i) session.submit(tiny.ds.test.instance(i));
  (void)session.drain();

  const runtime::SessionMetrics m = session.metrics();
  const Value tree = m.to_value();
  ASSERT_FALSE(runtime::SessionMetrics::counter_names().empty());
  for (const char* name : runtime::SessionMetrics::counter_names()) {
    EXPECT_NE(tree.find(name), nullptr) << "counter missing from export: " << name;
  }
  ASSERT_NE(tree.find("routes"), nullptr);
  ASSERT_NE(tree.find("queue_wait_by_priority"), nullptr);
  EXPECT_EQ(tree.find("submitted_instances")->as_int(), 8);
  EXPECT_TRUE(json_well_formed(to_json(tree)));
}

TEST(SessionExport, SessionAndCacheRegisterWithGlobalRegistry) {
  TinySession tiny = TinySession::make();
  runtime::EngineConfig cfg = tiny.config();
  cfg.response_cache_capacity = 8;
  const std::size_t before = DiagnosticRegistry::global().size();
  {
    runtime::InferenceSession session(cfg);
    const std::vector<std::string> names = DiagnosticRegistry::global().names();
    EXPECT_EQ(DiagnosticRegistry::global().size(), before + 2);
    bool found_session = false, found_cache = false;
    for (const std::string& n : names) {
      if (n.rfind("session/", 0) == 0) found_session = true;
      if (n.rfind("response_cache/session/", 0) == 0) found_cache = true;
    }
    EXPECT_TRUE(found_session);
    EXPECT_TRUE(found_cache);

    const Value snap = DiagnosticRegistry::global().snapshot_of(session.diag_name());
    ASSERT_FALSE(snap.is_null());
    ASSERT_NE(snap.find("metrics"), nullptr);
    EXPECT_NE(snap.find("metrics")->find("submitted_instances"), nullptr);
    EXPECT_EQ(snap.find("workers")->as_int(), session.worker_count());
  }
  // Destruction unregisters both the session and its cache.
  EXPECT_EQ(DiagnosticRegistry::global().size(), before);
}

// A poller dumps the global registry while the session serves traffic
// and is finally torn down — the snapshot path must never observe a
// partially-destroyed provider (the ScopedRegistration teardown
// ordering under test).
TEST(SessionExport, SnapshotMidChurnStaysWellFormed) {
  TinySession tiny = TinySession::make();
  std::atomic<bool> stop{false};
  std::atomic<int> bad_documents{0};
  std::thread poller([&] {
    while (!stop.load()) {
      if (!json_well_formed(DiagnosticRegistry::global().to_json())) {
        bad_documents.fetch_add(1);
      }
    }
  });
  for (int round = 0; round < 3; ++round) {
    runtime::EngineConfig cfg = tiny.config();
    cfg.response_cache_capacity = 4;
    runtime::InferenceSession session(cfg);
    for (int i = 0; i < 24; ++i) {
      session.submit(tiny.ds.test.instance(i % tiny.ds.test.size()));
    }
    (void)session.drain();
  }  // session destruction races the poller's snapshots
  stop.store(true);
  poller.join();
  EXPECT_EQ(bad_documents.load(), 0);
}

// ---------------------------------------------------------------------------
// Ticker.

TEST(Ticker, RejectsBadArguments) {
  EXPECT_THROW(Ticker(nullptr, 0.0, [] {}), std::invalid_argument);
  EXPECT_THROW(Ticker(nullptr, -1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(Ticker(nullptr, 1.0, nullptr), std::invalid_argument);
}

TEST(Ticker, FiresOnWallClockAndStopsIdempotently) {
  std::atomic<int> fired{0};
  Ticker ticker(nullptr, 0.002, [&] { fired.fetch_add(1); });
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (fired.load() < 3 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(fired.load(), 3);
  ticker.stop();
  const int after_stop = fired.load();
  ticker.stop();  // idempotent
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(fired.load(), after_stop) << "no ticks may fire after stop()";
  EXPECT_EQ(ticker.ticks(), static_cast<std::uint64_t>(after_stop));
}

// Under a VirtualClock the tick instants are exactly t0 + k*period —
// the fixed-rate schedule is a deterministic event sequence, not a
// measured sleep.
TEST(Ticker, VirtualClockTicksAreExactlyPeriodic) {
  auto clock = std::make_shared<sim::VirtualClock>();
  std::mutex mutex;
  std::vector<sim::Clock::TimePoint> instants;
  std::condition_variable cv;
  {
    Ticker ticker(clock, 0.5, [&] {
      std::lock_guard<std::mutex> lock(mutex);
      instants.push_back(clock->now());
      cv.notify_all();
    });
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait_for(lock, std::chrono::seconds(10), [&] { return instants.size() >= 5; });
    ASSERT_GE(instants.size(), 5u);
  }
  const auto period = instants[1] - instants[0];
  EXPECT_DOUBLE_EQ(sim::Clock::seconds_between(instants[0], instants[1]), 0.5);
  for (std::size_t k = 2; k < 5; ++k) {
    EXPECT_EQ(instants[k] - instants[k - 1], period) << "tick " << k << " drifted";
  }
}

}  // namespace
}  // namespace meanet::diag
