// The virtual-time discrete-event core (sim/clock.h, sim/event_loop.h):
// EventQueue ordering property-tested against a std::stable_sort oracle,
// VirtualClock advance/timeout/notify semantics, the activity-dependent
// airtime sharing model of sim::SharedCell, clock-identity enforcement
// between a session and its shared cell, and the parity suite — a seeded
// serving scenario reproduced bit-identically across reruns and worker
// counts under VirtualClock, matching the WallClock run on every
// clock-independent quantity. Ends with the acceptance scenario: two
// sessions on a saturated shared cell replaying minutes of simulated
// traffic in a small fraction of wall time.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <random>
#include <thread>
#include <utility>
#include <vector>

#include "runtime/session.h"
#include "runtime/transport.h"
#include "sim/clock.h"
#include "sim/event_loop.h"
#include "sim/shared_cell.h"

#include "core/builders.h"
#include "core/trainer.h"
#include "sim/cloud_node.h"
#include "tiny_models.h"

namespace meanet::runtime {
namespace {

using meanet::testing::tiny_data_spec;
using meanet::testing::tiny_meanet_b;

// ---------------------------------------------------------------------
// EventQueue: (time, tie_seq) ordering vs a stable_sort oracle
// ---------------------------------------------------------------------

TEST(EventQueueOrder, MatchesStableSortOracle) {
  // Random times drawn from a small range so duplicates are common —
  // the tie-break (schedule order) is what the oracle pins down.
  std::mt19937 rng(7);
  const sim::Clock::TimePoint epoch{};
  constexpr int kEvents = 256;

  sim::EventQueue queue;
  std::vector<std::pair<sim::Clock::TimePoint, std::uint64_t>> oracle;
  for (int i = 0; i < kEvents; ++i) {
    const auto at = epoch + std::chrono::milliseconds(rng() % 16);
    const std::uint64_t seq = queue.schedule(at);
    oracle.emplace_back(at, seq);
  }
  ASSERT_EQ(queue.size(), static_cast<std::size_t>(kEvents));

  // Stable sort by time only: equal times keep insertion (= seq) order,
  // exactly the contract the queue promises.
  std::stable_sort(oracle.begin(), oracle.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });

  for (int i = 0; i < kEvents; ++i) {
    const auto event = queue.pop();
    ASSERT_TRUE(event.has_value()) << "queue drained early at " << i;
    EXPECT_EQ(event->at, oracle[static_cast<std::size_t>(i)].first) << "time order broke at " << i;
    EXPECT_EQ(event->seq, oracle[static_cast<std::size_t>(i)].second)
        << "tie-break diverged from schedule order at " << i;
  }
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(EventQueueOrder, CancelRemovesPendingEventsExactlyOnce) {
  sim::EventQueue queue;
  const sim::Clock::TimePoint epoch{};
  std::vector<std::uint64_t> seqs;
  for (int i = 0; i < 5; ++i) {
    seqs.push_back(queue.schedule(epoch + std::chrono::seconds(i)));
  }

  EXPECT_TRUE(queue.cancel(seqs[2]));
  EXPECT_FALSE(queue.cancel(seqs[2])) << "double-cancel must be a no-op";
  EXPECT_FALSE(queue.cancel(9999)) << "unknown seq must not cancel anything";
  EXPECT_EQ(queue.size(), 4u);

  // The earliest survivor pops; a popped event can no longer be
  // cancelled.
  const auto first = queue.pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->seq, seqs[0]);
  EXPECT_FALSE(queue.cancel(seqs[0]));

  std::vector<std::uint64_t> rest;
  while (const auto event = queue.pop()) rest.push_back(event->seq);
  EXPECT_EQ(rest, (std::vector<std::uint64_t>{seqs[1], seqs[3], seqs[4]}));
}

// ---------------------------------------------------------------------
// VirtualClock semantics
// ---------------------------------------------------------------------

TEST(VirtualClockBasics, SleepJumpsStraightToTheDeadline) {
  sim::VirtualClock clock;
  const auto virtual_start = clock.now();
  const auto wall_start = std::chrono::steady_clock::now();

  // An hour of virtual time; no registered actors, so the sleeper's own
  // pending deadline is immediately the earliest event.
  clock.sleep_for(3600.0);

  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  EXPECT_DOUBLE_EQ(sim::Clock::seconds_between(virtual_start, clock.now()), 3600.0);
  EXPECT_LT(wall_s, 5.0) << "a virtual hour must cost (much) less than real seconds";
  EXPECT_EQ(clock.advance_count(), 1u);
  EXPECT_EQ(clock.pending_timers(), 0u);
}

TEST(VirtualClockBasics, RegisteredActorSleepAdvancesWhenItIsTheOnlyActor) {
  sim::VirtualClock clock;
  sim::ActorGuard actor(clock);
  EXPECT_EQ(clock.registered_actors(), 1);
  const auto t0 = clock.now();
  clock.sleep_for(10.0);
  EXPECT_DOUBLE_EQ(sim::Clock::seconds_between(t0, clock.now()), 10.0);
}

TEST(VirtualClockBasics, TimedWaitTimesOutExactlyAtTheVirtualDeadline) {
  sim::VirtualClock clock;
  sim::ActorGuard actor(clock);
  std::mutex mutex;
  std::condition_variable cv;
  bool flag = false;

  const auto t0 = clock.now();
  const auto deadline = sim::Clock::after(t0, 5.0);
  std::unique_lock<std::mutex> lock(mutex);
  const bool satisfied = clock.wait(lock, cv, deadline, [&] { return flag; });

  EXPECT_FALSE(satisfied) << "nothing set the flag: the wait must time out";
  EXPECT_EQ(clock.now(), deadline) << "timeout must land exactly on the deadline";
  EXPECT_DOUBLE_EQ(sim::Clock::seconds_between(t0, clock.now()), 5.0);
}

TEST(VirtualClockBasics, NotifyWakesAWaiterWithoutAdvancingTime) {
  sim::VirtualClock clock;
  std::mutex mutex;
  std::condition_variable cv;
  bool flag = false;
  bool woke_with_flag = false;
  const auto t0 = clock.now();

  std::thread waiter([&] {
    sim::ActorGuard actor(clock);
    std::unique_lock<std::mutex> lock(mutex);
    woke_with_flag =
        clock.wait(lock, cv, sim::Clock::TimePoint::max(), [&] { return flag; });
  });

  // The mutating side: state change under the caller lock, then
  // notify() on the clock — the contract every runtime path follows.
  {
    std::lock_guard<std::mutex> lock(mutex);
    flag = true;
  }
  clock.notify(cv);
  waiter.join();

  EXPECT_TRUE(woke_with_flag);
  EXPECT_EQ(clock.now(), t0) << "an untimed wake must not move virtual time";
  EXPECT_EQ(clock.advance_count(), 0u);
}

TEST(VirtualClockBasics, ClockWaitsForRunnableActorsBeforeAdvancing) {
  sim::VirtualClock clock;
  std::atomic<bool> actor_registered{false};
  std::atomic<bool> actor_done{false};

  // A registered actor that stays *runnable* (wall-sleeping, not
  // clock-blocked) pins virtual time in place.
  std::thread actor([&] {
    sim::ActorGuard guard(clock);
    actor_registered.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    actor_done.store(true);
  });
  while (!actor_registered.load()) std::this_thread::yield();

  const auto wall_start = std::chrono::steady_clock::now();
  const auto t0 = clock.now();
  clock.sleep_for(1.0);  // unregistered sleeper: must wait for the actor
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  actor.join();

  EXPECT_TRUE(actor_done.load()) << "the sleep may only finish once the actor left";
  EXPECT_DOUBLE_EQ(sim::Clock::seconds_between(t0, clock.now()), 1.0);
  EXPECT_GE(wall_s, 0.05) << "virtual time must not advance while an actor is runnable";
}

// ---------------------------------------------------------------------
// Clock identity: a session and its shared cell must tick together
// ---------------------------------------------------------------------

TEST(VirtualClockLinks, MismatchedSessionAndCellClocksThrow) {
  auto virtual_clock = std::make_shared<sim::VirtualClock>();
  sim::SharedCellConfig cell_config;
  cell_config.clock = virtual_clock;
  TransportConfig transport;
  transport.cell = std::make_shared<sim::SharedCell>(cell_config);

  // Session on the default WallClock, cell on a VirtualClock: refused.
  EXPECT_THROW(SimulatedLink(transport, nullptr), std::invalid_argument);
  // A different VirtualClock instance is just as wrong.
  EXPECT_THROW(SimulatedLink(transport, std::make_shared<sim::VirtualClock>()),
               std::invalid_argument);
  // The same instance is fine.
  EXPECT_NO_THROW(SimulatedLink(transport, virtual_clock));
}

TEST(VirtualClockCells, FreshCellReportsZeroUtilizationWithinOneVirtualInstant) {
  sim::SharedCellConfig config;
  config.clock = std::make_shared<sim::VirtualClock>();
  sim::SharedCell cell(config);
  cell.attach();
  // No virtual time has elapsed since construction: the utilization
  // window is zero seconds wide and the old elapsed-time division would
  // produce NaN/inf here.
  const double utilization = cell.utilization();
  EXPECT_FALSE(std::isnan(utilization));
  EXPECT_DOUBLE_EQ(utilization, 0.0);
}

// ---------------------------------------------------------------------
// Activity-dependent airtime sharing
// ---------------------------------------------------------------------

TEST(ActivitySharing, LoneTransferMovesAtFullRateDespiteIdleStations) {
  auto clock = std::make_shared<sim::VirtualClock>();
  sim::SharedCellConfig config;
  config.uplink.throughput_mbps = 8.0;
  config.activity_dependent_sharing = true;
  config.clock = clock;
  sim::SharedCell cell(config);
  const int station = cell.attach();
  cell.attach();  // two more stations, both idle: they must not
  cell.attach();  // slow the lone transfer down

  const std::int64_t bytes = 1 << 20;
  const double solo_s = config.uplink.upload_time_s(bytes);
  const auto t0 = clock->now();
  sim::ActorGuard actor(*clock);
  const sim::TransferOutcome out = cell.uplink_transfer(station, 0, bytes);

  EXPECT_FALSE(out.cancelled);
  // Virtual timestamps are nanosecond-quantized, so the occupancy can
  // sit a sub-nanosecond off the analytic figure.
  EXPECT_NEAR(out.delay_s, solo_s, 1e-8);
  EXPECT_NEAR(sim::Clock::seconds_between(t0, clock->now()), solo_s, 1e-8);
}

TEST(ActivitySharing, TwoOverlappedTransfersEachTakeTwiceTheirSoloTime) {
  auto clock = std::make_shared<sim::VirtualClock>();
  sim::SharedCellConfig config;
  config.uplink.throughput_mbps = 8.0;
  config.activity_dependent_sharing = true;
  config.clock = clock;
  sim::SharedCell cell(config);
  const int s0 = cell.attach();
  const int s1 = cell.attach();

  const std::int64_t bytes = 1 << 20;
  const double solo_s = config.uplink.upload_time_s(bytes);
  const auto t0 = clock->now();

  // Both stations must register before either can block, or the clock
  // would run the first transfer to completion alone.
  std::mutex mutex;
  std::condition_variable cv;
  int ready = 0;
  auto rendezvous = [&] {
    std::unique_lock<std::mutex> lock(mutex);
    ++ready;
    cv.notify_all();
    cv.wait(lock, [&] { return ready == 2; });
  };

  sim::TransferOutcome out0, out1;
  std::thread a([&] {
    sim::ActorGuard guard(*clock);
    rendezvous();
    out0 = cell.uplink_transfer(s0, 0, bytes);
  });
  std::thread b([&] {
    sim::ActorGuard guard(*clock);
    rendezvous();
    out1 = cell.uplink_transfer(s1, 1, bytes);
  });
  a.join();
  b.join();

  // Fully overlapped equal transfers: each progresses at half rate the
  // whole way, so each occupies exactly twice its solo time and both
  // finish together.
  EXPECT_FALSE(out0.cancelled);
  EXPECT_FALSE(out1.cancelled);
  EXPECT_NEAR(out0.delay_s, 2.0 * solo_s, 1e-8);
  EXPECT_NEAR(out1.delay_s, 2.0 * solo_s, 1e-8);
  EXPECT_NEAR(sim::Clock::seconds_between(t0, clock->now()), 2.0 * solo_s, 1e-8);
}

TEST(ActivitySharing, StaticShareStaysTheDefaultModel) {
  // Default config: the flag is off, and a transfer on a two-station
  // cell is charged the full static contention factor even though the
  // second station is idle — the pre-existing oracle.
  auto clock = std::make_shared<sim::VirtualClock>();
  sim::SharedCellConfig config;
  config.uplink.throughput_mbps = 8.0;
  config.clock = clock;
  ASSERT_FALSE(config.activity_dependent_sharing);
  sim::SharedCell cell(config);
  const int station = cell.attach();
  cell.attach();  // idle, but statically counted

  const std::int64_t bytes = 1 << 20;
  const double solo_s = config.uplink.upload_time_s(bytes);
  sim::ActorGuard actor(*clock);
  const sim::TransferOutcome out = cell.uplink_transfer(station, 0, bytes);
  EXPECT_FALSE(out.cancelled);
  // The static delay is analytic (computed at reservation), so it is
  // exact — no clock quantization involved.
  EXPECT_DOUBLE_EQ(out.delay_s, 2.0 * solo_s);
}

// ---------------------------------------------------------------------
// Sessions under a VirtualClock: parity suite and acceptance scenario
// ---------------------------------------------------------------------

/// A fully trained tiny system shared by the session tests (built once:
/// training dominates the suite's runtime otherwise).
struct Fixture {
  data::SyntheticDataset ds;
  core::MEANet net;
  data::ClassDict dict;
  sim::CloudNode cloud;

  static Fixture& instance() {
    static Fixture fixture = make();
    return fixture;
  }

  static Fixture make() {
    util::Rng rng(1);
    data::SyntheticDataset ds = data::make_synthetic(tiny_data_spec(), 21);
    core::MEANet net = tiny_meanet_b(rng, 2);
    core::DistributedTrainer trainer(net);
    core::TrainOptions options;
    options.epochs = 5;
    options.batch_size = 16;
    util::Rng train_rng(2);
    trainer.train_main(ds.train, options, train_rng);
    data::ClassDict dict = trainer.select_hard_classes_from_validation(ds.test, 2);
    trainer.train_edge_blocks(ds.train, dict, options, train_rng);

    nn::Sequential cloud_model = core::build_cloud_classifier(2, 4, rng);
    core::TrainOptions cloud_options;
    cloud_options.epochs = 6;
    cloud_options.batch_size = 16;
    core::train_classifier(cloud_model, ds.train, cloud_options, train_rng);

    return Fixture{std::move(ds), std::move(net), std::move(dict),
                   sim::CloudNode(std::move(cloud_model))};
  }

  /// Everything cloud-routed, one payload per frame, a finite (loose)
  /// cloud deadline: distinct deadlines give every request and pending
  /// upload a totally ordered scheduling key, which is what makes the
  /// service order — and with it every virtual timestamp —
  /// reproducible at any worker count.
  EngineConfig config(int worker_threads) {
    EngineConfig cfg;
    cfg.net = &net;
    cfg.dict = &dict;
    cfg.policy_config.cloud_available = true;
    cfg.policy_config.entropy_threshold = 0.0;
    cfg.offload_mode = OffloadMode::kRawImage;
    cfg.cloud = &cloud;
    cfg.batch_size = 1;
    cfg.worker_threads = worker_threads;
    cfg.route_deadline_s[static_cast<std::size_t>(core::Route::kCloud)] = 100000.0;
    return cfg;
  }
};

/// Everything a scenario run produces, ordered by request id: the
/// clock-independent outcomes (route, prediction, transfer delays) and
/// the virtual-time figures (e2e latency, settle order) the determinism
/// contract covers.
struct ScenarioRun {
  std::vector<std::int64_t> ids;
  std::vector<core::Route> routes;
  std::vector<int> predictions;
  std::vector<double> upload_s;
  std::vector<double> download_s;
  std::vector<double> e2e_s;
  /// Ids ordered by settle instant (submit + e2e on the session clock).
  std::vector<std::int64_t> settle_order;
  double simulated_span_s = 0.0;
};

void fill_run(ScenarioRun& run, const std::vector<double>& submit_s,
              const std::vector<InferenceResult>& results) {
  std::vector<std::pair<double, std::int64_t>> settles;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const InferenceResult& r = results[i];
    run.ids.push_back(r.id);
    run.routes.push_back(r.route);
    run.predictions.push_back(r.prediction);
    run.upload_s.push_back(r.upload_time_s);
    run.download_s.push_back(r.download_time_s);
    run.e2e_s.push_back(r.e2e_latency_s);
    const double settle_at = submit_s[i] + r.e2e_latency_s;
    settles.emplace_back(settle_at, r.id);
    run.simulated_span_s = std::max(run.simulated_span_s, settle_at);
  }
  std::sort(settles.begin(), settles.end());
  for (const auto& [at, id] : settles) {
    (void)at;
    run.settle_order.push_back(id);
  }
}

/// One seeded single-session scenario: `frames` frames submitted with a
/// fixed inter-arrival gap by a clock-registered driver over a jittered
/// transport. `clock` null = WallClock (the pre-seam path).
ScenarioRun run_scenario(Fixture& f, std::shared_ptr<sim::Clock> clock, int workers,
                         int frames, double gap_s) {
  EngineConfig cfg = f.config(workers);
  TransportConfig transport;
  transport.base_latency_s = 0.0005;
  transport.jitter_s = 0.0002;
  transport.seed = 0x5EED;
  cfg.transport = transport;
  cfg.clock = clock;

  const std::shared_ptr<sim::Clock> clk = sim::resolve_clock(clock);
  ScenarioRun run;
  {
    InferenceSession session(cfg);
    std::vector<ResultHandle> handles;
    std::vector<double> submit_s;
    std::vector<InferenceResult> results;
    {
      // The driver registers as a clock actor: under a VirtualClock its
      // submit timestamps are then deterministic (time cannot drift
      // while it is between submits).
      sim::ActorGuard driver(*clk);
      const auto t0 = clk->now();
      for (int i = 0; i < frames; ++i) {
        submit_s.push_back(sim::Clock::seconds_between(t0, clk->now()));
        handles.push_back(session.submit(f.ds.test.instance(i)));
        clk->sleep_for(gap_s);
      }
      for (ResultHandle& handle : handles) {
        const std::vector<InferenceResult> r = handle.wait();
        EXPECT_EQ(r.size(), 1u);
        if (!r.empty()) results.push_back(r.front());
      }
    }
    session.drain();
    EXPECT_EQ(results.size(), static_cast<std::size_t>(frames));
    fill_run(run, submit_s, results);
  }
  return run;
}

void expect_same_outcomes(const ScenarioRun& a, const ScenarioRun& b) {
  ASSERT_EQ(a.ids, b.ids);
  EXPECT_EQ(a.routes, b.routes);
  EXPECT_EQ(a.predictions, b.predictions);
  for (std::size_t i = 0; i < a.ids.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.upload_s[i], b.upload_s[i]) << "upload diverged at request " << i;
    EXPECT_DOUBLE_EQ(a.download_s[i], b.download_s[i]) << "downlink diverged at request " << i;
  }
}

void expect_bit_identical_timings(const ScenarioRun& a, const ScenarioRun& b) {
  expect_same_outcomes(a, b);
  for (std::size_t i = 0; i < a.ids.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.e2e_s[i], b.e2e_s[i]) << "e2e latency diverged at request " << i;
  }
  EXPECT_EQ(a.settle_order, b.settle_order) << "settle order diverged";
}

TEST(VirtualTimeParity, VirtualRunsAreBitIdenticalAcrossRerunsAndWorkerCounts) {
  Fixture& f = Fixture::instance();
  constexpr int kFrames = 12;
  constexpr double kGapS = 0.0005;

  const ScenarioRun first =
      run_scenario(f, std::make_shared<sim::VirtualClock>(), 1, kFrames, kGapS);
  const ScenarioRun rerun =
      run_scenario(f, std::make_shared<sim::VirtualClock>(), 1, kFrames, kGapS);
  const ScenarioRun threaded =
      run_scenario(f, std::make_shared<sim::VirtualClock>(), 4, kFrames, kGapS);

  expect_bit_identical_timings(first, rerun);
  expect_bit_identical_timings(first, threaded);
  // Virtual e2e is pure simulated time: at least the request's own
  // transfer (up to nanosecond timestamp quantization — the analytic
  // delays are not ns-quantized, the clock is).
  for (std::size_t i = 0; i < first.ids.size(); ++i) {
    EXPECT_GE(first.e2e_s[i], first.upload_s[i] + first.download_s[i] - 1e-8);
  }
}

TEST(VirtualTimeParity, WallAndVirtualAgreeOnEveryClockIndependentOutcome) {
  Fixture& f = Fixture::instance();
  constexpr int kFrames = 12;
  constexpr double kGapS = 0.0005;

  // Wall leg: the exact same seeded scenario on the real clock — small
  // enough delays that it finishes in tens of milliseconds.
  const ScenarioRun wall = run_scenario(f, nullptr, 1, kFrames, kGapS);
  const ScenarioRun virt =
      run_scenario(f, std::make_shared<sim::VirtualClock>(), 1, kFrames, kGapS);

  // Routes, predictions and the simulated transfer delays are pure
  // functions of the scenario seed — identical across clock types. The
  // e2e figures are not compared: the wall leg pays real compute and
  // scheduling time on top of the simulated delays.
  expect_same_outcomes(wall, virt);
}

TEST(VirtualTimeAcceptance, TwoSessionsOnASaturatedCellReplayMinutesInMilliseconds) {
  Fixture& f = Fixture::instance();
  constexpr int kFrames = 16;  // per session

  struct TwoSessionRun {
    ScenarioRun a, b;
    /// Interleaved settle order across both sessions: (+id) for session
    /// A, (-id - 1) for session B.
    std::vector<std::int64_t> merged_settle_order;
    double simulated_span_s = 0.0;
    double wall_s = 0.0;
    double cell_utilization = 0.0;
  };

  auto run_pair = [&](int workers) {
    auto clock = std::make_shared<sim::VirtualClock>();
    // A slow, busy medium: frames over a 200 b/s uplink are
    // multi-second transfers, plus a 5 s propagation + cloud floor and
    // heavy jitter — hundreds of seconds of simulated traffic.
    sim::SharedCellConfig cell_config;
    cell_config.uplink.throughput_mbps = 0.0002;
    cell_config.downlink.throughput_mbps = 0.0002;
    cell_config.base_latency_s = 5.0;
    cell_config.jitter_s = 0.5;
    cell_config.seed = 0xF1EE7;
    cell_config.clock = clock;
    auto cell = std::make_shared<sim::SharedCell>(cell_config);
    TransportConfig transport;
    transport.cell = cell;

    EngineConfig cfg_a = f.config(workers);
    cfg_a.transport = transport;
    cfg_a.clock = clock;
    EngineConfig cfg_b = f.config(workers);
    cfg_b.transport = transport;
    cfg_b.clock = clock;

    TwoSessionRun out;
    const auto wall_start = std::chrono::steady_clock::now();
    {
      InferenceSession session_a(cfg_a);
      InferenceSession session_b(cfg_b);
      EXPECT_EQ(cell->stations(), 2);
      std::vector<ResultHandle> handles_a, handles_b;
      std::vector<double> submit_a, submit_b;
      std::vector<InferenceResult> results_a, results_b;
      {
        sim::ActorGuard driver(*clock);
        const auto t0 = clock->now();
        for (int i = 0; i < kFrames; ++i) {
          submit_a.push_back(sim::Clock::seconds_between(t0, clock->now()));
          handles_a.push_back(session_a.submit(f.ds.test.instance(i)));
          clock->sleep_for(0.05);
          submit_b.push_back(sim::Clock::seconds_between(t0, clock->now()));
          handles_b.push_back(session_b.submit(f.ds.test.instance(kFrames + i)));
          clock->sleep_for(0.05);
        }
        for (ResultHandle& h : handles_a) {
          const auto r = h.wait();
          EXPECT_EQ(r.size(), 1u);
          if (!r.empty()) results_a.push_back(r.front());
        }
        for (ResultHandle& h : handles_b) {
          const auto r = h.wait();
          EXPECT_EQ(r.size(), 1u);
          if (!r.empty()) results_b.push_back(r.front());
        }
      }
      session_a.drain();
      session_b.drain();
      fill_run(out.a, submit_a, results_a);
      fill_run(out.b, submit_b, results_b);

      std::vector<std::pair<double, std::int64_t>> merged;
      for (std::size_t i = 0; i < results_a.size(); ++i) {
        merged.emplace_back(submit_a[i] + results_a[i].e2e_latency_s, results_a[i].id);
      }
      for (std::size_t i = 0; i < results_b.size(); ++i) {
        merged.emplace_back(submit_b[i] + results_b[i].e2e_latency_s, -results_b[i].id - 1);
      }
      std::sort(merged.begin(), merged.end());
      for (const auto& [at, tag] : merged) {
        (void)at;
        out.merged_settle_order.push_back(tag);
      }
      out.simulated_span_s = std::max(out.a.simulated_span_s, out.b.simulated_span_s);
      out.cell_utilization = cell->utilization();
    }
    out.wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
    return out;
  };

  const TwoSessionRun first = run_pair(1);
  const TwoSessionRun rerun = run_pair(1);
  const TwoSessionRun threaded = run_pair(4);

  // Hundreds of simulated seconds on a heavily loaded medium...
  EXPECT_GE(first.simulated_span_s, 300.0);
  EXPECT_GT(first.cell_utilization, 0.5) << "the cell should be near saturation";
  // ...replayed in a small fraction of that, wall-clock. Optimized
  // builds must clear the ISSUE's 1% bar with a wide margin; Debug gets
  // slack for the unoptimized edge forwards.
#ifdef NDEBUG
  EXPECT_LT(first.wall_s, 0.01 * first.simulated_span_s);
#else
  EXPECT_LT(first.wall_s, 0.10 * first.simulated_span_s);
#endif

  // Bit-identical across reruns...
  expect_bit_identical_timings(first.a, rerun.a);
  expect_bit_identical_timings(first.b, rerun.b);
  EXPECT_EQ(first.merged_settle_order, rerun.merged_settle_order);
  EXPECT_DOUBLE_EQ(first.simulated_span_s, rerun.simulated_span_s);
  EXPECT_DOUBLE_EQ(first.cell_utilization, rerun.cell_utilization);
  // ...and across worker counts.
  expect_bit_identical_timings(first.a, threaded.a);
  expect_bit_identical_timings(first.b, threaded.b);
  EXPECT_EQ(first.merged_settle_order, threaded.merged_settle_order);
  EXPECT_DOUBLE_EQ(first.simulated_span_s, threaded.simulated_span_s);
}

TEST(VirtualTimeSessions, FreshSessionReportsZeroAirtimeUtilizationNotNaN) {
  Fixture& f = Fixture::instance();
  EngineConfig cfg = f.config(1);
  cfg.transport = TransportConfig{};
  cfg.clock = std::make_shared<sim::VirtualClock>();
  InferenceSession session(cfg);
  // Polled within the same virtual instant the session (and its private
  // cell) was created: zero airtime over a zero-width window.
  const SessionMetrics m = session.metrics();
  EXPECT_FALSE(std::isnan(m.cell_airtime_utilization));
  EXPECT_DOUBLE_EQ(m.cell_airtime_utilization, 0.0);
  EXPECT_DOUBLE_EQ(m.cell_busy_s, 0.0);
}

}  // namespace
}  // namespace meanet::runtime
