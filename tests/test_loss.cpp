#include <gtest/gtest.h>

#include <cmath>

#include "nn/loss.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace meanet::nn {
namespace {

TEST(SoftmaxCrossEntropy, UniformLogitsGiveLogK) {
  Tensor logits(Shape{2, 4}, 0.0f);
  const LossResult r = softmax_cross_entropy(logits, {0, 3});
  EXPECT_NEAR(r.loss, std::log(4.0f), 1e-5f);
}

TEST(SoftmaxCrossEntropy, ConfidentCorrectHasLowLoss) {
  Tensor logits(Shape{1, 3}, std::vector<float>{10.0f, 0.0f, 0.0f});
  const LossResult r = softmax_cross_entropy(logits, {0});
  EXPECT_LT(r.loss, 1e-3f);
}

TEST(SoftmaxCrossEntropy, GradientIsProbMinusOneHotOverBatch) {
  Tensor logits(Shape{2, 3}, std::vector<float>{1.0f, 2.0f, 3.0f, 0.0f, 0.0f, 0.0f});
  const LossResult r = softmax_cross_entropy(logits, {2, 1});
  const Tensor p = ops::softmax(logits);
  for (int n = 0; n < 2; ++n) {
    for (int c = 0; c < 3; ++c) {
      const float expected =
          (p.at(n, c) - ((n == 0 && c == 2) || (n == 1 && c == 1) ? 1.0f : 0.0f)) / 2.0f;
      EXPECT_NEAR(r.grad.at(n, c), expected, 1e-6f);
    }
  }
}

TEST(SoftmaxCrossEntropy, GradientMatchesFiniteDifference) {
  util::Rng rng(21);
  Tensor logits = Tensor::normal(Shape{3, 5}, rng);
  const std::vector<int> labels{1, 4, 0};
  const LossResult r = softmax_cross_entropy(logits, labels);
  const float eps = 1e-2f;
  for (std::int64_t i = 0; i < logits.numel(); i += 2) {
    const float orig = logits[i];
    logits[i] = orig + eps;
    const float plus = softmax_cross_entropy(logits, labels).loss;
    logits[i] = orig - eps;
    const float minus = softmax_cross_entropy(logits, labels).loss;
    logits[i] = orig;
    EXPECT_NEAR(r.grad[i], (plus - minus) / (2.0f * eps), 2e-3f);
  }
}

TEST(SoftmaxCrossEntropy, PredictionsAreArgmax) {
  Tensor logits(Shape{2, 3}, std::vector<float>{0.0f, 5.0f, 1.0f, 2.0f, 0.0f, 1.0f});
  const LossResult r = softmax_cross_entropy(logits, {1, 0});
  EXPECT_EQ(r.predictions, (std::vector<int>{1, 0}));
}

TEST(SoftmaxCrossEntropy, RejectsBadLabels) {
  Tensor logits(Shape{1, 3});
  EXPECT_THROW(softmax_cross_entropy(logits, {3}), std::out_of_range);
  EXPECT_THROW(softmax_cross_entropy(logits, {-1}), std::out_of_range);
  EXPECT_THROW(softmax_cross_entropy(logits, {0, 1}), std::invalid_argument);
}

TEST(SoftmaxCrossEntropy, GradRowsSumToZero) {
  util::Rng rng(22);
  const Tensor logits = Tensor::normal(Shape{4, 6}, rng);
  const LossResult r = softmax_cross_entropy(logits, {0, 1, 2, 3});
  for (int n = 0; n < 4; ++n) {
    float row = 0.0f;
    for (int c = 0; c < 6; ++c) row += r.grad.at(n, c);
    EXPECT_NEAR(row, 0.0f, 1e-6f);
  }
}

}  // namespace
}  // namespace meanet::nn
