// Tests for the asynchronous serving surface: ResultHandle semantics,
// the offload dispatcher's timeout -> edge-fallback path (NullBackend
// parity), decorator chain composition, the session metrics, and the
// response cache.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "runtime/backend_decorators.h"
#include "runtime/session.h"

#include "core/builders.h"
#include "core/trainer.h"
#include "sim/cloud_node.h"
#include "tiny_models.h"

namespace meanet::runtime {
namespace {

using meanet::testing::tiny_data_spec;
using meanet::testing::tiny_meanet_b;

/// A fully trained tiny system shared by all tests in this file (built
/// once: training dominates the suite's runtime otherwise).
struct Fixture {
  data::SyntheticDataset ds;
  core::MEANet net;
  data::ClassDict dict;
  sim::CloudNode cloud;

  static Fixture& instance() {
    static Fixture fixture = make();
    return fixture;
  }

  static Fixture make() {
    util::Rng rng(1);
    data::SyntheticDataset ds = data::make_synthetic(tiny_data_spec(), 21);
    core::MEANet net = tiny_meanet_b(rng, 2);
    core::DistributedTrainer trainer(net);
    core::TrainOptions options;
    options.epochs = 5;
    options.batch_size = 16;
    util::Rng train_rng(2);
    trainer.train_main(ds.train, options, train_rng);
    data::ClassDict dict = trainer.select_hard_classes_from_validation(ds.test, 2);
    trainer.train_edge_blocks(ds.train, dict, options, train_rng);

    nn::Sequential cloud_model = core::build_cloud_classifier(2, 4, rng);
    core::TrainOptions cloud_options;
    cloud_options.epochs = 6;
    cloud_options.batch_size = 16;
    core::train_classifier(cloud_model, ds.train, cloud_options, train_rng);

    return Fixture{std::move(ds), std::move(net), std::move(dict),
                   sim::CloudNode(std::move(cloud_model))};
  }

  /// Offloading config: low entropy threshold so the cloud route fires.
  EngineConfig config() {
    EngineConfig cfg;
    cfg.net = &net;
    cfg.dict = &dict;
    cfg.policy_config.cloud_available = true;
    cfg.policy_config.entropy_threshold = 0.3;
    cfg.batch_size = 16;
    return cfg;
  }
};

/// A backend whose answer is gated on an external release() — makes the
/// in-flight / settled handle states deterministic to observe.
class GatedBackend : public OffloadBackend {
 public:
  std::vector<int> classify(const OffloadPayload& payload) override {
    std::unique_lock<std::mutex> lock(mutex_);
    gate_.wait(lock, [&] { return released_; });
    return std::vector<int>(static_cast<std::size_t>(payload.images.shape().batch()), 0);
  }
  bool needs_images() const override { return true; }
  std::int64_t payload_bytes(const Shape&, const Shape&) const override { return 0; }
  std::string describe() const override { return "gated"; }

  void release() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      released_ = true;
    }
    gate_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable gate_;
  bool released_ = false;
};

/// Fails (throws) the first `failures` classify() calls, then delegates.
class FlakyBackend : public BackendDecorator {
 public:
  FlakyBackend(std::shared_ptr<OffloadBackend> inner, int failures)
      : BackendDecorator(std::move(inner)), remaining_(failures) {}

  std::vector<int> classify(const OffloadPayload& payload) override {
    if (remaining_ > 0) {
      --remaining_;
      throw std::runtime_error("transient link failure");
    }
    return inner().classify(payload);
  }
  std::string describe() const override { return "flaky+" + inner().describe(); }

 private:
  int remaining_;
};

TEST(ResultHandle, WaitTryGetReadySemantics) {
  Fixture& f = Fixture::instance();
  auto gate = std::make_shared<GatedBackend>();
  EngineConfig cfg = f.config();
  cfg.policy_config.entropy_threshold = 0.0;  // every instance -> cloud
  cfg.backend = gate;
  InferenceSession session(cfg);

  ResultHandle handle = session.submit(f.ds.test.instance(0));
  ASSERT_TRUE(handle.valid());
  EXPECT_EQ(handle.count(), 1);
  // The backend is gated, so the request cannot settle yet.
  EXPECT_FALSE(handle.ready());
  EXPECT_FALSE(handle.try_get().has_value());

  gate->release();
  const std::vector<InferenceResult> results = handle.wait();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results.front().id, handle.id());
  EXPECT_EQ(results.front().route, core::Route::kCloud);
  EXPECT_TRUE(results.front().offloaded);
  EXPECT_EQ(results.front().prediction, 0);  // the gated backend's answer

  // Reads are non-destructive: ready()/try_get()/wait() keep answering.
  EXPECT_TRUE(handle.ready());
  ASSERT_TRUE(handle.try_get().has_value());
  EXPECT_EQ(handle.wait().size(), 1u);
  // drain() still retires (and returns) the round.
  EXPECT_EQ(session.drain().size(), 1u);
}

TEST(ResultHandle, BatchSubmitYieldsContiguousIds) {
  Fixture& f = Fixture::instance();
  EngineConfig cfg = f.config();
  InferenceSession session(cfg);
  ResultHandle handle = session.submit(f.ds.test.images.slice_batch(0, 5));
  EXPECT_EQ(handle.count(), 5);
  const auto results = handle.wait();
  ASSERT_EQ(results.size(), 5u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].id, handle.id() + static_cast<std::int64_t>(i));
  }
  session.drain();
}

TEST(ResultHandle, InvalidHandleThrows) {
  ResultHandle handle;
  EXPECT_FALSE(handle.valid());
  EXPECT_THROW(handle.ready(), std::logic_error);
  EXPECT_THROW(handle.wait(), std::logic_error);
  EXPECT_THROW(handle.try_get(), std::logic_error);
}

TEST(OffloadTimeout, FallsBackToEdgeLikeNullBackend) {
  Fixture& f = Fixture::instance();

  EngineConfig null_cfg = f.config();  // offload_mode defaults to kNone
  InferenceSession null_session(null_cfg);
  const auto baseline = null_session.run(f.ds.test);

  // A 100ms link behind a 1ms timeout: every offload times out and the
  // instances must keep their edge predictions, exactly like NullBackend.
  auto slow = std::make_shared<LatencyInjectingBackend>(
      std::make_shared<RawImageBackend>(&f.cloud), 0.100);
  EngineConfig slow_cfg = f.config();
  slow_cfg.backend = slow;
  slow_cfg.offload_timeout_s = 0.001;
  InferenceSession slow_session(slow_cfg);
  const auto timed_out = slow_session.run(f.ds.test);

  ASSERT_EQ(timed_out.size(), baseline.size());
  int cloud_routed = 0;
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_EQ(timed_out[i].route, baseline[i].route) << i;
    EXPECT_EQ(timed_out[i].prediction, baseline[i].prediction) << i;
    EXPECT_FALSE(timed_out[i].offloaded);
    if (timed_out[i].route == core::Route::kCloud) ++cloud_routed;
  }
  EXPECT_GT(cloud_routed, 0);

  const SessionMetrics m = slow_session.metrics();
  EXPECT_EQ(m.offload_timeouts, cloud_routed);
  EXPECT_GT(m.offload_dispatches, 0);
  // The cloud route's service latency includes the timed-out wait.
  const RouteLatencyStats& cloud_stats = m.route(core::Route::kCloud);
  EXPECT_EQ(cloud_stats.count, cloud_routed);
  EXPECT_GT(cloud_stats.p50_s, 0.0);
  EXPECT_GE(cloud_stats.p95_s, cloud_stats.p50_s);
}

TEST(OffloadTimeout, ThreadedTimeoutRunMatchesSingleThreaded) {
  Fixture& f = Fixture::instance();

  auto make_backend = [&] {
    return std::make_shared<LatencyInjectingBackend>(
        std::make_shared<RawImageBackend>(&f.cloud), 0.100);
  };
  EngineConfig single = f.config();
  single.backend = make_backend();
  single.offload_timeout_s = 0.001;
  InferenceSession single_session(single);
  const auto single_results = single_session.run(f.ds.test);

  EngineConfig threaded = f.config();
  threaded.backend = make_backend();
  threaded.offload_timeout_s = 0.001;
  threaded.worker_threads = 4;  // all sharing the one net
  threaded.batch_size = 8;
  threaded.queue_capacity = 4;
  InferenceSession threaded_session(threaded);
  ASSERT_EQ(threaded_session.worker_count(), 4);
  const auto threaded_results = threaded_session.run(f.ds.test);

  ASSERT_EQ(threaded_results.size(), single_results.size());
  for (std::size_t i = 0; i < single_results.size(); ++i) {
    EXPECT_EQ(threaded_results[i].route, single_results[i].route) << i;
    EXPECT_EQ(threaded_results[i].prediction, single_results[i].prediction) << i;
  }
}

TEST(BackendDecorators, LosslessChainMatchesBareBackend) {
  Fixture& f = Fixture::instance();
  EngineConfig bare = f.config();
  bare.offload_mode = OffloadMode::kRawImage;
  bare.cloud = &f.cloud;
  InferenceSession bare_session(bare);
  const auto expected = bare_session.run(f.ds.test);

  // A chain that perturbs nothing: 0% loss, 0ms latency, retries unused.
  EngineConfig chained = f.config();
  chained.backend = std::make_shared<RetryingBackend>(
      std::make_shared<LossyBackend>(
          std::make_shared<LatencyInjectingBackend>(
              std::make_shared<RawImageBackend>(&f.cloud), 0.0),
          0.0),
      2);
  InferenceSession chained_session(chained);
  const auto actual = chained_session.run(f.ds.test);

  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].route, expected[i].route) << i;
    EXPECT_EQ(actual[i].prediction, expected[i].prediction) << i;
    EXPECT_EQ(actual[i].offloaded, expected[i].offloaded) << i;
  }
}

TEST(BackendDecorators, TotalLossBehavesLikeNullBackend) {
  Fixture& f = Fixture::instance();
  EngineConfig cfg = f.config();
  cfg.backend = std::make_shared<LossyBackend>(
      std::make_shared<RawImageBackend>(&f.cloud), 1.0);
  InferenceSession session(cfg);
  int cloud_routed = 0;
  for (const InferenceResult& r : session.run(f.ds.test)) {
    if (r.route != core::Route::kCloud) continue;
    ++cloud_routed;
    EXPECT_FALSE(r.offloaded);
    EXPECT_EQ(r.prediction, r.edge_prediction);
  }
  EXPECT_GT(cloud_routed, 0);
}

TEST(BackendDecorators, RetryRecoversFromTransientFailures) {
  Fixture& f = Fixture::instance();
  EngineConfig cfg = f.config();
  // The flaky link throws twice per session lifetime; three attempts on
  // the first payload absorb them.
  cfg.backend = std::make_shared<RetryingBackend>(
      std::make_shared<FlakyBackend>(std::make_shared<RawImageBackend>(&f.cloud), 2), 3);
  InferenceSession session(cfg);
  int cloud_routed = 0;
  for (const InferenceResult& r : session.run(f.ds.test)) {
    if (r.route != core::Route::kCloud) continue;
    ++cloud_routed;
    EXPECT_TRUE(r.offloaded);  // every payload eventually got through
  }
  EXPECT_GT(cloud_routed, 0);
}

TEST(BackendDecorators, ChainForwardsContractAndDescription) {
  Fixture& f = Fixture::instance();
  auto raw = std::make_shared<RawImageBackend>(&f.cloud);
  auto chain = std::make_shared<RetryingBackend>(
      std::make_shared<LossyBackend>(
          std::make_shared<LatencyInjectingBackend>(raw, 0.001), 0.5),
      3);
  EXPECT_TRUE(chain->needs_images());
  EXPECT_FALSE(chain->needs_features());
  const Shape image{1, 2, 8, 8};
  const Shape feature{1, 4, 4, 4};
  EXPECT_EQ(chain->payload_bytes(image, feature), raw->payload_bytes(image, feature));
  EXPECT_EQ(chain->describe(), "retry(3)+lossy(0.5)+latency(1ms)+raw-image");
  EXPECT_THROW(LatencyInjectingBackend(nullptr, 0.0), std::invalid_argument);
  EXPECT_THROW(LossyBackend(raw, 1.5), std::invalid_argument);
  EXPECT_THROW(RetryingBackend(raw, 0), std::invalid_argument);
}

TEST(SessionMetrics, PercentilesAndCountsAreSaneUnderFourWorkers) {
  Fixture& f = Fixture::instance();
  EngineConfig cfg = f.config();
  cfg.offload_mode = OffloadMode::kRawImage;
  cfg.cloud = &f.cloud;
  cfg.worker_threads = 4;  // all sharing the one net
  cfg.batch_size = 8;
  InferenceSession session(cfg);

  // Feed single frames so the queue actually backs up across workers.
  for (int i = 0; i < f.ds.test.size(); ++i) session.submit(f.ds.test.instance(i));
  const auto results = session.drain();
  const SessionMetrics m = session.metrics();

  EXPECT_EQ(m.submitted_instances, f.ds.test.size());
  EXPECT_EQ(m.completed_instances, f.ds.test.size());
  EXPECT_GE(m.queue_depth_high_water, 1);
  const core::RouteCounts routes = count_routes(results);
  EXPECT_EQ(m.route_count(core::Route::kMainExit), routes.main_exit);
  EXPECT_EQ(m.route_count(core::Route::kExtensionExit), routes.extension_exit);
  EXPECT_EQ(m.route_count(core::Route::kCloud), routes.cloud);
  std::int64_t total = 0;
  for (const RouteLatencyStats& stats : m.per_route) {
    total += stats.count;
    if (stats.count > 0) {
      EXPECT_GE(stats.p50_s, 0.0);
      EXPECT_LE(stats.p50_s, stats.p95_s);
      EXPECT_LE(stats.p95_s, stats.p99_s);
    }
  }
  EXPECT_EQ(total, f.ds.test.size());
}

TEST(SessionMetrics, PercentileIsNearestRank) {
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0, 4.0}, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0, 4.0}, 0.95), 4.0);
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0, 4.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.99), 7.0);
}

TEST(ResponseCache, SecondPassIsServedFromCache) {
  Fixture& f = Fixture::instance();
  EngineConfig cfg = f.config();
  cfg.offload_mode = OffloadMode::kRawImage;
  cfg.cloud = &f.cloud;
  cfg.response_cache_capacity = f.ds.test.size();
  InferenceSession session(cfg);
  // With an always-answering backend every result is fully served, so
  // every frame is cacheable and the replay must hit on all of them.

  const auto first = session.run(f.ds.test);
  const SessionMetrics after_first = session.metrics();
  EXPECT_EQ(after_first.cache_hits, 0);
  EXPECT_GT(after_first.cache_entries, 0);

  const auto second = session.run(f.ds.test);
  const SessionMetrics after_second = session.metrics();
  EXPECT_EQ(after_second.cache_hits, f.ds.test.size());

  ASSERT_EQ(second.size(), first.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_FALSE(first[i].cached);
    EXPECT_TRUE(second[i].cached) << i;
    EXPECT_EQ(second[i].prediction, first[i].prediction) << i;
    EXPECT_EQ(second[i].route, first[i].route) << i;
    EXPECT_EQ(second[i].offloaded, first[i].offloaded) << i;
  }
}

TEST(ResponseCache, DedupsRepeatedFramesWithinAStream) {
  Fixture& f = Fixture::instance();
  EngineConfig cfg = f.config();
  cfg.offload_mode = OffloadMode::kRawImage;  // fully served -> cacheable
  cfg.cloud = &f.cloud;
  cfg.response_cache_capacity = 8;
  InferenceSession session(cfg);
  const Tensor frame = f.ds.test.instance(3);
  const auto a = session.submit(frame).wait();
  const auto b = session.submit(frame).wait();
  session.drain();
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_FALSE(a.front().cached);
  EXPECT_TRUE(b.front().cached);
  EXPECT_EQ(b.front().prediction, a.front().prediction);
  EXPECT_EQ(session.metrics().cache_hits, 1);
}

TEST(ResponseCache, DegradedOffloadOutcomesAreNotCachedAndHitsCostNothing) {
  Fixture& f = Fixture::instance();
  EngineConfig cfg = f.config();  // kNone: cloud-routed -> edge fallback
  cfg.response_cache_capacity = f.ds.test.size();
  cfg.costs.main_macs = 1000;
  cfg.costs.extension_macs = 500;
  InferenceSession session(cfg);

  const auto first = session.run(f.ds.test);
  const std::int64_t cloud_routed = count_routes(first).cloud;
  ASSERT_GT(cloud_routed, 0);

  const auto second = session.run(f.ds.test);
  // Fallback answers (cloud-routed, never offloaded) must not be frozen
  // into the cache — those frames are re-served fresh on the replay.
  EXPECT_EQ(session.metrics().cache_hits, f.ds.test.size() - cloud_routed);
  for (const InferenceResult& r : second) {
    if (r.route == core::Route::kCloud) {
      EXPECT_FALSE(r.cached);
    } else {
      EXPECT_TRUE(r.cached);
      // A hit re-runs nothing, so it charges nothing.
      EXPECT_DOUBLE_EQ(r.compute_energy_j, 0.0);
      EXPECT_DOUBLE_EQ(r.compute_time_s, 0.0);
    }
  }
}

TEST(NeededSignals, PolicyMasksMatchWhatTheyRead) {
  Fixture& f = Fixture::instance();
  EXPECT_EQ(core::EntropyThresholdPolicy(f.dict, core::PolicyConfig{}).needed_signals(),
            core::kSignalEntropy);
  EXPECT_EQ(core::ConfidenceMarginPolicy(f.dict, core::MarginPolicyConfig{}).needed_signals(),
            core::kSignalMargin);
  EXPECT_EQ(core::AlwaysExtendPolicy().needed_signals(), 0u);
}

TEST(NeededSignals, EngineSkipsSignalsThePolicyDoesNotRead) {
  Fixture& f = Fixture::instance();
  // Entropy policy: entropy is computed, margin reduction is skipped.
  EngineConfig entropy_cfg = f.config();
  InferenceSession entropy_session(entropy_cfg);
  for (const InferenceResult& r : entropy_session.run(f.ds.test)) {
    EXPECT_GT(r.entropy, 0.0f);
    EXPECT_EQ(r.margin, 0.0f);
  }
  // Margin policy: the reverse.
  EngineConfig margin_cfg = f.config();
  core::MarginPolicyConfig margin;
  margin.margin_threshold = 0.35;
  margin.cloud_available = true;
  margin_cfg.policy = std::make_shared<core::ConfidenceMarginPolicy>(f.dict, margin);
  InferenceSession margin_session(margin_cfg);
  for (const InferenceResult& r : margin_session.run(f.ds.test)) {
    EXPECT_EQ(r.entropy, 0.0f);
    EXPECT_GT(r.margin, 0.0f);
  }
}

}  // namespace
}  // namespace meanet::runtime
