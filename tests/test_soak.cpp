// Deterministic soak / property harness for the async serving layer
// (ctest label: "soak"). Every phase runs under a sim::VirtualClock, so
// the injected link latencies, deadlines and WiFi uploads are scheduled
// events instead of wall sleeps — thousands of ops finish in seconds.
//
// Three phases:
//   1. Churn: thousands of mixed submit / cancel / wait / drain ops
//      against a lossy + jittered backend under 4 workers, with a
//      cancel storm covering well over 25% of the in-flight requests.
//      Asserts the lifecycle invariants — every submitted instance ends
//      up in exactly one of completed/cancelled/failed, callbacks fire
//      exactly once, and no completion state leaks.
//   2. Determinism: the same seeded serial op stream run twice against
//      a lossy link must produce byte-identical per-frame predictions
//      and therefore identical aggregate accuracy.
//   3. Deadline tail: on a jittered WiFi-timed link, the cloud route's
//      p99 end-to-end latency is bounded by the per-route deadline
//      while accuracy degrades only to edge-only (NullBackend) parity,
//      never below.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <vector>

#include "runtime/backend_decorators.h"
#include "runtime/session.h"
#include "runtime/transport.h"

#include "core/builders.h"
#include "core/trainer.h"
#include "sim/cloud_node.h"
#include "sim/event_loop.h"
#include "tiny_models.h"

namespace meanet::runtime {
namespace {

using meanet::testing::tiny_data_spec;
using meanet::testing::tiny_meanet_b;

struct Fixture {
  data::SyntheticDataset ds;
  core::MEANet net;
  data::ClassDict dict;
  sim::CloudNode cloud;

  static Fixture& instance() {
    static Fixture fixture = make();
    return fixture;
  }

  static Fixture make() {
    util::Rng rng(1);
    data::SyntheticDataset ds = data::make_synthetic(tiny_data_spec(), 21);
    core::MEANet net = tiny_meanet_b(rng, 2);
    core::DistributedTrainer trainer(net);
    core::TrainOptions options;
    options.epochs = 5;
    options.batch_size = 16;
    util::Rng train_rng(2);
    trainer.train_main(ds.train, options, train_rng);
    data::ClassDict dict = trainer.select_hard_classes_from_validation(ds.test, 2);
    trainer.train_edge_blocks(ds.train, dict, options, train_rng);

    nn::Sequential cloud_model = core::build_cloud_classifier(2, 4, rng);
    core::TrainOptions cloud_options;
    cloud_options.epochs = 6;
    cloud_options.batch_size = 16;
    core::train_classifier(cloud_model, ds.train, cloud_options, train_rng);

    return Fixture{std::move(ds), std::move(net), std::move(dict),
                   sim::CloudNode(std::move(cloud_model))};
  }

  EngineConfig config() {
    EngineConfig cfg;
    cfg.net = &net;
    cfg.dict = &dict;
    cfg.policy_config.cloud_available = true;
    cfg.policy_config.entropy_threshold = 0.3;
    return cfg;
  }
};

TEST(Soak, ChurnWithCancelStormKeepsInvariantsAndLeaksNothing) {
  Fixture& f = Fixture::instance();
  const std::int64_t live_baseline = detail::RequestState::live_count.load();

  constexpr int kOps = 2500;
  util::Rng rng(0x50AC);
  std::vector<std::shared_ptr<std::atomic<int>>> fired;
  std::int64_t submitted_requests = 0, submitted_instances = 0;
  std::int64_t cancel_attempts = 0, cancel_wins = 0;
  std::int64_t waited_results = 0, drained_results = 0;
  SessionMetrics final_metrics;
  {
    auto clock = std::make_shared<sim::VirtualClock>();
    EngineConfig cfg = f.config();
    cfg.clock = clock;
    cfg.backend = std::make_shared<LossyBackend>(
        std::make_shared<LatencyInjectingBackend>(
            std::make_shared<RawImageBackend>(&f.cloud), 0.0005, /*jitter_s=*/0.002,
            /*seed=*/0xBEEF, clock),
        /*loss_rate=*/0.25, /*seed=*/0xFEED);
    cfg.offload_timeout_s = 0.002;
    cfg.route_deadline_s[static_cast<std::size_t>(core::Route::kCloud)] = 0.250;
    cfg.worker_threads = 4;  // all sharing the one net
    cfg.batch_size = 4;
    cfg.queue_capacity = 64;
    cfg.response_cache_capacity = 32;
    InferenceSession session(cfg);
    // The churn driver registers too: virtual time only moves while it
    // is blocked in submit (queue full), wait or drain.
    sim::ActorGuard driver(*clock);

    std::vector<ResultHandle> live;     // handles not yet waited
    std::vector<ResultHandle> retired;  // waited (kept for the final audit)
    auto audit = [&](ResultHandle& h) {
      const auto results = h.wait();
      if (h.cancelled()) {
        ASSERT_TRUE(results.empty());
      } else {
        ASSERT_EQ(static_cast<int>(results.size()), h.count());
        waited_results += static_cast<std::int64_t>(results.size());
      }
      retired.push_back(h);
    };

    for (int op = 0; op < kOps; ++op) {
      const int dice = rng.uniform_int(0, 99);
      if (dice < 60 || live.empty()) {
        // Submit 1..3 instances; 1 in 10 requests carries an
        // already-hopeless deadline, 1 in 2 a completion callback.
        const int instances = rng.uniform_int(1, 3);
        const int start = rng.uniform_int(0, f.ds.test.size() - instances);
        SubmitOptions opts;
        if (rng.bernoulli(0.1)) opts.deadline_s = 0.0;
        if (rng.bernoulli(0.5)) {
          auto counter = std::make_shared<std::atomic<int>>(0);
          fired.push_back(counter);
          opts.on_complete = [counter](const ResultHandle&) { ++*counter; };
        }
        live.push_back(
            session.submit(f.ds.test.images.slice_batch(start, instances), std::move(opts)));
        ++submitted_requests;
        submitted_instances += instances;
      } else if (dice < 85) {
        // Cancel storm: well over 25% of requests see a cancel attempt.
        ResultHandle& victim =
            live[static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(live.size()) - 1))];
        ++cancel_attempts;
        if (victim.cancel()) ++cancel_wins;
      } else if (dice < 95) {
        // Wait (and audit) a random in-flight handle.
        const std::size_t pick =
            static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(live.size()) - 1));
        audit(live[pick]);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      } else {
        // Drain the round (results of cancelled requests never appear).
        drained_results += static_cast<std::int64_t>(session.drain().size());
      }
    }
    for (ResultHandle& h : live) audit(h);
    drained_results += static_cast<std::int64_t>(session.drain().size());

    // All requests settled: the counters must balance exactly.
    final_metrics = session.metrics();
    EXPECT_EQ(final_metrics.submitted_instances, submitted_instances);
    EXPECT_EQ(final_metrics.failed_instances, 0);
    EXPECT_EQ(final_metrics.completed_instances + final_metrics.cancelled_instances +
                  final_metrics.failed_instances,
              submitted_instances);
    std::int64_t per_route = 0;
    for (const RouteLatencyStats& stats : final_metrics.per_route) per_route += stats.count;
    EXPECT_EQ(per_route, final_metrics.completed_instances);
    EXPECT_LE(final_metrics.cache_entries, 32);
    // (Bounded by submitted, not completed: a request can hit the cache
    // and still lose its settle to a racing cancel.)
    EXPECT_LE(final_metrics.cache_hits, final_metrics.submitted_instances);
    EXPECT_LE(final_metrics.offload_timeouts + final_metrics.deadline_expirations,
              final_metrics.completed_instances);
    EXPECT_LE(final_metrics.queue_depth_high_water, 64);
    EXPECT_GT(final_metrics.offload_dispatches, 0);
  }  // session destruction flushes callbacks and joins every thread

  // The storm really was a storm, and it left no half-states behind.
  EXPECT_GE(cancel_attempts * 4, submitted_requests) << "cancel storm below 25%";
  EXPECT_GT(cancel_wins, 0);
  EXPECT_EQ(final_metrics.cancelled_instances + waited_results, submitted_instances);

  // Exactly-once callbacks, cancelled or completed alike.
  for (const auto& counter : fired) EXPECT_EQ(counter->load(), 1);

  // No completion-state leaks: every RequestState died with its handles.
  fired.clear();
  EXPECT_EQ(detail::RequestState::live_count.load(), live_baseline);
}

/// One serial pass over `frames` frame indices: submit -> wait each,
/// collecting predictions; the lossy link's seeded drop stream makes
/// the outcome a pure function of the seeds.
struct SerialRun {
  std::vector<int> predictions;
  std::int64_t offloaded = 0;
  double accuracy = 0.0;
  SessionMetrics metrics;
};

SerialRun serial_run(Fixture& f, const std::vector<int>& frames) {
  auto clock = std::make_shared<sim::VirtualClock>();
  EngineConfig cfg = f.config();
  cfg.clock = clock;
  cfg.backend = std::make_shared<LossyBackend>(
      std::make_shared<LatencyInjectingBackend>(std::make_shared<RawImageBackend>(&f.cloud),
                                                0.0002, /*jitter_s=*/0.001, /*seed=*/88, clock),
      /*loss_rate=*/0.3, /*seed=*/77);
  cfg.batch_size = 1;
  cfg.response_cache_capacity = 16;
  InferenceSession session(cfg);
  sim::ActorGuard driver(*clock);
  SerialRun out;
  std::int64_t correct = 0;
  for (const int frame : frames) {
    const auto results = session.submit(f.ds.test.instance(frame)).wait();
    EXPECT_EQ(results.size(), 1u);
    const InferenceResult& r = results.front();
    out.predictions.push_back(r.prediction);
    if (r.offloaded) ++out.offloaded;
    if (r.prediction == f.ds.test.labels[static_cast<std::size_t>(frame)]) ++correct;
    if (out.predictions.size() % 64 == 0) session.drain();
  }
  session.drain();
  out.accuracy = static_cast<double>(correct) / static_cast<double>(frames.size());
  out.metrics = session.metrics();
  return out;
}

TEST(Soak, SameSeedSameAggregateAccuracyOnALossyJitteredLink) {
  Fixture& f = Fixture::instance();
  // A fixed (seeded) stream of 400 frame picks with plenty of repeats,
  // so the LRU cache, the lossy link, and the offload path all stay hot.
  util::Rng rng(0xD1CE);
  std::vector<int> frames;
  for (int i = 0; i < 400; ++i) frames.push_back(rng.uniform_int(0, f.ds.test.size() - 1));

  const SerialRun a = serial_run(f, frames);
  const SerialRun b = serial_run(f, frames);

  ASSERT_EQ(a.predictions.size(), b.predictions.size());
  for (std::size_t i = 0; i < a.predictions.size(); ++i) {
    ASSERT_EQ(a.predictions[i], b.predictions[i]) << "prediction diverged at frame op " << i;
  }
  EXPECT_DOUBLE_EQ(a.accuracy, b.accuracy);
  EXPECT_EQ(a.offloaded, b.offloaded);
  EXPECT_EQ(a.metrics.completed_instances, b.metrics.completed_instances);
  EXPECT_EQ(a.metrics.cache_hits, b.metrics.cache_hits);
  EXPECT_EQ(a.metrics.offload_dispatches, b.metrics.offload_dispatches);
  // The stream exercised what it claims to exercise.
  EXPECT_GT(a.metrics.cache_hits, 0);
  EXPECT_GT(a.offloaded, 0);
  EXPECT_GT(a.metrics.route_count(core::Route::kCloud) - a.offloaded, 0)
      << "the lossy link never dropped anything";
}

TEST(Soak, DeadlineBoundsTailLatencyAtEdgeParityOnAWifiTimedLink) {
  Fixture& f = Fixture::instance();

  // Edge-only baseline: the accuracy floor deadlines may degrade to,
  // never below.
  EngineConfig null_cfg = f.config();
  InferenceSession null_session(null_cfg);
  const auto baseline = null_session.run(f.ds.test);

  // A WiFi cell so slow that one 128-byte frame upload takes ~80ms,
  // plus up to 20ms of seeded jitter.
  TransportConfig transport;
  transport.wifi.throughput_mbps = 0.0128;
  transport.jitter_s = 0.020;
  transport.seed = 0x31415;
  const double upload_s = transport.wifi.upload_time_s(128);
  ASSERT_NEAR(upload_s, 0.080, 0.001);
  constexpr double kDeadlineS = 0.012;
  constexpr int kFrames = 12;

  auto closed_loop = [&](bool with_deadline) {
    auto clock = std::make_shared<sim::VirtualClock>();
    EngineConfig cfg = f.config();
    cfg.offload_mode = OffloadMode::kRawImage;
    cfg.cloud = &f.cloud;
    cfg.transport = transport;
    cfg.clock = clock;
    if (with_deadline) {
      cfg.route_deadline_s[static_cast<std::size_t>(core::Route::kCloud)] = kDeadlineS;
    }
    InferenceSession session(cfg);
    sim::ActorGuard driver(*clock);
    std::vector<InferenceResult> results;
    // Closed loop (submit -> wait) so the tail measures the link and
    // the deadline, not self-inflicted queueing.
    for (int i = 0; i < kFrames; ++i) {
      results.push_back(session.submit(f.ds.test.instance(i)).wait().front());
    }
    session.drain();
    return std::make_pair(std::move(results), session.metrics());
  };

  const auto [no_deadline_results, no_deadline_metrics] = closed_loop(false);
  const auto [deadline_results, deadline_metrics] = closed_loop(true);

  const double no_deadline_p99 = no_deadline_metrics.route(core::Route::kCloud).p99_s;
  const double deadline_p99 = deadline_metrics.route(core::Route::kCloud).p99_s;
  ASSERT_GT(no_deadline_metrics.route_count(core::Route::kCloud), 0);

  // Without a deadline every cloud frame pays the full upload.
  EXPECT_GE(no_deadline_p99, upload_s);
  // With one, the tail is bounded by the deadline (plus edge-pass and
  // scheduling slack — generous for CI, still far under the upload).
  EXPECT_LE(deadline_p99, kDeadlineS + 0.048);
  EXPECT_LT(deadline_p99, no_deadline_p99);
  EXPECT_EQ(deadline_metrics.deadline_expirations,
            deadline_metrics.route_count(core::Route::kCloud));

  // Accuracy degrades exactly to edge-only parity, never below: every
  // expired frame carries the same prediction NullBackend would give.
  for (int i = 0; i < kFrames; ++i) {
    const InferenceResult& r = deadline_results[static_cast<std::size_t>(i)];
    EXPECT_EQ(r.route, baseline[static_cast<std::size_t>(i)].route) << i;
    EXPECT_EQ(r.prediction, baseline[static_cast<std::size_t>(i)].prediction) << i;
    if (r.route == core::Route::kCloud) {
      EXPECT_FALSE(r.offloaded) << i;
      EXPECT_TRUE(r.deadline_expired) << i;
    }
  }
}

}  // namespace
}  // namespace meanet::runtime
