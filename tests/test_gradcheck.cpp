// Finite-difference gradient checks for every trainable layer and both
// composite blocks — the core correctness property of the backprop
// substrate.
#include <gtest/gtest.h>

#include <memory>

#include "gradcheck_util.h"
#include "nn/activations.h"
#include "nn/batchnorm2d.h"
#include "nn/conv2d.h"
#include "nn/flatten.h"
#include "nn/inverted_residual.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "nn/residual_block.h"
#include "nn/sequential.h"

namespace meanet::nn {
namespace {

using meanet::testing::check_layer_gradients;
using meanet::testing::GradCheckOptions;

TEST(GradCheck, Conv2dBasic) {
  util::Rng rng(100);
  Conv2d conv(2, 3, 3, 1, 1, true, rng);
  check_layer_gradients(conv, Tensor::normal(Shape{2, 2, 5, 5}, rng), rng);
}

TEST(GradCheck, Conv2dStridedNoPadding) {
  util::Rng rng(101);
  Conv2d conv(3, 2, 3, 2, 0, false, rng);
  check_layer_gradients(conv, Tensor::normal(Shape{2, 3, 7, 7}, rng), rng);
}

TEST(GradCheck, Conv2dOneByOne) {
  util::Rng rng(102);
  Conv2d conv(4, 2, 1, 1, 0, false, rng);
  check_layer_gradients(conv, Tensor::normal(Shape{2, 4, 3, 3}, rng), rng);
}

TEST(GradCheck, DepthwiseConv2d) {
  util::Rng rng(103);
  DepthwiseConv2d dw(3, 3, 1, 1, rng);
  check_layer_gradients(dw, Tensor::normal(Shape{2, 3, 5, 5}, rng), rng);
}

TEST(GradCheck, DepthwiseConv2dStrided) {
  util::Rng rng(104);
  DepthwiseConv2d dw(2, 3, 2, 1, rng);
  check_layer_gradients(dw, Tensor::normal(Shape{1, 2, 6, 6}, rng), rng);
}

TEST(GradCheck, Linear) {
  util::Rng rng(105);
  Linear fc(6, 4, rng);
  check_layer_gradients(fc, Tensor::normal(Shape{3, 6}, rng), rng);
}

TEST(GradCheck, BatchNormTrainMode) {
  util::Rng rng(106);
  BatchNorm2d bn(3);
  GradCheckOptions opts;
  opts.mode = Mode::kTrain;
  // Batch statistics make the gradient couple across instances; the
  // analytic formula must match the full dependency.
  check_layer_gradients(bn, Tensor::normal(Shape{4, 3, 3, 3}, rng), rng, opts);
}

TEST(GradCheck, BatchNormRunningStatisticsMode) {
  // Eval-mode forwards are cache-free and no longer support backward;
  // the constant-statistics gradient path (statistics treated as
  // constants, not functions of the batch) is reached by freezing the
  // layer in train mode — the paper's "fixed main block" configuration.
  // Frozen layers accumulate no parameter gradients, so only the input
  // gradient is checked.
  util::Rng rng(107);
  BatchNorm2d bn(2);
  bn.set_frozen(true);
  GradCheckOptions opts;
  opts.mode = Mode::kTrain;
  opts.check_params = false;
  check_layer_gradients(bn, Tensor::normal(Shape{2, 2, 4, 4}, rng), rng, opts);
}

TEST(GradCheck, ReLU) {
  util::Rng rng(108);
  ReLU relu;
  // Keep activations away from the kink for finite differences.
  Tensor x = Tensor::normal(Shape{2, 3, 4, 4}, rng);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    if (std::fabs(x[i]) < 0.05f) x[i] = 0.2f;
  }
  check_layer_gradients(relu, x, rng);
}

TEST(GradCheck, GlobalAvgPool) {
  util::Rng rng(109);
  GlobalAvgPool pool;
  check_layer_gradients(pool, Tensor::normal(Shape{2, 3, 4, 4}, rng), rng);
}

TEST(GradCheck, AvgPool2d) {
  util::Rng rng(110);
  AvgPool2d pool(2);
  check_layer_gradients(pool, Tensor::normal(Shape{2, 2, 4, 4}, rng), rng);
}

TEST(GradCheck, ResidualBlockIdentityShortcut) {
  util::Rng rng(111);
  ResidualBlock block(3, 3, 1, rng);
  GradCheckOptions opts;
  // Composite blocks: ReLU kinks + train-mode BN make coarse finite
  // differences noisy (error ~ O(eps)); use a finer step.
  opts.epsilon = 1.5e-3f;
  opts.tolerance = 2e-2f;
  check_layer_gradients(block, Tensor::normal(Shape{3, 3, 4, 4}, rng), rng, opts);
}

TEST(GradCheck, ResidualBlockProjectionShortcut) {
  util::Rng rng(112);
  ResidualBlock block(2, 4, 2, rng);
  GradCheckOptions opts;
  opts.epsilon = 1.5e-3f;
  opts.tolerance = 2e-2f;
  check_layer_gradients(block, Tensor::normal(Shape{3, 2, 6, 6}, rng), rng, opts);
}

TEST(GradCheck, InvertedResidualWithSkip) {
  util::Rng rng(113);
  InvertedResidual block(3, 3, 1, 2, rng);
  GradCheckOptions opts;
  opts.epsilon = 5e-4f;
  opts.tolerance = 3e-2f;
  check_layer_gradients(block, Tensor::normal(Shape{3, 3, 4, 4}, rng), rng, opts);
}

TEST(GradCheck, InvertedResidualStridedNoSkip) {
  util::Rng rng(114);
  InvertedResidual block(2, 4, 2, 2, rng);
  GradCheckOptions opts;
  // BN beta shifts whole channels across the ReLU6 kink: needs a
  // very fine step before the finite difference converges.
  opts.epsilon = 1e-4f;
  opts.tolerance = 4e-2f;
  check_layer_gradients(block, Tensor::normal(Shape{2, 2, 6, 6}, rng), rng, opts);
}

TEST(GradCheck, InvertedResidualNoExpansion) {
  util::Rng rng(115);
  InvertedResidual block(3, 3, 1, 1, rng);
  GradCheckOptions opts;
  opts.epsilon = 5e-4f;
  opts.tolerance = 3e-2f;
  check_layer_gradients(block, Tensor::normal(Shape{2, 3, 4, 4}, rng), rng, opts);
}

TEST(GradCheck, SequentialConvBnReluLinearPipeline) {
  util::Rng rng(116);
  Sequential net("pipeline");
  net.emplace<Conv2d>(2, 3, 3, 1, 1, false, rng, "c1");
  net.emplace<BatchNorm2d>(3);
  net.emplace<ReLU>();
  net.emplace<GlobalAvgPool>();
  net.emplace<Linear>(3, 4, rng, "fc");
  GradCheckOptions opts;
  opts.epsilon = 1.5e-3f;
  opts.tolerance = 2e-2f;
  check_layer_gradients(net, Tensor::normal(Shape{3, 2, 5, 5}, rng), rng, opts);
}

// Parameterized sweep: conv gradients hold across geometry combinations.
class ConvGeometrySweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};  // kernel, stride, padding

TEST_P(ConvGeometrySweep, GradientsMatchFiniteDifferences) {
  const auto [kernel, stride, padding] = GetParam();
  util::Rng rng(200 + kernel * 16 + stride * 4 + padding);
  Conv2d conv(2, 2, kernel, stride, padding, true, rng);
  const int size = 7;
  if (conv.output_shape(Shape{1, 2, size, size}).height() <= 0) GTEST_SKIP();
  check_layer_gradients(conv, Tensor::normal(Shape{1, 2, size, size}, rng), rng);
}

INSTANTIATE_TEST_SUITE_P(Geometries, ConvGeometrySweep,
                         ::testing::Combine(::testing::Values(1, 3, 5),
                                            ::testing::Values(1, 2),
                                            ::testing::Values(0, 1)));

}  // namespace
}  // namespace meanet::nn
