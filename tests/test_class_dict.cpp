#include <gtest/gtest.h>

#include "data/class_dict.h"

namespace meanet::data {
namespace {

TEST(ClassDict, BasicMapping) {
  ClassDict dict(6, {5, 1, 3});
  EXPECT_EQ(dict.num_classes(), 6);
  EXPECT_EQ(dict.num_hard(), 3);
  EXPECT_EQ(dict.num_easy(), 3);
  // Hard classes are sorted: 1 -> 0, 3 -> 1, 5 -> 2.
  EXPECT_EQ(dict.to_hard(1), 0);
  EXPECT_EQ(dict.to_hard(3), 1);
  EXPECT_EQ(dict.to_hard(5), 2);
  EXPECT_EQ(dict.to_hard(0), -1);
  EXPECT_EQ(dict.to_global(0), 1);
  EXPECT_EQ(dict.to_global(2), 5);
}

TEST(ClassDict, IsHard) {
  ClassDict dict(4, {2});
  EXPECT_TRUE(dict.is_hard(2));
  EXPECT_FALSE(dict.is_hard(0));
  EXPECT_FALSE(dict.is_hard(3));
}

TEST(ClassDict, EasyClassesComplement) {
  ClassDict dict(5, {0, 4});
  EXPECT_EQ(dict.easy_classes(), (std::vector<int>{1, 2, 3}));
}

TEST(ClassDict, RoundTripAllHardLabels) {
  ClassDict dict(10, {9, 7, 5, 3, 1});
  for (int h = 0; h < dict.num_hard(); ++h) {
    EXPECT_EQ(dict.to_hard(dict.to_global(h)), h);
  }
}

TEST(ClassDict, MappingVectorMatchesQueries) {
  ClassDict dict(4, {1, 2});
  const std::vector<int>& mapping = dict.mapping();
  ASSERT_EQ(mapping.size(), 4u);
  for (int c = 0; c < 4; ++c) EXPECT_EQ(mapping[static_cast<std::size_t>(c)], dict.to_hard(c));
}

TEST(ClassDict, AllClassesHard) {
  ClassDict dict(3, {0, 1, 2});
  EXPECT_EQ(dict.num_easy(), 0);
  EXPECT_TRUE(dict.easy_classes().empty());
}

TEST(ClassDict, Validation) {
  EXPECT_THROW(ClassDict(0, {}), std::invalid_argument);
  EXPECT_THROW(ClassDict(4, {4}), std::out_of_range);
  EXPECT_THROW(ClassDict(4, {-1}), std::out_of_range);
  EXPECT_THROW(ClassDict(4, {1, 1}), std::invalid_argument);
}

TEST(ClassDict, OutOfRangeQueriesThrow) {
  ClassDict dict(4, {1});
  EXPECT_THROW(dict.to_hard(4), std::out_of_range);
  EXPECT_THROW(dict.to_hard(-1), std::out_of_range);
  EXPECT_THROW(dict.to_global(1), std::out_of_range);
}

}  // namespace
}  // namespace meanet::data
