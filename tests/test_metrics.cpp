#include <gtest/gtest.h>

#include "metrics/classification_metrics.h"
#include "metrics/confusion_matrix.h"
#include "metrics/entropy_stats.h"

namespace meanet::metrics {
namespace {

TEST(ConfusionMatrix, CountsAndAccuracy) {
  ConfusionMatrix cm(3);
  cm.add(0, 0);
  cm.add(0, 1);
  cm.add(1, 1);
  cm.add(2, 2);
  EXPECT_EQ(cm.total(), 4);
  EXPECT_EQ(cm.count(0, 1), 1);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.75);
}

TEST(ConfusionMatrix, PrecisionAndFdr) {
  ConfusionMatrix cm(2);
  // Class 1 predicted 4 times, 3 correct -> precision 0.75, FDR 0.25.
  cm.add(1, 1);
  cm.add(1, 1);
  cm.add(1, 1);
  cm.add(0, 1);
  EXPECT_DOUBLE_EQ(cm.precision(1), 0.75);
  EXPECT_DOUBLE_EQ(cm.false_discovery_rate(1), 0.25);
}

TEST(ConfusionMatrix, NeverPredictedClassHasPrecisionOne) {
  ConfusionMatrix cm(3);
  cm.add(0, 0);
  EXPECT_DOUBLE_EQ(cm.precision(2), 1.0);
  EXPECT_DOUBLE_EQ(cm.recall(2), 0.0);
}

TEST(ConfusionMatrix, Recall) {
  ConfusionMatrix cm(2);
  cm.add(0, 0);
  cm.add(0, 1);
  cm.add(0, 0);
  EXPECT_NEAR(cm.recall(0), 2.0 / 3.0, 1e-12);
}

TEST(ConfusionMatrix, RankingAscendingPrecision) {
  ConfusionMatrix cm(3);
  // Class 0: precision 1.0; class 1: 0.5; class 2: never predicted (1.0).
  cm.add(0, 0);
  cm.add(1, 1);
  cm.add(0, 1);
  const std::vector<int> ranked = cm.classes_by_ascending_precision();
  EXPECT_EQ(ranked[0], 1);
}

TEST(ConfusionMatrix, LabelValidation) {
  ConfusionMatrix cm(2);
  EXPECT_THROW(cm.add(2, 0), std::out_of_range);
  EXPECT_THROW(cm.add(0, -1), std::out_of_range);
  EXPECT_THROW(ConfusionMatrix(0), std::invalid_argument);
}

TEST(ConfusionMatrix, ToStringContainsCounts) {
  ConfusionMatrix cm(2);
  cm.add(0, 0);
  const std::string s = cm.to_string();
  EXPECT_NE(s.find("true\\pred"), std::string::npos);
}

TEST(Accuracy, BasicAndEmpty) {
  EXPECT_DOUBLE_EQ(accuracy({1, 2, 3}, {1, 2, 0}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(accuracy({}, {}), 0.0);
  EXPECT_THROW(accuracy({1}, {1, 2}), std::invalid_argument);
}

TEST(AccuracyOnClasses, RestrictsToSubset) {
  const std::vector<int> preds{0, 1, 2, 2};
  const std::vector<int> labels{0, 1, 1, 2};
  // Only classes {1}: instances at positions 1 (correct) and 2 (wrong).
  EXPECT_DOUBLE_EQ(accuracy_on_classes(preds, labels, {1}, 3), 0.5);
  // Empty subset -> 0 by convention.
  EXPECT_DOUBLE_EQ(accuracy_on_classes(preds, labels, {}, 3), 0.0);
}

TEST(ErrorTypes, ClassifiesAllFourTypes) {
  // Classes: 0, 1 easy; 2, 3 hard.
  const std::vector<bool> is_hard{false, false, true, true};
  const std::vector<int> labels{0, 2, 0, 2, 1};
  const std::vector<int> preds{2, 0, 1, 3, 1};
  // 0->2: easy as hard; 2->0: hard as easy; 0->1: easy as easy;
  // 2->3: hard as hard; 1->1 correct (not counted).
  const ErrorTypeBreakdown breakdown = error_types(preds, labels, is_hard);
  EXPECT_EQ(breakdown.easy_as_hard, 1);
  EXPECT_EQ(breakdown.hard_as_easy, 1);
  EXPECT_EQ(breakdown.easy_as_easy, 1);
  EXPECT_EQ(breakdown.hard_as_hard, 1);
  EXPECT_EQ(breakdown.total_errors(), 4);
  EXPECT_DOUBLE_EQ(breakdown.fraction(breakdown.hard_as_hard), 0.25);
}

TEST(ErrorTypes, NoErrorsGivesZeroFractions) {
  const ErrorTypeBreakdown breakdown =
      error_types({0, 1}, {0, 1}, std::vector<bool>{false, true});
  EXPECT_EQ(breakdown.total_errors(), 0);
  EXPECT_DOUBLE_EQ(breakdown.fraction(breakdown.easy_as_hard), 0.0);
}

TEST(EntropyStats, MeansSeparateCorrectFromWrong) {
  EntropyStats stats;
  stats.add(0.1f, true);
  stats.add(0.3f, true);
  stats.add(1.5f, false);
  stats.add(2.5f, false);
  EXPECT_NEAR(stats.mu_correct(), 0.2, 1e-6);
  EXPECT_NEAR(stats.mu_wrong(), 2.0, 1e-6);
  EXPECT_EQ(stats.num_correct(), 2);
  EXPECT_EQ(stats.num_wrong(), 2);
  const auto [lo, hi] = stats.threshold_range();
  EXPECT_LT(lo, hi);
  EXPECT_NEAR(stats.default_threshold(), 1.1, 1e-6);
}

TEST(EntropyStats, EmptyIsZero) {
  EntropyStats stats;
  EXPECT_DOUBLE_EQ(stats.mu_correct(), 0.0);
  EXPECT_DOUBLE_EQ(stats.mu_wrong(), 0.0);
}

}  // namespace
}  // namespace meanet::metrics
