#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/builders.h"
#include "core/trainer.h"
#include "nn/batchnorm2d.h"
#include "nn/linear.h"
#include "nn/serialize.h"
#include "tiny_models.h"

namespace meanet::nn {
namespace {

using meanet::testing::tiny_data_spec;
using meanet::testing::tiny_resnet_config;

std::string temp_path(const char* tag) {
  return ::testing::TempDir() + "/meanet_" + tag + ".bin";
}

TEST(Serialize, RoundTripReproducesPredictions) {
  util::Rng rng(1);
  Sequential a = core::build_resnet_classifier(tiny_resnet_config(), rng, "net");
  util::Rng rng2(2);  // different init
  Sequential b = core::build_resnet_classifier(tiny_resnet_config(), rng2, "net");

  // Push some batches through `a` in train mode so BatchNorm running
  // statistics become non-trivial (they must survive the round trip).
  util::Rng data_rng(3);
  for (int i = 0; i < 3; ++i) {
    a.forward(Tensor::normal(Shape{8, 2, 8, 8}, data_rng), Mode::kTrain);
  }

  const std::string path = temp_path("roundtrip");
  save_model(a, path);
  load_model(b, path);

  const Tensor x = Tensor::normal(Shape{4, 2, 8, 8}, data_rng);
  const Tensor ya = a.forward(x, Mode::kEval);
  const Tensor yb = b.forward(x, Mode::kEval);
  EXPECT_TRUE(allclose(ya, yb, 0.0f));  // bit-identical
  std::remove(path.c_str());
}

TEST(Serialize, CloudToEdgeMainBlockDownload) {
  // The paper's Alg. 1 step 4: train the main block "at the cloud",
  // download it into a fresh edge MEANet, and verify the edge main block
  // behaves identically.
  util::Rng cloud_rng(4);
  core::MEANet cloud_net = meanet::testing::tiny_meanet_b(cloud_rng, 2);
  const data::SyntheticDataset ds = data::make_synthetic(tiny_data_spec(), 51);
  core::DistributedTrainer cloud_trainer(cloud_net);
  core::TrainOptions opts;
  opts.epochs = 3;
  opts.batch_size = 16;
  util::Rng train_rng(5);
  cloud_trainer.train_main(ds.train, opts, train_rng);

  const std::string trunk_path = temp_path("trunk");
  const std::string exit_path = temp_path("exit");
  save_model(cloud_net.main_trunk(), trunk_path);
  save_model(cloud_net.main_exit(), exit_path);

  util::Rng edge_rng(6);  // different init on the edge device
  core::MEANet edge_net = meanet::testing::tiny_meanet_b(edge_rng, 2);
  load_model(edge_net.main_trunk(), trunk_path);
  load_model(edge_net.main_exit(), exit_path);

  util::Rng data_rng(7);
  const Tensor x = Tensor::normal(Shape{5, 2, 8, 8}, data_rng);
  const core::MainForward cloud_fwd = cloud_net.forward_main(x, Mode::kEval);
  const core::MainForward edge_fwd = edge_net.forward_main(x, Mode::kEval);
  EXPECT_TRUE(allclose(cloud_fwd.logits, edge_fwd.logits, 0.0f));
  std::remove(trunk_path.c_str());
  std::remove(exit_path.c_str());
}

TEST(Serialize, ShapeMismatchRejected) {
  util::Rng rng(8);
  Linear small(4, 2, rng, "fc");
  Linear big(8, 2, rng, "fc");
  const std::string path = temp_path("mismatch");
  save_model(small, path);
  EXPECT_THROW(load_model(big, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, NameMismatchRejected) {
  util::Rng rng(9);
  Linear a(4, 2, rng, "fc_a");
  Linear b(4, 2, rng, "fc_b");
  const std::string path = temp_path("names");
  save_model(a, path);
  EXPECT_THROW(load_model(b, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, EntryCountMismatchRejected) {
  util::Rng rng(10);
  Linear one(4, 2, rng, "fc");
  Sequential two("two");
  two.emplace<Linear>(4, 2, rng, "fc");
  two.emplace<Linear>(2, 2, rng, "fc2");
  const std::string path = temp_path("count");
  save_model(one, path);
  EXPECT_THROW(load_model(two, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, CorruptFileRejected) {
  util::Rng rng(11);
  Linear fc(4, 2, rng, "fc");
  const std::string path = temp_path("corrupt");
  {
    std::ofstream os(path, std::ios::binary);
    os << "not a model file";
  }
  EXPECT_THROW(load_model(fc, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, TruncatedFileRejected) {
  util::Rng rng(12);
  Linear fc(16, 8, rng, "fc");
  const std::string path = temp_path("trunc");
  save_model(fc, path);
  // Truncate to half the size.
  const std::int64_t full = serialized_size(fc);
  std::string content(static_cast<std::size_t>(full / 2), '\0');
  {
    std::ifstream is(path, std::ios::binary);
    is.read(content.data(), static_cast<std::streamsize>(content.size()));
  }
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(content.data(), static_cast<std::streamsize>(content.size()));
  }
  EXPECT_THROW(load_model(fc, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileRejected) {
  util::Rng rng(13);
  Linear fc(4, 2, rng, "fc");
  EXPECT_THROW(load_model(fc, "/nonexistent/dir/model.bin"), std::runtime_error);
  EXPECT_THROW(save_model(fc, "/nonexistent/dir/model.bin"), std::runtime_error);
}

TEST(Serialize, SerializedSizeMatchesFile) {
  util::Rng rng(14);
  Sequential net = core::build_resnet_classifier(tiny_resnet_config(), rng, "sz");
  const std::string path = temp_path("size");
  save_model(net, path);
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  EXPECT_EQ(static_cast<std::int64_t>(is.tellg()), serialized_size(net));
  std::remove(path.c_str());
}

// ---- Hostile-input hardening (these bytes may arrive off a socket) ----

/// Reads a saved model file into memory for byte-surgery.
std::vector<char> slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  std::vector<char> bytes(static_cast<std::size_t>(is.tellg()));
  is.seekg(0);
  is.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return bytes;
}

void spit(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(SerializeHardening, AllocationBombNameLengthRejected) {
  util::Rng rng(20);
  Linear fc(4, 2, rng, "fc");
  const std::string path = temp_path("bomb_name");
  save_model(fc, path);
  std::vector<char> bytes = slurp(path);
  // First entry's name length lives right after magic+version+count.
  const std::uint32_t bomb = 0xFFFFFFF0u;  // ~4 GiB name in a tiny file
  std::memcpy(bytes.data() + 16, &bomb, 4);
  spit(path, bytes);
  EXPECT_THROW(load_model(fc, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(SerializeHardening, HostileRankRejected) {
  util::Rng rng(21);
  Linear fc(4, 2, rng, "fc");
  const std::string path = temp_path("bomb_rank");
  save_model(fc, path);
  std::vector<char> bytes = slurp(path);
  // rank field of the first entry: after header(16) + name_len(4) + name.
  std::uint32_t name_len = 0;
  std::memcpy(&name_len, bytes.data() + 16, 4);
  const std::size_t rank_at = 16 + 4 + name_len;
  const std::uint32_t bomb = 0x10000u;  // rank 65536
  std::memcpy(bytes.data() + rank_at, &bomb, 4);
  spit(path, bytes);
  EXPECT_THROW(load_model(fc, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(SerializeHardening, OverflowingDimProductRejected) {
  util::Rng rng(22);
  Linear fc(4, 2, rng, "fc");
  const std::string path = temp_path("bomb_dims");
  save_model(fc, path);
  std::vector<char> bytes = slurp(path);
  std::uint32_t name_len = 0;
  std::memcpy(&name_len, bytes.data() + 16, 4);
  const std::size_t rank_at = 16 + 4 + name_len;
  // Keep the true rank (2) but claim dims whose product overflows any
  // naive int64 accumulator while each dim stays under the per-dim cap.
  const std::int32_t big = (1 << 24) - 1;
  std::memcpy(bytes.data() + rank_at + 4, &big, 4);
  std::memcpy(bytes.data() + rank_at + 8, &big, 4);
  spit(path, bytes);
  EXPECT_THROW(load_model(fc, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(SerializeHardening, EveryTruncationPointRejectsCleanly) {
  // Fuzz-ish sweep: a file cut at ANY byte boundary must throw (never
  // crash, never silently succeed).
  util::Rng rng(23);
  Linear fc(3, 2, rng, "fc");
  const std::string full_path = temp_path("cuts_full");
  save_model(fc, full_path);
  const std::vector<char> bytes = slurp(full_path);
  const std::string cut_path = temp_path("cuts");
  for (std::size_t cut = 0; cut + 1 < bytes.size(); cut += 3) {
    spit(cut_path, std::vector<char>(bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(cut)));
    EXPECT_THROW(load_model(fc, cut_path), std::runtime_error) << "cut at " << cut;
  }
  std::remove(full_path.c_str());
  std::remove(cut_path.c_str());
}

TEST(SerializeHardening, RandomByteFlipsNeverCrash) {
  // Flip one byte at a time across the whole file: every variant must
  // either load (flips inside float data are legal) or throw — no
  // crashes, no unbounded allocation.
  util::Rng rng(24);
  Linear fc(3, 2, rng, "fc");
  const std::string path = temp_path("flips");
  save_model(fc, path);
  const std::vector<char> original = slurp(path);
  for (std::size_t at = 0; at < original.size(); ++at) {
    std::vector<char> mutated = original;
    mutated[at] = static_cast<char>(mutated[at] ^ 0x5A);
    spit(path, mutated);
    try {
      load_model(fc, path);
    } catch (const std::exception&) {
      // rejected: fine
    }
  }
  std::remove(path.c_str());
}

TEST(SerializeHardening, WireTensorRoundTripAndTruncation) {
  util::Rng rng(25);
  const Tensor t = Tensor::normal(Shape{2, 3, 4, 4}, rng);
  std::vector<std::uint8_t> bytes;
  append_tensor(bytes, t);
  EXPECT_EQ(static_cast<std::int64_t>(bytes.size()), tensor_wire_bytes(t.shape()));

  ByteReader reader(bytes.data(), bytes.size());
  const Tensor back = read_tensor(reader);
  EXPECT_TRUE(reader.done());
  EXPECT_TRUE(allclose(back, t, 0.0f));

  // Any truncation of the encoding must throw, never over-read.
  for (std::size_t cut = 0; cut < bytes.size(); cut += 7) {
    ByteReader short_reader(bytes.data(), cut);
    EXPECT_THROW(read_tensor(short_reader), std::runtime_error) << "cut at " << cut;
  }
}

TEST(SerializeHardening, ByteReaderRefusesOverread) {
  const std::uint8_t bytes[4] = {1, 2, 3, 4};
  ByteReader reader(bytes, sizeof(bytes));
  EXPECT_EQ(reader.read<std::uint32_t>(), 0x04030201u);
  EXPECT_TRUE(reader.done());
  EXPECT_THROW(reader.read<std::uint8_t>(), std::runtime_error);
}

TEST(Serialize, BatchNormStateIncluded) {
  BatchNorm2d bn(3, 0.5f, 1e-5f, "bn");
  util::Rng rng(15);
  bn.forward(Tensor::normal(Shape{4, 3, 2, 2}, rng, 5.0f, 2.0f), Mode::kTrain);
  const std::string path = temp_path("bnstate");
  save_model(bn, path);
  BatchNorm2d fresh(3, 0.5f, 1e-5f, "bn");
  load_model(fresh, path);
  EXPECT_TRUE(allclose(bn.running_mean(), fresh.running_mean(), 0.0f));
  EXPECT_TRUE(allclose(bn.running_var(), fresh.running_var(), 0.0f));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace meanet::nn
