#include <gtest/gtest.h>

#include <cmath>

#include "nn/activations.h"
#include "nn/batchnorm2d.h"
#include "nn/conv2d.h"
#include "nn/flatten.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "util/rng.h"

namespace meanet::nn {
namespace {

TEST(Conv2d, OutputShape) {
  util::Rng rng(1);
  Conv2d conv(3, 8, 3, 2, 1, true, rng);
  EXPECT_EQ(conv.output_shape(Shape{2, 3, 16, 16}), Shape({2, 8, 8, 8}));
}

TEST(Conv2d, RejectsWrongChannelCount) {
  util::Rng rng(1);
  Conv2d conv(3, 8, 3, 1, 1, true, rng);
  EXPECT_THROW(conv.output_shape(Shape{1, 4, 8, 8}), std::invalid_argument);
}

TEST(Conv2d, IdentityKernelReproducesInput) {
  util::Rng rng(1);
  Conv2d conv(1, 1, 1, 1, 0, false, rng);
  conv.weight().value.fill(1.0f);
  const Tensor x = Tensor::normal(Shape{1, 1, 4, 4}, rng);
  const Tensor y = conv.forward(x, Mode::kEval);
  EXPECT_TRUE(allclose(x, y, 1e-6f));
}

TEST(Conv2d, KnownAveragingKernel) {
  util::Rng rng(1);
  Conv2d conv(1, 1, 2, 1, 0, false, rng);
  conv.weight().value.fill(0.25f);
  Tensor x(Shape{1, 1, 2, 2}, std::vector<float>{1, 2, 3, 4});
  const Tensor y = conv.forward(x, Mode::kEval);
  EXPECT_EQ(y.shape(), Shape({1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(y[0], 2.5f);
}

TEST(Conv2d, BiasIsAdded) {
  util::Rng rng(1);
  Conv2d conv(1, 2, 1, 1, 0, true, rng);
  conv.weight().value.fill(0.0f);
  conv.bias().value[0] = 1.5f;
  conv.bias().value[1] = -2.0f;
  const Tensor y = conv.forward(Tensor::zeros(Shape{1, 1, 2, 2}), Mode::kEval);
  EXPECT_FLOAT_EQ(y.at(0, 0, 1, 1), 1.5f);
  EXPECT_FLOAT_EQ(y.at(0, 1, 0, 0), -2.0f);
}

TEST(Conv2d, StatsCountsMacsAndParams) {
  util::Rng rng(1);
  Conv2d conv(3, 8, 3, 1, 1, false, rng);
  const LayerStats s = conv.stats(Shape{1, 3, 16, 16});
  EXPECT_EQ(s.params, 8 * 3 * 3 * 3);
  EXPECT_EQ(s.macs, static_cast<std::int64_t>(8) * 27 * 16 * 16);
}

TEST(DepthwiseConv2d, ChannelsDoNotMix) {
  util::Rng rng(2);
  DepthwiseConv2d dw(2, 3, 1, 1, rng);
  dw.weight().value.fill(0.0f);
  // Channel 0 filter = identity tap (center); channel 1 filter all zero.
  dw.weight().value[4] = 1.0f;
  Tensor x = Tensor::normal(Shape{1, 2, 4, 4}, rng);
  const Tensor y = dw.forward(x, Mode::kEval);
  for (int h = 0; h < 4; ++h) {
    for (int w = 0; w < 4; ++w) {
      EXPECT_FLOAT_EQ(y.at(0, 0, h, w), x.at(0, 0, h, w));
      EXPECT_FLOAT_EQ(y.at(0, 1, h, w), 0.0f);
    }
  }
}

TEST(DepthwiseConv2d, StrideOutputShape) {
  util::Rng rng(2);
  DepthwiseConv2d dw(4, 3, 2, 1, rng);
  EXPECT_EQ(dw.output_shape(Shape{1, 4, 8, 8}), Shape({1, 4, 4, 4}));
}

TEST(Linear, ComputesAffineMap) {
  util::Rng rng(3);
  Linear fc(2, 2, rng);
  fc.weight().value = Tensor(Shape{2, 2}, std::vector<float>{1, 2, 3, 4});
  fc.bias().value = Tensor(Shape{2}, std::vector<float>{0.5f, -0.5f});
  Tensor x(Shape{1, 2}, std::vector<float>{1, 1});
  const Tensor y = fc.forward(x, Mode::kEval);
  EXPECT_FLOAT_EQ(y.at(0, 0), 3.5f);   // 1+2+0.5
  EXPECT_FLOAT_EQ(y.at(0, 1), 6.5f);   // 3+4-0.5
}

TEST(Linear, RejectsWrongInputWidth) {
  util::Rng rng(3);
  Linear fc(4, 2, rng);
  EXPECT_THROW(fc.forward(Tensor(Shape{1, 3}), Mode::kEval), std::invalid_argument);
}

TEST(BatchNorm2d, TrainModeNormalizesBatch) {
  util::Rng rng(4);
  BatchNorm2d bn(2);
  const Tensor x = Tensor::normal(Shape{8, 2, 4, 4}, rng, 3.0f, 2.0f);
  const Tensor y = bn.forward(x, Mode::kTrain);
  // Per-channel mean ~0, var ~1 after normalization (gamma=1, beta=0).
  for (int c = 0; c < 2; ++c) {
    double mean = 0.0, var = 0.0;
    for (int n = 0; n < 8; ++n) {
      for (int h = 0; h < 4; ++h) {
        for (int w = 0; w < 4; ++w) mean += y.at(n, c, h, w);
      }
    }
    mean /= 8 * 16;
    for (int n = 0; n < 8; ++n) {
      for (int h = 0; h < 4; ++h) {
        for (int w = 0; w < 4; ++w) var += std::pow(y.at(n, c, h, w) - mean, 2);
      }
    }
    var /= 8 * 16;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNorm2d, RunningStatsConverge) {
  util::Rng rng(4);
  BatchNorm2d bn(1, /*momentum=*/0.5f);
  for (int i = 0; i < 20; ++i) {
    const Tensor x = Tensor::normal(Shape{16, 1, 2, 2}, rng, 5.0f, 1.0f);
    bn.forward(x, Mode::kTrain);
  }
  EXPECT_NEAR(bn.running_mean()[0], 5.0f, 0.3f);
  EXPECT_NEAR(bn.running_var()[0], 1.0f, 0.3f);
}

TEST(BatchNorm2d, EvalModeUsesRunningStats) {
  BatchNorm2d bn(1);
  // Fresh layer: running mean 0, var 1 -> eval output equals input
  // (up to eps).
  Tensor x(Shape{1, 1, 1, 2}, std::vector<float>{1.0f, -1.0f});
  const Tensor y = bn.forward(x, Mode::kEval);
  EXPECT_NEAR(y[0], 1.0f, 1e-4f);
  EXPECT_NEAR(y[1], -1.0f, 1e-4f);
}

TEST(BatchNorm2d, FrozenIgnoresTrainMode) {
  util::Rng rng(4);
  BatchNorm2d bn(1);
  bn.set_frozen(true);
  const float mean_before = bn.running_mean()[0];
  const Tensor x = Tensor::normal(Shape{8, 1, 2, 2}, rng, 10.0f, 1.0f);
  const Tensor y = bn.forward(x, Mode::kTrain);
  // Running stats untouched and output computed with them (mean 0,var 1).
  EXPECT_EQ(bn.running_mean()[0], mean_before);
  EXPECT_NEAR(y[0], x[0], 1e-3f);
}

TEST(ReLU, ClampsNegatives) {
  ReLU relu;
  Tensor x(Shape{1, 4}, std::vector<float>{-1.0f, 0.0f, 2.0f, -3.0f});
  const Tensor y = relu.forward(x, Mode::kEval);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 2.0f);
  EXPECT_FLOAT_EQ(y[3], 0.0f);
}

TEST(ReLU, BackwardMasks) {
  ReLU relu;
  Tensor x(Shape{1, 3}, std::vector<float>{-1.0f, 1.0f, 0.0f});
  relu.forward(x, Mode::kTrain);
  Tensor g(Shape{1, 3}, std::vector<float>{5.0f, 5.0f, 5.0f});
  const Tensor dx = relu.backward(g);
  EXPECT_FLOAT_EQ(dx[0], 0.0f);
  EXPECT_FLOAT_EQ(dx[1], 5.0f);
  EXPECT_FLOAT_EQ(dx[2], 0.0f);
}

TEST(ReLU6, ClipsAtSix) {
  ReLU6 relu6;
  Tensor x(Shape{1, 3}, std::vector<float>{-1.0f, 3.0f, 9.0f});
  // Train mode: the backward below needs the cached input (eval-mode
  // forwards are cache-free and do not support backward).
  const Tensor y = relu6.forward(x, Mode::kTrain);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 3.0f);
  EXPECT_FLOAT_EQ(y[2], 6.0f);
  Tensor g(Shape{1, 3}, std::vector<float>{1.0f, 1.0f, 1.0f});
  const Tensor dx = relu6.backward(g);
  EXPECT_FLOAT_EQ(dx[0], 0.0f);
  EXPECT_FLOAT_EQ(dx[1], 1.0f);
  EXPECT_FLOAT_EQ(dx[2], 0.0f);  // saturated region
}

TEST(GlobalAvgPool, AveragesSpatially) {
  GlobalAvgPool pool;
  Tensor x(Shape{1, 2, 2, 2}, std::vector<float>{1, 2, 3, 4, 10, 20, 30, 40});
  const Tensor y = pool.forward(x, Mode::kEval);
  EXPECT_EQ(y.shape(), Shape({1, 2}));
  EXPECT_FLOAT_EQ(y.at(0, 0), 2.5f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 25.0f);
}

TEST(GlobalAvgPool, BackwardSpreadsUniformly) {
  GlobalAvgPool pool;
  pool.forward(Tensor::zeros(Shape{1, 1, 2, 2}), Mode::kTrain);
  Tensor g(Shape{1, 1}, std::vector<float>{4.0f});
  const Tensor dx = pool.backward(g);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(dx[i], 1.0f);
}

TEST(AvgPool2d, NonOverlappingWindows) {
  AvgPool2d pool(2);
  Tensor x(Shape{1, 1, 2, 4}, std::vector<float>{1, 3, 5, 7, 1, 3, 5, 7});
  const Tensor y = pool.forward(x, Mode::kEval);
  EXPECT_EQ(y.shape(), Shape({1, 1, 1, 2}));
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 2.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 1), 6.0f);
}

TEST(AvgPool2d, RejectsIndivisibleInput) {
  AvgPool2d pool(2);
  EXPECT_THROW(pool.output_shape(Shape{1, 1, 3, 4}), std::invalid_argument);
}

TEST(Flatten, RoundTrips) {
  Flatten flatten;
  util::Rng rng(6);
  const Tensor x = Tensor::normal(Shape{2, 3, 2, 2}, rng);
  const Tensor y = flatten.forward(x, Mode::kTrain);
  EXPECT_EQ(y.shape(), Shape({2, 12}));
  const Tensor back = flatten.backward(y);
  EXPECT_TRUE(allclose(x, back, 0.0f));
}

TEST(Layer, FreezeMarksParamsNotTrainable) {
  util::Rng rng(7);
  Conv2d conv(1, 2, 3, 1, 1, true, rng);
  conv.set_frozen(true);
  for (const Parameter* p : conv.parameters()) EXPECT_FALSE(p->trainable);
  conv.set_frozen(false);
  for (const Parameter* p : conv.parameters()) EXPECT_TRUE(p->trainable);
}

TEST(Layer, FrozenConvSkipsWeightGrad) {
  util::Rng rng(8);
  Conv2d conv(1, 1, 3, 1, 1, false, rng);
  conv.set_frozen(true);
  const Tensor x = Tensor::normal(Shape{1, 1, 4, 4}, rng);
  const Tensor y = conv.forward(x, Mode::kTrain);
  conv.backward(Tensor::ones(y.shape()));
  for (std::int64_t i = 0; i < conv.weight().grad.numel(); ++i) {
    EXPECT_EQ(conv.weight().grad[i], 0.0f);
  }
}

TEST(Layer, BackwardBeforeForwardThrows) {
  util::Rng rng(9);
  Conv2d conv(1, 1, 3, 1, 1, false, rng);
  EXPECT_THROW(conv.backward(Tensor(Shape{1, 1, 4, 4})), std::logic_error);
  Linear fc(2, 2, rng);
  EXPECT_THROW(fc.backward(Tensor(Shape{1, 2})), std::logic_error);
}

}  // namespace
}  // namespace meanet::nn
