// Tests for the runtime serving layer: backend swap parity through one
// InferenceSession API, cloud-unavailable fallback, and multi-threaded
// submit/drain determinism.
#include <gtest/gtest.h>

#include "runtime/replica.h"
#include "runtime/session.h"

#include "core/builders.h"
#include "core/trainer.h"
#include "sim/cloud_node.h"
#include "sim/feature_cloud.h"
#include "tiny_models.h"

namespace meanet::runtime {
namespace {

using meanet::testing::tiny_data_spec;
using meanet::testing::tiny_meanet_b;

/// A fully trained tiny system shared by all tests in this file (built
/// once: training dominates the suite's runtime otherwise).
struct Fixture {
  data::SyntheticDataset ds;
  core::MEANet net;
  data::ClassDict dict;
  sim::CloudNode cloud;
  sim::FeatureCloudNode feature_cloud;

  static Fixture& instance() {
    static Fixture fixture = make();
    return fixture;
  }

  static Fixture make() {
    util::Rng rng(1);
    data::SyntheticDataset ds = data::make_synthetic(tiny_data_spec(), 21);
    core::MEANet net = tiny_meanet_b(rng, 2);
    core::DistributedTrainer trainer(net);
    core::TrainOptions options;
    options.epochs = 5;
    options.batch_size = 16;
    util::Rng train_rng(2);
    trainer.train_main(ds.train, options, train_rng);
    data::ClassDict dict = trainer.select_hard_classes_from_validation(ds.test, 2);
    trainer.train_edge_blocks(ds.train, dict, options, train_rng);

    nn::Sequential cloud_model = core::build_cloud_classifier(2, 4, rng);
    core::TrainOptions cloud_options;
    cloud_options.epochs = 6;
    cloud_options.batch_size = 16;
    core::train_classifier(cloud_model, ds.train, cloud_options, train_rng);

    const Shape feature_shape = net.main_trunk().output_shape(ds.test.instance_shape());
    util::Rng head_rng(3);
    sim::FeatureCloudNode feature_cloud(feature_shape, 4, head_rng);
    core::TrainOptions head_options;
    head_options.epochs = 5;
    head_options.batch_size = 16;
    feature_cloud.train(net, ds.train, head_options, train_rng);

    return Fixture{std::move(ds), std::move(net), std::move(dict),
                   sim::CloudNode(std::move(cloud_model)), std::move(feature_cloud)};
  }

  /// Offloading config: low entropy threshold so the cloud route fires.
  EngineConfig config() {
    EngineConfig cfg;
    cfg.net = &net;
    cfg.dict = &dict;
    cfg.policy_config.cloud_available = true;
    cfg.policy_config.entropy_threshold = 0.3;
    cfg.batch_size = 16;
    return cfg;
  }
};

TEST(InferenceSession, BackendSwapParityOnOneDataset) {
  Fixture& f = Fixture::instance();
  auto run_with = [&](OffloadMode mode) {
    EngineConfig cfg = f.config();
    cfg.offload_mode = mode;
    cfg.cloud = &f.cloud;
    cfg.feature_cloud = &f.feature_cloud;
    InferenceSession session(cfg);
    return session.run(f.ds.test);
  };
  const auto raw = run_with(OffloadMode::kRawImage);
  const auto feature = run_with(OffloadMode::kFeature);
  const auto none = run_with(OffloadMode::kNone);

  ASSERT_EQ(static_cast<int>(raw.size()), f.ds.test.size());
  ASSERT_EQ(raw.size(), feature.size());
  ASSERT_EQ(raw.size(), none.size());

  // Routing is decided at the edge, so swapping the backend must not
  // change any route — only who answers the cloud-routed instances.
  const core::RouteCounts raw_routes = count_routes(raw);
  const core::RouteCounts feature_routes = count_routes(feature);
  const core::RouteCounts none_routes = count_routes(none);
  EXPECT_GT(raw_routes.cloud, 0);
  for (std::size_t i = 0; i < raw.size(); ++i) {
    EXPECT_EQ(raw[i].route, feature[i].route) << i;
    EXPECT_EQ(raw[i].route, none[i].route) << i;
    EXPECT_EQ(raw[i].edge_prediction, feature[i].edge_prediction) << i;
    if (raw[i].route == core::Route::kCloud) {
      EXPECT_TRUE(raw[i].offloaded);
      EXPECT_TRUE(feature[i].offloaded);
      EXPECT_FALSE(none[i].offloaded);
    } else {
      // Non-offloaded instances answer identically under every backend.
      EXPECT_EQ(raw[i].prediction, feature[i].prediction) << i;
      EXPECT_EQ(raw[i].prediction, none[i].prediction) << i;
    }
  }
  EXPECT_EQ(raw_routes.cloud, feature_routes.cloud);
  EXPECT_EQ(raw_routes.cloud, none_routes.cloud);
  EXPECT_EQ(raw_routes.main_exit, feature_routes.main_exit);
  EXPECT_EQ(raw_routes.extension_exit, feature_routes.extension_exit);
}

TEST(InferenceSession, CloudUnavailableFallsBackToEdgeBestGuess) {
  Fixture& f = Fixture::instance();
  EngineConfig cfg = f.config();  // offload_mode defaults to kNone
  InferenceSession session(cfg);
  const auto results = session.run(f.ds.test);
  int cloud_routed = 0;
  for (const InferenceResult& r : results) {
    if (r.route != core::Route::kCloud) continue;
    ++cloud_routed;
    EXPECT_FALSE(r.offloaded);
    // The edge's best guess answers instead of the unreachable cloud.
    EXPECT_EQ(r.prediction, r.edge_prediction);
    EXPECT_GE(r.prediction, 0);
  }
  EXPECT_GT(cloud_routed, 0);
}

/// A backend whose cloud link is down: classify() always throws.
class ThrowingBackend : public OffloadBackend {
 public:
  std::vector<int> classify(const OffloadPayload&) override {
    throw std::runtime_error("cloud link down");
  }
  std::int64_t payload_bytes(const Shape&, const Shape&) const override { return 0; }
  std::string describe() const override { return "throwing"; }
};

TEST(InferenceSession, ThrowingBackendFallsBackLikeUnreachableCloud) {
  Fixture& f = Fixture::instance();
  EngineConfig cfg = f.config();
  cfg.backend = std::make_shared<ThrowingBackend>();
  InferenceSession session(cfg);
  const auto results = session.run(f.ds.test);  // must not throw
  int cloud_routed = 0;
  for (const InferenceResult& r : results) {
    if (r.route != core::Route::kCloud) continue;
    ++cloud_routed;
    EXPECT_FALSE(r.offloaded);
    EXPECT_EQ(r.prediction, r.edge_prediction);
  }
  EXPECT_GT(cloud_routed, 0);
}

TEST(InferenceSession, ThreadedSubmitDrainMatchesSingleThreaded) {
  Fixture& f = Fixture::instance();

  EngineConfig single = f.config();
  single.offload_mode = OffloadMode::kRawImage;
  single.cloud = &f.cloud;
  InferenceSession single_session(single);
  const auto baseline = single_session.run(f.ds.test);

  // Four workers sharing the one net (eval forwards are cache-free).
  EngineConfig threaded = f.config();
  threaded.offload_mode = OffloadMode::kRawImage;
  threaded.cloud = &f.cloud;
  threaded.worker_threads = 4;
  threaded.batch_size = 8;      // different batching must not matter
  threaded.queue_capacity = 4;  // exercise submit() backpressure
  InferenceSession threaded_session(threaded);
  ASSERT_EQ(threaded_session.worker_count(), 4);

  // Feed single instances so the batcher has to coalesce them.
  for (int i = 0; i < f.ds.test.size(); ++i) {
    threaded_session.submit(f.ds.test.instance(i));
  }
  const auto threaded_results = threaded_session.drain();

  ASSERT_EQ(threaded_results.size(), baseline.size());
  const core::RouteCounts base_routes = count_routes(baseline);
  const core::RouteCounts thread_routes = count_routes(threaded_results);
  EXPECT_EQ(base_routes.main_exit, thread_routes.main_exit);
  EXPECT_EQ(base_routes.extension_exit, thread_routes.extension_exit);
  EXPECT_EQ(base_routes.cloud, thread_routes.cloud);
  std::int64_t base_correct = 0, thread_correct = 0;
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_EQ(threaded_results[i].id, static_cast<std::int64_t>(i));
    EXPECT_EQ(threaded_results[i].route, baseline[i].route) << i;
    EXPECT_EQ(threaded_results[i].prediction, baseline[i].prediction) << i;
    const int label = f.ds.test.labels[i];
    base_correct += baseline[i].prediction == label;
    thread_correct += threaded_results[i].prediction == label;
  }
  EXPECT_EQ(base_correct, thread_correct);  // identical accuracy
}

TEST(InferenceSession, WorkersShareOneNetWithoutReplicas) {
  Fixture& f = Fixture::instance();
  EngineConfig cfg = f.config();
  cfg.worker_threads = 8;  // all serve on the one shared net
  InferenceSession session(cfg);
  EXPECT_EQ(session.worker_count(), 8);
  // The deprecated replica list is ignored rather than required.
  EngineConfig with_replicas = f.config();
  with_replicas.worker_threads = 2;
  with_replicas.replicas = {nullptr};  // would have thrown when it was real
  InferenceSession shim(with_replicas);
  EXPECT_EQ(shim.worker_count(), 2);
}

TEST(InferenceSession, SessionIsReusableAcrossDrains) {
  Fixture& f = Fixture::instance();
  EngineConfig cfg = f.config();
  InferenceSession session(cfg);
  const auto first = session.run(f.ds.test);
  const auto second = session.run(f.ds.test);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    // Ids are rebased to dataset indices on every run() call.
    EXPECT_EQ(first[i].id, static_cast<std::int64_t>(i));
    EXPECT_EQ(second[i].id, static_cast<std::int64_t>(i));
    EXPECT_EQ(first[i].prediction, second[i].prediction);
  }
}

TEST(InferenceSession, MarginPolicyOffloadsThroughSameApi) {
  Fixture& f = Fixture::instance();
  EngineConfig cfg = f.config();
  core::MarginPolicyConfig margin;
  margin.margin_threshold = 0.35;
  margin.cloud_available = true;
  cfg.policy = std::make_shared<core::ConfidenceMarginPolicy>(f.dict, margin);
  cfg.offload_mode = OffloadMode::kRawImage;
  cfg.cloud = &f.cloud;
  InferenceSession session(cfg);
  const auto results = session.run(f.ds.test);
  const core::RouteCounts routes = count_routes(results);
  EXPECT_EQ(routes.total(), f.ds.test.size());
  EXPECT_GT(routes.cloud, 0);
  for (const InferenceResult& r : results) {
    // The margin rule, not the entropy rule, must have decided.
    if (r.route == core::Route::kCloud) EXPECT_LT(r.margin, 0.35f);
    if (r.margin >= 0.35f) EXPECT_NE(r.route, core::Route::kCloud);
  }
}

TEST(InferenceSession, CostsAreChargedPerRoute) {
  Fixture& f = Fixture::instance();
  EngineConfig cfg = f.config();
  cfg.offload_mode = OffloadMode::kRawImage;
  cfg.cloud = &f.cloud;
  cfg.costs.main_macs = 1000;
  cfg.costs.extension_macs = 500;
  cfg.costs.upload_bytes_per_instance = 2 * 8 * 8;
  InferenceSession session(cfg);
  for (const InferenceResult& r : session.run(f.ds.test)) {
    EXPECT_GT(r.compute_energy_j, 0.0);
    if (r.route == core::Route::kCloud) {
      EXPECT_GT(r.comm_energy_j, 0.0);
      EXPECT_GT(r.comm_time_s, 0.0);
    } else {
      EXPECT_DOUBLE_EQ(r.comm_energy_j, 0.0);
    }
  }
}

TEST(OffloadBackend, PayloadBytesMatchModeGeometry) {
  Fixture& f = Fixture::instance();
  const Shape image = f.ds.test.instance_shape();
  const Shape feature = f.net.main_trunk().output_shape(image);
  RawImageBackend raw(&f.cloud);
  FeatureBackend feat(&f.feature_cloud);
  NullBackend none;
  EXPECT_EQ(raw.payload_bytes(image, feature), image.numel());
  EXPECT_EQ(feat.payload_bytes(image, feature), sim::FeatureCloudNode::feature_bytes(feature));
  EXPECT_EQ(none.payload_bytes(image, feature), 0);
  EXPECT_EQ(offload_mode_name(OffloadMode::kRawImage), std::string("raw-image"));
  EXPECT_EQ(offload_mode_name(OffloadMode::kFeature), std::string("feature"));
  EXPECT_EQ(offload_mode_name(OffloadMode::kNone), std::string("none"));
}

TEST(SyncWeights, ReplicaAnswersBitIdentically) {
  Fixture& f = Fixture::instance();
  util::Rng rng(42);
  core::MEANet replica = tiny_meanet_b(rng, 2);
  sync_weights(f.net, replica);
  const Tensor images = f.ds.test.images.slice_batch(0, 8);
  core::EdgeInferenceEngine primary(f.net, f.dict, core::PolicyConfig{});
  core::EdgeInferenceEngine copy(replica, f.dict, core::PolicyConfig{});
  const auto a = primary.infer(images);
  const auto b = copy.infer(images);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].prediction, b[i].prediction);
    EXPECT_FLOAT_EQ(a[i].entropy, b[i].entropy);
    EXPECT_FLOAT_EQ(a[i].main_confidence, b[i].main_confidence);
  }
}

TEST(EngineConfig, InvalidConfigsAreRejected) {
  Fixture& f = Fixture::instance();
  EngineConfig no_net;
  no_net.dict = &f.dict;
  EXPECT_THROW(InferenceSession{no_net}, std::invalid_argument);
  EngineConfig bad_batch = f.config();
  bad_batch.batch_size = 0;
  EXPECT_THROW(InferenceSession{bad_batch}, std::invalid_argument);
  EXPECT_THROW(RawImageBackend{nullptr}, std::invalid_argument);
  EXPECT_THROW(FeatureBackend{nullptr}, std::invalid_argument);
  EngineConfig raw_without_cloud = f.config();
  raw_without_cloud.offload_mode = OffloadMode::kRawImage;  // cloud left null
  EXPECT_THROW(InferenceSession{raw_without_cloud}, std::invalid_argument);
}

}  // namespace
}  // namespace meanet::runtime
