// Contention determinism tests for sim::SharedCell and the downlink
// model: cell-level delay math (fair-share contention, hashed seeded
// jitter, airtime accounting), bit-identical per-request timings for
// two sessions sharing one cell — across runs at the same seed and at
// different worker counts — downlink cost scaling with response payload
// bytes, and single-session-on-cell parity with the standalone
// SimulatedLink.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <vector>

#include "runtime/session.h"
#include "runtime/transport.h"
#include "sim/shared_cell.h"

#include "core/builders.h"
#include "core/trainer.h"
#include "sim/cloud_node.h"
#include "tiny_models.h"

namespace meanet::runtime {
namespace {

using meanet::testing::tiny_data_spec;
using meanet::testing::tiny_meanet_b;

// ---------------------------------------------------------------------
// Cell-level delay math
// ---------------------------------------------------------------------

TEST(SharedCellMath, FairShareContentionScalesTransferTime) {
  sim::SharedCellConfig config;
  config.uplink.throughput_mbps = 10.0;
  config.downlink.throughput_mbps = 20.0;
  sim::SharedCell cell(config);

  const int s0 = cell.attach();
  ASSERT_EQ(s0, 0);
  const double solo = cell.uplink_delay_s(s0, 0, 1 << 20);
  EXPECT_DOUBLE_EQ(solo, config.uplink.upload_time_s(1 << 20));

  // A second station halves everyone's throughput; a third cuts it to a
  // third. Detaching restores the share.
  const int s1 = cell.attach();
  EXPECT_DOUBLE_EQ(cell.uplink_delay_s(s0, 1, 1 << 20), 2.0 * solo);
  const int s2 = cell.attach();
  EXPECT_DOUBLE_EQ(cell.uplink_delay_s(s1, 0, 1 << 20), 3.0 * solo);
  cell.detach(s2);
  cell.detach(s1);
  EXPECT_DOUBLE_EQ(cell.uplink_delay_s(s0, 2, 1 << 20), solo);
}

TEST(SharedCellMath, DownlinkCostScalesWithResponseBytes) {
  sim::SharedCellConfig config;
  config.downlink.throughput_mbps = 5.0;
  sim::SharedCell cell(config);
  const int station = cell.attach();

  const double one_kb = cell.downlink_delay_s(station, 0, 1024);
  EXPECT_DOUBLE_EQ(one_kb, config.downlink.upload_time_s(1024));
  EXPECT_DOUBLE_EQ(cell.downlink_delay_s(station, 1, 4096), 4.0 * one_kb);
  EXPECT_DOUBLE_EQ(cell.downlink_delay_s(station, 2, 0), 0.0);
}

TEST(SharedCellMath, JitterIsSeededPerStationAndDirection) {
  sim::SharedCellConfig config;
  config.jitter_s = 0.050;
  config.seed = 0xABCD;
  sim::SharedCell a(config), b(config);
  const int a0 = a.attach(), a1 = a.attach();
  const int b0 = b.attach(), b1 = b.attach();

  bool stations_diverged = false, directions_diverged = false;
  for (std::uint64_t key = 0; key < 32; ++key) {
    // Same seed, same station, same key -> identical across cells.
    EXPECT_DOUBLE_EQ(a.uplink_delay_s(a0, key, 1024), b.uplink_delay_s(b0, key, 1024));
    EXPECT_DOUBLE_EQ(a.uplink_delay_s(a1, key, 1024), b.uplink_delay_s(b1, key, 1024));
    // Different stations / directions draw independent jitter.
    if (a.uplink_delay_s(a0, key, 1024) != a.uplink_delay_s(a1, key, 1024)) {
      stations_diverged = true;
    }
    if (a.uplink_delay_s(a0, key, 1024) != a.downlink_delay_s(a0, key, 1024)) {
      directions_diverged = true;
    }
  }
  EXPECT_TRUE(stations_diverged);
  EXPECT_TRUE(directions_diverged);

  // A different seed diverges.
  sim::SharedCellConfig other = config;
  other.seed = 0xABCE;
  sim::SharedCell c(other);
  const int c0 = c.attach();
  bool seed_diverged = false;
  for (std::uint64_t key = 0; key < 32 && !seed_diverged; ++key) {
    seed_diverged = a.uplink_delay_s(a0, key, 1024) != c.uplink_delay_s(c0, key, 1024);
  }
  EXPECT_TRUE(seed_diverged);
}

TEST(SharedCellMath, ValidatesConfiguration) {
  sim::SharedCellConfig bad;
  bad.uplink.throughput_mbps = 0.0;
  EXPECT_THROW(sim::SharedCell{bad}, std::invalid_argument);
  bad = sim::SharedCellConfig{};
  bad.downlink.throughput_mbps = -1.0;
  EXPECT_THROW(sim::SharedCell{bad}, std::invalid_argument);
  bad = sim::SharedCellConfig{};
  bad.jitter_s = -0.1;
  EXPECT_THROW(sim::SharedCell{bad}, std::invalid_argument);
}

TEST(SharedCellMath, AirtimeAccountingSumsTransfersNotBaseLatency) {
  sim::SharedCellConfig config;
  config.uplink.throughput_mbps = 8.0;
  config.base_latency_s = 0.5;  // must not count as airtime
  sim::SharedCell cell(config);
  const int station = cell.attach();
  EXPECT_DOUBLE_EQ(cell.busy_seconds(), 0.0);
  const double transfer = config.uplink.upload_time_s(1 << 20);
  const double reported = cell.uplink_delay_s(station, 0, 1 << 20);
  EXPECT_DOUBLE_EQ(reported, transfer + config.base_latency_s);
  EXPECT_DOUBLE_EQ(cell.busy_seconds(), transfer);
}

// ---------------------------------------------------------------------
// Sessions on a shared cell
// ---------------------------------------------------------------------

/// A fully trained tiny system shared by all tests in this file (built
/// once: training dominates the suite's runtime otherwise).
struct Fixture {
  data::SyntheticDataset ds;
  core::MEANet net;
  data::ClassDict dict;
  sim::CloudNode cloud;

  static Fixture& instance() {
    static Fixture fixture = make();
    return fixture;
  }

  static Fixture make() {
    util::Rng rng(1);
    data::SyntheticDataset ds = data::make_synthetic(tiny_data_spec(), 21);
    core::MEANet net = tiny_meanet_b(rng, 2);
    core::DistributedTrainer trainer(net);
    core::TrainOptions options;
    options.epochs = 5;
    options.batch_size = 16;
    util::Rng train_rng(2);
    trainer.train_main(ds.train, options, train_rng);
    data::ClassDict dict = trainer.select_hard_classes_from_validation(ds.test, 2);
    trainer.train_edge_blocks(ds.train, dict, options, train_rng);

    nn::Sequential cloud_model = core::build_cloud_classifier(2, 4, rng);
    core::TrainOptions cloud_options;
    cloud_options.epochs = 6;
    cloud_options.batch_size = 16;
    core::train_classifier(cloud_model, ds.train, cloud_options, train_rng);

    return Fixture{std::move(ds), std::move(net), std::move(dict),
                   sim::CloudNode(std::move(cloud_model))};
  }

  /// Everything cloud-routed, one payload per frame: each request's
  /// simulated transfer delays are then pure functions of its id.
  EngineConfig config(int worker_threads = 1) {
    EngineConfig cfg;
    cfg.net = &net;
    cfg.dict = &dict;
    cfg.policy_config.cloud_available = true;
    cfg.policy_config.entropy_threshold = 0.0;
    cfg.offload_mode = OffloadMode::kRawImage;
    cfg.cloud = &cloud;
    cfg.batch_size = 1;
    cfg.worker_threads = worker_threads;
    return cfg;
  }
};

/// Per-request (id, simulated upload, simulated downlink) of a session
/// run: the "timings" the determinism contract is about.
struct RequestTimings {
  std::vector<std::int64_t> ids;
  std::vector<double> upload_s;
  std::vector<double> download_s;

  static RequestTimings of(const std::vector<InferenceResult>& results) {
    RequestTimings t;
    for (const InferenceResult& r : results) {
      t.ids.push_back(r.id);
      t.upload_s.push_back(r.upload_time_s);
      t.download_s.push_back(r.download_time_s);
    }
    return t;
  }
};

void expect_bit_identical(const RequestTimings& a, const RequestTimings& b) {
  ASSERT_EQ(a.ids, b.ids);
  for (std::size_t i = 0; i < a.ids.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.upload_s[i], b.upload_s[i]) << "upload diverged at request " << i;
    EXPECT_DOUBLE_EQ(a.download_s[i], b.download_s[i]) << "downlink diverged at request " << i;
  }
}

/// Transport parameters fast enough that the dispatcher's simulated
/// sleeps stay in the microsecond range (a 128-byte frame at 18.88 Mb/s
/// is ~54us).
TransportConfig fast_jittered_transport() {
  TransportConfig transport;
  transport.base_latency_s = 0.0001;
  transport.jitter_s = 0.0002;
  transport.seed = 0x5E11;
  return transport;
}

/// Runs `frames` frames through two sessions sharing one cell built
/// from `transport` (the cell field is filled here) and returns both
/// sessions' per-request timings plus the cell's busy seconds.
struct TwoSessionRun {
  RequestTimings a, b;
  double busy_s = 0.0;
};

TwoSessionRun run_two_sessions(Fixture& f, TransportConfig transport, int frames,
                               int worker_threads) {
  sim::SharedCellConfig cell_config;
  cell_config.uplink = transport.wifi;
  cell_config.downlink = transport.downlink;
  cell_config.base_latency_s = transport.base_latency_s;
  cell_config.jitter_s = transport.jitter_s;
  cell_config.seed = transport.seed;
  auto cell = std::make_shared<sim::SharedCell>(cell_config);
  transport.cell = cell;

  EngineConfig cfg_a = f.config(worker_threads);
  cfg_a.transport = transport;
  EngineConfig cfg_b = f.config(worker_threads);
  cfg_b.transport = transport;

  TwoSessionRun out;
  {
    // Both sessions attach before any traffic, so every transfer sees
    // the same contention factor (2) deterministically.
    InferenceSession session_a(cfg_a);
    InferenceSession session_b(cfg_b);
    EXPECT_EQ(cell->stations(), 2);
    std::vector<ResultHandle> handles_a, handles_b;
    for (int i = 0; i < frames; ++i) {
      handles_a.push_back(session_a.submit(f.ds.test.instance(i)));
      handles_b.push_back(session_b.submit(f.ds.test.instance(frames + i)));
    }
    std::vector<InferenceResult> results_a, results_b;
    for (ResultHandle& h : handles_a) results_a.push_back(h.wait().front());
    for (ResultHandle& h : handles_b) results_b.push_back(h.wait().front());
    session_a.drain();
    session_b.drain();
    for (const InferenceResult& r : results_a) {
      EXPECT_TRUE(r.offloaded);
      EXPECT_GT(r.upload_time_s, 0.0);
    }
    out.a = RequestTimings::of(results_a);
    out.b = RequestTimings::of(results_b);
    out.busy_s = cell->busy_seconds();
  }
  return out;
}

TEST(SharedCellSessions, TwoSessionsAreBitIdenticalAcrossRunsAndWorkerCounts) {
  Fixture& f = Fixture::instance();
  constexpr int kFrames = 16;
  const TransportConfig transport = fast_jittered_transport();

  const TwoSessionRun first = run_two_sessions(f, transport, kFrames, 1);
  const TwoSessionRun second = run_two_sessions(f, transport, kFrames, 1);
  const TwoSessionRun threaded = run_two_sessions(f, transport, kFrames, 4);

  // Same seed, same run: bit-identical per-request timings...
  expect_bit_identical(first.a, second.a);
  expect_bit_identical(first.b, second.b);
  // ...and the worker count does not perturb them either.
  expect_bit_identical(first.a, threaded.a);
  expect_bit_identical(first.b, threaded.b);
  EXPECT_DOUBLE_EQ(first.busy_s, second.busy_s);
  EXPECT_DOUBLE_EQ(first.busy_s, threaded.busy_s);

  // The two stations draw distinct jitter streams: their timing vectors
  // must not be mirror copies of each other.
  bool diverged = false;
  for (int i = 0; i < kFrames && !diverged; ++i) {
    diverged = first.a.upload_s[static_cast<std::size_t>(i)] !=
               first.b.upload_s[static_cast<std::size_t>(i)];
  }
  EXPECT_TRUE(diverged);

  // Airtime accounting closes: the cell's busy seconds are exactly the
  // transfers it charged, minus nothing (no abandoned transfers here).
  double charged = 0.0;
  for (int i = 0; i < kFrames; ++i) {
    // Delays include the base-latency floor; busy time does not.
    charged += first.a.upload_s[static_cast<std::size_t>(i)] +
               first.a.download_s[static_cast<std::size_t>(i)] +
               first.b.upload_s[static_cast<std::size_t>(i)] +
               first.b.download_s[static_cast<std::size_t>(i)];
  }
  EXPECT_NEAR(first.busy_s, charged - 4 * kFrames * 0.0001, 1e-9);
}

TEST(SharedCellSessions, ContentionDoublesUploadTimeOfEveryPayload) {
  Fixture& f = Fixture::instance();
  constexpr int kFrames = 6;
  TransportConfig transport;  // no jitter, no base RTT: pure transfer time
  const TwoSessionRun contended = run_two_sessions(f, transport, kFrames, 1);

  // Solo baseline on a plain (private, single-station) link.
  EngineConfig cfg = f.config(1);
  cfg.transport = transport;
  InferenceSession solo(cfg);
  std::vector<ResultHandle> handles;
  for (int i = 0; i < kFrames; ++i) handles.push_back(solo.submit(f.ds.test.instance(i)));
  std::vector<InferenceResult> solo_results;
  for (ResultHandle& h : handles) solo_results.push_back(h.wait().front());
  solo.drain();

  for (int i = 0; i < kFrames; ++i) {
    EXPECT_DOUBLE_EQ(contended.a.upload_s[static_cast<std::size_t>(i)],
                     2.0 * solo_results[static_cast<std::size_t>(i)].upload_time_s)
        << "two stations must halve the fair-share throughput";
  }
}

TEST(SharedCellSessions, SingleSessionOnCellMatchesStandaloneLinkExactly) {
  Fixture& f = Fixture::instance();
  constexpr int kFrames = 12;
  const TransportConfig plain = fast_jittered_transport();

  // Standalone link (PR 3 shape: TransportConfig without a cell).
  EngineConfig cfg_plain = f.config(1);
  cfg_plain.transport = plain;

  // The same parameters as an explicit one-station cell.
  TransportConfig on_cell = plain;
  sim::SharedCellConfig cell_config;
  cell_config.uplink = plain.wifi;
  cell_config.downlink = plain.downlink;
  cell_config.base_latency_s = plain.base_latency_s;
  cell_config.jitter_s = plain.jitter_s;
  cell_config.seed = plain.seed;
  on_cell.cell = std::make_shared<sim::SharedCell>(cell_config);
  EngineConfig cfg_cell = f.config(1);
  cfg_cell.transport = on_cell;

  auto serve = [&](EngineConfig cfg) {
    InferenceSession session(cfg);
    std::vector<ResultHandle> handles;
    for (int i = 0; i < kFrames; ++i) handles.push_back(session.submit(f.ds.test.instance(i)));
    std::vector<InferenceResult> results;
    for (ResultHandle& h : handles) results.push_back(h.wait().front());
    session.drain();
    return RequestTimings::of(results);
  };

  // Backward-compat parity: alone on the cell, every per-request timing
  // (including the seeded jitter draws) equals the standalone link's.
  expect_bit_identical(serve(cfg_plain), serve(std::move(cfg_cell)));
}

TEST(SharedCellSessions, DownlinkGatesTheAnswerAndScalesWithResponseBytes) {
  Fixture& f = Fixture::instance();
  // Uplink fast; downlink slow enough to dominate: a 125 kB response at
  // 100 Mb/s is a 10ms transfer.
  TransportConfig transport;
  transport.downlink.throughput_mbps = 100.0;
  transport.response_bytes_per_instance = 125000;
  const double expected_down_s = transport.downlink.upload_time_s(125000);
  ASSERT_NEAR(expected_down_s, 0.010, 1e-12);

  EngineConfig cfg = f.config(1);
  cfg.transport = transport;
  InferenceSession session(cfg);

  const auto started = std::chrono::steady_clock::now();
  const auto results = session.submit(f.ds.test.instance(0)).wait();
  const double waited_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started).count();
  session.drain();

  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results.front().offloaded);
  // The reported downlink occupancy is the pure-function transfer time,
  // and the caller really waited for it (upload + downlink at least).
  EXPECT_DOUBLE_EQ(results.front().download_time_s, expected_down_s);
  EXPECT_GE(waited_s, results.front().upload_time_s + expected_down_s);

  // Double the response, double the transfer (fresh session; the jitter
  // is zero so the values are exact).
  TransportConfig doubled = transport;
  doubled.response_bytes_per_instance = 250000;
  EngineConfig cfg2 = f.config(1);
  cfg2.transport = doubled;
  InferenceSession session2(cfg2);
  const auto results2 = session2.submit(f.ds.test.instance(0)).wait();
  session2.drain();
  ASSERT_EQ(results2.size(), 1u);
  EXPECT_DOUBLE_EQ(results2.front().download_time_s, 2.0 * expected_down_s);

  // And zero response bytes restore PR 3's free answers.
  TransportConfig free_answers = transport;
  free_answers.response_bytes_per_instance = 0;
  EngineConfig cfg3 = f.config(1);
  cfg3.transport = free_answers;
  InferenceSession session3(cfg3);
  const auto results3 = session3.submit(f.ds.test.instance(0)).wait();
  session3.drain();
  ASSERT_EQ(results3.size(), 1u);
  EXPECT_TRUE(results3.front().offloaded);
  EXPECT_DOUBLE_EQ(results3.front().download_time_s, 0.0);
}

TEST(SharedCellSessions, MetricsSurfaceCellAirtime) {
  Fixture& f = Fixture::instance();
  const TransportConfig transport = fast_jittered_transport();
  EngineConfig cfg = f.config(1);
  cfg.transport = transport;
  InferenceSession session(cfg);
  for (int i = 0; i < 4; ++i) session.submit(f.ds.test.instance(i)).wait();
  const SessionMetrics m = session.metrics();
  session.drain();
  EXPECT_GT(m.cell_busy_s, 0.0);
  EXPECT_GT(m.cell_airtime_utilization, 0.0);
}

}  // namespace
}  // namespace meanet::runtime
