#include <gtest/gtest.h>

#include "core/builders.h"
#include "core/trainer.h"
#include "sim/system.h"
#include "tiny_models.h"

namespace meanet::sim {
namespace {

using meanet::testing::tiny_data_spec;
using meanet::testing::tiny_meanet_b;
using meanet::testing::tiny_resnet_config;

struct Fixture {
  data::SyntheticDataset ds;
  core::MEANet net;
  data::ClassDict dict;
  nn::Sequential cloud_model;

  static Fixture make() {
    util::Rng rng(1);
    data::SyntheticDataset ds = data::make_synthetic(tiny_data_spec(), 21);
    core::MEANet net = tiny_meanet_b(rng, 2);
    core::DistributedTrainer trainer(net);
    core::TrainOptions options;
    options.epochs = 5;
    options.batch_size = 16;
    util::Rng train_rng(2);
    trainer.train_main(ds.train, options, train_rng);
    data::ClassDict dict = trainer.select_hard_classes_from_validation(ds.test, 2);
    trainer.train_edge_blocks(ds.train, dict, options, train_rng);

    nn::Sequential cloud_model = core::build_cloud_classifier(2, 4, rng);
    core::TrainOptions cloud_options;
    cloud_options.epochs = 8;
    cloud_options.batch_size = 16;
    core::train_classifier(cloud_model, ds.train, cloud_options, train_rng);
    return Fixture{std::move(ds), std::move(net), std::move(dict), std::move(cloud_model)};
  }

  EdgeNodeCosts costs() const {
    EdgeNodeCosts c;
    c.upload_bytes_per_instance = 2 * 8 * 8;  // raw image bytes
    c.main_macs = 1000000;
    c.extension_macs = 500000;
    return c;
  }
};

TEST(DistributedSystem, NoCloudMeansNoCommunication) {
  Fixture f = Fixture::make();
  EdgeNode edge(f.net, f.dict, core::PolicyConfig{}, f.costs());
  DistributedSystem system(std::move(edge), nullptr);
  const SystemReport report = system.run(f.ds.test);
  EXPECT_EQ(report.routes.cloud, 0);
  EXPECT_DOUBLE_EQ(report.communication_energy_j, 0.0);
  EXPECT_GT(report.edge_compute_energy_j, 0.0);
  EXPECT_GT(report.accuracy, 0.4);
}

TEST(DistributedSystem, ZeroThresholdSendsEverythingToCloud) {
  Fixture f = Fixture::make();
  CloudNode cloud(std::move(f.cloud_model));
  core::PolicyConfig policy;
  policy.cloud_available = true;
  policy.entropy_threshold = 0.0;
  EdgeNode edge(f.net, f.dict, policy, f.costs());
  DistributedSystem system(std::move(edge), &cloud);
  const SystemReport report = system.run(f.ds.test);
  // All test instances have strictly positive entropy in practice.
  EXPECT_GT(report.cloud_fraction, 0.99);
  EXPECT_GT(report.communication_energy_j, 0.0);
  EXPECT_EQ(cloud.instances_served(), f.ds.test.size());
}

TEST(DistributedSystem, HigherThresholdSendsLess) {
  Fixture f = Fixture::make();
  CloudNode cloud(std::move(f.cloud_model));
  auto run_with_threshold = [&](double threshold) {
    core::PolicyConfig policy;
    policy.cloud_available = true;
    policy.entropy_threshold = threshold;
    EdgeNode edge(f.net, f.dict, policy, f.costs());
    DistributedSystem system(std::move(edge), &cloud);
    return system.run(f.ds.test);
  };
  const SystemReport low = run_with_threshold(0.2);
  const SystemReport high = run_with_threshold(1.0);
  EXPECT_GE(low.cloud_fraction, high.cloud_fraction);
  EXPECT_GE(low.communication_energy_j, high.communication_energy_j);
}

TEST(DistributedSystem, CloudImprovesAccuracyOverEdgeOnly) {
  Fixture f = Fixture::make();
  // Edge-only baseline.
  EdgeNode edge_only(f.net, f.dict, core::PolicyConfig{}, f.costs());
  DistributedSystem baseline(std::move(edge_only), nullptr);
  const SystemReport edge_report = baseline.run(f.ds.test);

  CloudNode cloud(std::move(f.cloud_model));
  core::PolicyConfig policy;
  policy.cloud_available = true;
  policy.entropy_threshold = 0.3;
  EdgeNode edge(f.net, f.dict, policy, f.costs());
  DistributedSystem system(std::move(edge), &cloud);
  const SystemReport cloud_report = system.run(f.ds.test);
  EXPECT_GE(cloud_report.accuracy, edge_report.accuracy);
}

TEST(DistributedSystem, ReportInternallyConsistent) {
  Fixture f = Fixture::make();
  CloudNode cloud(std::move(f.cloud_model));
  core::PolicyConfig policy;
  policy.cloud_available = true;
  policy.entropy_threshold = 0.5;
  EdgeNode edge(f.net, f.dict, policy, f.costs());
  DistributedSystem system(std::move(edge), &cloud);
  const SystemReport report = system.run(f.ds.test, 13);  // odd batch size
  EXPECT_EQ(report.routes.total(), f.ds.test.size());
  EXPECT_EQ(static_cast<int>(report.predictions.size()), f.ds.test.size());
  EXPECT_EQ(static_cast<int>(report.instance_routes.size()), f.ds.test.size());
  EXPECT_NEAR(report.cloud_fraction,
              static_cast<double>(report.routes.cloud) / f.ds.test.size(), 1e-12);
  EXPECT_DOUBLE_EQ(report.edge_energy_j(),
                   report.edge_compute_energy_j + report.communication_energy_j);
  // Energy accounting: every instance pays main MACs; extension extra.
  const EdgeNodeCosts costs = f.costs();
  DeviceModel device;  // default throughput used in costs()
  const double expected_compute =
      device.compute_energy_j(costs.main_macs) * report.routes.total() +
      device.compute_energy_j(costs.extension_macs) * report.routes.extension_exit;
  EXPECT_NEAR(report.edge_compute_energy_j, expected_compute, 1e-9);
}

TEST(DistributedSystem, ThreadedRunMatchesSingleThreadedAndReportsServing) {
  Fixture f = Fixture::make();
  CloudNode cloud(std::move(f.cloud_model));
  core::PolicyConfig policy;
  policy.cloud_available = true;
  policy.entropy_threshold = 0.3;
  EdgeNode edge(f.net, f.dict, policy, f.costs());
  DistributedSystem system(std::move(edge), &cloud);
  const SystemReport single = system.run(f.ds.test, 16);

  // add_replica is a deprecated no-op: workers share the edge net.
  util::Rng replica_rng(11);
  core::MEANet replica = tiny_meanet_b(replica_rng, 2);
  system.add_replica(replica);
  EXPECT_EQ(system.replica_count(), 0);
  // Two workers sharing the one net, small batches: the routed
  // predictions must be identical to the single-worker run.
  const SystemReport threaded = system.run(f.ds.test, 8, 2);
  ASSERT_EQ(threaded.predictions.size(), single.predictions.size());
  for (std::size_t i = 0; i < single.predictions.size(); ++i) {
    EXPECT_EQ(threaded.predictions[i], single.predictions[i]) << i;
  }
  EXPECT_DOUBLE_EQ(threaded.accuracy, single.accuracy);
  // The report now carries the session's serving counters.
  EXPECT_EQ(threaded.serving.completed_instances, f.ds.test.size());
  EXPECT_GE(threaded.serving.queue_depth_high_water, 1);
  EXPECT_EQ(threaded.serving.route_count(core::Route::kCloud), threaded.routes.cloud);
}

TEST(EdgeNode, PerRouteCosts) {
  Fixture f = Fixture::make();
  EdgeNodeCosts costs = f.costs();
  EdgeNode edge(f.net, f.dict, core::PolicyConfig{}, costs);
  core::InstanceDecision main_exit;
  main_exit.route = core::Route::kMainExit;
  core::InstanceDecision ext_exit;
  ext_exit.route = core::Route::kExtensionExit;
  core::InstanceDecision cloud;
  cloud.route = core::Route::kCloud;
  EXPECT_GT(edge.compute_energy_j(ext_exit), edge.compute_energy_j(main_exit));
  EXPECT_DOUBLE_EQ(edge.compute_energy_j(cloud), edge.compute_energy_j(main_exit));
  EXPECT_DOUBLE_EQ(edge.comm_energy_j(main_exit), 0.0);
  EXPECT_GT(edge.comm_energy_j(cloud), 0.0);
  EXPECT_GT(edge.comm_time_s(cloud), 0.0);
}

}  // namespace
}  // namespace meanet::sim
