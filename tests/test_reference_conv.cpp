// Cross-validation of the im2col+GEMM convolution against an
// independent naive direct convolution, and full-model serialization
// round trips for both MEANet families. These catch classes of bugs the
// finite-difference checks cannot (e.g. a transposed-but-consistent
// weight layout).
#include <gtest/gtest.h>

#include <cstdio>

#include "core/builders.h"
#include "nn/conv2d.h"
#include "nn/serialize.h"
#include "tiny_models.h"

namespace meanet::nn {
namespace {

/// Direct convolution: out(n,oc,oh,ow) = sum_ic,kh,kw W(oc,ic,kh,kw) *
/// in(n,ic,oh*s-p+kh,ow*s-p+kw) + b(oc).
Tensor naive_conv(const Tensor& input, const Tensor& weight, const Tensor& bias, bool has_bias,
                  int out_channels, int kernel, int stride, int padding) {
  const int batch = input.shape().batch();
  const int in_c = input.shape().channels();
  const int in_h = input.shape().height(), in_w = input.shape().width();
  const int out_h = (in_h + 2 * padding - kernel) / stride + 1;
  const int out_w = (in_w + 2 * padding - kernel) / stride + 1;
  Tensor out(Shape{batch, out_channels, out_h, out_w});
  for (int n = 0; n < batch; ++n) {
    for (int oc = 0; oc < out_channels; ++oc) {
      for (int oh = 0; oh < out_h; ++oh) {
        for (int ow = 0; ow < out_w; ++ow) {
          float acc = has_bias ? bias[oc] : 0.0f;
          for (int ic = 0; ic < in_c; ++ic) {
            for (int kh = 0; kh < kernel; ++kh) {
              for (int kw = 0; kw < kernel; ++kw) {
                const int ih = oh * stride - padding + kh;
                const int iw = ow * stride - padding + kw;
                if (ih < 0 || ih >= in_h || iw < 0 || iw >= in_w) continue;
                // Weight layout: [out_c, in_c * k * k] row-major.
                const float w =
                    weight[(static_cast<std::int64_t>(oc) * in_c + ic) * kernel * kernel +
                           kh * kernel + kw];
                acc += w * input.at(n, ic, ih, iw);
              }
            }
          }
          out.at(n, oc, oh, ow) = acc;
        }
      }
    }
  }
  return out;
}

class ConvCrossCheck
    : public ::testing::TestWithParam<std::tuple<int, int, int, int, int, bool>> {};
// in_c, out_c, kernel, stride, padding, bias

TEST_P(ConvCrossCheck, Im2colMatchesNaiveConvolution) {
  const auto [in_c, out_c, kernel, stride, padding, bias] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(in_c * 1000 + out_c * 100 + kernel * 10 + stride));
  Conv2d conv(in_c, out_c, kernel, stride, padding, bias, rng);
  const int size = 9;
  if (conv.output_shape(Shape{1, in_c, size, size}).height() <= 0) GTEST_SKIP();
  const Tensor x = Tensor::normal(Shape{2, in_c, size, size}, rng);
  const Tensor fast = conv.forward(x, Mode::kEval);
  const Tensor reference = naive_conv(x, conv.weight().value, conv.bias().value, bias, out_c,
                                      kernel, stride, padding);
  EXPECT_TRUE(allclose(fast, reference, 1e-4f))
      << "in_c=" << in_c << " out_c=" << out_c << " k=" << kernel << " s=" << stride
      << " p=" << padding;
}

INSTANTIATE_TEST_SUITE_P(Geometries, ConvCrossCheck,
                         ::testing::Combine(::testing::Values(1, 3), ::testing::Values(2, 5),
                                            ::testing::Values(1, 3, 5), ::testing::Values(1, 2),
                                            ::testing::Values(0, 1, 2), ::testing::Bool()));

TEST(MeanetSerialization, ResNetMeanetFullRoundTrip) {
  util::Rng rng_a(1), rng_b(2);
  core::MEANet a = meanet::testing::tiny_meanet_b(rng_a, 2);
  core::MEANet b = meanet::testing::tiny_meanet_b(rng_b, 2);

  const std::string prefix = ::testing::TempDir() + "/meanet_full";
  save_model(a.main_trunk(), prefix + ".trunk");
  save_model(a.main_exit(), prefix + ".exit");
  save_model(a.adaptive(), prefix + ".adaptive");
  save_model(a.extension(), prefix + ".extension");
  load_model(b.main_trunk(), prefix + ".trunk");
  load_model(b.main_exit(), prefix + ".exit");
  load_model(b.adaptive(), prefix + ".adaptive");
  load_model(b.extension(), prefix + ".extension");

  util::Rng data_rng(3);
  const Tensor x = Tensor::normal(Shape{3, 2, 8, 8}, data_rng);
  const core::MainForward fa = a.forward_main(x, Mode::kEval);
  const core::MainForward fb = b.forward_main(x, Mode::kEval);
  EXPECT_TRUE(allclose(fa.logits, fb.logits, 0.0f));
  const Tensor ya = a.forward_extension(x, fa.features, Mode::kEval);
  const Tensor yb = b.forward_extension(x, fb.features, Mode::kEval);
  EXPECT_TRUE(allclose(ya, yb, 0.0f));
  for (const char* suffix : {".trunk", ".exit", ".adaptive", ".extension"}) {
    std::remove((prefix + suffix).c_str());
  }
}

TEST(MeanetSerialization, MobileNetMeanetFullRoundTrip) {
  core::MobileNetConfig config;
  config.stem_channels = 4;
  config.blocks = {{4, 1, 1}, {6, 2, 2}};
  config.image_channels = 2;
  config.num_classes = 4;
  util::Rng rng_a(4), rng_b(5);
  core::MEANet a = core::build_mobilenet_meanet_b(config, 2, core::FusionMode::kSum, rng_a, 2);
  core::MEANet b = core::build_mobilenet_meanet_b(config, 2, core::FusionMode::kSum, rng_b, 2);

  const std::string prefix = ::testing::TempDir() + "/mnet_full";
  save_model(a.main_trunk(), prefix + ".trunk");
  load_model(b.main_trunk(), prefix + ".trunk");
  util::Rng data_rng(6);
  const Tensor x = Tensor::normal(Shape{2, 2, 8, 8}, data_rng);
  EXPECT_TRUE(allclose(a.main_trunk().forward(x, Mode::kEval),
                       b.main_trunk().forward(x, Mode::kEval), 0.0f));
  std::remove((prefix + ".trunk").c_str());
}

}  // namespace
}  // namespace meanet::nn
