#include <gtest/gtest.h>

#include "core/builders.h"
#include "core/complexity.h"
#include "core/trainer.h"
#include "tensor/ops.h"
#include "tiny_models.h"

namespace meanet::core {
namespace {

using meanet::testing::tiny_data_spec;
using meanet::testing::tiny_meanet_b;
using meanet::testing::tiny_resnet_config;

TrainOptions fast_options(int epochs = 4) {
  TrainOptions options;
  options.epochs = epochs;
  options.batch_size = 16;
  options.sgd.learning_rate = 0.05f;
  return options;
}

TEST(TrainClassifier, LossDecreasesAndAccuracyRises) {
  util::Rng rng(1);
  const data::SyntheticDataset ds = data::make_synthetic(tiny_data_spec(), 11);
  nn::Sequential net = build_resnet_classifier(tiny_resnet_config(), rng);
  util::Rng train_rng(2);
  const TrainCurve curve = train_classifier(net, ds.train, fast_options(6), train_rng);
  ASSERT_EQ(curve.size(), 6u);
  EXPECT_LT(curve.back().loss, curve.front().loss);
  EXPECT_GT(curve.back().accuracy, curve.front().accuracy);
  // Better than chance (4 classes -> 0.25) by a clear margin.
  EXPECT_GT(curve.back().accuracy, 0.5);
}

TEST(TrainClassifier, RejectsEmptyDataset) {
  util::Rng rng(1);
  nn::Sequential net = build_resnet_classifier(tiny_resnet_config(), rng);
  data::Dataset empty;
  empty.num_classes = 4;
  empty.images = Tensor(Shape{0, 2, 8, 8});
  util::Rng train_rng(2);
  EXPECT_THROW(train_classifier(net, empty, fast_options(), train_rng), std::invalid_argument);
}

TEST(DistributedTrainer, TrainMainImprovesMainAccuracy) {
  util::Rng rng(3);
  const data::SyntheticDataset ds = data::make_synthetic(tiny_data_spec(), 12);
  MEANet net = tiny_meanet_b(rng, 2);
  DistributedTrainer trainer(net);
  util::Rng train_rng(4);
  const TrainCurve curve = trainer.train_main(ds.train, fast_options(6), train_rng);
  EXPECT_GT(curve.back().accuracy, 0.5);
  const MainProfile profile = profile_main(net, ds.test);
  EXPECT_GT(profile.accuracy, 0.4);
}

TEST(DistributedTrainer, HardClassSelectionMatchesLowestPrecision) {
  util::Rng rng(5);
  const data::SyntheticDataset ds = data::make_synthetic(tiny_data_spec(), 13);
  MEANet net = tiny_meanet_b(rng, 2);
  DistributedTrainer trainer(net);
  util::Rng train_rng(6);
  trainer.train_main(ds.train, fast_options(5), train_rng);
  const data::ClassDict dict = trainer.select_hard_classes_from_validation(ds.test, 2);
  EXPECT_EQ(dict.num_hard(), 2);
  // The dictionary must contain exactly the 2 lowest-precision classes.
  const MainProfile profile = profile_main(net, ds.test);
  const std::vector<int> expected = select_hard_classes(profile.confusion, 2);
  for (int c : expected) EXPECT_TRUE(dict.is_hard(c));
}

TEST(DistributedTrainer, EdgeTrainingOnlyTouchesEdgeParams) {
  util::Rng rng(7);
  const data::SyntheticDataset ds = data::make_synthetic(tiny_data_spec(), 14);
  MEANet net = tiny_meanet_b(rng, 2);
  DistributedTrainer trainer(net);
  util::Rng train_rng(8);
  trainer.train_main(ds.train, fast_options(3), train_rng);

  const data::ClassDict dict = trainer.select_hard_classes_from_validation(ds.test, 2);
  // Snapshot main parameters.
  std::vector<Tensor> before;
  for (nn::Parameter* p : net.main_parameters()) before.push_back(p->value);
  trainer.train_edge_blocks(ds.train, dict, fast_options(2), train_rng);
  const auto main_params = net.main_parameters();
  for (std::size_t i = 0; i < main_params.size(); ++i) {
    EXPECT_TRUE(allclose(before[i], main_params[i]->value, 0.0f)) << main_params[i]->name;
  }
  EXPECT_TRUE(net.main_frozen());
}

TEST(DistributedTrainer, Algorithm1ImprovesHardClassAccuracy) {
  util::Rng rng(9);
  // Extra-noisy variant so the main block is genuinely imperfect on the
  // hard classes (otherwise there is nothing for the extension to fix).
  data::SyntheticSpec spec = tiny_data_spec();
  spec.noise_stddev = 0.45f;
  spec.min_difficulty = 0.45f;
  spec.max_difficulty = 0.95f;
  spec.train_per_class = 50;
  spec.test_per_class = 25;
  const data::SyntheticDataset ds = data::make_synthetic(spec, 15);
  MEANet net = tiny_meanet_b(rng, 2);
  DistributedTrainer trainer(net);
  util::Rng train_rng(10);
  trainer.train_main(ds.train, fast_options(6), train_rng);
  const data::ClassDict dict = trainer.select_hard_classes_from_validation(ds.test, 2);

  // Hard-class accuracy of the main block alone (on hard test data).
  const data::Dataset hard_test = data::filter_by_labels(ds.test, dict.hard_classes());
  const MainProfile before = profile_main(net, hard_test);

  const TrainCurve curve = trainer.train_edge_blocks(ds.train, dict, fast_options(12), train_rng);
  // Training accuracy at exit 2 should become strong on the reduced
  // 2-class problem.
  EXPECT_GT(curve.back().accuracy, 0.7);
  // And exit-2 test accuracy on hard classes should beat the main block.
  const data::Dataset hard_remapped =
      data::remap_labels(hard_test, dict.mapping(), dict.num_hard());
  std::int64_t correct = 0;
  for (int start = 0; start < hard_remapped.size(); start += 16) {
    const int count = std::min(16, hard_remapped.size() - start);
    const Tensor images = hard_remapped.images.slice_batch(start, count);
    const MainForward fwd = net.forward_main(images, nn::Mode::kEval);
    const Tensor y2 = net.forward_extension(images, fwd.features, nn::Mode::kEval);
    const auto preds = ops::row_argmax(y2);
    for (int i = 0; i < count; ++i) {
      if (preds[static_cast<std::size_t>(i)] ==
          hard_remapped.labels[static_cast<std::size_t>(start + i)]) {
        ++correct;
      }
    }
  }
  const double ext_accuracy =
      static_cast<double>(correct) / static_cast<double>(hard_remapped.size());
  // Exit 2 solves a 2-class problem; main solves 4-class. It should be
  // clearly better on hard instances.
  EXPECT_GT(ext_accuracy, before.accuracy);
}

TEST(DistributedTrainer, JointTrainingRunsAndLearns) {
  util::Rng rng(11);
  const data::SyntheticDataset ds = data::make_synthetic(tiny_data_spec(), 16);
  MEANet net = tiny_meanet_b(rng, 2);
  DistributedTrainer trainer(net);
  const data::ClassDict dict(4, {0, 1});
  util::Rng train_rng(12);
  const TrainCurve curve = trainer.train_joint(ds.train, dict, fast_options(5), train_rng);
  EXPECT_LT(curve.back().loss, curve.front().loss);
  // Joint training must leave main parameters trainable.
  for (const nn::Parameter* p : net.main_parameters()) EXPECT_TRUE(p->trainable);
}

TEST(DistributedTrainer, SeparateTrainingRunsBothPhases) {
  util::Rng rng(16);
  const data::SyntheticDataset ds = data::make_synthetic(tiny_data_spec(), 18);
  MEANet net = tiny_meanet_b(rng, 2);
  DistributedTrainer trainer(net);
  const data::ClassDict dict(4, {1, 2});
  util::Rng train_rng(17);
  const TrainCurve curve = trainer.train_separate(ds.train, dict, fast_options(3), train_rng);
  // Two phases of 3 epochs each.
  EXPECT_EQ(curve.size(), 6u);
  // Phase 2 left the conv blocks frozen and exit 1 trainable.
  EXPECT_TRUE(net.main_trunk().frozen());
  EXPECT_TRUE(net.adaptive().frozen());
  EXPECT_TRUE(net.extension().frozen());
  for (const nn::Parameter* p : net.main_exit().parameters()) EXPECT_TRUE(p->trainable);
  // Exit 1 should have learned something better than chance.
  EXPECT_GT(curve.back().accuracy, 0.3);
}

TEST(SelectHardClasses, Validation) {
  metrics::ConfusionMatrix cm(3);
  cm.add(0, 0);
  EXPECT_THROW(select_hard_classes(cm, 0), std::invalid_argument);
  EXPECT_THROW(select_hard_classes(cm, 4), std::invalid_argument);
}

TEST(SelectRandomClasses, SizeAndRange) {
  util::Rng rng(13);
  const std::vector<int> classes = select_random_classes(10, 4, rng);
  EXPECT_EQ(classes.size(), 4u);
  for (int c : classes) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, 10);
  }
}

TEST(ProfileMain, EntropyStatsSeparateCorrectFromWrong) {
  util::Rng rng(14);
  const data::SyntheticDataset ds = data::make_synthetic(tiny_data_spec(), 17);
  MEANet net = tiny_meanet_b(rng, 2);
  DistributedTrainer trainer(net);
  util::Rng train_rng(15);
  trainer.train_main(ds.train, fast_options(6), train_rng);
  const MainProfile profile = profile_main(net, ds.test);
  // The paper's premise (§III-C): wrong predictions have higher mean
  // entropy than correct ones.
  ASSERT_GT(profile.entropy.num_correct(), 0);
  ASSERT_GT(profile.entropy.num_wrong(), 0);
  EXPECT_GT(profile.entropy.mu_wrong(), profile.entropy.mu_correct());
}

}  // namespace
}  // namespace meanet::core
