#include <gtest/gtest.h>

#include <cmath>

#include "sim/device_model.h"
#include "sim/energy_model.h"
#include "sim/wifi_model.h"

namespace meanet::sim {
namespace {

TEST(WifiModel, PaperPowerConstant) {
  // Paper §IV-B: P_upload = 283.17 mW/Mbps * 18.88 Mbps + 132.86 mW
  //            = 5.48 W.
  WifiModel wifi;
  EXPECT_NEAR(wifi.upload_power_w(), 5.48, 0.01);
}

TEST(WifiModel, PaperCifarUploadTime) {
  // 32x32x3 bytes at 18.88 Mb/s ~= 1.3 ms (paper Table VII).
  WifiModel wifi;
  EXPECT_NEAR(wifi.upload_time_s(32 * 32 * 3) * 1e3, 1.3, 0.05);
}

TEST(WifiModel, PaperImagenetUploadTime) {
  // 224x224x3 bytes ~= 63.7 ms (paper Table VII).
  WifiModel wifi;
  EXPECT_NEAR(wifi.upload_time_s(224 * 224 * 3) * 1e3, 63.7, 0.3);
}

TEST(WifiModel, PaperImagenetUploadEnergy) {
  // E_cu = 5.48 W * 63.7 ms ~= 349 mJ (paper Table VII).
  WifiModel wifi;
  EXPECT_NEAR(wifi.upload_energy_j(224 * 224 * 3) * 1e3, 349.0, 2.0);
}

TEST(WifiModel, EnergyScalesLinearlyWithBytes) {
  WifiModel wifi;
  EXPECT_NEAR(wifi.upload_energy_j(2000), 2.0 * wifi.upload_energy_j(1000), 1e-9);
}

TEST(WifiModel, RejectsNegativePayload) {
  WifiModel wifi;
  EXPECT_THROW(wifi.upload_time_s(-1), std::invalid_argument);
}

TEST(DeviceModel, ComputeTimeFromMacs) {
  DeviceModel device;
  device.macs_per_second = 1e9;
  EXPECT_DOUBLE_EQ(device.compute_time_s(5e8), 0.5);
  EXPECT_DOUBLE_EQ(device.compute_energy_j(5e8), 0.5 * device.compute_power_w);
}

TEST(DeviceModel, PaperCifarPreset) {
  // Paper Table VII: 56 W, 0.056 ms per image -> E_cp ~= 3.14 mJ.
  const DeviceModel device = DeviceModel::paper_cifar_gpu();
  const double e_mj = device.compute_energy_j(69e6) * 1e3;
  EXPECT_NEAR(e_mj, 3.14, 0.05);
}

TEST(DeviceModel, PaperImagenetPreset) {
  // Paper Table VII: 75 W, 0.203 ms -> E_cp ~= 15.2 mJ.
  const DeviceModel device = DeviceModel::paper_imagenet_gpu();
  const double e_mj = device.compute_energy_j(1.8e9) * 1e3;
  EXPECT_NEAR(e_mj, 15.2, 0.2);
}

TEST(DeviceModel, RejectsNegativeMacs) {
  DeviceModel device;
  EXPECT_THROW(device.compute_time_s(-5), std::invalid_argument);
}

CostParams test_params() {
  CostParams p;
  p.edge_compute = 1.0;
  p.cloud_compute = 4.0;
  p.comm_raw = 2.0;
  p.comm_features = 3.0;
  return p;
}

TEST(EnergyModel, EdgeOnlyRow) {
  EnergyModel model(test_params());
  const CostBreakdown c = model.edge_only(10);
  EXPECT_DOUBLE_EQ(c.edge_compute, 10.0);
  EXPECT_DOUBLE_EQ(c.cloud_compute, 0.0);
  EXPECT_DOUBLE_EQ(c.communication, 0.0);
}

TEST(EnergyModel, CloudOnlyRow) {
  EnergyModel model(test_params());
  const CostBreakdown c = model.cloud_only(10);
  EXPECT_DOUBLE_EQ(c.edge_compute, 0.0);
  EXPECT_DOUBLE_EQ(c.cloud_compute, 40.0);
  EXPECT_DOUBLE_EQ(c.communication, 20.0);
  EXPECT_DOUBLE_EQ(c.edge_total(), 20.0);  // only comm burdens the edge
}

TEST(EnergyModel, EdgeCloudRawRow) {
  EnergyModel model(test_params());
  const CostBreakdown c = model.edge_cloud_raw(10, 0.25);
  EXPECT_DOUBLE_EQ(c.edge_compute, 10.0);          // N * x
  EXPECT_DOUBLE_EQ(c.cloud_compute, 10.0);         // beta*N*x_cl
  EXPECT_DOUBLE_EQ(c.communication, 5.0);          // beta*N*x_cu
}

TEST(EnergyModel, EdgeCloudFeaturesRow) {
  EnergyModel model(test_params());
  const CostBreakdown c = model.edge_cloud_features(10, 0.5, 1.0 / 3.0);
  EXPECT_NEAR(c.edge_compute, 10.0 / 3.0, 1e-9);               // N*q*x
  EXPECT_NEAR(c.cloud_compute, 0.5 * 10 * (2.0 / 3.0) * 4.0, 1e-9);
  EXPECT_DOUBLE_EQ(c.communication, 0.5 * 10 * 3.0);           // beta*N*x'_cu
}

TEST(EnergyModel, BetaZeroMatchesEdgeOnlyAtEdge) {
  EnergyModel model(test_params());
  EXPECT_DOUBLE_EQ(model.edge_cloud_raw(10, 0.0).edge_total(),
                   model.edge_only(10).edge_total());
}

TEST(EnergyModel, BetaOneCommMatchesCloudOnlyComm) {
  EnergyModel model(test_params());
  EXPECT_DOUBLE_EQ(model.edge_cloud_raw(10, 1.0).communication,
                   model.cloud_only(10).communication);
}

TEST(EnergyModel, RejectsBadBetaAndQ) {
  EnergyModel model(test_params());
  EXPECT_THROW(model.edge_cloud_raw(1, -0.1), std::invalid_argument);
  EXPECT_THROW(model.edge_cloud_raw(1, 1.1), std::invalid_argument);
  EXPECT_THROW(model.edge_cloud_features(1, 0.5, -0.1), std::invalid_argument);
  EXPECT_THROW(model.edge_cloud_features(1, 0.5, 1.5), std::invalid_argument);
}

TEST(EnergyModel, TotalIsSumOfParts) {
  EnergyModel model(test_params());
  const CostBreakdown c = model.edge_cloud_raw(7, 0.3);
  EXPECT_DOUBLE_EQ(c.total(), c.edge_compute + c.cloud_compute + c.communication);
}

}  // namespace
}  // namespace meanet::sim
