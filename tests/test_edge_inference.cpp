#include <gtest/gtest.h>

#include "core/edge_inference.h"

#include <algorithm>

#include "tensor/ops.h"
#include "tiny_models.h"
#include "util/rng.h"

namespace meanet::core {
namespace {

using meanet::testing::tiny_meanet_b;

TEST(EdgeInferenceEngine, DecisionsCoverBatch) {
  util::Rng rng(1);
  MEANet net = tiny_meanet_b(rng, 2);
  const data::ClassDict dict(4, {2, 3});
  EdgeInferenceEngine engine(net, dict, PolicyConfig{});
  const Tensor images = Tensor::normal(Shape{5, 2, 8, 8}, rng);
  const auto decisions = engine.infer(images);
  EXPECT_EQ(decisions.size(), 5u);
  for (const InstanceDecision& d : decisions) {
    EXPECT_GE(d.prediction, 0);
    EXPECT_LT(d.prediction, 4);
    EXPECT_GE(d.entropy, 0.0f);
    EXPECT_GT(d.main_confidence, 0.0f);
  }
}

TEST(EdgeInferenceEngine, RoutesMatchPolicy) {
  util::Rng rng(2);
  MEANet net = tiny_meanet_b(rng, 2);
  const data::ClassDict dict(4, {2, 3});
  PolicyConfig config;
  config.cloud_available = true;
  config.entropy_threshold = 0.9;
  EdgeInferenceEngine engine(net, dict, config);
  const Tensor images = Tensor::normal(Shape{16, 2, 8, 8}, rng);
  for (const InstanceDecision& d : engine.infer(images)) {
    RouteSignals signals;
    signals.entropy = d.entropy;
    signals.main_confidence = d.main_confidence;
    signals.margin = d.margin;
    signals.main_prediction = d.main_prediction;
    EXPECT_EQ(d.route, engine.routing().route(signals));
  }
}

TEST(EdgeInferenceEngine, MainExitKeepsMainPrediction) {
  util::Rng rng(3);
  MEANet net = tiny_meanet_b(rng, 2);
  const data::ClassDict dict(4, {2, 3});
  EdgeInferenceEngine engine(net, dict, PolicyConfig{});
  const Tensor images = Tensor::normal(Shape{12, 2, 8, 8}, rng);
  for (const InstanceDecision& d : engine.infer(images)) {
    if (d.route == Route::kMainExit) {
      EXPECT_EQ(d.prediction, d.main_prediction);
      EXPECT_EQ(d.extension_confidence, 0.0f);
    }
  }
}

TEST(EdgeInferenceEngine, ExtensionRouteUsesConfidenceComparison) {
  util::Rng rng(4);
  MEANet net = tiny_meanet_b(rng, 2);
  const Tensor images = Tensor::normal(Shape{32, 2, 8, 8}, rng);
  // An untrained net can collapse onto one predicted class; build the
  // hard set around the classes it actually predicts so the extension
  // route is exercised.
  const MainForward fwd = net.forward_main(images, nn::Mode::kEval);
  const std::vector<int> preds = ops::row_argmax(fwd.logits);
  std::vector<int> counts(4, 0);
  for (int p : preds) ++counts[static_cast<std::size_t>(p)];
  std::vector<int> order{0, 1, 2, 3};
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return counts[static_cast<std::size_t>(a)] > counts[static_cast<std::size_t>(b)]; });
  const data::ClassDict dict(4, {order[0], order[1]});
  EdgeInferenceEngine engine(net, dict, PolicyConfig{});
  bool saw_extension = false;
  for (const InstanceDecision& d : engine.infer(images)) {
    if (d.route != Route::kExtensionExit) continue;
    saw_extension = true;
    EXPECT_GT(d.extension_confidence, 0.0f);
    if (d.extension_confidence > d.main_confidence) {
      // Winner was exit 2: prediction must be a hard class.
      EXPECT_TRUE(dict.is_hard(d.prediction));
    } else {
      EXPECT_EQ(d.prediction, d.main_prediction);
    }
  }
  // With an untrained net and 32 inputs, some should be detected hard.
  EXPECT_TRUE(saw_extension);
}

TEST(EdgeInferenceEngine, CloudRouteKeepsFallbackPrediction) {
  util::Rng rng(5);
  MEANet net = tiny_meanet_b(rng, 2);
  const data::ClassDict dict(4, {2, 3});
  PolicyConfig config;
  config.cloud_available = true;
  config.entropy_threshold = 0.0;  // everything (entropy > 0) to cloud
  EdgeInferenceEngine engine(net, dict, config);
  const Tensor images = Tensor::normal(Shape{6, 2, 8, 8}, rng);
  for (const InstanceDecision& d : engine.infer(images)) {
    EXPECT_EQ(d.route, Route::kCloud);
    EXPECT_EQ(d.prediction, d.main_prediction);
  }
}

TEST(EdgeInferenceEngine, InferDatasetMatchesBatchedInfer) {
  util::Rng rng(6);
  MEANet net = tiny_meanet_b(rng, 2);
  const data::ClassDict dict(4, {2, 3});
  EdgeInferenceEngine engine(net, dict, PolicyConfig{});
  const data::SyntheticDataset ds = data::make_synthetic(meanet::testing::tiny_data_spec(), 9);
  const auto via_dataset = engine.infer_dataset(ds.test, 7);  // odd batch size
  const auto via_batch = engine.infer(ds.test.images);
  ASSERT_EQ(via_dataset.size(), via_batch.size());
  for (std::size_t i = 0; i < via_batch.size(); ++i) {
    EXPECT_EQ(via_dataset[i].prediction, via_batch[i].prediction) << i;
    EXPECT_EQ(via_dataset[i].route, via_batch[i].route) << i;
  }
}

TEST(EdgeInferenceEngine, SetConfigRebuildsRoutingThroughOnePath) {
  util::Rng rng(7);
  MEANet net = tiny_meanet_b(rng, 2);
  const data::ClassDict dict(4, {2, 3});
  EdgeInferenceEngine engine(net, dict, PolicyConfig{});
  // Default config: no cloud, so nothing can be marked for offload.
  const Tensor images = Tensor::normal(Shape{10, 2, 8, 8}, rng);
  for (const InstanceDecision& d : engine.infer(images)) {
    EXPECT_NE(d.route, Route::kCloud);
  }
  // Reconfigure through the one mutation path: the engine's routing
  // must reflect the new config immediately (no second config copy).
  PolicyConfig config;
  config.cloud_available = true;
  config.entropy_threshold = 0.0;
  engine.set_config(config);
  EXPECT_NE(engine.routing().describe().find("cloud=on"), std::string::npos);
  for (const InstanceDecision& d : engine.infer(images)) {
    EXPECT_EQ(d.route, Route::kCloud);
  }
  // And a custom policy flows through the same path.
  engine.set_routing(std::make_shared<AlwaysExtendPolicy>());
  for (const InstanceDecision& d : engine.infer(images)) {
    EXPECT_EQ(d.route, Route::kExtensionExit);
  }
  EXPECT_THROW(engine.set_routing(nullptr), std::invalid_argument);
}

TEST(CountRoutes, TalliesCorrectly) {
  std::vector<InstanceDecision> decisions(6);
  decisions[0].route = Route::kMainExit;
  decisions[1].route = Route::kMainExit;
  decisions[2].route = Route::kExtensionExit;
  decisions[3].route = Route::kCloud;
  decisions[4].route = Route::kCloud;
  decisions[5].route = Route::kCloud;
  const RouteCounts counts = count_routes(decisions);
  EXPECT_EQ(counts.main_exit, 2);
  EXPECT_EQ(counts.extension_exit, 1);
  EXPECT_EQ(counts.cloud, 3);
  EXPECT_EQ(counts.total(), 6);
  EXPECT_DOUBLE_EQ(counts.cloud_fraction(), 0.5);
}

TEST(CountRoutes, EmptyIsZero) {
  const RouteCounts counts = count_routes({});
  EXPECT_EQ(counts.total(), 0);
  EXPECT_DOUBLE_EQ(counts.cloud_fraction(), 0.0);
}

}  // namespace
}  // namespace meanet::core
