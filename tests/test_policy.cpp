#include <gtest/gtest.h>

#include "core/inference_policy.h"

namespace meanet::core {
namespace {

data::ClassDict make_dict() { return data::ClassDict(4, {2, 3}); }

TEST(InferencePolicy, EasyPredictionExitsAtMain) {
  const data::ClassDict dict = make_dict();
  InferencePolicy policy(dict, PolicyConfig{1.0, true});
  EXPECT_EQ(policy.route(0.5f, 0), Route::kMainExit);
  EXPECT_EQ(policy.route(0.5f, 1), Route::kMainExit);
}

TEST(InferencePolicy, HardPredictionGoesToExtension) {
  const data::ClassDict dict = make_dict();
  InferencePolicy policy(dict, PolicyConfig{1.0, true});
  EXPECT_EQ(policy.route(0.5f, 2), Route::kExtensionExit);
  EXPECT_EQ(policy.route(0.5f, 3), Route::kExtensionExit);
}

TEST(InferencePolicy, HighEntropyGoesToCloudRegardlessOfClass) {
  const data::ClassDict dict = make_dict();
  InferencePolicy policy(dict, PolicyConfig{1.0, true});
  EXPECT_EQ(policy.route(1.5f, 0), Route::kCloud);
  EXPECT_EQ(policy.route(1.5f, 2), Route::kCloud);
}

TEST(InferencePolicy, CloudUnavailableFallsBackToEdgeRoutes) {
  const data::ClassDict dict = make_dict();
  InferencePolicy policy(dict, PolicyConfig{1.0, false});
  EXPECT_EQ(policy.route(5.0f, 0), Route::kMainExit);
  EXPECT_EQ(policy.route(5.0f, 3), Route::kExtensionExit);
}

TEST(InferencePolicy, ThresholdIsExclusive) {
  const data::ClassDict dict = make_dict();
  InferencePolicy policy(dict, PolicyConfig{1.0, true});
  // Entropy exactly at the threshold stays at the edge ("> threshold").
  EXPECT_EQ(policy.route(1.0f, 0), Route::kMainExit);
}

TEST(InferencePolicy, ZeroThresholdSendsEverythingWithPositiveEntropy) {
  const data::ClassDict dict = make_dict();
  InferencePolicy policy(dict, PolicyConfig{0.0, true});
  EXPECT_EQ(policy.route(0.01f, 1), Route::kCloud);
}

TEST(InferencePolicy, InfiniteThresholdDisablesCloud) {
  const data::ClassDict dict = make_dict();
  InferencePolicy policy(dict, PolicyConfig{});  // default: +inf, no cloud
  EXPECT_EQ(policy.route(100.0f, 0), Route::kMainExit);
}

TEST(InferencePolicy, IsHardMatchesDict) {
  const data::ClassDict dict = make_dict();
  InferencePolicy policy(dict, PolicyConfig{});
  EXPECT_FALSE(policy.is_hard(0));
  EXPECT_TRUE(policy.is_hard(2));
}

TEST(RouteName, AllRoutesNamed) {
  EXPECT_STREQ(route_name(Route::kMainExit), "main");
  EXPECT_STREQ(route_name(Route::kExtensionExit), "extension");
  EXPECT_STREQ(route_name(Route::kCloud), "cloud");
}

RouteSignals signals(float entropy, float margin, int prediction) {
  RouteSignals s;
  s.entropy = entropy;
  s.margin = margin;
  s.main_prediction = prediction;
  return s;
}

TEST(EntropyThresholdPolicy, MatchesReferenceInferencePolicy) {
  const data::ClassDict dict = make_dict();
  const PolicyConfig config{1.0, true};
  const InferencePolicy reference(dict, config);
  const EntropyThresholdPolicy policy(dict, config);
  for (float entropy : {0.2f, 0.9f, 1.0f, 1.1f, 3.0f}) {
    for (int prediction : {0, 1, 2, 3}) {
      EXPECT_EQ(policy.route(signals(entropy, 0.5f, prediction)),
                reference.route(entropy, prediction));
    }
  }
  EXPECT_NE(policy.describe().find("entropy-threshold"), std::string::npos);
}

TEST(ConfidenceMarginPolicy, SmallMarginGoesToCloud) {
  const data::ClassDict dict = make_dict();
  const ConfidenceMarginPolicy policy(dict, MarginPolicyConfig{0.3, true});
  EXPECT_EQ(policy.route(signals(0.0f, 0.1f, 0)), Route::kCloud);
  EXPECT_EQ(policy.route(signals(0.0f, 0.1f, 2)), Route::kCloud);
  // Margin exactly at the threshold stays at the edge ("< threshold").
  EXPECT_EQ(policy.route(signals(0.0f, 0.3f, 0)), Route::kMainExit);
  EXPECT_EQ(policy.route(signals(0.0f, 0.8f, 0)), Route::kMainExit);
  EXPECT_EQ(policy.route(signals(0.0f, 0.8f, 3)), Route::kExtensionExit);
}

TEST(ConfidenceMarginPolicy, CloudUnavailableFallsBackToEdgeRoutes) {
  const data::ClassDict dict = make_dict();
  const ConfidenceMarginPolicy policy(dict, MarginPolicyConfig{0.3, false});
  EXPECT_EQ(policy.route(signals(0.0f, 0.01f, 0)), Route::kMainExit);
  EXPECT_EQ(policy.route(signals(0.0f, 0.01f, 3)), Route::kExtensionExit);
}

TEST(AlwaysExtendPolicy, EveryInstanceTakesTheExtension) {
  const AlwaysExtendPolicy policy;
  EXPECT_EQ(policy.route(signals(0.0f, 0.9f, 0)), Route::kExtensionExit);
  EXPECT_EQ(policy.route(signals(5.0f, 0.0f, 3)), Route::kExtensionExit);
}

}  // namespace
}  // namespace meanet::core
