#include <gtest/gtest.h>

#include "core/inference_policy.h"

namespace meanet::core {
namespace {

data::ClassDict make_dict() { return data::ClassDict(4, {2, 3}); }

TEST(InferencePolicy, EasyPredictionExitsAtMain) {
  const data::ClassDict dict = make_dict();
  InferencePolicy policy(dict, PolicyConfig{1.0, true});
  EXPECT_EQ(policy.route(0.5f, 0), Route::kMainExit);
  EXPECT_EQ(policy.route(0.5f, 1), Route::kMainExit);
}

TEST(InferencePolicy, HardPredictionGoesToExtension) {
  const data::ClassDict dict = make_dict();
  InferencePolicy policy(dict, PolicyConfig{1.0, true});
  EXPECT_EQ(policy.route(0.5f, 2), Route::kExtensionExit);
  EXPECT_EQ(policy.route(0.5f, 3), Route::kExtensionExit);
}

TEST(InferencePolicy, HighEntropyGoesToCloudRegardlessOfClass) {
  const data::ClassDict dict = make_dict();
  InferencePolicy policy(dict, PolicyConfig{1.0, true});
  EXPECT_EQ(policy.route(1.5f, 0), Route::kCloud);
  EXPECT_EQ(policy.route(1.5f, 2), Route::kCloud);
}

TEST(InferencePolicy, CloudUnavailableFallsBackToEdgeRoutes) {
  const data::ClassDict dict = make_dict();
  InferencePolicy policy(dict, PolicyConfig{1.0, false});
  EXPECT_EQ(policy.route(5.0f, 0), Route::kMainExit);
  EXPECT_EQ(policy.route(5.0f, 3), Route::kExtensionExit);
}

TEST(InferencePolicy, ThresholdIsExclusive) {
  const data::ClassDict dict = make_dict();
  InferencePolicy policy(dict, PolicyConfig{1.0, true});
  // Entropy exactly at the threshold stays at the edge ("> threshold").
  EXPECT_EQ(policy.route(1.0f, 0), Route::kMainExit);
}

TEST(InferencePolicy, ZeroThresholdSendsEverythingWithPositiveEntropy) {
  const data::ClassDict dict = make_dict();
  InferencePolicy policy(dict, PolicyConfig{0.0, true});
  EXPECT_EQ(policy.route(0.01f, 1), Route::kCloud);
}

TEST(InferencePolicy, InfiniteThresholdDisablesCloud) {
  const data::ClassDict dict = make_dict();
  InferencePolicy policy(dict, PolicyConfig{});  // default: +inf, no cloud
  EXPECT_EQ(policy.route(100.0f, 0), Route::kMainExit);
}

TEST(InferencePolicy, IsHardMatchesDict) {
  const data::ClassDict dict = make_dict();
  InferencePolicy policy(dict, PolicyConfig{});
  EXPECT_FALSE(policy.is_hard(0));
  EXPECT_TRUE(policy.is_hard(2));
}

TEST(RouteName, AllRoutesNamed) {
  EXPECT_STREQ(route_name(Route::kMainExit), "main");
  EXPECT_STREQ(route_name(Route::kExtensionExit), "extension");
  EXPECT_STREQ(route_name(Route::kCloud), "cloud");
}

}  // namespace
}  // namespace meanet::core
