// Property-based parameterized suites: invariants that must hold across
// sweeps of shapes, channel counts, strides, batch sizes, fusion modes
// and thresholds.
#include <gtest/gtest.h>

#include <cmath>

#include "core/builders.h"
#include "core/edge_inference.h"
#include "nn/conv2d.h"
#include "nn/batchnorm2d.h"
#include "nn/loss.h"
#include "nn/residual_block.h"
#include "tensor/ops.h"
#include "sim/energy_model.h"
#include "tiny_models.h"

namespace meanet {
namespace {

// ---------- Convolution linearity & geometry sweep ----------

class ConvShapeSweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ConvShapeSweep, OutputShapeMatchesFormulaAndForwardAgrees) {
  const auto [in_c, out_c, size] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(in_c * 100 + out_c * 10 + size));
  nn::Conv2d conv(in_c, out_c, 3, 1, 1, false, rng);
  const Tensor x = Tensor::normal(Shape{2, in_c, size, size}, rng);
  const Tensor y = conv.forward(x, nn::Mode::kEval);
  EXPECT_EQ(y.shape(), conv.output_shape(x.shape()));
  EXPECT_EQ(y.shape(), Shape({2, out_c, size, size}));
}

TEST_P(ConvShapeSweep, ForwardIsLinearInInput) {
  const auto [in_c, out_c, size] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(in_c * 7 + out_c * 3 + size));
  nn::Conv2d conv(in_c, out_c, 3, 1, 1, /*bias=*/false, rng);
  const Tensor a = Tensor::normal(Shape{1, in_c, size, size}, rng);
  const Tensor b = Tensor::normal(Shape{1, in_c, size, size}, rng);
  // conv(a + 2b) == conv(a) + 2 conv(b) for a bias-free convolution.
  Tensor combined = a;
  combined.axpy_(2.0f, b);
  const Tensor lhs = conv.forward(combined, nn::Mode::kEval);
  Tensor rhs = conv.forward(a, nn::Mode::kEval);
  rhs.axpy_(2.0f, conv.forward(b, nn::Mode::kEval));
  EXPECT_TRUE(allclose(lhs, rhs, 1e-3f));
}

INSTANTIATE_TEST_SUITE_P(Shapes, ConvShapeSweep,
                         ::testing::Combine(::testing::Values(1, 3), ::testing::Values(1, 4),
                                            ::testing::Values(4, 7)));

// ---------- Softmax invariances ----------

class SoftmaxSweep : public ::testing::TestWithParam<int> {};

TEST_P(SoftmaxSweep, ShiftInvariantAndNormalized) {
  const int cols = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(cols));
  const Tensor logits = Tensor::normal(Shape{3, cols}, rng, 0.0f, 2.0f);
  Tensor shifted = logits;
  for (std::int64_t i = 0; i < shifted.numel(); ++i) shifted[i] += 100.0f;
  EXPECT_TRUE(allclose(ops::softmax(logits), ops::softmax(shifted), 1e-5f));
  const Tensor p = ops::softmax(logits);
  for (int r = 0; r < 3; ++r) {
    float total = 0.0f;
    for (int c = 0; c < cols; ++c) total += p.at(r, c);
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
}

TEST_P(SoftmaxSweep, EntropyBounds) {
  const int cols = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(cols) + 50);
  const Tensor p = ops::softmax(Tensor::normal(Shape{5, cols}, rng, 0.0f, 3.0f));
  for (float h : ops::row_entropy(p)) {
    EXPECT_GE(h, 0.0f);
    EXPECT_LE(h, std::log(static_cast<float>(cols)) + 1e-5f);
  }
}

INSTANTIATE_TEST_SUITE_P(Columns, SoftmaxSweep, ::testing::Values(2, 5, 17, 100));

// ---------- Loss invariants across batch sizes ----------

class LossBatchSweep : public ::testing::TestWithParam<int> {};

TEST_P(LossBatchSweep, LossIsMeanOverBatch) {
  const int batch = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(batch));
  const Tensor logits = Tensor::normal(Shape{batch, 6}, rng);
  std::vector<int> labels(static_cast<std::size_t>(batch));
  for (int i = 0; i < batch; ++i) labels[static_cast<std::size_t>(i)] = i % 6;
  const nn::LossResult all = nn::softmax_cross_entropy(logits, labels);
  // Mean of per-instance losses must equal the batch loss.
  double per_instance_sum = 0.0;
  for (int i = 0; i < batch; ++i) {
    const nn::LossResult one = nn::softmax_cross_entropy(
        logits.slice_batch(i), {labels[static_cast<std::size_t>(i)]});
    per_instance_sum += one.loss;
  }
  EXPECT_NEAR(all.loss, per_instance_sum / batch, 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(Batches, LossBatchSweep, ::testing::Values(1, 2, 7, 32));

// ---------- BatchNorm batch-size invariance in eval mode ----------

class BatchNormEvalSweep : public ::testing::TestWithParam<int> {};

TEST_P(BatchNormEvalSweep, EvalIsPerInstance) {
  const int batch = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(batch) + 7);
  nn::BatchNorm2d bn(3);
  // Give running stats some structure.
  bn.forward(Tensor::normal(Shape{8, 3, 4, 4}, rng, 2.0f, 3.0f), nn::Mode::kTrain);
  const Tensor x = Tensor::normal(Shape{batch, 3, 4, 4}, rng);
  const Tensor batched = bn.forward(x, nn::Mode::kEval);
  // Eval-mode output of instance i must not depend on the rest of the
  // batch.
  for (int i = 0; i < batch; ++i) {
    const Tensor single = bn.forward(x.slice_batch(i), nn::Mode::kEval);
    EXPECT_TRUE(allclose(single, batched.slice_batch(i), 1e-6f)) << "instance " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Batches, BatchNormEvalSweep, ::testing::Values(1, 3, 8));

// ---------- Routing invariants over fusion modes and thresholds ----------

class RoutingSweep
    : public ::testing::TestWithParam<std::tuple<core::FusionMode, double>> {};

TEST_P(RoutingSweep, RoutesArePolicyConsistentAndExhaustive) {
  const auto [fusion, threshold] = GetParam();
  util::Rng rng(11);
  core::MEANet net = meanet::testing::tiny_meanet_b(rng, 2, fusion);
  const data::ClassDict dict(4, {0, 3});
  core::PolicyConfig config;
  config.cloud_available = true;
  config.entropy_threshold = threshold;
  core::EdgeInferenceEngine engine(net, dict, config);
  const Tensor images = Tensor::normal(Shape{24, 2, 8, 8}, rng);
  const auto decisions = engine.infer(images);
  ASSERT_EQ(decisions.size(), 24u);
  const core::RouteCounts counts = core::count_routes(decisions);
  EXPECT_EQ(counts.total(), 24);
  for (const auto& d : decisions) {
    // Every decision is one of the three routes with a valid prediction.
    EXPECT_GE(d.prediction, 0);
    EXPECT_LT(d.prediction, 4);
    if (d.route == core::Route::kCloud) {
      EXPECT_GT(static_cast<double>(d.entropy), threshold);
    } else if (d.route == core::Route::kExtensionExit) {
      EXPECT_TRUE(dict.is_hard(d.main_prediction));
    } else {
      EXPECT_FALSE(dict.is_hard(d.main_prediction));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    FusionAndThreshold, RoutingSweep,
    ::testing::Combine(::testing::Values(core::FusionMode::kSum, core::FusionMode::kConcat),
                       ::testing::Values(0.0, 0.5, 1.5, 100.0)));

// ---------- Energy model monotonicity ----------

class EnergyBetaSweep : public ::testing::TestWithParam<double> {};

TEST_P(EnergyBetaSweep, EdgeCostMonotoneInBeta) {
  const double beta = GetParam();
  sim::CostParams params;
  params.edge_compute = 1.0;
  params.cloud_compute = 3.0;
  params.comm_raw = 2.0;
  params.comm_features = 1.5;
  const sim::EnergyModel model(params);
  const double base = model.edge_cloud_raw(100, beta).edge_total();
  if (beta + 0.1 <= 1.0) {
    const double more = model.edge_cloud_raw(100, beta + 0.1).edge_total();
    EXPECT_GT(more, base);
  }
  // Identity: raw-mode total == edge_only + beta * (cloud_only totals).
  const sim::CostBreakdown raw = model.edge_cloud_raw(100, beta);
  EXPECT_NEAR(raw.communication, beta * model.cloud_only(100).communication, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Betas, EnergyBetaSweep, ::testing::Values(0.0, 0.25, 0.5, 0.9));

// ---------- Dataset determinism / generation sweep ----------

class SyntheticSizeSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SyntheticSizeSweep, GeneratesConsistentGeometry) {
  const auto [classes, size] = GetParam();
  data::SyntheticSpec spec;
  spec.num_classes = classes;
  spec.height = size;
  spec.width = size;
  spec.channels = 3;
  spec.train_per_class = 4;
  spec.test_per_class = 2;
  const data::SyntheticDataset ds = data::make_synthetic(spec, 5);
  EXPECT_EQ(ds.train.images.shape(), Shape({classes * 4, 3, size, size}));
  EXPECT_EQ(ds.test.images.shape(), Shape({classes * 2, 3, size, size}));
  EXPECT_EQ(static_cast<int>(ds.difficulty.size()), classes);
}

INSTANTIATE_TEST_SUITE_P(Geometries, SyntheticSizeSweep,
                         ::testing::Combine(::testing::Values(2, 6, 10),
                                            ::testing::Values(8, 16)));

}  // namespace
}  // namespace meanet
