// meanet_cli — a small command-line driver for the library, covering the
// full deployment workflow from the terminal:
//
//   meanet_cli train --out DIR [--classes N] [--hard N] [--epochs N]
//       runs Alg. 1 on a synthetic workload and saves the trained blocks
//       + class dictionary into DIR (the "cloud side" of the story);
//   meanet_cli eval --model DIR [--threshold T] [--policy entropy|margin]
//                   [--margin M] [--threads N] [--console]
//       loads the blocks (the "edge downloads the model" step), serves
//       routed inference on the matching test set through the
//       meanet::runtime session API (N worker threads sharing the one
//       loaded net), and reports accuracy, exit distribution and
//       detection accuracy; --console then drops into an interactive
//       diagnostics loop on the live session (providers / stats /
//       stats <provider> / watch / serve / quit) over the process
//       diag::DiagnosticRegistry;
//   meanet_cli info --model DIR
//       prints parameter/MAC statistics of the stored model.
//
// Example:
//   ./build/examples/meanet_cli train --out /tmp/meanet_model
//   ./build/examples/meanet_cli eval  --model /tmp/meanet_model
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/builders.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "diag/registry.h"
#include "metrics/classification_metrics.h"
#include "nn/model_stats.h"
#include "nn/serialize.h"
#include "runtime/session.h"
#include "sim/clock.h"

using namespace meanet;

namespace {

struct Args {
  std::string command;
  std::string dir;
  int classes = 10;
  int hard = 5;
  int epochs = 10;
  double threshold = std::numeric_limits<double>::infinity();
  std::string policy = "entropy";
  double margin = 0.0;
  int threads = 1;
  std::uint64_t seed = 7;
  bool console = false;
};

int usage() {
  std::fprintf(stderr,
               "usage: meanet_cli train --out DIR [--classes N] [--hard N] [--epochs N]\n"
               "       meanet_cli eval  --model DIR [--threshold T] [--policy entropy|margin]\n"
               "                        [--margin M] [--threads N] [--console]\n"
               "       meanet_cli info  --model DIR\n");
  return 2;
}

bool parse_args(int argc, char** argv, Args& args) {
  if (argc < 2) return false;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string key = argv[i];
    if (key == "--console") {
      args.console = true;
      continue;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "option '%s' needs a value\n", key.c_str());
      return false;
    }
    const std::string value = argv[++i];
    if (key == "--out" || key == "--model") {
      args.dir = value;
    } else if (key == "--classes") {
      args.classes = std::stoi(value);
    } else if (key == "--hard") {
      args.hard = std::stoi(value);
    } else if (key == "--epochs") {
      args.epochs = std::stoi(value);
    } else if (key == "--threshold") {
      args.threshold = std::stod(value);
    } else if (key == "--policy") {
      args.policy = value;
    } else if (key == "--margin") {
      args.margin = std::stod(value);
    } else if (key == "--threads") {
      args.threads = std::stoi(value);
    } else if (key == "--seed") {
      args.seed = std::stoull(value);
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", key.c_str());
      return false;
    }
  }
  return !args.dir.empty();
}

data::SyntheticSpec make_spec(int classes) {
  data::SyntheticSpec spec;
  spec.num_classes = classes;
  spec.height = 16;
  spec.width = 16;
  spec.train_per_class = 80;
  spec.test_per_class = 25;
  spec.max_difficulty = 0.9f;
  spec.noise_stddev = 0.4f;
  return spec;
}

core::MEANet make_model(int classes, int hard, util::Rng& rng) {
  core::ResNetConfig config;
  config.blocks_per_stage = 1;
  config.channels = {8, 16, 32};
  config.num_classes = classes;
  return core::build_resnet_meanet_b(config, hard, core::FusionMode::kSum, rng);
}

/// Stored alongside the weights so eval/info can rebuild the model.
struct ModelMeta {
  int classes = 0;
  int hard = 0;
  std::uint64_t seed = 0;
  std::vector<int> hard_classes;
};

void save_meta(const std::string& dir, const ModelMeta& meta) {
  std::ofstream os(dir + "/meta.txt", std::ios::trunc);
  os << meta.classes << ' ' << meta.hard << ' ' << meta.seed << '\n';
  for (int c : meta.hard_classes) os << c << ' ';
  os << '\n';
}

bool load_meta(const std::string& dir, ModelMeta& meta) {
  std::ifstream is(dir + "/meta.txt");
  if (!is) return false;
  is >> meta.classes >> meta.hard >> meta.seed;
  meta.hard_classes.resize(static_cast<std::size_t>(meta.hard));
  for (int& c : meta.hard_classes) is >> c;
  return static_cast<bool>(is);
}

int cmd_train(const Args& args) {
  std::error_code ec;
  std::filesystem::create_directories(args.dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create '%s'\n", args.dir.c_str());
    return 1;
  }
  std::printf("generating %d-class synthetic workload (seed %llu)...\n", args.classes,
              static_cast<unsigned long long>(args.seed));
  const data::SyntheticDataset ds = data::make_synthetic(make_spec(args.classes), args.seed);
  util::Rng split_rng(args.seed + 1);
  const data::SplitResult parts = data::split(ds.train, 0.9, split_rng);

  util::Rng model_rng(args.seed + 2);
  core::MEANet net = make_model(args.classes, args.hard, model_rng);
  core::DistributedTrainer trainer(net);
  core::TrainOptions opts;
  opts.epochs = args.epochs;
  opts.batch_size = 32;
  opts.milestones = {(args.epochs * 3) / 5, (args.epochs * 17) / 20};
  util::Rng train_rng(args.seed + 3);

  std::printf("training main block (%d epochs)...\n", args.epochs);
  const core::TrainCurve main_curve = trainer.train_main(parts.first, opts, train_rng);
  std::printf("  final train accuracy %.1f%%\n", 100.0 * main_curve.back().accuracy);

  const data::ClassDict dict =
      trainer.select_hard_classes_from_validation(parts.second, args.hard);
  std::printf("hard classes:");
  for (int c : dict.hard_classes()) std::printf(" %d", c);
  std::printf("\n");

  opts.sgd.learning_rate = 0.05f;
  std::printf("training extension + adaptive blocks on hard data...\n");
  const core::TrainCurve edge_curve = trainer.train_edge_blocks(parts.first, dict, opts, train_rng);
  std::printf("  final exit-2 train accuracy %.1f%%\n", 100.0 * edge_curve.back().accuracy);

  nn::save_model(net.main_trunk(), args.dir + "/trunk.bin");
  nn::save_model(net.main_exit(), args.dir + "/exit1.bin");
  nn::save_model(net.adaptive(), args.dir + "/adaptive.bin");
  nn::save_model(net.extension(), args.dir + "/extension.bin");
  ModelMeta meta{args.classes, args.hard, args.seed, dict.hard_classes()};
  save_meta(args.dir, meta);
  std::printf("model saved to %s\n", args.dir.c_str());
  return 0;
}

bool load_model(const std::string& dir, ModelMeta& meta, core::MEANet& net) {
  nn::load_model(net.main_trunk(), dir + "/trunk.bin");
  nn::load_model(net.main_exit(), dir + "/exit1.bin");
  nn::load_model(net.adaptive(), dir + "/adaptive.bin");
  nn::load_model(net.extension(), dir + "/extension.bin");
  (void)meta;
  return true;
}

void print_console_help() {
  std::printf(
      "diagnostics console commands:\n"
      "  providers           list registered diagnostic providers\n"
      "  stats               dump the full registry snapshot (JSON, schema %s)\n"
      "  stats <provider>    dump one provider's tree\n"
      "  watch [n] [sec]     print n full snapshots every sec seconds (default 5 x 1.0)\n"
      "  serve <n>           submit n test frames through the live session\n"
      "  help                this text\n"
      "  quit                leave the console\n",
      diag::kSchemaVersion);
}

/// Interactive diagnostics loop over the process registry, driven
/// against the live session (`serve` pushes more traffic through it so
/// `stats`/`watch` have moving counters to show). Returns at EOF or
/// `quit`; every command failure is printed, never thrown.
int run_console(runtime::InferenceSession& session, const data::Dataset& test) {
  diag::DiagnosticRegistry& registry = diag::DiagnosticRegistry::global();
  print_console_help();
  std::string line;
  int next_frame = 0;
  while (true) {
    std::printf("diag> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;  // EOF: scripted stdin ran out
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty()) continue;
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      print_console_help();
    } else if (cmd == "providers") {
      for (const std::string& name : registry.names()) std::printf("  %s\n", name.c_str());
    } else if (cmd == "stats") {
      std::string name;
      in >> name;
      if (name.empty()) {
        std::printf("%s\n", registry.to_json().c_str());
      } else {
        const diag::Value tree = registry.snapshot_of(name);
        if (tree.is_null()) {
          std::printf("no provider '%s' (try: providers)\n", name.c_str());
        } else {
          std::printf("%s\n", diag::to_json(tree).c_str());
        }
      }
    } else if (cmd == "watch") {
      int rounds = 5;
      double period_s = 1.0;
      in >> rounds >> period_s;
      rounds = std::max(1, std::min(rounds, 1000));
      period_s = std::min(60.0, std::max(0.01, period_s));
      for (int i = 0; i < rounds; ++i) {
        if (i > 0) sim::wall_clock().sleep_for(period_s);
        std::printf("-- watch %d/%d --\n%s\n", i + 1, rounds, registry.to_json().c_str());
        std::fflush(stdout);
      }
    } else if (cmd == "serve") {
      int count = 0;
      in >> count;
      if (count <= 0) {
        std::printf("usage: serve <n>\n");
        continue;
      }
      try {
        for (int i = 0; i < count; ++i) {
          session.submit(test.instance(next_frame));
          next_frame = (next_frame + 1) % test.size();
        }
        const auto results = session.drain();
        std::printf("served %zu instance(s)\n", results.size());
      } catch (const std::exception& e) {
        std::printf("serve failed: %s\n", e.what());
      }
    } else {
      std::printf("unknown command '%s' (try: help)\n", cmd.c_str());
    }
  }
  return 0;
}

int cmd_eval(const Args& args) {
  ModelMeta meta;
  if (!load_meta(args.dir, meta)) {
    std::fprintf(stderr, "no model at '%s'\n", args.dir.c_str());
    return 1;
  }
  util::Rng model_rng(meta.seed + 2);
  core::MEANet net = make_model(meta.classes, meta.hard, model_rng);
  load_model(args.dir, meta, net);
  net.freeze_main();
  const data::ClassDict dict(meta.classes, meta.hard_classes);

  const data::SyntheticDataset ds = data::make_synthetic(make_spec(meta.classes), meta.seed);

  // Serve through the unified runtime API: routing policy, offload
  // backend (none here — no cloud from the CLI) and worker count are
  // all EngineConfig choices.
  runtime::EngineConfig serve;
  serve.net = &net;
  serve.dict = &dict;
  if (args.policy == "margin") {
    if (std::isfinite(args.threshold)) {
      std::fprintf(stderr, "warning: --threshold is ignored by the margin policy (use --margin)\n");
    }
    if (args.margin <= 0.0) {
      std::fprintf(stderr,
                   "warning: margin policy without a positive --margin never marks for cloud\n");
    }
    core::MarginPolicyConfig margin;
    margin.margin_threshold = args.margin;
    margin.cloud_available = args.margin > 0.0;
    serve.policy = std::make_shared<core::ConfidenceMarginPolicy>(dict, margin);
  } else if (args.policy == "entropy") {
    if (args.margin > 0.0) {
      std::fprintf(stderr,
                   "warning: --margin is ignored by the entropy policy (use --threshold)\n");
    }
    serve.policy_config.entropy_threshold = args.threshold;
    serve.policy_config.cloud_available = std::isfinite(args.threshold);
  } else {
    std::fprintf(stderr, "unknown policy '%s'\n", args.policy.c_str());
    return 2;
  }
  // All worker threads serve on the one loaded net (eval forwards are
  // cache-free, so no replicas are needed).
  serve.worker_threads = std::max(1, args.threads);
  runtime::InferenceSession session(serve);
  std::printf("serving with %d worker thread(s), policy %s, backend %s\n",
              session.worker_count(), session.routing().describe().c_str(),
              session.backend().describe().c_str());
  const auto results = session.run(ds.test);

  std::vector<int> preds;
  std::int64_t detect_correct = 0;
  for (const runtime::InferenceResult& r : results) {
    preds.push_back(r.prediction);
    const bool truly_hard = dict.is_hard(ds.test.labels[static_cast<std::size_t>(r.id)]);
    if (dict.is_hard(r.main_prediction) == truly_hard) ++detect_correct;
  }
  const core::RouteCounts routes = runtime::count_routes(results);
  std::printf("test accuracy          : %.2f%%\n",
              100.0 * metrics::accuracy(preds, ds.test.labels));
  std::printf("easy/hard detection    : %.2f%%\n",
              100.0 * detect_correct / static_cast<double>(ds.test.size()));
  std::printf("exits: main %lld, extension %lld, marked-for-cloud %lld\n",
              static_cast<long long>(routes.main_exit),
              static_cast<long long>(routes.extension_exit),
              static_cast<long long>(routes.cloud));
  const runtime::SessionMetrics m = session.metrics();
  std::printf("serving: queue high-water %lld, batch latency p50/p95 %.3f/%.3f ms (main exit)\n",
              static_cast<long long>(m.queue_depth_high_water),
              1e3 * m.route(core::Route::kMainExit).p50_s,
              1e3 * m.route(core::Route::kMainExit).p95_s);
  if (args.console) return run_console(session, ds.test);
  return 0;
}

int cmd_info(const Args& args) {
  ModelMeta meta;
  if (!load_meta(args.dir, meta)) {
    std::fprintf(stderr, "no model at '%s'\n", args.dir.c_str());
    return 1;
  }
  util::Rng model_rng(meta.seed + 2);
  core::MEANet net = make_model(meta.classes, meta.hard, model_rng);
  load_model(args.dir, meta, net);
  net.freeze_main();

  const Shape image{1, 3, 16, 16};
  const Shape feature = net.main_trunk().output_shape(image);
  nn::ModelStats stats;
  stats += nn::collect_stats(net.main_trunk(), image);
  stats += nn::collect_stats(net.main_exit(), feature);
  stats += nn::collect_stats(net.adaptive(), image);
  stats += nn::collect_stats(net.extension(), feature);
  std::printf("classes           : %d (%d hard)\n", meta.classes, meta.hard);
  std::printf("fixed params      : %s M\n", nn::format_millions(stats.fixed_params).c_str());
  std::printf("trained params    : %s M\n", nn::format_millions(stats.trained_params).c_str());
  std::printf("fixed MACs/image  : %s M\n", nn::format_millions(stats.fixed_macs).c_str());
  std::printf("trained MACs/image: %s M\n", nn::format_millions(stats.trained_macs).c_str());
  std::printf("serialized size   : %.1f KiB\n",
              (nn::serialized_size(net.main_trunk()) + nn::serialized_size(net.main_exit()) +
               nn::serialized_size(net.adaptive()) + nn::serialized_size(net.extension())) /
                  1024.0);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) return usage();
  try {
    if (args.command == "train") return cmd_train(args);
    if (args.command == "eval") return cmd_eval(args);
    if (args.command == "info") return cmd_info(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
