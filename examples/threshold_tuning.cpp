// Threshold tuning: the paper (§III-C) derives the cloud-offload
// entropy threshold range (mu_correct, mu_wrong) from validation
// statistics and lets the operator pick inside it based on system
// requirements. This example shows the full tuning loop:
//
//  1. train an MEANet system and measure validation entropy statistics;
//  2. sweep candidate thresholds across (mu_c, mu_w) on the validation
//     set, recording accuracy and offload rate;
//  3. pick the cheapest threshold meeting an accuracy target;
//  4. verify the choice on the held-out test set.
//
// Build & run:  ./build/examples/threshold_tuning
#include <cstdio>

#include "core/builders.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "runtime/offload_backend.h"
#include "sim/system.h"

using namespace meanet;

int main() {
  data::SyntheticSpec spec;
  spec.num_classes = 10;
  spec.height = 16;
  spec.width = 16;
  spec.train_per_class = 70;
  spec.test_per_class = 30;
  spec.min_difficulty = 0.35f;
  spec.max_difficulty = 0.95f;
  spec.noise_stddev = 0.45f;
  const data::SyntheticDataset ds = data::make_synthetic(spec, 29);
  util::Rng split_rng(1);
  const data::SplitResult parts = data::split(ds.train, 0.9, split_rng);

  // Train the edge system (Alg. 1) and a cloud model.
  util::Rng model_rng(2);
  core::ResNetConfig config;
  config.blocks_per_stage = 1;
  config.channels = {8, 16, 32};
  config.num_classes = spec.num_classes;
  core::MEANet net = core::build_resnet_meanet_b(config, 5, core::FusionMode::kSum, model_rng);
  core::DistributedTrainer trainer(net);
  core::TrainOptions opts;
  opts.epochs = 10;
  opts.batch_size = 32;
  opts.milestones = {6, 8};
  util::Rng train_rng(3);
  trainer.train_main(parts.first, opts, train_rng);
  const data::ClassDict dict = trainer.select_hard_classes_from_validation(parts.second, 5);
  opts.sgd.learning_rate = 0.05f;
  trainer.train_edge_blocks(parts.first, dict, opts, train_rng);

  util::Rng cloud_rng(4);
  nn::Sequential cloud_net = core::build_cloud_classifier(3, spec.num_classes, cloud_rng);
  core::TrainOptions cloud_opts;
  cloud_opts.epochs = 14;
  cloud_opts.batch_size = 32;
  cloud_opts.milestones = {8, 12};
  core::train_classifier(cloud_net, parts.first, cloud_opts, train_rng);
  sim::CloudNode cloud(std::move(cloud_net));

  // 1. Validation entropy statistics define the threshold range.
  const core::MainProfile val_profile = core::profile_main(net, parts.second);
  const auto [mu_c, mu_w] = val_profile.entropy.threshold_range();
  std::printf("validation entropy: mu_correct=%.3f, mu_wrong=%.3f\n", mu_c, mu_w);
  // On a small validation split mu_wrong can be degenerate (few or no
  // wrong predictions); clamp to a usable ascending interval.
  const double sweep_lo = std::min(mu_c, mu_w);
  const double sweep_hi = std::max({mu_c, mu_w, sweep_lo + 0.2});
  std::printf("candidate thresholds are swept across this range (paper §III-C)\n\n");

  sim::EdgeNodeCosts costs;
  costs.upload_bytes_per_instance = ds.test.instance_shape().numel();
  costs.device.compute_power_w = 5.0;
  costs.device.macs_per_second = 5e9;
  costs.main_macs = net.main_trunk().stats(ds.test.instance_shape()).macs;
  costs.extension_macs = net.adaptive().stats(ds.test.instance_shape()).macs;

  const auto backend = std::make_shared<runtime::RawImageBackend>(&cloud);
  auto evaluate = [&](const data::Dataset& dataset, double threshold) {
    core::PolicyConfig policy;
    policy.cloud_available = true;
    policy.entropy_threshold = threshold;
    sim::EdgeNode edge(net, dict, policy, costs);
    sim::DistributedSystem system(std::move(edge), backend);
    return system.run(dataset);
  };

  // 2./3. Sweep and pick: cheapest threshold with >= target accuracy.
  const double accuracy_target = 0.80;
  std::printf("%-10s %12s %12s %14s\n", "threshold", "val acc%", "offload%", "edge energy J");
  double chosen = sweep_hi;  // fallback: least offload
  bool found = false;
  const int steps = 8;
  for (int i = 0; i <= steps; ++i) {
    const double t = sweep_lo + (sweep_hi - sweep_lo) * i / steps;
    const sim::SystemReport r = evaluate(parts.second, t);
    std::printf("%-10.3f %12.1f %12.1f %14.3f\n", t, 100.0 * r.accuracy,
                100.0 * r.cloud_fraction, r.edge_energy_j());
    // Higher threshold = less offload = cheaper; keep raising while the
    // accuracy target is still met.
    if (r.accuracy >= accuracy_target) {
      chosen = t;
      found = true;
    }
  }
  std::printf("\nchosen threshold: %.3f (%s %.0f%% validation accuracy target)\n", chosen,
              found ? "meets" : "closest to", 100.0 * accuracy_target);

  // 4. Verify on the test set.
  const sim::SystemReport test_report = evaluate(ds.test, chosen);
  std::printf("test: %.1f%% accuracy, %.1f%% offloaded, %.3f J edge energy\n",
              100.0 * test_report.accuracy, 100.0 * test_report.cloud_fraction,
              test_report.edge_energy_j());
  return 0;
}
