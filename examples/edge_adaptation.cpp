// Edge-adaptation scenario: a deployed device keeps collecting data
// whose distribution drifts away from the pretrained model's. Because
// MEANet's main block is frozen and only the small adaptive + extension
// blocks train, the device can adapt locally — the paper's motivation
// for complexity-aware training at the edge (§I, §III-A).
//
// The example:
//  1. pretrains the main block on the "factory" distribution;
//  2. simulates deployment: the environment adds a systematic color
//     shift + stronger noise to the hard classes;
//  3. adapts only the edge blocks on the drifted hard-class data
//     (mixing in original samples, as the paper suggests, to avoid
//     catastrophic forgetting);
//  4. compares hard-class accuracy before/after adaptation.
//
// Build & run:  ./build/examples/edge_adaptation
#include <cstdio>

#include "core/builders.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "metrics/classification_metrics.h"
#include "runtime/session.h"
#include "tensor/ops.h"

using namespace meanet;

namespace {

/// Applies the "field" distribution shift: a channel-0 brightness shift
/// plus extra sensor noise.
data::Dataset drift(const data::Dataset& source, util::Rng& rng) {
  data::Dataset shifted = source;
  const Shape& s = shifted.images.shape();
  const std::int64_t chw = static_cast<std::int64_t>(s.channels()) * s.height() * s.width();
  const std::int64_t hw = static_cast<std::int64_t>(s.height()) * s.width();
  for (int n = 0; n < s.batch(); ++n) {
    float* img = shifted.images.data() + n * chw;
    for (std::int64_t i = 0; i < hw; ++i) img[i] += 1.6f;        // channel-0 shift
    for (std::int64_t i = hw; i < 2 * hw; ++i) img[i] *= 0.5f;    // channel-1 gain drop
    for (std::int64_t i = 0; i < chw; ++i) img[i] += rng.normal(0.0f, 0.3f);
  }
  return shifted;
}

}  // namespace

int main() {
  data::SyntheticSpec spec;
  spec.num_classes = 8;
  spec.height = 12;
  spec.width = 12;
  spec.train_per_class = 60;
  spec.test_per_class = 30;
  spec.min_difficulty = 0.3f;
  spec.max_difficulty = 0.9f;
  spec.noise_stddev = 0.4f;
  const data::SyntheticDataset ds = data::make_synthetic(spec, 23);
  util::Rng split_rng(1);
  const data::SplitResult parts = data::split(ds.train, 0.9, split_rng);

  // 1. Factory pretraining of the main block.
  util::Rng model_rng(2);
  core::ResNetConfig config;
  config.blocks_per_stage = 1;
  config.channels = {8, 16, 32};
  config.num_classes = spec.num_classes;
  core::MEANet net = core::build_resnet_meanet_b(config, 4, core::FusionMode::kSum, model_rng);
  core::DistributedTrainer trainer(net);
  core::TrainOptions opts;
  opts.epochs = 10;
  opts.batch_size = 32;
  opts.milestones = {6, 8};
  util::Rng train_rng(3);
  trainer.train_main(parts.first, opts, train_rng);
  const data::ClassDict dict = trainer.select_hard_classes_from_validation(parts.second, 4);

  // 2. The field distribution drifts.
  util::Rng drift_rng(4);
  const data::Dataset field_train = drift(parts.first, drift_rng);
  const data::Dataset field_test = drift(ds.test, drift_rng);
  const data::Dataset field_hard_test = data::filter_by_labels(field_test, dict.hard_classes());

  const core::MainProfile before = core::profile_main(net, field_hard_test);
  std::printf("hard-class accuracy on drifted field data, main block only: %.1f%%\n",
              100.0 * before.accuracy);

  // 3. Local adaptation: blockwise training on drifted hard-class data
  //    mixed with the original samples (anti-forgetting, paper §III-A).
  data::Dataset mixed = field_train;
  {
    const data::Dataset original = parts.first;
    std::vector<int> all(static_cast<std::size_t>(original.size()));
    for (int i = 0; i < original.size(); ++i) all[static_cast<std::size_t>(i)] = i;
    // Interleave: append the original training set.
    const int total = mixed.size() + original.size();
    Tensor images(Shape{total, 3, spec.height, spec.width});
    const std::int64_t chw = static_cast<std::int64_t>(3) * spec.height * spec.width;
    std::copy(mixed.images.data(), mixed.images.data() + mixed.size() * chw, images.data());
    std::copy(original.images.data(), original.images.data() + original.size() * chw,
              images.data() + mixed.size() * chw);
    mixed.images = std::move(images);
    mixed.labels.insert(mixed.labels.end(), original.labels.begin(), original.labels.end());
  }
  core::TrainOptions adapt_opts;
  adapt_opts.epochs = 8;
  adapt_opts.batch_size = 32;
  adapt_opts.sgd.learning_rate = 0.05f;
  adapt_opts.milestones = {5, 7};
  trainer.train_edge_blocks(mixed, dict, adapt_opts, train_rng);

  // 4. After adaptation: confidence-compared MEANet prediction. The
  //    always-extend routing policy runs every instance through both
  //    exits and keeps the more confident one — the evaluation mode of
  //    the paper's Tables II/V, served through the runtime API.
  runtime::EngineConfig serve;
  serve.net = &net;
  serve.dict = &dict;
  serve.policy = std::make_shared<core::AlwaysExtendPolicy>();
  serve.batch_size = 32;
  runtime::InferenceSession session(serve);
  auto meanet_accuracy = [&](const data::Dataset& d) {
    std::int64_t correct = 0;
    for (const runtime::InferenceResult& r : session.run(d)) {
      if (r.prediction == d.labels[static_cast<std::size_t>(r.id)]) ++correct;
    }
    return static_cast<double>(correct) / d.size();
  };

  std::printf("hard-class accuracy after local edge adaptation:        %.1f%%\n",
              100.0 * meanet_accuracy(field_hard_test));
  const data::Dataset original_hard_test =
      data::filter_by_labels(ds.test, dict.hard_classes());
  std::printf("hard-class accuracy on the ORIGINAL distribution:       %.1f%%\n",
              100.0 * meanet_accuracy(original_hard_test));
  std::printf("(the frozen main block plus sample mixing guards against\n");
  std::printf(" catastrophic forgetting while the edge adapts)\n");
  return 0;
}
