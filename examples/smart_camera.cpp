// Smart-camera scenario: a simulated IoT camera classifies a continuous
// stream of frames at the edge and offloads only low-confidence
// ("complex") frames to the cloud over WiFi — the deployment the
// paper's introduction motivates.
//
// The example streams the test set frame by frame through a
// runtime::InferenceSession — each submit() hands back a ResultHandle
// whose wait() completes when that frame's result settles — and prints a
// running dashboard of accuracy, exit distribution, and the edge energy
// bill (compute + WiFi upload), plus the session metrics (queue depth,
// per-route latency percentiles, cell airtime) at the end. The offload
// really rides the radio: the camera shares one sim::SharedCell with a
// neighbor device whose background uploads halve the fair-share
// throughput, every cloud payload's upload time is derived from its
// byte size over that congested, jittered cell (and the answer pays
// downlink time on the way back), a 60ms per-frame deadline keeps the
// camera real-time (an expired frame keeps its edge answer), the
// camera's frames are submitted at high scheduling priority — ordering
// them ahead of any lower-priority traffic *on the camera's own
// session*; the neighbor's separate session contends only for cell
// airtime — and a completion callback — fired off the serving workers
// — tallies the frames the deadline saved.
//
// Build & run:  ./build/examples/smart_camera
//
// Pass --wire PATH_TO_MEANET_CLOUDD to serve the cloud side from a real
// spawned daemon over a Unix-domain socket instead of the in-process
// CloudNode: the trained cloud weights are saved to disk, meanet_cloudd
// is launched with them, and both the camera's and the neighbor's
// offloads travel the framed wire protocol — coalescing into
// cross-session batches at the daemon. Default stays in-process.
//
//   ./build/examples/smart_camera --wire ./build/tools/meanet_cloudd
#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "core/builders.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "nn/serialize.h"
#include "runtime/session.h"
#include "runtime/transport.h"
#include "sim/cloud_node.h"
#include "sim/shared_cell.h"
#include "wire/process.h"

using namespace meanet;

int main(int argc, char** argv) {
  std::string cloudd_path;  // empty = in-process cloud
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--wire") == 0 && i + 1 < argc) {
      cloudd_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: smart_camera [--wire PATH_TO_MEANET_CLOUDD]\n");
      return 2;
    }
  }
  // Workload: 10 "scene" classes at 16x16 RGB.
  data::SyntheticSpec spec;
  spec.num_classes = 10;
  spec.height = 16;
  spec.width = 16;
  spec.train_per_class = 70;
  spec.test_per_class = 40;
  spec.max_difficulty = 0.8f;
  const data::SyntheticDataset ds = data::make_synthetic(spec, 17);
  util::Rng split_rng(1);
  const data::SplitResult parts = data::split(ds.train, 0.9, split_rng);

  // Edge model (MEANet on a small ResNet) + Alg. 1 training.
  util::Rng model_rng(2);
  core::ResNetConfig config;
  config.blocks_per_stage = 1;
  config.channels = {8, 16, 32};
  config.num_classes = spec.num_classes;
  core::MEANet net = core::build_resnet_meanet_b(config, 5, core::FusionMode::kSum, model_rng);
  core::DistributedTrainer trainer(net);
  core::TrainOptions opts;
  opts.epochs = 10;
  opts.batch_size = 32;
  opts.milestones = {6, 8};
  util::Rng train_rng(3);
  trainer.train_main(parts.first, opts, train_rng);
  const data::ClassDict dict = trainer.select_hard_classes_from_validation(parts.second, 5);
  opts.sgd.learning_rate = 0.05f;
  trainer.train_edge_blocks(parts.first, dict, opts, train_rng);

  // Cloud model.
  util::Rng cloud_rng(4);
  nn::Sequential cloud_net = core::build_cloud_classifier(3, spec.num_classes, cloud_rng);
  core::TrainOptions cloud_opts;
  cloud_opts.epochs = 14;
  cloud_opts.batch_size = 32;
  cloud_opts.milestones = {8, 12};
  core::train_classifier(cloud_net, parts.first, cloud_opts, train_rng);

  // --wire: hand the trained cloud weights to a spawned meanet_cloudd
  // and dial it over a Unix socket, so every offload below travels the
  // framed wire protocol instead of calling the in-process CloudNode.
  std::unique_ptr<wire::ChildProcess> cloudd;
  std::string socket_path, weights_path;
  if (!cloudd_path.empty()) {
    const std::string tag = std::to_string(::getpid());
    socket_path = "/tmp/smart_camera_" + tag + ".sock";
    weights_path = "/tmp/smart_camera_" + tag + ".weights";
    nn::save_model(cloud_net, weights_path);
    cloudd = std::make_unique<wire::ChildProcess>(std::vector<std::string>{
        cloudd_path, "--socket", socket_path, "--model", weights_path, "--image-channels", "3",
        "--classes", std::to_string(spec.num_classes)});
    std::printf("spawned %s (pid %lld) serving the cloud model on %s\n", cloudd_path.c_str(),
                static_cast<long long>(cloudd->pid()), socket_path.c_str());
  }
  sim::CloudNode cloud(std::move(cloud_net));

  // Edge node priced like a ~5 W embedded accelerator with WiFi uplink.
  const Shape frame = ds.test.instance_shape();
  sim::EdgeNodeCosts costs;
  costs.upload_bytes_per_instance = frame.numel();
  costs.device.compute_power_w = 5.0;
  costs.device.macs_per_second = 5e9;
  const nn::LayerStats trunk = net.main_trunk().stats(frame);
  const nn::LayerStats exit1 = net.main_exit().stats(net.main_trunk().output_shape(frame));
  const nn::LayerStats adaptive = net.adaptive().stats(frame);
  const nn::LayerStats extension =
      net.extension().stats(net.main_trunk().output_shape(frame));
  costs.main_macs = trunk.macs + exit1.macs;
  costs.extension_macs = adaptive.macs + extension.macs;

  // One radio cell, two stations: the camera and a neighbor device
  // whose background uploads contend for the same airtime (the
  // fair-share throughput halves while both are attached). The cell
  // itself is a ~0.63 Mb/s slice of the paper's 18.88 Mb/s uplink with
  // seeded jitter; answers ride its downlink, so they are cheap but no
  // longer free.
  auto cell = std::make_shared<sim::SharedCell>([] {
    sim::SharedCellConfig cc;
    cc.uplink = cc.uplink.congested(30.0);  // ~0.63 Mb/s uplink
    cc.jitter_s = 0.005;
    return cc;
  }());
  runtime::TransportConfig wifi_link;
  wifi_link.cell = cell;

  // The camera is one InferenceSession: entropy routing + raw-image
  // offload selected at runtime through the EngineConfig. Uploads ride
  // the shared cell (upload time scales with payload bytes and the
  // station count), a 60ms per-frame cloud deadline keeps the stream
  // real-time — a frame whose answer cannot make it back in time keeps
  // its edge prediction instead of stalling the dashboard — and the
  // camera's frames are submitted at high scheduling priority, so any
  // lower-priority housekeeping traffic on the same session would queue
  // behind them.
  runtime::EngineConfig serve;
  serve.net = &net;
  serve.dict = &dict;
  serve.policy_config.cloud_available = true;
  serve.policy_config.entropy_threshold = 0.6;
  if (cloudd != nullptr) {
    serve.offload_mode = runtime::OffloadMode::kWire;
    serve.wire_socket_path = socket_path;
  } else {
    serve.offload_mode = runtime::OffloadMode::kRawImage;
    serve.cloud = &cloud;
  }
  serve.batch_size = 32;
  serve.costs = costs;
  serve.route_deadline_s[static_cast<std::size_t>(core::Route::kCloud)] = 0.060;
  serve.transport = wifi_link;

  // A completion callback (fired off the serving workers) tallies the
  // frames the deadline rescued with their edge answer. Declared before
  // the session: its destructor flushes the callback queue, so the
  // tally must outlive it.
  std::atomic<std::int64_t> deadline_saved{0};
  runtime::SubmitOptions frame_opts;
  frame_opts.priority = 5;  // camera frames outrank default traffic
  frame_opts.on_complete = [&deadline_saved](const runtime::ResultHandle& handle) {
    for (const runtime::InferenceResult& r : handle.wait()) {
      if (r.deadline_expired) ++deadline_saved;
    }
  };
  runtime::SessionMetrics m;
  {
    runtime::InferenceSession camera(serve);

    // The neighbor: a second session on the same cell, streaming its
    // own frames through the same cloud in the background so the
    // camera's uploads genuinely contend for airtime.
    runtime::EngineConfig neighbor_cfg = serve;
    neighbor_cfg.batch_size = 8;
    runtime::InferenceSession neighbor(neighbor_cfg);
    std::atomic<bool> neighbor_stop{false};
    std::thread neighbor_traffic([&] {
      int frame = 0;
      while (!neighbor_stop.load()) {
        neighbor.submit(ds.test.instance(frame % ds.test.size())).wait();
        ++frame;
      }
    });

    // Stream the test set frame by frame and print a dashboard.
    std::printf("streaming %d frames through the smart camera (threshold %.1f, backend %s)...\n\n",
                ds.test.size(), serve.policy_config.entropy_threshold,
                camera.backend().describe().c_str());
    std::printf("%-8s %9s %8s %8s %8s %12s\n", "frames", "accuracy", "main%", "ext%", "cloud%",
                "edge energy");
    const int chunk = 100;
    std::int64_t seen = 0, correct = 0;
    core::RouteCounts routes;
    double compute_j = 0.0, comm_j = 0.0;
    for (int start = 0; start < ds.test.size(); start += chunk) {
      const int count = std::min(chunk, ds.test.size() - start);
      // Keep the whole chunk in flight, then settle each frame through its
      // own handle — the handle index is the dataset index, so no id
      // arithmetic is needed.
      std::vector<runtime::ResultHandle> inflight;
      inflight.reserve(static_cast<std::size_t>(count));
      for (int i = 0; i < count; ++i) {
        inflight.push_back(camera.submit(ds.test.instance(start + i), frame_opts));
      }
      for (int i = 0; i < count; ++i) {
        const runtime::InferenceResult r = inflight[static_cast<std::size_t>(i)].wait().front();
        const int label = ds.test.labels[static_cast<std::size_t>(start + i)];
        if (r.prediction == label) ++correct;
        routes.add(r.route);
        compute_j += r.compute_energy_j;
        comm_j += r.comm_energy_j;
      }
      camera.drain();  // retire the settled round (handles already read)
      seen += count;
      std::printf("%-8lld %8.1f%% %7.1f%% %7.1f%% %7.1f%% %10.2f J\n",
                  static_cast<long long>(seen),
                  100.0 * static_cast<double>(correct) / static_cast<double>(seen),
                  100.0 * routes.main_exit / static_cast<double>(seen),
                  100.0 * routes.extension_exit / static_cast<double>(seen),
                  100.0 * routes.cloud / static_cast<double>(seen), compute_j + comm_j);
    }
    std::printf("\nfinal: %.1f%% of frames answered on-device, %.1f%% offloaded\n",
                100.0 * (routes.main_exit + routes.extension_exit) / static_cast<double>(seen),
                100.0 * routes.cloud / static_cast<double>(seen));
    std::printf("edge energy bill: %.2f J compute + %.2f J WiFi\n", compute_j, comm_j);

    m = camera.metrics();
    neighbor_stop.store(true);
    neighbor_traffic.join();
  }  // session destruction flushes every pending completion callback

  std::printf("\nsession metrics: %lld submitted, queue depth high-water %lld\n",
              static_cast<long long>(m.submitted_instances),
              static_cast<long long>(m.queue_depth_high_water));
  std::printf("deadline: %lld frames kept their edge answer (60ms bound; callback saw %lld)\n",
              static_cast<long long>(m.deadline_expirations),
              static_cast<long long>(deadline_saved.load()));
  const runtime::PriorityWaitStats camera_wait = m.priority_wait(5);
  std::printf("scheduling: priority-5 camera frames waited p99 %.3f ms in queue\n",
              1e3 * camera_wait.p99_s);
  std::printf("shared cell: %.2f s airtime charged, %.2f demand per wall second\n",
              m.cell_busy_s, m.cell_airtime_utilization);
  std::printf("%-12s %8s %10s %10s %10s\n", "route", "count", "p50 ms", "p95 ms", "p99 ms");
  for (const core::Route route :
       {core::Route::kMainExit, core::Route::kExtensionExit, core::Route::kCloud}) {
    const runtime::RouteLatencyStats& stats = m.route(route);
    std::printf("%-12s %8lld %10.3f %10.3f %10.3f\n", core::route_name(route),
                static_cast<long long>(stats.count), 1e3 * stats.p50_s, 1e3 * stats.p95_s,
                1e3 * stats.p99_s);
  }
  if (cloudd != nullptr) {
    cloudd->terminate();  // daemon prints its own stats and unlinks the socket
    ::unlink(weights_path.c_str());
  }
  return 0;
}
