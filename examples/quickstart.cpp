// Quickstart: the whole MEANet workflow in one file.
//
//  1. generate a synthetic image-classification workload;
//  2. build an MEANet (Model B on a small ResNet);
//  3. run the paper's Alg. 1: train the main block, discover hard
//     classes from validation statistics, freeze the main block, and
//     train the extension + adaptive blocks on hard-class data only;
//  4. serve the paper's Alg. 2 at the edge through the unified
//     meanet::runtime API: early exit for easy classes, extension
//     re-classification for hard ones;
//  5. print accuracy before/after and the exit distribution.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/builders.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "metrics/classification_metrics.h"
#include "runtime/session.h"

using namespace meanet;

int main() {
  // ---- 1. Data: 8 classes, some intentionally confusable. ----
  data::SyntheticSpec spec;
  spec.num_classes = 8;
  spec.height = 12;
  spec.width = 12;
  spec.train_per_class = 60;
  spec.test_per_class = 25;
  spec.max_difficulty = 0.85f;
  const data::SyntheticDataset ds = data::make_synthetic(spec, /*seed=*/7);
  util::Rng split_rng(1);
  const data::SplitResult parts = data::split(ds.train, 0.9, split_rng);
  std::printf("dataset: %d train / %d validation / %d test instances, %d classes\n",
              parts.first.size(), parts.second.size(), ds.test.size(), spec.num_classes);

  // ---- 2. Model: ResNet-style MEANet, half the classes treated hard. ----
  util::Rng model_rng(2);
  core::ResNetConfig config;
  config.blocks_per_stage = 1;
  config.channels = {8, 16, 32};
  config.image_channels = 3;
  config.num_classes = spec.num_classes;
  core::MEANet net =
      core::build_resnet_meanet_b(config, /*num_hard=*/4, core::FusionMode::kSum, model_rng);

  // ---- 3. Alg. 1: distributed training. ----
  core::DistributedTrainer trainer(net);
  core::TrainOptions opts;
  opts.epochs = 10;
  opts.batch_size = 32;
  opts.milestones = {6, 8};
  util::Rng train_rng(3);
  trainer.train_main(parts.first, opts, train_rng);  // at the "cloud"
  const data::ClassDict dict = trainer.select_hard_classes_from_validation(parts.second, 4);
  std::printf("hard classes discovered from validation precision:");
  for (int c : dict.hard_classes()) std::printf(" %d", c);
  std::printf("\n");
  opts.sgd.learning_rate = 0.05f;
  trainer.train_edge_blocks(parts.first, dict, opts, train_rng);  // at the edge

  // ---- 4./5. Alg. 2 edge serving through the runtime API. ----
  const core::MainProfile main_only = core::profile_main(net, ds.test);

  runtime::EngineConfig serve;
  serve.net = &net;
  serve.dict = &dict;  // edge-only: offload_mode defaults to kNone
  serve.response_cache_capacity = ds.test.size();  // dedup repeated frames
  runtime::InferenceSession session(serve);
  const auto results = session.run(ds.test);
  std::vector<int> predictions;
  predictions.reserve(results.size());
  for (const auto& r : results) predictions.push_back(r.prediction);
  const core::RouteCounts routes = runtime::count_routes(results);

  std::printf("\nmain block alone : %.1f%% test accuracy\n", 100.0 * main_only.accuracy);
  std::printf("MEANet (routed)  : %.1f%% test accuracy\n",
              100.0 * metrics::accuracy(predictions, ds.test.labels));
  std::printf("exits: %lld at main (early exit), %lld at extension\n",
              static_cast<long long>(routes.main_exit),
              static_cast<long long>(routes.extension_exit));

  // A second pass over the same frames is answered entirely from the
  // session response cache — no edge forward passes.
  const auto replay = session.run(ds.test);
  int replay_matches = 0;
  for (std::size_t i = 0; i < replay.size(); ++i) {
    if (replay[i].prediction == results[i].prediction) ++replay_matches;
  }
  const runtime::SessionMetrics m = session.metrics();
  std::printf("replayed the test set: %lld of %d frames served from the response cache, "
              "%d/%d predictions identical\n",
              static_cast<long long>(m.cache_hits), ds.test.size(), replay_matches,
              ds.test.size());
  std::printf("\nNext steps: see examples/smart_camera.cpp for edge-cloud offload\n");
  std::printf("and examples/threshold_tuning.cpp for choosing the entropy threshold.\n");
  return 0;
}
