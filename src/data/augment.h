// Training-time data augmentation — the standard CIFAR recipe the
// paper's training setup implies (random crop with padding + horizontal
// flip), implemented for NCHW float images.
#pragma once

#include "data/dataset.h"
#include "util/rng.h"

namespace meanet::data {

struct AugmentOptions {
  /// Zero-padding added on each side before a random crop back to the
  /// original size (CIFAR standard: 4).
  int crop_padding = 2;
  /// Probability of a horizontal flip.
  double flip_probability = 0.5;
  /// Stddev of additive pixel noise (0 disables).
  float noise_stddev = 0.0f;
};

/// Augments one batch in place (each instance independently).
void augment_batch(Tensor& images, const AugmentOptions& options, util::Rng& rng);

/// Returns an augmented copy of a single [1, C, H, W] instance.
Tensor augment_instance(const Tensor& image, const AugmentOptions& options, util::Rng& rng);

}  // namespace meanet::data
