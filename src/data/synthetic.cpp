#include "data/synthetic.h"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace meanet::data {

namespace {

/// Smooth prototype: coarse random grid, bilinearly upsampled per channel.
Tensor make_prototype(const SyntheticSpec& spec, util::Rng& rng) {
  const int grid = spec.prototype_grid;
  Tensor coarse = Tensor::normal(Shape{spec.channels, grid, grid}, rng, 0.0f, 1.0f);
  Tensor proto(Shape{1, spec.channels, spec.height, spec.width});
  for (int c = 0; c < spec.channels; ++c) {
    for (int h = 0; h < spec.height; ++h) {
      // Map pixel centre to coarse-grid coordinates.
      const float gy = (static_cast<float>(h) + 0.5f) / static_cast<float>(spec.height) *
                           static_cast<float>(grid) -
                       0.5f;
      const int y0 = static_cast<int>(std::floor(gy));
      const float fy = gy - static_cast<float>(y0);
      for (int w = 0; w < spec.width; ++w) {
        const float gx = (static_cast<float>(w) + 0.5f) / static_cast<float>(spec.width) *
                             static_cast<float>(grid) -
                         0.5f;
        const int x0 = static_cast<int>(std::floor(gx));
        const float fx = gx - static_cast<float>(x0);
        auto sample = [&](int y, int x) {
          y = std::min(std::max(y, 0), grid - 1);
          x = std::min(std::max(x, 0), grid - 1);
          return coarse[(static_cast<std::int64_t>(c) * grid + y) * grid + x];
        };
        const float v = (1 - fy) * ((1 - fx) * sample(y0, x0) + fx * sample(y0, x0 + 1)) +
                        fy * ((1 - fx) * sample(y0 + 1, x0) + fx * sample(y0 + 1, x0 + 1));
        proto.at(0, c, h, w) = v;
      }
    }
  }
  return proto;
}

Dataset generate_split(const SyntheticSpec& spec, int per_class,
                       const std::vector<Tensor>& prototypes, const std::vector<float>& difficulty,
                       const std::vector<int>& confuser, util::Rng& rng) {
  const int total = spec.num_classes * per_class;
  Dataset out;
  out.num_classes = spec.num_classes;
  out.images = Tensor(Shape{total, spec.channels, spec.height, spec.width});
  out.labels.resize(static_cast<std::size_t>(total));
  const std::int64_t stride = static_cast<std::int64_t>(spec.channels) * spec.height * spec.width;
  int row = 0;
  for (int c = 0; c < spec.num_classes; ++c) {
    const Tensor& own = prototypes[static_cast<std::size_t>(c)];
    const Tensor& other = prototypes[static_cast<std::size_t>(confuser[static_cast<std::size_t>(c)])];
    for (int i = 0; i < per_class; ++i, ++row) {
      const float alpha = rng.uniform(0.0f, difficulty[static_cast<std::size_t>(c)]);
      float* dst = out.images.data() + row * stride;
      for (std::int64_t j = 0; j < stride; ++j) {
        dst[j] = (1.0f - alpha) * own[j] + alpha * other[j] +
                 rng.normal(0.0f, spec.noise_stddev);
      }
      out.labels[static_cast<std::size_t>(row)] = c;
    }
  }
  return out;
}

}  // namespace

SyntheticDataset make_synthetic(const SyntheticSpec& spec, std::uint64_t seed) {
  if (spec.num_classes < 2 || spec.num_classes % 2 != 0) {
    throw std::invalid_argument("make_synthetic: num_classes must be even and >= 2");
  }
  if (spec.min_difficulty < 0.0f || spec.max_difficulty > 1.0f ||
      spec.min_difficulty > spec.max_difficulty) {
    throw std::invalid_argument("make_synthetic: bad difficulty range");
  }
  util::Rng rng(seed);

  std::vector<Tensor> prototypes;
  prototypes.reserve(static_cast<std::size_t>(spec.num_classes));
  for (int c = 0; c < spec.num_classes; ++c) prototypes.push_back(make_prototype(spec, rng));

  // Confuser pairing: shuffle classes, pair consecutive entries.
  std::vector<int> order(static_cast<std::size_t>(spec.num_classes));
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  std::vector<int> confuser(static_cast<std::size_t>(spec.num_classes), 0);
  for (int i = 0; i < spec.num_classes; i += 2) {
    confuser[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] =
        order[static_cast<std::size_t>(i + 1)];
    confuser[static_cast<std::size_t>(order[static_cast<std::size_t>(i + 1)])] =
        order[static_cast<std::size_t>(i)];
  }

  // Difficulty ramp over a second shuffled order, so difficulty is not
  // correlated with label index or pairing.
  std::vector<int> diff_order(static_cast<std::size_t>(spec.num_classes));
  std::iota(diff_order.begin(), diff_order.end(), 0);
  rng.shuffle(diff_order);
  std::vector<float> difficulty(static_cast<std::size_t>(spec.num_classes), 0.0f);
  for (int rank = 0; rank < spec.num_classes; ++rank) {
    const float t = spec.num_classes == 1
                        ? 0.0f
                        : static_cast<float>(rank) / static_cast<float>(spec.num_classes - 1);
    difficulty[static_cast<std::size_t>(diff_order[static_cast<std::size_t>(rank)])] =
        spec.min_difficulty + t * (spec.max_difficulty - spec.min_difficulty);
  }

  SyntheticDataset out;
  out.difficulty = difficulty;
  out.confuser = confuser;
  util::Rng train_rng = rng.fork();
  util::Rng test_rng = rng.fork();
  out.train = generate_split(spec, spec.train_per_class, prototypes, difficulty, confuser,
                             train_rng);
  out.test = generate_split(spec, spec.test_per_class, prototypes, difficulty, confuser, test_rng);
  return out;
}

SyntheticSpec cifar_like_spec() {
  SyntheticSpec spec;
  spec.num_classes = 20;
  spec.channels = 3;
  spec.height = 16;
  spec.width = 16;
  spec.train_per_class = 100;
  spec.test_per_class = 25;
  return spec;
}

SyntheticSpec imagenet_like_spec() {
  SyntheticSpec spec;
  spec.num_classes = 10;
  spec.channels = 3;
  spec.height = 24;
  spec.width = 24;
  spec.train_per_class = 80;
  spec.test_per_class = 25;
  spec.max_difficulty = 0.7f;
  return spec;
}

}  // namespace meanet::data
