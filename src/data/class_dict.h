// ClassDict — Alg. 1 step 3 of the paper: the bidirectional mapping
// between global class labels and the compact label space used by the
// extension block, which is trained on hard classes only.
#pragma once

#include <vector>

namespace meanet::data {

class ClassDict {
 public:
  ClassDict() = default;

  /// Builds the dictionary from the selected hard classes. `hard_classes`
  /// entries must be distinct and in [0, num_classes).
  ClassDict(int num_classes, const std::vector<int>& hard_classes);

  int num_classes() const { return num_classes_; }
  int num_hard() const { return static_cast<int>(hard_to_global_.size()); }
  int num_easy() const { return num_classes_ - num_hard(); }

  bool is_hard(int global_label) const;

  /// Global -> hard label; -1 for easy classes.
  int to_hard(int global_label) const;

  /// Hard -> global label.
  int to_global(int hard_label) const;

  /// Sorted list of hard classes (global labels).
  const std::vector<int>& hard_classes() const { return hard_to_global_; }

  /// Global labels not in the hard set.
  std::vector<int> easy_classes() const;

  /// The full global->hard mapping vector (for Dataset::remap_labels).
  const std::vector<int>& mapping() const { return global_to_hard_; }

 private:
  int num_classes_ = 0;
  std::vector<int> global_to_hard_;  // -1 for easy classes
  std::vector<int> hard_to_global_;
};

}  // namespace meanet::data
