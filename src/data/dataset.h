// In-memory labelled image dataset plus selection/split helpers.
//
// Alg. 1 of the paper filters the training set down to hard-class
// instances (steps 3 and 5); `filter_by_labels` and `remap_labels`
// implement exactly that.
#pragma once

#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace meanet::data {

struct Dataset {
  /// [N, C, H, W] images.
  Tensor images;
  /// N labels in [0, num_classes).
  std::vector<int> labels;
  int num_classes = 0;

  int size() const { return static_cast<int>(labels.size()); }
  Shape instance_shape() const;

  /// Copies instance `index` as a [1, C, H, W] tensor.
  Tensor instance(int index) const { return images.slice_batch(index); }
};

/// Copies the rows at `indices` into a new dataset (labels preserved).
Dataset select(const Dataset& source, const std::vector<int>& indices);

/// Keeps only instances whose label is in `keep` (num_classes preserved).
Dataset filter_by_labels(const Dataset& source, const std::vector<int>& keep);

/// Replaces each label via `mapping[label]` and sets `num_classes` to
/// `new_num_classes`; every instance's label must map to >= 0.
Dataset remap_labels(const Dataset& source, const std::vector<int>& mapping, int new_num_classes);

struct SplitResult {
  Dataset first;
  Dataset second;
};

/// Shuffled split: `first_fraction` of instances into .first, rest into
/// .second. Used for the paper's 90/10 train/validation split.
SplitResult split(const Dataset& source, double first_fraction, util::Rng& rng);

/// Gathers a batch of instances at `indices` into ([B,C,H,W], labels).
std::pair<Tensor, std::vector<int>> gather_batch(const Dataset& source,
                                                 const std::vector<int>& indices);

}  // namespace meanet::data
