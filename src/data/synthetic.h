// Procedural image-classification dataset with controllable class-wise
// and instance-wise complexity — the stand-in for CIFAR-100 / ImageNet
// (DESIGN.md §1 documents the substitution).
//
// Generation model:
//  * every class gets a smooth random prototype image (coarse noise grid,
//    bilinearly upsampled);
//  * classes are paired into confuser pairs; class c draws a per-instance
//    mixing weight alpha ~ U(0, difficulty(c)) and the instance is
//    (1-alpha) * prototype(c) + alpha * prototype(confuser(c)) + noise;
//  * difficulty varies linearly across (shuffled) classes, so some
//    classes are intrinsically hard (low main-block precision -> high
//    FDR, the paper's class-wise complexity) while high-alpha / noisy
//    instances are complex (high entropy, the paper's instance-wise
//    complexity).
#pragma once

#include "data/dataset.h"
#include "util/rng.h"

namespace meanet::data {

struct SyntheticSpec {
  int num_classes = 20;
  int channels = 3;
  int height = 16;
  int width = 16;
  int train_per_class = 100;
  int test_per_class = 25;
  /// Easiest class difficulty (max confuser mixing weight).
  float min_difficulty = 0.05f;
  /// Hardest class difficulty.
  float max_difficulty = 0.75f;
  /// I.i.d. pixel noise stddev added to every instance.
  float noise_stddev = 0.25f;
  /// Cells per axis of the coarse prototype grid (smoothness control).
  int prototype_grid = 4;
};

struct SyntheticDataset {
  Dataset train;
  Dataset test;
  /// Ground-truth per-class difficulty (for tests; learning code must not
  /// look at this — hard classes are *discovered* from validation stats).
  std::vector<float> difficulty;
  /// Ground-truth confuser pairing.
  std::vector<int> confuser;
};

/// Deterministically generates train and test sets from `seed`.
SyntheticDataset make_synthetic(const SyntheticSpec& spec, std::uint64_t seed);

/// The scaled-down "CIFAR-100-like" configuration used by the benches:
/// 20 classes of 16x16x3 images.
SyntheticSpec cifar_like_spec();

/// The scaled-down "ImageNet-like" configuration: fewer, larger images
/// (24x24x3) so communication cost dominates, as in the paper's Fig. 8.
SyntheticSpec imagenet_like_spec();

}  // namespace meanet::data
