#include "data/batcher.h"

#include <numeric>
#include <stdexcept>

namespace meanet::data {

Batcher::Batcher(int dataset_size, int batch_size, util::Rng& rng)
    : dataset_size_(dataset_size), batch_size_(batch_size), rng_(rng),
      order_(static_cast<std::size_t>(dataset_size)) {
  if (dataset_size <= 0) throw std::invalid_argument("Batcher: dataset is empty");
  if (batch_size <= 0) throw std::invalid_argument("Batcher: batch_size must be positive");
  std::iota(order_.begin(), order_.end(), 0);
}

int Batcher::batches_per_epoch() const {
  return (dataset_size_ + batch_size_ - 1) / batch_size_;
}

std::vector<std::vector<int>> Batcher::epoch() {
  rng_.shuffle(order_);
  std::vector<std::vector<int>> batches;
  batches.reserve(static_cast<std::size_t>(batches_per_epoch()));
  for (int start = 0; start < dataset_size_; start += batch_size_) {
    const int end = std::min(start + batch_size_, dataset_size_);
    batches.emplace_back(order_.begin() + start, order_.begin() + end);
  }
  return batches;
}

}  // namespace meanet::data
