#include "data/augment.h"

#include <stdexcept>

namespace meanet::data {

namespace {

/// Shifted copy with zero fill: output(h, w) = input(h + dy, w + dx).
void shift_instance(const float* src, float* dst, int channels, int height, int width, int dy,
                    int dx) {
  for (int c = 0; c < channels; ++c) {
    const float* src_c = src + static_cast<std::int64_t>(c) * height * width;
    float* dst_c = dst + static_cast<std::int64_t>(c) * height * width;
    for (int h = 0; h < height; ++h) {
      const int sh = h + dy;
      for (int w = 0; w < width; ++w) {
        const int sw = w + dx;
        dst_c[h * width + w] = (sh >= 0 && sh < height && sw >= 0 && sw < width)
                                   ? src_c[sh * width + sw]
                                   : 0.0f;
      }
    }
  }
}

void flip_instance(float* img, int channels, int height, int width) {
  for (int c = 0; c < channels; ++c) {
    float* img_c = img + static_cast<std::int64_t>(c) * height * width;
    for (int h = 0; h < height; ++h) {
      float* row = img_c + static_cast<std::int64_t>(h) * width;
      for (int w = 0; w < width / 2; ++w) std::swap(row[w], row[width - 1 - w]);
    }
  }
}

}  // namespace

void augment_batch(Tensor& images, const AugmentOptions& options, util::Rng& rng) {
  if (images.shape().rank() != 4) throw std::invalid_argument("augment_batch: expected NCHW");
  if (options.crop_padding < 0) throw std::invalid_argument("augment_batch: negative padding");
  const int batch = images.shape().batch();
  const int channels = images.shape().channels();
  const int height = images.shape().height();
  const int width = images.shape().width();
  const std::int64_t chw = static_cast<std::int64_t>(channels) * height * width;
  std::vector<float> scratch(static_cast<std::size_t>(chw));
  for (int n = 0; n < batch; ++n) {
    float* img = images.data() + n * chw;
    if (options.crop_padding > 0) {
      // Random crop == random shift within +-padding with zero fill.
      const int dy = rng.uniform_int(-options.crop_padding, options.crop_padding);
      const int dx = rng.uniform_int(-options.crop_padding, options.crop_padding);
      if (dy != 0 || dx != 0) {
        shift_instance(img, scratch.data(), channels, height, width, dy, dx);
        std::copy(scratch.begin(), scratch.end(), img);
      }
    }
    if (options.flip_probability > 0.0 && rng.bernoulli(options.flip_probability)) {
      flip_instance(img, channels, height, width);
    }
    if (options.noise_stddev > 0.0f) {
      for (std::int64_t i = 0; i < chw; ++i) img[i] += rng.normal(0.0f, options.noise_stddev);
    }
  }
}

Tensor augment_instance(const Tensor& image, const AugmentOptions& options, util::Rng& rng) {
  Tensor out = image;
  augment_batch(out, options, rng);
  return out;
}

}  // namespace meanet::data
