// Epoch batcher: shuffles instance indices each epoch and yields
// contiguous batches.
#pragma once

#include <vector>

#include "util/rng.h"

namespace meanet::data {

class Batcher {
 public:
  Batcher(int dataset_size, int batch_size, util::Rng& rng);

  /// Reshuffles and returns the batches (index lists) for one epoch. The
  /// final batch may be smaller; it is dropped only if empty.
  std::vector<std::vector<int>> epoch();

  int batch_size() const { return batch_size_; }
  int batches_per_epoch() const;

 private:
  int dataset_size_;
  int batch_size_;
  util::Rng& rng_;
  std::vector<int> order_;
};

}  // namespace meanet::data
