#include "data/dataset.h"

#include <numeric>
#include <stdexcept>

namespace meanet::data {

Shape Dataset::instance_shape() const {
  const Shape& s = images.shape();
  return Shape{1, s.channels(), s.height(), s.width()};
}

Dataset select(const Dataset& source, const std::vector<int>& indices) {
  const Shape& s = source.images.shape();
  const int c = s.channels(), h = s.height(), w = s.width();
  Dataset out;
  out.num_classes = source.num_classes;
  out.images = Tensor(Shape{static_cast<int>(indices.size()), c, h, w});
  out.labels.reserve(indices.size());
  const std::int64_t stride = static_cast<std::int64_t>(c) * h * w;
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const int idx = indices[i];
    if (idx < 0 || idx >= source.size()) throw std::out_of_range("select: index out of range");
    const float* src = source.images.data() + idx * stride;
    float* dst = out.images.data() + static_cast<std::int64_t>(i) * stride;
    std::copy(src, src + stride, dst);
    out.labels.push_back(source.labels[static_cast<std::size_t>(idx)]);
  }
  return out;
}

Dataset filter_by_labels(const Dataset& source, const std::vector<int>& keep) {
  std::vector<bool> keep_mask(static_cast<std::size_t>(source.num_classes), false);
  for (int c : keep) {
    if (c < 0 || c >= source.num_classes) throw std::out_of_range("filter_by_labels: bad class");
    keep_mask[static_cast<std::size_t>(c)] = true;
  }
  std::vector<int> indices;
  for (int i = 0; i < source.size(); ++i) {
    if (keep_mask[static_cast<std::size_t>(source.labels[static_cast<std::size_t>(i)])]) {
      indices.push_back(i);
    }
  }
  return select(source, indices);
}

Dataset remap_labels(const Dataset& source, const std::vector<int>& mapping, int new_num_classes) {
  Dataset out = source;
  out.num_classes = new_num_classes;
  for (auto& label : out.labels) {
    if (label < 0 || label >= static_cast<int>(mapping.size())) {
      throw std::out_of_range("remap_labels: label outside mapping");
    }
    const int mapped = mapping[static_cast<std::size_t>(label)];
    if (mapped < 0 || mapped >= new_num_classes) {
      throw std::invalid_argument("remap_labels: instance maps to invalid class " +
                                  std::to_string(mapped));
    }
    label = mapped;
  }
  return out;
}

SplitResult split(const Dataset& source, double first_fraction, util::Rng& rng) {
  if (first_fraction < 0.0 || first_fraction > 1.0) {
    throw std::invalid_argument("split: fraction must be in [0, 1]");
  }
  std::vector<int> indices(static_cast<std::size_t>(source.size()));
  std::iota(indices.begin(), indices.end(), 0);
  rng.shuffle(indices);
  const auto cut = static_cast<std::size_t>(first_fraction * static_cast<double>(indices.size()));
  const std::vector<int> first_idx(indices.begin(), indices.begin() + static_cast<std::ptrdiff_t>(cut));
  const std::vector<int> second_idx(indices.begin() + static_cast<std::ptrdiff_t>(cut), indices.end());
  return SplitResult{select(source, first_idx), select(source, second_idx)};
}

std::pair<Tensor, std::vector<int>> gather_batch(const Dataset& source,
                                                 const std::vector<int>& indices) {
  Dataset batch = select(source, indices);
  return {std::move(batch.images), std::move(batch.labels)};
}

}  // namespace meanet::data
