#include "data/class_dict.h"

#include <algorithm>
#include <stdexcept>

namespace meanet::data {

ClassDict::ClassDict(int num_classes, const std::vector<int>& hard_classes)
    : num_classes_(num_classes), global_to_hard_(static_cast<std::size_t>(num_classes), -1) {
  if (num_classes <= 0) throw std::invalid_argument("ClassDict: num_classes must be positive");
  hard_to_global_ = hard_classes;
  std::sort(hard_to_global_.begin(), hard_to_global_.end());
  if (std::adjacent_find(hard_to_global_.begin(), hard_to_global_.end()) !=
      hard_to_global_.end()) {
    throw std::invalid_argument("ClassDict: duplicate hard class");
  }
  for (std::size_t i = 0; i < hard_to_global_.size(); ++i) {
    const int c = hard_to_global_[i];
    if (c < 0 || c >= num_classes) throw std::out_of_range("ClassDict: hard class out of range");
    global_to_hard_[static_cast<std::size_t>(c)] = static_cast<int>(i);
  }
}

bool ClassDict::is_hard(int global_label) const { return to_hard(global_label) >= 0; }

int ClassDict::to_hard(int global_label) const {
  if (global_label < 0 || global_label >= num_classes_) {
    throw std::out_of_range("ClassDict::to_hard: label out of range");
  }
  return global_to_hard_[static_cast<std::size_t>(global_label)];
}

int ClassDict::to_global(int hard_label) const {
  if (hard_label < 0 || hard_label >= num_hard()) {
    throw std::out_of_range("ClassDict::to_global: label out of range");
  }
  return hard_to_global_[static_cast<std::size_t>(hard_label)];
}

std::vector<int> ClassDict::easy_classes() const {
  std::vector<int> out;
  for (int c = 0; c < num_classes_; ++c) {
    if (!is_hard(c)) out.push_back(c);
  }
  return out;
}

}  // namespace meanet::data
