// Framed request/response wire format of the edge->cloud offload hop
// (ROADMAP "a real wire" item; the packet-framing / transport split
// mirrors fujinet-nio's fuji_bus_packet + transport seam).
//
// Every message is one length-prefixed frame, little-endian:
//
//   offset size field
//        0    4 magic "MWIR"
//        4    2 protocol version (kWireVersion)
//        6    2 command id (Command)
//        8    8 request id (echoed verbatim in the response)
//       16    4 payload size in bytes
//       20    4 CRC32 of the payload (wire/crc32.h)
//       24    n payload
//
// The header is fixed 24 bytes, so a reader can always reassemble a
// frame from arbitrarily split reads: read 24, validate, read n. A bad
// magic or unsupported version is a ProtocolError before any payload is
// read; the payload size is bounded (FrameLimits::max_payload_bytes)
// before allocation so a hostile length prefix cannot become an
// allocation bomb; a CRC mismatch after the payload arrives is a
// ProtocolError too.
//
// Payloads reuse the project's single tensor byte format
// (nn/serialize.h append_tensor/read_tensor) for image/feature batches
// — the wire does NOT invent a second tensor encoding.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "runtime/offload_backend.h"
#include "wire/transport.h"

namespace meanet::wire {

/// Bump on any incompatible frame/payload change; both sides reject
/// other versions (version-skew test in tests/test_wire_protocol.cpp).
constexpr std::uint16_t kWireVersion = 1;

constexpr std::uint8_t kMagic[4] = {'M', 'W', 'I', 'R'};
constexpr std::size_t kFrameHeaderBytes = 24;

enum class Command : std::uint16_t {
  kOffloadRequest = 1,   // payload: flags + image/feature tensors
  kOffloadResponse = 2,  // payload: predicted labels
  kError = 3,            // payload: error code + message
  kStatsRequest = 4,     // payload: empty, or u32 flags (kStatsFlag*)
  kStatsResponse = 5,    // payload: named u64 counters, or a JSON document
  kPing = 6,             // payload: empty
  kPong = 7,             // payload: empty
};

const char* command_name(Command command);

/// Remote-reported error codes carried by Command::kError.
enum class ErrorCode : std::uint32_t {
  kUnsupportedVersion = 1,
  kMalformedFrame = 2,
  kUnknownCommand = 3,
  kBackendFailed = 4,
};

/// The frame reader rejected the byte stream: bad magic, version skew,
/// oversized payload, CRC mismatch, or an undecodable payload.
class ProtocolError : public WireError {
 public:
  explicit ProtocolError(const std::string& what) : WireError(what) {}
};

struct Frame {
  Command command = Command::kPing;
  std::uint64_t request_id = 0;
  std::vector<std::uint8_t> payload;
};

struct FrameLimits {
  /// Refuse frames whose length prefix exceeds this, before allocating.
  std::size_t max_payload_bytes = 64u << 20;
  /// Bound on the whole frame read (header + payload); kNoTimeout = block.
  double timeout_s = kNoTimeout;
};

/// Serializes a frame (header + payload) into one contiguous buffer —
/// exposed so tests can assert golden bytes.
std::vector<std::uint8_t> encode_frame(const Frame& frame);

/// Writes one frame to the transport.
void write_frame(Transport& transport, const Frame& frame);

/// Reads and validates one frame. Returns false — with `out` untouched
/// — on orderly close at a frame boundary; throws ProtocolError /
/// TransportError / TransportTimeout otherwise.
bool read_frame(Transport& transport, Frame& out, const FrameLimits& limits = {});

// ---- Payload codecs ----
// Encoders produce the payload bytes of one command; decoders are
// bounds-checked and throw ProtocolError on malformed input.

/// Offload request: u32 flags (bit0 = images present, bit1 = features
/// present) followed by the present tensors in that order.
std::vector<std::uint8_t> encode_offload_request(const runtime::OffloadPayload& payload);
runtime::OffloadPayload decode_offload_request(const std::vector<std::uint8_t>& bytes);

/// Offload response: u32 count, then count i32 predicted labels.
std::vector<std::uint8_t> encode_offload_response(const std::vector<int>& predictions);
std::vector<int> decode_offload_response(const std::vector<std::uint8_t>& bytes);

/// Error: u32 code, u32 message length, message bytes.
std::vector<std::uint8_t> encode_error(ErrorCode code, const std::string& message);
std::pair<ErrorCode, std::string> decode_error(const std::vector<std::uint8_t>& bytes);

/// Stats: u32 entry count, then per entry u32 name length | name bytes
/// | u64 value. Order-preserving.
using StatsEntries = std::vector<std::pair<std::string, std::uint64_t>>;
std::vector<std::uint8_t> encode_stats(const StatsEntries& entries);
StatsEntries decode_stats(const std::vector<std::uint8_t>& bytes);

/// kStatsRequest flag bits. The server answers a flagless (empty
/// payload — every pre-flag client) or flags==0 request with the
/// legacy counter entries; kStatsFlagDiagSnapshot asks for the full
/// process diagnostics registry snapshot as a UTF-8 JSON document
/// (schema diag::kSchemaVersion) in the kStatsResponse payload. Wire
/// version stays 1: old servers never see the flag from old clients,
/// and the frame layout is unchanged.
constexpr std::uint32_t kStatsFlagDiagSnapshot = 1u << 0;

/// Stats request: empty for the legacy counters, or a single u32 of
/// kStatsFlag* bits (encode omits the word when flags == 0).
std::vector<std::uint8_t> encode_stats_request(std::uint32_t flags);
std::uint32_t decode_stats_request(const std::vector<std::uint8_t>& bytes);

/// Wire bytes of a single-instance offload request of the given
/// geometries ([1,C,H,W] / [1,c,h,w]): frame header + flags + the
/// present tensors' encodings. What a WireBackend's payload_bytes()
/// prices and what the ablation bench reports as framing overhead —
/// note float32 tensors cost 4 bytes/element where the in-process
/// RawImageBackend prices an 8-bit upload at 1.
std::int64_t request_wire_bytes(const Shape& image_shape, const Shape& feature_shape,
                                bool images, bool features);

}  // namespace meanet::wire
