// Minimal child-process supervisor for the pieces that spawn a real
// meanet_cloudd (examples, end-to-end checks): fork+exec with argv,
// SIGTERM + waitpid teardown. Not a general process library — just
// enough to run a daemon for the lifetime of a scope.
#pragma once

#include <string>
#include <vector>

#include <sys/types.h>

namespace meanet::wire {

class ChildProcess {
 public:
  /// Spawns `argv[0]` with the given arguments. Throws std::runtime_error
  /// when the fork/exec fails outright (a missing binary is only
  /// detected by the child exiting; call running() to check).
  explicit ChildProcess(std::vector<std::string> argv);
  ~ChildProcess();

  ChildProcess(const ChildProcess&) = delete;
  ChildProcess& operator=(const ChildProcess&) = delete;

  /// True while the child has not been reaped.
  bool running();

  /// SIGTERM, escalating to SIGKILL after `grace_s`, then reaps.
  /// Idempotent; the destructor calls it.
  void terminate(double grace_s = 2.0);

  pid_t pid() const { return pid_; }

 private:
  pid_t pid_ = -1;
};

}  // namespace meanet::wire
