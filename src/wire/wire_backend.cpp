#include "wire/wire_backend.h"

#include <stdexcept>
#include <utility>

#include "wire/socket_transport.h"

namespace meanet::wire {

WireBackend::WireBackend(WireBackendConfig config)
    : config_(std::move(config)),
      send_images_(config_.send_images),
      send_features_(config_.send_features) {
  if (!send_images_ && !send_features_) {
    throw std::invalid_argument("WireBackend: must ship images and/or features");
  }
  if (config_.socket_path.empty() && !config_.transport_factory) {
    throw std::invalid_argument("WireBackend: needs a socket path or transport factory");
  }
}

WireBackend::~WireBackend() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (conn_) conn_->close();
}

std::unique_ptr<Transport>& WireBackend::ensure_connected() {
  if (!conn_) {
    conn_ = config_.transport_factory
                ? config_.transport_factory()
                : connect_unix(config_.socket_path, config_.connect_timeout_s);
    if (!conn_) throw TransportError("WireBackend: transport factory returned null");
  }
  return conn_;
}

Frame WireBackend::roundtrip(Command command, const std::vector<std::uint8_t>& payload,
                             Command expected_reply) {
  std::lock_guard<std::mutex> lock(mutex_);
  // A failure on a connection that predates this call gets one retry on
  // a fresh dial — the daemon may have restarted since the last
  // exchange and an idle socket only reveals that on use. A fresh
  // connection's failure is final: the wire is genuinely down, and the
  // caller (the session) falls back to edge predictions.
  for (int attempt = 0;; ++attempt) {
    const bool reused = conn_ != nullptr;
    try {
      Transport& t = *ensure_connected();
      Frame request;
      request.command = command;
      request.request_id = next_request_id_++;
      request.payload = payload;
      write_frame(t, request);
      FrameLimits limits = config_.limits;
      limits.timeout_s = config_.response_timeout_s;
      Frame reply;
      while (true) {
        if (!read_frame(t, reply, limits)) {
          throw TransportError("WireBackend: server closed the connection mid-exchange");
        }
        if (reply.request_id == request.request_id) break;
        // A stream-level error report (request id 0: the server could
        // not even attribute the frame) kills the exchange.
        if (reply.command == Command::kError) break;
        // A stale answer to an earlier abandoned request: skip it.
      }
      if (reply.command == Command::kError) {
        const auto [code, message] = decode_error(reply.payload);
        throw ProtocolError("WireBackend: server error " +
                            std::to_string(static_cast<std::uint32_t>(code)) + ": " + message);
      }
      if (reply.command != expected_reply) {
        throw ProtocolError(std::string("WireBackend: expected ") +
                            command_name(expected_reply) + ", got " +
                            command_name(reply.command));
      }
      return reply;
    } catch (const WireError&) {
      if (conn_) conn_->close();
      conn_.reset();
      if (reused && attempt == 0) continue;
      throw;
    }
  }
}

std::vector<int> WireBackend::classify(const runtime::OffloadPayload& payload) {
  // The session gathers exactly the representations needs_images() /
  // needs_features() asked for, so the payload ships as-is.
  const Frame reply = roundtrip(Command::kOffloadRequest, encode_offload_request(payload),
                                Command::kOffloadResponse);
  return decode_offload_response(reply.payload);
}

std::int64_t WireBackend::payload_bytes(const Shape& image_shape,
                                        const Shape& feature_shape) const {
  return request_wire_bytes(image_shape, feature_shape, send_images_, send_features_);
}

std::string WireBackend::describe() const {
  if (config_.transport_factory) return "wire(custom-transport)";
  return "wire(unix:" + config_.socket_path + ")";
}

StatsEntries WireBackend::fetch_stats() {
  return decode_stats(
      roundtrip(Command::kStatsRequest, {}, Command::kStatsResponse).payload);
}

std::string WireBackend::fetch_diagnostics() {
  const Frame reply = roundtrip(Command::kStatsRequest,
                                encode_stats_request(kStatsFlagDiagSnapshot),
                                Command::kStatsResponse);
  return std::string(reply.payload.begin(), reply.payload.end());
}

void WireBackend::ping() { roundtrip(Command::kPing, {}, Command::kPong); }

bool WireBackend::connected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return conn_ != nullptr;
}

}  // namespace meanet::wire
