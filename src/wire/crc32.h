// CRC32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the payload
// checksum of the offload wire protocol (wire/frame.h). Standard
// parameters so frames are checkable by any off-the-shelf tool:
// crc32("123456789") == 0xCBF43926.
#pragma once

#include <cstddef>
#include <cstdint>

namespace meanet::wire {

/// CRC32 of `size` bytes. Pass a previous result as `seed` to extend a
/// running checksum over split buffers (seed 0 starts a fresh one).
std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed = 0);

}  // namespace meanet::wire
