#include "wire/process.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

namespace meanet::wire {

ChildProcess::ChildProcess(std::vector<std::string> argv) {
  if (argv.empty()) throw std::invalid_argument("ChildProcess: empty argv");
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (std::string& arg : argv) cargv.push_back(arg.data());
  cargv.push_back(nullptr);
  pid_ = ::fork();
  if (pid_ < 0) {
    throw std::runtime_error(std::string("ChildProcess: fork: ") + std::strerror(errno));
  }
  if (pid_ == 0) {
    ::execv(cargv[0], cargv.data());
    // Only reached when exec failed; _exit skips atexit/static teardown
    // of the forked copy.
    ::_exit(127);
  }
}

ChildProcess::~ChildProcess() { terminate(); }

bool ChildProcess::running() {
  if (pid_ < 0) return false;
  int status = 0;
  const pid_t rc = ::waitpid(pid_, &status, WNOHANG);
  if (rc == pid_) {
    pid_ = -1;
    return false;
  }
  return rc == 0;
}

void ChildProcess::terminate(double grace_s) {
  if (pid_ < 0) return;
  ::kill(pid_, SIGTERM);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::duration<double>(grace_s);
  int status = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    if (::waitpid(pid_, &status, WNOHANG) == pid_) {
      pid_ = -1;
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ::kill(pid_, SIGKILL);
  ::waitpid(pid_, &status, 0);
  pid_ = -1;
}

}  // namespace meanet::wire
