#include "wire/server.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace meanet::wire {

namespace {

/// Instances a pending payload carries (its dim-0 row count).
std::int64_t payload_instances(const runtime::OffloadPayload& payload) {
  if (!payload.images.empty()) return payload.images.shape().dim(0);
  return payload.features.shape().dim(0);
}

/// Per-instance geometry of a tensor ("" when absent): batchable
/// requests must agree on it per modality.
std::string row_signature(const Tensor& t) {
  if (t.empty()) return "";
  std::string sig;
  for (int i = 1; i < t.shape().rank(); ++i) {
    sig += std::to_string(t.shape().dim(i));
    sig += 'x';
  }
  return sig;
}

bool batchable(const runtime::OffloadPayload& a, const runtime::OffloadPayload& b) {
  return row_signature(a.images) == row_signature(b.images) &&
         row_signature(a.features) == row_signature(b.features);
}

/// Concatenates same-row-geometry tensors along dim 0 (empty inputs →
/// empty output).
Tensor concat_rows(const std::vector<const Tensor*>& parts) {
  if (parts.empty() || parts.front()->empty()) return {};
  std::vector<int> dims = parts.front()->shape().dims();
  dims[0] = 0;
  for (const Tensor* t : parts) dims[0] += t->shape().dim(0);
  Tensor out{Shape(dims)};
  float* dst = out.data();
  for (const Tensor* t : parts) {
    std::memcpy(dst, t->data(), static_cast<std::size_t>(t->numel()) * sizeof(float));
    dst += t->numel();
  }
  return out;
}

}  // namespace

StatsEntries WireServerStats::to_entries() const {
  StatsEntries entries = {
      {"connections_accepted", connections_accepted},
      {"connections_active", connections_active},
      {"frames_in", frames_in},
      {"frames_out", frames_out},
      {"requests_served", requests_served},
      {"instances_served", instances_served},
      {"batches", batches},
      {"cross_session_batches", cross_session_batches},
      {"protocol_errors", protocol_errors},
      {"backend_failures", backend_failures},
  };
  for (std::size_t k = 0; k < batch_size_histogram.size(); ++k) {
    if (batch_size_histogram[k] > 0) {
      entries.emplace_back("batch_size_" + std::to_string(k), batch_size_histogram[k]);
    }
  }
  return entries;
}

WireServer::WireServer(std::shared_ptr<runtime::OffloadBackend> backend,
                       WireServerConfig config)
    : backend_(std::move(backend)), config_(config) {
  if (!backend_) throw std::invalid_argument("WireServer: null backend");
  if (config_.max_batch_instances < 1) config_.max_batch_instances = 1;
  batch_thread_ = std::thread([this] { batch_loop(); });
  static std::atomic<std::uint64_t> next_server_id{0};
  diag_name_ = "wire_server/" + std::to_string(next_server_id.fetch_add(1));
  diag_registration_ = diag::ScopedRegistration(diag::DiagnosticRegistry::global(), this);
}

diag::Value WireServer::diag_snapshot() const {
  const WireServerStats s = stats();
  diag::Value v = diag::Value::object();
  if (!socket_path_.empty()) v.set("socket_path", socket_path_);
  diag::Value cfg = diag::Value::object();
  cfg.set("max_batch_instances", config_.max_batch_instances);
  cfg.set("batch_window_s", config_.batch_window_s);
  v.set("config", std::move(cfg));
  v.set("connections_accepted", s.connections_accepted);
  v.set("connections_active", s.connections_active);
  v.set("frames_in", s.frames_in);
  v.set("frames_out", s.frames_out);
  v.set("requests_served", s.requests_served);
  v.set("instances_served", s.instances_served);
  v.set("batches", s.batches);
  v.set("cross_session_batches", s.cross_session_batches);
  v.set("protocol_errors", s.protocol_errors);
  v.set("backend_failures", s.backend_failures);
  diag::Value histogram = diag::Value::array();
  for (const std::uint64_t bucket : s.batch_size_histogram) histogram.push(bucket);
  v.set("batch_size_histogram", std::move(histogram));
  return v;
}

WireServer::~WireServer() { stop(); }

void WireServer::listen_unix(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) throw std::logic_error("WireServer: listen after stop");
    if (listener_) throw std::logic_error("WireServer: already listening");
  }
  listener_ = std::make_unique<UnixListener>(path);
  socket_path_ = path;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void WireServer::accept_loop() {
  while (true) {
    std::unique_ptr<Transport> conn = listener_->accept(0.25);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) return;
    }
    if (conn) adopt(std::move(conn));
  }
}

void WireServer::adopt(std::unique_ptr<Transport> transport) {
  auto conn = std::make_shared<Connection>();
  conn->transport = std::move(transport);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      conn->transport->close();
      return;
    }
    conn->id = next_connection_id_++;
    connections_.push_back(conn);
    {
      std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      stats_.connections_accepted++;
      stats_.connections_active++;
    }
    readers_.emplace_back([this, conn] { reader_loop(conn); });
  }
}

void WireServer::reader_loop(std::shared_ptr<Connection> conn) {
  FrameLimits limits = config_.limits;
  limits.timeout_s = kNoTimeout;  // block until the connection closes
  while (true) {
    Frame frame;
    try {
      if (!read_frame(*conn->transport, frame, limits)) break;  // orderly goodbye
    } catch (const ProtocolError& e) {
      // A malformed frame poisons the stream (framing is lost), so the
      // connection is told why and dropped.
      {
        std::lock_guard<std::mutex> stats_lock(stats_mutex_);
        stats_.protocol_errors++;
      }
      send_error(*conn, 0, ErrorCode::kMalformedFrame, e.what());
      break;
    } catch (const WireError&) {
      break;  // connection died (reset / truncated / closed during stop)
    }
    {
      std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      stats_.frames_in++;
    }
    switch (frame.command) {
      case Command::kOffloadRequest: {
        Pending pending;
        pending.conn = conn;
        pending.request_id = frame.request_id;
        try {
          pending.payload = decode_offload_request(frame.payload);
        } catch (const WireError& e) {
          {
            std::lock_guard<std::mutex> stats_lock(stats_mutex_);
            stats_.protocol_errors++;
          }
          send_error(*conn, frame.request_id, ErrorCode::kMalformedFrame, e.what());
          continue;  // payload was framed correctly; the stream is still good
        }
        pending.instances = payload_instances(pending.payload);
        pending.arrived = std::chrono::steady_clock::now();
        {
          std::lock_guard<std::mutex> lock(mutex_);
          pending_.push_back(std::move(pending));
        }
        pending_cv_.notify_all();
        break;
      }
      case Command::kPing:
        send_frame(*conn, Frame{Command::kPong, frame.request_id, {}});
        break;
      case Command::kStatsRequest: {
        std::uint32_t flags = 0;
        try {
          flags = decode_stats_request(frame.payload);
        } catch (const WireError& e) {
          {
            std::lock_guard<std::mutex> stats_lock(stats_mutex_);
            stats_.protocol_errors++;
          }
          send_error(*conn, frame.request_id, ErrorCode::kMalformedFrame, e.what());
          continue;  // framing is intact; only this request was bad
        }
        if ((flags & kStatsFlagDiagSnapshot) != 0) {
          // The full process diagnostics registry (this server's tree
          // included) as one versioned JSON document.
          const std::string json = diag::DiagnosticRegistry::global().to_json();
          send_frame(*conn, Frame{Command::kStatsResponse, frame.request_id,
                                  std::vector<std::uint8_t>(json.begin(), json.end())});
        } else {
          const WireServerStats snapshot = stats();
          send_frame(*conn, Frame{Command::kStatsResponse, frame.request_id,
                                  encode_stats(snapshot.to_entries())});
        }
        break;
      }
      default:
        send_error(*conn, frame.request_id, ErrorCode::kUnknownCommand,
                   std::string("unexpected command: ") + command_name(frame.command));
        break;
    }
  }
  conn->transport->close();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    connections_.erase(std::remove(connections_.begin(), connections_.end(), conn),
                       connections_.end());
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    stats_.connections_active--;
  }
}

void WireServer::batch_loop() {
  const auto window = std::chrono::duration<double>(config_.batch_window_s);
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    pending_cv_.wait(lock, [&] { return stopping_ || !pending_.empty(); });
    if (stopping_) return;
    // Fire when enough instances are pending or the oldest request's
    // window has closed; otherwise sleep until one becomes true.
    while (!stopping_ && !pending_.empty()) {
      std::int64_t total = 0;
      for (const Pending& p : pending_) total += p.instances;
      const auto deadline =
          pending_.front().arrived + std::chrono::duration_cast<std::chrono::steady_clock::duration>(window);
      if (total < config_.max_batch_instances &&
          std::chrono::steady_clock::now() < deadline) {
        pending_cv_.wait_until(lock, deadline);
        continue;
      }
      // Pop the oldest request plus every batchable peer, capped at
      // max_batch_instances (the front request always goes, even alone
      // or oversized).
      std::vector<Pending> group;
      group.push_back(std::move(pending_.front()));
      pending_.pop_front();
      std::int64_t taken = group.front().instances;
      for (auto it = pending_.begin(); it != pending_.end();) {
        if (taken + it->instances <= config_.max_batch_instances &&
            batchable(group.front().payload, it->payload)) {
          taken += it->instances;
          group.push_back(std::move(*it));
          it = pending_.erase(it);
        } else {
          ++it;
        }
      }
      lock.unlock();
      serve_group(group);
      lock.lock();
    }
  }
}

void WireServer::serve_group(std::vector<Pending>& group) {
  // Coalesce the group into one backend call (single-request groups
  // pass through without a copy).
  std::vector<int> predictions;
  bool failed = false;
  std::string failure;
  try {
    if (group.size() == 1) {
      predictions = backend_->classify(group.front().payload);
    } else {
      runtime::OffloadPayload combined;
      std::vector<const Tensor*> images, features;
      for (const Pending& p : group) {
        if (!p.payload.images.empty()) images.push_back(&p.payload.images);
        if (!p.payload.features.empty()) features.push_back(&p.payload.features);
      }
      combined.images = concat_rows(images);
      combined.features = concat_rows(features);
      predictions = backend_->classify(combined);
    }
  } catch (const std::exception& e) {
    failed = true;
    failure = e.what();
  }
  std::int64_t total = 0;
  for (const Pending& p : group) total += p.instances;
  // An empty result is the backend's "unavailable" contract; a wrong
  // size would misroute labels across requests — both fail the group.
  if (!failed && static_cast<std::int64_t>(predictions.size()) != total) {
    failed = true;
    failure = predictions.empty() ? "backend unavailable" : "backend answered wrong count";
  }

  std::uint64_t distinct_conns = 0;
  std::uint64_t last_conn = 0;
  for (const Pending& p : group) {
    if (p.conn->id != last_conn) {
      distinct_conns++;
      last_conn = p.conn->id;
    }
  }
  // Counters commit BEFORE the replies go out: a client that has its
  // answer in hand must find the request already counted in any stats
  // snapshot it asks for next.
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.batches++;
    if (distinct_conns > 1) stats_.cross_session_batches++;
    const std::size_t bucket =
        std::min(group.size(), stats_.batch_size_histogram.size() - 1);
    stats_.batch_size_histogram[bucket]++;
    if (failed) {
      stats_.backend_failures++;
    } else {
      stats_.requests_served += group.size();
      stats_.instances_served += static_cast<std::uint64_t>(total);
    }
  }

  std::size_t offset = 0;
  for (Pending& p : group) {
    if (failed) {
      send_error(*p.conn, p.request_id, ErrorCode::kBackendFailed, failure);
      continue;
    }
    const std::vector<int> slice(predictions.begin() + static_cast<std::ptrdiff_t>(offset),
                                 predictions.begin() +
                                     static_cast<std::ptrdiff_t>(offset + p.instances));
    offset += static_cast<std::size_t>(p.instances);
    send_frame(*p.conn,
               Frame{Command::kOffloadResponse, p.request_id, encode_offload_response(slice)});
  }
}

void WireServer::send_frame(Connection& conn, const Frame& frame) {
  try {
    std::lock_guard<std::mutex> write_lock(conn.write_mutex);
    write_frame(*conn.transport, frame);
  } catch (const WireError&) {
    return;  // the client vanished; its reader thread handles teardown
  }
  std::lock_guard<std::mutex> lock(stats_mutex_);
  stats_.frames_out++;
}

void WireServer::send_error(Connection& conn, std::uint64_t request_id, ErrorCode code,
                            const std::string& message) {
  send_frame(conn, Frame{Command::kError, request_id, encode_error(code, message)});
}

WireServerStats WireServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void WireServer::stop() {
  std::vector<std::shared_ptr<Connection>> to_close;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
    to_close = connections_;
  }
  pending_cv_.notify_all();
  if (listener_) listener_->close();
  for (const auto& conn : to_close) conn->transport->close();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (batch_thread_.joinable()) batch_thread_.join();
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    readers.swap(readers_);
  }
  for (std::thread& t : readers) {
    if (t.joinable()) t.join();
  }
}

}  // namespace meanet::wire
