// Multi-tenant wire server: the in-process engine behind meanet_cloudd.
//
// Many client connections (edge sessions) are served concurrently; every
// connection's offload requests funnel into ONE shared pending queue,
// and a single batch worker coalesces whatever is waiting — across
// connections — into one backend classify() call per compatible group.
// That is the cloud-side dual of the paper's edge batching: a request
// that arrives while another session's offload is being gathered rides
// the same GPU-sized forward instead of paying its own. Responses are
// demultiplexed back to each request's own connection by request id.
//
// Batching policy: the batch worker fires when the pending instance
// count reaches `max_batch_instances` or the oldest pending request has
// waited `batch_window_s`, whichever comes first. Tests exploit the
// first edge: with max_batch_instances=2 and a wide window, two
// single-instance clients deterministically coalesce into one
// cross-session batch (no timing flake).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "diag/provider.h"
#include "diag/registry.h"
#include "runtime/offload_backend.h"
#include "wire/frame.h"
#include "wire/socket_transport.h"

namespace meanet::wire {

struct WireServerConfig {
  /// Pending instances that trigger an immediate batch.
  int max_batch_instances = 32;
  /// Max wait of the oldest pending request before its batch fires
  /// regardless of size.
  double batch_window_s = 0.002;
  /// Frame limits applied to every connection (timeout_s is ignored:
  /// reader threads block until their connection closes).
  FrameLimits limits;
};

/// Monotonic counters + batch-size histogram; a consistent snapshot is
/// returned by WireServer::stats() and served over kStatsRequest.
struct WireServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_active = 0;
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t requests_served = 0;
  std::uint64_t instances_served = 0;
  std::uint64_t batches = 0;
  /// Batches whose requests came from more than one connection.
  std::uint64_t cross_session_batches = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t backend_failures = 0;
  /// histogram[k] = batches that carried k requests (index clamped to
  /// the vector's top bucket).
  std::vector<std::uint64_t> batch_size_histogram = std::vector<std::uint64_t>(17, 0);

  StatsEntries to_entries() const;
};

class WireServer : public diag::DiagnosticProvider {
 public:
  /// `backend` answers the coalesced batches (typically a
  /// RawImageBackend over the daemon's CloudNode).
  WireServer(std::shared_ptr<runtime::OffloadBackend> backend, WireServerConfig config);
  ~WireServer();

  WireServer(const WireServer&) = delete;
  WireServer& operator=(const WireServer&) = delete;

  /// Binds a Unix-domain socket and starts the accept loop.
  void listen_unix(const std::string& path);

  /// Adopts an already-connected transport as one client connection
  /// (test seam: serve one end of make_pipe(), no sockets involved).
  void adopt(std::unique_ptr<Transport> conn);

  /// Stops accepting, closes every connection, joins all threads and
  /// flushes nothing — pending requests die with their connections.
  /// Idempotent; the destructor calls it.
  void stop();

  WireServerStats stats() const;
  const std::string& socket_path() const { return socket_path_; }

  // DiagnosticProvider: servers self-register as "wire_server/N" (N
  // counts up per process in construction order).
  std::string diag_name() const override { return diag_name_; }
  diag::Value diag_snapshot() const override;

 private:
  struct Connection {
    std::unique_ptr<Transport> transport;
    std::mutex write_mutex;  // reader thread (errors/pong) vs batch worker (responses)
    std::uint64_t id = 0;
  };
  struct Pending {
    std::shared_ptr<Connection> conn;
    std::uint64_t request_id = 0;
    runtime::OffloadPayload payload;
    std::int64_t instances = 0;
    std::chrono::steady_clock::time_point arrived;
  };

  void accept_loop();
  void reader_loop(std::shared_ptr<Connection> conn);
  void batch_loop();
  /// Serves one compatible group with a single backend call and demuxes
  /// the predictions back per request.
  void serve_group(std::vector<Pending>& group);
  void send_frame(Connection& conn, const Frame& frame);
  void send_error(Connection& conn, std::uint64_t request_id, ErrorCode code,
                  const std::string& message);

  std::shared_ptr<runtime::OffloadBackend> backend_;
  WireServerConfig config_;

  std::unique_ptr<UnixListener> listener_;
  std::string socket_path_;
  std::thread accept_thread_;

  mutable std::mutex mutex_;  // connections, pending queue, stopping flag
  std::condition_variable pending_cv_;
  std::vector<std::shared_ptr<Connection>> connections_;
  std::vector<std::thread> readers_;
  std::deque<Pending> pending_;
  bool stopping_ = false;
  std::uint64_t next_connection_id_ = 1;

  /// Every stats_ access — accept/reader paths, the batch thread's
  /// commit, stats() — takes THIS lock and only this lock, so a
  /// concurrent stats() poller never races a mutation and never
  /// contends with the batch/pending queue either (it used to share
  /// mutex_ with both). Lock order: stats_mutex_ is a leaf — taken
  /// with mutex_ held in spots, never the reverse.
  mutable std::mutex stats_mutex_;
  WireServerStats stats_;  // guarded by stats_mutex_

  std::thread batch_thread_;

  // Last members: unregistered first at destruction (after ~WireServer
  // ran stop(), which leaves the object snapshot-safe throughout).
  std::string diag_name_;
  diag::ScopedRegistration diag_registration_;
};

}  // namespace meanet::wire
