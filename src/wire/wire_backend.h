// OffloadBackend over the framed wire protocol: the first backend whose
// cloud is a different PROCESS (meanet_cloudd) rather than an in-memory
// sim node. Slots into the existing decorator stack unchanged —
// RetryingBackend(WireBackend) retries transient wire failures, the
// session's dispatcher/timeout machinery treats a thrown classify() as
// an unreachable cloud and keeps edge predictions.
//
// Virtual-clock note: wire I/O blocks the dispatcher thread outside any
// clock wait, so under a sim::VirtualClock the timeline simply stalls
// while a frame is in flight — wire RTT costs zero virtual time. The
// simulated SimulatedLink/SharedCell transfer model still prices the
// upload; the wire adds real-world delivery, not simulated airtime.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "runtime/offload_backend.h"
#include "wire/frame.h"

namespace meanet::wire {

struct WireBackendConfig {
  /// Unix-domain socket path of the meanet_cloudd to dial. Ignored when
  /// `transport_factory` is set.
  std::string socket_path;
  /// How long to keep retrying the initial connect (covers a daemon
  /// that is still starting up).
  double connect_timeout_s = 5.0;
  /// Bound on waiting for the response frame; kNoTimeout blocks, which
  /// under the session's own offload_timeout_s just means the worker
  /// gives up first and the late answer is dropped.
  double response_timeout_s = 30.0;
  /// Which payload representations to ship (at least one must be set).
  bool send_images = true;
  bool send_features = false;
  FrameLimits limits;
  /// Test seam: dial through this instead of a real socket (e.g. one
  /// end of make_pipe(), optionally wrapped in FaultInjectingTransport).
  /// Called once per (re)connect.
  std::function<std::unique_ptr<Transport>()> transport_factory;
};

class WireBackend : public runtime::OffloadBackend {
 public:
  explicit WireBackend(WireBackendConfig config);
  ~WireBackend() override;

  /// Ships one offload-request frame and waits for the matching
  /// response. Throws WireError on any transport/protocol/remote
  /// failure — the session then keeps edge predictions for the batch.
  /// A failure drops the connection; the next classify() redials, and a
  /// failure on a REUSED connection is retried once on a fresh one (the
  /// daemon may have restarted between offloads).
  std::vector<int> classify(const runtime::OffloadPayload& payload) override;

  bool needs_images() const override { return send_images_; }
  bool needs_features() const override { return send_features_; }
  std::int64_t payload_bytes(const Shape& image_shape,
                             const Shape& feature_shape) const override;
  std::string describe() const override;

  /// Fetches the daemon's counters over the wire (kStatsRequest) —
  /// connects on demand like classify().
  StatsEntries fetch_stats();

  /// Fetches the daemon process's full diagnostics registry snapshot
  /// (kStatsRequest with kStatsFlagDiagSnapshot) as a JSON document in
  /// schema diag::kSchemaVersion. Requires a daemon built with the
  /// flag — i.e. wire version 1 servers from this tree; connects on
  /// demand like classify().
  std::string fetch_diagnostics();

  /// Round-trips an empty kPing frame; throws WireError on failure.
  void ping();

  bool connected() const;

 private:
  std::unique_ptr<Transport>& ensure_connected();
  Frame roundtrip(Command command, const std::vector<std::uint8_t>& payload,
                  Command expected_reply);

  WireBackendConfig config_;
  bool send_images_;
  bool send_features_;

  // One in-flight exchange at a time: the session funnels every offload
  // through its single dispatcher thread already, but the backend must
  // not rely on that (fetch_stats/ping may race classify).
  mutable std::mutex mutex_;
  std::unique_ptr<Transport> conn_;   // guarded by mutex_
  std::uint64_t next_request_id_ = 1;  // guarded by mutex_
};

}  // namespace meanet::wire
