// Frame-level fault injection for the wire protocol, as a Transport
// decorator — the same composition pattern as the OffloadBackend
// decorators (runtime/backend_decorators.h), one layer down: protocol
// robustness (truncated frames, corrupted CRCs, mid-frame disconnects,
// slow links, pathologically split reads) is testable without real
// packet loss by wrapping either end of any transport.
//
//   auto faulty = std::make_unique<FaultInjectingTransport>(
//       connect_unix(path), FaultPlan{.corrupt_byte_at = 30});
//
// Byte positions count the bytes WRITTEN through this endpoint since
// construction, so a plan can target an exact frame offset (e.g. byte
// 30 of the first frame = inside its payload -> CRC mismatch at the
// receiver; byte 10 of a 24-byte header -> truncated header).
#pragma once

#include <cstdint>
#include <limits>
#include <memory>

#include "wire/transport.h"

namespace meanet::wire {

constexpr std::uint64_t kNoFault = std::numeric_limits<std::uint64_t>::max();

struct FaultPlan {
  /// Silently drop every written byte from this offset on, then close —
  /// the peer sees a cleanly truncated stream (EOF mid-frame).
  std::uint64_t truncate_after_bytes = kNoFault;
  /// XOR 0x5A into the written byte at exactly this offset — point it
  /// into a payload to corrupt the CRC, into the header to break magic.
  std::uint64_t corrupt_byte_at = kNoFault;
  /// Hard-close the transport (both directions) once this many bytes
  /// have been written — the mid-frame disconnect: unlike truncation,
  /// local reads die too.
  std::uint64_t disconnect_after_bytes = kNoFault;
  /// Cap every read at this many bytes (0 = uncapped): forces the
  /// reader to reassemble frames from tiny fragments.
  std::size_t max_read_chunk = 0;
  /// Wall-clock delay injected before every read that returns data.
  double read_delay_s = 0.0;
};

class FaultInjectingTransport final : public Transport {
 public:
  FaultInjectingTransport(std::unique_ptr<Transport> inner, FaultPlan plan);

  std::size_t read_some(std::uint8_t* buf, std::size_t max, double timeout_s) override;
  void write_all(const std::uint8_t* data, std::size_t size) override;
  void close() override;
  std::string describe() const override;

  /// Bytes actually forwarded to the inner transport so far.
  std::uint64_t bytes_written() const { return written_; }

 private:
  std::unique_ptr<Transport> inner_;
  FaultPlan plan_;
  std::uint64_t written_ = 0;  // offset of the next written byte
  bool truncated_ = false;
};

}  // namespace meanet::wire
