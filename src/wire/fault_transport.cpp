#include "wire/fault_transport.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

namespace meanet::wire {

FaultInjectingTransport::FaultInjectingTransport(std::unique_ptr<Transport> inner,
                                                 FaultPlan plan)
    : inner_(std::move(inner)), plan_(plan) {}

std::size_t FaultInjectingTransport::read_some(std::uint8_t* buf, std::size_t max,
                                               double timeout_s) {
  if (plan_.max_read_chunk > 0) max = std::min(max, plan_.max_read_chunk);
  const std::size_t n = inner_->read_some(buf, max, timeout_s);
  if (n > 0 && plan_.read_delay_s > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(plan_.read_delay_s));
  }
  return n;
}

void FaultInjectingTransport::write_all(const std::uint8_t* data, std::size_t size) {
  if (truncated_) throw TransportError("fault: stream truncated");
  std::vector<std::uint8_t> staged(data, data + size);
  const std::uint64_t start = written_;
  // Corruption: flip the planned byte if it falls inside this write.
  if (plan_.corrupt_byte_at != kNoFault && plan_.corrupt_byte_at >= start &&
      plan_.corrupt_byte_at < start + size) {
    staged[static_cast<std::size_t>(plan_.corrupt_byte_at - start)] ^= 0x5A;
  }
  // Truncation: forward only the bytes before the cut, then close so
  // the peer sees EOF mid-frame.
  std::size_t forward = size;
  bool cut = false;
  if (plan_.truncate_after_bytes != kNoFault && start + size > plan_.truncate_after_bytes) {
    forward = plan_.truncate_after_bytes > start
                  ? static_cast<std::size_t>(plan_.truncate_after_bytes - start)
                  : 0;
    cut = true;
  }
  // Disconnect: forward the bytes before the cut, then hard-close both
  // directions (reads die too, unlike truncation).
  bool drop = false;
  if (plan_.disconnect_after_bytes != kNoFault &&
      start + forward >= plan_.disconnect_after_bytes) {
    forward = plan_.disconnect_after_bytes > start
                  ? std::min<std::size_t>(
                        forward, static_cast<std::size_t>(plan_.disconnect_after_bytes - start))
                  : 0;
    drop = true;
  }
  if (forward > 0) inner_->write_all(staged.data(), forward);
  written_ += forward;
  if (cut) {
    truncated_ = true;
    inner_->close();
    return;  // the dropped tail is the fault, not an error on this side
  }
  if (drop) {
    inner_->close();
    throw TransportError("fault: disconnected mid-frame");
  }
}

void FaultInjectingTransport::close() { inner_->close(); }

std::string FaultInjectingTransport::describe() const {
  return "fault(" + inner_->describe() + ")";
}

}  // namespace meanet::wire
