// Byte-stream transport seam of the offload wire protocol (ROADMAP "a
// real wire" item).
//
// Everything above this interface — framing (wire/frame.h), the client
// backend (wire/wire_backend.h), the cloud server (wire/server.h) — is
// written against an ordered, reliable, bidirectional byte stream with
// explicit close and per-read timeouts. Two implementations ship:
//
//  * SocketTransport (wire/socket_transport.h): a real Unix-domain /
//    loopback socket — what meanet_cloudd serves on.
//  * PipeTransport (here, via make_pipe()): an in-memory cross-wired
//    byte pipe for deterministic protocol tests — no file descriptors,
//    no kernel buffering quirks, and reads drain at most what is
//    buffered, so partial-frame reassembly is exercised naturally.
//
// Fault injection wraps any of them (wire/fault_transport.h) the same
// way backend decorators wrap an OffloadBackend.
//
// Error model: readers distinguish *orderly* close (read_some returns
// 0 — the peer finished) from timeouts (TransportTimeout) and hard
// transport failures (TransportError). Frame-level parsing errors are
// ProtocolError (wire/frame.h); all four derive from WireError so "any
// wire failure" is one catch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>

namespace meanet::wire {

/// Root of every wire-layer failure (transport or protocol).
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

/// The byte stream broke: peer reset, write on a closed pipe, I/O error.
class TransportError : public WireError {
 public:
  explicit TransportError(const std::string& what) : WireError(what) {}
};

/// A read's time bound expired before any byte arrived.
class TransportTimeout : public WireError {
 public:
  explicit TransportTimeout(const std::string& what) : WireError(what) {}
};

/// No bound on a read — block until bytes, close, or failure.
constexpr double kNoTimeout = std::numeric_limits<double>::infinity();

/// An ordered, reliable, bidirectional byte stream.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Blocks until at least one byte is available, then reads up to
  /// `max` bytes into `buf` and returns how many. Returns 0 on orderly
  /// close by the peer (EOF). Throws TransportTimeout when `timeout_s`
  /// elapses first (kNoTimeout = no bound) and TransportError on a hard
  /// failure. Callers needing exactly N bytes loop (see read_exact).
  virtual std::size_t read_some(std::uint8_t* buf, std::size_t max,
                                double timeout_s = kNoTimeout) = 0;

  /// Writes all `size` bytes or throws TransportError (a byte stream
  /// that cannot accept the rest of a frame is broken — there is no
  /// partial-success contract on the write side).
  virtual void write_all(const std::uint8_t* data, std::size_t size) = 0;

  /// Closes both directions: the peer's reads see EOF, local blocked
  /// reads wake and see EOF, subsequent writes throw. Idempotent and
  /// safe to call from another thread (that is how a server unblocks a
  /// connection's reader).
  virtual void close() = 0;

  /// Human-readable endpoint description for logs.
  virtual std::string describe() const = 0;
};

/// Reads exactly `size` bytes, looping over short reads (the
/// partial-frame reassembly primitive). Throws TransportError when the
/// stream closes mid-way with `context` in the message, TransportTimeout
/// when the deadline hits. Returns false — without consuming anything —
/// only when `eof_ok` is true and the stream is cleanly closed before
/// the FIRST byte (the idle point between frames).
bool read_exact(Transport& transport, std::uint8_t* buf, std::size_t size, double timeout_s,
                const char* context, bool eof_ok = false);

/// Two cross-wired in-memory endpoints: bytes written to `first` are
/// read from `second` and vice versa. Deterministic (no kernel
/// buffering), thread-safe, timeout-capable — the unit-test transport.
struct PipePair {
  std::unique_ptr<Transport> first;
  std::unique_ptr<Transport> second;
};
PipePair make_pipe(std::size_t capacity_bytes = 1 << 20);

}  // namespace meanet::wire
