#include "wire/frame.h"

#include <cstring>

#include "nn/serialize.h"
#include "wire/crc32.h"

namespace meanet::wire {

namespace {

constexpr std::uint32_t kMaxErrorMessage = 1u << 12;
constexpr std::uint32_t kMaxStatsEntries = 1u << 10;
constexpr std::uint32_t kMaxStatsName = 1u << 8;
constexpr std::uint32_t kFlagImages = 1u << 0;
constexpr std::uint32_t kFlagFeatures = 1u << 1;

template <typename T>
void append_pod(std::vector<std::uint8_t>& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>, "pod appends only");
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(&value);
  out.insert(out.end(), bytes, bytes + sizeof(T));
}

/// Payload decoding shares the serialize layer's bounds-checked cursor;
/// its truncation errors are re-raised as ProtocolError so a malformed
/// frame never masquerades as a transport failure.
template <typename Fn>
auto decode_guarded(const char* what, Fn&& fn) {
  try {
    return fn();
  } catch (const WireError&) {
    throw;
  } catch (const std::exception& e) {
    throw ProtocolError(std::string(what) + ": " + e.what());
  }
}

}  // namespace

const char* command_name(Command command) {
  switch (command) {
    case Command::kOffloadRequest:
      return "offload-request";
    case Command::kOffloadResponse:
      return "offload-response";
    case Command::kError:
      return "error";
    case Command::kStatsRequest:
      return "stats-request";
    case Command::kStatsResponse:
      return "stats-response";
    case Command::kPing:
      return "ping";
    case Command::kPong:
      return "pong";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeaderBytes + frame.payload.size());
  out.insert(out.end(), kMagic, kMagic + sizeof(kMagic));
  append_pod(out, kWireVersion);
  append_pod(out, static_cast<std::uint16_t>(frame.command));
  append_pod(out, frame.request_id);
  append_pod(out, static_cast<std::uint32_t>(frame.payload.size()));
  append_pod(out, crc32(frame.payload.data(), frame.payload.size()));
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  return out;
}

void write_frame(Transport& transport, const Frame& frame) {
  const std::vector<std::uint8_t> bytes = encode_frame(frame);
  transport.write_all(bytes.data(), bytes.size());
}

bool read_frame(Transport& transport, Frame& out, const FrameLimits& limits) {
  std::uint8_t header[kFrameHeaderBytes];
  // Orderly close is only legal between frames: a header that stops
  // short, or a payload cut off mid-way, is a truncated frame and
  // surfaces as TransportError from read_exact.
  if (!read_exact(transport, header, sizeof(header), limits.timeout_s, "read_frame header",
                  /*eof_ok=*/true)) {
    return false;
  }
  nn::ByteReader reader(header, sizeof(header));
  std::uint8_t magic[4];
  reader.read_bytes(magic, sizeof(magic));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw ProtocolError("read_frame: bad magic (not a MWIR stream)");
  }
  const auto version = reader.read<std::uint16_t>();
  if (version != kWireVersion) {
    throw ProtocolError("read_frame: unsupported protocol version " + std::to_string(version) +
                        " (expected " + std::to_string(kWireVersion) + ")");
  }
  const auto command = reader.read<std::uint16_t>();
  const auto request_id = reader.read<std::uint64_t>();
  const auto payload_size = reader.read<std::uint32_t>();
  const auto expected_crc = reader.read<std::uint32_t>();
  if (payload_size > limits.max_payload_bytes) {
    throw ProtocolError("read_frame: payload of " + std::to_string(payload_size) +
                        " bytes exceeds the " + std::to_string(limits.max_payload_bytes) +
                        "-byte limit");
  }
  std::vector<std::uint8_t> payload(payload_size);
  if (payload_size > 0) {
    read_exact(transport, payload.data(), payload.size(), limits.timeout_s,
               "read_frame payload");
  }
  const std::uint32_t actual_crc = crc32(payload.data(), payload.size());
  if (actual_crc != expected_crc) {
    throw ProtocolError("read_frame: payload CRC mismatch (frame corrupted in transit)");
  }
  out.command = static_cast<Command>(command);
  out.request_id = request_id;
  out.payload = std::move(payload);
  return true;
}

std::vector<std::uint8_t> encode_offload_request(const runtime::OffloadPayload& payload) {
  std::vector<std::uint8_t> out;
  std::uint32_t flags = 0;
  if (!payload.images.empty()) flags |= kFlagImages;
  if (!payload.features.empty()) flags |= kFlagFeatures;
  append_pod(out, flags);
  if (!payload.images.empty()) nn::append_tensor(out, payload.images);
  if (!payload.features.empty()) nn::append_tensor(out, payload.features);
  return out;
}

runtime::OffloadPayload decode_offload_request(const std::vector<std::uint8_t>& bytes) {
  return decode_guarded("decode_offload_request", [&] {
    nn::ByteReader reader(bytes.data(), bytes.size());
    const auto flags = reader.read<std::uint32_t>();
    if ((flags & ~(kFlagImages | kFlagFeatures)) != 0) {
      throw ProtocolError("decode_offload_request: unknown payload flags");
    }
    runtime::OffloadPayload payload;
    if (flags & kFlagImages) payload.images = nn::read_tensor(reader);
    if (flags & kFlagFeatures) payload.features = nn::read_tensor(reader);
    if (!reader.done()) {
      throw ProtocolError("decode_offload_request: trailing bytes after tensors");
    }
    if (payload.images.empty() && payload.features.empty()) {
      throw ProtocolError("decode_offload_request: request carries no tensors");
    }
    // Offload batches are NCHW rows ([K,C,H,W] / [K,c,h,w]); anything
    // else would crash the server's row bookkeeping downstream.
    if (!payload.images.empty() && payload.images.shape().rank() != 4) {
      throw ProtocolError("decode_offload_request: image tensor is not rank-4");
    }
    if (!payload.features.empty() && payload.features.shape().rank() != 4) {
      throw ProtocolError("decode_offload_request: feature tensor is not rank-4");
    }
    if (!payload.images.empty() && !payload.features.empty() &&
        payload.images.shape().dim(0) != payload.features.shape().dim(0)) {
      throw ProtocolError("decode_offload_request: image/feature row counts disagree");
    }
    return payload;
  });
}

std::vector<std::uint8_t> encode_offload_response(const std::vector<int>& predictions) {
  std::vector<std::uint8_t> out;
  append_pod(out, static_cast<std::uint32_t>(predictions.size()));
  for (int p : predictions) append_pod(out, static_cast<std::int32_t>(p));
  return out;
}

std::vector<int> decode_offload_response(const std::vector<std::uint8_t>& bytes) {
  return decode_guarded("decode_offload_response", [&] {
    nn::ByteReader reader(bytes.data(), bytes.size());
    const auto count = reader.read<std::uint32_t>();
    if (static_cast<std::size_t>(count) * 4 != reader.remaining()) {
      throw ProtocolError("decode_offload_response: count does not match payload size");
    }
    std::vector<int> predictions;
    predictions.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      predictions.push_back(reader.read<std::int32_t>());
    }
    return predictions;
  });
}

std::vector<std::uint8_t> encode_error(ErrorCode code, const std::string& message) {
  std::vector<std::uint8_t> out;
  const auto len = static_cast<std::uint32_t>(
      std::min<std::size_t>(message.size(), kMaxErrorMessage));
  append_pod(out, static_cast<std::uint32_t>(code));
  append_pod(out, len);
  out.insert(out.end(), message.begin(), message.begin() + len);
  return out;
}

std::pair<ErrorCode, std::string> decode_error(const std::vector<std::uint8_t>& bytes) {
  return decode_guarded("decode_error", [&] {
    nn::ByteReader reader(bytes.data(), bytes.size());
    const auto code = reader.read<std::uint32_t>();
    const auto len = reader.read<std::uint32_t>();
    if (len > kMaxErrorMessage || len > reader.remaining()) {
      throw ProtocolError("decode_error: hostile message length");
    }
    std::string message(len, '\0');
    reader.read_bytes(message.data(), len);
    return std::make_pair(static_cast<ErrorCode>(code), std::move(message));
  });
}

std::vector<std::uint8_t> encode_stats(const StatsEntries& entries) {
  std::vector<std::uint8_t> out;
  append_pod(out, static_cast<std::uint32_t>(entries.size()));
  for (const auto& [name, value] : entries) {
    const auto len =
        static_cast<std::uint32_t>(std::min<std::size_t>(name.size(), kMaxStatsName));
    append_pod(out, len);
    out.insert(out.end(), name.begin(), name.begin() + len);
    append_pod(out, value);
  }
  return out;
}

StatsEntries decode_stats(const std::vector<std::uint8_t>& bytes) {
  return decode_guarded("decode_stats", [&] {
    nn::ByteReader reader(bytes.data(), bytes.size());
    const auto count = reader.read<std::uint32_t>();
    if (count > kMaxStatsEntries) throw ProtocolError("decode_stats: hostile entry count");
    StatsEntries entries;
    entries.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      const auto len = reader.read<std::uint32_t>();
      if (len > kMaxStatsName || len > reader.remaining()) {
        throw ProtocolError("decode_stats: hostile name length");
      }
      std::string name(len, '\0');
      reader.read_bytes(name.data(), len);
      const auto value = reader.read<std::uint64_t>();
      entries.emplace_back(std::move(name), value);
    }
    return entries;
  });
}

std::vector<std::uint8_t> encode_stats_request(std::uint32_t flags) {
  std::vector<std::uint8_t> out;
  if (flags != 0) append_pod(out, flags);
  return out;
}

std::uint32_t decode_stats_request(const std::vector<std::uint8_t>& bytes) {
  if (bytes.empty()) return 0;  // pre-flag clients send no payload
  return decode_guarded("decode_stats_request", [&]() -> std::uint32_t {
    nn::ByteReader reader(bytes.data(), bytes.size());
    const auto flags = reader.read<std::uint32_t>();
    if (!reader.done()) throw ProtocolError("decode_stats_request: trailing bytes");
    return flags;
  });
}

std::int64_t request_wire_bytes(const Shape& image_shape, const Shape& feature_shape,
                                bool images, bool features) {
  std::int64_t bytes = static_cast<std::int64_t>(kFrameHeaderBytes) + 4;  // header + flags
  if (images) bytes += nn::tensor_wire_bytes(image_shape);
  if (features) bytes += nn::tensor_wire_bytes(feature_shape);
  return bytes;
}

}  // namespace meanet::wire
