#include "wire/socket_transport.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace meanet::wire {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw TransportError(what + ": " + std::strerror(errno));
}

int make_unix_socket() {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_UNIX)");
  return fd;
}

sockaddr_un make_unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw TransportError("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

/// poll() for readability; true = ready, false = timeout.
bool wait_readable(int fd, double timeout_s) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLIN;
  int timeout_ms = -1;
  if (timeout_s != kNoTimeout) {
    timeout_ms = timeout_s <= 0.0 ? 0 : static_cast<int>(timeout_s * 1000.0) + 1;
  }
  while (true) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno == EINTR) continue;
    throw_errno("poll");
  }
}

}  // namespace

SocketTransport::SocketTransport(int fd, std::string peer)
    : fd_(fd), peer_(std::move(peer)) {}

SocketTransport::~SocketTransport() {
  close();
  ::close(fd_);
}

std::size_t SocketTransport::read_some(std::uint8_t* buf, std::size_t max, double timeout_s) {
  while (true) {
    if (closed_.load()) return 0;  // shutdown() makes recv return 0 anyway
    if (!wait_readable(fd_, timeout_s)) {
      throw TransportTimeout("socket read timed out after " + std::to_string(timeout_s) +
                             "s (" + peer_ + ")");
    }
    const ssize_t n = ::recv(fd_, buf, max, 0);
    if (n > 0) return static_cast<std::size_t>(n);
    if (n == 0) return 0;  // orderly EOF
    if (errno == EINTR) continue;
    if (errno == ECONNRESET) return 0;  // peer vanished: treat as EOF, framing decides
    throw_errno("recv(" + peer_ + ")");
  }
}

void SocketTransport::write_all(const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    if (closed_.load()) throw TransportError("write on closed socket (" + peer_ + ")");
    // MSG_NOSIGNAL: a dead peer yields EPIPE, not a process-killing SIGPIPE.
    const ssize_t n = ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n >= 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    throw_errno("send(" + peer_ + ")");
  }
}

void SocketTransport::close() {
  if (closed_.exchange(true)) return;
  // shutdown (not close) so a reader blocked in poll() wakes with EOF
  // while the fd number stays valid until the destructor reclaims it.
  ::shutdown(fd_, SHUT_RDWR);
}

std::unique_ptr<Transport> connect_unix(const std::string& path, double timeout_s) {
  const sockaddr_un addr = make_unix_addr(path);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::duration<double>(timeout_s);
  while (true) {
    const int fd = make_unix_socket();
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0) {
      return std::make_unique<SocketTransport>(fd, "unix:" + path);
    }
    const int err = errno;
    ::close(fd);
    // ENOENT / ECONNREFUSED: the daemon has not bound the path yet.
    if ((err == ENOENT || err == ECONNREFUSED) &&
        std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      continue;
    }
    throw TransportError("connect_unix(" + path + "): " + std::strerror(err));
  }
}

UnixListener::UnixListener(const std::string& path) : path_(path) {
  const sockaddr_un addr = make_unix_addr(path);
  ::unlink(path.c_str());  // a stale path from a crashed run blocks bind
  fd_ = make_unix_socket();
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd_);
    throw TransportError("bind(" + path + "): " + std::strerror(err));
  }
  if (::listen(fd_, 64) != 0) {
    const int err = errno;
    ::close(fd_);
    throw TransportError("listen(" + path + "): " + std::strerror(err));
  }
}

UnixListener::~UnixListener() {
  close();
  ::close(fd_);
  ::unlink(path_.c_str());
}

std::unique_ptr<Transport> UnixListener::accept(double timeout_s) {
  while (true) {
    if (closed_.load()) return nullptr;
    if (!wait_readable(fd_, timeout_s)) return nullptr;
    if (closed_.load()) return nullptr;  // woken by close()'s shutdown
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client >= 0) {
      return std::make_unique<SocketTransport>(client, "unix-peer:" + path_);
    }
    if (errno == EINTR || errno == ECONNABORTED) continue;
    if (closed_.load()) return nullptr;
    throw_errno("accept(" + path_ + ")");
  }
}

void UnixListener::close() {
  if (closed_.exchange(true)) return;
  ::shutdown(fd_, SHUT_RDWR);
}

}  // namespace meanet::wire
