#include "wire/transport.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>

namespace meanet::wire {

bool read_exact(Transport& transport, std::uint8_t* buf, std::size_t size, double timeout_s,
                const char* context, bool eof_ok) {
  using WallClock = std::chrono::steady_clock;
  const bool bounded = timeout_s != kNoTimeout;
  const WallClock::time_point deadline =
      bounded ? WallClock::now() + std::chrono::duration_cast<WallClock::duration>(
                                       std::chrono::duration<double>(std::max(0.0, timeout_s)))
              : WallClock::time_point{};
  std::size_t got = 0;
  while (got < size) {
    double remaining_s = kNoTimeout;
    if (bounded) {
      remaining_s = std::chrono::duration<double>(deadline - WallClock::now()).count();
      if (remaining_s <= 0.0) {
        throw TransportTimeout(std::string(context) + ": timed out after " +
                               std::to_string(got) + "/" + std::to_string(size) + " bytes");
      }
    }
    const std::size_t n = transport.read_some(buf + got, size - got, remaining_s);
    if (n == 0) {
      if (got == 0 && eof_ok) return false;
      throw TransportError(std::string(context) + ": stream closed after " +
                           std::to_string(got) + "/" + std::to_string(size) + " bytes");
    }
    got += n;
  }
  return true;
}

namespace {

/// One direction of a pipe: a bounded byte queue with close semantics.
struct PipeChannel {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<std::uint8_t> bytes;
  std::size_t capacity;
  bool closed = false;

  explicit PipeChannel(std::size_t cap) : capacity(std::max<std::size_t>(1, cap)) {}

  std::size_t read_some(std::uint8_t* buf, std::size_t max, double timeout_s) {
    std::unique_lock<std::mutex> lock(mutex);
    auto ready = [this] { return !bytes.empty() || closed; };
    if (timeout_s == kNoTimeout) {
      cv.wait(lock, ready);
    } else if (!cv.wait_for(lock, std::chrono::duration<double>(std::max(0.0, timeout_s)),
                            ready)) {
      throw TransportTimeout("pipe read timed out");
    }
    if (bytes.empty()) return 0;  // closed and drained: orderly EOF
    const std::size_t n = std::min(max, bytes.size());
    std::copy_n(bytes.begin(), n, buf);
    bytes.erase(bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(n));
    cv.notify_all();  // wake writers waiting for capacity
    return n;
  }

  void write_all(const std::uint8_t* data, std::size_t size) {
    std::size_t sent = 0;
    while (sent < size) {
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait(lock, [this] { return bytes.size() < capacity || closed; });
      if (closed) throw TransportError("pipe write on closed channel");
      const std::size_t room = capacity - bytes.size();
      const std::size_t n = std::min(room, size - sent);
      bytes.insert(bytes.end(), data + sent, data + sent + n);
      sent += n;
      cv.notify_all();
    }
  }

  void close() {
    std::lock_guard<std::mutex> lock(mutex);
    closed = true;
    cv.notify_all();
  }
};

/// One endpoint: reads from `in`, writes to `out`. close() closes both
/// directions (the peer sees EOF once the buffered bytes drain).
class PipeTransport final : public Transport {
 public:
  PipeTransport(std::shared_ptr<PipeChannel> in, std::shared_ptr<PipeChannel> out)
      : in_(std::move(in)), out_(std::move(out)) {}
  ~PipeTransport() override { close(); }

  std::size_t read_some(std::uint8_t* buf, std::size_t max, double timeout_s) override {
    return in_->read_some(buf, max, timeout_s);
  }
  void write_all(const std::uint8_t* data, std::size_t size) override {
    out_->write_all(data, size);
  }
  void close() override {
    in_->close();
    out_->close();
  }
  std::string describe() const override { return "pipe"; }

 private:
  std::shared_ptr<PipeChannel> in_;
  std::shared_ptr<PipeChannel> out_;
};

}  // namespace

PipePair make_pipe(std::size_t capacity_bytes) {
  auto a_to_b = std::make_shared<PipeChannel>(capacity_bytes);
  auto b_to_a = std::make_shared<PipeChannel>(capacity_bytes);
  PipePair pair;
  pair.first = std::make_unique<PipeTransport>(b_to_a, a_to_b);
  pair.second = std::make_unique<PipeTransport>(a_to_b, b_to_a);
  return pair;
}

}  // namespace meanet::wire
