// Real-socket Transport: Unix-domain stream sockets, the wire
// meanet_cloudd serves on and WireBackend dials. POSIX-only (the CI
// targets are Linux); everything above the Transport seam stays
// portable and deterministic via the in-memory pipe.
#pragma once

#include <atomic>
#include <memory>
#include <string>

#include "wire/transport.h"

namespace meanet::wire {

/// A connected stream-socket endpoint. Reads poll() with the caller's
/// timeout; close() shuts the socket down (waking a blocked peer or a
/// local reader) and is safe to call from another thread.
class SocketTransport final : public Transport {
 public:
  /// Takes ownership of a connected socket fd.
  explicit SocketTransport(int fd, std::string peer = "socket");
  ~SocketTransport() override;

  std::size_t read_some(std::uint8_t* buf, std::size_t max, double timeout_s) override;
  void write_all(const std::uint8_t* data, std::size_t size) override;
  void close() override;
  std::string describe() const override { return peer_; }

 private:
  int fd_;
  std::atomic<bool> closed_{false};
  std::string peer_;
};

/// Connects to a Unix-domain socket, retrying ECONNREFUSED / missing
/// path until `timeout_s` (covers the window while a just-spawned
/// meanet_cloudd is still binding). Throws TransportError on failure.
std::unique_ptr<Transport> connect_unix(const std::string& path, double timeout_s = 5.0);

/// Bound + listening Unix-domain server socket. Unlinks a stale path on
/// bind and the live one on destruction.
class UnixListener {
 public:
  explicit UnixListener(const std::string& path);
  ~UnixListener();

  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;

  /// Accepts one connection; nullptr when `timeout_s` elapses or the
  /// listener was closed (poll the result in the accept loop).
  std::unique_ptr<Transport> accept(double timeout_s);

  /// Wakes a blocked accept() and makes further accepts return nullptr.
  void close();

  const std::string& path() const { return path_; }

 private:
  int fd_ = -1;
  std::string path_;
  std::atomic<bool> closed_{false};
};

}  // namespace meanet::wire
