// Confusion matrix and the per-class precision / FDR statistics the
// paper uses to define class-wise complexity (Figs. 2 and 3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace meanet::metrics {

class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(int num_classes);

  void add(int true_label, int predicted_label);

  int num_classes() const { return num_classes_; }
  std::int64_t total() const { return total_; }
  std::int64_t count(int true_label, int predicted_label) const;

  /// Fraction of all instances on the diagonal.
  double accuracy() const;

  /// TP / (TP + FP) for predictions of `cls`; 1.0 when the class was
  /// never predicted (no positives -> no false discoveries).
  double precision(int cls) const;

  /// TP / (TP + FN) for true instances of `cls`; 0.0 when absent.
  double recall(int cls) const;

  /// False discovery rate = 1 - precision (the paper's class-wise
  /// complexity measure, Fig. 3).
  double false_discovery_rate(int cls) const { return 1.0 - precision(cls); }

  std::vector<double> per_class_precision() const;

  /// Classes sorted by ascending precision (hardest first) — the paper's
  /// hard-class ranking (Alg. 1 step 2).
  std::vector<int> classes_by_ascending_precision() const;

  std::string to_string() const;

 private:
  std::int64_t index(int t, int p) const;
  int num_classes_;
  std::vector<std::int64_t> counts_;  // row: true, col: predicted
  std::int64_t total_ = 0;
};

}  // namespace meanet::metrics
