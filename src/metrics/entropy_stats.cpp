#include "metrics/entropy_stats.h"

namespace meanet::metrics {

void EntropyStats::add(float entropy, bool correct) {
  if (correct) {
    correct_.push_back(entropy);
    correct_sum_ += entropy;
    ++correct_count_;
  } else {
    wrong_.push_back(entropy);
    wrong_sum_ += entropy;
    ++wrong_count_;
  }
}

double EntropyStats::mu_correct() const {
  return correct_count_ == 0 ? 0.0 : correct_sum_ / static_cast<double>(correct_count_);
}

double EntropyStats::mu_wrong() const {
  return wrong_count_ == 0 ? 0.0 : wrong_sum_ / static_cast<double>(wrong_count_);
}

}  // namespace meanet::metrics
