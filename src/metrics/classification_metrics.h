// Scalar classification metrics shared by trainers and benches.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace meanet::metrics {

/// Fraction of positions where predictions[i] == labels[i].
double accuracy(const std::vector<int>& predictions, const std::vector<int>& labels);

/// Accuracy restricted to instances whose label is in `classes`.
double accuracy_on_classes(const std::vector<int>& predictions, const std::vector<int>& labels,
                           const std::vector<int>& classes, int num_classes);

/// The paper's Fig. 5 taxonomy of main-block errors given an easy/hard
/// class partition.
struct ErrorTypeBreakdown {
  std::int64_t easy_as_hard = 0;    // type I
  std::int64_t hard_as_easy = 0;    // type II
  std::int64_t easy_as_easy = 0;    // type III (wrong easy class)
  std::int64_t hard_as_hard = 0;    // type IV (wrong hard class)
  std::int64_t total_errors() const {
    return easy_as_hard + hard_as_easy + easy_as_easy + hard_as_hard;
  }
  double fraction(std::int64_t part) const {
    const std::int64_t t = total_errors();
    return t == 0 ? 0.0 : static_cast<double>(part) / static_cast<double>(t);
  }
};

/// Classifies each misprediction into the four types. `is_hard[c]` marks
/// hard classes.
ErrorTypeBreakdown error_types(const std::vector<int>& predictions,
                               const std::vector<int>& labels, const std::vector<bool>& is_hard);

/// Top-k accuracy from a [batch, classes] probability/logit matrix:
/// fraction of rows whose true label is among the k largest entries.
double top_k_accuracy(const Tensor& scores, const std::vector<int>& labels, int k);

}  // namespace meanet::metrics
