#include "metrics/confusion_matrix.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "util/string_util.h"

namespace meanet::metrics {

ConfusionMatrix::ConfusionMatrix(int num_classes)
    : num_classes_(num_classes),
      counts_(static_cast<std::size_t>(num_classes) * static_cast<std::size_t>(num_classes), 0) {
  if (num_classes <= 0) throw std::invalid_argument("ConfusionMatrix: num_classes");
}

std::int64_t ConfusionMatrix::index(int t, int p) const {
  if (t < 0 || t >= num_classes_ || p < 0 || p >= num_classes_) {
    throw std::out_of_range("ConfusionMatrix: label out of range");
  }
  return static_cast<std::int64_t>(t) * num_classes_ + p;
}

void ConfusionMatrix::add(int true_label, int predicted_label) {
  ++counts_[static_cast<std::size_t>(index(true_label, predicted_label))];
  ++total_;
}

std::int64_t ConfusionMatrix::count(int true_label, int predicted_label) const {
  return counts_[static_cast<std::size_t>(index(true_label, predicted_label))];
}

double ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 0.0;
  std::int64_t correct = 0;
  for (int c = 0; c < num_classes_; ++c) correct += count(c, c);
  return static_cast<double>(correct) / static_cast<double>(total_);
}

double ConfusionMatrix::precision(int cls) const {
  std::int64_t predicted = 0;
  for (int t = 0; t < num_classes_; ++t) predicted += count(t, cls);
  if (predicted == 0) return 1.0;
  return static_cast<double>(count(cls, cls)) / static_cast<double>(predicted);
}

double ConfusionMatrix::recall(int cls) const {
  std::int64_t actual = 0;
  for (int p = 0; p < num_classes_; ++p) actual += count(cls, p);
  if (actual == 0) return 0.0;
  return static_cast<double>(count(cls, cls)) / static_cast<double>(actual);
}

std::vector<double> ConfusionMatrix::per_class_precision() const {
  std::vector<double> out(static_cast<std::size_t>(num_classes_));
  for (int c = 0; c < num_classes_; ++c) out[static_cast<std::size_t>(c)] = precision(c);
  return out;
}

std::vector<int> ConfusionMatrix::classes_by_ascending_precision() const {
  std::vector<int> order(static_cast<std::size_t>(num_classes_));
  std::iota(order.begin(), order.end(), 0);
  const std::vector<double> prec = per_class_precision();
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return prec[static_cast<std::size_t>(a)] < prec[static_cast<std::size_t>(b)];
  });
  return order;
}

std::string ConfusionMatrix::to_string() const {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> header{"true\\pred"};
  for (int p = 0; p < num_classes_; ++p) header.push_back(std::to_string(p));
  header.push_back("prec%");
  rows.push_back(header);
  for (int t = 0; t < num_classes_; ++t) {
    std::vector<std::string> row{std::to_string(t)};
    for (int p = 0; p < num_classes_; ++p) row.push_back(std::to_string(count(t, p)));
    row.push_back(util::format_double(100.0 * precision(t), 1));
    rows.push_back(row);
  }
  return util::render_table(rows);
}

}  // namespace meanet::metrics
