// Entropy statistics of main-block predictions (paper §III-C):
// correct predictions cluster near zero entropy, wrong predictions near
// a higher mean; the offload threshold is chosen in (mu_correct,
// mu_wrong).
#pragma once

#include <cstdint>
#include <vector>

namespace meanet::metrics {

class EntropyStats {
 public:
  void add(float entropy, bool correct);

  std::int64_t num_correct() const { return correct_count_; }
  std::int64_t num_wrong() const { return wrong_count_; }

  /// Mean entropy of correct predictions (0 when none observed).
  double mu_correct() const;
  /// Mean entropy of wrong predictions (0 when none observed).
  double mu_wrong() const;

  /// The paper's recommended threshold interval (mu_correct, mu_wrong).
  std::pair<double, double> threshold_range() const { return {mu_correct(), mu_wrong()}; }

  /// Midpoint of the threshold range — a reasonable default.
  double default_threshold() const { return 0.5 * (mu_correct() + mu_wrong()); }

  /// All recorded entropies (for histogram-style reporting).
  const std::vector<float>& correct_entropies() const { return correct_; }
  const std::vector<float>& wrong_entropies() const { return wrong_; }

 private:
  std::vector<float> correct_;
  std::vector<float> wrong_;
  double correct_sum_ = 0.0;
  double wrong_sum_ = 0.0;
  std::int64_t correct_count_ = 0;
  std::int64_t wrong_count_ = 0;
};

}  // namespace meanet::metrics
