#include "metrics/classification_metrics.h"

#include <algorithm>
#include <stdexcept>

namespace meanet::metrics {

double accuracy(const std::vector<int>& predictions, const std::vector<int>& labels) {
  if (predictions.size() != labels.size()) {
    throw std::invalid_argument("accuracy: size mismatch");
  }
  if (predictions.empty()) return 0.0;
  std::int64_t correct = 0;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    if (predictions[i] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(predictions.size());
}

double accuracy_on_classes(const std::vector<int>& predictions, const std::vector<int>& labels,
                           const std::vector<int>& classes, int num_classes) {
  if (predictions.size() != labels.size()) {
    throw std::invalid_argument("accuracy_on_classes: size mismatch");
  }
  std::vector<bool> keep(static_cast<std::size_t>(num_classes), false);
  for (int c : classes) {
    if (c < 0 || c >= num_classes) throw std::out_of_range("accuracy_on_classes: bad class");
    keep[static_cast<std::size_t>(c)] = true;
  }
  std::int64_t correct = 0, total = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (!keep[static_cast<std::size_t>(labels[i])]) continue;
    ++total;
    if (predictions[i] == labels[i]) ++correct;
  }
  return total == 0 ? 0.0 : static_cast<double>(correct) / static_cast<double>(total);
}

ErrorTypeBreakdown error_types(const std::vector<int>& predictions,
                               const std::vector<int>& labels, const std::vector<bool>& is_hard) {
  if (predictions.size() != labels.size()) {
    throw std::invalid_argument("error_types: size mismatch");
  }
  ErrorTypeBreakdown out;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const int y = labels[i], p = predictions[i];
    if (y == p) continue;
    const bool y_hard = is_hard.at(static_cast<std::size_t>(y));
    const bool p_hard = is_hard.at(static_cast<std::size_t>(p));
    if (!y_hard && p_hard) {
      ++out.easy_as_hard;
    } else if (y_hard && !p_hard) {
      ++out.hard_as_easy;
    } else if (!y_hard && !p_hard) {
      ++out.easy_as_easy;
    } else {
      ++out.hard_as_hard;
    }
  }
  return out;
}

double top_k_accuracy(const Tensor& scores, const std::vector<int>& labels, int k) {
  if (scores.shape().rank() != 2) {
    throw std::invalid_argument("top_k_accuracy: expected [batch, classes]");
  }
  const int batch = scores.shape().dim(0), classes = scores.shape().dim(1);
  if (static_cast<int>(labels.size()) != batch) {
    throw std::invalid_argument("top_k_accuracy: label count mismatch");
  }
  if (k <= 0 || k > classes) throw std::invalid_argument("top_k_accuracy: bad k");
  if (batch == 0) return 0.0;
  std::int64_t correct = 0;
  for (int n = 0; n < batch; ++n) {
    const float* row = scores.data() + static_cast<std::int64_t>(n) * classes;
    const int y = labels[static_cast<std::size_t>(n)];
    if (y < 0 || y >= classes) throw std::out_of_range("top_k_accuracy: label out of range");
    // Count entries strictly greater than the label's score; the label
    // is in the top k iff fewer than k entries beat it.
    int beaten_by = 0;
    for (int c = 0; c < classes; ++c) {
      if (row[c] > row[y]) ++beaten_by;
    }
    if (beaten_by < k) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(batch);
}

}  // namespace meanet::metrics
