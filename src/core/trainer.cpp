#include "core/trainer.h"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.h"

namespace meanet::core {

namespace {

/// Shared epoch loop: `step` consumes one (images, labels) batch and
/// returns (batch loss, #correct).
template <typename StepFn>
TrainCurve run_epochs(const data::Dataset& train, const TrainOptions& options, util::Rng& rng,
                      nn::SGD& optimizer, StepFn&& step) {
  if (train.size() == 0) throw std::invalid_argument("training set is empty");
  data::Batcher batcher(train.size(), options.batch_size, rng);
  nn::MultiStepLR schedule(optimizer, options.milestones, options.lr_gamma);
  TrainCurve curve;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    double loss_sum = 0.0;
    std::int64_t correct = 0;
    std::int64_t seen = 0;
    for (const std::vector<int>& batch_indices : batcher.epoch()) {
      auto [images, labels] = data::gather_batch(train, batch_indices);
      if (options.augment) data::augment_batch(images, *options.augment, rng);
      optimizer.zero_grad();
      const auto [loss, batch_correct] = step(images, labels);
      optimizer.step();
      loss_sum += static_cast<double>(loss) * static_cast<double>(labels.size());
      correct += batch_correct;
      seen += static_cast<std::int64_t>(labels.size());
    }
    schedule.step();
    EpochStats stats;
    stats.loss = static_cast<float>(loss_sum / static_cast<double>(seen));
    stats.accuracy = static_cast<double>(correct) / static_cast<double>(seen);
    curve.push_back(stats);
  }
  return curve;
}

std::int64_t count_correct(const std::vector<int>& predictions, const std::vector<int>& labels) {
  std::int64_t correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (predictions[i] == labels[i]) ++correct;
  }
  return correct;
}

}  // namespace

TrainCurve train_classifier(nn::Sequential& net, const data::Dataset& train,
                            const TrainOptions& options, util::Rng& rng) {
  nn::SGD optimizer(net.parameters(), options.sgd);
  return run_epochs(train, options, rng, optimizer,
                    [&](const Tensor& images, const std::vector<int>& labels) {
                      const Tensor logits = net.forward(images, nn::Mode::kTrain);
                      const nn::LossResult loss = nn::softmax_cross_entropy(logits, labels);
                      net.backward(loss.grad);
                      return std::pair<float, std::int64_t>{
                          loss.loss, count_correct(loss.predictions, labels)};
                    });
}

TrainCurve DistributedTrainer::train_main(const data::Dataset& train, const TrainOptions& options,
                                          util::Rng& rng) {
  net_.unfreeze_main();
  nn::SGD optimizer(net_.main_parameters(), options.sgd);
  return run_epochs(train, options, rng, optimizer,
                    [&](const Tensor& images, const std::vector<int>& labels) {
                      const MainForward fwd = net_.forward_main(images, nn::Mode::kTrain);
                      const nn::LossResult loss = nn::softmax_cross_entropy(fwd.logits, labels);
                      net_.backward_main(loss.grad);
                      return std::pair<float, std::int64_t>{
                          loss.loss, count_correct(loss.predictions, labels)};
                    });
}

data::ClassDict DistributedTrainer::select_hard_classes_from_validation(
    const data::Dataset& validation, int num_hard, int batch_size) {
  const MainProfile profile = profile_main(net_, validation, batch_size);
  return make_class_dict(validation.num_classes,
                         select_hard_classes(profile.confusion, num_hard));
}

TrainCurve DistributedTrainer::train_edge_blocks(const data::Dataset& train,
                                                 const data::ClassDict& dict,
                                                 const TrainOptions& options, util::Rng& rng) {
  // Alg. 1 step 5: keep hard-class instances, remap to compact labels.
  const data::Dataset hard_data = data::remap_labels(
      data::filter_by_labels(train, dict.hard_classes()), dict.mapping(), dict.num_hard());
  // Step 6: fix the main block.
  net_.freeze_main();
  nn::SGD optimizer(net_.edge_parameters(), options.sgd);
  return run_epochs(
      hard_data, options, rng, optimizer,
      [&](const Tensor& images, const std::vector<int>& labels) {
        // Steps 7-8: forward through the frozen main (eval statistics),
        // then adaptive + extension; backprop only into the new blocks.
        const MainForward fwd = net_.forward_main(images, nn::Mode::kEval);
        const Tensor y2 = net_.forward_extension(images, fwd.features, nn::Mode::kTrain);
        const nn::LossResult loss = nn::softmax_cross_entropy(y2, labels);
        net_.backward_extension(loss.grad, /*into_main=*/false);
        return std::pair<float, std::int64_t>{loss.loss,
                                              count_correct(loss.predictions, labels)};
      });
}

TrainCurve DistributedTrainer::train_joint(const data::Dataset& train,
                                           const data::ClassDict& dict,
                                           const TrainOptions& options, util::Rng& rng, float w1,
                                           float w2) {
  net_.unfreeze_main();
  nn::SGD optimizer(net_.all_parameters(), options.sgd);
  return run_epochs(
      train, options, rng, optimizer,
      [&](const Tensor& images, const std::vector<int>& labels) {
        const int batch = static_cast<int>(labels.size());
        const MainForward fwd = net_.forward_main(images, nn::Mode::kTrain);
        const nn::LossResult loss1 = nn::softmax_cross_entropy(fwd.logits, labels);

        const Tensor y2 = net_.forward_extension(images, fwd.features, nn::Mode::kTrain);
        // Exit-2 loss over hard-class rows only (easy rows have no label
        // in the compact space).
        const Tensor log_probs = ops::log_softmax(y2);
        const int hard_classes = y2.shape().dim(1);
        Tensor grad_y2(y2.shape());
        double loss2_sum = 0.0;
        int hard_rows = 0;
        for (int n = 0; n < batch; ++n) {
          const int compact = dict.to_hard(labels[static_cast<std::size_t>(n)]);
          if (compact < 0) continue;
          ++hard_rows;
          const float* lp = log_probs.data() + static_cast<std::int64_t>(n) * hard_classes;
          float* g = grad_y2.data() + static_cast<std::int64_t>(n) * hard_classes;
          loss2_sum -= lp[compact];
          for (int c = 0; c < hard_classes; ++c) {
            g[c] = std::exp(lp[c]) - (c == compact ? 1.0f : 0.0f);
          }
        }
        if (hard_rows > 0) grad_y2.scale_(w2 / static_cast<float>(hard_rows));

        // Backprop both losses; extension first (pushes its share into
        // the trunk), then the exit-1 path.
        net_.backward_extension(grad_y2, /*into_main=*/true);
        Tensor grad_y1 = loss1.grad;
        grad_y1.scale_(w1);
        net_.backward_main(grad_y1);

        const float loss2 =
            hard_rows > 0 ? static_cast<float>(loss2_sum / hard_rows) : 0.0f;
        return std::pair<float, std::int64_t>{w1 * loss1.loss + w2 * loss2,
                                              count_correct(loss1.predictions, labels)};
      });
}

TrainCurve DistributedTrainer::train_separate(const data::Dataset& train,
                                              const data::ClassDict& dict,
                                              const TrainOptions& options, util::Rng& rng) {
  // Phase 1: optimize trunk + adaptive + extension for the final exit on
  // hard-class data (the final exit only sees hard classes).
  const data::Dataset hard_data = data::remap_labels(
      data::filter_by_labels(train, dict.hard_classes()), dict.mapping(), dict.num_hard());
  net_.unfreeze_main();
  std::vector<nn::Parameter*> phase1_params = net_.main_trunk().parameters();
  for (nn::Parameter* p : net_.edge_parameters()) phase1_params.push_back(p);
  nn::SGD phase1_opt(phase1_params, options.sgd);
  TrainCurve curve = run_epochs(
      hard_data, options, rng, phase1_opt,
      [&](const Tensor& images, const std::vector<int>& labels) {
        const MainForward fwd = net_.forward_main(images, nn::Mode::kTrain);
        const Tensor y2 = net_.forward_extension(images, fwd.features, nn::Mode::kTrain);
        const nn::LossResult loss = nn::softmax_cross_entropy(y2, labels);
        net_.backward_extension(loss.grad, /*into_main=*/true);
        return std::pair<float, std::int64_t>{loss.loss,
                                              count_correct(loss.predictions, labels)};
      });

  // Phase 2: freeze the convolutional blocks, train exit 1 on all data.
  net_.main_trunk().set_frozen(true);
  net_.adaptive().set_frozen(true);
  net_.extension().set_frozen(true);
  nn::SGD phase2_opt(net_.main_exit().parameters(), options.sgd);
  const TrainCurve phase2 = run_epochs(
      train, options, rng, phase2_opt,
      [&](const Tensor& images, const std::vector<int>& labels) {
        const MainForward fwd = net_.forward_main(images, nn::Mode::kTrain);
        const nn::LossResult loss = nn::softmax_cross_entropy(fwd.logits, labels);
        // Only exit 1 trains; its backward stops at the (frozen) trunk.
        net_.main_exit().backward(loss.grad);
        return std::pair<float, std::int64_t>{loss.loss,
                                              count_correct(loss.predictions, labels)};
      });
  curve.insert(curve.end(), phase2.begin(), phase2.end());
  return curve;
}

}  // namespace meanet::core
