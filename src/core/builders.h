// Model builders: restructure ResNet / MobileNetV2-family CNNs into
// MEANets (paper Fig. 4, Models A and B) and build plain classifiers for
// the cloud side and for baselines.
//
// Model A splits the original network: early stages become the main
// block (with a new FC exit), the last stage + original FC become the
// extension block.
// Model B keeps the whole network as the main block and appends new
// layers as the extension block. The adaptive block is always a
// lightweight (one conv per stage) version of the main trunk whose
// output shape matches the main features.
#pragma once

#include <array>

#include "core/meanet.h"
#include "nn/sequential.h"
#include "util/rng.h"

namespace meanet::core {

/// Geometry of the scaled-down ResNet family used in the experiments.
struct ResNetConfig {
  /// Residual blocks per stage ("n"; ResNet depth = 6n+2 in the paper).
  int blocks_per_stage = 2;
  /// Stage output channels (the paper uses 16/32/64 for CIFAR; the
  /// benches scale to 8/16/32 for the single-core budget).
  std::array<int, 3> channels = {8, 16, 32};
  int image_channels = 3;
  int num_classes = 20;
};

/// Geometry of the scaled-down MobileNetV2 family.
struct MobileNetConfig {
  int stem_channels = 8;
  /// (out_channels, stride, expansion) per inverted-residual block.
  std::vector<std::array<int, 3>> blocks = {
      {8, 1, 1}, {12, 2, 4}, {12, 1, 4}, {16, 2, 4}, {16, 1, 4}};
  int image_channels = 3;
  int num_classes = 20;
};

/// Plain ResNet classifier (stem + 3 stages + avgpool + FC). Used for
/// the cloud model and the Fig. 2 baseline.
nn::Sequential build_resnet_classifier(const ResNetConfig& config, util::Rng& rng,
                                       const std::string& name = "resnet");

/// Model A: main = stem + stages 1-2, extension = stage 3 (+ exit).
MEANet build_resnet_meanet_a(const ResNetConfig& config, int num_hard_classes, FusionMode fusion,
                             util::Rng& rng);

/// Model B: main = full ResNet, extension = `extension_blocks` extra
/// residual blocks at the last stage's width (+ exit).
MEANet build_resnet_meanet_b(const ResNetConfig& config, int num_hard_classes, FusionMode fusion,
                             util::Rng& rng, int extension_blocks = 2);

/// Model B on the MobileNetV2 family; the extension block has four
/// inverted-residual blocks as in the paper (§IV-A).
MEANet build_mobilenet_meanet_b(const MobileNetConfig& config, int num_hard_classes,
                                FusionMode fusion, util::Rng& rng, int extension_blocks = 4);

/// Deeper/wider cloud-side classifier (the paper uses ResNet101: the
/// only property relied on is higher accuracy than the edge model).
nn::Sequential build_cloud_classifier(int image_channels, int num_classes, util::Rng& rng);

}  // namespace meanet::core
