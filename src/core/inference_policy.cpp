#include "core/inference_policy.h"

namespace meanet::core {

const char* route_name(Route route) {
  switch (route) {
    case Route::kMainExit:
      return "main";
    case Route::kExtensionExit:
      return "extension";
    case Route::kCloud:
      return "cloud";
  }
  return "?";
}

Route InferencePolicy::route(float main_entropy, int main_prediction) const {
  if (config_.cloud_available &&
      static_cast<double>(main_entropy) > config_.entropy_threshold) {
    return Route::kCloud;
  }
  return is_hard(main_prediction) ? Route::kExtensionExit : Route::kMainExit;
}

}  // namespace meanet::core
