#include "core/inference_policy.h"

#include <cstdlib>
#include <sstream>

namespace meanet::core {

const char* route_name(Route route) {
  switch (route) {
    case Route::kMainExit:
      return "main";
    case Route::kExtensionExit:
      return "extension";
    case Route::kCloud:
      return "cloud";
  }
  std::abort();  // unreachable: the switch is exhaustive (-Wswitch)
}

Route InferencePolicy::route(float main_entropy, int main_prediction) const {
  if (config_.cloud_available &&
      static_cast<double>(main_entropy) > config_.entropy_threshold) {
    return Route::kCloud;
  }
  return is_hard(main_prediction) ? Route::kExtensionExit : Route::kMainExit;
}

std::string EntropyThresholdPolicy::describe() const {
  std::ostringstream os;
  os << "entropy-threshold(threshold=" << config().entropy_threshold
     << ", cloud=" << (config().cloud_available ? "on" : "off") << ")";
  return os.str();
}

Route ConfidenceMarginPolicy::route(const RouteSignals& signals) const {
  // Compare in float (the margin's own precision) so "margin exactly at
  // the threshold stays at the edge" holds for float-representable
  // thresholds instead of depending on their double rounding direction.
  if (config_.cloud_available &&
      signals.margin < static_cast<float>(config_.margin_threshold)) {
    return Route::kCloud;
  }
  return dict_->is_hard(signals.main_prediction) ? Route::kExtensionExit : Route::kMainExit;
}

std::string ConfidenceMarginPolicy::describe() const {
  std::ostringstream os;
  os << "confidence-margin(threshold=" << config_.margin_threshold
     << ", cloud=" << (config_.cloud_available ? "on" : "off") << ")";
  return os.str();
}

Route AlwaysExtendPolicy::route(const RouteSignals& /*signals*/) const {
  return Route::kExtensionExit;
}

}  // namespace meanet::core
