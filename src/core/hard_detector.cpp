#include "core/hard_detector.h"

#include "nn/activations.h"
#include "nn/batchnorm2d.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "nn/residual_block.h"
#include "tensor/ops.h"

namespace meanet::core {

BinaryHardDetector::BinaryHardDetector(int image_channels, util::Rng& rng)
    : model_("hard_detector") {
  model_.emplace<nn::Conv2d>(image_channels, 8, 3, 1, 1, /*bias=*/false, rng, "det.stem");
  model_.emplace<nn::BatchNorm2d>(8, 0.1f, 1e-5f, "det.stem.bn");
  model_.emplace<nn::ReLU>("det.stem.relu");
  model_.emplace<nn::ResidualBlock>(8, 16, 2, rng, "det.block");
  model_.emplace<nn::GlobalAvgPool>("det.avgpool");
  model_.emplace<nn::Linear>(16, 2, rng, "det.fc");
}

TrainCurve BinaryHardDetector::train(const data::Dataset& train, const data::ClassDict& dict,
                                     const TrainOptions& options, util::Rng& rng) {
  // Binary relabeling: 1 = hard class, 0 = easy class.
  data::Dataset binary = train;
  binary.num_classes = 2;
  for (int& label : binary.labels) label = dict.is_hard(label) ? 1 : 0;
  return train_classifier(model_, binary, options, rng);
}

std::vector<bool> BinaryHardDetector::detect(const Tensor& images) {
  const Tensor logits = model_.forward(images, nn::Mode::kEval);
  const std::vector<int> preds = ops::row_argmax(logits);
  std::vector<bool> out(preds.size());
  for (std::size_t i = 0; i < preds.size(); ++i) out[i] = preds[i] == 1;
  return out;
}

double BinaryHardDetector::detection_accuracy(const data::Dataset& dataset,
                                              const data::ClassDict& dict, int batch_size) {
  std::int64_t correct = 0;
  for (int start = 0; start < dataset.size(); start += batch_size) {
    const int count = std::min(batch_size, dataset.size() - start);
    const std::vector<bool> detected = detect(dataset.images.slice_batch(start, count));
    for (int i = 0; i < count; ++i) {
      const bool truly_hard =
          dict.is_hard(dataset.labels[static_cast<std::size_t>(start + i)]);
      if (detected[static_cast<std::size_t>(i)] == truly_hard) ++correct;
    }
  }
  return static_cast<double>(correct) / dataset.size();
}

}  // namespace meanet::core
