// Optional binary easy/hard detector (paper §III-B: "it is optional to
// train a binary classifier as a detector" — the paper finds the
// main-block argmax rule simpler and at least as effective; this class
// exists to reproduce that comparison).
#pragma once

#include "core/trainer.h"
#include "data/class_dict.h"
#include "data/dataset.h"
#include "nn/sequential.h"
#include "util/rng.h"

namespace meanet::core {

class BinaryHardDetector {
 public:
  /// Builds a small CNN (stem + one residual stage + 2-way head) for
  /// images with `image_channels` channels.
  BinaryHardDetector(int image_channels, util::Rng& rng);

  /// Trains on `train` with binary labels derived from `dict`
  /// (hard class -> 1, easy -> 0).
  TrainCurve train(const data::Dataset& train, const data::ClassDict& dict,
                   const TrainOptions& options, util::Rng& rng);

  /// True where the detector predicts "hard".
  std::vector<bool> detect(const Tensor& images);

  /// Fraction of `dataset` instances whose detection matches the true
  /// category under `dict`.
  double detection_accuracy(const data::Dataset& dataset, const data::ClassDict& dict,
                            int batch_size = 64);

  nn::Sequential& model() { return model_; }

 private:
  nn::Sequential model_;
};

}  // namespace meanet::core
