// MEANet — the paper's tripartite edge architecture (Fig. 1 / Fig. 4):
//
//   main trunk  : image -> features F
//   main exit   : F -> y1 logits over all classes        (exit 1)
//   adaptive    : image -> f2, same shape as F (a lightweight parallel
//                 path that gives the extension block a view of the raw
//                 input independent of the frozen main block)
//   extension   : fuse(F, f2) -> y2 logits over hard classes (exit 2)
//
// Fusion is element-wise sum or channel concatenation (paper §III-A).
// Training (Alg. 1) freezes the main trunk + exit and backpropagates the
// hard-class loss through the extension and adaptive blocks only; the
// gradient that reaches F is discarded because nothing upstream trains.
#pragma once

#include <memory>

#include "nn/sequential.h"

namespace meanet::core {

enum class FusionMode {
  kSum,
  kConcat,
};

/// Outputs of the main block for a batch.
struct MainForward {
  Tensor features;  // F: [N, c, h, w]
  Tensor logits;    // y1: [N, num_classes]
};

class MEANet {
 public:
  /// Blocks are moved in; shapes must be consistent:
  /// adaptive(image) must produce the same [c,h,w] as main_trunk(image)
  /// (for kConcat the extension must accept 2c input channels).
  MEANet(nn::Sequential main_trunk, nn::Sequential main_exit, nn::Sequential adaptive,
         nn::Sequential extension, FusionMode fusion);

  // ----- Forward -----

  /// Runs trunk + exit 1, caching for a later backward_main().
  MainForward forward_main(const Tensor& images, nn::Mode mode);

  /// Runs adaptive + fusion + extension, given the features produced by
  /// forward_main on the *same* images. Caches for backward_extension().
  Tensor forward_extension(const Tensor& images, const Tensor& features, nn::Mode mode);

  // ----- Backward (blockwise, Alg. 1) -----

  /// Backpropagates a main-exit loss gradient through exit 1 and the
  /// trunk (used when the main block itself is trained, e.g. at the
  /// cloud, or for Model A's edge-trainable main).
  void backward_main(const Tensor& grad_logits);

  /// Backpropagates an extension-exit loss gradient through the
  /// extension and adaptive blocks. If `into_main` is true the F-part of
  /// the fused gradient is also pushed through the main trunk (joint
  /// optimization baseline); otherwise it is discarded (paper default).
  void backward_extension(const Tensor& grad_logits, bool into_main = false);

  // ----- Training control -----

  /// Freezes the main trunk and exit (paper: "fix the main block").
  void freeze_main();
  void unfreeze_main();
  bool main_frozen() const { return main_trunk_.frozen(); }

  /// Parameters of the main block (trunk + exit).
  std::vector<nn::Parameter*> main_parameters();
  /// Parameters trained at the edge under Alg. 1 (adaptive + extension).
  std::vector<nn::Parameter*> edge_parameters();
  std::vector<nn::Parameter*> all_parameters();

  // ----- Introspection -----

  nn::Sequential& main_trunk() { return main_trunk_; }
  nn::Sequential& main_exit() { return main_exit_; }
  nn::Sequential& adaptive() { return adaptive_; }
  nn::Sequential& extension() { return extension_; }
  const nn::Sequential& main_trunk() const { return main_trunk_; }
  const nn::Sequential& main_exit() const { return main_exit_; }
  const nn::Sequential& adaptive() const { return adaptive_; }
  const nn::Sequential& extension() const { return extension_; }
  FusionMode fusion() const { return fusion_; }

  /// Activation-cache elements currently held across all four blocks —
  /// 0 after eval-mode forwards (the shared-net serving invariant).
  std::int64_t activation_cache_elems() const {
    return main_trunk_.activation_cache_elems() + main_exit_.activation_cache_elems() +
           adaptive_.activation_cache_elems() + extension_.activation_cache_elems();
  }

  /// Classes at exit 1 (= all classes).
  int num_classes(const Shape& image_shape) const;
  /// Classes at exit 2 (= hard classes).
  int num_hard_classes(const Shape& image_shape) const;

 private:
  Tensor fuse(const Tensor& features, const Tensor& adaptive_out) const;

  nn::Sequential main_trunk_;
  nn::Sequential main_exit_;
  nn::Sequential adaptive_;
  nn::Sequential extension_;
  FusionMode fusion_;

  // Backward caches.
  bool main_cached_ = false;
  bool extension_cached_ = false;
  Shape cached_feature_shape_;
};

}  // namespace meanet::core
