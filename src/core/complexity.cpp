#include "core/complexity.h"

#include <numeric>
#include <stdexcept>

#include "tensor/ops.h"

namespace meanet::core {

namespace {

template <typename ForwardLogits>
MainProfile profile_impl(ForwardLogits&& forward_logits, const data::Dataset& dataset,
                         int batch_size) {
  if (dataset.size() == 0) throw std::invalid_argument("profile: empty dataset");
  MainProfile profile{metrics::ConfusionMatrix(dataset.num_classes), {}, {}, {}, 0.0};
  profile.predictions.reserve(static_cast<std::size_t>(dataset.size()));
  profile.entropies.reserve(static_cast<std::size_t>(dataset.size()));
  std::int64_t correct = 0;
  for (int start = 0; start < dataset.size(); start += batch_size) {
    const int count = std::min(batch_size, dataset.size() - start);
    const Tensor batch = dataset.images.slice_batch(start, count);
    const Tensor logits = forward_logits(batch);
    const Tensor probs = ops::softmax(logits);
    const std::vector<int> preds = ops::row_argmax(probs);
    const std::vector<float> ent = ops::row_entropy(probs);
    for (int i = 0; i < count; ++i) {
      const int label = dataset.labels[static_cast<std::size_t>(start + i)];
      const int pred = preds[static_cast<std::size_t>(i)];
      const bool ok = pred == label;
      profile.confusion.add(label, pred);
      profile.entropy.add(ent[static_cast<std::size_t>(i)], ok);
      profile.predictions.push_back(pred);
      profile.entropies.push_back(ent[static_cast<std::size_t>(i)]);
      if (ok) ++correct;
    }
  }
  profile.accuracy = static_cast<double>(correct) / static_cast<double>(dataset.size());
  return profile;
}

}  // namespace

MainProfile profile_main(MEANet& net, const data::Dataset& dataset, int batch_size) {
  return profile_impl(
      [&](const Tensor& batch) { return net.forward_main(batch, nn::Mode::kEval).logits; },
      dataset, batch_size);
}

MainProfile profile_classifier(nn::Sequential& net, const data::Dataset& dataset,
                               int batch_size) {
  return profile_impl([&](const Tensor& batch) { return net.forward(batch, nn::Mode::kEval); },
                      dataset, batch_size);
}

std::vector<int> select_hard_classes(const metrics::ConfusionMatrix& confusion, int num_hard) {
  if (num_hard <= 0 || num_hard > confusion.num_classes()) {
    throw std::invalid_argument("select_hard_classes: bad num_hard");
  }
  const std::vector<int> ranked = confusion.classes_by_ascending_precision();
  return {ranked.begin(), ranked.begin() + num_hard};
}

std::vector<int> select_random_classes(int num_classes, int num_hard, util::Rng& rng) {
  if (num_hard <= 0 || num_hard > num_classes) {
    throw std::invalid_argument("select_random_classes: bad num_hard");
  }
  std::vector<int> all(static_cast<std::size_t>(num_classes));
  std::iota(all.begin(), all.end(), 0);
  rng.shuffle(all);
  return {all.begin(), all.begin() + num_hard};
}

data::ClassDict make_class_dict(int num_classes, const std::vector<int>& hard_classes) {
  return data::ClassDict(num_classes, hard_classes);
}

}  // namespace meanet::core
