// Edge half of Alg. 2: main-block pass, routing, extension-block pass
// with the confidence comparison between the two exits.
//
// Instances routed to the cloud are *marked*, not classified — the
// sim::DistributedSystem pairs this engine with a CloudNode to complete
// the algorithm.
#pragma once

#include <vector>

#include "core/inference_policy.h"
#include "core/meanet.h"
#include "data/dataset.h"

namespace meanet::core {

struct InstanceDecision {
  Route route = Route::kMainExit;
  /// Final edge prediction in global label space; for kCloud routes this
  /// holds the edge's best guess (used when the cloud is unreachable).
  int prediction = -1;
  int main_prediction = -1;
  float entropy = 0.0f;
  /// Max softmax score at exit 1.
  float main_confidence = 0.0f;
  /// Max softmax score at exit 2 (0 when the extension did not run).
  float extension_confidence = 0.0f;
};

class EdgeInferenceEngine {
 public:
  EdgeInferenceEngine(MEANet& net, const data::ClassDict& dict, PolicyConfig config)
      : net_(&net), policy_(dict, config) {}

  /// Runs Alg. 2 (edge part) on a batch of images.
  std::vector<InstanceDecision> infer(const Tensor& images);

  /// Convenience: whole dataset in batches of `batch_size`.
  std::vector<InstanceDecision> infer_dataset(const data::Dataset& dataset, int batch_size = 64);

  const InferencePolicy& policy() const { return policy_; }
  void set_config(PolicyConfig config) { policy_ = InferencePolicy(policy_.dict(), config); }

 private:
  MEANet* net_;
  InferencePolicy policy_;
};

/// Route occupancy summary over a set of decisions.
struct RouteCounts {
  std::int64_t main_exit = 0;
  std::int64_t extension_exit = 0;
  std::int64_t cloud = 0;
  std::int64_t total() const { return main_exit + extension_exit + cloud; }
  double cloud_fraction() const {
    return total() == 0 ? 0.0 : static_cast<double>(cloud) / static_cast<double>(total());
  }
};

RouteCounts count_routes(const std::vector<InstanceDecision>& decisions);

}  // namespace meanet::core
