// Edge half of Alg. 2: main-block pass, routing, extension-block pass
// with the confidence comparison between the two exits.
//
// Instances routed to the cloud are *marked*, not classified — the
// runtime::InferenceSession (or the sim::DistributedSystem shim) pairs
// this engine with an OffloadBackend to complete the algorithm.
#pragma once

#include <memory>
#include <vector>

#include "core/inference_policy.h"
#include "core/meanet.h"
#include "data/dataset.h"

namespace meanet::core {

struct InstanceDecision {
  Route route = Route::kMainExit;
  /// Final edge prediction in global label space; for kCloud routes this
  /// holds the edge's best guess (used when the cloud is unreachable).
  int prediction = -1;
  int main_prediction = -1;
  /// Exit-1 entropy; 0 when the routing policy's needed_signals() did
  /// not ask for it (the engine then skips the reduction).
  float entropy = 0.0f;
  /// Max softmax score at exit 1 (always computed: Alg. 2's exit
  /// comparison needs it).
  float main_confidence = 0.0f;
  /// Top-1 minus top-2 softmax score at exit 1; 0 unless the policy's
  /// needed_signals() asked for it.
  float margin = 0.0f;
  /// Max softmax score at exit 2 (0 when the extension did not run).
  float extension_confidence = 0.0f;
};

/// Decisions for one batch plus the main-trunk features that produced
/// them ([N, c, h, w]) — feature-offload backends upload exactly these.
struct BatchInference {
  std::vector<InstanceDecision> decisions;
  Tensor features;
};

class EdgeInferenceEngine {
 public:
  /// Classic construction from the paper's entropy-threshold config.
  EdgeInferenceEngine(MEANet& net, const data::ClassDict& dict, PolicyConfig config)
      : net_(&net), dict_(&dict) {
    set_config(config);
  }

  /// Construction with any RoutingPolicy.
  EdgeInferenceEngine(MEANet& net, const data::ClassDict& dict,
                      std::shared_ptr<const RoutingPolicy> policy);

  /// Runs Alg. 2 (edge part) on a batch of images.
  std::vector<InstanceDecision> infer(const Tensor& images);

  /// Like infer(), additionally returning the main-trunk features.
  BatchInference infer_batch(const Tensor& images);

  /// Convenience: whole dataset in batches of `batch_size`.
  std::vector<InstanceDecision> infer_dataset(const data::Dataset& dataset, int batch_size = 64);

  const RoutingPolicy& routing() const { return *routing_; }
  std::shared_ptr<const RoutingPolicy> routing_ptr() const { return routing_; }

  /// The single mutation path for the routing stage; every config change
  /// flows through here so the engine and its policy cannot drift.
  void set_routing(std::shared_ptr<const RoutingPolicy> policy);

  /// Rebuilds the entropy-threshold policy from `config` (delegates to
  /// set_routing — there is no second copy of the configuration).
  void set_config(PolicyConfig config) {
    set_routing(std::make_shared<EntropyThresholdPolicy>(*dict_, config));
  }

  const data::ClassDict& dict() const { return *dict_; }
  MEANet& net() { return *net_; }

 private:
  MEANet* net_;
  const data::ClassDict* dict_;
  std::shared_ptr<const RoutingPolicy> routing_;

  // Per-engine scratch reused across infer_batch calls so the routing
  // signals (softmax, argmax, entropy/margin reductions) allocate
  // nothing on the serving hot path. An engine is single-threaded by
  // contract (each InferenceSession worker owns one; the *net* is what
  // they share), so plain members are safe.
  Tensor probs_, ext_probs_;
  std::vector<int> pred_scratch_;
  std::vector<float> conf_scratch_, margin_scratch_, entropy_scratch_, ext_conf_scratch_;
  std::vector<int> ext_pred_scratch_;
  std::vector<int> extension_rows_;
};

/// Route occupancy summary over a set of decisions.
struct RouteCounts {
  std::int64_t main_exit = 0;
  std::int64_t extension_exit = 0;
  std::int64_t cloud = 0;

  /// Tallies one route; the switch is exhaustive over Route.
  void add(Route route);

  std::int64_t total() const { return main_exit + extension_exit + cloud; }
  double cloud_fraction() const {
    return total() == 0 ? 0.0 : static_cast<double>(cloud) / static_cast<double>(total());
  }
};

RouteCounts count_routes(const std::vector<InstanceDecision>& decisions);

}  // namespace meanet::core
