#include "core/builders.h"

#include <stdexcept>

#include "nn/activations.h"
#include "nn/batchnorm2d.h"
#include "nn/conv2d.h"
#include "nn/flatten.h"
#include "nn/inverted_residual.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "nn/residual_block.h"

namespace meanet::core {

namespace {

using nn::Sequential;

void add_stem(Sequential& seq, int in_channels, int out_channels, util::Rng& rng,
              const std::string& prefix) {
  seq.emplace<nn::Conv2d>(in_channels, out_channels, 3, 1, 1, /*bias=*/false, rng,
                          prefix + ".stem.conv");
  seq.emplace<nn::BatchNorm2d>(out_channels, 0.1f, 1e-5f, prefix + ".stem.bn");
  seq.emplace<nn::ReLU>(prefix + ".stem.relu");
}

void add_stage(Sequential& seq, int in_channels, int out_channels, int blocks, int first_stride,
               util::Rng& rng, const std::string& prefix) {
  for (int b = 0; b < blocks; ++b) {
    const int ic = b == 0 ? in_channels : out_channels;
    const int stride = b == 0 ? first_stride : 1;
    seq.emplace<nn::ResidualBlock>(ic, out_channels, stride, rng,
                                   prefix + ".block" + std::to_string(b));
  }
}

/// Exit head: global average pool + FC.
Sequential make_exit(int in_channels, int num_classes, util::Rng& rng, const std::string& prefix) {
  Sequential exit(prefix);
  exit.emplace<nn::GlobalAvgPool>(prefix + ".avgpool");
  exit.emplace<nn::Linear>(in_channels, num_classes, rng, prefix + ".fc");
  return exit;
}

/// Lightweight adaptive block: one stride-matched conv(+BN+ReLU) per
/// downsampling step of the mimicked trunk, ending at `out_channels`.
/// `stage_channels`/`stage_strides` describe the trunk's stages.
Sequential make_adaptive(int image_channels, const std::vector<int>& stage_channels,
                         const std::vector<int>& stage_strides, util::Rng& rng,
                         const std::string& prefix) {
  if (stage_channels.size() != stage_strides.size() || stage_channels.empty()) {
    throw std::invalid_argument("make_adaptive: bad stage description");
  }
  Sequential adaptive(prefix);
  int in_c = image_channels;
  for (std::size_t i = 0; i < stage_channels.size(); ++i) {
    const std::string layer_prefix = prefix + ".conv" + std::to_string(i);
    adaptive.emplace<nn::Conv2d>(in_c, stage_channels[i], 3, stage_strides[i], 1, /*bias=*/false,
                                 rng, layer_prefix);
    adaptive.emplace<nn::BatchNorm2d>(stage_channels[i], 0.1f, 1e-5f, layer_prefix + ".bn");
    adaptive.emplace<nn::ReLU>(layer_prefix + ".relu");
    in_c = stage_channels[i];
  }
  return adaptive;
}

}  // namespace

Sequential build_resnet_classifier(const ResNetConfig& config, util::Rng& rng,
                                   const std::string& name) {
  Sequential net(name);
  add_stem(net, config.image_channels, config.channels[0], rng, name);
  add_stage(net, config.channels[0], config.channels[0], config.blocks_per_stage, 1, rng,
            name + ".stage1");
  add_stage(net, config.channels[0], config.channels[1], config.blocks_per_stage, 2, rng,
            name + ".stage2");
  add_stage(net, config.channels[1], config.channels[2], config.blocks_per_stage, 2, rng,
            name + ".stage3");
  net.emplace<nn::GlobalAvgPool>(name + ".avgpool");
  net.emplace<nn::Linear>(config.channels[2], config.num_classes, rng, name + ".fc");
  return net;
}

MEANet build_resnet_meanet_a(const ResNetConfig& config, int num_hard_classes, FusionMode fusion,
                             util::Rng& rng) {
  if (num_hard_classes <= 0 || num_hard_classes > config.num_classes) {
    throw std::invalid_argument("build_resnet_meanet_a: bad num_hard_classes");
  }
  // Main trunk: stem + stage1 + stage2 (features at channels[1], /2).
  Sequential trunk("mainA");
  add_stem(trunk, config.image_channels, config.channels[0], rng, "mainA");
  add_stage(trunk, config.channels[0], config.channels[0], config.blocks_per_stage, 1, rng,
            "mainA.stage1");
  add_stage(trunk, config.channels[0], config.channels[1], config.blocks_per_stage, 2, rng,
            "mainA.stage2");

  Sequential exit1 = make_exit(config.channels[1], config.num_classes, rng, "exit1A");

  // Adaptive block mirrors the trunk's stages with one conv each.
  Sequential adaptive = make_adaptive(config.image_channels,
                                      {config.channels[0], config.channels[1]}, {1, 2}, rng,
                                      "adaptiveA");

  // Extension block: the original stage 3 + exit over hard classes.
  const int ext_in =
      fusion == FusionMode::kConcat ? 2 * config.channels[1] : config.channels[1];
  Sequential extension("extensionA");
  add_stage(extension, ext_in, config.channels[2], config.blocks_per_stage, 2, rng,
            "extensionA.stage3");
  extension.emplace<nn::GlobalAvgPool>("extensionA.avgpool");
  extension.emplace<nn::Linear>(config.channels[2], num_hard_classes, rng, "extensionA.fc");

  return MEANet(std::move(trunk), std::move(exit1), std::move(adaptive), std::move(extension),
                fusion);
}

MEANet build_resnet_meanet_b(const ResNetConfig& config, int num_hard_classes, FusionMode fusion,
                             util::Rng& rng, int extension_blocks) {
  if (num_hard_classes <= 0 || num_hard_classes > config.num_classes) {
    throw std::invalid_argument("build_resnet_meanet_b: bad num_hard_classes");
  }
  // Main trunk: the complete ResNet body (features at channels[2], /4).
  Sequential trunk("mainB");
  add_stem(trunk, config.image_channels, config.channels[0], rng, "mainB");
  add_stage(trunk, config.channels[0], config.channels[0], config.blocks_per_stage, 1, rng,
            "mainB.stage1");
  add_stage(trunk, config.channels[0], config.channels[1], config.blocks_per_stage, 2, rng,
            "mainB.stage2");
  add_stage(trunk, config.channels[1], config.channels[2], config.blocks_per_stage, 2, rng,
            "mainB.stage3");

  Sequential exit1 = make_exit(config.channels[2], config.num_classes, rng, "exit1B");

  Sequential adaptive = make_adaptive(
      config.image_channels, {config.channels[0], config.channels[1], config.channels[2]},
      {1, 2, 2}, rng, "adaptiveB");

  const int ext_in =
      fusion == FusionMode::kConcat ? 2 * config.channels[2] : config.channels[2];
  Sequential extension("extensionB");
  add_stage(extension, ext_in, config.channels[2], extension_blocks, 1, rng, "extensionB.stage");
  extension.emplace<nn::GlobalAvgPool>("extensionB.avgpool");
  extension.emplace<nn::Linear>(config.channels[2], num_hard_classes, rng, "extensionB.fc");

  return MEANet(std::move(trunk), std::move(exit1), std::move(adaptive), std::move(extension),
                fusion);
}

MEANet build_mobilenet_meanet_b(const MobileNetConfig& config, int num_hard_classes,
                                FusionMode fusion, util::Rng& rng, int extension_blocks) {
  if (config.blocks.empty()) throw std::invalid_argument("build_mobilenet_meanet_b: no blocks");
  if (num_hard_classes <= 0 || num_hard_classes > config.num_classes) {
    throw std::invalid_argument("build_mobilenet_meanet_b: bad num_hard_classes");
  }
  Sequential trunk("mnetB");
  add_stem(trunk, config.image_channels, config.stem_channels, rng, "mnetB");
  int in_c = config.stem_channels;
  // Track downsampling structure for the adaptive block.
  std::vector<int> adaptive_channels;
  std::vector<int> adaptive_strides;
  int pending_stride = 1;
  for (std::size_t i = 0; i < config.blocks.size(); ++i) {
    const auto [out_c, stride, expansion] = config.blocks[i];
    trunk.emplace<nn::InvertedResidual>(in_c, out_c, stride, expansion, rng,
                                        "mnetB.ir" + std::to_string(i));
    pending_stride *= stride;
    if (stride > 1 || i + 1 == config.blocks.size()) {
      adaptive_channels.push_back(out_c);
      adaptive_strides.push_back(pending_stride);
      pending_stride = 1;
    }
    in_c = out_c;
  }
  const int feature_channels = in_c;

  Sequential exit1 = make_exit(feature_channels, config.num_classes, rng, "mnetB.exit1");

  Sequential adaptive = make_adaptive(config.image_channels, adaptive_channels, adaptive_strides,
                                      rng, "mnetB.adaptive");

  const int ext_in = fusion == FusionMode::kConcat ? 2 * feature_channels : feature_channels;
  Sequential extension("mnetB.extension");
  int ec = ext_in;
  for (int b = 0; b < extension_blocks; ++b) {
    extension.emplace<nn::InvertedResidual>(ec, feature_channels, 1, 4, rng,
                                            "mnetB.ext.ir" + std::to_string(b));
    ec = feature_channels;
  }
  extension.emplace<nn::GlobalAvgPool>("mnetB.ext.avgpool");
  extension.emplace<nn::Linear>(feature_channels, num_hard_classes, rng, "mnetB.ext.fc");

  return MEANet(std::move(trunk), std::move(exit1), std::move(adaptive), std::move(extension),
                fusion);
}

Sequential build_cloud_classifier(int image_channels, int num_classes, util::Rng& rng) {
  ResNetConfig config;
  config.blocks_per_stage = 3;           // deeper than the edge nets
  config.channels = {16, 32, 64};        // and wider
  config.image_channels = image_channels;
  config.num_classes = num_classes;
  return build_resnet_classifier(config, rng, "cloud");
}

}  // namespace meanet::core
