// Complexity profiling (paper §III, Fig. 3):
//  * class-wise complexity = validation FDR of the main block
//    -> hard-class selection (Alg. 1 step 2);
//  * instance-wise complexity = prediction entropy of the main block
//    -> cloud-offload threshold range (mu_correct, mu_wrong).
#pragma once

#include <vector>

#include "core/meanet.h"
#include "data/class_dict.h"
#include "data/dataset.h"
#include "metrics/confusion_matrix.h"
#include "metrics/entropy_stats.h"
#include "util/rng.h"

namespace meanet::core {

/// Everything measured in one evaluation pass of the main block.
struct MainProfile {
  metrics::ConfusionMatrix confusion;
  metrics::EntropyStats entropy;
  std::vector<int> predictions;
  std::vector<float> entropies;  // per instance, aligned with the dataset
  double accuracy = 0.0;
};

/// Runs the main block (eval mode) over `dataset` in batches.
MainProfile profile_main(MEANet& net, const data::Dataset& dataset, int batch_size = 64);

/// Same profiling for a plain classifier (used for the cloud model and
/// baselines).
MainProfile profile_classifier(nn::Sequential& net, const data::Dataset& dataset,
                               int batch_size = 64);

/// The paper's selection rule: the `num_hard` classes with the lowest
/// validation precision.
std::vector<int> select_hard_classes(const metrics::ConfusionMatrix& confusion, int num_hard);

/// Ablation baseline (Table IV/V): a uniformly random class subset.
std::vector<int> select_random_classes(int num_classes, int num_hard, util::Rng& rng);

/// Builds the ClassDict of Alg. 1 step 3 from selected hard classes.
data::ClassDict make_class_dict(int num_classes, const std::vector<int>& hard_classes);

}  // namespace meanet::core
