// Routing policies of Alg. 2: where does an instance's inference end?
//
// The paper's rule (entropy-threshold offload) is one member of a family
// of pluggable policies behind the RoutingPolicy interface:
//
//   cloud rule fires and cloud available  -> cloud ("complex")
//   argmax(y1) in hard classes            -> extension block
//   otherwise                             -> main-block early exit
//
// The classic InferencePolicy (entropy rule only) is kept as the
// reference implementation; EntropyThresholdPolicy adapts it to the
// interface so the two cannot drift.
#pragma once

#include <limits>
#include <memory>
#include <string>

#include "data/class_dict.h"

namespace meanet::core {

enum class Route {
  kMainExit,
  kExtensionExit,
  kCloud,
};

/// Number of Route enumerators. The static_assert fires when the enum
/// grows; the switches over Route (route_name, RouteCounts::add, the
/// offload-backend factory) are default-free, so -Wswitch then flags
/// each one that needs a new case.
inline constexpr int kNumRoutes = 3;
static_assert(static_cast<int>(Route::kCloud) + 1 == kNumRoutes,
              "Route enum changed: update kNumRoutes and every switch over Route");

const char* route_name(Route route);

struct PolicyConfig {
  /// Instances with main-exit entropy above this go to the cloud.
  /// +infinity disables offloading even when the cloud is available.
  double entropy_threshold = std::numeric_limits<double>::infinity();
  /// Paper: "if Cloud is available and Entropy > threshold".
  bool cloud_available = false;
};

class InferencePolicy {
 public:
  InferencePolicy(const data::ClassDict& dict, PolicyConfig config)
      : dict_(&dict), config_(config) {}

  /// The IsHard detector of §III-B: hard iff the main-block argmax is a
  /// hard class.
  bool is_hard(int main_prediction) const { return dict_->is_hard(main_prediction); }

  Route route(float main_entropy, int main_prediction) const;

  const PolicyConfig& config() const { return config_; }
  const data::ClassDict& dict() const { return *dict_; }

 private:
  const data::ClassDict* dict_;
  PolicyConfig config_;
};

/// Everything the main-exit pass knows about one instance, handed to a
/// RoutingPolicy to decide where its inference ends. Only the fields the
/// policy declared via needed_signals() are guaranteed to be filled; the
/// rest stay at their defaults.
struct RouteSignals {
  /// Shannon entropy of the exit-1 softmax.
  float entropy = 0.0f;
  /// Max softmax score at exit 1.
  float main_confidence = 0.0f;
  /// Top-1 minus top-2 softmax score at exit 1.
  float margin = 0.0f;
  /// Exit-1 argmax in global label space (always filled).
  int main_prediction = -1;
};

/// Bitmask over the derived RouteSignals fields a policy reads, so the
/// engine can skip reducing softmax rows it will never look at.
/// main_prediction is not maskable — the IsHard detector always needs
/// the argmax — and main_confidence is computed anyway for Alg. 2's
/// exit-1 vs exit-2 comparison, so only entropy and margin actually
/// save work today.
enum RouteSignal : unsigned {
  kSignalEntropy = 1u << 0,
  kSignalConfidence = 1u << 1,
  kSignalMargin = 1u << 2,
};
inline constexpr unsigned kSignalsAll = kSignalEntropy | kSignalConfidence | kSignalMargin;

/// Pluggable routing stage of Alg. 2. Implementations must be
/// deterministic and thread-safe (route() is called concurrently from
/// runtime::InferenceSession workers).
class RoutingPolicy {
 public:
  virtual ~RoutingPolicy() = default;

  virtual Route route(const RouteSignals& signals) const = 0;

  /// Which RouteSignals fields route() reads. Defaults to all of them —
  /// safe for custom policies; override to let the engine skip the
  /// per-row reductions you never use.
  virtual unsigned needed_signals() const { return kSignalsAll; }

  /// Human-readable policy description for logs and reports.
  virtual std::string describe() const = 0;
};

/// The paper's rule, adapting InferencePolicy to the interface.
class EntropyThresholdPolicy : public RoutingPolicy {
 public:
  EntropyThresholdPolicy(const data::ClassDict& dict, PolicyConfig config)
      : policy_(dict, config) {}

  Route route(const RouteSignals& signals) const override {
    return policy_.route(signals.entropy, signals.main_prediction);
  }
  unsigned needed_signals() const override { return kSignalEntropy; }
  std::string describe() const override;

  const PolicyConfig& config() const { return policy_.config(); }
  const data::ClassDict& dict() const { return policy_.dict(); }

 private:
  InferencePolicy policy_;
};

/// Confidence-margin variant: an instance is "complex" when the gap
/// between the two best exit-1 scores is small (the classifier cannot
/// separate its top candidates), regardless of overall entropy.
struct MarginPolicyConfig {
  /// Instances with top1-top2 margin *below* this go to the cloud.
  /// 0 disables offloading (margins are non-negative).
  double margin_threshold = 0.0;
  bool cloud_available = false;
};

class ConfidenceMarginPolicy : public RoutingPolicy {
 public:
  ConfidenceMarginPolicy(const data::ClassDict& dict, MarginPolicyConfig config)
      : dict_(&dict), config_(config) {}

  Route route(const RouteSignals& signals) const override;
  unsigned needed_signals() const override { return kSignalMargin; }
  std::string describe() const override;

  const MarginPolicyConfig& config() const { return config_; }

 private:
  const data::ClassDict* dict_;
  MarginPolicyConfig config_;
};

/// Sends every instance through the extension path (never offloads).
/// This is the always-extended evaluation mode of the paper's Tables
/// II/V, and useful as a routing baseline.
class AlwaysExtendPolicy : public RoutingPolicy {
 public:
  Route route(const RouteSignals& signals) const override;
  unsigned needed_signals() const override { return 0; }
  std::string describe() const override { return "always-extend"; }
};

}  // namespace meanet::core
