// Routing policy of Alg. 2: where does an instance's inference end?
//
//   entropy(y1) > threshold and cloud available  -> cloud ("complex")
//   argmax(y1) in hard classes                   -> extension block
//   otherwise                                    -> main-block early exit
#pragma once

#include <limits>

#include "data/class_dict.h"

namespace meanet::core {

enum class Route {
  kMainExit,
  kExtensionExit,
  kCloud,
};

const char* route_name(Route route);

struct PolicyConfig {
  /// Instances with main-exit entropy above this go to the cloud.
  /// +infinity disables offloading even when the cloud is available.
  double entropy_threshold = std::numeric_limits<double>::infinity();
  /// Paper: "if Cloud is available and Entropy > threshold".
  bool cloud_available = false;
};

class InferencePolicy {
 public:
  InferencePolicy(const data::ClassDict& dict, PolicyConfig config)
      : dict_(&dict), config_(config) {}

  /// The IsHard detector of §III-B: hard iff the main-block argmax is a
  /// hard class.
  bool is_hard(int main_prediction) const { return dict_->is_hard(main_prediction); }

  Route route(float main_entropy, int main_prediction) const;

  const PolicyConfig& config() const { return config_; }
  const data::ClassDict& dict() const { return *dict_; }

 private:
  const data::ClassDict* dict_;
  PolicyConfig config_;
};

}  // namespace meanet::core
