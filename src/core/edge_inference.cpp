#include "core/edge_inference.h"

#include <stdexcept>

#include "tensor/ops.h"

namespace meanet::core {

EdgeInferenceEngine::EdgeInferenceEngine(MEANet& net, const data::ClassDict& dict,
                                         std::shared_ptr<const RoutingPolicy> policy)
    : net_(&net), dict_(&dict) {
  set_routing(std::move(policy));
}

void EdgeInferenceEngine::set_routing(std::shared_ptr<const RoutingPolicy> policy) {
  if (!policy) throw std::invalid_argument("EdgeInferenceEngine: null routing policy");
  routing_ = std::move(policy);
}

std::vector<InstanceDecision> EdgeInferenceEngine::infer(const Tensor& images) {
  return infer_batch(images).decisions;
}

BatchInference EdgeInferenceEngine::infer_batch(const Tensor& images) {
  const int batch = images.shape().batch();
  MainForward fwd = net_->forward_main(images, nn::Mode::kEval);
  // All routing signals land in engine-owned scratch reused across
  // calls — the per-batch hot path allocates nothing here.
  ops::softmax_into(fwd.logits, probs_);
  ops::row_argmax_into(probs_, pred_scratch_);
  // Exit-1 confidence is needed regardless of the policy (Alg. 2 keeps
  // the more confident of the two exits); entropy and margin are only
  // reduced when the routing policy declared it reads them.
  const unsigned needed = routing_->needed_signals();
  ops::row_max_into(probs_, conf_scratch_);
  if (needed & kSignalMargin) {
    ops::row_margin_into(probs_, margin_scratch_);
  } else {
    margin_scratch_.clear();
  }
  if (needed & kSignalEntropy) {
    ops::row_entropy_into(probs_, entropy_scratch_);
  } else {
    entropy_scratch_.clear();
  }

  std::vector<InstanceDecision> decisions(static_cast<std::size_t>(batch));
  extension_rows_.clear();
  for (int n = 0; n < batch; ++n) {
    InstanceDecision& d = decisions[static_cast<std::size_t>(n)];
    d.main_prediction = pred_scratch_[static_cast<std::size_t>(n)];
    d.entropy = entropy_scratch_.empty() ? 0.0f : entropy_scratch_[static_cast<std::size_t>(n)];
    d.main_confidence = conf_scratch_[static_cast<std::size_t>(n)];
    d.margin = margin_scratch_.empty() ? 0.0f : margin_scratch_[static_cast<std::size_t>(n)];
    RouteSignals signals;
    signals.entropy = d.entropy;
    signals.main_confidence = d.main_confidence;
    signals.margin = d.margin;
    signals.main_prediction = d.main_prediction;
    d.route = routing_->route(signals);
    d.prediction = d.main_prediction;  // default / cloud fallback
    if (d.route == Route::kExtensionExit) extension_rows_.push_back(n);
  }

  if (!extension_rows_.empty()) {
    // Batch all hard-detected instances through the extension path once.
    const Tensor sub_images = ops::gather_rows(images, extension_rows_);
    const Tensor sub_features = ops::gather_rows(fwd.features, extension_rows_);
    const Tensor y2 = net_->forward_extension(sub_images, sub_features, nn::Mode::kEval);
    ops::softmax_into(y2, ext_probs_);
    ops::row_argmax_into(ext_probs_, ext_pred_scratch_);
    ops::row_max_into(ext_probs_, ext_conf_scratch_);
    for (std::size_t i = 0; i < extension_rows_.size(); ++i) {
      InstanceDecision& d = decisions[static_cast<std::size_t>(extension_rows_[i])];
      d.extension_confidence = ext_conf_scratch_[i];
      // Alg. 2: keep the more confident of the two exits.
      if (d.extension_confidence > d.main_confidence) {
        d.prediction = dict_->to_global(ext_pred_scratch_[i]);
      }
    }
  }
  return BatchInference{std::move(decisions), std::move(fwd.features)};
}

std::vector<InstanceDecision> EdgeInferenceEngine::infer_dataset(const data::Dataset& dataset,
                                                                 int batch_size) {
  if (batch_size <= 0) throw std::invalid_argument("infer_dataset: batch_size");
  std::vector<InstanceDecision> all;
  all.reserve(static_cast<std::size_t>(dataset.size()));
  for (int start = 0; start < dataset.size(); start += batch_size) {
    const int count = std::min(batch_size, dataset.size() - start);
    const std::vector<InstanceDecision> part = infer(dataset.images.slice_batch(start, count));
    all.insert(all.end(), part.begin(), part.end());
  }
  return all;
}

void RouteCounts::add(Route route) {
  switch (route) {
    case Route::kMainExit:
      ++main_exit;
      return;
    case Route::kExtensionExit:
      ++extension_exit;
      return;
    case Route::kCloud:
      ++cloud;
      return;
  }
}

RouteCounts count_routes(const std::vector<InstanceDecision>& decisions) {
  RouteCounts counts;
  for (const InstanceDecision& d : decisions) counts.add(d.route);
  return counts;
}

}  // namespace meanet::core
