#include "core/edge_inference.h"

#include <stdexcept>

#include "tensor/ops.h"

namespace meanet::core {

namespace {

/// Copies the listed batch rows of `source` into a new tensor.
Tensor gather_rows(const Tensor& source, const std::vector<int>& rows) {
  std::vector<int> dims = source.shape().dims();
  dims[0] = static_cast<int>(rows.size());
  Tensor out{Shape(dims)};
  const std::int64_t stride = source.numel() / source.shape().dim(0);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const float* src = source.data() + rows[i] * stride;
    std::copy(src, src + stride, out.data() + static_cast<std::int64_t>(i) * stride);
  }
  return out;
}

}  // namespace

std::vector<InstanceDecision> EdgeInferenceEngine::infer(const Tensor& images) {
  const int batch = images.shape().batch();
  const MainForward fwd = net_->forward_main(images, nn::Mode::kEval);
  const Tensor p1 = ops::softmax(fwd.logits);
  const std::vector<int> pred1 = ops::row_argmax(p1);
  const std::vector<float> conf1 = ops::row_max(p1);
  const std::vector<float> entropy = ops::row_entropy(p1);

  std::vector<InstanceDecision> decisions(static_cast<std::size_t>(batch));
  std::vector<int> extension_rows;
  for (int n = 0; n < batch; ++n) {
    InstanceDecision& d = decisions[static_cast<std::size_t>(n)];
    d.main_prediction = pred1[static_cast<std::size_t>(n)];
    d.entropy = entropy[static_cast<std::size_t>(n)];
    d.main_confidence = conf1[static_cast<std::size_t>(n)];
    d.route = policy_.route(d.entropy, d.main_prediction);
    d.prediction = d.main_prediction;  // default / cloud fallback
    if (d.route == Route::kExtensionExit) extension_rows.push_back(n);
  }

  if (!extension_rows.empty()) {
    // Batch all hard-detected instances through the extension path once.
    const Tensor sub_images = gather_rows(images, extension_rows);
    const Tensor sub_features = gather_rows(fwd.features, extension_rows);
    const Tensor y2 = net_->forward_extension(sub_images, sub_features, nn::Mode::kEval);
    const Tensor p2 = ops::softmax(y2);
    const std::vector<int> pred2 = ops::row_argmax(p2);
    const std::vector<float> conf2 = ops::row_max(p2);
    const data::ClassDict& dict = policy_.dict();
    for (std::size_t i = 0; i < extension_rows.size(); ++i) {
      InstanceDecision& d = decisions[static_cast<std::size_t>(extension_rows[i])];
      d.extension_confidence = conf2[i];
      // Alg. 2: keep the more confident of the two exits.
      if (d.extension_confidence > d.main_confidence) {
        d.prediction = dict.to_global(pred2[i]);
      }
    }
  }
  return decisions;
}

std::vector<InstanceDecision> EdgeInferenceEngine::infer_dataset(const data::Dataset& dataset,
                                                                 int batch_size) {
  if (batch_size <= 0) throw std::invalid_argument("infer_dataset: batch_size");
  std::vector<InstanceDecision> all;
  all.reserve(static_cast<std::size_t>(dataset.size()));
  for (int start = 0; start < dataset.size(); start += batch_size) {
    const int count = std::min(batch_size, dataset.size() - start);
    const std::vector<InstanceDecision> part = infer(dataset.images.slice_batch(start, count));
    all.insert(all.end(), part.begin(), part.end());
  }
  return all;
}

RouteCounts count_routes(const std::vector<InstanceDecision>& decisions) {
  RouteCounts counts;
  for (const InstanceDecision& d : decisions) {
    switch (d.route) {
      case Route::kMainExit:
        ++counts.main_exit;
        break;
      case Route::kExtensionExit:
        ++counts.extension_exit;
        break;
      case Route::kCloud:
        ++counts.cloud;
        break;
    }
  }
  return counts;
}

}  // namespace meanet::core
