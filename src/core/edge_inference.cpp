#include "core/edge_inference.h"

#include <stdexcept>

#include "tensor/ops.h"

namespace meanet::core {

EdgeInferenceEngine::EdgeInferenceEngine(MEANet& net, const data::ClassDict& dict,
                                         std::shared_ptr<const RoutingPolicy> policy)
    : net_(&net), dict_(&dict) {
  set_routing(std::move(policy));
}

void EdgeInferenceEngine::set_routing(std::shared_ptr<const RoutingPolicy> policy) {
  if (!policy) throw std::invalid_argument("EdgeInferenceEngine: null routing policy");
  routing_ = std::move(policy);
}

std::vector<InstanceDecision> EdgeInferenceEngine::infer(const Tensor& images) {
  return infer_batch(images).decisions;
}

BatchInference EdgeInferenceEngine::infer_batch(const Tensor& images) {
  const int batch = images.shape().batch();
  MainForward fwd = net_->forward_main(images, nn::Mode::kEval);
  const Tensor p1 = ops::softmax(fwd.logits);
  const std::vector<int> pred1 = ops::row_argmax(p1);
  // Exit-1 confidence is needed regardless of the policy (Alg. 2 keeps
  // the more confident of the two exits); entropy and margin are only
  // reduced when the routing policy declared it reads them.
  const unsigned needed = routing_->needed_signals();
  const std::vector<float> conf1 = ops::row_max(p1);
  const std::vector<float> margin1 =
      (needed & kSignalMargin) ? ops::row_margin(p1) : std::vector<float>();
  const std::vector<float> entropy =
      (needed & kSignalEntropy) ? ops::row_entropy(p1) : std::vector<float>();

  std::vector<InstanceDecision> decisions(static_cast<std::size_t>(batch));
  std::vector<int> extension_rows;
  for (int n = 0; n < batch; ++n) {
    InstanceDecision& d = decisions[static_cast<std::size_t>(n)];
    d.main_prediction = pred1[static_cast<std::size_t>(n)];
    d.entropy = entropy.empty() ? 0.0f : entropy[static_cast<std::size_t>(n)];
    d.main_confidence = conf1[static_cast<std::size_t>(n)];
    d.margin = margin1.empty() ? 0.0f : margin1[static_cast<std::size_t>(n)];
    RouteSignals signals;
    signals.entropy = d.entropy;
    signals.main_confidence = d.main_confidence;
    signals.margin = d.margin;
    signals.main_prediction = d.main_prediction;
    d.route = routing_->route(signals);
    d.prediction = d.main_prediction;  // default / cloud fallback
    if (d.route == Route::kExtensionExit) extension_rows.push_back(n);
  }

  if (!extension_rows.empty()) {
    // Batch all hard-detected instances through the extension path once.
    const Tensor sub_images = ops::gather_rows(images, extension_rows);
    const Tensor sub_features = ops::gather_rows(fwd.features, extension_rows);
    const Tensor y2 = net_->forward_extension(sub_images, sub_features, nn::Mode::kEval);
    const Tensor p2 = ops::softmax(y2);
    const std::vector<int> pred2 = ops::row_argmax(p2);
    const std::vector<float> conf2 = ops::row_max(p2);
    for (std::size_t i = 0; i < extension_rows.size(); ++i) {
      InstanceDecision& d = decisions[static_cast<std::size_t>(extension_rows[i])];
      d.extension_confidence = conf2[i];
      // Alg. 2: keep the more confident of the two exits.
      if (d.extension_confidence > d.main_confidence) {
        d.prediction = dict_->to_global(pred2[i]);
      }
    }
  }
  return BatchInference{std::move(decisions), std::move(fwd.features)};
}

std::vector<InstanceDecision> EdgeInferenceEngine::infer_dataset(const data::Dataset& dataset,
                                                                 int batch_size) {
  if (batch_size <= 0) throw std::invalid_argument("infer_dataset: batch_size");
  std::vector<InstanceDecision> all;
  all.reserve(static_cast<std::size_t>(dataset.size()));
  for (int start = 0; start < dataset.size(); start += batch_size) {
    const int count = std::min(batch_size, dataset.size() - start);
    const std::vector<InstanceDecision> part = infer(dataset.images.slice_batch(start, count));
    all.insert(all.end(), part.begin(), part.end());
  }
  return all;
}

void RouteCounts::add(Route route) {
  switch (route) {
    case Route::kMainExit:
      ++main_exit;
      return;
    case Route::kExtensionExit:
      ++extension_exit;
      return;
    case Route::kCloud:
      ++cloud;
      return;
  }
}

RouteCounts count_routes(const std::vector<InstanceDecision>& decisions) {
  RouteCounts counts;
  for (const InstanceDecision& d : decisions) counts.add(d.route);
  return counts;
}

}  // namespace meanet::core
