#include "core/meanet.h"

#include <stdexcept>

namespace meanet::core {

MEANet::MEANet(nn::Sequential main_trunk, nn::Sequential main_exit, nn::Sequential adaptive,
               nn::Sequential extension, FusionMode fusion)
    : main_trunk_(std::move(main_trunk)),
      main_exit_(std::move(main_exit)),
      adaptive_(std::move(adaptive)),
      extension_(std::move(extension)),
      fusion_(fusion) {}

MainForward MEANet::forward_main(const Tensor& images, nn::Mode mode) {
  MainForward out;
  out.features = main_trunk_.forward(images, mode);
  out.logits = main_exit_.forward(out.features, mode);
  // Eval forwards must write no state at all — the serving workers run
  // them concurrently on one shared net (see nn/layer.h).
  if (mode == nn::Mode::kTrain) main_cached_ = true;
  return out;
}

Tensor MEANet::fuse(const Tensor& features, const Tensor& adaptive_out) const {
  if (fusion_ == FusionMode::kSum) {
    if (features.shape() != adaptive_out.shape()) {
      throw std::invalid_argument("MEANet: sum fusion requires matching shapes, got " +
                                  features.shape().to_string() + " vs " +
                                  adaptive_out.shape().to_string());
    }
    return features + adaptive_out;
  }
  // Channel concatenation.
  const Shape& fs = features.shape();
  const Shape& as = adaptive_out.shape();
  if (fs.batch() != as.batch() || fs.height() != as.height() || fs.width() != as.width()) {
    throw std::invalid_argument("MEANet: concat fusion requires matching spatial shapes");
  }
  Tensor fused(Shape{fs.batch(), fs.channels() + as.channels(), fs.height(), fs.width()});
  const std::int64_t hw = static_cast<std::int64_t>(fs.height()) * fs.width();
  for (int n = 0; n < fs.batch(); ++n) {
    float* dst = fused.data() +
                 static_cast<std::int64_t>(n) * (fs.channels() + as.channels()) * hw;
    const float* f = features.data() + static_cast<std::int64_t>(n) * fs.channels() * hw;
    const float* a = adaptive_out.data() + static_cast<std::int64_t>(n) * as.channels() * hw;
    std::copy(f, f + fs.channels() * hw, dst);
    std::copy(a, a + as.channels() * hw, dst + fs.channels() * hw);
  }
  return fused;
}

Tensor MEANet::forward_extension(const Tensor& images, const Tensor& features, nn::Mode mode) {
  const Tensor f2 = adaptive_.forward(images, mode);
  if (mode == nn::Mode::kTrain) cached_feature_shape_ = features.shape();
  const Tensor fused = fuse(features, f2);
  Tensor logits = extension_.forward(fused, mode);
  if (mode == nn::Mode::kTrain) extension_cached_ = true;
  return logits;
}

void MEANet::backward_main(const Tensor& grad_logits) {
  if (!main_cached_) throw std::logic_error("MEANet::backward_main before forward_main");
  const Tensor grad_features = main_exit_.backward(grad_logits);
  main_trunk_.backward(grad_features);
  main_cached_ = false;
}

void MEANet::backward_extension(const Tensor& grad_logits, bool into_main) {
  if (!extension_cached_) {
    throw std::logic_error("MEANet::backward_extension before forward_extension");
  }
  const Tensor grad_fused = extension_.backward(grad_logits);
  Tensor grad_f2;
  Tensor grad_features;
  if (fusion_ == FusionMode::kSum) {
    grad_f2 = grad_fused;
    if (into_main) grad_features = grad_fused;
  } else {
    const Shape& fs = cached_feature_shape_;
    const int a_channels = grad_fused.shape().channels() - fs.channels();
    const std::int64_t hw = static_cast<std::int64_t>(fs.height()) * fs.width();
    grad_f2 = Tensor(Shape{fs.batch(), a_channels, fs.height(), fs.width()});
    if (into_main) grad_features = Tensor(fs);
    for (int n = 0; n < fs.batch(); ++n) {
      const float* src = grad_fused.data() +
                         static_cast<std::int64_t>(n) * (fs.channels() + a_channels) * hw;
      if (into_main) {
        std::copy(src, src + fs.channels() * hw,
                  grad_features.data() + static_cast<std::int64_t>(n) * fs.channels() * hw);
      }
      std::copy(src + fs.channels() * hw, src + (fs.channels() + a_channels) * hw,
                grad_f2.data() + static_cast<std::int64_t>(n) * a_channels * hw);
    }
  }
  adaptive_.backward(grad_f2);
  if (into_main) {
    // Joint-optimization baseline: the extension loss also reaches the
    // main trunk. Add the exit-path gradient separately via
    // backward_main if a main loss is in play.
    main_trunk_.backward(grad_features);
  }
  extension_cached_ = false;
}

void MEANet::freeze_main() {
  main_trunk_.set_frozen(true);
  main_exit_.set_frozen(true);
}

void MEANet::unfreeze_main() {
  main_trunk_.set_frozen(false);
  main_exit_.set_frozen(false);
}

std::vector<nn::Parameter*> MEANet::main_parameters() {
  std::vector<nn::Parameter*> out = main_trunk_.parameters();
  for (nn::Parameter* p : main_exit_.parameters()) out.push_back(p);
  return out;
}

std::vector<nn::Parameter*> MEANet::edge_parameters() {
  std::vector<nn::Parameter*> out = adaptive_.parameters();
  for (nn::Parameter* p : extension_.parameters()) out.push_back(p);
  return out;
}

std::vector<nn::Parameter*> MEANet::all_parameters() {
  std::vector<nn::Parameter*> out = main_parameters();
  for (nn::Parameter* p : edge_parameters()) out.push_back(p);
  return out;
}

int MEANet::num_classes(const Shape& image_shape) const {
  const Shape f = main_trunk_.output_shape(image_shape);
  return main_exit_.output_shape(f).dim(-1);
}

int MEANet::num_hard_classes(const Shape& image_shape) const {
  Shape f = main_trunk_.output_shape(image_shape);
  if (fusion_ == FusionMode::kConcat) {
    const Shape a = adaptive_.output_shape(image_shape);
    f = Shape{f.batch(), f.channels() + a.channels(), f.height(), f.width()};
  }
  return extension_.output_shape(f).dim(-1);
}

}  // namespace meanet::core
