// Training algorithms (paper §III-A, Alg. 1).
//
// Three optimization regimes for a multi-exit network are implemented:
//  * blockwise (the paper's approach): the main block is trained first
//    (at the "cloud"), then frozen; the adaptive + extension blocks are
//    trained on hard-class data only;
//  * joint (BranchyNet-style baseline): all parameters trained together
//    on a weighted sum of exit losses;
//  * separate: train the backbone to convergence, freeze it, then train
//    the remaining exits (a middle ground used for comparisons).
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "core/complexity.h"
#include "core/meanet.h"
#include "data/augment.h"
#include "data/batcher.h"
#include "data/class_dict.h"
#include "data/dataset.h"
#include "nn/loss.h"
#include "nn/lr_schedule.h"
#include "nn/optimizer.h"

namespace meanet::core {

struct TrainOptions {
  int epochs = 10;
  int batch_size = 32;
  nn::SgdOptions sgd{0.05f, 0.9f, 5e-4f};
  /// Epochs (1-based) at which lr is multiplied by `lr_gamma` (the paper
  /// uses {60,120,160} for CIFAR and {30,100} for ImageNet).
  std::vector<int> milestones;
  float lr_gamma = 0.1f;
  /// Optional train-time augmentation (random crop / flip), applied to
  /// each batch before the forward pass.
  std::optional<data::AugmentOptions> augment;
};

struct EpochStats {
  float loss = 0.0f;
  double accuracy = 0.0;
};

using TrainCurve = std::vector<EpochStats>;

/// Trains a plain classifier with softmax cross-entropy + SGD.
TrainCurve train_classifier(nn::Sequential& net, const data::Dataset& train,
                            const TrainOptions& options, util::Rng& rng);

/// Orchestrates Alg. 1 end to end on an MEANet.
class DistributedTrainer {
 public:
  explicit DistributedTrainer(MEANet& net) : net_(net) {}

  /// Alg. 1 step 1 (edge half): trains main trunk + exit on the full
  /// dataset. In the paper this runs at the cloud for Model B and can
  /// run at the edge for Model A — the arithmetic is identical.
  TrainCurve train_main(const data::Dataset& train, const TrainOptions& options, util::Rng& rng);

  /// Alg. 1 step 2-4: profiles the main block on `validation`, selects
  /// the `num_hard` lowest-precision classes and builds the ClassDict.
  data::ClassDict select_hard_classes_from_validation(const data::Dataset& validation,
                                                      int num_hard, int batch_size = 64);

  /// Alg. 1 steps 5-8: filters `train` to hard-class instances, remaps
  /// labels, freezes the main block, and trains adaptive + extension.
  TrainCurve train_edge_blocks(const data::Dataset& train, const data::ClassDict& dict,
                               const TrainOptions& options, util::Rng& rng);

  /// Joint-optimization baseline: all blocks trained together; the exit-2
  /// loss is applied to hard-class instances (weighted `w2`), exit-1 loss
  /// to all instances (weighted `w1`).
  TrainCurve train_joint(const data::Dataset& train, const data::ClassDict& dict,
                         const TrainOptions& options, util::Rng& rng, float w1 = 1.0f,
                         float w2 = 1.0f);

  /// Separate-optimization baseline (paper §III-A): first train all
  /// convolutional blocks on the loss at the final (extension) exit,
  /// then freeze them and train the remaining exit (exit 1) alone.
  /// Returns the concatenated curves of the two phases.
  TrainCurve train_separate(const data::Dataset& train, const data::ClassDict& dict,
                            const TrainOptions& options, util::Rng& rng);

 private:
  MEANet& net_;
};

}  // namespace meanet::core
