// Numeric kernels: GEMM, im2col/col2im, softmax-family ops.
//
// All convolution in the library is im2col + GEMM; the GEMM is a
// cache-friendly single-threaded kernel (the target platform for the
// experiments is a single-core edge-class CPU). Backward passes use the
// transposed variants.
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace meanet::ops {

/// C = alpha * op(A) * op(B) + beta * C.
/// A is [M, K] after optional transpose, B is [K, N] after optional
/// transpose, C is [M, N]. C must be pre-sized; beta = 0 overwrites.
void gemm(bool transpose_a, bool transpose_b, int m, int n, int k, float alpha,
          const float* a, int lda, const float* b, int ldb, float beta, float* c, int ldc);

/// Convenience wrapper on rank-2 tensors: returns op(A)*op(B).
Tensor matmul(const Tensor& a, const Tensor& b, bool transpose_a = false,
              bool transpose_b = false);

/// Geometry of a convolution; shared by conv layers and the stats counter.
struct ConvGeometry {
  int in_channels = 0;
  int in_height = 0;
  int in_width = 0;
  int kernel = 1;
  int stride = 1;
  int padding = 0;

  int out_height() const { return (in_height + 2 * padding - kernel) / stride + 1; }
  int out_width() const { return (in_width + 2 * padding - kernel) / stride + 1; }
  /// Rows of the im2col matrix (= in_channels * kernel^2).
  int patch_size() const { return in_channels * kernel * kernel; }
};

/// Expands one image [C, H, W] into a patch matrix
/// [C*k*k, out_h*out_w] (column-major over output positions).
/// `columns` must have patch_size() * out_h * out_w elements.
void im2col(const float* image, const ConvGeometry& g, float* columns);

/// Inverse scatter-add of im2col: accumulates patch-matrix gradients back
/// into an image gradient buffer of size C*H*W (which must be zeroed by
/// the caller if accumulation from zero is desired).
void col2im(const float* columns, const ConvGeometry& g, float* image);

/// Row-wise softmax of a [rows, cols] tensor (numerically stabilized).
Tensor softmax(const Tensor& logits);

/// Row-wise log-softmax of a [rows, cols] tensor.
Tensor log_softmax(const Tensor& logits);

/// Shannon entropy (natural log) of each row of a probability matrix.
std::vector<float> row_entropy(const Tensor& probabilities);

/// Index of the max element in each row of a [rows, cols] tensor.
std::vector<int> row_argmax(const Tensor& values);

/// Max element of each row of a [rows, cols] tensor.
std::vector<float> row_max(const Tensor& values);

/// Top-1 minus top-2 element of each row of a [rows, cols] tensor (the
/// confidence margin when applied to softmax scores). Rows with a single
/// column have margin equal to their only element.
std::vector<float> row_margin(const Tensor& values);

/// Copies the listed batch rows of `source` (any rank >= 1) into a new
/// tensor of shape [rows.size(), ...]. Used to route instance subsets
/// (extension batches, offload payloads).
Tensor gather_rows(const Tensor& source, const std::vector<int>& rows);

}  // namespace meanet::ops
