// Numeric kernels: GEMM, im2col/col2im, softmax-family ops.
//
// All convolution in the library is im2col + GEMM. The GEMM is a
// blocked, register-tiled kernel with packed operands (scratch from the
// per-thread ops::Workspace, reused across calls), a runtime-dispatched
// microkernel (tensor/simd.h: AVX2/NEON 6x16 or the portable 4x16),
// and can fan the row range out over ops::gemm_threads() slots of the
// persistent ops::GemmPool; the partition is by output rows and the
// accumulation order is fixed, so results are bit-identical for every
// thread count under a fixed kernel. Backward passes use the
// transposed variants. The int8 quantized serving path lives in
// tensor/qgemm.h.
//
// The pre-GEMM reference kernels (simple triple loops, per-pixel direct
// convolution) stay available behind the runtime naive-kernels flag —
// set MEANET_NAIVE_KERNELS=1 in the environment or call
// set_naive_kernels(true). They are the parity oracle for the tests and
// the comparison column in bench/perf_forward.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace meanet::ops {

// ----- Kernel selection ------------------------------------------------

/// True while the reference (naive) kernels serve gemm() and the conv
/// forwards. Initialized from the MEANET_NAIVE_KERNELS environment
/// variable; toggled at runtime by the parity tests and benches.
bool naive_kernels();
void set_naive_kernels(bool naive);

/// GemmPool slots the blocked GEMM may fan out over (1 = run on the
/// calling thread). Initialized from MEANET_GEMM_THREADS — parsed
/// strictly; 0 means "auto" (hardware concurrency); invalid or
/// out-of-range values warn on stderr and are clamped — defaulting to
/// 1: serving already parallelizes over session workers, so per-call
/// GEMM threading is an opt-in for single-stream callers.
/// set_gemm_threads(0) is the same "auto". Small problems always stay
/// on the calling thread regardless.
int gemm_threads();
void set_gemm_threads(int threads);

// ----- GEMM ------------------------------------------------------------

/// C = alpha * op(A) * op(B) + beta * C.
/// A is [M, K] after optional transpose, B is [K, N] after optional
/// transpose, C is [M, N]. C must be pre-sized; beta = 0 overwrites.
void gemm(bool transpose_a, bool transpose_b, int m, int n, int k, float alpha,
          const float* a, int lda, const float* b, int ldb, float beta, float* c, int ldc);

/// Convenience wrapper on rank-2 tensors: returns op(A)*op(B).
Tensor matmul(const Tensor& a, const Tensor& b, bool transpose_a = false,
              bool transpose_b = false);

/// Geometry of a convolution; shared by conv layers and the stats counter.
struct ConvGeometry {
  int in_channels = 0;
  int in_height = 0;
  int in_width = 0;
  int kernel = 1;
  int stride = 1;
  int padding = 0;

  int out_height() const { return (in_height + 2 * padding - kernel) / stride + 1; }
  int out_width() const { return (in_width + 2 * padding - kernel) / stride + 1; }
  /// Rows of the im2col matrix (= in_channels * kernel^2).
  int patch_size() const { return in_channels * kernel * kernel; }
};

/// Expands one image [C, H, W] into a patch matrix
/// [C*k*k, out_h*out_w] (column-major over output positions).
/// `columns` must have patch_size() * out_h * out_w elements.
void im2col(const float* image, const ConvGeometry& g, float* columns);

/// im2col over a u8-quantized image for the int8 serving path. Padding
/// positions are filled with qgemm.h's activation zero point (the code
/// a float 0 quantizes to), so quantize-then-im2col produces exactly
/// the byte matrix im2col-then-quantize would — at a quarter of the
/// memory traffic and without the float scratch.
void im2col_u8(const std::uint8_t* image, const ConvGeometry& g, std::uint8_t* columns);

/// Inverse scatter-add of im2col: accumulates patch-matrix gradients back
/// into an image gradient buffer of size C*H*W (which must be zeroed by
/// the caller if accumulation from zero is desired).
void col2im(const float* columns, const ConvGeometry& g, float* image);

// ----- Row-wise reductions --------------------------------------------
//
// Each reduction has an _into variant writing a caller-owned buffer —
// the serving engines keep those buffers across calls so the per-batch
// routing signals allocate nothing — plus the allocating convenience
// wrapper.

/// Row-wise softmax of a [rows, cols] tensor (numerically stabilized).
/// `out` is resized to match `logits`; in-place (&out == &logits) is
/// allowed.
void softmax_into(const Tensor& logits, Tensor& out);
Tensor softmax(const Tensor& logits);

/// Row-wise log-softmax of a [rows, cols] tensor.
Tensor log_softmax(const Tensor& logits);

/// Shannon entropy (natural log) of each row of a probability matrix.
void row_entropy_into(const Tensor& probabilities, std::vector<float>& out);
std::vector<float> row_entropy(const Tensor& probabilities);

/// Index of the max element in each row of a [rows, cols] tensor.
void row_argmax_into(const Tensor& values, std::vector<int>& out);
std::vector<int> row_argmax(const Tensor& values);

/// Max element of each row of a [rows, cols] tensor.
void row_max_into(const Tensor& values, std::vector<float>& out);
std::vector<float> row_max(const Tensor& values);

/// Top-1 minus top-2 element of each row of a [rows, cols] tensor (the
/// confidence margin when applied to softmax scores). Rows with a single
/// column have margin equal to their only element.
void row_margin_into(const Tensor& values, std::vector<float>& out);
std::vector<float> row_margin(const Tensor& values);

/// Copies the listed batch rows of `source` (any rank >= 1) into a new
/// tensor of shape [rows.size(), ...]. Used to route instance subsets
/// (extension batches, offload payloads).
Tensor gather_rows(const Tensor& source, const std::vector<int>& rows);

}  // namespace meanet::ops
