// Numeric kernels: GEMM, im2col/col2im, softmax-family ops.
//
// All convolution in the library is im2col + GEMM. The GEMM is a
// blocked, register-tiled kernel with packed operands (scratch from the
// per-thread ops::Workspace, reused across calls), a runtime-dispatched
// microkernel (tensor/simd.h: AVX2/NEON 6x16 or the portable 4x16),
// and can fan the row range out over ops::gemm_threads() slots of the
// persistent ops::GemmPool; the partition is by output rows and the
// accumulation order is fixed, so results are bit-identical for every
// thread count under a fixed kernel. Backward passes use the
// transposed variants. The int8 quantized serving path lives in
// tensor/qgemm.h.
//
// The pre-GEMM reference kernels (simple triple loops, per-pixel direct
// convolution) stay available behind the runtime naive-kernels flag —
// set MEANET_NAIVE_KERNELS=1 in the environment or call
// set_naive_kernels(true). They are the parity oracle for the tests and
// the comparison column in bench/perf_forward.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace meanet::ops {

// ----- Kernel selection ------------------------------------------------

/// True while the reference (naive) kernels serve gemm() and the conv
/// forwards. Initialized from the MEANET_NAIVE_KERNELS environment
/// variable; toggled at runtime by the parity tests and benches.
bool naive_kernels();
void set_naive_kernels(bool naive);

/// GemmPool slots the blocked GEMM may fan out over (1 = run on the
/// calling thread). Initialized from MEANET_GEMM_THREADS — parsed
/// strictly; 0 means "auto" (hardware concurrency); invalid or
/// out-of-range values warn on stderr and are clamped — defaulting to
/// 1: serving already parallelizes over session workers, so per-call
/// GEMM threading is an opt-in for single-stream callers.
/// set_gemm_threads(0) is the same "auto". Small problems always stay
/// on the calling thread regardless.
int gemm_threads();
void set_gemm_threads(int threads);

/// True while conv forwards fold the whole batch into one im2col +
/// GEMM (gemm_batched_nchw) instead of issuing one small GEMM per
/// image. Default on; MEANET_BATCHED_CONV=0 (or set_batched_conv
/// (false)) restores the per-image loop — the comparison baseline of
/// bench/perf_forward's batch sweep. The float output is bit-identical
/// either way; the int8 path's activation scale becomes per-batch
/// instead of per-image (see conv2d.cpp).
bool batched_conv();
void set_batched_conv(bool batched);

/// Cost-model gate of the float whole-batch path for a layer whose
/// per-image GEMM has `cols_per_image` columns: batching pays when one
/// image underfills the GEMM's NC panel (then the batched GEMM packs
/// the A (weight) panel once per NC block instead of once per image)
/// or when the pool is multi-threaded (one wide GEMM fans out better
/// than many narrow ones). When neither holds, the batched tile only
/// adds cache footprint, so conv falls back to the per-image loop —
/// results are bit-identical either way, this is purely a speed
/// choice.
bool batched_conv_pays(int cols_per_image);

/// Byte budget of the whole-batch im2col column tile. A batch whose
/// column matrix would exceed this is processed in per-image chunks
/// that fit (always at least one image), bounding workspace growth on
/// batch-256 soaks; chunking never changes results (each image's
/// accumulation is independent and the int8 activation scale is
/// computed over the whole batch before chunking). Default 64 MiB;
/// MEANET_BATCH_COLUMNS_MB overrides at startup,
/// set_batched_columns_budget(0) restores the default.
std::size_t batched_columns_budget();
void set_batched_columns_budget(std::size_t bytes);

// ----- GEMM ------------------------------------------------------------

/// C = alpha * op(A) * op(B) + beta * C.
/// A is [M, K] after optional transpose, B is [K, N] after optional
/// transpose, C is [M, N]. C must be pre-sized; beta = 0 overwrites.
void gemm(bool transpose_a, bool transpose_b, int m, int n, int k, float alpha,
          const float* a, int lda, const float* b, int ldb, float beta, float* c, int ldc);

/// Convenience wrapper on rank-2 tensors: returns op(A)*op(B).
Tensor matmul(const Tensor& a, const Tensor& b, bool transpose_a = false,
              bool transpose_b = false);

/// One GEMM over a whole batch of im2col column blocks, writing
/// straight into NCHW output. A is [m, k] (lda = row stride), B is the
/// batched column matrix [k, batch * cols_per_image] (row stride
/// batch * cols_per_image); the C element (i, j) lands at
///   c + (j / cols_per_image) * c_image_stride
///     + i * ldc + (j % cols_per_image)
/// so image b's [m, cols_per_image] block sits at its own NCHW offset
/// with no epilogue copy. Overwrites the output region (beta = 0
/// semantics). Per C element the k-blocking and accumulation order are
/// exactly those of a per-image gemm() call, so the result is
/// bit-identical to looping gemm() over the batch at every GemmPool
/// width (tiles that straddle an image boundary bounce through a
/// register-sized tile with the same add-into-C arithmetic).
void gemm_batched_nchw(int m, int k, int batch, int cols_per_image, const float* a, int lda,
                       const float* b, float* c, std::int64_t c_image_stride, int ldc);

/// Geometry of a convolution; shared by conv layers and the stats counter.
struct ConvGeometry {
  int in_channels = 0;
  int in_height = 0;
  int in_width = 0;
  int kernel = 1;
  int stride = 1;
  int padding = 0;

  int out_height() const { return (in_height + 2 * padding - kernel) / stride + 1; }
  int out_width() const { return (in_width + 2 * padding - kernel) / stride + 1; }
  /// Rows of the im2col matrix (= in_channels * kernel^2).
  int patch_size() const { return in_channels * kernel * kernel; }
};

/// Expands one image [C, H, W] into a patch matrix
/// [C*k*k, out_h*out_w] (column-major over output positions).
/// `columns` must have patch_size() * out_h * out_w elements.
void im2col(const float* image, const ConvGeometry& g, float* columns);

/// im2col over a u8-quantized image for the int8 serving path. Padding
/// positions are filled with qgemm.h's activation zero point (the code
/// a float 0 quantizes to), so quantize-then-im2col produces exactly
/// the byte matrix im2col-then-quantize would — at a quarter of the
/// memory traffic and without the float scratch.
void im2col_u8(const std::uint8_t* image, const ConvGeometry& g, std::uint8_t* columns);

/// Whole-batch im2col: image n (NCHW images `image_stride` floats
/// apart) lands in columns [n*out_hw, (n+1)*out_hw) of one
/// [patch_size, batch*out_hw] matrix — the B operand of
/// gemm_batched_nchw. Each image's block holds exactly what a
/// per-image im2col would have produced.
void im2col_batched(const float* images, std::int64_t image_stride, int batch,
                    const ConvGeometry& g, float* columns);

/// Byte-domain twin of im2col_batched for the int8 serving path.
void im2col_u8_batched(const std::uint8_t* images, std::int64_t image_stride, int batch,
                       const ConvGeometry& g, std::uint8_t* columns);

/// Inverse scatter-add of im2col: accumulates patch-matrix gradients back
/// into an image gradient buffer of size C*H*W (which must be zeroed by
/// the caller if accumulation from zero is desired).
void col2im(const float* columns, const ConvGeometry& g, float* image);

// ----- Row-wise reductions --------------------------------------------
//
// Each reduction has an _into variant writing a caller-owned buffer —
// the serving engines keep those buffers across calls so the per-batch
// routing signals allocate nothing — plus the allocating convenience
// wrapper.

/// Row-wise softmax of a [rows, cols] tensor (numerically stabilized).
/// `out` is resized to match `logits`; in-place (&out == &logits) is
/// allowed.
void softmax_into(const Tensor& logits, Tensor& out);
Tensor softmax(const Tensor& logits);

/// Row-wise log-softmax of a [rows, cols] tensor.
Tensor log_softmax(const Tensor& logits);

/// Shannon entropy (natural log) of each row of a probability matrix.
void row_entropy_into(const Tensor& probabilities, std::vector<float>& out);
std::vector<float> row_entropy(const Tensor& probabilities);

/// Index of the max element in each row of a [rows, cols] tensor.
void row_argmax_into(const Tensor& values, std::vector<int>& out);
std::vector<int> row_argmax(const Tensor& values);

/// Max element of each row of a [rows, cols] tensor.
void row_max_into(const Tensor& values, std::vector<float>& out);
std::vector<float> row_max(const Tensor& values);

/// Top-1 minus top-2 element of each row of a [rows, cols] tensor (the
/// confidence margin when applied to softmax scores). Rows with a single
/// column have margin equal to their only element.
void row_margin_into(const Tensor& values, std::vector<float>& out);
std::vector<float> row_margin(const Tensor& values);

/// Copies the listed batch rows of `source` (any rank >= 1) into a new
/// tensor of shape [rows.size(), ...]. Used to route instance subsets
/// (extension batches, offload payloads).
Tensor gather_rows(const Tensor& source, const std::vector<int>& rows);

}  // namespace meanet::ops
