// Internal interface between the int8 GEMM driver (qgemm.cpp) and the
// VNNI kernel translation unit. Not part of the public ops API.
#pragma once

#include <cstdint>

namespace meanet::ops::detail {

/// One whole qgemm call, with the activations already packed into
/// 16-column panels of 4-deep k groups: pack[(jb/16) * kgroups * 64 +
/// g * 64 + j * 4 + kk] = act[4g + kk, jb + j] (zero-filled past n and
/// k). 64 bytes per (panel, group) = exactly the two 256-bit vpdpbusd
/// operands covering 16 output columns.
struct QgemmArgs {
  int rows = 0;
  int n = 0;
  int kgroups = 0;               // k_padded / 4
  const std::int8_t* wq = nullptr;       // [rows, 4 * kgroups]
  const float* scales = nullptr;         // per-row weight scale
  const std::int32_t* row_sums = nullptr;
  const std::uint8_t* pack = nullptr;
  float a_scale = 0.0f;
  const float* bias = nullptr;           // null = 0
  float* c = nullptr;
  int ldc = 0;
};

#if defined(__x86_64__) || defined(_M_X64)
/// 4-row x 16-column tiles over vpdpbusd; the two entry points differ
/// only in which ISA extension encodes the instruction. Identical
/// arithmetic — and identical results to the scalar tier, since s32
/// accumulation is exact and the epilogue FMA matches std::fma.
void qgemm_avx512vnni(const QgemmArgs& args);
void qgemm_avxvnni(const QgemmArgs& args);
#endif

}  // namespace meanet::ops::detail
