// Tensor shapes.
//
// The library works with up to 4-D row-major shapes; images follow the
// NCHW convention (batch, channels, height, width).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace meanet {

class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<int> dims);
  explicit Shape(std::vector<int> dims);

  int rank() const { return static_cast<int>(dims_.size()); }

  /// Size of dimension `axis`; negative axes count from the end.
  int dim(int axis) const;

  int operator[](int axis) const { return dim(axis); }

  /// Total number of elements (1 for a rank-0 shape).
  std::int64_t numel() const;

  const std::vector<int>& dims() const { return dims_; }

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return dims_ != other.dims_; }

  /// e.g. "[2, 3, 8, 8]".
  std::string to_string() const;

  // NCHW accessors; throw if the shape is not rank-4.
  int batch() const;
  int channels() const;
  int height() const;
  int width() const;

 private:
  void validate() const;
  std::vector<int> dims_;
};

}  // namespace meanet
