// Runtime CPU-feature detection and kernel-tier selection for the GEMM
// microkernels (float and int8).
//
// The library ships one portable binary: every vectorized kernel lives
// in its own translation unit compiled with a per-function target
// attribute, and the dispatcher here picks the best tier the running
// CPU supports (cpuid on x86, baseline NEON on aarch64) the first time
// a kernel is needed. The selection is a process-global that the parity
// tests and benches override at runtime — set_simd_level(kPortable)
// forces the reference 4x16 C++ microkernel, which is also what
// MEANET_SIMD=portable does from the environment. Levels above the
// detected ceiling are clamped, so requesting AVX2 on a machine without
// it is safe and silently degrades.
#pragma once

namespace meanet::ops {

/// Float-GEMM microkernel tiers, ordered weakest to strongest.
enum class SimdLevel {
  kPortable = 0,  // 4x16 plain C++ (auto-vectorized), every target
  kAvx2 = 1,      // 6x16 AVX2+FMA, x86-64 with AVX2 and FMA
  kNeon = 2,      // 6x16 NEON, aarch64 (baseline there)
};

/// int8 GEMM (u8·s8 -> s32) kernel tiers. There is deliberately no
/// AVX2-only tier: the natural vpmaddubsw formulation accumulates
/// adjacent u8*s8 products in int16, which saturates (255*127*2 >
/// 32767) and silently corrupts large activations, so the vector tiers
/// require a VNNI dot-product instruction with exact s32 accumulation.
enum class Int8Kernel {
  kScalar = 0,      // plain C++ loops, every target
  kAvxVnni = 1,     // 256-bit vpdpbusd via the AVX-VNNI extension
  kAvx512Vnni = 2,  // 256-bit vpdpbusd via AVX512-VNNI + VL
};

/// Strongest float tier the running CPU supports (detected once).
SimdLevel max_simd_level();
/// The active float tier. Starts at max_simd_level(), overridable by
/// MEANET_SIMD=portable|avx2|neon (clamped to the ceiling).
SimdLevel simd_level();
/// Sets the active float tier, clamped to max_simd_level(). Levels the
/// binary has no kernel for degrade to kPortable.
void set_simd_level(SimdLevel level);
const char* simd_level_name(SimdLevel level);

/// Strongest int8 tier the running CPU supports (detected once).
Int8Kernel max_int8_kernel();
/// The active int8 tier. Starts at max_int8_kernel(); forced to
/// kScalar while the float tier is kPortable (MEANET_SIMD=portable
/// means "no explicit SIMD anywhere").
Int8Kernel int8_kernel();
/// Sets the active int8 tier, clamped to max_int8_kernel().
void set_int8_kernel(Int8Kernel kernel);
const char* int8_kernel_name(Int8Kernel kernel);
/// True when the *active* int8 tier is a vector (VNNI) kernel — the
/// perf gates only compare int8 against float when this holds.
bool int8_kernel_vectorized();

}  // namespace meanet::ops
