// Persistent worker pool for the striped GEMM (and a small reusable
// barrier for its shared-packed-panel handoff).
//
// The first GEMM rewrite spawned and joined std::threads per call —
// which meant every call paid thread creation, every worker's
// thread-local ops::Workspace died with it (so the packing scratch was
// re-allocated each call), and every worker re-packed the same B
// panel. GemmPool keeps the workers alive for the process: their TLS
// workspaces survive across calls, and gemm.cpp has the caller pack
// each B panel once into its own workspace while the workers barrier,
// then everyone consumes the shared panel.
//
// Concurrency contract: run() executes fn(0) on the calling thread and
// fn(1..threads-1) on pool workers, returning after all complete.
// Concurrent run() calls from different threads serialize on an
// internal mutex (serving workers each call gemm with threads == 1, so
// this lock is uncontended in practice; it exists so explicit
// multi-thread callers compose safely). Everything is mutex+condvar —
// no atomics-as-synchronization — so the pool is clean under TSAN.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "diag/provider.h"
#include "diag/registry.h"

namespace meanet::ops {

/// Reusable rendezvous for a fixed party count: every generation, all
/// `parties` threads block in arrive_and_wait() until the last one
/// arrives. Used by the striped GEMM to fence "B panel packed" before
/// use and "B panel consumed" before repack.
class SpinlessBarrier {
 public:
  explicit SpinlessBarrier(int parties) : parties_(parties) {}

  void arrive_and_wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    const std::uint64_t generation = generation_;
    if (++arrived_ == parties_) {
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
      return;
    }
    cv_.wait(lock, [&] { return generation_ != generation; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  int parties_;
  int arrived_ = 0;
  std::uint64_t generation_ = 0;
};

/// Lazily-started, process-lifetime worker pool. Workers are created on
/// first demand and grow monotonically to the largest `threads` ever
/// requested. A worker that finishes its stripe re-enters the condvar
/// wait immediately — there is no spin/backoff window between jobs, so
/// an idle pool costs nothing but parked threads (the benches print
/// stats() in their headers to prove the pool actually engaged).
class GemmPool : public diag::DiagnosticProvider {
 public:
  /// The process-wide pool.
  static GemmPool& instance();

  /// Runs fn(slot) for slot in [0, threads): slot 0 on the calling
  /// thread, the rest on pool workers. Blocks until every slot
  /// returned. threads <= 1 runs fn(0) inline with no locking.
  void run(int threads, const std::function<void(int)>& fn);

  /// Workers currently alive (high-water of past run() widths).
  int worker_count() const;

  /// Lifetime dispatch counters, for bench headers and diagnostics.
  struct Stats {
    int workers = 0;                  ///< pool depth (== worker_count())
    std::uint64_t jobs = 0;           ///< run() calls, including width-1
    std::uint64_t fanout_jobs = 0;    ///< run() calls that used workers
    std::uint64_t stripes = 0;        ///< total fn(slot) executions
  };
  Stats stats() const;

  // DiagnosticProvider: the singleton registers itself as "gemm_pool"
  // on first use (any pooled gemm call constructs it), so a registry
  // snapshot taken after a forward pass always includes the pool.
  std::string diag_name() const override { return "gemm_pool"; }
  diag::Value diag_snapshot() const override;

  ~GemmPool();

 private:
  GemmPool();
  void ensure_workers(int workers);
  void worker_loop(int index);

  /// Serializes whole jobs: one run() owns the pool at a time.
  std::mutex run_mutex_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  std::vector<std::uint64_t> seen_generation_;  // per worker, guarded by mutex_
  const std::function<void(int)>* job_ = nullptr;
  int job_threads_ = 0;   // fn(1..job_threads_-1) run on workers
  int pending_ = 0;       // participating workers not yet finished
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  // Dispatch counters (guarded by mutex_ for the worker-side stripe
  // count; the width-1 fast path uses jobs_inline_ so it stays
  // lock-free).
  std::uint64_t jobs_fanout_ = 0;
  std::uint64_t stripes_ = 0;
  std::atomic<std::uint64_t> jobs_inline_{0};

  // Last member, so it is the first destroyed once the destructor body
  // (which joins the workers while the pool is still snapshot-safe)
  // returns. The global registry is leaked, so this
  // static-destruction-time unregister is always safe.
  diag::ScopedRegistration diag_registration_;
};

}  // namespace meanet::ops
