// Blocked, register-tiled GEMM with packed operands.
//
// Layout: the classic three-level blocking (KC x MC x NC) around a
// MR x NR microkernel. Both operands are packed into contiguous panels
// from the per-thread Workspace — packing folds the optional transpose
// and the alpha scale, so one kernel serves all four transpose cases.
// Threading partitions the *output rows* into contiguous stripes, one
// per thread: every C element is accumulated by exactly one thread in
// the same k-order as the single-threaded run, so results are
// bit-identical for every thread count (the serving determinism tests
// rely on this).
#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <vector>

#include "tensor/ops.h"
#include "tensor/workspace.h"

namespace meanet::ops {

namespace {

// Register tile: MR x NR floats of C accumulated in locals. 4 x 16
// keeps the accumulator within the vector register budget of any SSE2+
// target while giving -O3 full unroll + vectorize freedom.
constexpr int kMR = 4;
constexpr int kNR = 16;
// Cache blocks: KC sizes the packed panels' k-depth (A panel MC*KC and
// B panel KC*NC stay L2-resident), MC/NC bound the packed panel sizes.
constexpr int kKC = 256;
constexpr int kMC = 128;
constexpr int kNC = 1024;

bool env_flag(const char* name) {
  const char* value = std::getenv(name);
  return value != nullptr && value[0] != '\0' && value[0] != '0';
}

int default_threads() {
  if (const char* value = std::getenv("MEANET_GEMM_THREADS")) {
    const int parsed = std::atoi(value);
    if (parsed >= 1) return parsed;
  }
  // Default single-threaded: InferenceSession already parallelizes over
  // worker threads, and nested per-call GEMM threads would multiply
  // into oversubscription on the serving path. Threading is an explicit
  // opt-in for single-stream callers (env var or set_gemm_threads).
  return 1;
}

std::atomic<bool> g_naive_kernels{env_flag("MEANET_NAIVE_KERNELS")};
std::atomic<int> g_gemm_threads{default_threads()};

// ----- Reference kernels (the MEANET_NAIVE_KERNELS comparison path) ----

void naive_nn(int m, int n, int k, float alpha, const float* a, int lda, const float* b, int ldb,
              float* c, int ldc) {
  for (int i = 0; i < m; ++i) {
    float* c_row = c + static_cast<std::ptrdiff_t>(i) * ldc;
    const float* a_row = a + static_cast<std::ptrdiff_t>(i) * lda;
    for (int p = 0; p < k; ++p) {
      const float a_ip = alpha * a_row[p];
      if (a_ip == 0.0f) continue;
      const float* b_row = b + static_cast<std::ptrdiff_t>(p) * ldb;
      for (int j = 0; j < n; ++j) {
        c_row[j] += a_ip * b_row[j];
      }
    }
  }
}

void naive_tn(int m, int n, int k, float alpha, const float* a, int lda, const float* b, int ldb,
              float* c, int ldc) {
  // A is stored [k, m]; op(A)[i,p] = A[p,i].
  for (int p = 0; p < k; ++p) {
    const float* a_row = a + static_cast<std::ptrdiff_t>(p) * lda;
    const float* b_row = b + static_cast<std::ptrdiff_t>(p) * ldb;
    for (int i = 0; i < m; ++i) {
      const float a_ip = alpha * a_row[i];
      if (a_ip == 0.0f) continue;
      float* c_row = c + static_cast<std::ptrdiff_t>(i) * ldc;
      for (int j = 0; j < n; ++j) {
        c_row[j] += a_ip * b_row[j];
      }
    }
  }
}

void naive_nt(int m, int n, int k, float alpha, const float* a, int lda, const float* b, int ldb,
              float* c, int ldc) {
  // B is stored [n, k]; op(B)[p,j] = B[j,p]. Dot-product formulation.
  for (int i = 0; i < m; ++i) {
    const float* a_row = a + static_cast<std::ptrdiff_t>(i) * lda;
    float* c_row = c + static_cast<std::ptrdiff_t>(i) * ldc;
    for (int j = 0; j < n; ++j) {
      const float* b_row = b + static_cast<std::ptrdiff_t>(j) * ldb;
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) acc += a_row[p] * b_row[p];
      c_row[j] += alpha * acc;
    }
  }
}

void naive_tt(int m, int n, int k, float alpha, const float* a, int lda, const float* b, int ldb,
              float* c, int ldc) {
  for (int i = 0; i < m; ++i) {
    float* c_row = c + static_cast<std::ptrdiff_t>(i) * ldc;
    for (int j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) {
        acc += a[static_cast<std::ptrdiff_t>(p) * lda + i] *
               b[static_cast<std::ptrdiff_t>(j) * ldb + p];
      }
      c_row[j] += alpha * acc;
    }
  }
}

void naive_gemm(bool transpose_a, bool transpose_b, int m, int n, int k, float alpha,
                const float* a, int lda, const float* b, int ldb, float* c, int ldc) {
  if (!transpose_a && !transpose_b) {
    naive_nn(m, n, k, alpha, a, lda, b, ldb, c, ldc);
  } else if (transpose_a && !transpose_b) {
    naive_tn(m, n, k, alpha, a, lda, b, ldb, c, ldc);
  } else if (!transpose_a && transpose_b) {
    naive_nt(m, n, k, alpha, a, lda, b, ldb, c, ldc);
  } else {
    naive_tt(m, n, k, alpha, a, lda, b, ldb, c, ldc);
  }
}

// ----- Packed blocked kernel ------------------------------------------

/// Packs op(A)[i0:i0+mc, p0:p0+kc] into MR-wide panels:
/// dst[(ib/MR) * kc * MR + p * MR + i] = alpha * op(A)[i0+ib+i, p0+p],
/// zero-padded to a full MR in the last panel. Folding alpha here keeps
/// the microkernel a pure multiply-accumulate.
void pack_a(bool transpose, const float* a, int lda, int i0, int mc, int p0, int kc, float alpha,
            float* dst) {
  for (int ib = 0; ib < mc; ib += kMR) {
    const int mr = std::min(kMR, mc - ib);
    for (int p = 0; p < kc; ++p) {
      for (int i = 0; i < kMR; ++i) {
        float value = 0.0f;
        if (i < mr) {
          const std::ptrdiff_t row = i0 + ib + i, col = p0 + p;
          value = transpose ? a[col * lda + row] : a[row * lda + col];
        }
        *dst++ = alpha * value;
      }
    }
  }
}

/// Packs op(B)[p0:p0+kc, j0:j0+nc] into NR-wide panels:
/// dst[(jb/NR) * kc * NR + p * NR + j] = op(B)[p0+p, j0+jb+j],
/// zero-padded to a full NR in the last panel.
void pack_b(bool transpose, const float* b, int ldb, int p0, int kc, int j0, int nc, float* dst) {
  for (int jb = 0; jb < nc; jb += kNR) {
    const int nr = std::min(kNR, nc - jb);
    for (int p = 0; p < kc; ++p) {
      if (!transpose && nr == kNR) {
        std::memcpy(dst, b + static_cast<std::ptrdiff_t>(p0 + p) * ldb + (j0 + jb),
                    sizeof(float) * kNR);
        dst += kNR;
        continue;
      }
      for (int j = 0; j < kNR; ++j) {
        float value = 0.0f;
        if (j < nr) {
          const std::ptrdiff_t row = p0 + p, col = j0 + jb + j;
          value = transpose ? b[col * ldb + row] : b[row * ldb + col];
        }
        *dst++ = value;
      }
    }
  }
}

/// C[0:mr, 0:nr] += sum_p apanel[p][.] * bpanel[p][.] — the register
/// tile. The accumulator covers the full padded MR x NR tile (padded
/// lanes hold zeros), only the valid mr x nr region is written back.
void micro_kernel(int kc, const float* apanel, const float* bpanel, float* c, int ldc, int mr,
                  int nr) {
  float acc[kMR][kNR] = {};
  for (int p = 0; p < kc; ++p, apanel += kMR, bpanel += kNR) {
    for (int i = 0; i < kMR; ++i) {
      const float a = apanel[i];
      for (int j = 0; j < kNR; ++j) acc[i][j] += a * bpanel[j];
    }
  }
  for (int i = 0; i < mr; ++i) {
    float* c_row = c + static_cast<std::ptrdiff_t>(i) * ldc;
    for (int j = 0; j < nr; ++j) c_row[j] += acc[i][j];
  }
}

/// One thread's share: the full blocked loop over rows [row0, row1).
void blocked_gemm_rows(bool transpose_a, bool transpose_b, int row0, int row1, int n, int k,
                       float alpha, const float* a, int lda, const float* b, int ldb, float* c,
                       int ldc) {
  Workspace& workspace = Workspace::tls();
  for (int p0 = 0; p0 < k; p0 += kKC) {
    const int kc = std::min(kKC, k - p0);
    for (int j0 = 0; j0 < n; j0 += kNC) {
      const int nc = std::min(kNC, n - j0);
      const int n_panels = (nc + kNR - 1) / kNR;
      float* bpack = workspace.buffer(
          Workspace::kPackB, static_cast<std::size_t>(n_panels) * kc * kNR);
      pack_b(transpose_b, b, ldb, p0, kc, j0, nc, bpack);
      for (int i0 = row0; i0 < row1; i0 += kMC) {
        const int mc = std::min(kMC, row1 - i0);
        const int m_panels = (mc + kMR - 1) / kMR;
        float* apack = workspace.buffer(
            Workspace::kPackA, static_cast<std::size_t>(m_panels) * kc * kMR);
        pack_a(transpose_a, a, lda, i0, mc, p0, kc, alpha, apack);
        for (int jb = 0; jb < nc; jb += kNR) {
          const float* bpanel = bpack + static_cast<std::ptrdiff_t>(jb / kNR) * kc * kNR;
          const int nr = std::min(kNR, nc - jb);
          for (int ib = 0; ib < mc; ib += kMR) {
            const float* apanel = apack + static_cast<std::ptrdiff_t>(ib / kMR) * kc * kMR;
            micro_kernel(kc, apanel, bpanel,
                         c + static_cast<std::ptrdiff_t>(i0 + ib) * ldc + (j0 + jb), ldc,
                         std::min(kMR, mc - ib), nr);
          }
        }
      }
    }
  }
}

}  // namespace

bool naive_kernels() { return g_naive_kernels.load(std::memory_order_relaxed); }

void set_naive_kernels(bool naive) { g_naive_kernels.store(naive, std::memory_order_relaxed); }

int gemm_threads() { return g_gemm_threads.load(std::memory_order_relaxed); }

void set_gemm_threads(int threads) {
  g_gemm_threads.store(std::max(1, threads), std::memory_order_relaxed);
}

void gemm(bool transpose_a, bool transpose_b, int m, int n, int k, float alpha, const float* a,
          int lda, const float* b, int ldb, float beta, float* c, int ldc) {
  if (m < 0 || n < 0 || k < 0) throw std::invalid_argument("gemm: negative dimension");
  if (beta == 0.0f) {
    for (int i = 0; i < m; ++i) {
      std::memset(c + static_cast<std::ptrdiff_t>(i) * ldc, 0,
                  sizeof(float) * static_cast<std::size_t>(n));
    }
  } else if (beta != 1.0f) {
    for (int i = 0; i < m; ++i) {
      float* c_row = c + static_cast<std::ptrdiff_t>(i) * ldc;
      for (int j = 0; j < n; ++j) c_row[j] *= beta;
    }
  }
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0f) return;

  if (naive_kernels()) {
    naive_gemm(transpose_a, transpose_b, m, n, k, alpha, a, lda, b, ldb, c, ldc);
    return;
  }

  // Fan contiguous MR-aligned row stripes out over worker threads when
  // the problem amortizes the spawn cost; otherwise run inline.
  const std::int64_t flops = 2ll * m * n * k;
  int threads = std::min(gemm_threads(), (m + kMR - 1) / kMR);
  if (flops < (1 << 22)) threads = 1;
  if (threads <= 1) {
    blocked_gemm_rows(transpose_a, transpose_b, 0, m, n, k, alpha, a, lda, b, ldb, c, ldc);
    return;
  }
  // Stripe boundaries land on MR multiples so no tile spans two threads.
  const int tiles = (m + kMR - 1) / kMR;
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    const int row0 = std::min(m, (tiles * t / threads) * kMR);
    const int row1 = std::min(m, (tiles * (t + 1) / threads) * kMR);
    if (row0 >= row1) continue;
    pool.emplace_back([=] {
      blocked_gemm_rows(transpose_a, transpose_b, row0, row1, n, k, alpha, a, lda, b, ldb, c,
                       ldc);
    });
  }
  for (std::thread& worker : pool) worker.join();
}

Tensor matmul(const Tensor& a, const Tensor& b, bool transpose_a, bool transpose_b) {
  if (a.shape().rank() != 2 || b.shape().rank() != 2) {
    throw std::invalid_argument("matmul expects rank-2 tensors");
  }
  const int a_rows = a.shape().dim(0), a_cols = a.shape().dim(1);
  const int b_rows = b.shape().dim(0), b_cols = b.shape().dim(1);
  const int m = transpose_a ? a_cols : a_rows;
  const int k = transpose_a ? a_rows : a_cols;
  const int k2 = transpose_b ? b_cols : b_rows;
  const int n = transpose_b ? b_rows : b_cols;
  if (k != k2) {
    throw std::invalid_argument("matmul: inner dimension mismatch " + a.shape().to_string() +
                                " x " + b.shape().to_string());
  }
  Tensor c(Shape{m, n});
  gemm(transpose_a, transpose_b, m, n, k, 1.0f, a.data(), a_cols, b.data(), b_cols, 0.0f, c.data(),
       n);
  return c;
}

}  // namespace meanet::ops
