// Blocked, register-tiled GEMM with packed operands and runtime kernel
// dispatch.
//
// Layout: the classic three-level blocking (KC x MC x NC) around an
// MR x NR microkernel. Both operands are packed into contiguous panels
// from the per-thread Workspace — packing folds the optional transpose
// and the alpha scale, so one kernel serves all four transpose cases.
// The microkernel is picked at runtime (tensor/simd.h): a 6x16
// AVX2+FMA tile on x86 with AVX2, a 6x16 NEON tile on aarch64, and the
// portable 4x16 C++ tile everywhere else (or when forced via
// MEANET_SIMD=portable / set_simd_level).
//
// Threading partitions the *output rows* into contiguous MR-aligned
// stripes, one per slot of the persistent ops::GemmPool (the caller
// serves slot 0). Per (KC, NC) block, slot 0 packs B once into its
// workspace and every slot consumes the shared panel between two
// barriers — no per-call thread spawn, no per-thread B repack, and
// worker TLS workspaces survive across calls. Every C element is
// accumulated by exactly one slot in the same k-order as the
// single-threaded run, so results are bit-identical for every thread
// count under a fixed kernel (the serving determinism tests rely on
// this).
#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "tensor/gemm_kernels.h"
#include "tensor/ops.h"
#include "tensor/pool.h"
#include "tensor/simd.h"
#include "tensor/workspace.h"

namespace meanet::ops {

namespace {

// Portable register tile: MR x NR floats of C accumulated in locals.
// 4 x 16 keeps the accumulator within the vector register budget of
// any SSE2+ target while giving -O3 full unroll + vectorize freedom.
constexpr int kPortableMR = 4;
constexpr int kNR = 16;  // every kernel tier uses NR = 16
// Cache blocks: KC sizes the packed panels' k-depth (A panel MC*KC and
// B panel KC*NC stay L2-resident), MC/NC bound the packed panel sizes.
constexpr int kKC = 256;
constexpr int kMC = 128;
constexpr int kNC = 1024;
// Sanity cap on thread counts from the environment / API.
constexpr long kMaxGemmThreads = 256;

bool env_flag(const char* name) {
  const char* value = std::getenv(name);
  return value != nullptr && value[0] != '\0' && value[0] != '0';
}

int auto_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(std::min<unsigned>(hw, kMaxGemmThreads));
}

int default_threads() {
  const char* value = std::getenv("MEANET_GEMM_THREADS");
  // Default single-threaded: InferenceSession already parallelizes over
  // worker threads, and nested per-call GEMM threads would multiply
  // into oversubscription on the serving path. Threading is an explicit
  // opt-in for single-stream callers (env var or set_gemm_threads).
  if (value == nullptr || value[0] == '\0') return 1;
  char* end = nullptr;
  errno = 0;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0') {
    std::fprintf(stderr,
                 "meanet: MEANET_GEMM_THREADS=\"%s\" is not an integer; using 1 thread\n",
                 value);
    return 1;
  }
  if (errno == ERANGE || parsed < 0 || parsed > kMaxGemmThreads) {
    const long clamped = parsed < 0 ? 1 : kMaxGemmThreads;
    std::fprintf(stderr,
                 "meanet: MEANET_GEMM_THREADS=%s out of range [0, %ld]; clamping to %ld\n",
                 value, kMaxGemmThreads, clamped);
    return static_cast<int>(clamped);
  }
  if (parsed == 0) return auto_threads();  // 0 = auto (hardware concurrency)
  return static_cast<int>(parsed);
}

// Whole-batch column tile budget: 64 MiB holds a 32-image CIFAR-scale
// batch (the largest tile the model zoo produces is ~20 MiB) while a
// batch-256 ImageNet-scale soak falls back to chunks instead of a
// multi-GiB workspace.
constexpr std::size_t kDefaultBatchColumnsBudget = 64u << 20;

std::size_t default_batch_columns_budget() {
  const char* value = std::getenv("MEANET_BATCH_COLUMNS_MB");
  if (value == nullptr || value[0] == '\0') return kDefaultBatchColumnsBudget;
  char* end = nullptr;
  errno = 0;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || errno == ERANGE || parsed <= 0) {
    std::fprintf(stderr,
                 "meanet: MEANET_BATCH_COLUMNS_MB=\"%s\" is not a positive integer; "
                 "using %zu MiB\n",
                 value, kDefaultBatchColumnsBudget >> 20);
    return kDefaultBatchColumnsBudget;
  }
  return static_cast<std::size_t>(parsed) << 20;
}

std::atomic<bool> g_naive_kernels{env_flag("MEANET_NAIVE_KERNELS")};
std::atomic<int> g_gemm_threads{default_threads()};
std::atomic<bool> g_batched_conv{[] {
  const char* value = std::getenv("MEANET_BATCHED_CONV");
  return value == nullptr || value[0] == '\0' || value[0] != '0';
}()};
std::atomic<std::size_t> g_batch_columns_budget{default_batch_columns_budget()};

// ----- Reference kernels (the MEANET_NAIVE_KERNELS comparison path) ----

void naive_nn(int m, int n, int k, float alpha, const float* a, int lda, const float* b, int ldb,
              float* c, int ldc) {
  for (int i = 0; i < m; ++i) {
    float* c_row = c + static_cast<std::ptrdiff_t>(i) * ldc;
    const float* a_row = a + static_cast<std::ptrdiff_t>(i) * lda;
    for (int p = 0; p < k; ++p) {
      const float a_ip = alpha * a_row[p];
      if (a_ip == 0.0f) continue;
      const float* b_row = b + static_cast<std::ptrdiff_t>(p) * ldb;
      for (int j = 0; j < n; ++j) {
        c_row[j] += a_ip * b_row[j];
      }
    }
  }
}

void naive_tn(int m, int n, int k, float alpha, const float* a, int lda, const float* b, int ldb,
              float* c, int ldc) {
  // A is stored [k, m]; op(A)[i,p] = A[p,i].
  for (int p = 0; p < k; ++p) {
    const float* a_row = a + static_cast<std::ptrdiff_t>(p) * lda;
    const float* b_row = b + static_cast<std::ptrdiff_t>(p) * ldb;
    for (int i = 0; i < m; ++i) {
      const float a_ip = alpha * a_row[i];
      if (a_ip == 0.0f) continue;
      float* c_row = c + static_cast<std::ptrdiff_t>(i) * ldc;
      for (int j = 0; j < n; ++j) {
        c_row[j] += a_ip * b_row[j];
      }
    }
  }
}

void naive_nt(int m, int n, int k, float alpha, const float* a, int lda, const float* b, int ldb,
              float* c, int ldc) {
  // B is stored [n, k]; op(B)[p,j] = B[j,p]. Dot-product formulation.
  for (int i = 0; i < m; ++i) {
    const float* a_row = a + static_cast<std::ptrdiff_t>(i) * lda;
    float* c_row = c + static_cast<std::ptrdiff_t>(i) * ldc;
    for (int j = 0; j < n; ++j) {
      const float* b_row = b + static_cast<std::ptrdiff_t>(j) * ldb;
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) acc += a_row[p] * b_row[p];
      c_row[j] += alpha * acc;
    }
  }
}

void naive_tt(int m, int n, int k, float alpha, const float* a, int lda, const float* b, int ldb,
              float* c, int ldc) {
  for (int i = 0; i < m; ++i) {
    float* c_row = c + static_cast<std::ptrdiff_t>(i) * ldc;
    for (int j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) {
        acc += a[static_cast<std::ptrdiff_t>(p) * lda + i] *
               b[static_cast<std::ptrdiff_t>(j) * ldb + p];
      }
      c_row[j] += alpha * acc;
    }
  }
}

void naive_gemm(bool transpose_a, bool transpose_b, int m, int n, int k, float alpha,
                const float* a, int lda, const float* b, int ldb, float* c, int ldc) {
  if (!transpose_a && !transpose_b) {
    naive_nn(m, n, k, alpha, a, lda, b, ldb, c, ldc);
  } else if (transpose_a && !transpose_b) {
    naive_tn(m, n, k, alpha, a, lda, b, ldb, c, ldc);
  } else if (!transpose_a && transpose_b) {
    naive_nt(m, n, k, alpha, a, lda, b, ldb, c, ldc);
  } else {
    naive_tt(m, n, k, alpha, a, lda, b, ldb, c, ldc);
  }
}

// ----- Packing --------------------------------------------------------

/// Packs op(A)[i0:i0+mc, p0:p0+kc] into MR-wide panels:
/// dst[(ib/MR) * kc * MR + p * MR + i] = alpha * op(A)[i0+ib+i, p0+p],
/// zero-padded to a full MR in the last panel. Folding alpha here keeps
/// the microkernel a pure multiply-accumulate. Templated on the active
/// kernel's row-tile so the interleave stride is a compile-time
/// constant in both instantiations.
template <int MR>
void pack_a_t(bool transpose, const float* a, int lda, int i0, int mc, int p0, int kc,
              float alpha, float* dst) {
  for (int ib = 0; ib < mc; ib += MR) {
    const int mr = std::min(MR, mc - ib);
    for (int p = 0; p < kc; ++p) {
      for (int i = 0; i < MR; ++i) {
        float value = 0.0f;
        if (i < mr) {
          const std::ptrdiff_t row = i0 + ib + i, col = p0 + p;
          value = transpose ? a[col * lda + row] : a[row * lda + col];
        }
        *dst++ = alpha * value;
      }
    }
  }
}

void pack_a(int mr_tile, bool transpose, const float* a, int lda, int i0, int mc, int p0, int kc,
            float alpha, float* dst) {
  if (mr_tile == 6) {
    pack_a_t<6>(transpose, a, lda, i0, mc, p0, kc, alpha, dst);
  } else {
    pack_a_t<4>(transpose, a, lda, i0, mc, p0, kc, alpha, dst);
  }
}

/// Packs op(B)[p0:p0+kc, j0:j0+nc] into NR-wide panels:
/// dst[(jb/NR) * kc * NR + p * NR + j] = op(B)[p0+p, j0+jb+j],
/// zero-padded to a full NR in the last panel.
void pack_b(bool transpose, const float* b, int ldb, int p0, int kc, int j0, int nc, float* dst) {
  for (int jb = 0; jb < nc; jb += kNR) {
    const int nr = std::min(kNR, nc - jb);
    for (int p = 0; p < kc; ++p) {
      if (!transpose && nr == kNR) {
        std::memcpy(dst, b + static_cast<std::ptrdiff_t>(p0 + p) * ldb + (j0 + jb),
                    sizeof(float) * kNR);
        dst += kNR;
        continue;
      }
      for (int j = 0; j < kNR; ++j) {
        float value = 0.0f;
        if (j < nr) {
          const std::ptrdiff_t row = p0 + p, col = j0 + jb + j;
          value = transpose ? b[col * ldb + row] : b[row * ldb + col];
        }
        *dst++ = value;
      }
    }
  }
}

// ----- Microkernels ---------------------------------------------------

/// C[0:mr, 0:nr] += sum_p apanel[p][.] * bpanel[p][.] — the portable
/// register tile. The accumulator covers the full padded MR x NR tile
/// (padded lanes hold zeros), only the valid mr x nr region is written
/// back.
void micro_kernel_portable_4x16(int kc, const float* apanel, const float* bpanel, float* c,
                                int ldc, int mr, int nr) {
  float acc[kPortableMR][kNR] = {};
  for (int p = 0; p < kc; ++p, apanel += kPortableMR, bpanel += kNR) {
    for (int i = 0; i < kPortableMR; ++i) {
      const float a = apanel[i];
      for (int j = 0; j < kNR; ++j) acc[i][j] += a * bpanel[j];
    }
  }
  for (int i = 0; i < mr; ++i) {
    float* c_row = c + static_cast<std::ptrdiff_t>(i) * ldc;
    for (int j = 0; j < nr; ++j) c_row[j] += acc[i][j];
  }
}

/// The microkernel matching the active SimdLevel. Levels the binary
/// has no kernel for (clamped away by set_simd_level, but belt and
/// braces) fall back to the portable tile.
detail::FloatKernel active_kernel() {
  switch (simd_level()) {
#if defined(__x86_64__) || defined(_M_X64)
    case SimdLevel::kAvx2:
      return {6, kNR, detail::micro_kernel_avx2_6x16, "avx2"};
#endif
#if defined(__aarch64__)
    case SimdLevel::kNeon:
      return {6, kNR, detail::micro_kernel_neon_6x16, "neon"};
#endif
    default:
      break;
  }
  return {kPortableMR, kNR, micro_kernel_portable_4x16, "portable"};
}

// ----- Striped blocked driver -----------------------------------------

/// Everything one gemm() call shares across pool slots.
struct StripedJob {
  bool transpose_a = false, transpose_b = false;
  int m = 0, n = 0, k = 0;
  float alpha = 1.0f;
  const float* a = nullptr;
  int lda = 0;
  const float* b = nullptr;
  int ldb = 0;
  float* c = nullptr;
  int ldc = 0;
  /// Batched-NCHW C layout (gemm_batched_nchw): when cols_per_image
  /// > 0, C column j belongs to image j / cols_per_image and lands at
  /// c + image * c_image_stride + i * ldc + (j % cols_per_image).
  /// 0 = plain dense C.
  int cols_per_image = 0;
  std::int64_t c_image_stride = 0;
  detail::FloatKernel kernel;
  /// Row range per slot, MR-aligned except at m.
  std::vector<std::pair<int, int>> stripes;
  /// Shared packed-B panel (slot 0's workspace) + the pack/consume
  /// fences; both null in the single-thread path, where the (only)
  /// slot packs B into its own workspace.
  float* shared_bpack = nullptr;
  SpinlessBarrier* barrier = nullptr;
};

/// One slot's share of the blocked loops. All slots walk the same
/// (KC, NC) block sequence so the barriers line up; within a block a
/// slot only touches its own rows.
void run_stripe(const StripedJob& job, int slot) {
  const auto [row0, row1] = job.stripes[static_cast<std::size_t>(slot)];
  const int mr_tile = job.kernel.mr;
  Workspace& workspace = Workspace::tls();
  for (int p0 = 0; p0 < job.k; p0 += kKC) {
    const int kc = std::min(kKC, job.k - p0);
    for (int j0 = 0; j0 < job.n; j0 += kNC) {
      const int nc = std::min(kNC, job.n - j0);
      const int n_panels = (nc + kNR - 1) / kNR;
      float* bpack = job.shared_bpack;
      if (job.barrier != nullptr) {
        if (slot == 0) pack_b(job.transpose_b, job.b, job.ldb, p0, kc, j0, nc, bpack);
        job.barrier->arrive_and_wait();  // B panel packed and published
      } else {
        bpack = workspace.buffer(Workspace::kPackB,
                                 static_cast<std::size_t>(n_panels) * kc * kNR);
        pack_b(job.transpose_b, job.b, job.ldb, p0, kc, j0, nc, bpack);
      }
      for (int i0 = row0; i0 < row1; i0 += kMC) {
        const int mc = std::min(kMC, row1 - i0);
        const int m_panels = (mc + mr_tile - 1) / mr_tile;
        float* apack = workspace.buffer(
            Workspace::kPackA, static_cast<std::size_t>(m_panels) * kc * mr_tile);
        pack_a(mr_tile, job.transpose_a, job.a, job.lda, i0, mc, p0, kc, job.alpha, apack);
        for (int jb = 0; jb < nc; jb += kNR) {
          const float* bpanel = bpack + static_cast<std::ptrdiff_t>(jb / kNR) * kc * kNR;
          const int nr = std::min(kNR, nc - jb);
          const int jcol = j0 + jb;
          // Dense C, or a batched-NCHW tile fully inside one image:
          // the kernel writes straight through a base pointer + ldc.
          float* cbase = job.c + static_cast<std::ptrdiff_t>(i0) * job.ldc + jcol;
          bool direct = true;
          if (job.cols_per_image > 0) {
            const int image = jcol / job.cols_per_image;
            const int jj = jcol - image * job.cols_per_image;
            direct = jj + nr <= job.cols_per_image;
            cbase = job.c + image * job.c_image_stride +
                    static_cast<std::ptrdiff_t>(i0) * job.ldc + jj;
          }
          for (int ib = 0; ib < mc; ib += mr_tile) {
            const float* apanel =
                apack + static_cast<std::ptrdiff_t>(ib / mr_tile) * kc * mr_tile;
            const int mr = std::min(mr_tile, mc - ib);
            if (direct) {
              job.kernel.fn(kc, apanel, bpanel,
                            cbase + static_cast<std::ptrdiff_t>(ib) * job.ldc, job.ldc, mr, nr);
              continue;
            }
            // The tile straddles an image boundary: bounce through a
            // register-sized tile holding the mapped C values. The
            // kernel still performs the one c += acc addition per
            // element, so this path stays bit-identical to the dense
            // write (loads and stores move bits, not values).
            float tile[detail::kMaxMR * kNR];
            for (int i = 0; i < mr; ++i) {
              for (int j = 0; j < nr; ++j) {
                const int col = jcol + j;
                const int image = col / job.cols_per_image;
                tile[i * kNR + j] =
                    job.c[image * job.c_image_stride +
                          static_cast<std::ptrdiff_t>(i0 + ib + i) * job.ldc +
                          (col - image * job.cols_per_image)];
              }
            }
            job.kernel.fn(kc, apanel, bpanel, tile, kNR, mr, nr);
            for (int i = 0; i < mr; ++i) {
              for (int j = 0; j < nr; ++j) {
                const int col = jcol + j;
                const int image = col / job.cols_per_image;
                job.c[image * job.c_image_stride +
                      static_cast<std::ptrdiff_t>(i0 + ib + i) * job.ldc +
                      (col - image * job.cols_per_image)] = tile[i * kNR + j];
              }
            }
          }
        }
      }
      // Everyone is done reading the shared panel before slot 0 repacks
      // it for the next block.
      if (job.barrier != nullptr) job.barrier->arrive_and_wait();
    }
  }
}

/// Stripe planning + pool dispatch shared by gemm() and
/// gemm_batched_nchw(): fans contiguous MR-aligned row stripes out
/// over the persistent pool when the problem amortizes the handoff;
/// otherwise runs inline on the calling thread.
void dispatch_striped(StripedJob& job) {
  const std::int64_t flops = 2ll * job.m * job.n * job.k;
  const int tiles = (job.m + job.kernel.mr - 1) / job.kernel.mr;
  int threads = std::min(gemm_threads(), tiles);
  if (flops < (1 << 22)) threads = 1;
  if (threads <= 1) {
    job.stripes.emplace_back(0, job.m);
    run_stripe(job, 0);
    return;
  }

  // Stripe boundaries land on MR multiples so no tile spans two slots.
  job.stripes.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    const int row0 = std::min(job.m, (tiles * t / threads) * job.kernel.mr);
    const int row1 = std::min(job.m, (tiles * (t + 1) / threads) * job.kernel.mr);
    job.stripes.emplace_back(row0, row1);
  }
  // The shared B panel lives in the caller's (slot 0's) workspace,
  // sized for the largest (KC, NC) block of this call.
  const int max_kc = std::min(kKC, job.k);
  const int max_panels = (std::min(kNC, job.n) + kNR - 1) / kNR;
  job.shared_bpack = Workspace::tls().buffer(
      Workspace::kPackB, static_cast<std::size_t>(max_panels) * max_kc * kNR);
  SpinlessBarrier barrier(threads);
  job.barrier = &barrier;
  GemmPool::instance().run(threads, [&job](int slot) { run_stripe(job, slot); });
}

}  // namespace

bool naive_kernels() { return g_naive_kernels.load(std::memory_order_relaxed); }

void set_naive_kernels(bool naive) { g_naive_kernels.store(naive, std::memory_order_relaxed); }

int gemm_threads() { return g_gemm_threads.load(std::memory_order_relaxed); }

void set_gemm_threads(int threads) {
  if (threads == 0) threads = auto_threads();  // 0 = auto, like the env var
  g_gemm_threads.store(
      std::max(1, std::min(threads, static_cast<int>(kMaxGemmThreads))),
      std::memory_order_relaxed);
}

void gemm(bool transpose_a, bool transpose_b, int m, int n, int k, float alpha, const float* a,
          int lda, const float* b, int ldb, float beta, float* c, int ldc) {
  if (m < 0 || n < 0 || k < 0) throw std::invalid_argument("gemm: negative dimension");
  if (beta == 0.0f) {
    for (int i = 0; i < m; ++i) {
      std::memset(c + static_cast<std::ptrdiff_t>(i) * ldc, 0,
                  sizeof(float) * static_cast<std::size_t>(n));
    }
  } else if (beta != 1.0f) {
    for (int i = 0; i < m; ++i) {
      float* c_row = c + static_cast<std::ptrdiff_t>(i) * ldc;
      for (int j = 0; j < n; ++j) c_row[j] *= beta;
    }
  }
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0f) return;

  if (naive_kernels()) {
    naive_gemm(transpose_a, transpose_b, m, n, k, alpha, a, lda, b, ldb, c, ldc);
    return;
  }

  StripedJob job;
  job.transpose_a = transpose_a;
  job.transpose_b = transpose_b;
  job.m = m;
  job.n = n;
  job.k = k;
  job.alpha = alpha;
  job.a = a;
  job.lda = lda;
  job.b = b;
  job.ldb = ldb;
  job.c = c;
  job.ldc = ldc;
  job.kernel = active_kernel();
  dispatch_striped(job);
}

void gemm_batched_nchw(int m, int k, int batch, int cols_per_image, const float* a, int lda,
                       const float* b, float* c, std::int64_t c_image_stride, int ldc) {
  if (m < 0 || k < 0 || batch < 0 || cols_per_image < 0) {
    throw std::invalid_argument("gemm_batched_nchw: negative dimension");
  }
  // beta = 0 semantics: overwrite every image's [m, cols_per_image]
  // output block (accumulation across KC blocks goes through memory,
  // exactly like gemm()).
  for (int n = 0; n < batch; ++n) {
    for (int i = 0; i < m; ++i) {
      std::memset(c + n * c_image_stride + static_cast<std::ptrdiff_t>(i) * ldc, 0,
                  sizeof(float) * static_cast<std::size_t>(cols_per_image));
    }
  }
  if (m == 0 || k == 0 || batch == 0 || cols_per_image == 0) return;

  StripedJob job;
  job.m = m;
  job.n = batch * cols_per_image;
  job.k = k;
  job.a = a;
  job.lda = lda;
  job.b = b;
  job.ldb = job.n;
  job.c = c;
  job.ldc = ldc;
  job.cols_per_image = cols_per_image;
  job.c_image_stride = c_image_stride;
  job.kernel = active_kernel();
  dispatch_striped(job);
}

bool batched_conv() { return g_batched_conv.load(std::memory_order_relaxed); }

bool batched_conv_pays(int cols_per_image) {
  return cols_per_image < kNC || gemm_threads() > 1;
}

void set_batched_conv(bool batched) {
  g_batched_conv.store(batched, std::memory_order_relaxed);
}

std::size_t batched_columns_budget() {
  return g_batch_columns_budget.load(std::memory_order_relaxed);
}

void set_batched_columns_budget(std::size_t bytes) {
  g_batch_columns_budget.store(bytes == 0 ? kDefaultBatchColumnsBudget : bytes,
                               std::memory_order_relaxed);
}

Tensor matmul(const Tensor& a, const Tensor& b, bool transpose_a, bool transpose_b) {
  if (a.shape().rank() != 2 || b.shape().rank() != 2) {
    throw std::invalid_argument("matmul expects rank-2 tensors");
  }
  const int a_rows = a.shape().dim(0), a_cols = a.shape().dim(1);
  const int b_rows = b.shape().dim(0), b_cols = b.shape().dim(1);
  const int m = transpose_a ? a_cols : a_rows;
  const int k = transpose_a ? a_rows : a_cols;
  const int k2 = transpose_b ? b_cols : b_rows;
  const int n = transpose_b ? b_rows : b_cols;
  if (k != k2) {
    throw std::invalid_argument("matmul: inner dimension mismatch " + a.shape().to_string() +
                                " x " + b.shape().to_string());
  }
  Tensor c(Shape{m, n});
  gemm(transpose_a, transpose_b, m, n, k, 1.0f, a.data(), a_cols, b.data(), b_cols, 0.0f, c.data(),
       n);
  return c;
}

}  // namespace meanet::ops
