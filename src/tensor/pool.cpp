#include "tensor/pool.h"

namespace meanet::ops {

GemmPool& GemmPool::instance() {
  // Function-local static: constructed on first use, destroyed at
  // process exit after main() returns — the workers are joined there,
  // so no thread outlives static destruction.
  static GemmPool pool;
  return pool;
}

GemmPool::GemmPool()
    : diag_registration_(diag::DiagnosticRegistry::global(), this) {}

GemmPool::~GemmPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
    work_cv_.notify_all();
  }
  for (std::thread& worker : workers_) worker.join();
}

int GemmPool::worker_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(workers_.size());
}

GemmPool::Stats GemmPool::stats() const {
  Stats out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out.workers = static_cast<int>(workers_.size());
    out.fanout_jobs = jobs_fanout_;
    out.stripes = stripes_;
  }
  out.jobs = out.fanout_jobs + jobs_inline_.load(std::memory_order_relaxed);
  return out;
}

diag::Value GemmPool::diag_snapshot() const {
  const Stats s = stats();
  diag::Value v = diag::Value::object();
  v.set("workers", s.workers);
  v.set("jobs", s.jobs);
  v.set("fanout_jobs", s.fanout_jobs);
  v.set("stripes", s.stripes);
  return v;
}

void GemmPool::ensure_workers(int workers) {
  std::lock_guard<std::mutex> lock(mutex_);
  while (static_cast<int>(workers_.size()) < workers) {
    const int index = static_cast<int>(workers_.size());
    // A worker born mid-life starts at the current generation so it can
    // never pick up a job that finished before it existed.
    seen_generation_.push_back(generation_);
    workers_.emplace_back([this, index] { worker_loop(index); });
  }
}

void GemmPool::run(int threads, const std::function<void(int)>& fn) {
  if (threads <= 1) {
    jobs_inline_.fetch_add(1, std::memory_order_relaxed);
    fn(0);
    return;
  }
  std::lock_guard<std::mutex> run_lock(run_mutex_);
  ensure_workers(threads - 1);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    job_threads_ = threads;
    pending_ = threads - 1;
    ++jobs_fanout_;
    stripes_ += static_cast<std::uint64_t>(threads);
    ++generation_;
    work_cv_.notify_all();
  }
  fn(0);  // the caller serves slot 0 — no self-deadlock, no idle caller
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return pending_ == 0; });
  job_ = nullptr;
}

void GemmPool::worker_loop(int index) {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    // A finished worker lands straight back in this condvar wait — the
    // loop has no spin/backoff window, so between stripe sets the pool
    // costs nothing but parked threads.
    work_cv_.wait(lock, [&] { return stop_ || generation_ != seen_generation_[index]; });
    if (stop_) return;
    seen_generation_[index] = generation_;
    if (index + 1 >= job_threads_) continue;  // this job is narrower than the pool
    const std::function<void(int)>* job = job_;
    lock.unlock();
    (*job)(index + 1);
    lock.lock();
    if (--pending_ == 0) done_cv_.notify_all();
  }
}

}  // namespace meanet::ops
