// Per-thread scratch arena for the numeric kernels.
//
// The inference hot path (im2col + packed GEMM + folded BatchNorm)
// needs large temporary buffers on every forward call. Allocating them
// per call dominates small-model latency, and sharing them across
// threads would break the const-safe eval contract — so each thread
// owns one Workspace, reached via Workspace::tls(), whose Tensor-backed
// buffers only ever grow and are reused across calls. A serving worker
// therefore pays the im2col allocation once per (shape, lifetime), not
// once per submit.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "tensor/tensor.h"

namespace meanet::ops {

class Workspace {
 public:
  /// Distinct live uses of scratch within one kernel invocation. Using
  /// separate slots (instead of one bump arena) keeps buffers stable
  /// across nested kernels: a folded-conv forward holds kFoldedWeights
  /// while the GEMM below it uses kPackA/kPackB.
  enum Slot {
    kPackA,
    kPackB,
    kIm2col,
    kFoldedWeights,
    kFoldedBias,
    kQuantScales,  // int8 path: per-row weight scales + fused epilogue scales
    kNumSlots,
  };

  /// Raw (non-float) scratch of the int8 quantized path: int8 weight
  /// storage, s32 row sums, u8 quantized activations, and the packed
  /// activation panels the VNNI kernel consumes.
  enum ByteSlot {
    kQuantWeights,
    kQuantRowSums,
    kQuantTile,  // u8-quantized input image, fed to the byte-domain im2col
    kQuantAct,
    kQuantPack,
    kQuantOut,  // contiguous [rows, n] float C of the batched qgemm,
                // scattered per image into NCHW by the epilogue
    kNumByteSlots,
  };

  /// A buffer of at least `elems` floats for `slot`; contents are
  /// undefined. The buffer stays valid until the next request for the
  /// same slot on the same thread.
  float* buffer(Slot slot, std::size_t elems);

  /// A buffer of at least `bytes` bytes for `slot`, aligned for any
  /// fundamental type; contents are undefined. Same lifetime contract
  /// as buffer().
  unsigned char* byte_buffer(ByteSlot slot, std::size_t bytes);

  /// Elements currently held by `slot` (capacity, not a fill level).
  std::size_t capacity(Slot slot) const;

  /// The calling thread's workspace.
  static Workspace& tls();

 private:
  std::array<Tensor, kNumSlots> buffers_;
  std::array<std::vector<unsigned char>, kNumByteSlots> byte_buffers_;
};

}  // namespace meanet::ops
