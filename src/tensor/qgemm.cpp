#include "tensor/qgemm.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "tensor/qgemm_kernels.h"
#include "tensor/simd.h"
#include "tensor/workspace.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <emmintrin.h>
#define MEANET_QGEMM_SSE2 1
#endif

namespace meanet::ops {

namespace {

thread_local bool t_quantized_inference = false;

// The quantize/pack helpers below are the int8 path's real per-element
// cost (the integer GEMM itself is cheap), so on x86-64 they run on
// baseline SSE2 — no dispatch needed, and _mm_cvtps_epi32 rounds
// nearest-even exactly like lrintf, so the vector bodies and the
// scalar tails/fallbacks produce identical codes.

/// One 16-column panel group done by hand (tail panels, k tail).
void pack_group_scalar(const std::uint8_t* act, int k, int n, int jb, int nr, int g,
                       std::uint8_t* dst) {
  for (int j = 0; j < 16; ++j) {
    for (int kk = 0; kk < 4; ++kk) {
      const int p = 4 * g + kk;
      dst[j * 4 + kk] =
          (j < nr && p < k) ? act[static_cast<std::ptrdiff_t>(p) * n + (jb + j)] : 0;
    }
  }
}

/// Packs the u8 activation matrix [k, n] into 16-column panels of
/// 4-deep k groups (the vpdpbusd operand layout — see qgemm_kernels.h).
/// Zero-fills past k and past n: the matching weight bytes are
/// zero-padded too, so padded lanes contribute exact zeros.
void pack_activations(const std::uint8_t* act, int k, int n, int kgroups, std::uint8_t* pack) {
  const int full_groups = k / 4;  // groups whose four rows all exist
  for (int jb = 0; jb < n; jb += 16) {
    const int nr = std::min(16, n - jb);
    std::uint8_t* panel = pack + static_cast<std::ptrdiff_t>(jb / 16) * kgroups * 64;
#if MEANET_QGEMM_SSE2
    if (nr == 16) {
      for (int g = 0; g < full_groups; ++g) {
        // 4x16 byte transpose: rows 4g..4g+3, columns jb..jb+15.
        const std::uint8_t* row = act + static_cast<std::ptrdiff_t>(4 * g) * n + jb;
        const __m128i a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(row));
        const __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(row + n));
        const __m128i c = _mm_loadu_si128(reinterpret_cast<const __m128i*>(row + 2 * n));
        const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(row + 3 * n));
        const __m128i ab_lo = _mm_unpacklo_epi8(a, b);
        const __m128i ab_hi = _mm_unpackhi_epi8(a, b);
        const __m128i cd_lo = _mm_unpacklo_epi8(c, d);
        const __m128i cd_hi = _mm_unpackhi_epi8(c, d);
        std::uint8_t* dst = panel + static_cast<std::ptrdiff_t>(g) * 64;
        _mm_storeu_si128(reinterpret_cast<__m128i*>(dst), _mm_unpacklo_epi16(ab_lo, cd_lo));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 16),
                         _mm_unpackhi_epi16(ab_lo, cd_lo));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 32),
                         _mm_unpacklo_epi16(ab_hi, cd_hi));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 48),
                         _mm_unpackhi_epi16(ab_hi, cd_hi));
      }
      for (int g = full_groups; g < kgroups; ++g) {
        pack_group_scalar(act, k, n, jb, nr, g, panel + static_cast<std::ptrdiff_t>(g) * 64);
      }
      continue;
    }
#endif
    for (int g = 0; g < kgroups; ++g) {
      pack_group_scalar(act, k, n, jb, nr, g, panel + static_cast<std::ptrdiff_t>(g) * 64);
    }
  }
}

/// max|x| over a float span (the shared scan of both quantizers).
float max_abs_span(const float* x, std::size_t n) {
  float max_abs = 0.0f;
  std::size_t i = 0;
#if MEANET_QGEMM_SSE2
  const __m128 sign_mask = _mm_castsi128_ps(_mm_set1_epi32(0x7fffffff));
  // Four independent accumulators hide the maxps latency chain.
  __m128 best0 = _mm_setzero_ps();
  __m128 best1 = _mm_setzero_ps();
  __m128 best2 = _mm_setzero_ps();
  __m128 best3 = _mm_setzero_ps();
  for (; i + 16 <= n; i += 16) {
    best0 = _mm_max_ps(best0, _mm_and_ps(_mm_loadu_ps(x + i), sign_mask));
    best1 = _mm_max_ps(best1, _mm_and_ps(_mm_loadu_ps(x + i + 4), sign_mask));
    best2 = _mm_max_ps(best2, _mm_and_ps(_mm_loadu_ps(x + i + 8), sign_mask));
    best3 = _mm_max_ps(best3, _mm_and_ps(_mm_loadu_ps(x + i + 12), sign_mask));
  }
  for (; i + 4 <= n; i += 4) {
    best0 = _mm_max_ps(best0, _mm_and_ps(_mm_loadu_ps(x + i), sign_mask));
  }
  const __m128 best = _mm_max_ps(_mm_max_ps(best0, best1), _mm_max_ps(best2, best3));
  alignas(16) float lanes[4];
  _mm_store_ps(lanes, best);
  max_abs = std::max(std::max(lanes[0], lanes[1]), std::max(lanes[2], lanes[3]));
#endif
  for (; i < n; ++i) max_abs = std::max(max_abs, std::fabs(x[i]));
  return max_abs;
}

/// Reference tier: same s32 accumulation and the same fused
/// multiply-add epilogue as the VNNI kernels, so results are
/// bit-identical across tiers (integer dot products are exact; the
/// only float ops are one int->float convert and one fma per output).
void qgemm_scalar(int rows, int n, int k, int k_padded, const std::int8_t* wq,
                  const float* scales, const std::int32_t* row_sums, const std::uint8_t* act,
                  float a_scale, const float* bias, float* c, int ldc) {
  for (int r = 0; r < rows; ++r) {
    const std::int8_t* w_row = wq + static_cast<std::ptrdiff_t>(r) * k_padded;
    const float cs = scales[r] * a_scale;
    const std::int32_t zpc = 128 * row_sums[r];
    const float b = bias != nullptr ? bias[r] : 0.0f;
    float* c_row = c + static_cast<std::ptrdiff_t>(r) * ldc;
    for (int j = 0; j < n; ++j) {
      std::int32_t acc = 0;
      for (int p = 0; p < k; ++p) {
        acc += static_cast<std::int32_t>(act[static_cast<std::ptrdiff_t>(p) * n + j]) *
               static_cast<std::int32_t>(w_row[p]);
      }
      c_row[j] = std::fma(static_cast<float>(acc - zpc), cs, b);
    }
  }
}

}  // namespace

bool quantized_inference() { return t_quantized_inference; }

void set_quantized_inference(bool on) { t_quantized_inference = on; }

void quantize_weight_rows(const float* w, int rows, int cols, std::int8_t* wq, float* scales,
                          std::int32_t* row_sums) {
  const int k_padded = quantized_k_padded(cols);
  for (int r = 0; r < rows; ++r) {
    const float* src = w + static_cast<std::ptrdiff_t>(r) * cols;
    const float max_abs = max_abs_span(src, static_cast<std::size_t>(cols));
    const float scale = max_abs / 127.0f;
    const float inv = max_abs > 0.0f ? 127.0f / max_abs : 0.0f;
    std::int8_t* dst = wq + static_cast<std::ptrdiff_t>(r) * k_padded;
    std::int32_t sum = 0;
    int p = 0;
#if MEANET_QGEMM_SSE2
    const __m128 vinv = _mm_set1_ps(inv);
    const __m128i lo_bound = _mm_set1_epi16(-127);
    const __m128i hi_bound = _mm_set1_epi16(127);
    __m128i vsum = _mm_setzero_si128();
    for (; p + 8 <= cols; p += 8) {
      const __m128i q0 = _mm_cvtps_epi32(_mm_mul_ps(_mm_loadu_ps(src + p), vinv));
      const __m128i q1 = _mm_cvtps_epi32(_mm_mul_ps(_mm_loadu_ps(src + p + 4), vinv));
      const __m128i clamped =
          _mm_min_epi16(hi_bound, _mm_max_epi16(lo_bound, _mm_packs_epi32(q0, q1)));
      vsum = _mm_add_epi32(vsum, _mm_madd_epi16(clamped, _mm_set1_epi16(1)));
      _mm_storel_epi64(reinterpret_cast<__m128i*>(dst + p), _mm_packs_epi16(clamped, clamped));
    }
    alignas(16) std::int32_t lanes[4];
    _mm_store_si128(reinterpret_cast<__m128i*>(lanes), vsum);
    sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
#endif
    for (; p < cols; ++p) {
      const int q = static_cast<int>(std::lrintf(src[p] * inv));
      const std::int8_t code = static_cast<std::int8_t>(std::max(-127, std::min(127, q)));
      dst[p] = code;
      sum += code;
    }
    for (p = cols; p < k_padded; ++p) dst[p] = 0;
    scales[r] = scale;
    row_sums[r] = sum;
  }
}

float activation_scale(const float* x, std::size_t n) { return max_abs_span(x, n) / 127.0f; }

void quantize_activations_u8(const float* x, std::size_t n, float scale, std::uint8_t* out) {
  if (scale <= 0.0f) {
    std::memset(out, kActivationZeroPoint, n);
    return;
  }
  const float inv = 1.0f / scale;
  std::size_t i = 0;
#if MEANET_QGEMM_SSE2
  const __m128 vinv = _mm_set1_ps(inv);
  const __m128i vzp = _mm_set1_epi32(kActivationZeroPoint);
  for (; i + 16 <= n; i += 16) {
    const __m128i q0 =
        _mm_add_epi32(_mm_cvtps_epi32(_mm_mul_ps(_mm_loadu_ps(x + i), vinv)), vzp);
    const __m128i q1 =
        _mm_add_epi32(_mm_cvtps_epi32(_mm_mul_ps(_mm_loadu_ps(x + i + 4), vinv)), vzp);
    const __m128i q2 =
        _mm_add_epi32(_mm_cvtps_epi32(_mm_mul_ps(_mm_loadu_ps(x + i + 8), vinv)), vzp);
    const __m128i q3 =
        _mm_add_epi32(_mm_cvtps_epi32(_mm_mul_ps(_mm_loadu_ps(x + i + 12), vinv)), vzp);
    // packs/packus saturation IS the [0, 255] clamp.
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm_packus_epi16(_mm_packs_epi32(q0, q1), _mm_packs_epi32(q2, q3)));
  }
#endif
  for (; i < n; ++i) {
    const int q = static_cast<int>(std::lrintf(x[i] * inv)) + kActivationZeroPoint;
    out[i] = static_cast<std::uint8_t>(std::max(0, std::min(255, q)));
  }
}

QuantizedWeights quantize_weights_int8(const float* w, int rows, int cols) {
  if (rows < 0 || cols < 0) throw std::invalid_argument("quantize_weights_int8: negative shape");
  QuantizedWeights q;
  q.rows = rows;
  q.cols = cols;
  q.k_padded = quantized_k_padded(cols);
  q.data.resize(static_cast<std::size_t>(rows) * q.k_padded);
  q.scale.resize(static_cast<std::size_t>(rows));
  q.row_sum.resize(static_cast<std::size_t>(rows));
  if (rows > 0 && cols > 0) {
    quantize_weight_rows(w, rows, cols, q.data.data(), q.scale.data(), q.row_sum.data());
  }
  return q;
}

void qgemm_u8s8(int rows, int n, int k, int k_padded, const std::int8_t* wq, const float* scales,
                const std::int32_t* row_sums, const std::uint8_t* act, float a_scale,
                const float* bias, float* c, int ldc) {
  if (rows < 0 || n < 0 || k < 0) throw std::invalid_argument("qgemm_u8s8: negative dimension");
  if (k_padded < k || k_padded % 4 != 0) {
    throw std::invalid_argument("qgemm_u8s8: k_padded must be k rounded up to a multiple of 4");
  }
  if (rows == 0 || n == 0) return;
  if (k == 0) {
    for (int r = 0; r < rows; ++r) {
      const float b = bias != nullptr ? bias[r] : 0.0f;
      float* c_row = c + static_cast<std::ptrdiff_t>(r) * ldc;
      for (int j = 0; j < n; ++j) c_row[j] = b;
    }
    return;
  }

  const Int8Kernel kernel = int8_kernel();
#if defined(__x86_64__) || defined(_M_X64)
  if (kernel != Int8Kernel::kScalar) {
    const int kgroups = k_padded / 4;
    const int n_panels = (n + 15) / 16;
    std::uint8_t* pack = Workspace::tls().byte_buffer(
        Workspace::kQuantPack,
        static_cast<std::size_t>(n_panels) * kgroups * 64);
    pack_activations(act, k, n, kgroups, pack);
    detail::QgemmArgs args;
    args.rows = rows;
    args.n = n;
    args.kgroups = kgroups;
    args.wq = wq;
    args.scales = scales;
    args.row_sums = row_sums;
    args.pack = pack;
    args.a_scale = a_scale;
    args.bias = bias;
    args.c = c;
    args.ldc = ldc;
    if (kernel == Int8Kernel::kAvx512Vnni) {
      detail::qgemm_avx512vnni(args);
    } else {
      detail::qgemm_avxvnni(args);
    }
    return;
  }
#else
  (void)kernel;
#endif
  qgemm_scalar(rows, n, k, k_padded, wq, scales, row_sums, act, a_scale, bias, c, ldc);
}

void qgemm_u8s8_batched_nchw(int rows, int batch, int cols_per_image, int k, int k_padded,
                             const std::int8_t* wq, const float* scales,
                             const std::int32_t* row_sums, const std::uint8_t* act,
                             float a_scale, const float* bias, float* c,
                             std::int64_t c_image_stride, int ldc) {
  if (batch < 0 || cols_per_image < 0) {
    throw std::invalid_argument("qgemm_u8s8_batched_nchw: negative batch shape");
  }
  if (batch <= 1) {
    // One image: the NCHW block is a plain dense C — no scatter needed.
    if (batch == 1) {
      qgemm_u8s8(rows, cols_per_image, k, k_padded, wq, scales, row_sums, act, a_scale, bias, c,
                 ldc);
    }
    return;
  }
  const int n = batch * cols_per_image;
  // The kernels want a dense C; run them into workspace scratch and
  // scatter each image's row segment into its NCHW slot. The scatter is
  // a pure copy, so values match the per-image entry point bit for bit.
  float* scratch = reinterpret_cast<float*>(Workspace::tls().byte_buffer(
      Workspace::kQuantOut, static_cast<std::size_t>(rows) * n * sizeof(float)));
  qgemm_u8s8(rows, n, k, k_padded, wq, scales, row_sums, act, a_scale, bias, scratch, n);
  for (int r = 0; r < rows; ++r) {
    const float* src_row = scratch + static_cast<std::ptrdiff_t>(r) * n;
    for (int b = 0; b < batch; ++b) {
      std::memcpy(c + static_cast<std::ptrdiff_t>(b) * c_image_stride +
                      static_cast<std::ptrdiff_t>(r) * ldc,
                  src_row + static_cast<std::ptrdiff_t>(b) * cols_per_image,
                  static_cast<std::size_t>(cols_per_image) * sizeof(float));
    }
  }
}

}  // namespace meanet::ops
