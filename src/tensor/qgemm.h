// int8 quantized GEMM: u8 activations · s8 weights -> s32, with a
// folded-scale requantization back to float in the epilogue.
//
// Quantization scheme (the standard symmetric-weight / asymmetric-
// activation serving layout):
//   - weights:     per-output-row symmetric, s8 in [-127, 127],
//                  w ≈ wq * scale[r]; rows are zero-padded in k to a
//                  multiple of 4 (the VNNI dot-product group size).
//   - activations: per-tensor, u8 with a fixed zero point of 128,
//                  x ≈ (xq - 128) * a_scale.
// The integer kernel accumulates sum_k xq*wq exactly in s32; the
// epilogue folds the zero point out with the precomputed row sums:
//   C[r,j] = (acc - 128 * row_sum[r]) * (scale[r] * a_scale) + bias[r]
// Accumulation is exact integer arithmetic and the epilogue uses one
// fused multiply-add in every tier, so the scalar and VNNI kernels are
// bit-identical — the int8 parity tests assert equality, not
// tolerance. Kernel tiers (tensor/simd.h): AVX512-VNNI / AVX-VNNI
// vpdpbusd, else scalar. There is deliberately no AVX2 vpmaddubsw
// tier — its int16 intermediate saturates (see simd.h).
//
// The quantized *serving* path is opt-in per thread:
// set_quantized_inference(true) (or a QuantizedScope) makes eval conv
// forwards on that thread quantize their (BN-folded) weights and
// im2col activations on the fly and run this kernel instead of the
// float GEMM. Thread-local so sessions with different
// EngineConfig::quantized_inference settings can share one process
// (each worker sets its own flag).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace meanet::ops {

// ----- Serving-path selection (thread-local) ---------------------------

/// True while eval conv forwards on the calling thread use the int8
/// path. Defaults to false.
bool quantized_inference();
void set_quantized_inference(bool on);

/// RAII set/restore of the calling thread's quantized-inference flag.
class QuantizedScope {
 public:
  explicit QuantizedScope(bool on) : previous_(quantized_inference()) {
    set_quantized_inference(on);
  }
  ~QuantizedScope() { set_quantized_inference(previous_); }
  QuantizedScope(const QuantizedScope&) = delete;
  QuantizedScope& operator=(const QuantizedScope&) = delete;

 private:
  bool previous_;
};

// ----- Quantization ----------------------------------------------------

/// Activation zero point: u8 codes are x/scale + 128.
constexpr int kActivationZeroPoint = 128;

/// k rounded up to the VNNI dot-product group (4).
constexpr int quantized_k_padded(int k) { return (k + 3) & ~3; }

/// Quantizes w [rows, cols] (row-major, ld = cols) per row into
/// wq [rows, k_padded(cols)] with zero-padded tails, per-row scales
/// (max|w_row| / 127; 0 for an all-zero row), and per-row sums of wq
/// (the zero-point correction term).
void quantize_weight_rows(const float* w, int rows, int cols, std::int8_t* wq, float* scales,
                          std::int32_t* row_sums);

/// Per-tensor activation scale: max|x| / 127 (0 for an all-zero
/// tensor, which makes the quantized codes collapse to the zero point
/// and the epilogue multiply by 0 — output degenerates to the bias,
/// exactly like the float path on zero input).
float activation_scale(const float* x, std::size_t n);

/// xq = clamp(round(x / scale) + 128, 0, 255); scale == 0 writes the
/// zero point everywhere.
void quantize_activations_u8(const float* x, std::size_t n, float scale, std::uint8_t* out);

/// Owning int8 weight storage — the "real quantized weights" API
/// nn/quantize builds on (the hot path uses the workspace-backed
/// quantize_weight_rows instead).
struct QuantizedWeights {
  int rows = 0;
  int cols = 0;
  int k_padded = 0;
  std::vector<std::int8_t> data;      // [rows, k_padded]
  std::vector<float> scale;           // [rows]
  std::vector<std::int32_t> row_sum;  // [rows]
};

QuantizedWeights quantize_weights_int8(const float* w, int rows, int cols);

// ----- Kernel ----------------------------------------------------------

/// C[r, j] = (sum_{p<k} act[p, j] * wq[r, p] - 128 * row_sums[r])
///           * (scales[r] * a_scale) + bias[r]        (bias null = 0)
/// act is u8 [k, n] row-major with ld = n (im2col columns, quantized);
/// wq is [rows, k_padded] with zero-padded tails. Overwrites the full
/// [rows, n] block of C (leading dimension ldc). Dispatches to the
/// active int8 kernel tier; scratch comes from the per-thread
/// workspace.
void qgemm_u8s8(int rows, int n, int k, int k_padded, const std::int8_t* wq, const float* scales,
                const std::int32_t* row_sums, const std::uint8_t* act, float a_scale,
                const float* bias, float* c, int ldc);

/// Whole-batch qgemm into NCHW output: `act` is the batched byte
/// im2col [k, batch * cols_per_image] (ops::im2col_u8_batched), and
/// image b's [rows, cols_per_image] result block lands at
/// c + b * c_image_stride (row stride ldc). One kernel invocation
/// covers the full batch width — activations are packed once and every
/// weight row is streamed once per batch instead of once per image.
/// The integer accumulation is exact and the epilogue math per element
/// is identical to qgemm_u8s8, so results are bit-identical to calling
/// the per-image entry point with the same a_scale, at any batch
/// chunking. (The intermediate C is a contiguous workspace block
/// scattered per image — the VNNI kernels keep their dense row
/// writes.)
void qgemm_u8s8_batched_nchw(int rows, int batch, int cols_per_image, int k, int k_padded,
                             const std::int8_t* wq, const float* scales,
                             const std::int32_t* row_sums, const std::uint8_t* act,
                             float a_scale, const float* bias, float* c,
                             std::int64_t c_image_stride, int ldc);

}  // namespace meanet::ops
