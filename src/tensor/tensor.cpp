#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace meanet {

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), data_(static_cast<std::size_t>(shape_.numel()), 0.0f) {}

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)), data_(static_cast<std::size_t>(shape_.numel()), fill) {}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)), data_(std::move(values)) {
  if (static_cast<std::int64_t>(data_.size()) != shape_.numel()) {
    throw std::invalid_argument("Tensor: value count " + std::to_string(data_.size()) +
                                " does not match shape " + shape_.to_string());
  }
}

Tensor Tensor::uniform(Shape shape, util::Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = rng.uniform(lo, hi);
  return t;
}

Tensor Tensor::normal(Shape shape, util::Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = rng.normal(mean, stddev);
  return t;
}

float& Tensor::at(std::int64_t i) {
  if (i < 0 || i >= numel()) throw std::out_of_range("Tensor::at flat index");
  return data_[static_cast<std::size_t>(i)];
}

float Tensor::at(std::int64_t i) const {
  if (i < 0 || i >= numel()) throw std::out_of_range("Tensor::at flat index");
  return data_[static_cast<std::size_t>(i)];
}

void Tensor::check_rank4() const {
  if (shape_.rank() != 4) {
    throw std::logic_error("expected rank-4 tensor, got " + shape_.to_string());
  }
}

void Tensor::check_rank2() const {
  if (shape_.rank() != 2) {
    throw std::logic_error("expected rank-2 tensor, got " + shape_.to_string());
  }
}

float& Tensor::at(int n, int c, int h, int w) {
  check_rank4();
  const int C = shape_.channels(), H = shape_.height(), W = shape_.width();
  return data_[static_cast<std::size_t>(((static_cast<std::int64_t>(n) * C + c) * H + h) * W + w)];
}

float Tensor::at(int n, int c, int h, int w) const {
  return const_cast<Tensor*>(this)->at(n, c, h, w);
}

float& Tensor::at(int r, int c) {
  check_rank2();
  return data_[static_cast<std::size_t>(static_cast<std::int64_t>(r) * shape_.dim(1) + c)];
}

float Tensor::at(int r, int c) const { return const_cast<Tensor*>(this)->at(r, c); }

Tensor Tensor::reshaped(Shape new_shape) const& {
  if (new_shape.numel() != numel()) {
    throw std::invalid_argument("reshaped: numel mismatch " + shape_.to_string() + " -> " +
                                new_shape.to_string());
  }
  return Tensor(std::move(new_shape), data_);
}

Tensor Tensor::reshaped(Shape new_shape) && {
  if (new_shape.numel() != numel()) {
    throw std::invalid_argument("reshaped: numel mismatch " + shape_.to_string() + " -> " +
                                new_shape.to_string());
  }
  return Tensor(std::move(new_shape), std::move(data_));
}

Tensor Tensor::slice_batch(int index) const { return slice_batch(index, 1); }

Tensor Tensor::slice_batch(int first, int count) const {
  if (shape_.rank() < 2) throw std::logic_error("slice_batch requires rank >= 2");
  const int batch = shape_.dim(0);
  if (first < 0 || count < 0 || first + count > batch) {
    throw std::out_of_range("slice_batch range [" + std::to_string(first) + ", " +
                            std::to_string(first + count) + ") out of batch " +
                            std::to_string(batch));
  }
  std::vector<int> dims = shape_.dims();
  dims[0] = count;
  const std::int64_t stride = numel() / batch;
  Tensor out{Shape(dims)};
  std::copy(data_.begin() + static_cast<std::ptrdiff_t>(first * stride),
            data_.begin() + static_cast<std::ptrdiff_t>((first + count) * stride),
            out.data_.begin());
  return out;
}

void Tensor::fill(float value) { std::fill(data_.begin(), data_.end(), value); }

namespace {
void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument(std::string(op) + ": shape mismatch " + a.shape().to_string() +
                                " vs " + b.shape().to_string());
  }
}
}  // namespace

void Tensor::add_(const Tensor& other) {
  check_same_shape(*this, other, "add_");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::sub_(const Tensor& other) {
  check_same_shape(*this, other, "sub_");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
}

void Tensor::scale_(float factor) {
  for (auto& v : data_) v *= factor;
}

void Tensor::axpy_(float factor, const Tensor& other) {
  check_same_shape(*this, other, "axpy_");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += factor * other.data_[i];
}

float Tensor::sum() const { return std::accumulate(data_.begin(), data_.end(), 0.0f); }

float Tensor::max() const {
  if (data_.empty()) throw std::logic_error("max of empty tensor");
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::min() const {
  if (data_.empty()) throw std::logic_error("min of empty tensor");
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::mean() const {
  if (data_.empty()) return 0.0f;
  return sum() / static_cast<float>(data_.size());
}

std::string Tensor::to_string(int max_elements) const {
  std::string out = "Tensor" + shape_.to_string() + " {";
  const std::int64_t n = std::min<std::int64_t>(numel(), max_elements);
  for (std::int64_t i = 0; i < n; ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(data_[static_cast<std::size_t>(i)]);
  }
  if (numel() > n) out += ", ...";
  out += "}";
  return out;
}

Tensor operator+(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out.add_(b);
  return out;
}

Tensor operator-(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out.sub_(b);
  return out;
}

Tensor operator*(const Tensor& a, float s) {
  Tensor out = a;
  out.scale_(s);
  return out;
}

bool allclose(const Tensor& a, const Tensor& b, float tol) {
  if (a.shape() != b.shape()) return false;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    if (std::fabs(a[i] - b[i]) > tol) return false;
  }
  return true;
}

}  // namespace meanet
