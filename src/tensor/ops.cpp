#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

namespace meanet::ops {

namespace {

// Inner kernel for the common non-transposed case: C[m,n] += A[m,k]*B[k,n]
// with i-k-j loop order so the innermost loop streams B and C rows
// (auto-vectorizes well with -O3 on a single core).
void gemm_nn(int m, int n, int k, float alpha, const float* a, int lda, const float* b, int ldb,
             float* c, int ldc) {
  for (int i = 0; i < m; ++i) {
    float* c_row = c + static_cast<std::ptrdiff_t>(i) * ldc;
    const float* a_row = a + static_cast<std::ptrdiff_t>(i) * lda;
    for (int p = 0; p < k; ++p) {
      const float a_ip = alpha * a_row[p];
      if (a_ip == 0.0f) continue;
      const float* b_row = b + static_cast<std::ptrdiff_t>(p) * ldb;
      for (int j = 0; j < n; ++j) {
        c_row[j] += a_ip * b_row[j];
      }
    }
  }
}

void gemm_tn(int m, int n, int k, float alpha, const float* a, int lda, const float* b, int ldb,
             float* c, int ldc) {
  // A is stored [k, m]; op(A)[i,p] = A[p,i].
  for (int p = 0; p < k; ++p) {
    const float* a_row = a + static_cast<std::ptrdiff_t>(p) * lda;
    const float* b_row = b + static_cast<std::ptrdiff_t>(p) * ldb;
    for (int i = 0; i < m; ++i) {
      const float a_ip = alpha * a_row[i];
      if (a_ip == 0.0f) continue;
      float* c_row = c + static_cast<std::ptrdiff_t>(i) * ldc;
      for (int j = 0; j < n; ++j) {
        c_row[j] += a_ip * b_row[j];
      }
    }
  }
}

void gemm_nt(int m, int n, int k, float alpha, const float* a, int lda, const float* b, int ldb,
             float* c, int ldc) {
  // B is stored [n, k]; op(B)[p,j] = B[j,p]. Dot-product formulation.
  for (int i = 0; i < m; ++i) {
    const float* a_row = a + static_cast<std::ptrdiff_t>(i) * lda;
    float* c_row = c + static_cast<std::ptrdiff_t>(i) * ldc;
    for (int j = 0; j < n; ++j) {
      const float* b_row = b + static_cast<std::ptrdiff_t>(j) * ldb;
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) acc += a_row[p] * b_row[p];
      c_row[j] += alpha * acc;
    }
  }
}

void gemm_tt(int m, int n, int k, float alpha, const float* a, int lda, const float* b, int ldb,
             float* c, int ldc) {
  for (int i = 0; i < m; ++i) {
    float* c_row = c + static_cast<std::ptrdiff_t>(i) * ldc;
    for (int j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) {
        acc += a[static_cast<std::ptrdiff_t>(p) * lda + i] *
               b[static_cast<std::ptrdiff_t>(j) * ldb + p];
      }
      c_row[j] += alpha * acc;
    }
  }
}

}  // namespace

void gemm(bool transpose_a, bool transpose_b, int m, int n, int k, float alpha, const float* a,
          int lda, const float* b, int ldb, float beta, float* c, int ldc) {
  if (m < 0 || n < 0 || k < 0) throw std::invalid_argument("gemm: negative dimension");
  if (beta == 0.0f) {
    for (int i = 0; i < m; ++i) {
      std::memset(c + static_cast<std::ptrdiff_t>(i) * ldc, 0, sizeof(float) * static_cast<std::size_t>(n));
    }
  } else if (beta != 1.0f) {
    for (int i = 0; i < m; ++i) {
      float* c_row = c + static_cast<std::ptrdiff_t>(i) * ldc;
      for (int j = 0; j < n; ++j) c_row[j] *= beta;
    }
  }
  if (m == 0 || n == 0 || k == 0) return;
  if (!transpose_a && !transpose_b) {
    gemm_nn(m, n, k, alpha, a, lda, b, ldb, c, ldc);
  } else if (transpose_a && !transpose_b) {
    gemm_tn(m, n, k, alpha, a, lda, b, ldb, c, ldc);
  } else if (!transpose_a && transpose_b) {
    gemm_nt(m, n, k, alpha, a, lda, b, ldb, c, ldc);
  } else {
    gemm_tt(m, n, k, alpha, a, lda, b, ldb, c, ldc);
  }
}

Tensor matmul(const Tensor& a, const Tensor& b, bool transpose_a, bool transpose_b) {
  if (a.shape().rank() != 2 || b.shape().rank() != 2) {
    throw std::invalid_argument("matmul expects rank-2 tensors");
  }
  const int a_rows = a.shape().dim(0), a_cols = a.shape().dim(1);
  const int b_rows = b.shape().dim(0), b_cols = b.shape().dim(1);
  const int m = transpose_a ? a_cols : a_rows;
  const int k = transpose_a ? a_rows : a_cols;
  const int k2 = transpose_b ? b_cols : b_rows;
  const int n = transpose_b ? b_rows : b_cols;
  if (k != k2) {
    throw std::invalid_argument("matmul: inner dimension mismatch " + a.shape().to_string() +
                                " x " + b.shape().to_string());
  }
  Tensor c(Shape{m, n});
  gemm(transpose_a, transpose_b, m, n, k, 1.0f, a.data(), a_cols, b.data(), b_cols, 0.0f, c.data(),
       n);
  return c;
}

void im2col(const float* image, const ConvGeometry& g, float* columns) {
  const int out_h = g.out_height();
  const int out_w = g.out_width();
  const int out_hw = out_h * out_w;
  for (int c = 0; c < g.in_channels; ++c) {
    const float* channel = image + static_cast<std::ptrdiff_t>(c) * g.in_height * g.in_width;
    for (int kh = 0; kh < g.kernel; ++kh) {
      for (int kw = 0; kw < g.kernel; ++kw) {
        float* out_row =
            columns + static_cast<std::ptrdiff_t>((c * g.kernel + kh) * g.kernel + kw) * out_hw;
        for (int oh = 0; oh < out_h; ++oh) {
          const int ih = oh * g.stride - g.padding + kh;
          if (ih < 0 || ih >= g.in_height) {
            std::memset(out_row + static_cast<std::ptrdiff_t>(oh) * out_w, 0,
                        sizeof(float) * static_cast<std::size_t>(out_w));
            continue;
          }
          const float* in_row = channel + static_cast<std::ptrdiff_t>(ih) * g.in_width;
          float* dst = out_row + static_cast<std::ptrdiff_t>(oh) * out_w;
          for (int ow = 0; ow < out_w; ++ow) {
            const int iw = ow * g.stride - g.padding + kw;
            dst[ow] = (iw >= 0 && iw < g.in_width) ? in_row[iw] : 0.0f;
          }
        }
      }
    }
  }
}

void col2im(const float* columns, const ConvGeometry& g, float* image) {
  const int out_h = g.out_height();
  const int out_w = g.out_width();
  const int out_hw = out_h * out_w;
  for (int c = 0; c < g.in_channels; ++c) {
    float* channel = image + static_cast<std::ptrdiff_t>(c) * g.in_height * g.in_width;
    for (int kh = 0; kh < g.kernel; ++kh) {
      for (int kw = 0; kw < g.kernel; ++kw) {
        const float* col_row =
            columns + static_cast<std::ptrdiff_t>((c * g.kernel + kh) * g.kernel + kw) * out_hw;
        for (int oh = 0; oh < out_h; ++oh) {
          const int ih = oh * g.stride - g.padding + kh;
          if (ih < 0 || ih >= g.in_height) continue;
          float* in_row = channel + static_cast<std::ptrdiff_t>(ih) * g.in_width;
          const float* src = col_row + static_cast<std::ptrdiff_t>(oh) * out_w;
          for (int ow = 0; ow < out_w; ++ow) {
            const int iw = ow * g.stride - g.padding + kw;
            if (iw >= 0 && iw < g.in_width) in_row[iw] += src[ow];
          }
        }
      }
    }
  }
}

Tensor softmax(const Tensor& logits) {
  if (logits.shape().rank() != 2) throw std::invalid_argument("softmax expects [rows, cols]");
  const int rows = logits.shape().dim(0), cols = logits.shape().dim(1);
  Tensor out(logits.shape());
  for (int r = 0; r < rows; ++r) {
    const float* in = logits.data() + static_cast<std::ptrdiff_t>(r) * cols;
    float* o = out.data() + static_cast<std::ptrdiff_t>(r) * cols;
    float mx = in[0];
    for (int c = 1; c < cols; ++c) mx = std::max(mx, in[c]);
    float total = 0.0f;
    for (int c = 0; c < cols; ++c) {
      o[c] = std::exp(in[c] - mx);
      total += o[c];
    }
    const float inv = 1.0f / total;
    for (int c = 0; c < cols; ++c) o[c] *= inv;
  }
  return out;
}

Tensor log_softmax(const Tensor& logits) {
  if (logits.shape().rank() != 2) throw std::invalid_argument("log_softmax expects [rows, cols]");
  const int rows = logits.shape().dim(0), cols = logits.shape().dim(1);
  Tensor out(logits.shape());
  for (int r = 0; r < rows; ++r) {
    const float* in = logits.data() + static_cast<std::ptrdiff_t>(r) * cols;
    float* o = out.data() + static_cast<std::ptrdiff_t>(r) * cols;
    float mx = in[0];
    for (int c = 1; c < cols; ++c) mx = std::max(mx, in[c]);
    float total = 0.0f;
    for (int c = 0; c < cols; ++c) total += std::exp(in[c] - mx);
    const float log_z = mx + std::log(total);
    for (int c = 0; c < cols; ++c) o[c] = in[c] - log_z;
  }
  return out;
}

std::vector<float> row_entropy(const Tensor& probabilities) {
  if (probabilities.shape().rank() != 2) {
    throw std::invalid_argument("row_entropy expects [rows, cols]");
  }
  const int rows = probabilities.shape().dim(0), cols = probabilities.shape().dim(1);
  std::vector<float> entropy(static_cast<std::size_t>(rows), 0.0f);
  for (int r = 0; r < rows; ++r) {
    const float* p = probabilities.data() + static_cast<std::ptrdiff_t>(r) * cols;
    float h = 0.0f;
    for (int c = 0; c < cols; ++c) {
      if (p[c] > 0.0f) h -= p[c] * std::log(p[c]);
    }
    entropy[static_cast<std::size_t>(r)] = h;
  }
  return entropy;
}

std::vector<int> row_argmax(const Tensor& values) {
  if (values.shape().rank() != 2) throw std::invalid_argument("row_argmax expects [rows, cols]");
  const int rows = values.shape().dim(0), cols = values.shape().dim(1);
  std::vector<int> idx(static_cast<std::size_t>(rows), 0);
  for (int r = 0; r < rows; ++r) {
    const float* v = values.data() + static_cast<std::ptrdiff_t>(r) * cols;
    int best = 0;
    for (int c = 1; c < cols; ++c) {
      if (v[c] > v[best]) best = c;
    }
    idx[static_cast<std::size_t>(r)] = best;
  }
  return idx;
}

std::vector<float> row_max(const Tensor& values) {
  if (values.shape().rank() != 2) throw std::invalid_argument("row_max expects [rows, cols]");
  const int rows = values.shape().dim(0), cols = values.shape().dim(1);
  std::vector<float> out(static_cast<std::size_t>(rows), 0.0f);
  for (int r = 0; r < rows; ++r) {
    const float* v = values.data() + static_cast<std::ptrdiff_t>(r) * cols;
    float mx = v[0];
    for (int c = 1; c < cols; ++c) mx = std::max(mx, v[c]);
    out[static_cast<std::size_t>(r)] = mx;
  }
  return out;
}

std::vector<float> row_margin(const Tensor& values) {
  if (values.shape().rank() != 2) throw std::invalid_argument("row_margin expects [rows, cols]");
  const int rows = values.shape().dim(0), cols = values.shape().dim(1);
  std::vector<float> out(static_cast<std::size_t>(rows), 0.0f);
  for (int r = 0; r < rows; ++r) {
    const float* v = values.data() + static_cast<std::ptrdiff_t>(r) * cols;
    float top1 = v[0];
    float top2 = -std::numeric_limits<float>::infinity();
    for (int c = 1; c < cols; ++c) {
      if (v[c] > top1) {
        top2 = top1;
        top1 = v[c];
      } else if (v[c] > top2) {
        top2 = v[c];
      }
    }
    out[static_cast<std::size_t>(r)] = cols == 1 ? top1 : top1 - top2;
  }
  return out;
}

Tensor gather_rows(const Tensor& source, const std::vector<int>& rows) {
  if (source.shape().rank() < 1 || source.shape().dim(0) <= 0) {
    throw std::invalid_argument("gather_rows: source needs a non-empty batch dimension");
  }
  const int batch = source.shape().dim(0);
  std::vector<int> dims = source.shape().dims();
  dims[0] = static_cast<int>(rows.size());
  Tensor out{Shape(dims)};
  const std::int64_t stride = source.numel() / batch;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i] < 0 || rows[i] >= batch) {
      throw std::invalid_argument("gather_rows: row index out of range");
    }
    const float* src = source.data() + rows[i] * stride;
    std::copy(src, src + stride, out.data() + static_cast<std::int64_t>(i) * stride);
  }
  return out;
}

}  // namespace meanet::ops
