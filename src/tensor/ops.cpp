#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

namespace meanet::ops {

namespace {

/// Shared im2col writer over floats (fill 0) or u8 codes (fill the
/// activation zero point). `columns` points at the image's own column
/// block; `col_ld` is the row stride of the enclosing matrix — out_hw
/// for the single-image entry points, batch*out_hw when a batch of
/// blocks sits side by side (im2col_batched).
template <typename T>
void im2col_into(const T* image, const ConvGeometry& g, T* columns, std::ptrdiff_t col_ld,
                 T fill) {
  const int out_h = g.out_height();
  const int out_w = g.out_width();
  for (int c = 0; c < g.in_channels; ++c) {
    const T* channel = image + static_cast<std::ptrdiff_t>(c) * g.in_height * g.in_width;
    for (int kh = 0; kh < g.kernel; ++kh) {
      for (int kw = 0; kw < g.kernel; ++kw) {
        T* out_row =
            columns + static_cast<std::ptrdiff_t>((c * g.kernel + kh) * g.kernel + kw) * col_ld;
        for (int oh = 0; oh < out_h; ++oh) {
          const int ih = oh * g.stride - g.padding + kh;
          T* dst = out_row + static_cast<std::ptrdiff_t>(oh) * out_w;
          if (ih < 0 || ih >= g.in_height) {
            std::fill(dst, dst + out_w, fill);
            continue;
          }
          const T* in_row = channel + static_cast<std::ptrdiff_t>(ih) * g.in_width;
          if (g.stride == 1) {
            // Contiguous tap: dst[ow] = in_row[ow + kw - padding] where
            // in bounds — one memcpy between two fill-padded fringes.
            const int shift = kw - g.padding;
            const int begin = std::max(0, -shift);
            const int end = std::min(out_w, g.in_width - shift);
            if (begin > 0) std::fill(dst, dst + begin, fill);
            if (end > begin) {
              std::memcpy(dst + begin, in_row + begin + shift,
                          sizeof(T) * static_cast<std::size_t>(end - begin));
            }
            if (end < out_w) std::fill(dst + std::max(begin, end), dst + out_w, fill);
            continue;
          }
          for (int ow = 0; ow < out_w; ++ow) {
            const int iw = ow * g.stride - g.padding + kw;
            dst[ow] = (iw >= 0 && iw < g.in_width) ? in_row[iw] : fill;
          }
        }
      }
    }
  }
}

/// The zero-point fill of the byte-domain paths (qgemm.h
/// kActivationZeroPoint): a float 0 quantizes to code
/// round(0 * inv) + 128 = 128, so padding bytes match what quantizing
/// a zero-padded float matrix would have produced.
constexpr std::uint8_t kU8ZeroPoint = 128;

}  // namespace

void im2col(const float* image, const ConvGeometry& g, float* columns) {
  im2col_into<float>(image, g, columns, g.out_height() * g.out_width(), 0.0f);
}

void im2col_u8(const std::uint8_t* image, const ConvGeometry& g, std::uint8_t* columns) {
  im2col_into<std::uint8_t>(image, g, columns, g.out_height() * g.out_width(), kU8ZeroPoint);
}

void im2col_batched(const float* images, std::int64_t image_stride, int batch,
                    const ConvGeometry& g, float* columns) {
  const int out_hw = g.out_height() * g.out_width();
  const std::ptrdiff_t col_ld = static_cast<std::ptrdiff_t>(batch) * out_hw;
  for (int n = 0; n < batch; ++n) {
    im2col_into<float>(images + n * image_stride, g,
                       columns + static_cast<std::ptrdiff_t>(n) * out_hw, col_ld, 0.0f);
  }
}

void im2col_u8_batched(const std::uint8_t* images, std::int64_t image_stride, int batch,
                       const ConvGeometry& g, std::uint8_t* columns) {
  const int out_hw = g.out_height() * g.out_width();
  const std::ptrdiff_t col_ld = static_cast<std::ptrdiff_t>(batch) * out_hw;
  for (int n = 0; n < batch; ++n) {
    im2col_into<std::uint8_t>(images + n * image_stride, g,
                              columns + static_cast<std::ptrdiff_t>(n) * out_hw, col_ld,
                              kU8ZeroPoint);
  }
}

void col2im(const float* columns, const ConvGeometry& g, float* image) {
  const int out_h = g.out_height();
  const int out_w = g.out_width();
  const int out_hw = out_h * out_w;
  for (int c = 0; c < g.in_channels; ++c) {
    float* channel = image + static_cast<std::ptrdiff_t>(c) * g.in_height * g.in_width;
    for (int kh = 0; kh < g.kernel; ++kh) {
      for (int kw = 0; kw < g.kernel; ++kw) {
        const float* col_row =
            columns + static_cast<std::ptrdiff_t>((c * g.kernel + kh) * g.kernel + kw) * out_hw;
        for (int oh = 0; oh < out_h; ++oh) {
          const int ih = oh * g.stride - g.padding + kh;
          if (ih < 0 || ih >= g.in_height) continue;
          float* in_row = channel + static_cast<std::ptrdiff_t>(ih) * g.in_width;
          const float* src = col_row + static_cast<std::ptrdiff_t>(oh) * out_w;
          for (int ow = 0; ow < out_w; ++ow) {
            const int iw = ow * g.stride - g.padding + kw;
            if (iw >= 0 && iw < g.in_width) in_row[iw] += src[ow];
          }
        }
      }
    }
  }
}

void softmax_into(const Tensor& logits, Tensor& out) {
  if (logits.shape().rank() != 2) throw std::invalid_argument("softmax expects [rows, cols]");
  const int rows = logits.shape().dim(0), cols = logits.shape().dim(1);
  if (&out != &logits && out.shape() != logits.shape()) out = Tensor(logits.shape());
  for (int r = 0; r < rows; ++r) {
    const float* in = logits.data() + static_cast<std::ptrdiff_t>(r) * cols;
    float* o = out.data() + static_cast<std::ptrdiff_t>(r) * cols;
    float mx = in[0];
    for (int c = 1; c < cols; ++c) mx = std::max(mx, in[c]);
    float total = 0.0f;
    for (int c = 0; c < cols; ++c) {
      o[c] = std::exp(in[c] - mx);
      total += o[c];
    }
    const float inv = 1.0f / total;
    for (int c = 0; c < cols; ++c) o[c] *= inv;
  }
}

Tensor softmax(const Tensor& logits) {
  Tensor out;
  softmax_into(logits, out);
  return out;
}

Tensor log_softmax(const Tensor& logits) {
  if (logits.shape().rank() != 2) throw std::invalid_argument("log_softmax expects [rows, cols]");
  const int rows = logits.shape().dim(0), cols = logits.shape().dim(1);
  Tensor out(logits.shape());
  for (int r = 0; r < rows; ++r) {
    const float* in = logits.data() + static_cast<std::ptrdiff_t>(r) * cols;
    float* o = out.data() + static_cast<std::ptrdiff_t>(r) * cols;
    float mx = in[0];
    for (int c = 1; c < cols; ++c) mx = std::max(mx, in[c]);
    float total = 0.0f;
    for (int c = 0; c < cols; ++c) total += std::exp(in[c] - mx);
    const float log_z = mx + std::log(total);
    for (int c = 0; c < cols; ++c) o[c] = in[c] - log_z;
  }
  return out;
}

void row_entropy_into(const Tensor& probabilities, std::vector<float>& out) {
  if (probabilities.shape().rank() != 2) {
    throw std::invalid_argument("row_entropy expects [rows, cols]");
  }
  const int rows = probabilities.shape().dim(0), cols = probabilities.shape().dim(1);
  out.assign(static_cast<std::size_t>(rows), 0.0f);
  for (int r = 0; r < rows; ++r) {
    const float* p = probabilities.data() + static_cast<std::ptrdiff_t>(r) * cols;
    float h = 0.0f;
    for (int c = 0; c < cols; ++c) {
      if (p[c] > 0.0f) h -= p[c] * std::log(p[c]);
    }
    out[static_cast<std::size_t>(r)] = h;
  }
}

std::vector<float> row_entropy(const Tensor& probabilities) {
  std::vector<float> entropy;
  row_entropy_into(probabilities, entropy);
  return entropy;
}

void row_argmax_into(const Tensor& values, std::vector<int>& out) {
  if (values.shape().rank() != 2) throw std::invalid_argument("row_argmax expects [rows, cols]");
  const int rows = values.shape().dim(0), cols = values.shape().dim(1);
  out.assign(static_cast<std::size_t>(rows), 0);
  for (int r = 0; r < rows; ++r) {
    const float* v = values.data() + static_cast<std::ptrdiff_t>(r) * cols;
    int best = 0;
    for (int c = 1; c < cols; ++c) {
      if (v[c] > v[best]) best = c;
    }
    out[static_cast<std::size_t>(r)] = best;
  }
}

std::vector<int> row_argmax(const Tensor& values) {
  std::vector<int> idx;
  row_argmax_into(values, idx);
  return idx;
}

void row_max_into(const Tensor& values, std::vector<float>& out) {
  if (values.shape().rank() != 2) throw std::invalid_argument("row_max expects [rows, cols]");
  const int rows = values.shape().dim(0), cols = values.shape().dim(1);
  out.assign(static_cast<std::size_t>(rows), 0.0f);
  for (int r = 0; r < rows; ++r) {
    const float* v = values.data() + static_cast<std::ptrdiff_t>(r) * cols;
    float mx = v[0];
    for (int c = 1; c < cols; ++c) mx = std::max(mx, v[c]);
    out[static_cast<std::size_t>(r)] = mx;
  }
}

std::vector<float> row_max(const Tensor& values) {
  std::vector<float> out;
  row_max_into(values, out);
  return out;
}

void row_margin_into(const Tensor& values, std::vector<float>& out) {
  if (values.shape().rank() != 2) throw std::invalid_argument("row_margin expects [rows, cols]");
  const int rows = values.shape().dim(0), cols = values.shape().dim(1);
  out.assign(static_cast<std::size_t>(rows), 0.0f);
  for (int r = 0; r < rows; ++r) {
    const float* v = values.data() + static_cast<std::ptrdiff_t>(r) * cols;
    float top1 = v[0];
    float top2 = -std::numeric_limits<float>::infinity();
    for (int c = 1; c < cols; ++c) {
      if (v[c] > top1) {
        top2 = top1;
        top1 = v[c];
      } else if (v[c] > top2) {
        top2 = v[c];
      }
    }
    out[static_cast<std::size_t>(r)] = cols == 1 ? top1 : top1 - top2;
  }
}

std::vector<float> row_margin(const Tensor& values) {
  std::vector<float> out;
  row_margin_into(values, out);
  return out;
}

Tensor gather_rows(const Tensor& source, const std::vector<int>& rows) {
  if (source.shape().rank() < 1 || source.shape().dim(0) <= 0) {
    throw std::invalid_argument("gather_rows: source needs a non-empty batch dimension");
  }
  const int batch = source.shape().dim(0);
  std::vector<int> dims = source.shape().dims();
  dims[0] = static_cast<int>(rows.size());
  Tensor out{Shape(dims)};
  const std::int64_t stride = source.numel() / batch;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i] < 0 || rows[i] >= batch) {
      throw std::invalid_argument("gather_rows: row index out of range");
    }
    const float* src = source.data() + rows[i] * stride;
    std::copy(src, src + stride, out.data() + static_cast<std::int64_t>(i) * stride);
  }
  return out;
}

}  // namespace meanet::ops
