// Dense float tensor with value semantics.
//
// This is the numeric substrate for the whole library: a contiguous
// row-major float buffer plus a Shape. It deliberately has no view /
// stride machinery — every layer works on contiguous NCHW or NC data,
// which keeps the backprop code simple and the memory behaviour obvious
// (important because the training-memory model in nn/training_memory.h
// accounts for these buffers byte-for-byte).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/shape.h"
#include "util/rng.h"

namespace meanet {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape);
  Tensor(Shape shape, float fill);
  Tensor(Shape shape, std::vector<float> values);

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape), 0.0f); }
  static Tensor ones(Shape shape) { return Tensor(std::move(shape), 1.0f); }
  static Tensor full(Shape shape, float v) { return Tensor(std::move(shape), v); }

  /// I.i.d. uniform entries in [lo, hi).
  static Tensor uniform(Shape shape, util::Rng& rng, float lo = 0.0f, float hi = 1.0f);

  /// I.i.d. normal entries.
  static Tensor normal(Shape shape, util::Rng& rng, float mean = 0.0f, float stddev = 1.0f);

  const Shape& shape() const { return shape_; }
  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& values() { return data_; }
  const std::vector<float>& values() const { return data_; }

  float& operator[](std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
  float operator[](std::int64_t i) const { return data_[static_cast<std::size_t>(i)]; }

  /// Bounds-checked flat access.
  float& at(std::int64_t i);
  float at(std::int64_t i) const;

  // NCHW element access (rank-4 tensors).
  float& at(int n, int c, int h, int w);
  float at(int n, int c, int h, int w) const;

  // Matrix access (rank-2 tensors).
  float& at(int r, int c);
  float at(int r, int c) const;

  /// Returns a tensor with the same data and a new shape; numel must
  /// match. On an lvalue the data is copied; on an rvalue (e.g. a
  /// just-received request frame) the buffer moves into the result, so
  /// re-labelling a temporary's shape is free.
  Tensor reshaped(Shape new_shape) const&;
  Tensor reshaped(Shape new_shape) &&;

  /// Copies row `row` (all trailing dims) out of a rank>=2 tensor, giving
  /// a tensor of shape [1, rest...]. Used to route single instances.
  Tensor slice_batch(int index) const;

  /// Copies rows [first, first+count) along the batch axis.
  Tensor slice_batch(int first, int count) const;

  void fill(float value);

  /// this += other (shapes must match).
  void add_(const Tensor& other);
  /// this -= other.
  void sub_(const Tensor& other);
  /// this *= scalar.
  void scale_(float factor);
  /// this += scalar * other (axpy).
  void axpy_(float factor, const Tensor& other);

  float sum() const;
  float max() const;
  float min() const;
  /// Mean of all elements; 0 for an empty tensor.
  float mean() const;

  std::string to_string(int max_elements = 16) const;

 private:
  void check_rank4() const;
  void check_rank2() const;

  Shape shape_;
  std::vector<float> data_;
};

/// Element-wise helpers returning new tensors.
Tensor operator+(const Tensor& a, const Tensor& b);
Tensor operator-(const Tensor& a, const Tensor& b);
Tensor operator*(const Tensor& a, float s);

/// True if shapes match and elements differ by at most `tol`.
bool allclose(const Tensor& a, const Tensor& b, float tol = 1e-5f);

}  // namespace meanet
