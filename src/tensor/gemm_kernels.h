// Explicit-SIMD float GEMM microkernels, one translation unit per ISA.
//
// Every kernel computes C[0:mr, 0:nr] += sum_p apanel[p][·] *
// bpanel[p][·] over a packed A panel (MR-interleaved, alpha folded by
// the packer) and a packed B panel (NR-interleaved). The accumulation
// is strictly p-sequential per C element, exactly like the portable
// kernel in gemm.cpp — so for a FIXED kernel the result is
// bit-identical at any thread count / stripe layout. Different kernels
// round differently (FMA contracts the multiply-add), which is why the
// parity tests compare kernels with a tolerance but thread counts
// exactly.
//
// The vector kernels are compiled with per-function target attributes
// (the binary stays runnable on baseline hardware); gemm.cpp calls
// them only when tensor/simd.h dispatch selected the matching tier.
#pragma once

namespace meanet::ops::detail {

/// Largest register-tile row count any kernel tier uses (the AVX2 /
/// NEON 6x16 tiles); sizes the bounce tile of the batched-NCHW driver.
constexpr int kMaxMR = 6;

/// apanel: kc groups of `mr_stride` floats; bpanel: kc groups of NR=16
/// floats. Writes the valid mr x nr region of the tile into C.
using MicroKernelFn = void (*)(int kc, const float* apanel, const float* bpanel, float* c,
                               int ldc, int mr, int nr);

/// A float microkernel and the register-tile geometry its packer must
/// produce (A panels are interleaved at stride `mr`).
struct FloatKernel {
  int mr = 0;
  int nr = 0;
  MicroKernelFn fn = nullptr;
  const char* name = "";
};

#if defined(__x86_64__) || defined(_M_X64)
/// 6x16 AVX2+FMA tile: 12 YMM accumulators, one broadcast per A lane.
void micro_kernel_avx2_6x16(int kc, const float* apanel, const float* bpanel, float* c, int ldc,
                            int mr, int nr);
#endif

#if defined(__aarch64__)
/// 6x16 NEON tile: 24 q-register accumulators.
void micro_kernel_neon_6x16(int kc, const float* apanel, const float* bpanel, float* c, int ldc,
                            int mr, int nr);
#endif

}  // namespace meanet::ops::detail
