// VNNI int8 microkernels. Per-function target attributes keep the rest
// of the binary on the baseline ISA; qgemm.cpp calls these only after
// runtime dispatch (tensor/simd.h) confirmed the extension. The
// AVX512-VNNI and AVX-VNNI bodies are the same 256-bit algorithm — only
// the instruction encoding differs — so the body is shared via a macro
// rather than maintained twice.
#include "tensor/qgemm_kernels.h"

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include <cstring>

// gcc 12's _mm512_cvtepi32_ps expands to a masked builtin whose
// passthrough operand is _mm512_undefined_ps(); -Wmaybe-uninitialized
// then flags that header-internal undefined value on every use. The
// full-mask call never reads the passthrough — silence just this
// diagnostic for this translation unit.
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

namespace meanet::ops::detail {

// Weight rows are int8 storage read 4 bytes at a time as one i32 dot
// operand; a may_alias load lets the compiler fold it straight into
// vpdpbusd's {1to16} embedded memory broadcast instead of bouncing
// through a GPR + vpbroadcastd pair.
using aliased_i32 __attribute__((may_alias, aligned(1))) = std::int32_t;

// acc[i][0] covers output columns jb..jb+7, acc[i][1] columns
// jb+8..jb+15; each vpdpbusd consumes 4 k values for 8 columns. The
// signed operand is the 4 consecutive weight bytes wq[r, 4g .. 4g+3]
// broadcast to every 32-bit lane (via memcpy — the weight rows have no
// alignment guarantee).
#define MEANET_QGEMM_BODY(DPBUSD)                                                              \
  const int k_padded = 4 * args.kgroups;                                                       \
  for (int jb = 0; jb < args.n; jb += 16) {                                                    \
    const int nr = args.n - jb < 16 ? args.n - jb : 16;                                        \
    const std::uint8_t* panel =                                                                \
        args.pack + static_cast<std::ptrdiff_t>(jb / 16) * args.kgroups * 64;                  \
    for (int r0 = 0; r0 < args.rows; r0 += 4) {                                                \
      const int rt = args.rows - r0 < 4 ? args.rows - r0 : 4;                                  \
      __m256i acc[4][2];                                                                       \
      for (int i = 0; i < rt; ++i) {                                                           \
        acc[i][0] = _mm256_setzero_si256();                                                    \
        acc[i][1] = _mm256_setzero_si256();                                                    \
      }                                                                                        \
      for (int g = 0; g < args.kgroups; ++g) {                                                 \
        const __m256i lo = _mm256_loadu_si256(                                                 \
            reinterpret_cast<const __m256i*>(panel + static_cast<std::ptrdiff_t>(g) * 64));    \
        const __m256i hi = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(                \
            panel + static_cast<std::ptrdiff_t>(g) * 64 + 32));                                \
        for (int i = 0; i < rt; ++i) {                                                         \
          std::int32_t w4;                                                                     \
          std::memcpy(&w4, args.wq + static_cast<std::ptrdiff_t>(r0 + i) * k_padded + 4 * g,   \
                      sizeof(w4));                                                             \
          const __m256i w = _mm256_set1_epi32(w4);                                             \
          acc[i][0] = DPBUSD(acc[i][0], lo, w);                                                \
          acc[i][1] = DPBUSD(acc[i][1], hi, w);                                                \
        }                                                                                      \
      }                                                                                        \
      for (int i = 0; i < rt; ++i) {                                                           \
        const int r = r0 + i;                                                                  \
        const float cs = args.scales[r] * args.a_scale;                                        \
        const std::int32_t zpc = 128 * args.row_sums[r];                                       \
        const float b = args.bias != nullptr ? args.bias[r] : 0.0f;                            \
        const __m256 f0 =                                                                      \
            _mm256_cvtepi32_ps(_mm256_sub_epi32(acc[i][0], _mm256_set1_epi32(zpc)));           \
        const __m256 f1 =                                                                      \
            _mm256_cvtepi32_ps(_mm256_sub_epi32(acc[i][1], _mm256_set1_epi32(zpc)));           \
        const __m256 r0v = _mm256_fmadd_ps(f0, _mm256_set1_ps(cs), _mm256_set1_ps(b));         \
        const __m256 r1v = _mm256_fmadd_ps(f1, _mm256_set1_ps(cs), _mm256_set1_ps(b));         \
        float* c_row = args.c + static_cast<std::ptrdiff_t>(r) * args.ldc + jb;                \
        if (nr == 16) {                                                                        \
          _mm256_storeu_ps(c_row, r0v);                                                        \
          _mm256_storeu_ps(c_row + 8, r1v);                                                    \
        } else {                                                                               \
          alignas(32) float tile[16];                                                          \
          _mm256_store_ps(tile, r0v);                                                          \
          _mm256_store_ps(tile + 8, r1v);                                                      \
          for (int j = 0; j < nr; ++j) c_row[j] = tile[j];                                     \
        }                                                                                      \
      }                                                                                        \
    }                                                                                          \
  }

// The AVX512 tier works in full ZMM: one 64-byte load IS an entire
// packed (panel, k-group) block — 16 columns x 4 k — so each group
// costs one load + rt broadcasts + rt vpdpbusd instead of the YMM
// tier's two loads + rt broadcasts + 2*rt vpdpbusd. The epilogue is
// the same per-lane sub/convert/fma, so results stay bit-identical
// with every other tier; ragged column tails use a mask store.
__attribute__((target("avx512vnni,avx512f,avx512vl,avx2,fma"))) void qgemm_avx512vnni(
    const QgemmArgs& args) {
  const int k_padded = 4 * args.kgroups;
  int jb0 = 0;
  // Paired-panel main loop: two 16-column panels share each weight
  // broadcast, so the inner group costs 2 panel loads + 8 broadcasts
  // for 16 vpdpbusd — the kernel becomes dot-product-throughput bound
  // instead of load bound. Accumulation per (row, panel) is the same
  // g-ordered integer sum as the single-panel loop, so pairing cannot
  // change results.
  for (; jb0 + 32 <= args.n; jb0 += 32) {
    const std::uint8_t* panel0 =
        args.pack + static_cast<std::ptrdiff_t>(jb0 / 16) * args.kgroups * 64;
    const std::uint8_t* panel1 = panel0 + static_cast<std::ptrdiff_t>(args.kgroups) * 64;
    for (int r0 = 0; r0 < args.rows; r0 += 8) {
      const int rt = args.rows - r0 < 8 ? args.rows - r0 : 8;
      __m512i acc0[8], acc1[8];
      const aliased_i32* wrow[8];
      // All eight slots are initialized even for a short tail block
      // (tail slots alias the last real row; nothing reads them) so
      // the rt == 8 specialization below is provably fully defined.
      for (int i = 0; i < 8; ++i) {
        acc0[i] = _mm512_setzero_si512();
        acc1[i] = _mm512_setzero_si512();
        wrow[i] = reinterpret_cast<const aliased_i32*>(
            args.wq + static_cast<std::ptrdiff_t>(r0 + (i < rt ? i : rt - 1)) * k_padded);
      }
      if (rt == 8) {
        // Named accumulators, manually unrolled: gcc spills __m512i
        // arrays to the stack even at constant trip count, so the 16
        // accumulators are scalars here and live in ZMM registers for
        // the whole k loop (16 of 32, plus the two activation panels).
        __m512i b00 = acc0[0], b10 = acc0[1], b20 = acc0[2], b30 = acc0[3];
        __m512i b40 = acc0[4], b50 = acc0[5], b60 = acc0[6], b70 = acc0[7];
        __m512i b01 = acc1[0], b11 = acc1[1], b21 = acc1[2], b31 = acc1[3];
        __m512i b41 = acc1[4], b51 = acc1[5], b61 = acc1[6], b71 = acc1[7];
        const aliased_i32* w0 = wrow[0];
        const aliased_i32* w1 = wrow[1];
        const aliased_i32* w2 = wrow[2];
        const aliased_i32* w3 = wrow[3];
        const aliased_i32* w4 = wrow[4];
        const aliased_i32* w5 = wrow[5];
        const aliased_i32* w6 = wrow[6];
        const aliased_i32* w7 = wrow[7];
        for (int g = 0; g < args.kgroups; ++g) {
          const __m512i a0 = _mm512_loadu_si512(panel0 + static_cast<std::ptrdiff_t>(g) * 64);
          const __m512i a1 = _mm512_loadu_si512(panel1 + static_cast<std::ptrdiff_t>(g) * 64);
          __m512i w;
          w = _mm512_set1_epi32(w0[g]);
          b00 = _mm512_dpbusd_epi32(b00, a0, w);
          b01 = _mm512_dpbusd_epi32(b01, a1, w);
          w = _mm512_set1_epi32(w1[g]);
          b10 = _mm512_dpbusd_epi32(b10, a0, w);
          b11 = _mm512_dpbusd_epi32(b11, a1, w);
          w = _mm512_set1_epi32(w2[g]);
          b20 = _mm512_dpbusd_epi32(b20, a0, w);
          b21 = _mm512_dpbusd_epi32(b21, a1, w);
          w = _mm512_set1_epi32(w3[g]);
          b30 = _mm512_dpbusd_epi32(b30, a0, w);
          b31 = _mm512_dpbusd_epi32(b31, a1, w);
          w = _mm512_set1_epi32(w4[g]);
          b40 = _mm512_dpbusd_epi32(b40, a0, w);
          b41 = _mm512_dpbusd_epi32(b41, a1, w);
          w = _mm512_set1_epi32(w5[g]);
          b50 = _mm512_dpbusd_epi32(b50, a0, w);
          b51 = _mm512_dpbusd_epi32(b51, a1, w);
          w = _mm512_set1_epi32(w6[g]);
          b60 = _mm512_dpbusd_epi32(b60, a0, w);
          b61 = _mm512_dpbusd_epi32(b61, a1, w);
          w = _mm512_set1_epi32(w7[g]);
          b70 = _mm512_dpbusd_epi32(b70, a0, w);
          b71 = _mm512_dpbusd_epi32(b71, a1, w);
        }
        acc0[0] = b00; acc0[1] = b10; acc0[2] = b20; acc0[3] = b30;
        acc0[4] = b40; acc0[5] = b50; acc0[6] = b60; acc0[7] = b70;
        acc1[0] = b01; acc1[1] = b11; acc1[2] = b21; acc1[3] = b31;
        acc1[4] = b41; acc1[5] = b51; acc1[6] = b61; acc1[7] = b71;
      } else {
        for (int g = 0; g < args.kgroups; ++g) {
          const __m512i a0 = _mm512_loadu_si512(panel0 + static_cast<std::ptrdiff_t>(g) * 64);
          const __m512i a1 = _mm512_loadu_si512(panel1 + static_cast<std::ptrdiff_t>(g) * 64);
          for (int i = 0; i < rt; ++i) {
            const __m512i w = _mm512_set1_epi32(wrow[i][g]);
            acc0[i] = _mm512_dpbusd_epi32(acc0[i], a0, w);
            acc1[i] = _mm512_dpbusd_epi32(acc1[i], a1, w);
          }
        }
      }
      for (int i = 0; i < rt; ++i) {
        const int r = r0 + i;
        const float cs = args.scales[r] * args.a_scale;
        const std::int32_t zpc = 128 * args.row_sums[r];
        const float b = args.bias != nullptr ? args.bias[r] : 0.0f;
        float* c_row = args.c + static_cast<std::ptrdiff_t>(r) * args.ldc + jb0;
        const __m512 f0 =
            _mm512_cvtepi32_ps(_mm512_sub_epi32(acc0[i], _mm512_set1_epi32(zpc)));
        const __m512 f1 =
            _mm512_cvtepi32_ps(_mm512_sub_epi32(acc1[i], _mm512_set1_epi32(zpc)));
        _mm512_storeu_ps(c_row, _mm512_fmadd_ps(f0, _mm512_set1_ps(cs), _mm512_set1_ps(b)));
        _mm512_storeu_ps(c_row + 16,
                         _mm512_fmadd_ps(f1, _mm512_set1_ps(cs), _mm512_set1_ps(b)));
      }
    }
  }
  for (int jb = jb0; jb < args.n; jb += 16) {
    const int nr = args.n - jb < 16 ? args.n - jb : 16;
    const __mmask16 tail = static_cast<__mmask16>((1u << nr) - 1u);
    const std::uint8_t* panel =
        args.pack + static_cast<std::ptrdiff_t>(jb / 16) * args.kgroups * 64;
    // Eight rows per block: vpdpbusd has ~4-cycle latency, so eight
    // independent accumulator chains keep the unit saturated (four
    // chains leave it half idle); 32 ZMM registers make this free.
    for (int r0 = 0; r0 < args.rows; r0 += 8) {
      const int rt = args.rows - r0 < 8 ? args.rows - r0 : 8;
      __m512i acc[8];
      for (int i = 0; i < rt; ++i) acc[i] = _mm512_setzero_si512();
      const aliased_i32* wrow[8];
      for (int i = 0; i < rt; ++i) {
        wrow[i] = reinterpret_cast<const aliased_i32*>(
            args.wq + static_cast<std::ptrdiff_t>(r0 + i) * k_padded);
      }
      for (int g = 0; g < args.kgroups; ++g) {
        const __m512i a = _mm512_loadu_si512(panel + static_cast<std::ptrdiff_t>(g) * 64);
        for (int i = 0; i < rt; ++i) {
          acc[i] = _mm512_dpbusd_epi32(acc[i], a, _mm512_set1_epi32(wrow[i][g]));
        }
      }
      for (int i = 0; i < rt; ++i) {
        const int r = r0 + i;
        const float cs = args.scales[r] * args.a_scale;
        const std::int32_t zpc = 128 * args.row_sums[r];
        const float b = args.bias != nullptr ? args.bias[r] : 0.0f;
        const __m512 f =
            _mm512_cvtepi32_ps(_mm512_sub_epi32(acc[i], _mm512_set1_epi32(zpc)));
        const __m512 v = _mm512_fmadd_ps(f, _mm512_set1_ps(cs), _mm512_set1_ps(b));
        float* c_row = args.c + static_cast<std::ptrdiff_t>(r) * args.ldc + jb;
        if (nr == 16) {
          _mm512_storeu_ps(c_row, v);
        } else {
          _mm512_mask_storeu_ps(c_row, tail, v);
        }
      }
    }
  }
}

__attribute__((target("avxvnni,avx2,fma"))) void qgemm_avxvnni(const QgemmArgs& args) {
  MEANET_QGEMM_BODY(_mm256_dpbusd_avx_epi32)
}

#undef MEANET_QGEMM_BODY

}  // namespace meanet::ops::detail

#endif  // x86-64
