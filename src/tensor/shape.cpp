#include "tensor/shape.h"

#include <stdexcept>

namespace meanet {

Shape::Shape(std::initializer_list<int> dims) : dims_(dims) { validate(); }

Shape::Shape(std::vector<int> dims) : dims_(std::move(dims)) { validate(); }

void Shape::validate() const {
  if (dims_.size() > 4) {
    throw std::invalid_argument("Shape supports at most 4 dimensions, got " +
                                std::to_string(dims_.size()));
  }
  for (int d : dims_) {
    if (d < 0) {
      throw std::invalid_argument("Shape dimensions must be non-negative");
    }
  }
}

int Shape::dim(int axis) const {
  const int r = rank();
  if (axis < 0) axis += r;
  if (axis < 0 || axis >= r) {
    throw std::out_of_range("Shape axis " + std::to_string(axis) +
                            " out of range for rank " + std::to_string(r));
  }
  return dims_[static_cast<std::size_t>(axis)];
}

std::int64_t Shape::numel() const {
  std::int64_t n = 1;
  for (int d : dims_) n *= d;
  return n;
}

std::string Shape::to_string() const {
  std::string out = "[";
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(dims_[i]);
  }
  out += "]";
  return out;
}

namespace {
[[noreturn]] void throw_not_nchw(const Shape& s) {
  throw std::logic_error("expected rank-4 NCHW shape, got " + s.to_string());
}
}  // namespace

int Shape::batch() const {
  if (rank() != 4) throw_not_nchw(*this);
  return dims_[0];
}
int Shape::channels() const {
  if (rank() != 4) throw_not_nchw(*this);
  return dims_[1];
}
int Shape::height() const {
  if (rank() != 4) throw_not_nchw(*this);
  return dims_[2];
}
int Shape::width() const {
  if (rank() != 4) throw_not_nchw(*this);
  return dims_[3];
}

}  // namespace meanet
