#include "tensor/workspace.h"

namespace meanet::ops {

float* Workspace::buffer(Slot slot, std::size_t elems) {
  Tensor& t = buffers_[static_cast<std::size_t>(slot)];
  if (static_cast<std::size_t>(t.numel()) < elems) {
    t = Tensor(Shape{static_cast<int>(elems)});
  }
  return t.data();
}

unsigned char* Workspace::byte_buffer(ByteSlot slot, std::size_t bytes) {
  std::vector<unsigned char>& b = byte_buffers_[static_cast<std::size_t>(slot)];
  if (b.size() < bytes) b.resize(bytes);
  return b.data();
}

std::size_t Workspace::capacity(Slot slot) const {
  return static_cast<std::size_t>(buffers_[static_cast<std::size_t>(slot)].numel());
}

Workspace& Workspace::tls() {
  thread_local Workspace workspace;
  return workspace;
}

}  // namespace meanet::ops
