#include "tensor/simd.h"

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#include <cpuid.h>
#endif

namespace meanet::ops {

namespace {

#if defined(__x86_64__) || defined(_M_X64)

/// XCR0 via xgetbv — the OS must have enabled the relevant register
/// state or executing AVX instructions faults even when cpuid
/// advertises them.
std::uint64_t xcr0() {
  std::uint32_t eax = 0, edx = 0;
  __asm__ volatile("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0));
  return (static_cast<std::uint64_t>(edx) << 32) | eax;
}

struct X86Features {
  bool avx2_fma = false;
  bool avx_vnni = false;
  bool avx512_vnni = false;
};

X86Features detect_x86() {
  X86Features f;
  unsigned eax, ebx, ecx, edx;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return f;
  const bool osxsave = (ecx & (1u << 27)) != 0;
  const bool fma = (ecx & (1u << 12)) != 0;
  if (!osxsave) return f;
  const std::uint64_t x = xcr0();
  const bool ymm_enabled = (x & 0x6) == 0x6;          // XMM + YMM state
  const bool zmm_enabled = (x & 0xe6) == 0xe6;        // + opmask/ZMM state
  if (!ymm_enabled) return f;
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) == 0) return f;
  const bool avx2 = (ebx & (1u << 5)) != 0;
  const bool avx512f = (ebx & (1u << 16)) != 0;
  const bool avx512vl = (ebx & (1u << 31)) != 0;
  const bool avx512vnni = (ecx & (1u << 11)) != 0;
  f.avx2_fma = avx2 && fma;
  f.avx512_vnni = zmm_enabled && avx512f && avx512vl && avx512vnni && f.avx2_fma;
  unsigned eax1 = 0, ebx1 = 0, ecx1 = 0, edx1 = 0;
  if (eax >= 1 && __get_cpuid_count(7, 1, &eax1, &ebx1, &ecx1, &edx1) != 0) {
    f.avx_vnni = (eax1 & (1u << 4)) != 0 && f.avx2_fma;
  }
  return f;
}

#endif  // x86-64

SimdLevel detect_max_simd() {
#if defined(__aarch64__)
  return SimdLevel::kNeon;  // NEON is architecturally baseline on A64
#elif defined(__x86_64__) || defined(_M_X64)
  return detect_x86().avx2_fma ? SimdLevel::kAvx2 : SimdLevel::kPortable;
#else
  return SimdLevel::kPortable;
#endif
}

Int8Kernel detect_max_int8() {
#if defined(__x86_64__) || defined(_M_X64)
  const X86Features f = detect_x86();
  if (f.avx512_vnni) return Int8Kernel::kAvx512Vnni;
  if (f.avx_vnni) return Int8Kernel::kAvxVnni;
#endif
  return Int8Kernel::kScalar;
}

/// Clamp to the hardware ceiling; unknown/unsupported tiers degrade to
/// portable rather than faulting.
SimdLevel clamp_simd(SimdLevel level) {
  return level == max_simd_level() ? level : SimdLevel::kPortable;
}

Int8Kernel clamp_int8(Int8Kernel kernel) {
  const Int8Kernel max = max_int8_kernel();
  if (static_cast<int>(kernel) > static_cast<int>(max)) return Int8Kernel::kScalar;
  // Requesting kAvxVnni on an AVX512-VNNI machine is honored only when
  // the binary actually detected AVX-VNNI; otherwise fall back to the
  // scalar tier so the request never selects an unsupported kernel.
  if (kernel == Int8Kernel::kAvxVnni && max == Int8Kernel::kAvx512Vnni) {
#if defined(__x86_64__) || defined(_M_X64)
    if (!detect_x86().avx_vnni) return Int8Kernel::kScalar;
#endif
  }
  return kernel;
}

SimdLevel initial_simd() {
  if (const char* value = std::getenv("MEANET_SIMD")) {
    if (std::strcmp(value, "portable") == 0) return SimdLevel::kPortable;
    if (std::strcmp(value, "avx2") == 0) return clamp_simd(SimdLevel::kAvx2);
    if (std::strcmp(value, "neon") == 0) return clamp_simd(SimdLevel::kNeon);
  }
  return max_simd_level();
}

Int8Kernel initial_int8() {
  // MEANET_SIMD=portable means "no explicit SIMD anywhere": the int8
  // path starts scalar too (still overridable via set_int8_kernel).
  if (const char* value = std::getenv("MEANET_SIMD")) {
    if (std::strcmp(value, "portable") == 0) return Int8Kernel::kScalar;
  }
  return max_int8_kernel();
}

std::atomic<SimdLevel>& simd_state() {
  static std::atomic<SimdLevel> state{initial_simd()};
  return state;
}

std::atomic<Int8Kernel>& int8_state() {
  static std::atomic<Int8Kernel> state{initial_int8()};
  return state;
}

}  // namespace

SimdLevel max_simd_level() {
  static const SimdLevel max = detect_max_simd();
  return max;
}

SimdLevel simd_level() { return simd_state().load(std::memory_order_relaxed); }

void set_simd_level(SimdLevel level) {
  simd_state().store(clamp_simd(level), std::memory_order_relaxed);
}

const char* simd_level_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAvx2: return "avx2";
    case SimdLevel::kNeon: return "neon";
    case SimdLevel::kPortable: break;
  }
  return "portable";
}

Int8Kernel max_int8_kernel() {
  static const Int8Kernel max = detect_max_int8();
  return max;
}

Int8Kernel int8_kernel() { return int8_state().load(std::memory_order_relaxed); }

void set_int8_kernel(Int8Kernel kernel) {
  int8_state().store(clamp_int8(kernel), std::memory_order_relaxed);
}

const char* int8_kernel_name(Int8Kernel kernel) {
  switch (kernel) {
    case Int8Kernel::kAvxVnni: return "avx_vnni";
    case Int8Kernel::kAvx512Vnni: return "avx512_vnni";
    case Int8Kernel::kScalar: break;
  }
  return "scalar";
}

bool int8_kernel_vectorized() { return int8_kernel() != Int8Kernel::kScalar; }

}  // namespace meanet::ops
