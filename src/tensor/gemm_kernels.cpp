// Vector float microkernels. Compiled into every build; the x86 kernel
// carries a per-function target attribute so the rest of the binary
// keeps the baseline ISA, and gemm.cpp only calls it after runtime
// dispatch (tensor/simd.h) confirmed AVX2+FMA.
#include "tensor/gemm_kernels.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#include <arm_neon.h>
#endif

#include <cstddef>

namespace meanet::ops::detail {

#if defined(__x86_64__) || defined(_M_X64)

__attribute__((target("avx2,fma"))) void micro_kernel_avx2_6x16(int kc, const float* apanel,
                                                                const float* bpanel, float* c,
                                                                int ldc, int mr, int nr) {
  __m256 acc[6][2];
  for (int i = 0; i < 6; ++i) {
    acc[i][0] = _mm256_setzero_ps();
    acc[i][1] = _mm256_setzero_ps();
  }
  for (int p = 0; p < kc; ++p, apanel += 6, bpanel += 16) {
    const __m256 b0 = _mm256_loadu_ps(bpanel);
    const __m256 b1 = _mm256_loadu_ps(bpanel + 8);
    for (int i = 0; i < 6; ++i) {
      const __m256 a = _mm256_broadcast_ss(apanel + i);
      acc[i][0] = _mm256_fmadd_ps(a, b0, acc[i][0]);
      acc[i][1] = _mm256_fmadd_ps(a, b1, acc[i][1]);
    }
  }
  if (mr == 6 && nr == 16) {
    for (int i = 0; i < 6; ++i) {
      float* c_row = c + static_cast<std::ptrdiff_t>(i) * ldc;
      _mm256_storeu_ps(c_row, _mm256_add_ps(_mm256_loadu_ps(c_row), acc[i][0]));
      _mm256_storeu_ps(c_row + 8, _mm256_add_ps(_mm256_loadu_ps(c_row + 8), acc[i][1]));
    }
    return;
  }
  alignas(32) float tile[6][16];
  for (int i = 0; i < 6; ++i) {
    _mm256_store_ps(tile[i], acc[i][0]);
    _mm256_store_ps(tile[i] + 8, acc[i][1]);
  }
  for (int i = 0; i < mr; ++i) {
    float* c_row = c + static_cast<std::ptrdiff_t>(i) * ldc;
    for (int j = 0; j < nr; ++j) c_row[j] += tile[i][j];
  }
}

#endif  // x86-64

#if defined(__aarch64__)

void micro_kernel_neon_6x16(int kc, const float* apanel, const float* bpanel, float* c, int ldc,
                            int mr, int nr) {
  float32x4_t acc[6][4];
  for (int i = 0; i < 6; ++i) {
    for (int q = 0; q < 4; ++q) acc[i][q] = vdupq_n_f32(0.0f);
  }
  for (int p = 0; p < kc; ++p, apanel += 6, bpanel += 16) {
    const float32x4_t b0 = vld1q_f32(bpanel);
    const float32x4_t b1 = vld1q_f32(bpanel + 4);
    const float32x4_t b2 = vld1q_f32(bpanel + 8);
    const float32x4_t b3 = vld1q_f32(bpanel + 12);
    for (int i = 0; i < 6; ++i) {
      const float32x4_t a = vdupq_n_f32(apanel[i]);
      acc[i][0] = vfmaq_f32(acc[i][0], a, b0);
      acc[i][1] = vfmaq_f32(acc[i][1], a, b1);
      acc[i][2] = vfmaq_f32(acc[i][2], a, b2);
      acc[i][3] = vfmaq_f32(acc[i][3], a, b3);
    }
  }
  if (mr == 6 && nr == 16) {
    for (int i = 0; i < 6; ++i) {
      float* c_row = c + static_cast<std::ptrdiff_t>(i) * ldc;
      for (int q = 0; q < 4; ++q) {
        vst1q_f32(c_row + 4 * q, vaddq_f32(vld1q_f32(c_row + 4 * q), acc[i][q]));
      }
    }
    return;
  }
  float tile[6][16];
  for (int i = 0; i < 6; ++i) {
    for (int q = 0; q < 4; ++q) vst1q_f32(tile[i] + 4 * q, acc[i][q]);
  }
  for (int i = 0; i < mr; ++i) {
    float* c_row = c + static_cast<std::ptrdiff_t>(i) * ldc;
    for (int j = 0; j < nr; ++j) c_row[j] += tile[i][j];
  }
}

#endif  // aarch64

}  // namespace meanet::ops::detail
