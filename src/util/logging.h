// Lightweight leveled logging for the meanet library.
//
// The library is designed to run in benchmarks and tests where output
// volume matters, so logging is off (kWarn) by default and controlled
// globally. Messages are written to stderr; benchmark tables are written
// by the benches themselves to stdout.
#pragma once

#include <sstream>
#include <string>

namespace meanet::util {

enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

/// Sets the global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);

/// Returns the current global log threshold.
LogLevel log_level();

/// Emits one message at `level` (if at or above the threshold).
void log_message(LogLevel level, const std::string& message);

namespace detail {

// Stream-style collector that emits on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_message(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::kDebug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::kError); }

}  // namespace meanet::util
