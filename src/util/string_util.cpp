#include "util/string_util.h"

#include <algorithm>
#include <cstdio>

namespace meanet::util {

std::string format_double(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return std::string(buffer);
}

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string pad_left(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

std::string render_table(const std::vector<std::vector<std::string>>& rows) {
  if (rows.empty()) return "";
  std::size_t cols = 0;
  for (const auto& row : rows) cols = std::max(cols, row.size());
  std::vector<std::size_t> widths(cols, 0);
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string cell = c < rows[r].size() ? rows[r][c] : "";
      out += pad_right(cell, widths[c]);
      if (c + 1 < cols) out += "  ";
    }
    out += '\n';
    if (r == 0) {
      for (std::size_t c = 0; c < cols; ++c) {
        out += std::string(widths[c], '-');
        if (c + 1 < cols) out += "  ";
      }
      out += '\n';
    }
  }
  return out;
}

}  // namespace meanet::util
