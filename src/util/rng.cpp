#include "util/rng.h"

// Header-only; this translation unit exists to anchor the library target.
namespace meanet::util {}
