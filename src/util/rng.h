// Deterministic random number generation.
//
// Every stochastic component in the library (weight init, dataset
// synthesis, shuffling) takes an explicit Rng so experiments are exactly
// reproducible from a seed, as required for regenerating the paper's
// tables.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace meanet::util {

/// Thin wrapper over std::mt19937_64 with convenience samplers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eedULL) : engine_(seed) {}

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi) {
    std::uniform_real_distribution<float> dist(lo, hi);
    return dist(engine_);
  }

  /// Standard normal scaled by `stddev` around `mean`.
  float normal(float mean = 0.0f, float stddev = 1.0f) {
    std::normal_distribution<float> dist(mean, stddev);
    return dist(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi) {
    std::uniform_int_distribution<int> dist(lo, hi);
    return dist(engine_);
  }

  /// Bernoulli draw with probability `p` of true.
  bool bernoulli(double p) {
    std::bernoulli_distribution dist(p);
    return dist(engine_);
  }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    std::shuffle(values.begin(), values.end(), engine_);
  }

  /// Derives an independent child generator; used to give each dataset /
  /// model component its own stream without coupling draw order.
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace meanet::util
