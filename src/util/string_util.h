// Small string/formatting helpers shared by benches and reports.
#pragma once

#include <string>
#include <vector>

namespace meanet::util {

/// Formats `value` with `digits` digits after the decimal point.
std::string format_double(double value, int digits = 2);

/// Joins `parts` with `sep` between consecutive elements.
std::string join(const std::vector<std::string>& parts, const std::string& sep);

/// Left-pads (right-aligns) `s` to at least `width` characters.
std::string pad_left(const std::string& s, std::size_t width);

/// Right-pads (left-aligns) `s` to at least `width` characters.
std::string pad_right(const std::string& s, std::size_t width);

/// Renders an aligned text table; row 0 is treated as the header.
std::string render_table(const std::vector<std::vector<std::string>>& rows);

}  // namespace meanet::util
