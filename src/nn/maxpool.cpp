#include "nn/maxpool.h"

#include <stdexcept>

namespace meanet::nn {

MaxPool2d::MaxPool2d(int kernel, std::string name) : kernel_(kernel), name_(std::move(name)) {
  if (kernel <= 0) throw std::invalid_argument("MaxPool2d: kernel must be positive");
}

Shape MaxPool2d::output_shape(const Shape& input) const {
  if (input.height() % kernel_ != 0 || input.width() % kernel_ != 0) {
    throw std::invalid_argument(name_ + ": input " + input.to_string() +
                                " not divisible by kernel " + std::to_string(kernel_));
  }
  return Shape{input.batch(), input.channels(), input.height() / kernel_,
               input.width() / kernel_};
}

Tensor MaxPool2d::forward(const Tensor& input, Mode mode) {
  const Shape out_shape = output_shape(input.shape());
  Tensor output(out_shape);
  const Shape& in_shape = input.shape();
  const bool track_argmax = (mode == Mode::kTrain);  // eval stays cache-free
  if (track_argmax) argmax_.assign(static_cast<std::size_t>(output.numel()), 0);
  std::int64_t out_index = 0;
  for (int n = 0; n < out_shape.batch(); ++n) {
    for (int c = 0; c < out_shape.channels(); ++c) {
      for (int oh = 0; oh < out_shape.height(); ++oh) {
        for (int ow = 0; ow < out_shape.width(); ++ow, ++out_index) {
          float best = input.at(n, c, oh * kernel_, ow * kernel_);
          std::int64_t best_idx =
              ((static_cast<std::int64_t>(n) * in_shape.channels() + c) * in_shape.height() +
               oh * kernel_) *
                  in_shape.width() +
              ow * kernel_;
          for (int kh = 0; kh < kernel_; ++kh) {
            for (int kw = 0; kw < kernel_; ++kw) {
              const int ih = oh * kernel_ + kh, iw = ow * kernel_ + kw;
              const float v = input.at(n, c, ih, iw);
              if (v > best) {
                best = v;
                best_idx = ((static_cast<std::int64_t>(n) * in_shape.channels() + c) *
                                in_shape.height() +
                            ih) *
                               in_shape.width() +
                           iw;
              }
            }
          }
          output[out_index] = best;
          if (track_argmax) argmax_[static_cast<std::size_t>(out_index)] = best_idx;
        }
      }
    }
  }
  if (track_argmax) cached_input_shape_ = input.shape();
  return output;
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  if (cached_input_shape_.rank() != 4) throw std::logic_error(name_ + ": backward before forward");
  Tensor grad_input(cached_input_shape_);
  for (std::int64_t i = 0; i < grad_output.numel(); ++i) {
    grad_input[argmax_[static_cast<std::size_t>(i)]] += grad_output[i];
  }
  return grad_input;
}

LayerStats MaxPool2d::stats(const Shape& input) const {
  LayerStats s;
  s.macs = input.numel() / input.dim(0);
  s.activation_elems = output_shape(input).numel() / input.dim(0);  // argmax indices
  return s;
}

}  // namespace meanet::nn
