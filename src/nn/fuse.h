// Eval-mode Conv+BatchNorm folding.
//
// In eval mode a BatchNorm is a per-channel affine map with constant
// coefficients, so it folds into the preceding convolution's weights:
//   BN(W * x + b) = (scale ⊙ W) * x + (scale ⊙ b + shift)
// The fold is computed on the fly from the BN's current running
// statistics into per-thread workspace scratch — nothing is cached on
// the layers, so there is no invalidation problem when training resumes
// and the fused path stays const-safe for shared-net serving. The fold
// itself is O(params), noise next to the convolution it saves.
#pragma once

#include <vector>

#include "nn/batchnorm2d.h"
#include "nn/conv2d.h"

namespace meanet::nn {

/// Conv2d then BatchNorm2d as one cache-free eval kernel.
Tensor fused_conv_bn_eval(const Conv2d& conv, const BatchNorm2d& bn, const Tensor& input);

/// DepthwiseConv2d then BatchNorm2d as one cache-free eval kernel (the
/// folded BN supplies the bias the depthwise layer doesn't have).
Tensor fused_conv_bn_eval(const DepthwiseConv2d& conv, const BatchNorm2d& bn,
                          const Tensor& input);

/// Runs `layers` in order with `mode`. In eval mode, each adjacent
/// (Conv2d | DepthwiseConv2d, BatchNorm2d) pair with matching channel
/// counts runs as a single folded kernel. Train mode is a plain chain —
/// bit-identical to calling forward() layer by layer.
///
/// Templated over the sequence so both Sequential's vector<LayerPtr>
/// and the blocks' vector<Layer*> pass through without an adapter
/// allocation on the forward hot path.
template <typename LayerSeq>
Tensor forward_chain(const LayerSeq& layers, const Tensor& input, Mode mode) {
  Tensor x = input;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    Layer* layer = &*layers[i];
    if (mode == Mode::kEval && i + 1 < layers.size()) {
      if (const auto* bn = dynamic_cast<const BatchNorm2d*>(&*layers[i + 1])) {
        if (const auto* conv = dynamic_cast<const Conv2d*>(layer);
            conv != nullptr && conv->out_channels() == bn->channels()) {
          x = fused_conv_bn_eval(*conv, *bn, x);
          ++i;
          continue;
        }
        if (const auto* dw = dynamic_cast<const DepthwiseConv2d*>(layer);
            dw != nullptr && dw->channels() == bn->channels()) {
          x = fused_conv_bn_eval(*dw, *bn, x);
          ++i;
          continue;
        }
      }
    }
    x = layer->forward(x, mode);
  }
  return x;
}

}  // namespace meanet::nn
