// Weight initialization helpers (He / Xavier), exposed for tests and
// for re-initializing parameters of existing models.
#pragma once

#include "tensor/tensor.h"
#include "util/rng.h"

namespace meanet::nn {

/// He (Kaiming) normal: N(0, sqrt(2 / fan_in)).
Tensor he_normal_init(Shape shape, int fan_in, util::Rng& rng);

/// Xavier (Glorot) uniform: U(-a, a) with a = sqrt(6 / (fan_in+fan_out)).
Tensor xavier_uniform_init(Shape shape, int fan_in, int fan_out, util::Rng& rng);

}  // namespace meanet::nn
