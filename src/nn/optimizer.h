// SGD with momentum and weight decay — the paper trains all models with
// SGD and a multi-step learning-rate decay (Sec. IV-A).
#pragma once

#include <vector>

#include "nn/parameter.h"

namespace meanet::nn {

struct SgdOptions {
  float learning_rate = 0.1f;
  float momentum = 0.9f;
  float weight_decay = 5e-4f;
};

class SGD {
 public:
  SGD(std::vector<Parameter*> params, SgdOptions options);

  /// Applies one update to every trainable parameter, then the caller
  /// typically calls zero_grad().
  void step();

  /// Clears gradient accumulators of all managed parameters.
  void zero_grad();

  float learning_rate() const { return options_.learning_rate; }
  void set_learning_rate(float lr) { options_.learning_rate = lr; }
  const std::vector<Parameter*>& params() const { return params_; }

 private:
  std::vector<Parameter*> params_;
  SgdOptions options_;
  std::vector<Tensor> velocity_;  // parallel to params_
};

}  // namespace meanet::nn
