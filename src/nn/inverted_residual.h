// MobileNetV2 inverted residual block:
//   1x1 expand Conv+BN+ReLU6 -> 3x3 depthwise Conv+BN+ReLU6
//   -> 1x1 project Conv+BN (linear bottleneck), with a residual skip
//   when stride == 1 and in_channels == out_channels.
#pragma once

#include <memory>

#include "nn/activations.h"
#include "nn/batchnorm2d.h"
#include "nn/conv2d.h"
#include "nn/layer.h"
#include "util/rng.h"

namespace meanet::nn {

class InvertedResidual : public Layer {
 public:
  InvertedResidual(int in_channels, int out_channels, int stride, int expansion, util::Rng& rng,
                   std::string name = "invres");

  Tensor forward(const Tensor& input, Mode mode) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  std::vector<NamedTensor> state() override;
  std::string name() const override { return name_; }
  Shape output_shape(const Shape& input) const override;
  LayerStats stats(const Shape& input) const override;
  std::int64_t activation_cache_elems() const override;
  void set_frozen(bool frozen) override;

  bool has_skip() const { return use_skip_; }

 private:
  std::vector<Layer*> main_layers();
  std::vector<const Layer*> main_layers() const;

  std::string name_;
  bool use_skip_;
  std::unique_ptr<Conv2d> expand_conv_;  // null when expansion == 1
  std::unique_ptr<BatchNorm2d> expand_bn_;
  std::unique_ptr<ReLU6> expand_relu_;
  DepthwiseConv2d dw_conv_;
  BatchNorm2d dw_bn_;
  ReLU6 dw_relu_;
  Conv2d project_conv_;
  BatchNorm2d project_bn_;
};

}  // namespace meanet::nn
