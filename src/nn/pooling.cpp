#include "nn/pooling.h"

#include <stdexcept>

namespace meanet::nn {

Shape GlobalAvgPool::output_shape(const Shape& input) const {
  return Shape{input.batch(), input.channels()};
}

Tensor GlobalAvgPool::forward(const Tensor& input, Mode mode) {
  const int batch = input.shape().batch(), channels = input.shape().channels();
  const std::int64_t hw = static_cast<std::int64_t>(input.shape().height()) * input.shape().width();
  Tensor output(Shape{batch, channels});
  const float inv = 1.0f / static_cast<float>(hw);
  for (int n = 0; n < batch; ++n) {
    for (int c = 0; c < channels; ++c) {
      const float* src = input.data() + (static_cast<std::int64_t>(n) * channels + c) * hw;
      float acc = 0.0f;
      for (std::int64_t i = 0; i < hw; ++i) acc += src[i];
      output.at(n, c) = acc * inv;
    }
  }
  if (mode == Mode::kTrain) cached_input_shape_ = input.shape();
  return output;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_output) {
  if (cached_input_shape_.rank() != 4) throw std::logic_error(name_ + ": backward before forward");
  const int batch = cached_input_shape_.batch(), channels = cached_input_shape_.channels();
  const std::int64_t hw =
      static_cast<std::int64_t>(cached_input_shape_.height()) * cached_input_shape_.width();
  const float inv = 1.0f / static_cast<float>(hw);
  Tensor grad_input(cached_input_shape_);
  for (int n = 0; n < batch; ++n) {
    for (int c = 0; c < channels; ++c) {
      const float g = grad_output.at(n, c) * inv;
      float* dst = grad_input.data() + (static_cast<std::int64_t>(n) * channels + c) * hw;
      for (std::int64_t i = 0; i < hw; ++i) dst[i] = g;
    }
  }
  return grad_input;
}

LayerStats GlobalAvgPool::stats(const Shape& input) const {
  LayerStats s;
  s.macs = input.numel() / input.dim(0);
  return s;
}

AvgPool2d::AvgPool2d(int kernel, std::string name) : kernel_(kernel), name_(std::move(name)) {
  if (kernel <= 0) throw std::invalid_argument("AvgPool2d: kernel must be positive");
}

Shape AvgPool2d::output_shape(const Shape& input) const {
  if (input.height() % kernel_ != 0 || input.width() % kernel_ != 0) {
    throw std::invalid_argument(name_ + ": input " + input.to_string() +
                                " not divisible by kernel " + std::to_string(kernel_));
  }
  return Shape{input.batch(), input.channels(), input.height() / kernel_,
               input.width() / kernel_};
}

Tensor AvgPool2d::forward(const Tensor& input, Mode mode) {
  const Shape out_shape = output_shape(input.shape());
  Tensor output(out_shape);
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
  for (int n = 0; n < out_shape.batch(); ++n) {
    for (int c = 0; c < out_shape.channels(); ++c) {
      for (int oh = 0; oh < out_shape.height(); ++oh) {
        for (int ow = 0; ow < out_shape.width(); ++ow) {
          float acc = 0.0f;
          for (int kh = 0; kh < kernel_; ++kh) {
            for (int kw = 0; kw < kernel_; ++kw) {
              acc += input.at(n, c, oh * kernel_ + kh, ow * kernel_ + kw);
            }
          }
          output.at(n, c, oh, ow) = acc * inv;
        }
      }
    }
  }
  if (mode == Mode::kTrain) cached_input_shape_ = input.shape();
  return output;
}

Tensor AvgPool2d::backward(const Tensor& grad_output) {
  if (cached_input_shape_.rank() != 4) throw std::logic_error(name_ + ": backward before forward");
  Tensor grad_input(cached_input_shape_);
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
  const Shape& out_shape = grad_output.shape();
  for (int n = 0; n < out_shape.batch(); ++n) {
    for (int c = 0; c < out_shape.channels(); ++c) {
      for (int oh = 0; oh < out_shape.height(); ++oh) {
        for (int ow = 0; ow < out_shape.width(); ++ow) {
          const float g = grad_output.at(n, c, oh, ow) * inv;
          for (int kh = 0; kh < kernel_; ++kh) {
            for (int kw = 0; kw < kernel_; ++kw) {
              grad_input.at(n, c, oh * kernel_ + kh, ow * kernel_ + kw) = g;
            }
          }
        }
      }
    }
  }
  return grad_input;
}

LayerStats AvgPool2d::stats(const Shape& input) const {
  LayerStats s;
  s.macs = input.numel() / input.dim(0);
  return s;
}

}  // namespace meanet::nn
