// Post-training weight quantization (fake-quantization) for the edge
// deployment — the hybrid low-precision-edge / full-precision-cloud
// configuration the paper cites as complementary ([7], [43]).
//
// Symmetric uniform quantization per parameter tensor:
//   scale = max|w| / (2^(bits-1) - 1),  w_q = round(w / scale) * scale.
// Weights are modified in place; inference then runs on the quantized
// values (the arithmetic itself stays float, as in standard
// fake-quantization evaluation).
#pragma once

#include <cstdint>

#include "nn/layer.h"

namespace meanet::nn {

struct QuantizationReport {
  int bits = 0;
  std::int64_t quantized_params = 0;
  /// Largest absolute weight change introduced by quantization.
  float max_abs_error = 0.0f;
  /// Mean absolute weight change.
  float mean_abs_error = 0.0f;
};

/// Quantizes every parameter of `layer` (recursing through composites)
/// to `bits` bits. `bits` must be in [2, 16].
QuantizationReport quantize_weights(Layer& layer, int bits);

}  // namespace meanet::nn
