// Post-training weight quantization for the edge deployment — the
// hybrid low-precision-edge / full-precision-cloud configuration the
// paper cites as complementary ([7], [43]).
//
// Two flavors:
//   - quantize_weights(): fake-quantization. Symmetric uniform
//     quantization per parameter tensor, scale = max|w| /
//     (2^(bits-1) - 1), w_q = round(w / scale) * scale; weights are
//     modified in place and inference runs on the rounded values in
//     float arithmetic. This is the accuracy-measurement tool
//     (bench/ablation_quantization).
//   - quantize_weights_int8(): real int8 storage. Per-output-row
//     symmetric s8 codes + scales + zero-point row sums
//     (ops::QuantizedWeights, tensor/qgemm.h) — the layout the int8
//     serving path (EngineConfig::quantized_inference /
//     ops::QuantizedScope) feeds to the integer GEMM. The layer's
//     float weights are left untouched.
#pragma once

#include <cstdint>

#include "nn/layer.h"
#include "tensor/qgemm.h"

namespace meanet::nn {

struct QuantizationReport {
  int bits = 0;
  std::int64_t quantized_params = 0;
  /// Largest absolute weight change introduced by quantization.
  float max_abs_error = 0.0f;
  /// Mean absolute weight change.
  float mean_abs_error = 0.0f;
};

/// Quantizes every parameter of `layer` (recursing through composites)
/// to `bits` bits. `bits` must be in [2, 16].
QuantizationReport quantize_weights(Layer& layer, int bits);

/// Real int8 storage of a weight matrix viewed as [rows,
/// weight.numel() / rows] — per-row symmetric scales, s8 codes
/// (k-padded for the integer kernel), and zero-point row sums. `rows`
/// must divide the element count. The source tensor is not modified.
ops::QuantizedWeights quantize_weights_int8(const Tensor& weight, int rows);

/// The float matrix the int8 codes decode to ([rows, cols], padding
/// stripped) — for error measurement and the parity tests.
Tensor dequantize_int8(const ops::QuantizedWeights& q);

}  // namespace meanet::nn
