// Layer interface for manual backpropagation.
//
// Layers own their parameters and cache whatever activations their
// backward pass needs. The contract is strict call pairing in train
// mode:
//   y = layer.forward(x, Mode::kTrain);  // caches
//   dx = layer.backward(dy);             // consumes the cache
// Mode::kEval forwards are inference-only and cache-free: they write no
// layer state whatsoever (no activation caches, no running-statistic
// updates), so any number of threads may run eval forwards through one
// shared net concurrently — this is what lets InferenceSession workers
// serve on a single net instead of weight-synced replicas. backward()
// after an eval-mode forward is a contract violation (it throws, or
// pairs with the last train-mode forward if one is still cached).
// Freezing a layer (paper Alg. 1 step 6, "fix the main block") marks its
// parameters non-trainable and pins BatchNorm to running statistics,
// matching the paper's "set main block to evaluation mode" detail.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace meanet::nn {

struct Parameter;

enum class Mode {
  kTrain,
  kEval,
};

/// A named non-trainable state tensor (e.g. BatchNorm running statistics),
/// included in serialization alongside parameters.
struct NamedTensor {
  std::string name;
  Tensor* tensor = nullptr;
};

/// Per-layer resource statistics used for Table VI (params / multiply-adds)
/// and Fig. 6 (training memory).
struct LayerStats {
  std::int64_t params = 0;
  /// Multiply-accumulate count for a single instance forward pass.
  std::int64_t macs = 0;
  /// Elements of activation state cached for backward, per instance.
  std::int64_t activation_elems = 0;
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output; `mode` selects train/eval behaviour
  /// (BatchNorm statistics). Caches state for a following backward().
  virtual Tensor forward(const Tensor& input, Mode mode) = 0;

  /// Given dL/d(output), accumulates parameter gradients (unless frozen)
  /// and returns dL/d(input).
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Owned parameters (empty for stateless layers).
  virtual std::vector<Parameter*> parameters() { return {}; }

  /// Owned non-trainable state (e.g. BatchNorm running statistics);
  /// serialized together with the parameters so a model "downloaded to
  /// the edge" (paper Alg. 1 step 4) is bit-identical.
  virtual std::vector<NamedTensor> state() { return {}; }

  virtual std::string name() const = 0;

  /// Shape produced for a given input shape (no forward executed).
  virtual Shape output_shape(const Shape& input) const = 0;

  /// Params / MACs / activation-cache size for one instance of `input`.
  virtual LayerStats stats(const Shape& input) const = 0;

  /// Elements of activation state the layer is holding for a backward
  /// pass *right now* (as opposed to stats(), which predicts the cost of
  /// a train-mode forward). Eval-mode forwards must leave this at 0 —
  /// the runtime's shared-net serving tests assert it.
  virtual std::int64_t activation_cache_elems() const { return 0; }

  /// Freezes or unfreezes all parameters; see file comment.
  virtual void set_frozen(bool frozen);

  bool frozen() const { return frozen_; }

 protected:
  bool frozen_ = false;
};

using LayerPtr = std::unique_ptr<Layer>;

/// Total parameter count across `layers`, optionally only trainable ones.
std::int64_t count_parameters(const std::vector<Parameter*>& params, bool trainable_only = false);

}  // namespace meanet::nn
