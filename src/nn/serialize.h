// Binary model serialization — the mechanism behind the paper's
// "download the main block (and ClassDict) to the edge" (Alg. 1 step 4).
//
// Format (little-endian):
//   magic "MEAN" | version u32 | entry count u64 |
//   per entry: name length u32 | name bytes | rank u32 | dims i32[] |
//              float32 data
// Entries are the layer's parameters plus its state() tensors (BatchNorm
// running statistics), so a loaded model reproduces the exact inference
// behaviour of the saved one. Loading matches entries by name and
// validates shapes; unknown or missing names are errors.
#pragma once

#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "nn/layer.h"

namespace meanet::nn {

/// Bounds-checked cursor over an untrusted byte buffer (a frame payload
/// off a socket, a file slice). Every read validates against the
/// remaining length and throws std::runtime_error instead of reading
/// past the end — the load/decode paths must never turn hostile sizes
/// into UB or unbounded allocations.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  std::size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }
  std::size_t position() const { return pos_; }

  void read_bytes(void* dst, std::size_t n);

  template <typename T>
  T read() {
    static_assert(std::is_trivially_copyable_v<T>, "pod reads only");
    T value{};
    read_bytes(&value, sizeof(T));
    return value;
  }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// ---- Tensor wire encoding ----
//
// The single tensor byte format of the project (shared by the model
// files above and the wire protocol in src/wire — do NOT invent a
// second one): rank u32 | dims i32[rank] | float32 data, little-endian.
// Decoding is hardened for untrusted input: rank and dims are bounded,
// the element count is overflow-checked and validated against the
// bytes actually present before anything is allocated.

/// Serialized size of a tensor of this geometry (4 + 4*rank + 4*numel).
std::int64_t tensor_wire_bytes(const Shape& shape);

/// Appends the wire encoding of `t` to `out`.
void append_tensor(std::vector<std::uint8_t>& out, const Tensor& t);

/// Decodes one tensor from `in`, validating every header field against
/// the bytes remaining. Throws std::runtime_error on malformed input.
Tensor read_tensor(ByteReader& in);

/// Serializes parameters + state of `layer` (recursing through
/// composites) to `path`. Throws std::runtime_error on I/O failure.
void save_model(Layer& layer, const std::string& path);

/// Loads a file written by save_model into `layer`. Every entry in the
/// file must match a tensor in the layer by name and shape, and every
/// tensor in the layer must be present in the file.
void load_model(Layer& layer, const std::string& path);

/// Byte size the serialized form of `layer` will occupy (useful to price
/// the model-download communication cost).
std::int64_t serialized_size(Layer& layer);

}  // namespace meanet::nn
