// Binary model serialization — the mechanism behind the paper's
// "download the main block (and ClassDict) to the edge" (Alg. 1 step 4).
//
// Format (little-endian):
//   magic "MEAN" | version u32 | entry count u64 |
//   per entry: name length u32 | name bytes | rank u32 | dims i32[] |
//              float32 data
// Entries are the layer's parameters plus its state() tensors (BatchNorm
// running statistics), so a loaded model reproduces the exact inference
// behaviour of the saved one. Loading matches entries by name and
// validates shapes; unknown or missing names are errors.
#pragma once

#include <string>

#include "nn/layer.h"

namespace meanet::nn {

/// Serializes parameters + state of `layer` (recursing through
/// composites) to `path`. Throws std::runtime_error on I/O failure.
void save_model(Layer& layer, const std::string& path);

/// Loads a file written by save_model into `layer`. Every entry in the
/// file must match a tensor in the layer by name and shape, and every
/// tensor in the layer must be present in the file.
void load_model(Layer& layer, const std::string& path);

/// Byte size the serialized form of `layer` will occupy (useful to price
/// the model-download communication cost).
std::int64_t serialized_size(Layer& layer);

}  // namespace meanet::nn
