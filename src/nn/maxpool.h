// Max pooling (non-overlapping windows), used by ImageNet-style stems.
#pragma once

#include "nn/layer.h"

namespace meanet::nn {

class MaxPool2d : public Layer {
 public:
  explicit MaxPool2d(int kernel, std::string name = "maxpool");

  Tensor forward(const Tensor& input, Mode mode) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return name_; }
  Shape output_shape(const Shape& input) const override;
  LayerStats stats(const Shape& input) const override;
  std::int64_t activation_cache_elems() const override {
    return static_cast<std::int64_t>(argmax_.size());
  }

 private:
  int kernel_;
  std::string name_;
  Shape cached_input_shape_;
  /// Flat input index of the max element for each output element.
  std::vector<std::int64_t> argmax_;
};

}  // namespace meanet::nn
