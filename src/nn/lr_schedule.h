// Multi-step learning-rate decay: lr *= gamma at each milestone epoch
// (the paper decays at epochs 60/120/160 for CIFAR and 30/100 for
// ImageNet).
#pragma once

#include <vector>

#include "nn/optimizer.h"

namespace meanet::nn {

class MultiStepLR {
 public:
  MultiStepLR(SGD& optimizer, std::vector<int> milestones, float gamma = 0.1f);

  /// Call once per epoch *after* training that epoch; applies the decay
  /// when the finished epoch index (0-based) + 1 hits a milestone.
  void step();

  int epoch() const { return epoch_; }

 private:
  SGD& optimizer_;
  std::vector<int> milestones_;
  float gamma_;
  int epoch_ = 0;
};

}  // namespace meanet::nn
