#include "nn/activations.h"

#include <stdexcept>

namespace meanet::nn {

Tensor ReLU::forward(const Tensor& input, Mode mode) {
  Tensor output(input.shape());
  for (std::int64_t i = 0; i < input.numel(); ++i) {
    output[i] = input[i] > 0.0f ? input[i] : 0.0f;
  }
  if (mode == Mode::kTrain) cached_input_ = input;
  return output;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  if (cached_input_.empty()) throw std::logic_error(name_ + ": backward before forward");
  Tensor grad_input(grad_output.shape());
  for (std::int64_t i = 0; i < grad_output.numel(); ++i) {
    grad_input[i] = cached_input_[i] > 0.0f ? grad_output[i] : 0.0f;
  }
  return grad_input;
}

LayerStats ReLU::stats(const Shape& input) const {
  LayerStats s;
  s.activation_elems = input.numel() / input.dim(0);
  return s;
}

Tensor ReLU6::forward(const Tensor& input, Mode mode) {
  Tensor output(input.shape());
  for (std::int64_t i = 0; i < input.numel(); ++i) {
    const float v = input[i];
    output[i] = v <= 0.0f ? 0.0f : (v >= 6.0f ? 6.0f : v);
  }
  if (mode == Mode::kTrain) cached_input_ = input;
  return output;
}

Tensor ReLU6::backward(const Tensor& grad_output) {
  if (cached_input_.empty()) throw std::logic_error(name_ + ": backward before forward");
  Tensor grad_input(grad_output.shape());
  for (std::int64_t i = 0; i < grad_output.numel(); ++i) {
    const float v = cached_input_[i];
    grad_input[i] = (v > 0.0f && v < 6.0f) ? grad_output[i] : 0.0f;
  }
  return grad_input;
}

LayerStats ReLU6::stats(const Shape& input) const {
  LayerStats s;
  s.activation_elems = input.numel() / input.dim(0);
  return s;
}

}  // namespace meanet::nn
