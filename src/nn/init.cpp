#include "nn/init.h"

#include <cmath>
#include <stdexcept>

namespace meanet::nn {

Tensor he_normal_init(Shape shape, int fan_in, util::Rng& rng) {
  if (fan_in <= 0) throw std::invalid_argument("he_normal_init: fan_in must be positive");
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  return Tensor::normal(std::move(shape), rng, 0.0f, stddev);
}

Tensor xavier_uniform_init(Shape shape, int fan_in, int fan_out, util::Rng& rng) {
  if (fan_in <= 0 || fan_out <= 0) {
    throw std::invalid_argument("xavier_uniform_init: fans must be positive");
  }
  const float limit = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Tensor::uniform(std::move(shape), rng, -limit, limit);
}

}  // namespace meanet::nn
