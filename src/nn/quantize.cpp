#include "nn/quantize.h"

#include <cmath>
#include <stdexcept>

#include "nn/parameter.h"

namespace meanet::nn {

QuantizationReport quantize_weights(Layer& layer, int bits) {
  if (bits < 2 || bits > 16) {
    throw std::invalid_argument("quantize_weights: bits must be in [2, 16]");
  }
  QuantizationReport report;
  report.bits = bits;
  const float levels = static_cast<float>((1 << (bits - 1)) - 1);
  double error_sum = 0.0;
  for (Parameter* p : layer.parameters()) {
    float max_abs = 0.0f;
    for (std::int64_t i = 0; i < p->value.numel(); ++i) {
      max_abs = std::max(max_abs, std::fabs(p->value[i]));
    }
    if (max_abs == 0.0f) {
      report.quantized_params += p->numel();
      continue;  // all-zero tensor is already exactly representable
    }
    const float scale = max_abs / levels;
    for (std::int64_t i = 0; i < p->value.numel(); ++i) {
      const float original = p->value[i];
      const float quantized = std::round(original / scale) * scale;
      const float err = std::fabs(quantized - original);
      report.max_abs_error = std::max(report.max_abs_error, err);
      error_sum += err;
      p->value[i] = quantized;
    }
    report.quantized_params += p->numel();
  }
  if (report.quantized_params > 0) {
    report.mean_abs_error =
        static_cast<float>(error_sum / static_cast<double>(report.quantized_params));
  }
  return report;
}

ops::QuantizedWeights quantize_weights_int8(const Tensor& weight, int rows) {
  if (rows <= 0 || weight.numel() % rows != 0) {
    throw std::invalid_argument("quantize_weights_int8: rows must divide the element count");
  }
  const int cols = static_cast<int>(weight.numel() / rows);
  return ops::quantize_weights_int8(weight.data(), rows, cols);
}

Tensor dequantize_int8(const ops::QuantizedWeights& q) {
  Tensor out(Shape{q.rows, q.cols});
  for (int r = 0; r < q.rows; ++r) {
    const std::int8_t* row = q.data.data() + static_cast<std::ptrdiff_t>(r) * q.k_padded;
    const float scale = q.scale[static_cast<std::size_t>(r)];
    for (int p = 0; p < q.cols; ++p) {
      out.data()[static_cast<std::ptrdiff_t>(r) * q.cols + p] =
          static_cast<float>(row[p]) * scale;
    }
  }
  return out;
}

}  // namespace meanet::nn
