#include "nn/quantize.h"

#include <cmath>
#include <stdexcept>

#include "nn/parameter.h"

namespace meanet::nn {

QuantizationReport quantize_weights(Layer& layer, int bits) {
  if (bits < 2 || bits > 16) {
    throw std::invalid_argument("quantize_weights: bits must be in [2, 16]");
  }
  QuantizationReport report;
  report.bits = bits;
  const float levels = static_cast<float>((1 << (bits - 1)) - 1);
  double error_sum = 0.0;
  for (Parameter* p : layer.parameters()) {
    float max_abs = 0.0f;
    for (std::int64_t i = 0; i < p->value.numel(); ++i) {
      max_abs = std::max(max_abs, std::fabs(p->value[i]));
    }
    if (max_abs == 0.0f) {
      report.quantized_params += p->numel();
      continue;  // all-zero tensor is already exactly representable
    }
    const float scale = max_abs / levels;
    for (std::int64_t i = 0; i < p->value.numel(); ++i) {
      const float original = p->value[i];
      const float quantized = std::round(original / scale) * scale;
      const float err = std::fabs(quantized - original);
      report.max_abs_error = std::max(report.max_abs_error, err);
      error_sum += err;
      p->value[i] = quantized;
    }
    report.quantized_params += p->numel();
  }
  if (report.quantized_params > 0) {
    report.mean_abs_error =
        static_cast<float>(error_sum / static_cast<double>(report.quantized_params));
  }
  return report;
}

}  // namespace meanet::nn
