// Pooling layers. The CNNs in the paper end with global average pooling
// before the fully-connected exit.
#pragma once

#include "nn/layer.h"

namespace meanet::nn {

/// [N, C, H, W] -> [N, C]: mean over the spatial dimensions.
class GlobalAvgPool : public Layer {
 public:
  explicit GlobalAvgPool(std::string name = "avgpool") : name_(std::move(name)) {}

  Tensor forward(const Tensor& input, Mode mode) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return name_; }
  Shape output_shape(const Shape& input) const override;
  LayerStats stats(const Shape& input) const override;

 private:
  std::string name_;
  Shape cached_input_shape_;
};

/// Windowed average pooling with stride = kernel (non-overlapping).
class AvgPool2d : public Layer {
 public:
  AvgPool2d(int kernel, std::string name = "avgpool2d");

  Tensor forward(const Tensor& input, Mode mode) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return name_; }
  Shape output_shape(const Shape& input) const override;
  LayerStats stats(const Shape& input) const override;

 private:
  int kernel_;
  std::string name_;
  Shape cached_input_shape_;
};

}  // namespace meanet::nn
