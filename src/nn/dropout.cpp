#include "nn/dropout.h"

#include <stdexcept>

namespace meanet::nn {

Dropout::Dropout(float probability, util::Rng& rng, std::string name)
    : probability_(probability), rng_(&rng), name_(std::move(name)) {
  if (probability < 0.0f || probability >= 1.0f) {
    throw std::invalid_argument("Dropout: probability must be in [0, 1)");
  }
}

Tensor Dropout::forward(const Tensor& input, Mode mode) {
  if (mode == Mode::kEval) return input;  // identity; no member writes
  last_was_train_ = !frozen_;
  if (!last_was_train_ || probability_ == 0.0f) {
    mask_ = Tensor();  // identity; backward passes gradients through
    return input;
  }
  const float keep_scale = 1.0f / (1.0f - probability_);
  mask_ = Tensor(input.shape());
  Tensor output(input.shape());
  for (std::int64_t i = 0; i < input.numel(); ++i) {
    const bool keep = !rng_->bernoulli(probability_);
    mask_[i] = keep ? keep_scale : 0.0f;
    output[i] = input[i] * mask_[i];
  }
  return output;
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (mask_.empty()) return grad_output;  // was identity
  Tensor grad_input(grad_output.shape());
  for (std::int64_t i = 0; i < grad_output.numel(); ++i) {
    grad_input[i] = grad_output[i] * mask_[i];
  }
  return grad_input;
}

LayerStats Dropout::stats(const Shape& input) const {
  LayerStats s;
  s.activation_elems = input.numel() / input.dim(0);
  return s;
}

}  // namespace meanet::nn
