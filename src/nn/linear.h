// Fully-connected layer; used as the per-exit classifier heads.
#pragma once

#include "nn/layer.h"
#include "nn/parameter.h"
#include "util/rng.h"

namespace meanet::nn {

class Linear : public Layer {
 public:
  /// Xavier-uniform init. Input must be rank-2 [batch, in_features].
  Linear(int in_features, int out_features, util::Rng& rng, std::string name = "fc");

  Tensor forward(const Tensor& input, Mode mode) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  std::string name() const override { return name_; }
  Shape output_shape(const Shape& input) const override;
  LayerStats stats(const Shape& input) const override;
  std::int64_t activation_cache_elems() const override { return cached_input_.numel(); }

  int in_features() const { return in_features_; }
  int out_features() const { return out_features_; }
  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

 private:
  int in_features_, out_features_;
  std::string name_;
  Parameter weight_;  // [out_features, in_features]
  Parameter bias_;    // [out_features]
  Tensor cached_input_;
};

}  // namespace meanet::nn
