// Ordered container of layers with chained forward/backward.
//
// MEANet's main, adaptive and extension blocks are each a Sequential;
// the MEANet class wires them together (sum/concat fusion, two exits).
#pragma once

#include <memory>
#include <vector>

#include "nn/layer.h"

namespace meanet::nn {

class Sequential : public Layer {
 public:
  explicit Sequential(std::string name = "sequential") : name_(std::move(name)) {}

  /// Appends a layer; returns *this for chaining.
  Sequential& add(LayerPtr layer);

  /// Convenience: constructs the layer in place.
  template <typename L, typename... Args>
  Sequential& emplace(Args&&... args) {
    return add(std::make_unique<L>(std::forward<Args>(args)...));
  }

  Tensor forward(const Tensor& input, Mode mode) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  std::vector<NamedTensor> state() override;
  std::string name() const override { return name_; }
  Shape output_shape(const Shape& input) const override;
  LayerStats stats(const Shape& input) const override;
  std::int64_t activation_cache_elems() const override;
  void set_frozen(bool frozen) override;

  int size() const { return static_cast<int>(layers_.size()); }
  Layer& layer(int index) { return *layers_.at(static_cast<std::size_t>(index)); }
  const Layer& layer(int index) const { return *layers_.at(static_cast<std::size_t>(index)); }

  /// Per-layer stats for a given input shape (used by ModelStats).
  std::vector<LayerStats> layer_stats(const Shape& input) const;

 private:
  std::string name_;
  std::vector<LayerPtr> layers_;
};

}  // namespace meanet::nn
