// Batch normalization over NCHW activations.
//
// Freezing (the paper's fixed main block) pins the layer to its running
// statistics even when the surrounding model is in train mode, matching
// the paper's "layers in the main block are set to evaluation mode".
#pragma once

#include "nn/layer.h"
#include "nn/parameter.h"

namespace meanet::nn {

class BatchNorm2d : public Layer {
 public:
  explicit BatchNorm2d(int channels, float momentum = 0.1f, float eps = 1e-5f,
                       std::string name = "bn");

  Tensor forward(const Tensor& input, Mode mode) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  std::vector<NamedTensor> state() override;
  std::string name() const override { return name_; }
  Shape output_shape(const Shape& input) const override;
  LayerStats stats(const Shape& input) const override;
  std::int64_t activation_cache_elems() const override { return cached_xhat_.numel(); }

  int channels() const { return channels_; }

  /// The eval-mode normalization as a per-channel affine map:
  /// y_c = scale[c] * x_c + shift[c] with scale = gamma / sqrt(var+eps)
  /// and shift = beta - scale * mean (running statistics). This is what
  /// the containers fold into the preceding convolution's weights, so
  /// an eval Conv+BN pair costs one kernel instead of two passes.
  void fold_scale_shift(float* scale, float* shift) const;

  Parameter& gamma() { return gamma_; }
  Parameter& beta() { return beta_; }
  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }

 private:
  int channels_;
  float momentum_, eps_;
  std::string name_;
  Parameter gamma_;  // [channels]
  Parameter beta_;   // [channels]
  Tensor running_mean_, running_var_;

  // Backward cache.
  Tensor cached_xhat_;          // normalized activations
  std::vector<float> inv_std_;  // per channel
  bool cached_batch_stats_ = false;
};

}  // namespace meanet::nn
