#include "nn/model_stats.h"

#include <cstdio>

namespace meanet::nn {

ModelStats& ModelStats::operator+=(const ModelStats& other) {
  fixed_params += other.fixed_params;
  trained_params += other.trained_params;
  fixed_macs += other.fixed_macs;
  trained_macs += other.trained_macs;
  return *this;
}

ModelStats collect_stats(const Layer& layer, const Shape& input_per_instance) {
  const LayerStats ls = layer.stats(input_per_instance);
  ModelStats out;
  if (layer.frozen()) {
    out.fixed_params = ls.params;
    out.fixed_macs = ls.macs;
  } else {
    out.trained_params = ls.params;
    out.trained_macs = ls.macs;
  }
  return out;
}

ModelStats collect_stats(const std::vector<const Layer*>& layers, Shape input_per_instance) {
  ModelStats total;
  Shape s = std::move(input_per_instance);
  for (const Layer* layer : layers) {
    total += collect_stats(*layer, s);
    s = layer->output_shape(s);
  }
  return total;
}

std::string format_millions(std::int64_t count) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2f", static_cast<double>(count) / 1e6);
  return std::string(buffer);
}

}  // namespace meanet::nn
