// Flattens NCHW activations to [batch, features] for FC heads.
#pragma once

#include "nn/layer.h"

namespace meanet::nn {

class Flatten : public Layer {
 public:
  explicit Flatten(std::string name = "flatten") : name_(std::move(name)) {}

  Tensor forward(const Tensor& input, Mode mode) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return name_; }
  Shape output_shape(const Shape& input) const override;
  LayerStats stats(const Shape& /*input*/) const override { return {}; }

 private:
  std::string name_;
  Shape cached_input_shape_;
};

}  // namespace meanet::nn
