// Basic residual block (ResNet v1 style):
//   out = ReLU( BN2(Conv2(ReLU(BN1(Conv1(x))))) + shortcut(x) )
// with a 1x1 Conv+BN shortcut when the shape changes.
#pragma once

#include <memory>

#include "nn/batchnorm2d.h"
#include "nn/conv2d.h"
#include "nn/layer.h"
#include "util/rng.h"

namespace meanet::nn {

class ResidualBlock : public Layer {
 public:
  ResidualBlock(int in_channels, int out_channels, int stride, util::Rng& rng,
                std::string name = "resblock");

  Tensor forward(const Tensor& input, Mode mode) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  std::vector<NamedTensor> state() override;
  std::string name() const override { return name_; }
  Shape output_shape(const Shape& input) const override;
  LayerStats stats(const Shape& input) const override;
  std::int64_t activation_cache_elems() const override;
  void set_frozen(bool frozen) override;

  bool has_projection() const { return static_cast<bool>(shortcut_conv_); }

 private:
  std::string name_;
  Conv2d conv1_;
  BatchNorm2d bn1_;
  Conv2d conv2_;
  BatchNorm2d bn2_;
  std::unique_ptr<Conv2d> shortcut_conv_;  // null => identity shortcut
  std::unique_ptr<BatchNorm2d> shortcut_bn_;
  Tensor cached_pre_relu_;  // main + shortcut, before the final ReLU
  Tensor relu1_out_;        // output of the inner ReLU (backward mask)
};

}  // namespace meanet::nn
