#include "nn/inverted_residual.h"

#include <stdexcept>

#include "nn/fuse.h"

namespace meanet::nn {

InvertedResidual::InvertedResidual(int in_channels, int out_channels, int stride, int expansion,
                                   util::Rng& rng, std::string name)
    : name_(std::move(name)),
      use_skip_(stride == 1 && in_channels == out_channels),
      dw_conv_(in_channels * expansion, 3, stride, 1, rng, name_ + ".dwconv"),
      dw_bn_(in_channels * expansion, 0.1f, 1e-5f, name_ + ".dwbn"),
      dw_relu_(name_ + ".dwrelu"),
      project_conv_(in_channels * expansion, out_channels, 1, 1, 0, /*bias=*/false, rng,
                    name_ + ".project"),
      project_bn_(out_channels, 0.1f, 1e-5f, name_ + ".projectbn") {
  if (expansion < 1) throw std::invalid_argument("InvertedResidual: expansion must be >= 1");
  if (expansion > 1) {
    expand_conv_ = std::make_unique<Conv2d>(in_channels, in_channels * expansion, 1, 1, 0,
                                            /*bias=*/false, rng, name_ + ".expand");
    expand_bn_ = std::make_unique<BatchNorm2d>(in_channels * expansion, 0.1f, 1e-5f,
                                               name_ + ".expandbn");
    expand_relu_ = std::make_unique<ReLU6>(name_ + ".expandrelu");
  }
}

std::vector<Layer*> InvertedResidual::main_layers() {
  std::vector<Layer*> out;
  if (expand_conv_) {
    out.push_back(expand_conv_.get());
    out.push_back(expand_bn_.get());
    out.push_back(expand_relu_.get());
  }
  out.push_back(&dw_conv_);
  out.push_back(&dw_bn_);
  out.push_back(&dw_relu_);
  out.push_back(&project_conv_);
  out.push_back(&project_bn_);
  return out;
}

std::vector<const Layer*> InvertedResidual::main_layers() const {
  auto layers = const_cast<InvertedResidual*>(this)->main_layers();
  return {layers.begin(), layers.end()};
}

Shape InvertedResidual::output_shape(const Shape& input) const {
  Shape s = input;
  for (const Layer* l : main_layers()) s = l->output_shape(s);
  return s;
}

Tensor InvertedResidual::forward(const Tensor& input, Mode mode) {
  // Eval folds each Conv+BN pair (expand, depthwise, project) into one
  // kernel via forward_chain; train is the plain caching chain.
  Tensor x = forward_chain(main_layers(), input, mode);
  if (use_skip_) x.add_(input);
  return x;
}

Tensor InvertedResidual::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  auto layers = main_layers();
  for (auto it = layers.rbegin(); it != layers.rend(); ++it) g = (*it)->backward(g);
  if (use_skip_) g.add_(grad_output);
  return g;
}

std::vector<Parameter*> InvertedResidual::parameters() {
  std::vector<Parameter*> out;
  for (Layer* l : main_layers()) {
    for (Parameter* p : l->parameters()) out.push_back(p);
  }
  return out;
}

std::vector<NamedTensor> InvertedResidual::state() {
  std::vector<NamedTensor> out;
  for (Layer* l : main_layers()) {
    for (const NamedTensor& s : l->state()) out.push_back(s);
  }
  return out;
}

LayerStats InvertedResidual::stats(const Shape& input) const {
  LayerStats total;
  Shape s = input;
  for (const Layer* l : main_layers()) {
    const LayerStats ls = l->stats(s);
    total.params += ls.params;
    total.macs += ls.macs;
    total.activation_elems += ls.activation_elems;
    s = l->output_shape(s);
  }
  return total;
}

std::int64_t InvertedResidual::activation_cache_elems() const {
  std::int64_t total = 0;
  for (const Layer* l : main_layers()) total += l->activation_cache_elems();
  return total;
}

void InvertedResidual::set_frozen(bool frozen) {
  frozen_ = frozen;
  for (Layer* l : main_layers()) l->set_frozen(frozen);
}

}  // namespace meanet::nn
