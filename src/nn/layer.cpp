#include "nn/layer.h"

#include "nn/parameter.h"

namespace meanet::nn {

void Layer::set_frozen(bool frozen) {
  frozen_ = frozen;
  for (Parameter* p : parameters()) p->trainable = !frozen;
}

std::int64_t count_parameters(const std::vector<Parameter*>& params, bool trainable_only) {
  std::int64_t total = 0;
  for (const Parameter* p : params) {
    if (trainable_only && !p->trainable) continue;
    total += p->numel();
  }
  return total;
}

}  // namespace meanet::nn
