// 2-D convolutions: standard (im2col + GEMM) and depthwise.
#pragma once

#include "nn/layer.h"
#include "nn/parameter.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace meanet::nn {

/// Standard NCHW convolution with square kernels.
class Conv2d : public Layer {
 public:
  /// He-normal weight init; bias optional (ResNet-style convs followed by
  /// BatchNorm typically disable it).
  Conv2d(int in_channels, int out_channels, int kernel, int stride, int padding, bool bias,
         util::Rng& rng, std::string name = "conv");

  Tensor forward(const Tensor& input, Mode mode) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  std::string name() const override { return name_; }
  Shape output_shape(const Shape& input) const override;
  LayerStats stats(const Shape& input) const override;

  int in_channels() const { return in_channels_; }
  int out_channels() const { return out_channels_; }
  int kernel() const { return kernel_; }
  int stride() const { return stride_; }
  int padding() const { return padding_; }

  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }
  bool has_bias() const { return has_bias_; }

 private:
  ops::ConvGeometry geometry(const Shape& input) const;

  int in_channels_, out_channels_, kernel_, stride_, padding_;
  bool has_bias_;
  std::string name_;
  Parameter weight_;  // [out_c, in_c * k * k]
  Parameter bias_;    // [out_c]
  Tensor cached_input_;
};

/// Depthwise convolution (one filter per channel), the core of the
/// MobileNetV2-style inverted-residual blocks.
class DepthwiseConv2d : public Layer {
 public:
  DepthwiseConv2d(int channels, int kernel, int stride, int padding, util::Rng& rng,
                  std::string name = "dwconv");

  Tensor forward(const Tensor& input, Mode mode) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  std::string name() const override { return name_; }
  Shape output_shape(const Shape& input) const override;
  LayerStats stats(const Shape& input) const override;

  Parameter& weight() { return weight_; }

 private:
  int channels_, kernel_, stride_, padding_;
  std::string name_;
  Parameter weight_;  // [channels, k, k] stored flat as [channels, k*k]
  Tensor cached_input_;
};

}  // namespace meanet::nn
