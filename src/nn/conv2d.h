// 2-D convolutions: standard (im2col + GEMM) and depthwise.
//
// Both layers expose forward_with(): a const, cache-free forward that
// takes the weights (and optional bias) as raw pointers. The eval-mode
// forward() delegates to it with the layer's own parameters; the
// Sequential / block containers delegate to it with BatchNorm-folded
// weights, which is how a Conv+BN pair collapses to one kernel in eval.
// Under ops::naive_kernels() both layers fall back to the reference
// per-pixel loop nests (the parity oracle and the bench comparison
// column).
#pragma once

#include "nn/layer.h"
#include "nn/parameter.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace meanet::nn {

/// Standard NCHW convolution with square kernels.
class Conv2d : public Layer {
 public:
  /// He-normal weight init; bias optional (ResNet-style convs followed by
  /// BatchNorm typically disable it).
  Conv2d(int in_channels, int out_channels, int kernel, int stride, int padding, bool bias,
         util::Rng& rng, std::string name = "conv");

  Tensor forward(const Tensor& input, Mode mode) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  std::string name() const override { return name_; }
  Shape output_shape(const Shape& input) const override;
  LayerStats stats(const Shape& input) const override;
  std::int64_t activation_cache_elems() const override { return cached_input_.numel(); }

  /// Cache-free forward with externally supplied weights: `weight` has
  /// the layer's [out_c, in_c*k*k] layout, `bias` is [out_c] or null.
  /// Thread-safe (scratch comes from the per-thread workspace).
  Tensor forward_with(const Tensor& input, const float* weight, const float* bias) const;

  int in_channels() const { return in_channels_; }
  int out_channels() const { return out_channels_; }
  int kernel() const { return kernel_; }
  int stride() const { return stride_; }
  int padding() const { return padding_; }

  Parameter& weight() { return weight_; }
  const Parameter& weight() const { return weight_; }
  Parameter& bias() { return bias_; }
  const Parameter& bias() const { return bias_; }
  bool has_bias() const { return has_bias_; }

 private:
  ops::ConvGeometry geometry(const Shape& input) const;

  int in_channels_, out_channels_, kernel_, stride_, padding_;
  bool has_bias_;
  std::string name_;
  Parameter weight_;  // [out_c, in_c * k * k]
  Parameter bias_;    // [out_c]
  Tensor cached_input_;
};

/// Depthwise convolution (one filter per channel), the core of the
/// MobileNetV2-style inverted-residual blocks. The 3x3 kernel (the only
/// size the MobileNet blocks use) runs a stride-specialized, fully
/// unrolled path with the bounds checks hoisted out of the interior.
class DepthwiseConv2d : public Layer {
 public:
  DepthwiseConv2d(int channels, int kernel, int stride, int padding, util::Rng& rng,
                  std::string name = "dwconv");

  Tensor forward(const Tensor& input, Mode mode) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  std::string name() const override { return name_; }
  Shape output_shape(const Shape& input) const override;
  LayerStats stats(const Shape& input) const override;
  std::int64_t activation_cache_elems() const override { return cached_input_.numel(); }

  /// Cache-free forward with externally supplied weights: `weight` has
  /// the layer's [channels, k*k] layout, `bias` is [channels] or null
  /// (the layer itself has no bias — a folded BatchNorm supplies one).
  Tensor forward_with(const Tensor& input, const float* weight, const float* bias) const;

  int channels() const { return channels_; }

  Parameter& weight() { return weight_; }
  const Parameter& weight() const { return weight_; }

 private:
  int channels_, kernel_, stride_, padding_;
  std::string name_;
  Parameter weight_;  // [channels, k, k] stored flat as [channels, k*k]
  Tensor cached_input_;
};

}  // namespace meanet::nn
