// Parameter / multiply-add accounting, split by fixed vs trained —
// the C++ counterpart of the paper's ptflops usage (Table VI).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace meanet::nn {

/// Aggregated counts over a set of (layer, input-shape) pairs.
struct ModelStats {
  std::int64_t fixed_params = 0;
  std::int64_t trained_params = 0;
  /// Per-instance forward multiply-adds attributable to fixed layers.
  std::int64_t fixed_macs = 0;
  /// Per-instance forward multiply-adds attributable to trained layers.
  std::int64_t trained_macs = 0;

  std::int64_t total_params() const { return fixed_params + trained_params; }
  std::int64_t total_macs() const { return fixed_macs + trained_macs; }

  ModelStats& operator+=(const ModelStats& other);
};

/// Counts one layer (recursing through composites via Layer::stats) and
/// attributes it to the fixed or trained bucket by its frozen() flag.
ModelStats collect_stats(const Layer& layer, const Shape& input_per_instance);

/// Sums stats over a pipeline of layers applied in sequence, threading
/// the shape through. `input_per_instance` has batch dim 1.
ModelStats collect_stats(const std::vector<const Layer*>& layers, Shape input_per_instance);

/// Formats a count in millions with two decimals, e.g. "0.37".
std::string format_millions(std::int64_t count);

}  // namespace meanet::nn
