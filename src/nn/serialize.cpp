#include "nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <map>
#include <stdexcept>

#include "nn/parameter.h"

namespace meanet::nn {

namespace {

constexpr char kMagic[4] = {'M', 'E', 'A', 'N'};
constexpr std::uint32_t kVersion = 1;

/// All serializable tensors of a layer, keyed by unique name.
std::map<std::string, Tensor*> named_tensors(Layer& layer) {
  std::map<std::string, Tensor*> out;
  auto insert = [&out](const std::string& name, Tensor* tensor) {
    if (!out.emplace(name, tensor).second) {
      throw std::logic_error("serialize: duplicate tensor name '" + name + "'");
    }
  };
  for (Parameter* p : layer.parameters()) insert(p->name, &p->value);
  for (const NamedTensor& s : layer.state()) insert(s.name, s.tensor);
  return out;
}

template <typename T>
void write_pod(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!is) throw std::runtime_error("serialize: truncated file");
  return value;
}

}  // namespace

void save_model(Layer& layer, const std::string& path) {
  const auto tensors = named_tensors(layer);
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw std::runtime_error("save_model: cannot open '" + path + "'");
  os.write(kMagic, sizeof(kMagic));
  write_pod(os, kVersion);
  write_pod(os, static_cast<std::uint64_t>(tensors.size()));
  for (const auto& [name, tensor] : tensors) {
    write_pod(os, static_cast<std::uint32_t>(name.size()));
    os.write(name.data(), static_cast<std::streamsize>(name.size()));
    const auto& dims = tensor->shape().dims();
    write_pod(os, static_cast<std::uint32_t>(dims.size()));
    for (int d : dims) write_pod(os, static_cast<std::int32_t>(d));
    os.write(reinterpret_cast<const char*>(tensor->data()),
             static_cast<std::streamsize>(sizeof(float) * static_cast<std::size_t>(tensor->numel())));
  }
  if (!os) throw std::runtime_error("save_model: write failed for '" + path + "'");
}

void load_model(Layer& layer, const std::string& path) {
  auto tensors = named_tensors(layer);
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("load_model: cannot open '" + path + "'");
  char magic[4];
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("load_model: bad magic in '" + path + "'");
  }
  const auto version = read_pod<std::uint32_t>(is);
  if (version != kVersion) {
    throw std::runtime_error("load_model: unsupported version " + std::to_string(version));
  }
  const auto count = read_pod<std::uint64_t>(is);
  if (count != tensors.size()) {
    throw std::runtime_error("load_model: file has " + std::to_string(count) +
                             " tensors, model expects " + std::to_string(tensors.size()));
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto name_len = read_pod<std::uint32_t>(is);
    std::string name(name_len, '\0');
    is.read(name.data(), name_len);
    const auto rank = read_pod<std::uint32_t>(is);
    std::vector<int> dims(rank);
    for (auto& d : dims) d = read_pod<std::int32_t>(is);
    const auto it = tensors.find(name);
    if (it == tensors.end()) {
      throw std::runtime_error("load_model: unknown tensor '" + name + "'");
    }
    Tensor* dst = it->second;
    if (Shape(dims) != dst->shape()) {
      throw std::runtime_error("load_model: shape mismatch for '" + name + "': file " +
                               Shape(dims).to_string() + " vs model " +
                               dst->shape().to_string());
    }
    is.read(reinterpret_cast<char*>(dst->data()),
            static_cast<std::streamsize>(sizeof(float) * static_cast<std::size_t>(dst->numel())));
    if (!is) throw std::runtime_error("load_model: truncated data for '" + name + "'");
  }
}

std::int64_t serialized_size(Layer& layer) {
  std::int64_t bytes = 4 + 4 + 8;  // magic + version + count
  for (const auto& [name, tensor] : named_tensors(layer)) {
    bytes += 4 + static_cast<std::int64_t>(name.size());
    bytes += 4 + 4 * tensor->shape().rank();
    bytes += 4 * tensor->numel();
  }
  return bytes;
}

}  // namespace meanet::nn
