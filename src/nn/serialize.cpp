#include "nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <functional>
#include <map>
#include <stdexcept>

#include "nn/parameter.h"

namespace meanet::nn {

namespace {

constexpr char kMagic[4] = {'M', 'E', 'A', 'N'};
constexpr std::uint32_t kVersion = 1;

// Bounds a hostile file/frame cannot widen: a tensor name or shape
// beyond these is rejected before any allocation happens.
constexpr std::uint32_t kMaxNameLen = 1u << 12;
// Shape itself supports at most rank 4, so reject anything wider here
// with the serializer's own error before Shape's constructor is reached.
constexpr std::uint32_t kMaxRank = 4;
constexpr std::int32_t kMaxDim = 1 << 24;

/// All serializable tensors of a layer, keyed by unique name.
std::map<std::string, Tensor*> named_tensors(Layer& layer) {
  std::map<std::string, Tensor*> out;
  auto insert = [&out](const std::string& name, Tensor* tensor) {
    if (!out.emplace(name, tensor).second) {
      throw std::logic_error("serialize: duplicate tensor name '" + name + "'");
    }
  };
  for (Parameter* p : layer.parameters()) insert(p->name, &p->value);
  for (const NamedTensor& s : layer.state()) insert(s.name, s.tensor);
  return out;
}

template <typename T>
void write_pod(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!is) throw std::runtime_error("serialize: truncated file");
  return value;
}

/// Validates one decoded tensor header (rank already read, dims being
/// read by `next_dim`) and returns the checked element count. Shared by
/// the file loader and the wire decoder so hostile sizes fail the same
/// way everywhere: bounded rank, non-negative bounded dims, and an
/// overflow-checked product that must fit in `available_bytes` as
/// float32 data.
std::int64_t checked_numel(std::uint32_t rank, const std::function<std::int32_t()>& next_dim,
                           std::vector<int>& dims, std::uint64_t available_bytes,
                           const char* who) {
  if (rank > kMaxRank) {
    throw std::runtime_error(std::string(who) + ": tensor rank " + std::to_string(rank) +
                             " exceeds the limit of " + std::to_string(kMaxRank));
  }
  dims.clear();
  dims.reserve(rank);
  // Overflow-safe product bound: the data must fit in the bytes that
  // are actually present, so any dim pushing past that is hostile.
  const std::int64_t limit = static_cast<std::int64_t>(available_bytes / sizeof(float));
  std::int64_t numel = 1;
  for (std::uint32_t i = 0; i < rank; ++i) {
    const std::int32_t d = next_dim();
    if (d < 0 || d > kMaxDim) {
      throw std::runtime_error(std::string(who) + ": hostile tensor dim " + std::to_string(d));
    }
    if (d > 0 && numel > limit / d) {
      throw std::runtime_error(std::string(who) +
                               ": tensor data exceeds the bytes present");
    }
    dims.push_back(d);
    numel *= d;
  }
  if (numel > limit) {
    throw std::runtime_error(std::string(who) + ": tensor data exceeds the bytes present");
  }
  return numel;
}

}  // namespace

void ByteReader::read_bytes(void* dst, std::size_t n) {
  if (n > remaining()) {
    throw std::runtime_error("serialize: truncated buffer (need " + std::to_string(n) +
                             " bytes, have " + std::to_string(remaining()) + ")");
  }
  std::memcpy(dst, data_ + pos_, n);
  pos_ += n;
}

std::int64_t tensor_wire_bytes(const Shape& shape) {
  return 4 + 4 * static_cast<std::int64_t>(shape.rank()) + 4 * shape.numel();
}

void append_tensor(std::vector<std::uint8_t>& out, const Tensor& t) {
  auto append_pod = [&out](const auto& value) {
    const auto* bytes = reinterpret_cast<const std::uint8_t*>(&value);
    out.insert(out.end(), bytes, bytes + sizeof(value));
  };
  const auto& dims = t.shape().dims();
  append_pod(static_cast<std::uint32_t>(dims.size()));
  for (int d : dims) append_pod(static_cast<std::int32_t>(d));
  const auto* data = reinterpret_cast<const std::uint8_t*>(t.data());
  out.insert(out.end(), data, data + sizeof(float) * static_cast<std::size_t>(t.numel()));
}

Tensor read_tensor(ByteReader& in) {
  const auto rank = in.read<std::uint32_t>();
  std::vector<int> dims;
  const std::int64_t numel =
      checked_numel(rank, [&in] { return in.read<std::int32_t>(); }, dims,
                    in.remaining(), "read_tensor");
  Tensor out{Shape(dims)};
  (void)numel;
  in.read_bytes(out.data(), sizeof(float) * static_cast<std::size_t>(out.numel()));
  return out;
}

void save_model(Layer& layer, const std::string& path) {
  const auto tensors = named_tensors(layer);
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw std::runtime_error("save_model: cannot open '" + path + "'");
  os.write(kMagic, sizeof(kMagic));
  write_pod(os, kVersion);
  write_pod(os, static_cast<std::uint64_t>(tensors.size()));
  for (const auto& [name, tensor] : tensors) {
    write_pod(os, static_cast<std::uint32_t>(name.size()));
    os.write(name.data(), static_cast<std::streamsize>(name.size()));
    const auto& dims = tensor->shape().dims();
    write_pod(os, static_cast<std::uint32_t>(dims.size()));
    for (int d : dims) write_pod(os, static_cast<std::int32_t>(d));
    os.write(reinterpret_cast<const char*>(tensor->data()),
             static_cast<std::streamsize>(sizeof(float) * static_cast<std::size_t>(tensor->numel())));
  }
  if (!os) throw std::runtime_error("save_model: write failed for '" + path + "'");
}

void load_model(Layer& layer, const std::string& path) {
  auto tensors = named_tensors(layer);
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("load_model: cannot open '" + path + "'");
  // File size bounds every variable-length field below: a hostile
  // header cannot make us allocate more than the file could possibly
  // hold (these bytes may have arrived off a socket — see src/wire).
  is.seekg(0, std::ios::end);
  const std::uint64_t file_size = static_cast<std::uint64_t>(is.tellg());
  is.seekg(0, std::ios::beg);
  auto bytes_left = [&is, file_size]() -> std::uint64_t {
    const auto pos = static_cast<std::uint64_t>(is.tellg());
    return pos <= file_size ? file_size - pos : 0;
  };
  char magic[4];
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("load_model: bad magic in '" + path + "'");
  }
  const auto version = read_pod<std::uint32_t>(is);
  if (version != kVersion) {
    throw std::runtime_error("load_model: unsupported version " + std::to_string(version));
  }
  const auto count = read_pod<std::uint64_t>(is);
  if (count != tensors.size()) {
    throw std::runtime_error("load_model: file has " + std::to_string(count) +
                             " tensors, model expects " + std::to_string(tensors.size()));
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto name_len = read_pod<std::uint32_t>(is);
    if (name_len > kMaxNameLen || name_len > bytes_left()) {
      throw std::runtime_error("load_model: hostile name length " + std::to_string(name_len));
    }
    std::string name(name_len, '\0');
    is.read(name.data(), name_len);
    if (!is) throw std::runtime_error("load_model: truncated name");
    const auto rank = read_pod<std::uint32_t>(is);
    std::vector<int> dims;
    (void)checked_numel(rank, [&is] { return read_pod<std::int32_t>(is); }, dims, bytes_left(),
                        "load_model");
    const auto it = tensors.find(name);
    if (it == tensors.end()) {
      throw std::runtime_error("load_model: unknown tensor '" + name + "'");
    }
    Tensor* dst = it->second;
    if (Shape(dims) != dst->shape()) {
      throw std::runtime_error("load_model: shape mismatch for '" + name + "': file " +
                               Shape(dims).to_string() + " vs model " +
                               dst->shape().to_string());
    }
    is.read(reinterpret_cast<char*>(dst->data()),
            static_cast<std::streamsize>(sizeof(float) * static_cast<std::size_t>(dst->numel())));
    if (!is) throw std::runtime_error("load_model: truncated data for '" + name + "'");
  }
}

std::int64_t serialized_size(Layer& layer) {
  std::int64_t bytes = 4 + 4 + 8;  // magic + version + count
  for (const auto& [name, tensor] : named_tensors(layer)) {
    bytes += 4 + static_cast<std::int64_t>(name.size());
    bytes += 4 + 4 * tensor->shape().rank();
    bytes += 4 * tensor->numel();
  }
  return bytes;
}

}  // namespace meanet::nn
