// Trainable parameter: a value tensor plus its gradient accumulator.
#pragma once

#include <string>

#include "tensor/tensor.h"

namespace meanet::nn {

struct Parameter {
  Parameter() = default;
  Parameter(std::string name, Tensor value)
      : name(std::move(name)), value(std::move(value)), grad(this->value.shape(), 0.0f) {}

  /// Human-readable identifier, e.g. "conv1.weight".
  std::string name;
  Tensor value;
  Tensor grad;
  /// False for frozen parameters (the paper's fixed main block): the
  /// optimizer skips them and layers skip computing their gradients.
  bool trainable = true;

  std::int64_t numel() const { return value.numel(); }
  void zero_grad() { grad.fill(0.0f); }
};

}  // namespace meanet::nn
