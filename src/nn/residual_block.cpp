#include "nn/residual_block.h"

#include <stdexcept>

#include "nn/fuse.h"

namespace meanet::nn {

ResidualBlock::ResidualBlock(int in_channels, int out_channels, int stride, util::Rng& rng,
                             std::string name)
    : name_(std::move(name)),
      conv1_(in_channels, out_channels, 3, stride, 1, /*bias=*/false, rng, name_ + ".conv1"),
      bn1_(out_channels, 0.1f, 1e-5f, name_ + ".bn1"),
      conv2_(out_channels, out_channels, 3, 1, 1, /*bias=*/false, rng, name_ + ".conv2"),
      bn2_(out_channels, 0.1f, 1e-5f, name_ + ".bn2") {
  if (stride != 1 || in_channels != out_channels) {
    shortcut_conv_ = std::make_unique<Conv2d>(in_channels, out_channels, 1, stride, 0,
                                              /*bias=*/false, rng, name_ + ".conv_sc");
    shortcut_bn_ = std::make_unique<BatchNorm2d>(out_channels, 0.1f, 1e-5f, name_ + ".bn_sc");
  }
}

Shape ResidualBlock::output_shape(const Shape& input) const {
  return bn2_.output_shape(conv2_.output_shape(bn1_.output_shape(conv1_.output_shape(input))));
}

Tensor ResidualBlock::forward(const Tensor& input, Mode mode) {
  if (mode == Mode::kEval) {
    // Cache-free inference path: both Conv+BN pairs (and the projection
    // shortcut's) run as folded kernels, ReLUs apply in place, and no
    // backward state is written — safe for concurrent shared-net use.
    Tensor main = fused_conv_bn_eval(conv1_, bn1_, input);
    for (std::int64_t i = 0; i < main.numel(); ++i) {
      if (main[i] < 0.0f) main[i] = 0.0f;
    }
    main = fused_conv_bn_eval(conv2_, bn2_, main);
    if (shortcut_conv_) {
      main.add_(fused_conv_bn_eval(*shortcut_conv_, *shortcut_bn_, input));
    } else {
      main.add_(input);
    }
    for (std::int64_t i = 0; i < main.numel(); ++i) {
      if (main[i] < 0.0f) main[i] = 0.0f;
    }
    return main;
  }
  Tensor main = bn1_.forward(conv1_.forward(input, mode), mode);
  // Inline ReLU between the two convs; mask recoverable from bn1 output sign.
  for (std::int64_t i = 0; i < main.numel(); ++i) {
    if (main[i] < 0.0f) main[i] = 0.0f;
  }
  relu1_out_ = main;
  main = bn2_.forward(conv2_.forward(main, mode), mode);

  Tensor shortcut =
      shortcut_conv_ ? shortcut_bn_->forward(shortcut_conv_->forward(input, mode), mode) : input;
  main.add_(shortcut);
  cached_pre_relu_ = main;

  Tensor out(main.shape());
  for (std::int64_t i = 0; i < main.numel(); ++i) out[i] = main[i] > 0.0f ? main[i] : 0.0f;
  return out;
}

Tensor ResidualBlock::backward(const Tensor& grad_output) {
  if (cached_pre_relu_.empty()) throw std::logic_error(name_ + ": backward before forward");
  // Final ReLU.
  Tensor g(grad_output.shape());
  for (std::int64_t i = 0; i < g.numel(); ++i) {
    g[i] = cached_pre_relu_[i] > 0.0f ? grad_output[i] : 0.0f;
  }
  // Main path: bn2 <- conv2 <- relu1 <- bn1 <- conv1.
  Tensor g_main = conv2_.backward(bn2_.backward(g));
  for (std::int64_t i = 0; i < g_main.numel(); ++i) {
    if (relu1_out_[i] <= 0.0f) g_main[i] = 0.0f;
  }
  Tensor grad_input = conv1_.backward(bn1_.backward(g_main));
  // Shortcut path.
  if (shortcut_conv_) {
    grad_input.add_(shortcut_conv_->backward(shortcut_bn_->backward(g)));
  } else {
    grad_input.add_(g);
  }
  return grad_input;
}

std::vector<Parameter*> ResidualBlock::parameters() {
  std::vector<Parameter*> out;
  for (Layer* l : std::initializer_list<Layer*>{&conv1_, &bn1_, &conv2_, &bn2_}) {
    for (Parameter* p : l->parameters()) out.push_back(p);
  }
  if (shortcut_conv_) {
    for (Parameter* p : shortcut_conv_->parameters()) out.push_back(p);
    for (Parameter* p : shortcut_bn_->parameters()) out.push_back(p);
  }
  return out;
}

std::vector<NamedTensor> ResidualBlock::state() {
  std::vector<NamedTensor> out = bn1_.state();
  for (const NamedTensor& s : bn2_.state()) out.push_back(s);
  if (shortcut_bn_) {
    for (const NamedTensor& s : shortcut_bn_->state()) out.push_back(s);
  }
  return out;
}

LayerStats ResidualBlock::stats(const Shape& input) const {
  LayerStats total;
  Shape s = input;
  for (const Layer* l : std::initializer_list<const Layer*>{&conv1_, &bn1_, &conv2_, &bn2_}) {
    const LayerStats ls = l->stats(s);
    total.params += ls.params;
    total.macs += ls.macs;
    total.activation_elems += ls.activation_elems;
    s = l->output_shape(s);
  }
  if (shortcut_conv_) {
    Shape sc = input;
    for (const Layer* l :
         std::initializer_list<const Layer*>{shortcut_conv_.get(), shortcut_bn_.get()}) {
      const LayerStats ls = l->stats(sc);
      total.params += ls.params;
      total.macs += ls.macs;
      total.activation_elems += ls.activation_elems;
      sc = l->output_shape(sc);
    }
  }
  // Pre-ReLU sum cached for the final activation's backward.
  total.activation_elems += output_shape(input).numel() / input.dim(0);
  return total;
}

std::int64_t ResidualBlock::activation_cache_elems() const {
  std::int64_t total = cached_pre_relu_.numel() + relu1_out_.numel();
  total += conv1_.activation_cache_elems() + bn1_.activation_cache_elems();
  total += conv2_.activation_cache_elems() + bn2_.activation_cache_elems();
  if (shortcut_conv_) {
    total += shortcut_conv_->activation_cache_elems() + shortcut_bn_->activation_cache_elems();
  }
  return total;
}

void ResidualBlock::set_frozen(bool frozen) {
  frozen_ = frozen;
  conv1_.set_frozen(frozen);
  bn1_.set_frozen(frozen);
  conv2_.set_frozen(frozen);
  bn2_.set_frozen(frozen);
  if (shortcut_conv_) {
    shortcut_conv_->set_frozen(frozen);
    shortcut_bn_->set_frozen(frozen);
  }
}

}  // namespace meanet::nn
