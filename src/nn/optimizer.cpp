#include "nn/optimizer.h"

#include <stdexcept>

namespace meanet::nn {

SGD::SGD(std::vector<Parameter*> params, SgdOptions options)
    : params_(std::move(params)), options_(options) {
  velocity_.reserve(params_.size());
  for (const Parameter* p : params_) {
    if (p == nullptr) throw std::invalid_argument("SGD: null parameter");
    velocity_.emplace_back(p->value.shape(), 0.0f);
  }
}

void SGD::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    if (!p.trainable) continue;
    Tensor& v = velocity_[i];
    const float lr = options_.learning_rate;
    const float mu = options_.momentum;
    const float wd = options_.weight_decay;
    for (std::int64_t j = 0; j < p.value.numel(); ++j) {
      const float g = p.grad[j] + wd * p.value[j];
      v[j] = mu * v[j] + g;
      p.value[j] -= lr * v[j];
    }
  }
}

void SGD::zero_grad() {
  for (Parameter* p : params_) p->zero_grad();
}

}  // namespace meanet::nn
