// Pointwise activations: ReLU (ResNet) and ReLU6 (MobileNetV2).
#pragma once

#include "nn/layer.h"

namespace meanet::nn {

class ReLU : public Layer {
 public:
  explicit ReLU(std::string name = "relu") : name_(std::move(name)) {}

  Tensor forward(const Tensor& input, Mode mode) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return name_; }
  Shape output_shape(const Shape& input) const override { return input; }
  LayerStats stats(const Shape& input) const override;
  std::int64_t activation_cache_elems() const override { return cached_input_.numel(); }

 private:
  std::string name_;
  Tensor cached_input_;
};

/// min(max(x, 0), 6) — the clipped ReLU used by MobileNetV2.
class ReLU6 : public Layer {
 public:
  explicit ReLU6(std::string name = "relu6") : name_(std::move(name)) {}

  Tensor forward(const Tensor& input, Mode mode) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return name_; }
  Shape output_shape(const Shape& input) const override { return input; }
  LayerStats stats(const Shape& input) const override;
  std::int64_t activation_cache_elems() const override { return cached_input_.numel(); }

 private:
  std::string name_;
  Tensor cached_input_;
};

}  // namespace meanet::nn
