#include "nn/flatten.h"

#include <stdexcept>

namespace meanet::nn {

Shape Flatten::output_shape(const Shape& input) const {
  if (input.rank() < 2) throw std::invalid_argument(name_ + ": rank must be >= 2");
  return Shape{input.dim(0), static_cast<int>(input.numel() / input.dim(0))};
}

Tensor Flatten::forward(const Tensor& input, Mode mode) {
  if (mode == Mode::kTrain) cached_input_shape_ = input.shape();
  return input.reshaped(output_shape(input.shape()));
}

Tensor Flatten::backward(const Tensor& grad_output) {
  if (cached_input_shape_.rank() == 0) throw std::logic_error(name_ + ": backward before forward");
  return grad_output.reshaped(cached_input_shape_);
}

}  // namespace meanet::nn
