#include "nn/sequential.h"

#include <stdexcept>

#include "nn/fuse.h"
#include "nn/parameter.h"

namespace meanet::nn {

Sequential& Sequential::add(LayerPtr layer) {
  if (!layer) throw std::invalid_argument(name_ + ": null layer");
  layers_.push_back(std::move(layer));
  return *this;
}

Tensor Sequential::forward(const Tensor& input, Mode mode) {
  // forward_chain folds adjacent Conv+BN pairs into one kernel in eval
  // mode; in train mode it is a plain layer-by-layer chain.
  return forward_chain(layers_, input, mode);
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) g = (*it)->backward(g);
  return g;
}

std::vector<Parameter*> Sequential::parameters() {
  std::vector<Parameter*> out;
  for (auto& layer : layers_) {
    for (Parameter* p : layer->parameters()) out.push_back(p);
  }
  return out;
}

std::vector<NamedTensor> Sequential::state() {
  std::vector<NamedTensor> out;
  for (auto& layer : layers_) {
    for (const NamedTensor& s : layer->state()) out.push_back(s);
  }
  return out;
}

Shape Sequential::output_shape(const Shape& input) const {
  Shape s = input;
  for (const auto& layer : layers_) s = layer->output_shape(s);
  return s;
}

LayerStats Sequential::stats(const Shape& input) const {
  LayerStats total;
  Shape s = input;
  for (const auto& layer : layers_) {
    const LayerStats ls = layer->stats(s);
    total.params += ls.params;
    total.macs += ls.macs;
    total.activation_elems += ls.activation_elems;
    s = layer->output_shape(s);
  }
  return total;
}

std::vector<LayerStats> Sequential::layer_stats(const Shape& input) const {
  std::vector<LayerStats> out;
  Shape s = input;
  for (const auto& layer : layers_) {
    out.push_back(layer->stats(s));
    s = layer->output_shape(s);
  }
  return out;
}

std::int64_t Sequential::activation_cache_elems() const {
  std::int64_t total = 0;
  for (const auto& layer : layers_) total += layer->activation_cache_elems();
  return total;
}

void Sequential::set_frozen(bool frozen) {
  frozen_ = frozen;
  for (auto& layer : layers_) layer->set_frozen(frozen);
}

}  // namespace meanet::nn
