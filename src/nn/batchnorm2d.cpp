#include "nn/batchnorm2d.h"

#include <cmath>
#include <stdexcept>

namespace meanet::nn {

BatchNorm2d::BatchNorm2d(int channels, float momentum, float eps, std::string name)
    : channels_(channels),
      momentum_(momentum),
      eps_(eps),
      name_(std::move(name)),
      gamma_(name_ + ".gamma", Tensor::ones(Shape{channels})),
      beta_(name_ + ".beta", Tensor::zeros(Shape{channels})),
      running_mean_(Shape{channels}, 0.0f),
      running_var_(Shape{channels}, 1.0f) {
  if (channels <= 0) throw std::invalid_argument("BatchNorm2d: channels must be positive");
}

Shape BatchNorm2d::output_shape(const Shape& input) const {
  if (input.channels() != channels_) {
    throw std::invalid_argument(name_ + ": channel mismatch, got " + input.to_string());
  }
  return input;
}

void BatchNorm2d::fold_scale_shift(float* scale, float* shift) const {
  for (int c = 0; c < channels_; ++c) {
    const float s = gamma_.value[c] / std::sqrt(running_var_[c] + eps_);
    scale[c] = s;
    shift[c] = beta_.value[c] - s * running_mean_[c];
  }
}

Tensor BatchNorm2d::forward(const Tensor& input, Mode mode) {
  (void)output_shape(input.shape());
  const int batch = input.shape().batch();
  const int h = input.shape().height(), w = input.shape().width();
  const std::int64_t hw = static_cast<std::int64_t>(h) * w;
  const std::int64_t count = static_cast<std::int64_t>(batch) * hw;

  if (mode == Mode::kEval) {
    // Cache-free inference path: the running statistics collapse to a
    // per-channel affine map, computed into locals — no member writes,
    // so concurrent eval forwards through a shared net are safe.
    std::vector<float> scale(static_cast<std::size_t>(channels_));
    std::vector<float> shift(static_cast<std::size_t>(channels_));
    fold_scale_shift(scale.data(), shift.data());
    Tensor output(input.shape());
    for (int n = 0; n < batch; ++n) {
      for (int c = 0; c < channels_; ++c) {
        const float* src = input.data() + ((static_cast<std::int64_t>(n) * channels_ + c) * hw);
        float* dst = output.data() + ((static_cast<std::int64_t>(n) * channels_ + c) * hw);
        const float s = scale[static_cast<std::size_t>(c)];
        const float t = shift[static_cast<std::size_t>(c)];
        for (std::int64_t i = 0; i < hw; ++i) dst[i] = s * src[i] + t;
      }
    }
    return output;
  }

  const bool use_batch_stats = !frozen_;  // mode is kTrain here

  std::vector<float> mean(static_cast<std::size_t>(channels_), 0.0f);
  std::vector<float> var(static_cast<std::size_t>(channels_), 0.0f);
  if (use_batch_stats) {
    for (int c = 0; c < channels_; ++c) {
      double acc = 0.0;
      for (int n = 0; n < batch; ++n) {
        const float* src = input.data() + ((static_cast<std::int64_t>(n) * channels_ + c) * hw);
        for (std::int64_t i = 0; i < hw; ++i) acc += src[i];
      }
      mean[static_cast<std::size_t>(c)] = static_cast<float>(acc / static_cast<double>(count));
    }
    for (int c = 0; c < channels_; ++c) {
      double acc = 0.0;
      const float m = mean[static_cast<std::size_t>(c)];
      for (int n = 0; n < batch; ++n) {
        const float* src = input.data() + ((static_cast<std::int64_t>(n) * channels_ + c) * hw);
        for (std::int64_t i = 0; i < hw; ++i) {
          const double d = src[i] - m;
          acc += d * d;
        }
      }
      var[static_cast<std::size_t>(c)] = static_cast<float>(acc / static_cast<double>(count));
    }
    for (int c = 0; c < channels_; ++c) {
      running_mean_[c] = (1.0f - momentum_) * running_mean_[c] + momentum_ * mean[static_cast<std::size_t>(c)];
      running_var_[c] = (1.0f - momentum_) * running_var_[c] + momentum_ * var[static_cast<std::size_t>(c)];
    }
  } else {
    for (int c = 0; c < channels_; ++c) {
      mean[static_cast<std::size_t>(c)] = running_mean_[c];
      var[static_cast<std::size_t>(c)] = running_var_[c];
    }
  }

  inv_std_.assign(static_cast<std::size_t>(channels_), 0.0f);
  for (int c = 0; c < channels_; ++c) {
    inv_std_[static_cast<std::size_t>(c)] = 1.0f / std::sqrt(var[static_cast<std::size_t>(c)] + eps_);
  }

  Tensor output(input.shape());
  cached_xhat_ = Tensor(input.shape());
  for (int n = 0; n < batch; ++n) {
    for (int c = 0; c < channels_; ++c) {
      const float* src = input.data() + ((static_cast<std::int64_t>(n) * channels_ + c) * hw);
      float* xh = cached_xhat_.data() + ((static_cast<std::int64_t>(n) * channels_ + c) * hw);
      float* dst = output.data() + ((static_cast<std::int64_t>(n) * channels_ + c) * hw);
      const float m = mean[static_cast<std::size_t>(c)];
      const float is = inv_std_[static_cast<std::size_t>(c)];
      const float g = gamma_.value[c], b = beta_.value[c];
      for (std::int64_t i = 0; i < hw; ++i) {
        const float normalized = (src[i] - m) * is;
        xh[i] = normalized;
        dst[i] = g * normalized + b;
      }
    }
  }
  cached_batch_stats_ = use_batch_stats;
  return output;
}

Tensor BatchNorm2d::backward(const Tensor& grad_output) {
  if (cached_xhat_.empty()) throw std::logic_error(name_ + ": backward before forward");
  const Shape& shape = grad_output.shape();
  const int batch = shape.batch();
  const std::int64_t hw = static_cast<std::int64_t>(shape.height()) * shape.width();
  const std::int64_t count = static_cast<std::int64_t>(batch) * hw;

  Tensor grad_input(shape);
  for (int c = 0; c < channels_; ++c) {
    // Channel-wise reductions of dL/dy and dL/dy * x_hat.
    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (int n = 0; n < batch; ++n) {
      const float* dy = grad_output.data() + ((static_cast<std::int64_t>(n) * channels_ + c) * hw);
      const float* xh = cached_xhat_.data() + ((static_cast<std::int64_t>(n) * channels_ + c) * hw);
      for (std::int64_t i = 0; i < hw; ++i) {
        sum_dy += dy[i];
        sum_dy_xhat += static_cast<double>(dy[i]) * xh[i];
      }
    }
    if (!frozen_) {
      gamma_.grad[c] += static_cast<float>(sum_dy_xhat);
      beta_.grad[c] += static_cast<float>(sum_dy);
    }
    const float g = gamma_.value[c];
    const float is = inv_std_[static_cast<std::size_t>(c)];
    if (cached_batch_stats_) {
      // Full train-mode gradient: mean and variance depend on the input.
      const float mean_dy = static_cast<float>(sum_dy / static_cast<double>(count));
      const float mean_dy_xhat = static_cast<float>(sum_dy_xhat / static_cast<double>(count));
      for (int n = 0; n < batch; ++n) {
        const float* dy = grad_output.data() + ((static_cast<std::int64_t>(n) * channels_ + c) * hw);
        const float* xh = cached_xhat_.data() + ((static_cast<std::int64_t>(n) * channels_ + c) * hw);
        float* dx = grad_input.data() + ((static_cast<std::int64_t>(n) * channels_ + c) * hw);
        for (std::int64_t i = 0; i < hw; ++i) {
          dx[i] = g * is * (dy[i] - mean_dy - xh[i] * mean_dy_xhat);
        }
      }
    } else {
      // Eval-mode statistics are constants.
      for (int n = 0; n < batch; ++n) {
        const float* dy = grad_output.data() + ((static_cast<std::int64_t>(n) * channels_ + c) * hw);
        float* dx = grad_input.data() + ((static_cast<std::int64_t>(n) * channels_ + c) * hw);
        for (std::int64_t i = 0; i < hw; ++i) dx[i] = g * is * dy[i];
      }
    }
  }
  return grad_input;
}

std::vector<Parameter*> BatchNorm2d::parameters() { return {&gamma_, &beta_}; }

std::vector<NamedTensor> BatchNorm2d::state() {
  return {{name_ + ".running_mean", &running_mean_}, {name_ + ".running_var", &running_var_}};
}

LayerStats BatchNorm2d::stats(const Shape& input) const {
  LayerStats s;
  s.params = gamma_.numel() + beta_.numel();
  // Two multiply-adds per element (scale + shift counted as one MAC each).
  s.macs = input.channels() * static_cast<std::int64_t>(input.height()) * input.width();
  s.activation_elems =
      input.channels() * static_cast<std::int64_t>(input.height()) * input.width();
  return s;
}

}  // namespace meanet::nn
