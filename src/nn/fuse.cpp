#include "nn/fuse.h"

#include "tensor/workspace.h"

namespace meanet::nn {

namespace {

/// Scale/shift scratch layout in the kFoldedBias slot: [scale | bias].
struct FoldedAffine {
  float* scale = nullptr;
  float* bias = nullptr;
};

FoldedAffine fold_affine(const BatchNorm2d& bn, const float* conv_bias) {
  const int channels = bn.channels();
  float* buffer = ops::Workspace::tls().buffer(ops::Workspace::kFoldedBias,
                                               2 * static_cast<std::size_t>(channels));
  FoldedAffine affine{buffer, buffer + channels};
  bn.fold_scale_shift(affine.scale, affine.bias);
  if (conv_bias != nullptr) {
    for (int c = 0; c < channels; ++c) affine.bias[c] += affine.scale[c] * conv_bias[c];
  }
  return affine;
}

float* fold_weights(const Tensor& weight, int out_channels, const float* scale) {
  const std::int64_t per_channel = weight.numel() / out_channels;
  float* folded = ops::Workspace::tls().buffer(ops::Workspace::kFoldedWeights,
                                               static_cast<std::size_t>(weight.numel()));
  for (int c = 0; c < out_channels; ++c) {
    const float s = scale[c];
    const float* src = weight.data() + c * per_channel;
    float* dst = folded + c * per_channel;
    for (std::int64_t i = 0; i < per_channel; ++i) dst[i] = s * src[i];
  }
  return folded;
}

}  // namespace

Tensor fused_conv_bn_eval(const Conv2d& conv, const BatchNorm2d& bn, const Tensor& input) {
  const FoldedAffine affine =
      fold_affine(bn, conv.has_bias() ? conv.bias().value.data() : nullptr);
  const float* weight = fold_weights(conv.weight().value, conv.out_channels(), affine.scale);
  return conv.forward_with(input, weight, affine.bias);
}

Tensor fused_conv_bn_eval(const DepthwiseConv2d& conv, const BatchNorm2d& bn,
                          const Tensor& input) {
  const FoldedAffine affine = fold_affine(bn, nullptr);
  const float* weight = fold_weights(conv.weight().value, conv.channels(), affine.scale);
  return conv.forward_with(input, weight, affine.bias);
}

}  // namespace meanet::nn
