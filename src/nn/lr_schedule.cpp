#include "nn/lr_schedule.h"

#include <algorithm>

namespace meanet::nn {

MultiStepLR::MultiStepLR(SGD& optimizer, std::vector<int> milestones, float gamma)
    : optimizer_(optimizer), milestones_(std::move(milestones)), gamma_(gamma) {
  std::sort(milestones_.begin(), milestones_.end());
}

void MultiStepLR::step() {
  ++epoch_;
  if (std::binary_search(milestones_.begin(), milestones_.end(), epoch_)) {
    optimizer_.set_learning_rate(optimizer_.learning_rate() * gamma_);
  }
}

}  // namespace meanet::nn
