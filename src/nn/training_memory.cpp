#include "nn/training_memory.h"

#include <stdexcept>

namespace meanet::nn {

MemoryBreakdown estimate_training_memory(const std::vector<MemorySegment>& segments,
                                         int batch_size) {
  if (batch_size <= 0) throw std::invalid_argument("estimate_training_memory: batch_size");
  constexpr std::int64_t kFloatBytes = 4;
  MemoryBreakdown out;
  for (const MemorySegment& seg : segments) {
    if (seg.layer == nullptr) throw std::invalid_argument("estimate_training_memory: null layer");
    const LayerStats stats = seg.layer->stats(seg.input_shape);
    out.parameter_bytes += kFloatBytes * stats.params;
    if (seg.trained) {
      out.gradient_bytes += kFloatBytes * stats.params;
      out.momentum_bytes += kFloatBytes * stats.params;
      out.activation_bytes += kFloatBytes * stats.activation_elems * batch_size;
    }
  }
  return out;
}

}  // namespace meanet::nn
