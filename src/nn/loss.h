// Softmax cross-entropy loss (the paper's training objective, Alg. 1
// step 8).
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace meanet::nn {

struct LossResult {
  /// Mean negative log-likelihood over the batch.
  float loss = 0.0f;
  /// dL/d(logits), already divided by batch size.
  Tensor grad;
  /// Per-instance argmax predictions (convenience for accuracy tracking).
  std::vector<int> predictions;
};

/// logits: [batch, classes]; labels: batch entries in [0, classes).
LossResult softmax_cross_entropy(const Tensor& logits, const std::vector<int>& labels);

}  // namespace meanet::nn
