// Analytic training-memory accounting — the substitute for the paper's
// GPU memory monitor (Fig. 6). See DESIGN.md §1.
//
// Training memory for a batch is modelled as:
//   parameters            : 4 bytes * all params          (always resident)
//   gradients             : 4 bytes * trainable params
//   optimizer momentum    : 4 bytes * trainable params
//   activation caches     : 4 bytes * batch * activation elements of
//                           layers that participate in backprop
// Blockwise optimization (the paper's approach) freezes the main block,
// so its gradients, momentum and activation caches disappear; joint
// optimization keeps everything. This reproduces the structural claim of
// Fig. 6 (60% less for ResNets, 30% less for MobileNets in the paper).
#pragma once

#include <cstdint>
#include <vector>

#include "nn/layer.h"

namespace meanet::nn {

struct MemoryBreakdown {
  std::int64_t parameter_bytes = 0;
  std::int64_t gradient_bytes = 0;
  std::int64_t momentum_bytes = 0;
  std::int64_t activation_bytes = 0;

  std::int64_t total() const {
    return parameter_bytes + gradient_bytes + momentum_bytes + activation_bytes;
  }
  double total_mib() const { return static_cast<double>(total()) / (1024.0 * 1024.0); }
};

/// One segment of a model: a layer pipeline plus whether it is trained.
struct MemorySegment {
  const Layer* layer = nullptr;
  /// Per-instance input shape fed to this segment.
  Shape input_shape;
  /// True if this segment's parameters receive gradients.
  bool trained = true;
};

/// Computes the breakdown for a batch of `batch_size` instances.
/// Frozen segments contribute parameter bytes only (forward pass reuses
/// transient buffers that are not proportional to depth).
MemoryBreakdown estimate_training_memory(const std::vector<MemorySegment>& segments,
                                         int batch_size);

}  // namespace meanet::nn
