#include "nn/parameter.h"

namespace meanet::nn {}
