#include "nn/conv2d.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "tensor/pool.h"
#include "tensor/qgemm.h"
#include "tensor/workspace.h"

namespace meanet::nn {

namespace {

Tensor he_normal(Shape shape, int fan_in, util::Rng& rng) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  return Tensor::normal(std::move(shape), rng, 0.0f, stddev);
}

/// Reference direct convolution (the MEANET_NAIVE_KERNELS path): one
/// guarded dot product per output pixel, no im2col, no blocking.
void naive_conv_forward(const Tensor& input, const ops::ConvGeometry& g, int out_channels,
                        const float* weight, const float* bias, Tensor& output) {
  const int batch = input.shape().batch();
  const int out_h = g.out_height(), out_w = g.out_width();
  for (int n = 0; n < batch; ++n) {
    for (int oc = 0; oc < out_channels; ++oc) {
      const float* w_oc = weight + static_cast<std::int64_t>(oc) * g.patch_size();
      for (int oh = 0; oh < out_h; ++oh) {
        for (int ow = 0; ow < out_w; ++ow) {
          float acc = bias != nullptr ? bias[oc] : 0.0f;
          for (int ic = 0; ic < g.in_channels; ++ic) {
            for (int kh = 0; kh < g.kernel; ++kh) {
              const int ih = oh * g.stride - g.padding + kh;
              if (ih < 0 || ih >= g.in_height) continue;
              for (int kw = 0; kw < g.kernel; ++kw) {
                const int iw = ow * g.stride - g.padding + kw;
                if (iw < 0 || iw >= g.in_width) continue;
                acc += w_oc[(ic * g.kernel + kh) * g.kernel + kw] * input.at(n, ic, ih, iw);
              }
            }
          }
          output.at(n, oc, oh, ow) = acc;
        }
      }
    }
  }
}

/// Guarded single-tap accumulation for the depthwise fringe pixels.
inline float dw_tap_guarded(const float* channel, const float* filt, int kernel, int stride,
                            int padding, int in_h, int in_w, int oh, int ow) {
  float acc = 0.0f;
  for (int kh = 0; kh < kernel; ++kh) {
    const int ih = oh * stride - padding + kh;
    if (ih < 0 || ih >= in_h) continue;
    const float* in_row = channel + static_cast<std::ptrdiff_t>(ih) * in_w;
    for (int kw = 0; kw < kernel; ++kw) {
      const int iw = ow * stride - padding + kw;
      if (iw < 0 || iw >= in_w) continue;
      acc += filt[kh * kernel + kw] * in_row[iw];
    }
  }
  return acc;
}

/// Stride-specialized unrolled 3x3 depthwise channel: interior rows and
/// columns (no bounds checks possible) run the fully unrolled 9-tap
/// kernel on three streaming row pointers; the fringe falls back to the
/// guarded tap. The accumulation order (kh, then kw) matches the naive
/// loop exactly, so the two paths are bit-identical.
template <int kStride>
void dw_channel_3x3(const float* channel, const float* filt, int padding, int in_h, int in_w,
                    int out_h, int out_w, float* out) {
  const float f00 = filt[0], f01 = filt[1], f02 = filt[2];
  const float f10 = filt[3], f11 = filt[4], f12 = filt[5];
  const float f20 = filt[6], f21 = filt[7], f22 = filt[8];
  // Interior output columns: every iw = ow*stride - padding + {0,1,2}
  // lands in [0, in_w). When the image is narrower than the kernel the
  // numerator goes negative and C++ division truncates toward zero, so
  // guard it explicitly — no interior exists then.
  const int ow_lo = std::min(out_w, (padding + kStride - 1) / kStride);
  const int interior_last = in_w - 3 + padding;  // largest ow*stride with all taps in bounds
  const int ow_hi = interior_last < 0
                        ? ow_lo
                        : std::max(ow_lo, std::min(out_w, interior_last / kStride + 1));
  for (int oh = 0; oh < out_h; ++oh) {
    const int ih0 = oh * kStride - padding;
    float* dst = out + static_cast<std::ptrdiff_t>(oh) * out_w;
    if (ih0 < 0 || ih0 + 2 >= in_h) {
      for (int ow = 0; ow < out_w; ++ow) {
        dst[ow] = dw_tap_guarded(channel, filt, 3, kStride, padding, in_h, in_w, oh, ow);
      }
      continue;
    }
    const float* r0 = channel + static_cast<std::ptrdiff_t>(ih0) * in_w;
    const float* r1 = r0 + in_w;
    const float* r2 = r1 + in_w;
    for (int ow = 0; ow < ow_lo; ++ow) {
      dst[ow] = dw_tap_guarded(channel, filt, 3, kStride, padding, in_h, in_w, oh, ow);
    }
    for (int ow = ow_lo; ow < ow_hi; ++ow) {
      const int iw = ow * kStride - padding;
      dst[ow] = f00 * r0[iw] + f01 * r0[iw + 1] + f02 * r0[iw + 2] +
                f10 * r1[iw] + f11 * r1[iw + 1] + f12 * r1[iw + 2] +
                f20 * r2[iw] + f21 * r2[iw + 1] + f22 * r2[iw + 2];
    }
    for (int ow = ow_hi; ow < out_w; ++ow) {
      dst[ow] = dw_tap_guarded(channel, filt, 3, kStride, padding, in_h, in_w, oh, ow);
    }
  }
}

}  // namespace

Conv2d::Conv2d(int in_channels, int out_channels, int kernel, int stride, int padding, bool bias,
               util::Rng& rng, std::string name)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      has_bias_(bias),
      name_(std::move(name)),
      weight_(name_ + ".weight",
              he_normal(Shape{out_channels, in_channels * kernel * kernel},
                        in_channels * kernel * kernel, rng)),
      bias_(name_ + ".bias", Tensor::zeros(Shape{out_channels})) {
  if (in_channels <= 0 || out_channels <= 0 || kernel <= 0 || stride <= 0 || padding < 0) {
    throw std::invalid_argument("Conv2d: invalid geometry");
  }
}

ops::ConvGeometry Conv2d::geometry(const Shape& input) const {
  if (input.channels() != in_channels_) {
    throw std::invalid_argument(name_ + ": expected " + std::to_string(in_channels_) +
                                " input channels, got " + input.to_string());
  }
  ops::ConvGeometry g;
  g.in_channels = in_channels_;
  g.in_height = input.height();
  g.in_width = input.width();
  g.kernel = kernel_;
  g.stride = stride_;
  g.padding = padding_;
  return g;
}

Shape Conv2d::output_shape(const Shape& input) const {
  const ops::ConvGeometry g = geometry(input);
  return Shape{input.batch(), out_channels_, g.out_height(), g.out_width()};
}

Tensor Conv2d::forward_with(const Tensor& input, const float* weight, const float* bias) const {
  const ops::ConvGeometry g = geometry(input.shape());
  const int batch = input.shape().batch();
  const int out_h = g.out_height(), out_w = g.out_width();
  const int out_hw = out_h * out_w;
  const int patch = g.patch_size();
  Tensor output(Shape{batch, out_channels_, out_h, out_w});
  if (ops::naive_kernels()) {
    naive_conv_forward(input, g, out_channels_, weight, bias, output);
    return output;
  }
  ops::Workspace& workspace = ops::Workspace::tls();
  const std::int64_t in_stride = static_cast<std::int64_t>(in_channels_) * g.in_height * g.in_width;
  const std::int64_t out_stride = static_cast<std::int64_t>(out_channels_) * out_hw;
  if (ops::quantized_inference()) {
    // int8 serving path: quantize the (possibly BN-folded) weights per
    // row once per call; per image quantize the input tile per-tensor
    // and expand it with the byte-domain im2col (quantization is
    // pointwise and im2col only replicates pixels / pads zero-point
    // bytes, so the byte matrix is exactly what quantizing a float
    // im2col would give — for C*H*W instead of patch*out_hw quantize
    // work and a quarter of the copy traffic). The bias lands in the
    // requantization epilogue. All scratch is per-thread workspace —
    // this path stays const-safe and cache-free like the float path.
    const int k_padded = ops::quantized_k_padded(patch);
    auto* wq = reinterpret_cast<std::int8_t*>(workspace.byte_buffer(
        ops::Workspace::kQuantWeights, static_cast<std::size_t>(out_channels_) * k_padded));
    float* scales =
        workspace.buffer(ops::Workspace::kQuantScales, static_cast<std::size_t>(out_channels_));
    auto* row_sums = reinterpret_cast<std::int32_t*>(workspace.byte_buffer(
        ops::Workspace::kQuantRowSums,
        static_cast<std::size_t>(out_channels_) * sizeof(std::int32_t)));
    ops::quantize_weight_rows(weight, out_channels_, patch, wq, scales, row_sums);
    if (ops::batched_conv() && batch > 1) {
      // Whole-batch int8: one activation scale for the whole batch
      // (quantize-once-per-batch) and one qgemm per column chunk. The
      // scale is max|x|/127 over all images — chunk-invariant, so the
      // byte-budget chunking below never changes results; it does make
      // the codes (slightly) coarser than per-image scales for images
      // quieter than the batch peak, which is the usual per-tensor
      // batching tradeoff (the parity tests bound it).
      const float a_scale =
          ops::activation_scale(input.data(), static_cast<std::size_t>(batch) * in_stride);
      const std::size_t per_image_bytes = static_cast<std::size_t>(patch) * out_hw;
      const std::size_t budget_images =
          std::max<std::size_t>(1, ops::batched_columns_budget() / std::max<std::size_t>(
                                                                       1, per_image_bytes));
      const int chunk = static_cast<int>(
          std::min<std::size_t>(static_cast<std::size_t>(batch), budget_images));
      std::uint8_t* tile = workspace.byte_buffer(
          ops::Workspace::kQuantTile, static_cast<std::size_t>(chunk) * in_stride);
      std::uint8_t* act =
          workspace.byte_buffer(ops::Workspace::kQuantAct, per_image_bytes * chunk);
      for (int n0 = 0; n0 < batch; n0 += chunk) {
        const int bc = std::min(chunk, batch - n0);
        ops::quantize_activations_u8(input.data() + n0 * in_stride,
                                     static_cast<std::size_t>(bc) * in_stride, a_scale, tile);
        ops::im2col_u8_batched(tile, in_stride, bc, g, act);
        ops::qgemm_u8s8_batched_nchw(out_channels_, bc, out_hw, patch, k_padded, wq, scales,
                                     row_sums, act, a_scale, bias,
                                     output.data() + n0 * out_stride, out_stride, out_hw);
      }
      return output;
    }
    std::uint8_t* tile = workspace.byte_buffer(
        ops::Workspace::kQuantTile, static_cast<std::size_t>(in_stride));
    std::uint8_t* act = workspace.byte_buffer(
        ops::Workspace::kQuantAct, static_cast<std::size_t>(patch) * out_hw);
    for (int n = 0; n < batch; ++n) {
      const float* image = input.data() + n * in_stride;
      const float a_scale = ops::activation_scale(image, static_cast<std::size_t>(in_stride));
      ops::quantize_activations_u8(image, static_cast<std::size_t>(in_stride), a_scale, tile);
      ops::im2col_u8(tile, g, act);
      ops::qgemm_u8s8(out_channels_, out_hw, patch, k_padded, wq, scales, row_sums, act, a_scale,
                      bias, output.data() + n * out_stride, out_hw);
    }
    return output;
  }
  // Whole-batch float path: pack every image's patch columns into one
  // [patch, bc*out_hw] matrix and run ONE striped GEMM per chunk — the
  // A (weight) panel is packed once per NC block of the whole chunk
  // instead of once per image, and on a multi-thread pool the one wide
  // GEMM fans out where the per-image GEMMs sat under the dispatch
  // threshold. The per-element accumulation order inside an image's
  // column block is exactly the per-image GEMM's (k-blocking doesn't
  // depend on the j extent), so this is bit-identical to the loop
  // below at every GemmPool width and every chunk size.
  int chunk = 0;
  if (ops::batched_conv() && batch > 1 && ops::batched_conv_pays(out_hw)) {
    const std::size_t per_image_bytes =
        static_cast<std::size_t>(patch) * out_hw * sizeof(float);
    std::size_t budget = ops::batched_columns_budget();
    if (ops::gemm_threads() <= 1) {
      // Single-thread chunks stay L2-sized: the tile is written
      // (im2col) and immediately re-read (pack_b), so a chunk larger
      // than the cache turns that round trip into DRAM traffic with no
      // fan-out win to pay for it. Multi-thread keeps the configured
      // budget — wide tiles are what feed the stripes.
      budget = std::min(budget, std::size_t{512} << 10);
    }
    chunk = static_cast<int>(std::min<std::size_t>(
        static_cast<std::size_t>(batch),
        std::max<std::size_t>(1, budget / std::max<std::size_t>(1, per_image_bytes))));
  }
  if (chunk > 1) {
    // A chunk of one image would replay the per-image schedule through
    // the strided machinery — all bookkeeping, zero amortization — so
    // when the budget can't fit two images' columns the plain loop
    // below takes over (same results either way).
    float* columns = workspace.buffer(
        ops::Workspace::kIm2col, static_cast<std::size_t>(patch) * chunk * out_hw);
    for (int n0 = 0; n0 < batch; n0 += chunk) {
      const int bc = std::min(chunk, batch - n0);
      ops::im2col_batched(input.data() + n0 * in_stride, in_stride, bc, g, columns);
      ops::gemm_batched_nchw(out_channels_, patch, bc, out_hw, weight, patch, columns,
                             output.data() + n0 * out_stride, out_stride, out_hw);
    }
  } else {
    float* columns = workspace.buffer(
        ops::Workspace::kIm2col, static_cast<std::size_t>(patch) * out_hw);
    for (int n = 0; n < batch; ++n) {
      ops::im2col(input.data() + n * in_stride, g, columns);
      // output[n] = W [out_c, patch] * columns [patch, out_hw]
      ops::gemm(false, false, out_channels_, out_hw, patch, 1.0f, weight, patch, columns, out_hw,
                0.0f, output.data() + n * out_stride, out_hw);
    }
  }
  if (bias != nullptr) {
    // Bias is a post-GEMM epilogue in both branches (prefilling C would
    // change the float addition order and break batched/per-image
    // bit-identity).
    for (int n = 0; n < batch; ++n) {
      for (int oc = 0; oc < out_channels_; ++oc) {
        float* dst = output.data() + n * out_stride + static_cast<std::int64_t>(oc) * out_hw;
        const float b = bias[oc];
        for (int i = 0; i < out_hw; ++i) dst[i] += b;
      }
    }
  }
  return output;
}

Tensor Conv2d::forward(const Tensor& input, Mode mode) {
  Tensor output =
      forward_with(input, weight_.value.data(), has_bias_ ? bias_.value.data() : nullptr);
  if (mode == Mode::kTrain) cached_input_ = input;
  return output;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  if (cached_input_.empty()) throw std::logic_error(name_ + ": backward before forward");
  const ops::ConvGeometry g = geometry(cached_input_.shape());
  const int batch = cached_input_.shape().batch();
  const int out_hw = g.out_height() * g.out_width();
  const int patch = g.patch_size();
  const std::int64_t in_stride = static_cast<std::int64_t>(in_channels_) * g.in_height * g.in_width;
  const std::int64_t out_stride = static_cast<std::int64_t>(out_channels_) * out_hw;

  Tensor grad_input(cached_input_.shape());
  std::vector<float> columns(static_cast<std::size_t>(patch) * out_hw);
  std::vector<float> grad_columns(static_cast<std::size_t>(patch) * out_hw);

  for (int n = 0; n < batch; ++n) {
    const float* gout = grad_output.data() + n * out_stride;
    if (!frozen_) {
      // dW += gout [out_c, out_hw] * columns^T [out_hw, patch]
      ops::im2col(cached_input_.data() + n * in_stride, g, columns.data());
      ops::gemm(false, true, out_channels_, patch, out_hw, 1.0f, gout, out_hw, columns.data(),
                out_hw, 1.0f, weight_.grad.data(), patch);
      if (has_bias_) {
        for (int oc = 0; oc < out_channels_; ++oc) {
          const float* go = gout + static_cast<std::int64_t>(oc) * out_hw;
          float acc = 0.0f;
          for (int i = 0; i < out_hw; ++i) acc += go[i];
          bias_.grad[oc] += acc;
        }
      }
    }
    // grad_columns = W^T [patch, out_c] * gout [out_c, out_hw]
    ops::gemm(true, false, patch, out_hw, out_channels_, 1.0f, weight_.value.data(), patch, gout,
              out_hw, 0.0f, grad_columns.data(), out_hw);
    ops::col2im(grad_columns.data(), g, grad_input.data() + n * in_stride);
  }
  return grad_input;
}

std::vector<Parameter*> Conv2d::parameters() {
  std::vector<Parameter*> out{&weight_};
  if (has_bias_) out.push_back(&bias_);
  return out;
}

LayerStats Conv2d::stats(const Shape& input) const {
  const ops::ConvGeometry g = geometry(input);
  LayerStats s;
  s.params = weight_.numel() + (has_bias_ ? bias_.numel() : 0);
  s.macs = static_cast<std::int64_t>(out_channels_) * g.patch_size() * g.out_height() *
           g.out_width();
  s.activation_elems =
      static_cast<std::int64_t>(in_channels_) * g.in_height * g.in_width;  // cached input
  return s;
}

DepthwiseConv2d::DepthwiseConv2d(int channels, int kernel, int stride, int padding, util::Rng& rng,
                                 std::string name)
    : channels_(channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      name_(std::move(name)),
      weight_(name_ + ".weight", he_normal(Shape{channels, kernel * kernel}, kernel * kernel, rng)) {
  if (channels <= 0 || kernel <= 0 || stride <= 0 || padding < 0) {
    throw std::invalid_argument("DepthwiseConv2d: invalid geometry");
  }
}

Shape DepthwiseConv2d::output_shape(const Shape& input) const {
  if (input.channels() != channels_) {
    throw std::invalid_argument(name_ + ": channel mismatch, got " + input.to_string());
  }
  const int out_h = (input.height() + 2 * padding_ - kernel_) / stride_ + 1;
  const int out_w = (input.width() + 2 * padding_ - kernel_) / stride_ + 1;
  return Shape{input.batch(), channels_, out_h, out_w};
}

Tensor DepthwiseConv2d::forward_with(const Tensor& input, const float* weight,
                                     const float* bias) const {
  const Shape out_shape = output_shape(input.shape());
  const int batch = input.shape().batch();
  const int in_h = input.shape().height(), in_w = input.shape().width();
  const int out_h = out_shape.height(), out_w = out_shape.width();
  const std::int64_t in_hw = static_cast<std::int64_t>(in_h) * in_w;
  const std::int64_t out_hw = static_cast<std::int64_t>(out_h) * out_w;
  // Per-call invariants, hoisted out of the (n, c) loop: the fast-path
  // predicate, the filter size, and the base pointers are identical for
  // every channel of every image.
  const bool fast = !ops::naive_kernels() && kernel_ == 3 && (stride_ == 1 || stride_ == 2);
  const int kk = kernel_ * kernel_;
  Tensor output(out_shape);
  const float* in_base = input.data();
  float* out_base = output.data();
  // One work item per (image, channel) pair — the natural grain: every
  // item reads and writes disjoint channel planes, so any partition of
  // the flat domain is race-free and bit-identical to the serial loop.
  const int jobs = batch * channels_;
  auto run_item = [&](int item) {
    const int c = item % channels_;
    const float* channel = in_base + static_cast<std::int64_t>(item) * in_hw;
    const float* filt = weight + static_cast<std::int64_t>(c) * kk;
    float* out = out_base + static_cast<std::int64_t>(item) * out_hw;
    if (fast) {
      if (stride_ == 1) {
        dw_channel_3x3<1>(channel, filt, padding_, in_h, in_w, out_h, out_w, out);
      } else {
        dw_channel_3x3<2>(channel, filt, padding_, in_h, in_w, out_h, out_w, out);
      }
    } else {
      for (int oh = 0; oh < out_h; ++oh) {
        for (int ow = 0; ow < out_w; ++ow) {
          out[static_cast<std::ptrdiff_t>(oh) * out_w + ow] =
              dw_tap_guarded(channel, filt, kernel_, stride_, padding_, in_h, in_w, oh, ow);
        }
      }
    }
    if (bias != nullptr) {
      const float b = bias[c];
      for (std::int64_t i = 0; i < out_hw; ++i) out[i] += b;
    }
  };
  // Row-striped fan-out on the GemmPool: contiguous fixed-order stripes
  // of the (channels × batch) domain, same min-work gate philosophy as
  // the striped GEMM (threading a sub-millisecond layer just buys
  // wake-up latency).
  int threads = std::min(ops::gemm_threads(), jobs);
  if (static_cast<std::int64_t>(jobs) * out_hw * kk < (1 << 20)) threads = 1;
  if (threads <= 1) {
    for (int item = 0; item < jobs; ++item) run_item(item);
  } else {
    ops::GemmPool::instance().run(threads, [&](int slot) {
      const int begin = static_cast<int>(static_cast<std::int64_t>(jobs) * slot / threads);
      const int end = static_cast<int>(static_cast<std::int64_t>(jobs) * (slot + 1) / threads);
      for (int item = begin; item < end; ++item) run_item(item);
    });
  }
  return output;
}

Tensor DepthwiseConv2d::forward(const Tensor& input, Mode mode) {
  Tensor output = forward_with(input, weight_.value.data(), nullptr);
  if (mode == Mode::kTrain) cached_input_ = input;
  return output;
}

Tensor DepthwiseConv2d::backward(const Tensor& grad_output) {
  if (cached_input_.empty()) throw std::logic_error(name_ + ": backward before forward");
  const Shape& in_shape = cached_input_.shape();
  const int batch = in_shape.batch();
  const int in_h = in_shape.height(), in_w = in_shape.width();
  const int out_h = grad_output.shape().height(), out_w = grad_output.shape().width();
  Tensor grad_input(in_shape);
  for (int n = 0; n < batch; ++n) {
    for (int c = 0; c < channels_; ++c) {
      const float* filt = weight_.value.data() + static_cast<std::int64_t>(c) * kernel_ * kernel_;
      float* gfilt = weight_.grad.data() + static_cast<std::int64_t>(c) * kernel_ * kernel_;
      for (int oh = 0; oh < out_h; ++oh) {
        for (int ow = 0; ow < out_w; ++ow) {
          const float go = grad_output.at(n, c, oh, ow);
          if (go == 0.0f) continue;
          for (int kh = 0; kh < kernel_; ++kh) {
            const int ih = oh * stride_ - padding_ + kh;
            if (ih < 0 || ih >= in_h) continue;
            for (int kw = 0; kw < kernel_; ++kw) {
              const int iw = ow * stride_ - padding_ + kw;
              if (iw < 0 || iw >= in_w) continue;
              if (!frozen_) gfilt[kh * kernel_ + kw] += go * cached_input_.at(n, c, ih, iw);
              grad_input.at(n, c, ih, iw) += go * filt[kh * kernel_ + kw];
            }
          }
        }
      }
    }
  }
  return grad_input;
}

std::vector<Parameter*> DepthwiseConv2d::parameters() { return {&weight_}; }

LayerStats DepthwiseConv2d::stats(const Shape& input) const {
  const Shape out = output_shape(input);
  LayerStats s;
  s.params = weight_.numel();
  s.macs = static_cast<std::int64_t>(channels_) * kernel_ * kernel_ * out.height() * out.width();
  s.activation_elems = static_cast<std::int64_t>(input.channels()) * input.height() * input.width();
  return s;
}

}  // namespace meanet::nn
