#include "nn/linear.h"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.h"

namespace meanet::nn {

namespace {
Tensor xavier_uniform(Shape shape, int fan_in, int fan_out, util::Rng& rng) {
  const float limit = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Tensor::uniform(std::move(shape), rng, -limit, limit);
}
}  // namespace

Linear::Linear(int in_features, int out_features, util::Rng& rng, std::string name)
    : in_features_(in_features),
      out_features_(out_features),
      name_(std::move(name)),
      weight_(name_ + ".weight",
              xavier_uniform(Shape{out_features, in_features}, in_features, out_features, rng)),
      bias_(name_ + ".bias", Tensor::zeros(Shape{out_features})) {
  if (in_features <= 0 || out_features <= 0) {
    throw std::invalid_argument("Linear: invalid dimensions");
  }
}

Shape Linear::output_shape(const Shape& input) const {
  if (input.rank() != 2 || input.dim(1) != in_features_) {
    throw std::invalid_argument(name_ + ": expected [batch, " + std::to_string(in_features_) +
                                "], got " + input.to_string());
  }
  return Shape{input.dim(0), out_features_};
}

Tensor Linear::forward(const Tensor& input, Mode mode) {
  const Shape out_shape = output_shape(input.shape());
  const int batch = input.shape().dim(0);
  Tensor output(out_shape);
  // output = input [batch, in] * W^T [in, out]
  ops::gemm(false, true, batch, out_features_, in_features_, 1.0f, input.data(), in_features_,
            weight_.value.data(), in_features_, 0.0f, output.data(), out_features_);
  for (int n = 0; n < batch; ++n) {
    float* row = output.data() + static_cast<std::int64_t>(n) * out_features_;
    for (int o = 0; o < out_features_; ++o) row[o] += bias_.value[o];
  }
  if (mode == Mode::kTrain) cached_input_ = input;
  return output;
}

Tensor Linear::backward(const Tensor& grad_output) {
  if (cached_input_.empty()) throw std::logic_error(name_ + ": backward before forward");
  const int batch = cached_input_.shape().dim(0);
  if (!frozen_) {
    // dW += gout^T [out, batch] * input [batch, in]
    ops::gemm(true, false, out_features_, in_features_, batch, 1.0f, grad_output.data(),
              out_features_, cached_input_.data(), in_features_, 1.0f, weight_.grad.data(),
              in_features_);
    for (int n = 0; n < batch; ++n) {
      const float* row = grad_output.data() + static_cast<std::int64_t>(n) * out_features_;
      for (int o = 0; o < out_features_; ++o) bias_.grad[o] += row[o];
    }
  }
  // dX = gout [batch, out] * W [out, in]
  Tensor grad_input(cached_input_.shape());
  ops::gemm(false, false, batch, in_features_, out_features_, 1.0f, grad_output.data(),
            out_features_, weight_.value.data(), in_features_, 0.0f, grad_input.data(),
            in_features_);
  return grad_input;
}

std::vector<Parameter*> Linear::parameters() { return {&weight_, &bias_}; }

LayerStats Linear::stats(const Shape& input) const {
  LayerStats s;
  s.params = weight_.numel() + bias_.numel();
  s.macs = static_cast<std::int64_t>(in_features_) * out_features_;
  s.activation_elems = input.dim(1);
  return s;
}

}  // namespace meanet::nn
