// Inverted dropout: active only in train mode; eval is the identity.
#pragma once

#include "nn/layer.h"
#include "util/rng.h"

namespace meanet::nn {

class Dropout : public Layer {
 public:
  /// `probability` is the drop probability in [0, 1).
  Dropout(float probability, util::Rng& rng, std::string name = "dropout");

  Tensor forward(const Tensor& input, Mode mode) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return name_; }
  Shape output_shape(const Shape& input) const override { return input; }
  LayerStats stats(const Shape& input) const override;
  std::int64_t activation_cache_elems() const override { return mask_.numel(); }

  float probability() const { return probability_; }

 private:
  float probability_;
  util::Rng* rng_;
  std::string name_;
  Tensor mask_;  // scaled keep-mask from the last train-mode forward
  bool last_was_train_ = false;
};

}  // namespace meanet::nn
