#include "nn/loss.h"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.h"

namespace meanet::nn {

LossResult softmax_cross_entropy(const Tensor& logits, const std::vector<int>& labels) {
  if (logits.shape().rank() != 2) {
    throw std::invalid_argument("softmax_cross_entropy expects [batch, classes]");
  }
  const int batch = logits.shape().dim(0), classes = logits.shape().dim(1);
  if (static_cast<int>(labels.size()) != batch) {
    throw std::invalid_argument("softmax_cross_entropy: label count mismatch");
  }
  const Tensor log_probs = ops::log_softmax(logits);
  LossResult result;
  result.grad = Tensor(logits.shape());
  result.predictions = ops::row_argmax(logits);
  double total = 0.0;
  const float inv_batch = 1.0f / static_cast<float>(batch);
  for (int n = 0; n < batch; ++n) {
    const int y = labels[static_cast<std::size_t>(n)];
    if (y < 0 || y >= classes) {
      throw std::out_of_range("softmax_cross_entropy: label " + std::to_string(y) +
                              " out of range for " + std::to_string(classes) + " classes");
    }
    const float* lp = log_probs.data() + static_cast<std::int64_t>(n) * classes;
    float* g = result.grad.data() + static_cast<std::int64_t>(n) * classes;
    total -= lp[y];
    for (int c = 0; c < classes; ++c) {
      g[c] = (std::exp(lp[c]) - (c == y ? 1.0f : 0.0f)) * inv_batch;
    }
  }
  result.loss = static_cast<float>(total / batch);
  return result;
}

}  // namespace meanet::nn
