#include "sim/system.h"

#include <algorithm>
#include <stdexcept>

namespace meanet::sim {

SystemReport DistributedSystem::run(const data::Dataset& dataset, int batch_size) {
  if (dataset.size() == 0) throw std::invalid_argument("DistributedSystem::run: empty dataset");
  SystemReport report;
  report.predictions.reserve(static_cast<std::size_t>(dataset.size()));
  report.instance_routes.reserve(static_cast<std::size_t>(dataset.size()));

  const data::ClassDict& dict = edge_.engine().policy().dict();

  std::int64_t correct = 0;
  std::int64_t hard_correct = 0, hard_total = 0;

  for (int start = 0; start < dataset.size(); start += batch_size) {
    const int count = std::min(batch_size, dataset.size() - start);
    const Tensor images = dataset.images.slice_batch(start, count);
    std::vector<core::InstanceDecision> decisions = edge_.engine().infer(images);

    // Ship cloud-routed instances (raw images, paper §III-C) in one
    // batch per edge batch.
    std::vector<int> cloud_rows;
    for (int i = 0; i < count; ++i) {
      if (decisions[static_cast<std::size_t>(i)].route == core::Route::kCloud) {
        cloud_rows.push_back(i);
      }
    }
    if (!cloud_rows.empty() && cloud_ != nullptr) {
      std::vector<int> dims = images.shape().dims();
      dims[0] = static_cast<int>(cloud_rows.size());
      Tensor cloud_batch{Shape(dims)};
      const std::int64_t stride = images.numel() / images.shape().batch();
      for (std::size_t i = 0; i < cloud_rows.size(); ++i) {
        const float* src = images.data() + cloud_rows[i] * stride;
        std::copy(src, src + stride,
                  cloud_batch.data() + static_cast<std::int64_t>(i) * stride);
      }
      const std::vector<int> cloud_preds = cloud_->classify(cloud_batch);
      for (std::size_t i = 0; i < cloud_rows.size(); ++i) {
        decisions[static_cast<std::size_t>(cloud_rows[i])].prediction = cloud_preds[i];
      }
    }

    for (int i = 0; i < count; ++i) {
      const core::InstanceDecision& d = decisions[static_cast<std::size_t>(i)];
      const int label = dataset.labels[static_cast<std::size_t>(start + i)];
      report.predictions.push_back(d.prediction);
      report.instance_routes.push_back(d.route);
      if (d.prediction == label) ++correct;
      if (dict.is_hard(label)) {
        ++hard_total;
        if (d.prediction == label) ++hard_correct;
      }
      switch (d.route) {
        case core::Route::kMainExit:
          ++report.routes.main_exit;
          break;
        case core::Route::kExtensionExit:
          ++report.routes.extension_exit;
          break;
        case core::Route::kCloud:
          ++report.routes.cloud;
          break;
      }
      report.edge_compute_energy_j += edge_.compute_energy_j(d);
      report.communication_energy_j += edge_.comm_energy_j(d);
      report.edge_compute_time_s += edge_.compute_time_s(d);
      report.communication_time_s += edge_.comm_time_s(d);
    }
  }

  report.accuracy = static_cast<double>(correct) / static_cast<double>(dataset.size());
  report.hard_class_accuracy =
      hard_total == 0 ? 0.0 : static_cast<double>(hard_correct) / static_cast<double>(hard_total);
  report.cloud_fraction = report.routes.cloud_fraction();
  return report;
}

}  // namespace meanet::sim
