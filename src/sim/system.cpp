#include "sim/system.h"

#include <stdexcept>
#include <utility>

#include "runtime/session.h"

namespace meanet::sim {

DistributedSystem::DistributedSystem(EdgeNode edge,
                                     std::shared_ptr<runtime::OffloadBackend> backend)
    : edge_(std::move(edge)), backend_(std::move(backend)) {
  if (!backend_) throw std::invalid_argument("DistributedSystem: null backend");
}

DistributedSystem::DistributedSystem(EdgeNode edge, CloudNode* cloud)
    : DistributedSystem(std::move(edge),
                        cloud == nullptr
                            ? std::shared_ptr<runtime::OffloadBackend>(
                                  std::make_shared<runtime::NullBackend>())
                            : std::make_shared<runtime::RawImageBackend>(cloud)) {}

void DistributedSystem::add_replica(core::MEANet& replica) {
  // Deprecated no-op: workers share the edge net (cache-free eval
  // forwards); the caller's net is deliberately ignored.
  (void)replica;
}

SystemReport DistributedSystem::run(const data::Dataset& dataset, int batch_size,
                                    int worker_threads) {
  if (dataset.size() == 0) throw std::invalid_argument("DistributedSystem::run: empty dataset");

  runtime::EngineConfig config;
  config.net = &edge_.engine().net();
  config.dict = &edge_.engine().dict();
  config.policy = edge_.engine().routing_ptr();
  config.backend = backend_;
  config.batch_size = batch_size;
  config.worker_threads = worker_threads;
  config.costs = edge_.costs();
  config.transport = transport_;
  config.route_deadline_s = route_deadline_s_;
  config.route_priority = route_priority_;
  config.starvation_bound = starvation_bound_;
  config.clock = clock_;
  runtime::InferenceSession session(std::move(config));
  const std::vector<runtime::InferenceResult> results = session.run(dataset);

  const data::ClassDict& dict = edge_.engine().dict();
  SystemReport report;
  report.backend_description = backend_->describe();
  report.serving = session.metrics();
  report.predictions.reserve(results.size());
  report.instance_routes.reserve(results.size());
  std::int64_t correct = 0;
  std::int64_t hard_correct = 0, hard_total = 0;
  for (const runtime::InferenceResult& r : results) {
    const int label = dataset.labels[static_cast<std::size_t>(r.id)];
    report.predictions.push_back(r.prediction);
    report.instance_routes.push_back(r.route);
    if (r.prediction == label) ++correct;
    if (dict.is_hard(label)) {
      ++hard_total;
      if (r.prediction == label) ++hard_correct;
    }
    report.routes.add(r.route);
    report.edge_compute_energy_j += r.compute_energy_j;
    report.communication_energy_j += r.comm_energy_j;
    report.edge_compute_time_s += r.compute_time_s;
    report.communication_time_s += r.comm_time_s;
  }

  report.accuracy = static_cast<double>(correct) / static_cast<double>(dataset.size());
  report.hard_class_accuracy =
      hard_total == 0 ? 0.0 : static_cast<double>(hard_correct) / static_cast<double>(hard_total);
  report.cloud_fraction = report.routes.cloud_fraction();
  return report;
}

}  // namespace meanet::sim
