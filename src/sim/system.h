// The full distributed inference system (paper Alg. 2 + Fig. 1):
// EdgeNode runs MEANet routing; complex instances travel to the
// CloudNode; results and costs are aggregated.
#pragma once

#include <optional>
#include <vector>

#include "sim/cloud_node.h"
#include "sim/edge_node.h"

namespace meanet::sim {

struct SystemReport {
  // Accuracy.
  double accuracy = 0.0;
  double hard_class_accuracy = 0.0;
  // Routing.
  core::RouteCounts routes;
  double cloud_fraction = 0.0;  // the paper's beta
  // Edge-side energy (Fig. 8 quantities).
  double edge_compute_energy_j = 0.0;
  double communication_energy_j = 0.0;
  double edge_energy_j() const { return edge_compute_energy_j + communication_energy_j; }
  // Latency (seconds, summed over all instances).
  double edge_compute_time_s = 0.0;
  double communication_time_s = 0.0;
  // Per-instance outcome (prediction in global label space).
  std::vector<int> predictions;
  std::vector<core::Route> instance_routes;
};

class DistributedSystem {
 public:
  /// `cloud` may be null: the edge then answers every instance itself
  /// (its cloud-marked instances fall back to the main-exit prediction).
  DistributedSystem(EdgeNode edge, CloudNode* cloud) : edge_(std::move(edge)), cloud_(cloud) {}

  /// Runs Alg. 2 over the dataset and aggregates accuracy / energy.
  SystemReport run(const data::Dataset& dataset, int batch_size = 64);

  EdgeNode& edge() { return edge_; }

 private:
  EdgeNode edge_;
  CloudNode* cloud_;
};

}  // namespace meanet::sim
