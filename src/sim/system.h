// The full distributed inference system (paper Alg. 2 + Fig. 1),
// now a thin aggregation shim over runtime::InferenceSession: EdgeNode
// supplies the model + routing + cost pricing, any OffloadBackend
// completes cloud-routed instances, and run() folds the per-instance
// results into the report the benches consume.
#pragma once

#include <array>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "runtime/metrics.h"
#include "runtime/offload_backend.h"
#include "runtime/transport.h"
#include "sim/clock.h"
#include "sim/cloud_node.h"
#include "sim/edge_node.h"

namespace meanet::sim {

struct SystemReport {
  // Accuracy.
  double accuracy = 0.0;
  double hard_class_accuracy = 0.0;
  // Routing.
  core::RouteCounts routes;
  double cloud_fraction = 0.0;  // the paper's beta
  // Edge-side energy (Fig. 8 quantities).
  double edge_compute_energy_j = 0.0;
  double communication_energy_j = 0.0;
  double edge_energy_j() const { return edge_compute_energy_j + communication_energy_j; }
  // Latency (seconds, summed over all instances).
  double edge_compute_time_s = 0.0;
  double communication_time_s = 0.0;
  // Per-instance outcome (prediction in global label space).
  std::vector<int> predictions;
  std::vector<core::Route> instance_routes;
  /// Which offload backend served the cloud route.
  std::string backend_description;
  /// Serving counters of the session that produced this report (queue
  /// depth high-water mark, per-route latency percentiles, offload
  /// timeouts, cache hits).
  runtime::SessionMetrics serving;
};

class DistributedSystem {
 public:
  /// Offload through any backend (runtime-selectable mode).
  DistributedSystem(EdgeNode edge, std::shared_ptr<runtime::OffloadBackend> backend);

  /// Raw-image offload; `cloud` may be null: the edge then answers every
  /// instance itself (its cloud-marked instances fall back to the
  /// main-exit prediction).
  DistributedSystem(EdgeNode edge, CloudNode* cloud);

  /// DEPRECATED no-op, kept for source compatibility: run()'s worker
  /// threads share the edge's net directly now that eval-mode forwards
  /// are cache-free — no replica registration is needed (or used).
  void add_replica(core::MEANet& replica);

  /// Times every offload payload over a simulated WiFi link (upload
  /// time from payload bytes, plus base RTT and seeded jitter) instead
  /// of the ideal instant link.
  void set_transport(runtime::TransportConfig transport) { transport_ = transport; }

  /// Per-route completion deadline in seconds from submission (see
  /// runtime::EngineConfig::route_deadline_s); a cloud-routed instance
  /// past its deadline keeps its edge prediction.
  void set_route_deadline_s(core::Route route, double seconds) {
    route_deadline_s_[static_cast<std::size_t>(route)] = seconds;
  }

  /// Per-route scheduling priority (see
  /// runtime::EngineConfig::route_priority): pending work and uploads
  /// are served highest priority first, earliest deadline next, arrival
  /// order last.
  void set_route_priority(core::Route route, int priority) {
    route_priority_[static_cast<std::size_t>(route)] = priority;
  }

  /// Aging bound of the priority scheduler (see
  /// runtime::EngineConfig::starvation_bound); 0 disables aging.
  void set_starvation_bound(int bound) { starvation_bound_ = bound; }

  /// Time source of the serving session run() builds (see
  /// runtime::EngineConfig::clock). Null (the default) = wall time;
  /// inject a sim::VirtualClock to run the scenario in virtual time.
  void set_clock(std::shared_ptr<Clock> clock) { clock_ = std::move(clock); }

  /// Runs Alg. 2 over the dataset and aggregates accuracy / energy;
  /// all `worker_threads` serve on the edge's one net.
  SystemReport run(const data::Dataset& dataset, int batch_size = 64, int worker_threads = 1);

  EdgeNode& edge() { return edge_; }
  const runtime::OffloadBackend& backend() const { return *backend_; }
  /// DEPRECATED: always 0 — replicas are gone (see add_replica).
  int replica_count() const { return 0; }

 private:
  EdgeNode edge_;
  std::shared_ptr<runtime::OffloadBackend> backend_;
  std::optional<runtime::TransportConfig> transport_;
  std::array<double, core::kNumRoutes> route_deadline_s_{
      std::numeric_limits<double>::infinity(), std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::infinity()};
  std::array<int, core::kNumRoutes> route_priority_{0, 0, 0};
  int starvation_bound_ = 64;
  std::shared_ptr<Clock> clock_;
};

}  // namespace meanet::sim
