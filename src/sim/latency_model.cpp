#include "sim/latency_model.h"

#include <algorithm>
#include <stdexcept>

namespace meanet::sim {

double instance_latency_s(const core::InstanceDecision& decision, const LatencyParams& params) {
  double latency = params.edge_device.compute_time_s(params.main_macs);
  switch (decision.route) {
    case core::Route::kMainExit:
      break;
    case core::Route::kExtensionExit:
      latency += params.edge_device.compute_time_s(params.extension_macs);
      break;
    case core::Route::kCloud: {
      latency += params.wifi.upload_time_s(params.upload_bytes);
      if (params.cloud_macs_per_second <= 0.0) {
        throw std::logic_error("instance_latency_s: non-positive cloud throughput");
      }
      latency += static_cast<double>(params.cloud_macs) / params.cloud_macs_per_second;
      latency += params.rtt_s;
      break;
    }
  }
  return latency;
}

LatencyStats analyze_latency(const std::vector<core::InstanceDecision>& decisions,
                             const LatencyParams& params) {
  LatencyStats stats;
  if (decisions.empty()) return stats;
  std::vector<double> latencies;
  latencies.reserve(decisions.size());
  std::int64_t edge_count = 0;
  double total = 0.0;
  for (const core::InstanceDecision& d : decisions) {
    const double l = instance_latency_s(d, params);
    latencies.push_back(l);
    total += l;
    if (d.route != core::Route::kCloud) ++edge_count;
  }
  std::sort(latencies.begin(), latencies.end());
  auto percentile = [&](double p) {
    const auto idx = static_cast<std::size_t>(p * static_cast<double>(latencies.size() - 1));
    return latencies[idx];
  };
  stats.mean_s = total / static_cast<double>(latencies.size());
  stats.p50_s = percentile(0.50);
  stats.p95_s = percentile(0.95);
  stats.p99_s = percentile(0.99);
  stats.max_s = latencies.back();
  stats.edge_fraction =
      static_cast<double>(edge_count) / static_cast<double>(decisions.size());
  return stats;
}

}  // namespace meanet::sim
