// Edge side of the distributed system: owns an MEANet + inference
// engine and the device/WiFi cost models that price its work.
#pragma once

#include <memory>

#include "core/edge_inference.h"
#include "core/meanet.h"
#include "data/class_dict.h"
#include "sim/device_model.h"
#include "sim/wifi_model.h"

namespace meanet::sim {

/// The edge's pricing model. The per-route cost math lives here so that
/// both EdgeNode and runtime::InferenceSession charge identically.
struct EdgeNodeCosts {
  DeviceModel device;
  WifiModel wifi;
  /// Bytes uploaded per offloaded instance (raw image size by default).
  std::int64_t upload_bytes_per_instance = 0;
  /// Per-instance multiply-adds of the main path (trunk + exit 1).
  std::int64_t main_macs = 0;
  /// Additional multiply-adds when the extension path runs.
  std::int64_t extension_macs = 0;

  /// MACs an instance pays on the given route: every instance pays the
  /// main path; only extension-exit instances pay the adaptive +
  /// extension path on top (cloud-routed instances stop at the main
  /// block per Alg. 2).
  std::int64_t route_macs(core::Route route) const;

  /// Per-instance compute energy (J) for a route.
  double compute_energy_j(core::Route route) const;
  /// Per-instance compute latency (s) for a route.
  double compute_time_s(core::Route route) const;
  /// Upload energy (J) if the instance goes to the cloud, else 0.
  double comm_energy_j(core::Route route) const;
  double comm_time_s(core::Route route) const;
};

class EdgeNode {
 public:
  EdgeNode(core::MEANet& net, const data::ClassDict& dict, core::PolicyConfig policy,
           EdgeNodeCosts costs)
      : engine_(net, dict, policy), costs_(costs) {}

  /// Pluggable-routing construction.
  EdgeNode(core::MEANet& net, const data::ClassDict& dict,
           std::shared_ptr<const core::RoutingPolicy> policy, EdgeNodeCosts costs)
      : engine_(net, dict, std::move(policy)), costs_(costs) {}

  core::EdgeInferenceEngine& engine() { return engine_; }
  const EdgeNodeCosts& costs() const { return costs_; }

  /// Per-instance compute energy (J) for a decision's route.
  double compute_energy_j(const core::InstanceDecision& decision) const {
    return costs_.compute_energy_j(decision.route);
  }
  /// Per-instance compute latency (s) for a decision's route.
  double compute_time_s(const core::InstanceDecision& decision) const {
    return costs_.compute_time_s(decision.route);
  }
  /// Upload energy (J) if the instance goes to the cloud, else 0.
  double comm_energy_j(const core::InstanceDecision& decision) const {
    return costs_.comm_energy_j(decision.route);
  }
  double comm_time_s(const core::InstanceDecision& decision) const {
    return costs_.comm_time_s(decision.route);
  }

 private:
  core::EdgeInferenceEngine engine_;
  EdgeNodeCosts costs_;
};

}  // namespace meanet::sim
