// Edge side of the distributed system: owns an MEANet + inference
// engine and the device/WiFi cost models that price its work.
#pragma once

#include <memory>

#include "core/edge_inference.h"
#include "core/meanet.h"
#include "data/class_dict.h"
#include "sim/device_model.h"
#include "sim/wifi_model.h"

namespace meanet::sim {

struct EdgeNodeCosts {
  DeviceModel device;
  WifiModel wifi;
  /// Bytes uploaded per offloaded instance (raw image size by default).
  std::int64_t upload_bytes_per_instance = 0;
  /// Per-instance multiply-adds of the main path (trunk + exit 1).
  std::int64_t main_macs = 0;
  /// Additional multiply-adds when the extension path runs.
  std::int64_t extension_macs = 0;
};

class EdgeNode {
 public:
  EdgeNode(core::MEANet& net, const data::ClassDict& dict, core::PolicyConfig policy,
           EdgeNodeCosts costs)
      : engine_(net, dict, policy), costs_(costs) {}

  core::EdgeInferenceEngine& engine() { return engine_; }
  const EdgeNodeCosts& costs() const { return costs_; }

  /// Per-instance compute energy (J) for a decision's route.
  double compute_energy_j(const core::InstanceDecision& decision) const;
  /// Per-instance compute latency (s) for a decision's route.
  double compute_time_s(const core::InstanceDecision& decision) const;
  /// Upload energy (J) if the instance goes to the cloud, else 0.
  double comm_energy_j(const core::InstanceDecision& decision) const;
  double comm_time_s(const core::InstanceDecision& decision) const;

 private:
  std::int64_t route_macs(core::Route route) const;
  core::EdgeInferenceEngine engine_;
  EdgeNodeCosts costs_;
};

}  // namespace meanet::sim
