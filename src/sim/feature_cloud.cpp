#include "sim/feature_cloud.h"

#include <stdexcept>

#include "nn/activations.h"
#include "nn/batchnorm2d.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "nn/residual_block.h"
#include "tensor/ops.h"

namespace meanet::sim {

FeatureCloudNode::FeatureCloudNode(const Shape& feature_shape, int num_classes, util::Rng& rng)
    : head_("feature_cloud") {
  if (feature_shape.rank() != 4) {
    throw std::invalid_argument("FeatureCloudNode: feature shape must be NCHW");
  }
  const int c = feature_shape.channels();
  // A deeper continuation than the edge's own extension: two residual
  // stages at 2x and 4x the feature width.
  head_.emplace<nn::ResidualBlock>(c, 2 * c, 1, rng, "fcloud.block1");
  head_.emplace<nn::ResidualBlock>(2 * c, 2 * c, 1, rng, "fcloud.block2");
  head_.emplace<nn::ResidualBlock>(2 * c, 4 * c, 1, rng, "fcloud.block3");
  head_.emplace<nn::GlobalAvgPool>("fcloud.avgpool");
  head_.emplace<nn::Linear>(4 * c, num_classes, rng, "fcloud.fc");
}

data::Dataset extract_features(core::MEANet& edge, const data::Dataset& dataset,
                               int batch_size) {
  if (dataset.size() == 0) throw std::invalid_argument("extract_features: empty dataset");
  data::Dataset features;
  features.num_classes = dataset.num_classes;
  features.labels = dataset.labels;
  const Shape per_instance = edge.main_trunk().output_shape(dataset.instance_shape());
  features.images = Tensor(Shape{dataset.size(), per_instance.channels(), per_instance.height(),
                                 per_instance.width()});
  const std::int64_t stride = features.images.numel() / dataset.size();
  for (int start = 0; start < dataset.size(); start += batch_size) {
    const int count = std::min(batch_size, dataset.size() - start);
    const Tensor batch = dataset.images.slice_batch(start, count);
    const Tensor f = edge.main_trunk().forward(batch, nn::Mode::kEval);
    std::copy(f.data(), f.data() + count * stride,
              features.images.data() + static_cast<std::int64_t>(start) * stride);
  }
  return features;
}

core::TrainCurve FeatureCloudNode::train(core::MEANet& edge, const data::Dataset& train,
                                         const core::TrainOptions& options, util::Rng& rng) {
  const data::Dataset features = extract_features(edge, train);
  return core::train_classifier(head_, features, options, rng);
}

std::vector<int> FeatureCloudNode::classify_features(const Tensor& features) {
  const Tensor logits = head_.forward(features, nn::Mode::kEval);
  return ops::row_argmax(logits);
}

std::int64_t FeatureCloudNode::feature_bytes(const Shape& feature_shape) {
  return 4 * feature_shape.numel() / feature_shape.dim(0);
}

}  // namespace meanet::sim
