// A shared radio cell arbitrating uplink AND downlink airtime between
// every station attached to it (paper §IV-B generalized to multiple
// devices under one access point).
//
// PR 3 gave each InferenceSession a private SimulatedLink: uploads paid
// WiFi time but replies were free and nobody contended for the medium.
// SharedCell closes both gaps. Several sessions attach to one cell;
// every transfer — an offload payload going up, its answer coming down —
// is charged airtime at the cell's *fair share* throughput (the full
// rate divided by the number of attached stations, the same congestion
// model WifiModel::congested exposes for a single link), plus the base
// round-trip floor and a seeded jitter draw.
//
// Determinism: a transfer's delay is a pure function of
// (cell seed, station id, transfer key, byte size, direction, attached
// stations) — the jitter comes from hashing, not from a shared RNG
// stream — so concurrent sessions cannot perturb each other's timings
// through call interleaving. Two runs with the same seed, the same
// attach order, and the same per-station transfer keys see bit-identical
// delays, at any worker count. Station 0 with the cell to itself
// reproduces a standalone SimulatedLink with the same parameters
// exactly (runtime/transport.cpp builds a private single-station cell
// from every plain TransportConfig, so the parity is structural).
//
// Airtime accounting: every charged transfer adds its duration (minus
// the base-latency floor, which models propagation + cloud compute, not
// medium occupancy) to busy_seconds(). The charge lands when the delay
// is computed — i.e. at reservation — so a transfer the sender later
// abandons mid-flight still counts in full: busy_seconds() measures
// *offered* airtime load, not carried traffic (crediting the unused
// remainder back would need the abandonment's wall-clock time and make
// the figure nondeterministic). utilization() divides by the
// wall-clock age of the cell: 1.0 means one full second of airtime was
// charged per second of wall time; values above 1.0 mean the attached
// stations together asked for more airtime than the medium has — a
// saturated cell.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>

#include "sim/wifi_model.h"

namespace meanet::sim {

struct SharedCellConfig {
  /// Uplink throughput/power model of the whole cell; each attached
  /// station transfers at throughput / attached_stations.
  WifiModel uplink;
  /// Downlink model (answers coming back). Defaults to the same cell
  /// geometry as the uplink; responses are small, so with default
  /// payloads the added delay is microseconds — but it is no longer
  /// free, and it scales with the response's byte size.
  WifiModel downlink;
  /// Fixed round-trip floor (propagation + cloud compute), seconds,
  /// charged per transfer but not counted as airtime.
  double base_latency_s = 0.0;
  /// Width of the uniform jitter added per transfer, seconds. 0 = none.
  double jitter_s = 0.0;
  /// Seed of the jitter hash. Station 0's draws with this seed equal a
  /// standalone SimulatedLink's draws with the same seed.
  std::uint64_t seed = 0x1f1ULL;
};

class SharedCell {
 public:
  explicit SharedCell(SharedCellConfig config);

  /// Registers a station (one InferenceSession's link) and returns its
  /// id. Ids count up from 0 in attach order and are never reused, so a
  /// deterministic attach order gives deterministic jitter streams.
  int attach();
  /// Deregisters a station; later transfers of the remaining stations
  /// see the smaller contention factor.
  void detach(int station);
  /// Stations currently sharing the cell (the contention factor).
  int stations() const;

  /// Seconds station `station` occupies the uplink shipping `bytes`
  /// (fair-share transfer time + base RTT + one jitter draw keyed by
  /// `key`). Deterministic: see the header comment.
  double uplink_delay_s(int station, std::uint64_t key, std::int64_t bytes);
  /// Same for a response of `bytes` coming down to `station`. The jitter
  /// draw is salted by direction, so an uplink and a downlink transfer
  /// with the same key do not share one.
  double downlink_delay_s(int station, std::uint64_t key, std::int64_t bytes);

  /// Total airtime charged so far (upload + downlink transfer time and
  /// jitter, excluding the base-latency floor), seconds.
  double busy_seconds() const;
  /// busy_seconds() per wall-clock second since the cell was created.
  /// Above ~1.0 the stations jointly demand more airtime than one
  /// medium has: the cell is saturated.
  double utilization() const;

  const SharedCellConfig& config() const { return config_; }

 private:
  double delay_s(const WifiModel& model, int station, std::uint64_t key, std::int64_t bytes,
                 std::uint64_t direction_salt);

  SharedCellConfig config_;
  mutable std::mutex mutex_;
  int next_station_ = 0;   // guarded by mutex_
  int attached_ = 0;       // guarded by mutex_
  double busy_s_ = 0.0;    // guarded by mutex_
  std::chrono::steady_clock::time_point created_;
};

namespace detail {
/// Uniform double in [0, width) from a splitmix64 hash of (seed, key):
/// the deterministic jitter primitive shared by SharedCell and the
/// standalone SimulatedLink.
double hashed_jitter_s(std::uint64_t seed, std::uint64_t key, double width);
}  // namespace detail

}  // namespace meanet::sim
