// A shared radio cell arbitrating uplink AND downlink airtime between
// every station attached to it (paper §IV-B generalized to multiple
// devices under one access point).
//
// PR 3 gave each InferenceSession a private SimulatedLink: uploads paid
// WiFi time but replies were free and nobody contended for the medium.
// SharedCell closes both gaps. Several sessions attach to one cell;
// every transfer — an offload payload going up, its answer coming down —
// costs airtime, plus the base round-trip floor and a seeded jitter
// draw. Two sharing models:
//
//  * Static share (default): a transfer is charged the full rate
//    divided by the number of *attached* stations (the congestion
//    model WifiModel::congested exposes for a single link), computed
//    once at reservation. Delays are a pure function of (cell seed,
//    station id, transfer key, byte size, direction, attached
//    stations) — the jitter comes from hashing, not a shared RNG
//    stream — so same-seed runs see bit-identical delays at any worker
//    count, and station 0 alone on a cell reproduces a standalone
//    SimulatedLink exactly (runtime/transport.cpp builds a private
//    single-station cell from every plain TransportConfig, so the
//    parity is structural).
//
//  * Activity-dependent share (SharedCellConfig::
//    activity_dependent_sharing, the model PR 5 deferred): each
//    direction is a processor-sharing lane over the transfers
//    *instantaneously in flight* — a transfer alone on the lane moves
//    at the full rate no matter how many idle stations are attached,
//    and N concurrent transfers each progress at rate/N, re-settled on
//    every join/leave. Durations then depend on the overlap
//    trajectory: deterministic under a VirtualClock-driven seeded
//    scenario, approximate under WallClock. Jitter and the base floor
//    are appended after the shared phase, drawn from the same hash as
//    the static model.
//
// Timing: the cell blocks transferring callers on its clock
// (SharedCellConfig::clock; null = the process WallClock) for the
// transfer's duration — scheduled events under a VirtualClock, real
// waits under WallClock — and a `cancel` predicate cuts an occupancy
// short (the sender abandoned mid-flight). Cancellation signals from
// outside the clock's wait/notify discipline must call poke().
//
// Airtime accounting: every static-share transfer adds its duration
// (minus the base-latency floor, which models propagation + cloud
// compute, not medium occupancy) to busy_seconds() at reservation —
// *offered* airtime, an abandoned transfer still counts in full.
// Activity-dependent transfers charge the lane time they actually
// occupied (plus jitter on completion) — carried airtime. Either way
// utilization() divides by the cell's age on its own clock: above ~1.0
// the attached stations jointly demand more airtime than the medium
// has — a saturated cell.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>

#include "diag/provider.h"
#include "diag/registry.h"
#include "sim/clock.h"
#include "sim/wifi_model.h"

namespace meanet::sim {

struct SharedCellConfig {
  /// Uplink throughput/power model of the whole cell; each attached
  /// station transfers at throughput / attached_stations (static
  /// share) or throughput / concurrent transfers (activity-dependent).
  WifiModel uplink;
  /// Downlink model (answers coming back). Defaults to the same cell
  /// geometry as the uplink; responses are small, so with default
  /// payloads the added delay is microseconds — but it is no longer
  /// free, and it scales with the response's byte size.
  WifiModel downlink;
  /// Fixed round-trip floor (propagation + cloud compute), seconds,
  /// charged per transfer but not counted as airtime.
  double base_latency_s = 0.0;
  /// Width of the uniform jitter added per transfer, seconds. 0 = none.
  double jitter_s = 0.0;
  /// Seed of the jitter hash. Station 0's draws with this seed equal a
  /// standalone SimulatedLink's draws with the same seed.
  std::uint64_t seed = 0x1f1ULL;
  /// Fair-share over *instantaneously transmitting* stations instead of
  /// the static attached-station split — see the header comment. Off by
  /// default: the static model stays the oracle the existing suites
  /// pin down.
  bool activity_dependent_sharing = false;
  /// Clock the cell times its transfers and utilization window on; null
  /// = the process WallClock. Every session transferring on the cell
  /// must share this clock (SimulatedLink enforces it by pointer).
  std::shared_ptr<Clock> clock;
};

/// One completed (or cut-short) timed occupancy of the cell.
struct TransferOutcome {
  /// The transfer's nominal simulated delay, seconds: share phase +
  /// jitter + base floor. For a cancelled activity-dependent transfer
  /// this is the time actually occupied before the abandonment.
  double delay_s = 0.0;
  /// True when `cancel` fired before the transfer finished.
  bool cancelled = false;
};

class SharedCell : public diag::DiagnosticProvider {
 public:
  explicit SharedCell(SharedCellConfig config);

  /// Registers a station (one InferenceSession's link) and returns its
  /// id. Ids count up from 0 in attach order and are never reused, so a
  /// deterministic attach order gives deterministic jitter streams.
  int attach();
  /// Deregisters a station; later transfers of the remaining stations
  /// see the smaller contention factor.
  void detach(int station);
  /// Stations currently sharing the cell (the static contention
  /// factor).
  int stations() const;

  /// Seconds station `station` occupies the uplink shipping `bytes`
  /// under the *static* model (fair-share transfer time + base RTT +
  /// one jitter draw keyed by `key`), charged at reservation.
  /// Deterministic: see the header comment.
  double uplink_delay_s(int station, std::uint64_t key, std::int64_t bytes);
  /// Same for a response of `bytes` coming down to `station`. The jitter
  /// draw is salted by direction, so an uplink and a downlink transfer
  /// with the same key do not share one.
  double downlink_delay_s(int station, std::uint64_t key, std::int64_t bytes);

  /// Performs a full timed uplink transfer on the cell's clock: blocks
  /// the caller for the transfer's simulated duration (static share,
  /// or the processor-sharing lane when activity_dependent_sharing is
  /// set). `cancel` — checked at every wake — cuts the occupancy
  /// short; pair an out-of-band cancellation signal with poke().
  TransferOutcome uplink_transfer(int station, std::uint64_t key, std::int64_t bytes,
                                  const std::function<bool()>& cancel = nullptr);
  /// The downlink counterpart.
  TransferOutcome downlink_transfer(int station, std::uint64_t key, std::int64_t bytes,
                                    const std::function<bool()>& cancel = nullptr);

  /// Wakes every in-flight transfer to re-check its cancel predicate
  /// (for cancellation state guarded by mutexes the cell cannot see).
  void poke();

  /// Total airtime charged so far (upload + downlink transfer time and
  /// jitter, excluding the base-latency floor), seconds.
  double busy_seconds() const;
  /// busy_seconds() per second of the cell's age on its own clock.
  /// Above ~1.0 the stations jointly demand more airtime than one
  /// medium has: the cell is saturated. 0 when no time has elapsed yet
  /// (a cell created and polled within one virtual instant).
  double utilization() const;

  const SharedCellConfig& config() const { return config_; }
  /// The resolved clock every attached session must share.
  const std::shared_ptr<Clock>& clock() const { return clock_; }

  // DiagnosticProvider: cells self-register as "cell/N" (N counts up
  // per process in construction order).
  std::string diag_name() const override { return diag_name_; }
  diag::Value diag_snapshot() const override;

 private:
  /// One direction's processor-sharing state: in-flight transfers and
  /// the solo-seconds each still needs. Guarded by transfer_mutex_.
  struct Lane {
    std::map<std::uint64_t, double> remaining_s;  // flow id -> solo-seconds left
    Clock::TimePoint last_settle{};
    std::uint64_t next_flow = 0;
    std::uint64_t epoch = 0;  // bumped on every join/leave
  };

  double delay_s(const WifiModel& model, int station, std::uint64_t key, std::int64_t bytes,
                 std::uint64_t direction_salt);
  /// The per-transfer jitter draw both sharing models use.
  double jitter_for(int station, std::uint64_t key, std::uint64_t direction_salt) const;
  TransferOutcome transfer(Lane& lane, const WifiModel& model, int station, std::uint64_t key,
                           std::int64_t bytes, std::uint64_t direction_salt,
                           const std::function<bool()>& cancel);
  /// Occupies the caller for `delay_s` on the clock; false when cancel
  /// fired first. Takes transfer_mutex_.
  bool hold(double delay_s, const std::function<bool()>& cancel);
  /// Accrues lane progress up to `now` (each in-flight transfer
  /// advanced by dt / concurrency). Caller holds transfer_mutex_.
  static void settle_lane(Lane& lane, Clock::TimePoint now);

  SharedCellConfig config_;
  std::shared_ptr<Clock> clock_;
  mutable std::mutex mutex_;
  int next_station_ = 0;   // guarded by mutex_
  int attached_ = 0;       // guarded by mutex_
  double busy_s_ = 0.0;    // guarded by mutex_
  Clock::TimePoint created_;

  // Blocking-transfer state. transfer_mutex_ may acquire mutex_ (to
  // charge airtime) but never the reverse.
  std::mutex transfer_mutex_;
  std::condition_variable transfer_cv_;
  std::uint64_t poke_epoch_ = 0;  // guarded by transfer_mutex_
  Lane uplink_lane_, downlink_lane_;

  // Diagnostics. The registration is the LAST member, so it is torn
  // down FIRST: an in-flight registry snapshot blocks the unregister
  // until it finishes, and only then does the rest of the cell die.
  std::string diag_name_;
  diag::ScopedRegistration diag_registration_;
};

namespace detail {
/// Uniform double in [0, width) from a splitmix64 hash of (seed, key):
/// the deterministic jitter primitive shared by SharedCell and the
/// standalone SimulatedLink.
double hashed_jitter_s(std::uint64_t seed, std::uint64_t key, double width);
}  // namespace detail

}  // namespace meanet::sim
