// WiFi upload power/energy model (paper §IV-B, after [40], [48]):
//   P_upload = 283.17 mW/Mbps * throughput + 132.86 mW
// Upload time is payload bits / throughput; energy = power * time.
#pragma once

#include <cstdint>

namespace meanet::sim {

struct WifiModel {
  /// Average upload throughput; the paper assumes 18.88 Mb/s.
  double throughput_mbps = 18.88;
  /// Slope of the power model in mW per Mbps.
  double mw_per_mbps = 283.17;
  /// Constant term in mW.
  double base_mw = 132.86;

  /// Upload power in watts at the configured throughput.
  double upload_power_w() const {
    return (mw_per_mbps * throughput_mbps + base_mw) / 1000.0;
  }

  /// Seconds to upload `payload_bytes`.
  double upload_time_s(std::int64_t payload_bytes) const;

  /// Copy of this model with throughput divided by `contention` (>= 1):
  /// a congested cell shared fairly by that many uploading stations.
  WifiModel congested(double contention) const;

  /// Joules to upload `payload_bytes`.
  double upload_energy_j(std::int64_t payload_bytes) const {
    return upload_power_w() * upload_time_s(payload_bytes);
  }
};

}  // namespace meanet::sim
