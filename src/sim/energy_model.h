// Table I of the paper: analytic cost of inference under the four
// deployment modes (edge-only, cloud-only, edge-cloud with raw data,
// edge-cloud with features).
//
// Symbols (paper Table I):
//   N      total instances
//   x      edge cost per instance (energy J or latency s)
//   x_cl   cloud compute cost per instance
//   x_cu   communication cost per instance when sending raw data
//   x'_cu  communication cost per instance when sending features
//   beta   fraction of instances sent to the cloud
//   q      fraction of layers kept at the edge (feature-split mode)
#pragma once

#include <string>

namespace meanet::sim {

/// Per-instance cost constants (joules or seconds — the formulas are
/// unit-agnostic, exactly as in the paper).
struct CostParams {
  double edge_compute = 0.0;          // x
  double cloud_compute = 0.0;         // x_cl
  double comm_raw = 0.0;              // x_cu
  double comm_features = 0.0;         // x'_cu
};

struct CostBreakdown {
  double edge_compute = 0.0;
  double cloud_compute = 0.0;
  double communication = 0.0;
  double total() const { return edge_compute + cloud_compute + communication; }
  /// Cost borne by the edge device (Fig. 8: edge compute + comm).
  double edge_total() const { return edge_compute + communication; }
};

class EnergyModel {
 public:
  explicit EnergyModel(CostParams params) : params_(params) {}

  /// Row 1 of Table I: everything at the edge.
  CostBreakdown edge_only(std::int64_t n) const;

  /// Row 2: everything at the cloud (raw data uploaded for all N).
  CostBreakdown cloud_only(std::int64_t n) const;

  /// Row 3: edge-cloud, raw data for the beta fraction.
  CostBreakdown edge_cloud_raw(std::int64_t n, double beta) const;

  /// Row 4: edge-cloud, features for the beta fraction; q = fraction of
  /// layers at the edge (paper: typically in [1/3, 2/3]).
  CostBreakdown edge_cloud_features(std::int64_t n, double beta, double q) const;

  const CostParams& params() const { return params_; }

 private:
  void check_beta(double beta) const;
  CostParams params_;
};

}  // namespace meanet::sim
