// Edge compute device model (the substitute for the paper's GPU power
// measurements, Table VII): per-image latency is derived from the
// model's counted multiply-adds and a device throughput; energy is
// power * time. The paper's published constants (56 W / 75 W at the
// edge, 0.056 ms / 0.203 ms per image) are provided as presets so the
// Table VII bench can reproduce the published rows exactly while the
// synthetic-model benches derive latency from their own MAC counts.
#pragma once

#include <cstdint>

namespace meanet::sim {

struct DeviceModel {
  /// Average board power while computing, watts.
  double compute_power_w = 56.0;
  /// Sustained multiply-add throughput, MACs per second.
  double macs_per_second = 5.0e9;

  /// Seconds to run a model with `macs` multiply-adds on one image.
  double compute_time_s(std::int64_t macs) const;

  /// Joules for one image of `macs` multiply-adds.
  double compute_energy_j(std::int64_t macs) const {
    return compute_power_w * compute_time_s(macs);
  }

  /// The paper's CIFAR-100 / ResNet32-A edge device row (Table VII).
  static DeviceModel paper_cifar_gpu();
  /// The paper's ImageNet / ResNet18-B edge device row (Table VII).
  static DeviceModel paper_imagenet_gpu();
};

}  // namespace meanet::sim
