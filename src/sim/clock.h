// Pluggable time source for every timed path in the runtime (ROADMAP
// "virtual-time discrete-event core").
//
// The serving stack used to block on std::chrono::steady_clock
// directly: worker/dispatcher waits, request deadlines, queue aging,
// simulated airtime and injected backend latency all consumed wall
// time, so a scenario spanning hours of fleet traffic took hours to
// run. sim::Clock abstracts the three primitives those paths actually
// need — now(), a predicate wait with an absolute deadline, and the
// notification that pairs with it — behind one interface with two
// implementations:
//
//  * WallClock (here): the process steady clock. wait()/notify()
//    degrade to the exact condition_variable calls the code used
//    before the seam, so the default path is behaviorally unchanged.
//  * VirtualClock (sim/event_loop.h): a discrete-event clock that
//    advances straight to the earliest pending deadline whenever every
//    *registered actor* is blocked, so hours of simulated traffic
//    replay in wall milliseconds — bit-identically at any worker
//    count, because delays are scheduled events instead of measured
//    sleeps.
//
// Contract for code that blocks through a Clock:
//  * every blocking wait on shared state goes through
//    wait()/wait_for() with the mutex guarding that state held (the
//    "caller lock"), and
//  * every mutation of that state is followed by notify() on the same
//    condition_variable.
// Under WallClock that is exactly the plain condition_variable
// discipline; under VirtualClock it is what lets the clock prove
// "every actor is blocked" without lost wakeups (see event_loop.h).
//
// Actors: threads that drive simulated activity (session workers, the
// offload dispatcher, the callback runner — and any test/driver thread
// submitting traffic) register for the duration of their loop via
// ActorGuard. WallClock ignores registration; VirtualClock refuses to
// advance while any registered actor is runnable. A driving thread
// that does NOT register still works (its waits and notifies are
// correct), but virtual time may then advance while it is between
// actions, so determinism of submit timestamps needs the driver
// registered.
#pragma once

#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>

namespace meanet::sim {

class Clock {
 public:
  // steady_clock's time_point/duration types are kept so SchedKey,
  // deadline math and every timestamp member stay unchanged; a
  // VirtualClock simply fabricates the time_points.
  using TimePoint = std::chrono::steady_clock::time_point;
  using Duration = std::chrono::steady_clock::duration;

  virtual ~Clock() = default;

  virtual TimePoint now() const = 0;

  /// Blocks until pred() is true or `deadline` (on THIS clock) is
  /// reached; TimePoint::max() waits without bound. Call with `lock`
  /// held on the mutex guarding pred's state; `cv` is the
  /// condition_variable the state's mutators notify(). Returns pred()
  /// at exit — standard condition_variable::wait_until semantics.
  virtual bool wait(std::unique_lock<std::mutex>& lock, std::condition_variable& cv,
                    TimePoint deadline, const std::function<bool()>& pred) = 0;

  /// Wakes waiters blocked via wait() on `cv`. Call after every
  /// mutation of pred-visible state (in place of cv.notify_*()).
  virtual void notify(std::condition_variable& cv) = 0;

  // Actor accounting — no-ops on WallClock. Prefer ActorGuard.
  virtual void register_actor() {}
  virtual void unregister_actor() {}

  /// wait() with a relative timeout in seconds from now().
  bool wait_for(std::unique_lock<std::mutex>& lock, std::condition_variable& cv,
                double timeout_s, const std::function<bool()>& pred) {
    return wait(lock, cv, after(now(), timeout_s), pred);
  }

  /// Blocks the calling thread until `deadline` on this clock.
  void sleep_until(TimePoint deadline);
  /// Blocks the calling thread for `seconds` on this clock.
  void sleep_for(double seconds) { sleep_until(after(now(), seconds)); }

  /// `from + seconds` with the same saturation rule deadline code uses
  /// everywhere: anything at/above ~30 years (including infinity and
  /// NaN-free "no bound" sentinels) is TimePoint::max().
  static TimePoint after(TimePoint from, double seconds) {
    if (!(seconds < 1e9)) return TimePoint::max();
    if (seconds <= 0.0) return from;
    return from + std::chrono::duration_cast<Duration>(std::chrono::duration<double>(seconds));
  }

  static double seconds_between(TimePoint from, TimePoint to) {
    return std::chrono::duration<double>(to - from).count();
  }
};

/// The process steady clock; wait/notify are plain condition_variable
/// operations, so injecting a WallClock (or no clock at all) reproduces
/// the pre-seam behavior exactly.
class WallClock final : public Clock {
 public:
  TimePoint now() const override { return std::chrono::steady_clock::now(); }

  bool wait(std::unique_lock<std::mutex>& lock, std::condition_variable& cv,
            TimePoint deadline, const std::function<bool()>& pred) override {
    if (deadline == TimePoint::max()) {
      cv.wait(lock, pred);
      return true;
    }
    return cv.wait_until(lock, deadline, pred);
  }

  void notify(std::condition_variable& cv) override { cv.notify_all(); }
};

/// The shared process-wide WallClock: every component that is handed a
/// null clock resolves to this one instance, so "same clock" checks can
/// compare pointers.
std::shared_ptr<Clock> wall_clock_ptr();
Clock& wall_clock();

/// Null-tolerant default: `clock` itself, or the process WallClock.
inline std::shared_ptr<Clock> resolve_clock(std::shared_ptr<Clock> clock) {
  return clock ? std::move(clock) : wall_clock_ptr();
}

/// RAII actor registration for the duration of a thread's serving loop
/// (or a test driver's submission phase).
class ActorGuard {
 public:
  explicit ActorGuard(Clock& clock) : clock_(&clock) { clock_->register_actor(); }
  ~ActorGuard() { clock_->unregister_actor(); }
  ActorGuard(const ActorGuard&) = delete;
  ActorGuard& operator=(const ActorGuard&) = delete;

 private:
  Clock* clock_;
};

}  // namespace meanet::sim
