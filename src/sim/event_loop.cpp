#include "sim/event_loop.h"

#include <algorithm>
#include <vector>

namespace meanet::sim {

namespace {

// Which VirtualClocks the calling thread registered on. A plain vector:
// a thread registers on at most a couple of clocks, and duplicates
// (nested guards) just count twice on both sides.
thread_local std::vector<const VirtualClock*> t_actor_clocks;

}  // namespace

VirtualClock::VirtualClock(TimePoint epoch) : now_(epoch) {}

Clock::TimePoint VirtualClock::now() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return now_;
}

void VirtualClock::notify(std::condition_variable& cv) {
  (void)cv;  // global broadcast: per-cv routing would not change correctness
  std::lock_guard<std::mutex> lock(mutex_);
  bump_locked();
}

void VirtualClock::register_actor() {
  t_actor_clocks.push_back(this);
  std::lock_guard<std::mutex> lock(mutex_);
  ++registered_;
}

void VirtualClock::unregister_actor() {
  const auto it = std::find(t_actor_clocks.rbegin(), t_actor_clocks.rend(), this);
  if (it != t_actor_clocks.rend()) t_actor_clocks.erase(std::next(it).base());
  std::lock_guard<std::mutex> lock(mutex_);
  if (registered_ > 0) --registered_;
  // The departing actor may have been the last runnable one.
  advance_locked();
}

bool VirtualClock::calling_thread_is_actor() const {
  return std::find(t_actor_clocks.begin(), t_actor_clocks.end(), this) != t_actor_clocks.end();
}

int VirtualClock::registered_actors() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return registered_;
}

std::size_t VirtualClock::pending_timers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return timers_.size();
}

std::uint64_t VirtualClock::advance_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return advances_;
}

void VirtualClock::bump_locked() {
  ++generation_;
  // Every parked waiter is about to be woken, so none of them counts as
  // blocked anymore: each is runnable until it re-checks its predicate
  // and parks again (re-incrementing blocked_ in wait()). Without this
  // reset, time could advance to a later deadline while a woken-but-not-
  // yet-scheduled actor still had work to do at the current instant —
  // an OS-scheduling-dependent leak the parity suite would catch.
  blocked_ = 0;
  cv_.notify_all();
}

void VirtualClock::advance_locked() {
  if (blocked_ < registered_) return;  // some actor is still runnable
  if (timers_.empty()) return;  // quiescent (or deadlocked, same as wall clock)
  const TimePoint at = timers_.peek()->at;
  if (at > now_) {
    now_ = at;
    ++advances_;
  }
  // Even an already-due timer needs its owner woken: bump the
  // generation so every waiter re-checks its deadline/predicate.
  bump_locked();
}

bool VirtualClock::wait(std::unique_lock<std::mutex>& lock, std::condition_variable& cv,
                        TimePoint deadline, const std::function<bool()>& pred) {
  (void)cv;  // waiters park on the clock's own condvar (global broadcast)
  const bool actor = calling_thread_is_actor();
  while (true) {
    // Predicate first, under the caller lock only — it may take other
    // locks of its own (ticket mutexes etc.).
    if (pred()) return true;
    std::unique_lock<std::mutex> clock_lock(mutex_);
    if (now_ >= deadline) return false;  // timed out in virtual time
    // Lost-wakeup-free handoff: the generation is captured while BOTH
    // locks are held, and clock_lock stays held until cv_.wait() parks
    // this thread. Any mutation of pred's state we could have missed
    // happens after our caller-lock release, and its notify() must then
    // take mutex_ — i.e. after we are parked — and bump the generation,
    // which wakes us.
    const std::uint64_t generation = generation_;
    lock.unlock();
    const bool timed = deadline != TimePoint::max();
    std::uint64_t timer = 0;
    if (timed) timer = timers_.schedule(deadline);
    if (actor) ++blocked_;
    // A new pending deadline (or this actor parking) may complete the
    // "everyone is blocked" condition.
    advance_locked();
    cv_.wait(clock_lock,
             [&] { return generation_ != generation || now_ >= deadline; });
    // A generation bump already uncounted us (bump_locked resets
    // blocked_ to 0); only a wake with the generation unchanged — which
    // requires now_ >= deadline, i.e. the deadline was already due —
    // still carries our increment.
    if (actor && generation_ == generation) --blocked_;
    if (timed) timers_.cancel(timer);
    clock_lock.unlock();
    lock.lock();
  }
}

}  // namespace meanet::sim
