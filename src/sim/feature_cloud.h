// Feature-offload cloud node — the paper's second edge-cloud
// collaboration mode (§III-C, Table I row 4): instead of raw images, the
// edge uploads the main-block features F and the cloud finishes a
// *partitioned* network. The paper prefers raw-data offload for
// flexibility (an independent, stronger cloud model); this class exists
// so both modes can be compared quantitatively.
#pragma once

#include "core/meanet.h"
#include "core/trainer.h"
#include "nn/sequential.h"
#include "util/rng.h"

namespace meanet::sim {

class FeatureCloudNode {
 public:
  /// Builds a cloud-side head for per-instance features of
  /// `feature_shape` ([1, c, h, w]) classifying into `num_classes`.
  FeatureCloudNode(const Shape& feature_shape, int num_classes, util::Rng& rng);

  /// Trains the head on features produced by the (frozen) main trunk of
  /// `edge` over `train`. The trunk is run in eval mode, mirroring
  /// deployment where the edge ships features upward.
  core::TrainCurve train(core::MEANet& edge, const data::Dataset& train,
                         const core::TrainOptions& options, util::Rng& rng);

  /// Classifies a batch of uploaded feature maps.
  std::vector<int> classify_features(const Tensor& features);

  /// Upload payload per instance for this feature geometry (float32).
  static std::int64_t feature_bytes(const Shape& feature_shape);

  nn::Sequential& head() { return head_; }

 private:
  nn::Sequential head_;
};

/// Materializes the main-trunk features of every instance in `dataset`
/// as a feature "dataset" (labels preserved). Used to train/evaluate
/// partitioned heads.
data::Dataset extract_features(core::MEANet& edge, const data::Dataset& dataset,
                               int batch_size = 64);

}  // namespace meanet::sim
