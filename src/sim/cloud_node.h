// Cloud side of the distributed system: a deeper classifier that
// receives raw images (the paper's preferred mode, §III-C) and returns
// predictions.
#pragma once

#include <atomic>
#include <vector>

#include "data/dataset.h"
#include "nn/sequential.h"

namespace meanet::sim {

class CloudNode {
 public:
  explicit CloudNode(nn::Sequential model) : model_(std::move(model)) {}

  /// Classifies a batch of raw images. Safe to call from several
  /// sessions' dispatcher threads at once — e.g. two sessions on one
  /// SharedCell offloading to the same cloud: the eval forward is
  /// cache-free and const-safe (nn/layer.h) and the served counter is
  /// atomic.
  std::vector<int> classify(const Tensor& images);

  nn::Sequential& model() { return model_; }
  const nn::Sequential& model() const { return model_; }

  /// Number of classify() instances served so far.
  std::int64_t instances_served() const { return served_.load(std::memory_order_relaxed); }

 private:
  nn::Sequential model_;
  std::atomic<std::int64_t> served_{0};
};

}  // namespace meanet::sim
