// Cloud side of the distributed system: a deeper classifier that
// receives raw images (the paper's preferred mode, §III-C) and returns
// predictions.
#pragma once

#include <vector>

#include "data/dataset.h"
#include "nn/sequential.h"

namespace meanet::sim {

class CloudNode {
 public:
  explicit CloudNode(nn::Sequential model) : model_(std::move(model)) {}

  /// Classifies a batch of raw images.
  std::vector<int> classify(const Tensor& images);

  nn::Sequential& model() { return model_; }
  const nn::Sequential& model() const { return model_; }

  /// Number of classify() instances served so far.
  std::int64_t instances_served() const { return served_; }

 private:
  nn::Sequential model_;
  std::int64_t served_ = 0;
};

}  // namespace meanet::sim
