#include "sim/cloud_node.h"

#include "tensor/ops.h"

namespace meanet::sim {

std::vector<int> CloudNode::classify(const Tensor& images) {
  const Tensor logits = model_.forward(images, nn::Mode::kEval);
  served_ += images.shape().batch();
  return ops::row_argmax(logits);
}

}  // namespace meanet::sim
