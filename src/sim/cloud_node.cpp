#include "sim/cloud_node.h"

#include "tensor/ops.h"

namespace meanet::sim {

std::vector<int> CloudNode::classify(const Tensor& images) {
  const Tensor logits = model_.forward(images, nn::Mode::kEval);
  served_.fetch_add(images.shape().batch(), std::memory_order_relaxed);
  return ops::row_argmax(logits);
}

}  // namespace meanet::sim
