// Per-instance inference latency analysis for the distributed system.
//
// The paper argues (Fig. 8 discussion) that even when the edge-cloud
// energy approaches cloud-only, the distributed system keeps a latency
// advantage because >50% of instances terminate at the edge. This module
// prices each routed instance:
//   main exit      : edge compute (main path)
//   extension exit : edge compute (main + extension paths)
//   cloud          : edge compute (main) + upload + cloud compute +
//                    response download (assumed small constant) + RTT
// and aggregates mean / percentile statistics.
#pragma once

#include <vector>

#include "core/edge_inference.h"
#include "sim/device_model.h"
#include "sim/wifi_model.h"

namespace meanet::sim {

struct LatencyParams {
  DeviceModel edge_device;
  WifiModel wifi;
  std::int64_t upload_bytes = 0;     // raw-image payload per offload
  std::int64_t main_macs = 0;        // edge main path
  std::int64_t extension_macs = 0;   // edge extension path
  std::int64_t cloud_macs = 0;       // cloud model per instance
  /// Cloud device throughput (much faster than the edge).
  double cloud_macs_per_second = 1e12;
  /// Network round-trip latency per offloaded instance (s).
  double rtt_s = 0.020;
};

struct LatencyStats {
  double mean_s = 0.0;
  double p50_s = 0.0;
  double p95_s = 0.0;
  double p99_s = 0.0;
  double max_s = 0.0;
  /// Fraction of instances that terminated at the edge.
  double edge_fraction = 0.0;
};

/// Latency of a single decision under `params`.
double instance_latency_s(const core::InstanceDecision& decision, const LatencyParams& params);

/// Aggregates the latency distribution of a full run.
LatencyStats analyze_latency(const std::vector<core::InstanceDecision>& decisions,
                             const LatencyParams& params);

}  // namespace meanet::sim
