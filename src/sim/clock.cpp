#include "sim/clock.h"

namespace meanet::sim {

void Clock::sleep_until(TimePoint deadline) {
  // A private mutex/cv pair: nothing notifies it, so the wait ends at
  // the deadline (WallClock) or when virtual time reaches it
  // (VirtualClock schedules it as an event).
  std::mutex mutex;
  std::condition_variable cv;
  std::unique_lock<std::mutex> lock(mutex);
  wait(lock, cv, deadline, [] { return false; });
}

std::shared_ptr<Clock> wall_clock_ptr() {
  static const std::shared_ptr<Clock> instance = std::make_shared<WallClock>();
  return instance;
}

Clock& wall_clock() { return *wall_clock_ptr(); }

}  // namespace meanet::sim
