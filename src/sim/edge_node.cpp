#include "sim/edge_node.h"

namespace meanet::sim {

std::int64_t EdgeNode::route_macs(core::Route route) const {
  // Every instance pays the main path; only extension-exit instances pay
  // the adaptive + extension path on top (cloud-routed instances stop at
  // the main block per Alg. 2).
  std::int64_t macs = costs_.main_macs;
  if (route == core::Route::kExtensionExit) macs += costs_.extension_macs;
  return macs;
}

double EdgeNode::compute_energy_j(const core::InstanceDecision& decision) const {
  return costs_.device.compute_energy_j(route_macs(decision.route));
}

double EdgeNode::compute_time_s(const core::InstanceDecision& decision) const {
  return costs_.device.compute_time_s(route_macs(decision.route));
}

double EdgeNode::comm_energy_j(const core::InstanceDecision& decision) const {
  if (decision.route != core::Route::kCloud) return 0.0;
  return costs_.wifi.upload_energy_j(costs_.upload_bytes_per_instance);
}

double EdgeNode::comm_time_s(const core::InstanceDecision& decision) const {
  if (decision.route != core::Route::kCloud) return 0.0;
  return costs_.wifi.upload_time_s(costs_.upload_bytes_per_instance);
}

}  // namespace meanet::sim
