#include "sim/edge_node.h"

namespace meanet::sim {

std::int64_t EdgeNodeCosts::route_macs(core::Route route) const {
  std::int64_t macs = main_macs;
  if (route == core::Route::kExtensionExit) macs += extension_macs;
  return macs;
}

double EdgeNodeCosts::compute_energy_j(core::Route route) const {
  return device.compute_energy_j(route_macs(route));
}

double EdgeNodeCosts::compute_time_s(core::Route route) const {
  return device.compute_time_s(route_macs(route));
}

double EdgeNodeCosts::comm_energy_j(core::Route route) const {
  if (route != core::Route::kCloud) return 0.0;
  return wifi.upload_energy_j(upload_bytes_per_instance);
}

double EdgeNodeCosts::comm_time_s(core::Route route) const {
  if (route != core::Route::kCloud) return 0.0;
  return wifi.upload_time_s(upload_bytes_per_instance);
}

}  // namespace meanet::sim
