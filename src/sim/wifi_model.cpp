#include "sim/wifi_model.h"

#include <stdexcept>

namespace meanet::sim {

WifiModel WifiModel::congested(double contention) const {
  if (contention < 1.0) throw std::invalid_argument("WifiModel::congested: contention < 1");
  WifiModel crowded = *this;
  crowded.throughput_mbps = throughput_mbps / contention;
  return crowded;
}

double WifiModel::upload_time_s(std::int64_t payload_bytes) const {
  if (payload_bytes < 0) throw std::invalid_argument("upload_time_s: negative payload");
  if (throughput_mbps <= 0.0) throw std::logic_error("WifiModel: non-positive throughput");
  const double bits = static_cast<double>(payload_bytes) * 8.0;
  return bits / (throughput_mbps * 1e6);
}

}  // namespace meanet::sim
