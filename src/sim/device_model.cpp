#include "sim/device_model.h"

#include <stdexcept>

namespace meanet::sim {

double DeviceModel::compute_time_s(std::int64_t macs) const {
  if (macs < 0) throw std::invalid_argument("compute_time_s: negative MACs");
  if (macs_per_second <= 0.0) throw std::logic_error("DeviceModel: non-positive throughput");
  return static_cast<double>(macs) / macs_per_second;
}

DeviceModel DeviceModel::paper_cifar_gpu() {
  // 56 W GPU, 0.056 ms per image for a 69 MMAC ResNet32 => ~1.23 TMAC/s.
  DeviceModel m;
  m.compute_power_w = 56.0;
  m.macs_per_second = 69e6 / 0.056e-3;
  return m;
}

DeviceModel DeviceModel::paper_imagenet_gpu() {
  // 75 W GPU, 0.203 ms per image for a ~1.8 GMAC ResNet18.
  DeviceModel m;
  m.compute_power_w = 75.0;
  m.macs_per_second = 1.8e9 / 0.203e-3;
  return m;
}

}  // namespace meanet::sim
