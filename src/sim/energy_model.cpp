#include "sim/energy_model.h"

#include <stdexcept>

namespace meanet::sim {

void EnergyModel::check_beta(double beta) const {
  if (beta < 0.0 || beta > 1.0) throw std::invalid_argument("EnergyModel: beta outside [0, 1]");
}

CostBreakdown EnergyModel::edge_only(std::int64_t n) const {
  CostBreakdown out;
  out.edge_compute = static_cast<double>(n) * params_.edge_compute;
  return out;
}

CostBreakdown EnergyModel::cloud_only(std::int64_t n) const {
  CostBreakdown out;
  out.cloud_compute = static_cast<double>(n) * params_.cloud_compute;
  out.communication = static_cast<double>(n) * params_.comm_raw;
  return out;
}

CostBreakdown EnergyModel::edge_cloud_raw(std::int64_t n, double beta) const {
  check_beta(beta);
  CostBreakdown out;
  out.edge_compute = static_cast<double>(n) * params_.edge_compute;
  out.cloud_compute = beta * static_cast<double>(n) * params_.cloud_compute;
  out.communication = beta * static_cast<double>(n) * params_.comm_raw;
  return out;
}

CostBreakdown EnergyModel::edge_cloud_features(std::int64_t n, double beta, double q) const {
  check_beta(beta);
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("EnergyModel: q outside [0, 1]");
  CostBreakdown out;
  out.edge_compute = static_cast<double>(n) * q * params_.edge_compute;
  out.cloud_compute = beta * static_cast<double>(n) * (1.0 - q) * params_.cloud_compute;
  out.communication = beta * static_cast<double>(n) * params_.comm_features;
  return out;
}

}  // namespace meanet::sim
