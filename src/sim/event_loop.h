// The discrete-event half of the virtual-time core (see sim/clock.h
// for the Clock seam and the wait/notify contract).
//
// EventQueue is the deterministic timer store: events are ordered by
// (time, tie_seq) where tie_seq is allocation order, so two events at
// the same virtual instant pop in the order they were scheduled —
// exactly the order a std::stable_sort over the times would produce
// (property-tested against that oracle in tests/test_virtual_time.cpp).
//
// VirtualClock is a Clock whose time_points are fabricated. The rules:
//
//  * now() never moves while any *registered actor* is runnable.
//  * When every registered actor is blocked in wait() and at least one
//    waiter has a finite deadline pending, the clock jumps now()
//    straight to the earliest pending deadline and broadcasts; waiters
//    whose deadline arrived return (timeout), everyone else re-checks
//    its predicate and re-blocks.
//  * When every registered actor is blocked and NO deadline is pending
//    the system is quiescent (or genuinely deadlocked — same as wall
//    clock); the clock stays put until an unregistered thread notifies
//    or schedules something.
//  * notify() is a global broadcast: every state change bumps one
//    generation counter and wakes all clock waiters to re-check their
//    predicates. Conservative (spurious wakeups), but it makes lost
//    wakeups impossible without per-cv bookkeeping: a waiter captures
//    the generation while holding BOTH its caller lock and the clock
//    lock, so any mutation it missed must bump the generation after
//    the capture and before the waiter can be parked.
//
// Determinism: virtual timestamps are produced by simulated-delay
// arithmetic, never by measurement, so a seeded scenario driven by
// registered actors replays bit-identically at any worker count and on
// any machine. (Which OS thread wakes first at a given virtual instant
// still varies; the scheduling keys and seeded delay hashes are what
// make the *outcomes* invariant — asserted by the parity suite.)
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <utility>

#include "sim/clock.h"

namespace meanet::sim {

/// Deterministic min-queue of (time, tie_seq) events. Not thread-safe;
/// VirtualClock guards its instance with the clock mutex.
class EventQueue {
 public:
  using TimePoint = Clock::TimePoint;

  struct Event {
    TimePoint at{};
    std::uint64_t seq = 0;
  };

  /// Registers an event; returns its tie_seq (allocation order, the
  /// tie-break among equal times and the handle for cancel()).
  std::uint64_t schedule(TimePoint at) {
    const std::uint64_t seq = next_seq_++;
    events_.emplace(at, seq);
    by_seq_.emplace(seq, at);
    return seq;
  }

  /// Removes a pending event; false if it already popped (or never
  /// existed).
  bool cancel(std::uint64_t seq) {
    const auto it = by_seq_.find(seq);
    if (it == by_seq_.end()) return false;
    events_.erase({it->second, seq});
    by_seq_.erase(it);
    return true;
  }

  /// The earliest pending event — ties broken by schedule order.
  std::optional<Event> peek() const {
    if (events_.empty()) return std::nullopt;
    return Event{events_.begin()->first, events_.begin()->second};
  }

  std::optional<Event> pop() {
    std::optional<Event> event = peek();
    if (event) {
      events_.erase(events_.begin());
      by_seq_.erase(event->seq);
    }
    return event;
  }

  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

 private:
  std::set<std::pair<TimePoint, std::uint64_t>> events_;
  std::map<std::uint64_t, TimePoint> by_seq_;
  std::uint64_t next_seq_ = 0;
};

/// Discrete-event Clock: logical time advances to the earliest pending
/// deadline only when every registered actor is blocked. See the file
/// comment for the full rules.
class VirtualClock final : public Clock {
 public:
  /// `epoch` is an arbitrary nonzero origin; simulated timestamps only
  /// ever matter as differences.
  explicit VirtualClock(TimePoint epoch = TimePoint{} + std::chrono::hours(1));

  TimePoint now() const override;
  bool wait(std::unique_lock<std::mutex>& lock, std::condition_variable& cv,
            TimePoint deadline, const std::function<bool()>& pred) override;
  void notify(std::condition_variable& cv) override;
  void register_actor() override;
  void unregister_actor() override;

  // Introspection for tests.
  int registered_actors() const;
  std::size_t pending_timers() const;
  /// Times the clock jumped forward so far.
  std::uint64_t advance_count() const;

 private:
  /// Jumps now_ to the earliest pending deadline and broadcasts, iff
  /// every registered actor is blocked and a timer is pending. Caller
  /// holds mutex_.
  void advance_locked();
  /// Bumps the generation, resets blocked_ (every parked waiter is
  /// woken and counts as runnable until it re-parks), and broadcasts.
  /// Caller holds mutex_.
  void bump_locked();
  /// Whether the calling thread registered on THIS clock (thread-local
  /// bookkeeping; unregistered waiters wait correctly but do not count
  /// toward "every actor is blocked").
  bool calling_thread_is_actor() const;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  TimePoint now_;
  EventQueue timers_;        // pending wait deadlines, guarded by mutex_
  std::uint64_t generation_ = 0;  // bumped by every notify() and advance
  int registered_ = 0;
  /// Registered actors parked in wait() *since the last generation
  /// bump*: a bump wakes everyone, so it resets this to 0 and each
  /// waiter re-counts itself only when it genuinely re-parks — time
  /// never advances while a woken actor has yet to acknowledge.
  int blocked_ = 0;
  std::uint64_t advances_ = 0;
};

}  // namespace meanet::sim
