#include "sim/shared_cell.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>

namespace meanet::sim {

namespace detail {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

double hashed_jitter_s(std::uint64_t seed, std::uint64_t key, double width) {
  if (width <= 0.0) return 0.0;
  // Two mixing rounds so adjacent keys decorrelate; the top 53 bits give
  // a uniform double in [0, 1).
  const std::uint64_t mixed = splitmix64(splitmix64(seed) ^ key);
  const double unit = static_cast<double>(mixed >> 11) * 0x1.0p-53;
  return unit * width;
}

}  // namespace detail

SharedCell::SharedCell(SharedCellConfig config)
    : config_(std::move(config)), clock_(resolve_clock(config_.clock)) {
  if (config_.uplink.throughput_mbps <= 0.0 || config_.downlink.throughput_mbps <= 0.0) {
    throw std::invalid_argument("SharedCell: non-positive throughput");
  }
  if (config_.base_latency_s < 0.0 || config_.jitter_s < 0.0) {
    throw std::invalid_argument("SharedCell: negative latency or jitter");
  }
  created_ = clock_->now();
  static std::atomic<std::uint64_t> next_cell_id{0};
  diag_name_ = "cell/" + std::to_string(next_cell_id.fetch_add(1));
  diag_registration_ =
      diag::ScopedRegistration(diag::DiagnosticRegistry::global(), this);
}

diag::Value SharedCell::diag_snapshot() const {
  diag::Value v = diag::Value::object();
  v.set("stations", stations());
  v.set("busy_s", busy_seconds());
  v.set("airtime_utilization", utilization());
  diag::Value cfg = diag::Value::object();
  cfg.set("uplink_mbps", config_.uplink.throughput_mbps);
  cfg.set("downlink_mbps", config_.downlink.throughput_mbps);
  cfg.set("base_latency_s", config_.base_latency_s);
  cfg.set("jitter_s", config_.jitter_s);
  cfg.set("activity_dependent_sharing", config_.activity_dependent_sharing);
  v.set("config", std::move(cfg));
  return v;
}

int SharedCell::attach() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++attached_;
  return next_station_++;
}

void SharedCell::detach(int station) {
  (void)station;  // ids are never reused; only the contention count drops
  std::lock_guard<std::mutex> lock(mutex_);
  if (attached_ > 0) --attached_;
}

int SharedCell::stations() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return attached_;
}

double SharedCell::jitter_for(int station, std::uint64_t key,
                              std::uint64_t direction_salt) const {
  // Station 0 with direction salt 0 must hash exactly like a plain
  // single-station SimulatedLink (the parity contract), so the station
  // salt vanishes for station 0.
  const std::uint64_t salted =
      config_.seed ^ (static_cast<std::uint64_t>(station) * 0x9E3779B97F4A7C15ULL) ^
      direction_salt;
  return detail::hashed_jitter_s(salted, key, config_.jitter_s);
}

double SharedCell::delay_s(const WifiModel& model, int station, std::uint64_t key,
                           std::int64_t bytes, std::uint64_t direction_salt) {
  const double jitter_s = jitter_for(station, key, direction_salt);
  // One critical section: the contention factor and the airtime charge
  // must agree on the station count.
  std::lock_guard<std::mutex> lock(mutex_);
  const double contention = attached_ > 1 ? static_cast<double>(attached_) : 1.0;
  const double transfer_s = model.upload_time_s(bytes) * contention;
  busy_s_ += transfer_s + jitter_s;  // the base floor is not airtime
  return transfer_s + jitter_s + config_.base_latency_s;
}

double SharedCell::uplink_delay_s(int station, std::uint64_t key, std::int64_t bytes) {
  return delay_s(config_.uplink, station, key, bytes, 0);
}

double SharedCell::downlink_delay_s(int station, std::uint64_t key, std::int64_t bytes) {
  // A fixed direction salt keeps an uplink and a downlink transfer with
  // the same key on independent jitter draws.
  return delay_s(config_.downlink, station, key, bytes, 0xD0D0D0D0D0D0D0D0ULL);
}

void SharedCell::poke() {
  {
    std::lock_guard<std::mutex> lock(transfer_mutex_);
    ++poke_epoch_;
  }
  clock_->notify(transfer_cv_);
}

bool SharedCell::hold(double delay_s, const std::function<bool()>& cancel) {
  const Clock::TimePoint deadline = Clock::after(clock_->now(), delay_s);
  std::unique_lock<std::mutex> lock(transfer_mutex_);
  while (true) {
    if (cancel && cancel()) return false;
    if (clock_->now() >= deadline) return true;
    // The wake on abandonment is the poke-epoch bump (cancel state
    // lives under mutexes the cell cannot see, so the epoch — guarded
    // by transfer_mutex_ — is what makes the wait race-free).
    const std::uint64_t seen = poke_epoch_;
    clock_->wait(lock, transfer_cv_, deadline,
                 [&] { return poke_epoch_ != seen || (cancel && cancel()); });
  }
}

void SharedCell::settle_lane(Lane& lane, Clock::TimePoint now) {
  const double dt = Clock::seconds_between(lane.last_settle, now);
  lane.last_settle = now;
  if (dt <= 0.0 || lane.remaining_s.empty()) return;
  const double share = dt / static_cast<double>(lane.remaining_s.size());
  for (auto& [flow, remaining] : lane.remaining_s) {
    (void)flow;
    remaining = std::max(0.0, remaining - share);
  }
}

TransferOutcome SharedCell::transfer(Lane& lane, const WifiModel& model, int station,
                                     std::uint64_t key, std::int64_t bytes,
                                     std::uint64_t direction_salt,
                                     const std::function<bool()>& cancel) {
  if (!config_.activity_dependent_sharing) {
    // Static share: the whole delay (and airtime charge) is computed at
    // reservation, exactly as uplink_delay_s/downlink_delay_s always
    // did; the clock wait just occupies the caller for that long.
    TransferOutcome out;
    out.delay_s = delay_s(model, station, key, bytes, direction_salt);
    out.cancelled = !hold(out.delay_s, cancel);
    return out;
  }

  // Activity-dependent share: a processor-sharing lane over the
  // transfers in flight right now. Progress is tracked in
  // "solo-seconds" (time the transfer would need alone at full rate),
  // accrued at 1/N per elapsed second with N concurrent transfers.
  const double jitter_s = jitter_for(station, key, direction_salt);
  bool aborted = false;
  Clock::TimePoint now;
  std::uint64_t flow;
  {
    std::unique_lock<std::mutex> lock(transfer_mutex_);
    now = clock_->now();
    settle_lane(lane, now);
    flow = lane.next_flow++;
    lane.remaining_s.emplace(flow, model.upload_time_s(bytes));
    ++lane.epoch;
    clock_->notify(transfer_cv_);  // peers re-derive their ETAs at the new share
    const Clock::TimePoint start = now;
    while (true) {
      now = clock_->now();
      settle_lane(lane, now);
      const double remaining = lane.remaining_s.at(flow);
      if (remaining <= 0.0) break;
      if (cancel && cancel()) {
        aborted = true;
        break;
      }
      // Finish estimate at the current concurrency; any join/leave
      // bumps the lane epoch and we re-derive.
      const double concurrency = static_cast<double>(lane.remaining_s.size());
      const Clock::TimePoint eta = Clock::after(now, remaining * concurrency);
      const std::uint64_t seen_epoch = lane.epoch;
      const std::uint64_t seen_poke = poke_epoch_;
      clock_->wait(lock, transfer_cv_, eta, [&] {
        return lane.epoch != seen_epoch || poke_epoch_ != seen_poke || (cancel && cancel());
      });
    }
    lane.remaining_s.erase(flow);
    ++lane.epoch;
    clock_->notify(transfer_cv_);
    const double occupied = Clock::seconds_between(start, now);
    {
      // Carried airtime: what the lane actually spent on this transfer
      // (an abandoned transfer charges only the time it occupied).
      std::lock_guard<std::mutex> busy_lock(mutex_);
      busy_s_ += occupied;
    }
    if (aborted) {
      return TransferOutcome{occupied, true};
    }
    TransferOutcome out;
    out.delay_s = occupied;
    // Jitter is airtime (mirroring the static model's accounting);
    // charged here so a tail abandonment cannot un-charge it.
    if (jitter_s > 0.0) {
      std::lock_guard<std::mutex> busy_lock(mutex_);
      busy_s_ += jitter_s;
    }
    out.delay_s += jitter_s + config_.base_latency_s;
    lock.unlock();
    // The jitter + base-latency tail (propagation, cloud turnaround)
    // is not shared capacity: it runs after the lane occupancy.
    const double tail_s = jitter_s + config_.base_latency_s;
    if (tail_s > 0.0) out.cancelled = !hold(tail_s, cancel);
    return out;
  }
}

TransferOutcome SharedCell::uplink_transfer(int station, std::uint64_t key, std::int64_t bytes,
                                            const std::function<bool()>& cancel) {
  return transfer(uplink_lane_, config_.uplink, station, key, bytes, 0, cancel);
}

TransferOutcome SharedCell::downlink_transfer(int station, std::uint64_t key,
                                              std::int64_t bytes,
                                              const std::function<bool()>& cancel) {
  return transfer(downlink_lane_, config_.downlink, station, key, bytes,
                  0xD0D0D0D0D0D0D0D0ULL, cancel);
}

double SharedCell::busy_seconds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return busy_s_;
}

double SharedCell::utilization() const {
  const double elapsed_s = Clock::seconds_between(created_, clock_->now());
  // Guard the zero-elapsed (and any clock-skew negative) window: a cell
  // created and polled within one virtual instant has demanded no
  // airtime per unit time yet.
  if (elapsed_s <= 0.0) return 0.0;
  return busy_seconds() / elapsed_s;
}

}  // namespace meanet::sim
